// Ablation — what actually fixes H-WFQ: the cheap virtual time function or
// the SEFF eligibility test?
//
// Runs the Figure-4 scenario under six node policies:
//   SFF  + GPS virtual time   (H-WFQ,        the baseline)
//   SFF  + Eq. 27 virtual time (H-ApproxWfq,  "just swap the clock")
//   SFF  + self-clocked V      (H-SCFQ)
//   min-S + start-clocked V    (H-SFQ)
//   SEFF + GPS virtual time    (H-WF²Q,       expensive but worst-case fair)
//   SEFF + Eq. 27 virtual time (H-WF²Q+,      the paper)
//
// The table shows that the RT-1 delay collapses only for the SEFF policies:
// the eligibility test, not the virtual time function, removes the
// pathology — which is DESIGN.md's stated design-choice experiment.
//
// Second section — eligible-set ENGINE ablation (sched/calendar.h): for the
// flat WF²Q+ datapath, heap sifts against the TagCalendar at a sweep of
// bucket widths (width_factor multiplies the derived sigma), in both exact
// (sorted-bucket) and approximate (unsorted) modes. Each cell reports
// steady-state dequeue ns/op and the worst per-flow service divergence from
// the exact heap schedule — the WFI-vs-speed tradeoff of the quantization.
// `--csv PATH` exports the engine grid for plotting.
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/node_policy.h"
#include "core/wf2qplus.h"
#include "fig_common.h"
#include "util/rng.h"

namespace hfq::bench {
namespace {

template <typename Policy>
void add_row(Table& t, const char* name, const Fig3Scenario& sc) {
  const auto r = run_fig3<Policy>(sc);
  t.row({name, fmt_ms(r.rt_delay.max_delay()),
         fmt_ms(r.rt_delay.mean_delay()),
         fmt_ms(r.rt_delay.percentile(99.0))});
}

// ---- engine ablation -------------------------------------------------------

constexpr double kLinkRate = 1e10;
constexpr std::uint32_t kBytes = 250;

net::Packet pkt(net::FlowId f, std::uint64_t id) {
  net::Packet p;
  p.id = id;
  p.flow = f;
  p.size_bytes = kBytes;
  return p;
}

core::Wf2qPlus make_engine(const char* engine, double width_factor,
                           bool approx) {
  if (std::strcmp(engine, "heap") == 0) {
    return core::Wf2qPlus(kLinkRate, sched::EligEngine::kHeap);
  }
  sched::CalendarTuning t;
  t.width_factor = width_factor;
  t.approximate = approx;
  return core::Wf2qPlus(kLinkRate, sched::EligEngine::kCalendar, t);
}

// Steady-state dequeue+enqueue cost, the datapath hot loop.
double engine_ns_per_op(const char* engine, double width_factor, bool approx,
                        int n_flows) {
  core::Wf2qPlus s = make_engine(engine, width_factor, approx);
  for (int f = 0; f < n_flows; ++f) {
    s.add_flow(static_cast<net::FlowId>(f), kLinkRate / n_flows);
  }
  const double pkt_time = 8.0 * kBytes / kLinkRate;
  std::uint64_t id = 0;
  double now = 0.0;
  for (int f = 0; f < n_flows; ++f) {
    s.enqueue(pkt(static_cast<net::FlowId>(f), id++), now);
    s.enqueue(pkt(static_cast<net::FlowId>(f), id++), now);
  }
  const std::uint64_t iters = 1u << 16;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    now += pkt_time;
    auto p = s.dequeue(now);
    if (!p) break;
    s.enqueue(pkt(p->flow, id++), now);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                 .count()) /
         static_cast<double>(iters);
}

// Worst per-flow cumulative-service divergence (bits) from the exact heap
// schedule on a fixed random trace — zero for exact engines, bounded by the
// bucket width for approximate ones.
double engine_divergence_bits(const char* engine, double width_factor,
                              bool approx) {
  constexpr int kFlows = 48;
  constexpr int kPackets = 6000;
  auto run = [&](core::Wf2qPlus s) {
    for (int f = 0; f < kFlows; ++f) {
      s.add_flow(static_cast<net::FlowId>(f),
                 kLinkRate / kFlows * (f % 3 == 0 ? 2.0 : 0.6));
    }
    util::Rng rng(4242);
    const double pkt_time = 8.0 * kBytes / kLinkRate;
    std::uint64_t id = 0;
    double now = 0.0;
    std::vector<std::vector<double>> service;  // per-departure running sums
    std::vector<double> acc(kFlows, 0.0);
    for (int i = 0; i < kPackets; ++i) {
      const auto f =
          static_cast<net::FlowId>(rng.uniform_int(0, kFlows - 1));
      s.enqueue(pkt(f, id++), now);
      if (i % 2 == 0) {
        if (auto p = s.dequeue(now)) {
          acc[p->flow] += p->size_bits();
          service.push_back(acc);
          now += pkt_time;
        }
      }
    }
    while (auto p = s.dequeue(now)) {
      acc[p->flow] += p->size_bits();
      service.push_back(acc);
      now += pkt_time;
    }
    return service;
  };
  const auto ref = run(make_engine("heap", 1.0, false));
  const auto got = run(make_engine(engine, width_factor, approx));
  double worst = 0.0;
  const std::size_t n = std::min(ref.size(), got.size());
  for (std::size_t i = 0; i < n; ++i) {
    for (int f = 0; f < kFlows; ++f) {
      worst = std::max(worst, std::abs(ref[i][f] - got[i][f]));
    }
  }
  return worst;
}

struct EngineCell {
  std::string label;
  const char* engine;
  double width_factor;
  bool approx;
  double ns_per_op = 0.0;
  double divergence_bits = 0.0;
};

int run_engine_ablation(const std::string& csv_path) {
  std::cout << "== Eligible-set engine: heap vs calendar (flat WF2Q+, "
               "steady dequeue at 64k flows) ==\n";
  std::vector<EngineCell> cells;
  cells.push_back({"heap", "heap", 0.0, false});
  for (const double factor : {0.25, 1.0, 4.0, 16.0, 64.0}) {
    cells.push_back({"calendar exact  f=" + fmt(factor, 2), "cal", factor,
                     false});
  }
  for (const double factor : {0.25, 1.0, 4.0, 16.0, 64.0}) {
    cells.push_back({"calendar approx f=" + fmt(factor, 2), "cal", factor,
                     true});
  }
  for (EngineCell& c : cells) {
    c.ns_per_op = engine_ns_per_op(c.engine, c.width_factor, c.approx,
                                   1 << 16);
    c.divergence_bits = engine_divergence_bits(c.engine, c.width_factor,
                                               c.approx);
  }
  Table t({"engine", "ns/op", "worst service div (bits)"});
  for (const EngineCell& c : cells) {
    t.row({c.label, fmt(c.ns_per_op, 1), fmt(c.divergence_bits, 0)});
  }
  t.print();

  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::cerr << "cannot open " << csv_path << " for writing\n";
      return 1;
    }
    out << "engine,width_factor,approximate,ns_per_op,divergence_bits\n";
    for (const EngineCell& c : cells) {
      out << c.engine << ',' << fmt(c.width_factor, 2) << ','
          << (c.approx ? 1 : 0) << ',' << fmt(c.ns_per_op, 2) << ','
          << fmt(c.divergence_bits, 1) << '\n';
    }
    std::cerr << "wrote " << csv_path << '\n';
  }

  // Shape: every exact engine reproduces the heap schedule bit-for-bit.
  bool ok = true;
  for (const EngineCell& c : cells) {
    if (!c.approx && c.divergence_bits != 0.0) ok = false;
  }
  std::cout << "shape check (exact calendar cells diverge by 0 bits): "
            << (ok ? "OK" : "FAILED") << "\n\n";
  return ok ? 0 : 1;
}

int run(const std::string& csv_path) {
  std::cout << "== Ablation: virtual time function vs. SEFF eligibility "
               "(Figure 4 scenario) ==\n";
  Fig3Scenario sc;  // scenario 1

  Table t({"node policy", "max delay", "mean delay", "p99 delay"});
  add_row<core::GpsSffPolicy>(t, "SFF + V_GPS      (H-WFQ)", sc);
  add_row<core::ApproxWfqPolicy>(t, "SFF + V_WF2Q+    (ablation)", sc);
  add_row<core::ScfqPolicy>(t, "SFF + self-clock (H-SCFQ)", sc);
  add_row<core::SfqPolicy>(t, "minS + start-clk (H-SFQ)", sc);
  add_row<core::DrrPolicy>(t, "frame-based      (H-DRR)", sc);
  add_row<core::GpsSeffPolicy>(t, "SEFF + V_GPS     (H-WF2Q)", sc);
  add_row<core::Wf2qPlusPolicy>(t, "SEFF + V_WF2Q+   (H-WF2Q+)", sc);
  add_row<core::Wf2qPlusCalPolicy>(t, "SEFF + V_WF2Q+   (calendar)", sc);
  t.print();

  // Shape: both SEFF policies beat every SFF policy on max delay, and the
  // calendar-backed node policy reproduces H-WF²Q+ exactly.
  const auto wfq = run_fig3<core::GpsSffPolicy>(sc);
  const auto approx = run_fig3<core::ApproxWfqPolicy>(sc);
  const auto wf2q = run_fig3<core::GpsSeffPolicy>(sc);
  const auto wf2qp = run_fig3<core::Wf2qPlusPolicy>(sc);
  const auto wf2qpc = run_fig3<core::Wf2qPlusCalPolicy>(sc);
  const double seff_worst =
      std::max(wf2q.rt_delay.max_delay(), wf2qp.rt_delay.max_delay());
  bool ok = seff_worst < wfq.rt_delay.max_delay() &&
            seff_worst < approx.rt_delay.max_delay();
  std::cout << "shape check (SEFF policies strictly better than SFF "
               "policies; clock swap alone does not help): "
            << (ok ? "OK" : "FAILED") << "\n";
  const bool cal_exact =
      wf2qpc.rt_delay.max_delay() == wf2qp.rt_delay.max_delay() &&
      wf2qpc.rt_delay.mean_delay() == wf2qp.rt_delay.mean_delay();
  std::cout << "shape check (calendar node policy == heap node policy): "
            << (cal_exact ? "OK" : "FAILED") << "\n\n";
  ok = ok && cal_exact;

  const int engine_rc = run_engine_ablation(csv_path);
  return ok && engine_rc == 0 ? 0 : 1;
}

}  // namespace
}  // namespace hfq::bench

int main(int argc, char** argv) {
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    }
  }
  return hfq::bench::run(csv_path);
}
