// Ablation — what actually fixes H-WFQ: the cheap virtual time function or
// the SEFF eligibility test?
//
// Runs the Figure-4 scenario under six node policies:
//   SFF  + GPS virtual time   (H-WFQ,        the baseline)
//   SFF  + Eq. 27 virtual time (H-ApproxWfq,  "just swap the clock")
//   SFF  + self-clocked V      (H-SCFQ)
//   min-S + start-clocked V    (H-SFQ)
//   SEFF + GPS virtual time    (H-WF²Q,       expensive but worst-case fair)
//   SEFF + Eq. 27 virtual time (H-WF²Q+,      the paper)
//
// The table shows that the RT-1 delay collapses only for the SEFF policies:
// the eligibility test, not the virtual time function, removes the
// pathology — which is DESIGN.md's stated design-choice experiment.
#include <iostream>
#include <string>

#include "bench_util.h"
#include "core/node_policy.h"
#include "fig_common.h"

namespace hfq::bench {
namespace {

template <typename Policy>
void add_row(Table& t, const char* name, const Fig3Scenario& sc) {
  const auto r = run_fig3<Policy>(sc);
  t.row({name, fmt_ms(r.rt_delay.max_delay()),
         fmt_ms(r.rt_delay.mean_delay()),
         fmt_ms(r.rt_delay.percentile(99.0))});
}

int run() {
  std::cout << "== Ablation: virtual time function vs. SEFF eligibility "
               "(Figure 4 scenario) ==\n";
  Fig3Scenario sc;  // scenario 1

  Table t({"node policy", "max delay", "mean delay", "p99 delay"});
  add_row<core::GpsSffPolicy>(t, "SFF + V_GPS      (H-WFQ)", sc);
  add_row<core::ApproxWfqPolicy>(t, "SFF + V_WF2Q+    (ablation)", sc);
  add_row<core::ScfqPolicy>(t, "SFF + self-clock (H-SCFQ)", sc);
  add_row<core::SfqPolicy>(t, "minS + start-clk (H-SFQ)", sc);
  add_row<core::DrrPolicy>(t, "frame-based      (H-DRR)", sc);
  add_row<core::GpsSeffPolicy>(t, "SEFF + V_GPS     (H-WF2Q)", sc);
  add_row<core::Wf2qPlusPolicy>(t, "SEFF + V_WF2Q+   (H-WF2Q+)", sc);
  t.print();

  // Shape: both SEFF policies beat every SFF policy on max delay.
  const auto wfq = run_fig3<core::GpsSffPolicy>(sc);
  const auto approx = run_fig3<core::ApproxWfqPolicy>(sc);
  const auto wf2q = run_fig3<core::GpsSeffPolicy>(sc);
  const auto wf2qp = run_fig3<core::Wf2qPlusPolicy>(sc);
  const double seff_worst =
      std::max(wf2q.rt_delay.max_delay(), wf2qp.rt_delay.max_delay());
  const bool ok = seff_worst < wfq.rt_delay.max_delay() &&
                  seff_worst < approx.rt_delay.max_delay();
  std::cout << "shape check (SEFF policies strictly better than SFF "
               "policies; clock swap alone does not help): "
            << (ok ? "OK" : "FAILED") << "\n\n";
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hfq::bench

int main() { return hfq::bench::run(); }
