// Experiment E1 — Figure 2 (§3.1): the service order of GPS, WFQ, WF²Q and
// WF²Q+ on the paper's worked example. 11 sessions on a unit link; session
// 1 (share 0.5) sends 11 back-to-back unit packets at t=0; sessions 2..11
// (share 0.05) send one each.
//
// Prints the timelines the figure draws, and checks the paper's exact
// claims: GPS finish times (2k / 21 / 20), WFQ's burst of 10 followed by
// starvation, WF²Q's/WF²Q+'s interleaving, and the N/2-packet inaccuracy
// of WFQ versus GPS at t=10.
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/wf2qplus.h"
#include "fluid/gps.h"
#include "net/scheduler.h"
#include "sched/wf2q.h"
#include "sched/wfq.h"
#include "sim/link.h"
#include "sim/simulator.h"

namespace hfq::bench {
namespace {

constexpr double kRate = 8.0;  // 8 bps, 1-byte packets → 1 s slots

template <typename Sched>
std::vector<net::FlowId> service_order(Sched& s) {
  s.add_flow(0, 4.0);
  for (net::FlowId j = 1; j <= 10; ++j) s.add_flow(j, 0.4);
  sim::Simulator sim;
  sim::Link link(sim, s, kRate);
  std::vector<net::FlowId> order;
  link.set_delivery(
      [&order](const net::Packet& p, net::Time) { order.push_back(p.flow); });
  sim.at(0.0, [&] {
    std::uint64_t id = 0;
    for (int k = 0; k < 11; ++k) {
      net::Packet p;
      p.flow = 0;
      p.size_bytes = 1;
      p.id = id++;
      link.submit(p);
    }
    for (net::FlowId j = 1; j <= 10; ++j) {
      net::Packet p;
      p.flow = j;
      p.size_bytes = 1;
      p.id = id++;
      link.submit(p);
    }
  });
  sim.run();
  return order;
}

std::string timeline(const std::vector<net::FlowId>& order) {
  std::ostringstream os;
  for (const auto f : order) {
    if (f == 0) {
      os << " s1 ";
    } else {
      os << " s" << (f + 1) << (f + 1 < 10 ? " " : "");
    }
  }
  return os.str();
}

int run() {
  std::cout << "== Figure 2: WFQ vs WF2Q vs WF2Q+ service order ==\n";

  // GPS fluid finish times.
  fluid::GpsServer<double> gps(kRate);
  gps.add_flow(0, 4.0);
  for (net::FlowId j = 1; j <= 10; ++j) gps.add_flow(j, 0.4);
  for (int k = 0; k < 11; ++k) gps.arrive(0.0, 0, 8.0);
  for (net::FlowId j = 1; j <= 10; ++j) gps.arrive(0.0, j, 8.0);
  gps.advance_to(30.0);
  std::cout << "GPS finish times, session 1 packets:";
  std::vector<double> s1;
  for (const auto& d : gps.departures()) {
    if (d.flow == 0) s1.push_back(d.time);
  }
  for (const auto t : s1) std::cout << ' ' << fmt(t, 2);
  std::cout << "\nGPS finish time, each other session's packet: 20.00\n\n";

  sched::Wfq wfq(kRate);
  sched::Wf2q wf2q(kRate);
  core::Wf2qPlus wf2qp(kRate);
  const auto o_wfq = service_order(wfq);
  const auto o_wf2q = service_order(wf2q);
  const auto o_wf2qp = service_order(wf2qp);

  std::cout << "WFQ   :" << timeline(o_wfq) << '\n';
  std::cout << "WF2Q  :" << timeline(o_wf2q) << '\n';
  std::cout << "WF2Q+ :" << timeline(o_wf2qp) << "\n\n";

  // Paper claims.
  bool ok = true;
  // GPS: finish 2k for k=1..10, 21 for the 11th.
  for (int k = 1; k <= 10; ++k) {
    ok = ok && std::abs(s1[k - 1] - 2.0 * k) < 1e-6;
  }
  ok = ok && std::abs(s1[10] - 21.0) < 1e-6;
  // WFQ: first ten departures all session 1, session 1's last packet
  // departs last.
  for (int i = 0; i < 10; ++i) ok = ok && o_wfq[i] == 0;
  ok = ok && o_wfq.back() == 0;
  // WF²Q/WF²Q+: session 1 exactly every other slot.
  for (int i = 0; i < 21; ++i) {
    ok = ok && (o_wf2q[i] == 0) == (i % 2 == 0);
    ok = ok && (o_wf2qp[i] == 0) == (i % 2 == 0);
  }

  Table t({"policy", "s1 pkts served by t=10", "inaccuracy vs GPS (pkts)"});
  auto count10 = [](const std::vector<net::FlowId>& o) {
    int n = 0;
    for (int i = 0; i < 10; ++i) n += (o[i] == 0) ? 1 : 0;
    return n;
  };
  const int gps10 = 5;  // GPS serves 5 session-1 packets by t=10
  t.row({"GPS (fluid)", "5", "0"});
  t.row({"WFQ", std::to_string(count10(o_wfq)),
         std::to_string(count10(o_wfq) - gps10)});
  t.row({"WF2Q", std::to_string(count10(o_wf2q)),
         std::to_string(count10(o_wf2q) - gps10)});
  t.row({"WF2Q+", std::to_string(count10(o_wf2qp)),
         std::to_string(count10(o_wf2qp) - gps10)});
  t.print();

  std::cout << "exactness check (paper's Fig. 2 timelines): "
            << (ok ? "OK" : "FAILED") << "\n\n";
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hfq::bench

int main() { return hfq::bench::run(); }
