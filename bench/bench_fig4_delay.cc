// Experiment E3 — Figure 4: absolute delay experienced by the real-time
// session RT-1 under H-WFQ vs H-WF²Q+, scenario 1 (constant-rate and
// packet-train cross traffic at guaranteed rates; BE-1 greedy).
//
// The paper's figure shows large periodic delay spikes under H-WFQ (beats
// between RT-1's 100 ms cycle and the CS trains' ~193 ms cycle) and a flat,
// small delay under H-WF²Q+. Absolute values depend on the simulator, the
// *shape* — who spikes, who stays flat, by roughly what factor — is the
// reproduced result.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/node_policy.h"
#include "fig_common.h"

namespace hfq::bench {
namespace {

void report(const char* name, const Fig3Result& r,
            std::vector<std::vector<double>>& csv_rows, int series_id) {
  std::cout << "  " << name << ": packets=" << r.rt_delay.count()
            << "  max=" << fmt_ms(r.rt_delay.max_delay())
            << "  mean=" << fmt_ms(r.rt_delay.mean_delay())
            << "  p99=" << fmt_ms(r.rt_delay.percentile(99.0)) << '\n';
  for (const auto& s : r.rt_delay.samples()) {
    csv_rows.push_back({static_cast<double>(series_id), s.when, s.delay});
  }
}

int run() {
  std::cout << "== Figure 4: RT-1 absolute delay, scenario 1 "
               "(guaranteed-rate cross traffic) ==\n";
  Fig3Scenario sc;
  sc.cs_on = true;
  sc.ps_load = 1.0;
  sc.ps_poisson = false;

  const auto wfq = run_fig3<core::GpsSffPolicy>(sc);
  const auto wf2qp = run_fig3<core::Wf2qPlusPolicy>(sc);

  std::vector<std::vector<double>> csv;
  report("H-WFQ   ", wfq, csv, 0);
  report("H-WF2Q+ ", wf2qp, csv, 1);

  Table t({"scheduler", "max delay", "mean delay", "p99 delay"});
  t.row({"H-WFQ", fmt_ms(wfq.rt_delay.max_delay()),
         fmt_ms(wfq.rt_delay.mean_delay()),
         fmt_ms(wfq.rt_delay.percentile(99.0))});
  t.row({"H-WF2Q+", fmt_ms(wf2qp.rt_delay.max_delay()),
         fmt_ms(wf2qp.rt_delay.mean_delay()),
         fmt_ms(wf2qp.rt_delay.percentile(99.0))});
  t.print();

  write_csv("fig4_delay.csv", {"series(0=HWFQ,1=HWF2Q+)", "t_s", "delay_s"},
            csv);

  const bool shape_holds =
      wfq.rt_delay.max_delay() > 2.0 * wf2qp.rt_delay.max_delay();
  std::cout << "shape check (H-WFQ max >> H-WF2Q+ max): "
            << (shape_holds ? "OK" : "FAILED") << "\n\n";
  return shape_holds ? 0 : 1;
}

}  // namespace
}  // namespace hfq::bench

int main() { return hfq::bench::run(); }
