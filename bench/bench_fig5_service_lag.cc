// Experiment E4 — Figure 5: service lag of RT-1 (cumulative packets arrived
// vs. cumulative packets served) under H-WFQ and H-WF²Q+, scenario 1.
//
// In the paper the two curves "track closely" under H-WF²Q+ but "differ by a
// large amount" under H-WFQ. The lag (vertical gap at service instants) is
// the observable the Worst-case Fair Index controls.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/node_policy.h"
#include "fig_common.h"

namespace hfq::bench {
namespace {

int run() {
  std::cout << "== Figure 5: RT-1 service lag (arrivals vs. service) ==\n";
  Fig3Scenario sc;  // scenario 1

  const auto wfq = run_fig3<core::GpsSffPolicy>(sc);
  const auto wf2qp = run_fig3<core::Wf2qPlusPolicy>(sc);

  Table t({"scheduler", "max lag (packets)", "max lag (ms at 9 Mbps)"});
  const double pkt_time_rt = kPktBits / 9e6;
  t.row({"H-WFQ", fmt(wfq.rt_curve.max_lag(), 1),
         fmt_ms(wfq.rt_curve.max_lag() * pkt_time_rt)});
  t.row({"H-WF2Q+", fmt(wf2qp.rt_curve.max_lag(), 1),
         fmt_ms(wf2qp.rt_curve.max_lag() * pkt_time_rt)});
  t.print();

  // Emit the two cumulative curves around the worst H-WFQ spike for
  // replotting the paper's close-up.
  double spike_t = 0.0, worst = 0.0;
  for (const auto& s : wfq.rt_delay.samples()) {
    if (s.delay > worst) {
      worst = s.delay;
      spike_t = s.when;
    }
  }
  const double lo = spike_t - 0.3, hi = spike_t + 0.3;
  std::vector<std::vector<double>> csv;
  auto dump = [&](int series, const stats::ServiceCurve& c) {
    for (const auto& p : c.arrivals()) {
      if (p.when >= lo && p.when <= hi) {
        csv.push_back({static_cast<double>(series), 0.0, p.when, p.cumulative});
      }
    }
    for (const auto& p : c.services()) {
      if (p.when >= lo && p.when <= hi) {
        csv.push_back({static_cast<double>(series), 1.0, p.when, p.cumulative});
      }
    }
  };
  dump(0, wfq.rt_curve);
  dump(1, wf2qp.rt_curve);
  write_csv("fig5_service_lag.csv",
            {"series(0=HWFQ,1=HWF2Q+)", "curve(0=arrived,1=served)", "t_s",
             "packets"},
            csv);

  const bool shape_holds = wfq.rt_curve.max_lag() >
                           2.0 * wf2qp.rt_curve.max_lag();
  std::cout << "shape check (H-WFQ lag >> H-WF2Q+ lag): "
            << (shape_holds ? "OK" : "FAILED") << "\n\n";
  return shape_holds ? 0 : 1;
}

}  // namespace
}  // namespace hfq::bench

int main() { return hfq::bench::run(); }
