// Experiment E5 — Figure 6: RT-1 delay with overloaded Poisson cross
// traffic (PS-n at 1.5x their guaranteed rates, CS-n off), H-WFQ vs
// H-WF²Q+.
//
// Paper observation: "even with purely random initial arrival, the maximum
// delay experienced under H-WFQ is still much greater than under H-WF²Q+."
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/node_policy.h"
#include "fig_common.h"

namespace hfq::bench {
namespace {

int run() {
  std::cout << "== Figure 6: RT-1 delay, overloaded Poisson cross traffic "
               "(PS-n at 1.5x, CS-n off) ==\n";
  Fig3Scenario sc;
  sc.cs_on = false;
  sc.ps_load = 1.5;
  sc.ps_poisson = true;

  const auto wfq = run_fig3<core::GpsSffPolicy>(sc);
  const auto wf2qp = run_fig3<core::Wf2qPlusPolicy>(sc);

  Table t({"scheduler", "max delay", "mean delay", "p99 delay"});
  t.row({"H-WFQ", fmt_ms(wfq.rt_delay.max_delay()),
         fmt_ms(wfq.rt_delay.mean_delay()),
         fmt_ms(wfq.rt_delay.percentile(99.0))});
  t.row({"H-WF2Q+", fmt_ms(wf2qp.rt_delay.max_delay()),
         fmt_ms(wf2qp.rt_delay.mean_delay()),
         fmt_ms(wf2qp.rt_delay.percentile(99.0))});
  t.print();

  std::vector<std::vector<double>> csv;
  for (const auto& s : wfq.rt_delay.samples()) csv.push_back({0, s.when, s.delay});
  for (const auto& s : wf2qp.rt_delay.samples()) csv.push_back({1, s.when, s.delay});
  write_csv("fig6_delay.csv", {"series(0=HWFQ,1=HWF2Q+)", "t_s", "delay_s"},
            csv);

  const double ratio = wfq.rt_delay.max_delay() / wf2qp.rt_delay.max_delay();
  // Under pure Poisson overload the cross traffic is uncorrelated, so the
  // H-WFQ catch-up runs are smaller than in the phase-locked scenario 1 —
  // the win direction is the reproduced shape (see EXPERIMENTS.md).
  const bool shape_holds = ratio > 1.3;
  std::cout << "shape check (H-WFQ max > H-WF2Q+ max, ratio=" << fmt(ratio, 2)
            << "): " << (shape_holds ? "OK" : "FAILED") << "\n\n";
  return shape_holds ? 0 : 1;
}

}  // namespace
}  // namespace hfq::bench

int main() { return hfq::bench::run(); }
