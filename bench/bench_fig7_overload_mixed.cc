// Experiment E6 — Figure 7: RT-1 delay with overloaded Poisson traffic AND
// the constant-rate packet trains back on (the paper's worst case for
// H-WFQ: "the effects of any correlated sources are magnified under
// overload"; H-WF²Q+ "remains almost the same").
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/node_policy.h"
#include "fig_common.h"

namespace hfq::bench {
namespace {

int run() {
  std::cout << "== Figure 7: RT-1 delay, overloaded Poisson + constant "
               "trains (PS-n at 1.5x, CS-n on) ==\n";
  Fig3Scenario sc;
  sc.cs_on = true;
  sc.ps_load = 1.5;
  sc.ps_poisson = true;

  const auto wfq = run_fig3<core::GpsSffPolicy>(sc);
  const auto wf2qp = run_fig3<core::Wf2qPlusPolicy>(sc);

  // For the paper's cross-scenario comparison, also rerun scenario 2
  // (CS off) under H-WF²Q+ to show its delay is insensitive to the trains.
  Fig3Scenario sc2 = sc;
  sc2.cs_on = false;
  const auto wf2qp_no_cs = run_fig3<core::Wf2qPlusPolicy>(sc2);

  Table t({"scheduler", "max delay", "mean delay", "p99 delay"});
  t.row({"H-WFQ (CS on)", fmt_ms(wfq.rt_delay.max_delay()),
         fmt_ms(wfq.rt_delay.mean_delay()),
         fmt_ms(wfq.rt_delay.percentile(99.0))});
  t.row({"H-WF2Q+ (CS on)", fmt_ms(wf2qp.rt_delay.max_delay()),
         fmt_ms(wf2qp.rt_delay.mean_delay()),
         fmt_ms(wf2qp.rt_delay.percentile(99.0))});
  t.row({"H-WF2Q+ (CS off)", fmt_ms(wf2qp_no_cs.rt_delay.max_delay()),
         fmt_ms(wf2qp_no_cs.rt_delay.mean_delay()),
         fmt_ms(wf2qp_no_cs.rt_delay.percentile(99.0))});
  t.print();

  std::vector<std::vector<double>> csv;
  for (const auto& s : wfq.rt_delay.samples()) csv.push_back({0, s.when, s.delay});
  for (const auto& s : wf2qp.rt_delay.samples()) csv.push_back({1, s.when, s.delay});
  write_csv("fig7_delay.csv", {"series(0=HWFQ,1=HWF2Q+)", "t_s", "delay_s"},
            csv);

  // Shape checks: H-WFQ spikes above H-WF2Q+ and is magnified by the
  // correlated trains; H-WF2Q+ is insensitive to them.
  const double ratio = wfq.rt_delay.max_delay() / wf2qp.rt_delay.max_delay();
  const bool wfq_spikes = ratio > 1.3;
  const bool insensitive =
      wf2qp.rt_delay.max_delay() < 1.5 * wf2qp_no_cs.rt_delay.max_delay() + 0.01;
  std::cout << "shape check (H-WFQ max > H-WF2Q+ max, ratio=" << fmt(ratio, 2)
            << "): " << (wfq_spikes ? "OK" : "FAILED") << '\n';
  std::cout << "shape check (H-WF2Q+ insensitive to CS trains): "
            << (insensitive ? "OK" : "FAILED") << "\n\n";
  return (wfq_spikes && insensitive) ? 0 : 1;
}

}  // namespace
}  // namespace hfq::bench

int main() { return hfq::bench::run(); }
