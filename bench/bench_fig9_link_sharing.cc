// Experiment E7 — Figures 8 and 9 (§5.2): hierarchical link-sharing with
// TCP and on/off sources under H-WF²Q+, measured bandwidth vs. the ideal
// H-GPS allocation.
//
// The paper's tree is four levels deep with one on/off source per level and
// TCP sessions whose bandwidth is tracked as the on/off sources toggle
// (Fig. 8(b) schedule). The exact tree is not fully specified; the tree
// below preserves its structure — TCP-{1,5,8,10,11} measured at depths
// 1,2,3,4,4; ONOFF-h at depth h — and the schedule reproduces the paper's
// event sequence (sources toggling at 5000/5250/6000/6750/7500/8000/8250/
// 9000 ms). Measured curves use the paper's method: exponential averaging
// over 50 ms windows. The ideal curves come from the hierarchical
// water-filling solver (fluid H-GPS with demand caps).
//
//   link: 10 Mbps
//   ├── TCP-1:   1.0
//   ├── ONOFF-1: 2.0
//   └── A: 7.0
//       ├── TCP-5:   1.0
//       ├── ONOFF-2: 2.0
//       └── B: 4.0
//           ├── TCP-8:   1.0
//           ├── ONOFF-3: 1.0
//           └── C: 2.0
//               ├── TCP-10: 0.7
//               ├── TCP-11: 0.7
//               └── ONOFF-4: 0.6
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/hierarchy.h"
#include "core/node_policy.h"
#include "fluid/share_solver.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "stats/rate_estimator.h"
#include "traffic/onoff.h"
#include "traffic/tcp.h"

namespace hfq::bench {
namespace {

constexpr double kLink = 10e6;
constexpr std::uint32_t kTcpBytes = 1000;
constexpr std::uint32_t kOnOffBytes = 1000;
constexpr double kHorizon = 10.0;

// Flow ids.
enum : net::FlowId {
  kTcp1 = 0,
  kTcp5,
  kTcp8,
  kTcp10,
  kTcp11,
  kOn1,
  kOn2,
  kOn3,
  kOn4,
  kFlowCount
};

const char* kFlowNames[kFlowCount] = {"TCP-1", "TCP-5",   "TCP-8",
                                      "TCP-10", "TCP-11", "ONOFF-1",
                                      "ONOFF-2", "ONOFF-3", "ONOFF-4"};
const double kOnOffRate[4] = {2e6, 2e6, 1e6, 0.6e6};

// Active intervals per on/off source (the Fig. 8(b) schedule).
const std::vector<std::pair<double, double>> kSchedule[4] = {
    {{0.0, 5.25}, {6.0, 6.75}, {7.5, 8.25}, {9.0, 10.0}},  // ONOFF-1
    {{0.0, 5.0}},                                          // ONOFF-2
    {{0.0, 5.0}, {8.0, 10.0}},                             // ONOFF-3
    {{5.0, 8.0}},                                          // ONOFF-4
};

core::Hierarchy make_tree() {
  core::Hierarchy spec(kLink);
  spec.add_session(0, "TCP-1", 1e6, kTcp1, 32);
  spec.add_session(0, "ONOFF-1", 2e6, kOn1, 64);
  const auto a = spec.add_class(0, "A", 7e6);
  spec.add_session(a, "TCP-5", 1e6, kTcp5, 32);
  spec.add_session(a, "ONOFF-2", 2e6, kOn2, 64);
  const auto b = spec.add_class(a, "B", 4e6);
  spec.add_session(b, "TCP-8", 1e6, kTcp8, 32);
  spec.add_session(b, "ONOFF-3", 1e6, kOn3, 64);
  const auto c = spec.add_class(b, "C", 2e6);
  spec.add_session(c, "TCP-10", 0.7e6, kTcp10, 32);
  spec.add_session(c, "TCP-11", 0.7e6, kTcp11, 32);
  spec.add_session(c, "ONOFF-4", 0.6e6, kOn4, 64);
  return spec;
}

bool onoff_active(int which, double t) {
  for (const auto& [b, e] : kSchedule[which]) {
    if (t >= b && t < e) return true;
  }
  return false;
}

// Ideal H-GPS allocation at time t (bits/sec per flow).
std::vector<double> ideal_at(const core::Hierarchy& spec, double t) {
  auto solver = spec.build_solver();
  for (net::FlowId f = 0; f < kFlowCount; ++f) {
    // Hierarchy node index of flow f:
    for (std::uint32_t i = 0; i < spec.size(); ++i) {
      if (spec.node(i).leaf && spec.node(i).flow == f) {
        double demand;
        if (f >= kOn1) {
          const int which = static_cast<int>(f - kOn1);
          demand = onoff_active(which, t) ? kOnOffRate[which] : 0.0;
        } else {
          demand = fluid::ShareSolver::kInfiniteDemand;
        }
        solver.set_demand(i, demand);
      }
    }
  }
  const auto alloc = solver.solve(kLink);
  std::vector<double> per_flow(kFlowCount, 0.0);
  for (std::uint32_t i = 0; i < spec.size(); ++i) {
    if (spec.node(i).leaf) per_flow[spec.node(i).flow] = alloc[i];
  }
  return per_flow;
}

int run() {
  std::cout << "== Figures 8+9: hierarchical link sharing, TCP bandwidth "
               "under H-WF2Q+ vs ideal H-GPS ==\n";
  const core::Hierarchy spec = make_tree();
  auto sched = spec.build_packet<core::Wf2qPlusPolicy>();
  sim::Simulator sim;
  sim::Link link(sim, *sched, kLink);

  // Measured bandwidth: 50 ms exponential averaging, as in the paper.
  std::vector<stats::RateEstimator> rate;
  rate.reserve(kFlowCount);
  for (int i = 0; i < static_cast<int>(kFlowCount); ++i) {
    rate.emplace_back(0.050, 0.3);
  }
  // Plain per-interval byte counters for the summary table.
  std::map<net::FlowId, double> interval_bits;

  std::vector<std::unique_ptr<traffic::TcpSource>> tcps;
  traffic::TcpConfig cfg;
  cfg.one_way_delay_s = 0.005;
  for (const net::FlowId f : {kTcp1, kTcp5, kTcp8, kTcp10, kTcp11}) {
    tcps.push_back(std::make_unique<traffic::TcpSource>(
        sim, [&link](net::Packet p) { return link.submit(p); }, f, kTcpBytes,
        cfg));
  }

  link.set_delivery([&](const net::Packet& p, net::Time t) {
    rate[p.flow].on_delivery(t, p.size_bits());
    interval_bits[p.flow] += p.size_bits();
    if (p.flow <= kTcp11) {
      tcps[p.flow]->on_packet_delivered(p);
    }
  });

  for (auto& tcp : tcps) tcp->start(0.0);

  std::vector<std::unique_ptr<traffic::OnOffSource>> onoffs;
  for (int i = 0; i < 4; ++i) {
    auto src = std::make_unique<traffic::OnOffSource>(
        sim, [&link](net::Packet p) { return link.submit(p); },
        static_cast<net::FlowId>(kOn1 + i), kOnOffBytes, kOnOffRate[i]);
    src->start_schedule(kSchedule[i]);
    onoffs.push_back(std::move(src));
  }

  // Interval boundaries = union of all schedule edges.
  const std::vector<double> edges = {0.0, 5.0, 5.25, 6.0, 6.75,
                                     7.5, 8.0, 8.25, 9.0, 10.0};

  Table t({"interval", "flow", "ideal Mbps", "measured Mbps", "rel err"});
  struct Check {
    double ideal, measured, seconds;
  };
  std::vector<Check> checks;
  for (std::size_t e = 0; e + 1 < edges.size(); ++e) {
    const double lo = edges[e], hi = edges[e + 1];
    interval_bits.clear();
    sim.run_until(hi);
    const auto ideal = ideal_at(spec, (lo + hi) / 2.0);
    for (const net::FlowId f : {kTcp1, kTcp5, kTcp8, kTcp10, kTcp11}) {
      const double measured = interval_bits[f] / (hi - lo);
      const double err = ideal[f] > 0.0
                             ? std::abs(measured - ideal[f]) / ideal[f]
                             : 0.0;
      t.row({fmt(lo, 2) + "-" + fmt(hi, 2) + " s", kFlowNames[f],
             fmt_mbps(ideal[f]), fmt_mbps(measured), fmt(100.0 * err, 1) + "%"});
      checks.push_back(Check{ideal[f], measured, hi - lo});
    }
  }
  t.print();

  // CSV: the 50 ms exponential-average series for replotting Fig. 9(a).
  std::vector<std::vector<double>> csv;
  for (const net::FlowId f : {kTcp1, kTcp5, kTcp8, kTcp10, kTcp11}) {
    rate[f].flush(kHorizon);
    for (const auto& s : rate[f].series()) {
      csv.push_back({static_cast<double>(f), s.when, s.rate_bps});
    }
  }
  write_csv("fig9_bandwidth.csv", {"flow", "t_s", "rate_bps"}, csv);

  // Shape check: on intervals of >= 0.75 s (long enough for TCP to settle)
  // the measured bandwidth tracks the H-GPS ideal within 30%.
  bool ok = true;
  for (const auto& c : checks) {
    if (c.seconds >= 0.75 && c.ideal > 0.0) {
      ok = ok && std::abs(c.measured - c.ideal) / c.ideal < 0.30;
    }
  }
  std::cout << "shape check (measured tracks H-GPS ideal within 30% on "
               "settled intervals): "
            << (ok ? "OK" : "FAILED") << "\n\n";
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hfq::bench

int main() { return hfq::bench::run(); }
