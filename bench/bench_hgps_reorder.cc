// Experiment E2 — the Section 2.2 H-GPS example: the relative fluid finish
// order of two sessions' packets changes when a third session becomes
// active, which is why no single virtual time function can drive a packet
// approximation of H-GPS (the paper's motivation for building H-PFQ out of
// per-node PFQ servers).
//
// Tree: root{A:0.8{A1:0.75, A2:0.05}, B:0.2}, link rate 1, unit packets.
// A2 and B heavily backlogged at t=0; A1 idle, then (second run) A1 becomes
// backlogged at t=1.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "fluid/hgps.h"

namespace hfq::bench {
namespace {

struct Run {
  std::vector<double> a2;
  std::vector<double> b;
};

Run simulate(bool a1_arrives) {
  fluid::HgpsServer<double> h(1.0);
  const auto a = h.add_node(h.root(), 0.8);
  const auto a1 = h.add_node(a, 0.75);
  const auto a2 = h.add_node(a, 0.05);
  const auto b = h.add_node(h.root(), 0.2);
  for (int k = 0; k < 16; ++k) h.arrive(0.0, a2, 1.0);
  for (int k = 0; k < 20; ++k) h.arrive(0.0, b, 1.0);
  if (a1_arrives) {
    for (int k = 0; k < 60; ++k) h.arrive(1.0, a1, 1.0);
  }
  h.advance_to(60.0);
  Run out;
  for (const auto& d : h.departures()) {
    if (d.flow == a2) out.a2.push_back(d.time);
    if (d.flow == b) out.b.push_back(d.time);
  }
  return out;
}

int run() {
  std::cout << "== Section 2.2: H-GPS finish-order flip ==\n";
  const Run base = simulate(false);
  const Run flip = simulate(true);

  Table t({"packet", "finish (A1 idle)", "finish (A1 active from t=1)"});
  for (int k = 0; k < 3; ++k) {
    t.row({"A2 #" + std::to_string(k + 1), fmt(base.a2[k], 2),
           fmt(flip.a2[k], 2)});
  }
  for (int k = 0; k < 4; ++k) {
    t.row({"B  #" + std::to_string(k + 1), fmt(base.b[k], 2),
           fmt(flip.b[k], 2)});
  }
  t.print();

  // The paper's point: B's finishes are unchanged; A2's packets leapfrog
  // from "before B's" to "after all of B's shown here".
  bool ok = true;
  for (int k = 0; k < 4; ++k) ok = ok && std::abs(flip.b[k] - base.b[k]) < 1e-6;
  ok = ok && base.a2[1] < base.b[0];  // before: A2#2 ahead of B#1
  ok = ok && flip.a2[1] > flip.b[3];  // after: A2#2 behind B#4
  std::cout << "order-flip check: " << (ok ? "OK" : "FAILED") << '\n';
  std::cout << "(note: the paper's prose quotes post-arrival A2 finishes of "
               "21/41/61, neglecting A2's service in [0,1]; the exact values "
               "are 5/25/45 — the order flip is identical)\n\n";
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hfq::bench

int main() { return hfq::bench::run(); }
