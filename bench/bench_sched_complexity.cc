// Experiment E10 — the paper's complexity claim (§3.4): WF²Q+ does
// O(log N) work per packet, against WFQ/WF²Q whose exact GPS virtual time
// costs O(N) in the worst case, and the O(1)-ish SCFQ/SFQ/DRR baselines.
//
// google-benchmark microbenchmark: steady-state enqueue+dequeue pairs on a
// server with N continuously backlogged sessions. The adversarial pattern
// for the GPS clock — long idle-ish stretches followed by simultaneous
// re-arrivals — is exercised by the *_Churn variants, where all N sessions
// drain and refill, forcing O(N) fluid-departure processing per advance.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/wf2qplus.h"
#include "net/scheduler.h"
#include "sched/drr.h"
#include "sched/scfq.h"
#include "sched/sfq.h"
#include "sched/wf2q.h"
#include "sched/wfq.h"

namespace hfq::bench {
namespace {

constexpr double kLinkRate = 1e9;
constexpr std::uint32_t kBytes = 1000;

template <typename Sched>
void setup_flows(Sched& s, int n) {
  for (int f = 0; f < n; ++f) {
    s.add_flow(static_cast<net::FlowId>(f), kLinkRate / n);
  }
}

net::Packet pkt(net::FlowId f, std::uint64_t id) {
  net::Packet p;
  p.flow = f;
  p.size_bytes = kBytes;
  p.id = id;
  return p;
}

// Steady state: every flow stays backlogged; each iteration dequeues one
// packet and replenishes the same flow.
template <typename Sched>
void steady_state(benchmark::State& state, Sched& s) {
  const int n = static_cast<int>(state.range(0));
  setup_flows(s, n);
  const double pkt_time = 8.0 * kBytes / kLinkRate;
  std::uint64_t id = 0;
  double now = 0.0;
  for (int f = 0; f < n; ++f) {
    s.enqueue(pkt(static_cast<net::FlowId>(f), id++), now);
    s.enqueue(pkt(static_cast<net::FlowId>(f), id++), now);
  }
  for (auto _ : state) {
    now += pkt_time;
    auto p = s.dequeue(now);
    benchmark::DoNotOptimize(p);
    s.enqueue(pkt(p->flow, id++), now);
  }
  state.SetItemsProcessed(state.iterations());
}

// Churn: all flows drain completely, then all re-arrive simultaneously —
// the worst case for the exact GPS virtual time (O(N) departures pop per
// advance).
template <typename Sched>
void churn(benchmark::State& state, Sched& s) {
  const int n = static_cast<int>(state.range(0));
  setup_flows(s, n);
  const double pkt_time = 8.0 * kBytes / kLinkRate;
  std::uint64_t id = 0;
  double now = 0.0;
  for (auto _ : state) {
    for (int f = 0; f < n; ++f) {
      s.enqueue(pkt(static_cast<net::FlowId>(f), id++), now);
    }
    for (int f = 0; f < n; ++f) {
      now += pkt_time;
      auto p = s.dequeue(now);
      benchmark::DoNotOptimize(p);
    }
    now += n * pkt_time;  // idle gap: the fluid system fully drains
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_Wf2qPlus(benchmark::State& state) {
  core::Wf2qPlus s(kLinkRate);
  steady_state(state, s);
}
void BM_Wfq(benchmark::State& state) {
  sched::Wfq s(kLinkRate);
  steady_state(state, s);
}
void BM_Wf2q(benchmark::State& state) {
  sched::Wf2q s(kLinkRate);
  steady_state(state, s);
}
void BM_Scfq(benchmark::State& state) {
  sched::Scfq s;
  steady_state(state, s);
}
void BM_Sfq(benchmark::State& state) {
  sched::StartTimeFq s;
  steady_state(state, s);
}
void BM_Drr(benchmark::State& state) {
  // Frame scaled with N so each flow's quantum is one max packet — the
  // deployment rule that makes DRR O(1) (quanta below the packet size
  // degenerate into thousands of rounds per packet).
  sched::Drr s(kLinkRate, 8.0 * kBytes * static_cast<double>(state.range(0)));
  steady_state(state, s);
}

void BM_Wf2qPlus_Churn(benchmark::State& state) {
  core::Wf2qPlus s(kLinkRate);
  churn(state, s);
}
void BM_Wfq_Churn(benchmark::State& state) {
  sched::Wfq s(kLinkRate);
  churn(state, s);
}

BENCHMARK(BM_Wf2qPlus)->Arg(64)->Arg(512)->Arg(4096)->Arg(32768);
BENCHMARK(BM_Wfq)->Arg(64)->Arg(512)->Arg(4096)->Arg(32768);
BENCHMARK(BM_Wf2q)->Arg(64)->Arg(512)->Arg(4096)->Arg(32768);
BENCHMARK(BM_Scfq)->Arg(64)->Arg(512)->Arg(4096)->Arg(32768);
BENCHMARK(BM_Sfq)->Arg(64)->Arg(512)->Arg(4096)->Arg(32768);
BENCHMARK(BM_Drr)->Arg(64)->Arg(512)->Arg(4096)->Arg(32768);
BENCHMARK(BM_Wf2qPlus_Churn)->Arg(64)->Arg(512)->Arg(4096);
BENCHMARK(BM_Wfq_Churn)->Arg(64)->Arg(512)->Arg(4096);

}  // namespace
}  // namespace hfq::bench

BENCHMARK_MAIN();
