// Experiment E10 — the paper's complexity claim (§3.4): WF²Q+ does
// O(log N) work per packet, against WFQ/WF²Q whose exact GPS virtual time
// costs O(N) in the worst case, and the O(1)-ish SCFQ/SFQ/DRR baselines.
//
// google-benchmark microbenchmark: steady-state enqueue+dequeue pairs on a
// server with N continuously backlogged sessions. The adversarial pattern
// for the GPS clock — long idle-ish stretches followed by simultaneous
// re-arrivals — is exercised by the *_Churn variants, where all N sessions
// drain and refill, forcing O(N) fluid-departure processing per advance.
//
// Two entry points share the workload definitions:
//   (default)    google-benchmark, auto-tuned iteration counts — output
//                identical to the pre-runner version of this binary.
//   --campaign   fixed-iteration cells on the experiment runner
//                (src/runner/shard.h); `--jobs K` fans the (scheduler, N)
//                grid across K threads and a summary table is printed.
//   --datapath   before/after cells for the datapath rewrite: the verbatim
//                deque-era WF²Q+ (audit::Wf2qPlusLegacy) against the arena +
//                flat-heap core::Wf2qPlus ("new") and its TagCalendar
//                eligible-set build ("cal", sched/calendar.h) at
//                N ∈ {1e4, 1e5, 1e6}; writes BENCH_datapath.json
//                (override with --out PATH).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <vector>

#include "audit/wf2qplus_legacy.h"
#include "bench_util.h"
#include "core/wf2qplus.h"
#include "net/scheduler.h"
#include "runner/shard.h"
#include "sched/drr.h"
#include "sched/scfq.h"
#include "sched/sfq.h"
#include "sched/wf2q.h"
#include "sched/wfq.h"

namespace hfq::bench {
namespace {

constexpr double kLinkRate = 1e9;
constexpr std::uint32_t kBytes = 1000;

template <typename Sched>
void setup_flows(Sched& s, int n) {
  for (int f = 0; f < n; ++f) {
    s.add_flow(static_cast<net::FlowId>(f), kLinkRate / n);
  }
}

net::Packet pkt(net::FlowId f, std::uint64_t id) {
  net::Packet p;
  p.flow = f;
  p.size_bytes = kBytes;
  p.id = id;
  return p;
}

// Steady state: every flow stays backlogged; each iteration dequeues one
// packet and replenishes the same flow.
template <typename Sched>
void steady_state(benchmark::State& state, Sched& s) {
  const int n = static_cast<int>(state.range(0));
  setup_flows(s, n);
  const double pkt_time = 8.0 * kBytes / kLinkRate;
  std::uint64_t id = 0;
  double now = 0.0;
  for (int f = 0; f < n; ++f) {
    s.enqueue(pkt(static_cast<net::FlowId>(f), id++), now);
    s.enqueue(pkt(static_cast<net::FlowId>(f), id++), now);
  }
  for (auto _ : state) {
    now += pkt_time;
    auto p = s.dequeue(now);
    benchmark::DoNotOptimize(p);
    s.enqueue(pkt(p->flow, id++), now);
  }
  state.SetItemsProcessed(state.iterations());
}

// Churn: all flows drain completely, then all re-arrive simultaneously —
// the worst case for the exact GPS virtual time (O(N) departures pop per
// advance).
template <typename Sched>
void churn(benchmark::State& state, Sched& s) {
  const int n = static_cast<int>(state.range(0));
  setup_flows(s, n);
  const double pkt_time = 8.0 * kBytes / kLinkRate;
  std::uint64_t id = 0;
  double now = 0.0;
  for (auto _ : state) {
    for (int f = 0; f < n; ++f) {
      s.enqueue(pkt(static_cast<net::FlowId>(f), id++), now);
    }
    for (int f = 0; f < n; ++f) {
      now += pkt_time;
      auto p = s.dequeue(now);
      benchmark::DoNotOptimize(p);
    }
    now += n * pkt_time;  // idle gap: the fluid system fully drains
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_Wf2qPlus(benchmark::State& state) {
  core::Wf2qPlus s(kLinkRate);
  steady_state(state, s);
}
void BM_Wfq(benchmark::State& state) {
  sched::Wfq s(kLinkRate);
  steady_state(state, s);
}
void BM_Wf2q(benchmark::State& state) {
  sched::Wf2q s(kLinkRate);
  steady_state(state, s);
}
void BM_Scfq(benchmark::State& state) {
  sched::Scfq s;
  steady_state(state, s);
}
void BM_Sfq(benchmark::State& state) {
  sched::StartTimeFq s;
  steady_state(state, s);
}
void BM_Drr(benchmark::State& state) {
  // Frame scaled with N so each flow's quantum is one max packet — the
  // deployment rule that makes DRR O(1) (quanta below the packet size
  // degenerate into thousands of rounds per packet).
  sched::Drr s(kLinkRate, 8.0 * kBytes * static_cast<double>(state.range(0)));
  steady_state(state, s);
}

void BM_Wf2qPlus_Churn(benchmark::State& state) {
  core::Wf2qPlus s(kLinkRate);
  churn(state, s);
}
void BM_Wfq_Churn(benchmark::State& state) {
  sched::Wfq s(kLinkRate);
  churn(state, s);
}

BENCHMARK(BM_Wf2qPlus)->Arg(64)->Arg(512)->Arg(4096)->Arg(32768);
BENCHMARK(BM_Wfq)->Arg(64)->Arg(512)->Arg(4096)->Arg(32768);
BENCHMARK(BM_Wf2q)->Arg(64)->Arg(512)->Arg(4096)->Arg(32768);
BENCHMARK(BM_Scfq)->Arg(64)->Arg(512)->Arg(4096)->Arg(32768);
BENCHMARK(BM_Sfq)->Arg(64)->Arg(512)->Arg(4096)->Arg(32768);
BENCHMARK(BM_Drr)->Arg(64)->Arg(512)->Arg(4096)->Arg(32768);
BENCHMARK(BM_Wf2qPlus_Churn)->Arg(64)->Arg(512)->Arg(4096);
BENCHMARK(BM_Wfq_Churn)->Arg(64)->Arg(512)->Arg(4096);

// ---- --campaign mode: the same grid as fixed-iteration runner shards ----

// Fixed-iteration timing loops mirroring steady_state()/churn() above;
// returns the op count so the shard records both a deterministic counter
// and a wall-clock ns/op gauge.
template <typename Sched>
std::uint64_t timed_steady(Sched& s, int n, std::uint64_t iters,
                           double& ns_per_op) {
  setup_flows(s, n);
  const double pkt_time = 8.0 * kBytes / kLinkRate;
  std::uint64_t id = 0;
  double now = 0.0;
  for (int f = 0; f < n; ++f) {
    s.enqueue(pkt(static_cast<net::FlowId>(f), id++), now);
    s.enqueue(pkt(static_cast<net::FlowId>(f), id++), now);
  }
  std::uint64_t delivered = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    now += pkt_time;
    auto p = s.dequeue(now);
    benchmark::DoNotOptimize(p);
    if (!p) break;  // drained: report what was actually delivered
    ++delivered;
    s.enqueue(pkt(p->flow, id++), now);
  }
  const auto t1 = std::chrono::steady_clock::now();
  ns_per_op =
      delivered == 0
          ? 0.0
          : static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                    .count()) /
                static_cast<double>(delivered);
  return delivered;
}

template <typename Sched>
std::uint64_t timed_churn(Sched& s, int n, std::uint64_t rounds,
                          double& ns_per_op) {
  setup_flows(s, n);
  const double pkt_time = 8.0 * kBytes / kLinkRate;
  std::uint64_t id = 0;
  double now = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    for (int f = 0; f < n; ++f) {
      s.enqueue(pkt(static_cast<net::FlowId>(f), id++), now);
    }
    for (int f = 0; f < n; ++f) {
      now += pkt_time;
      auto p = s.dequeue(now);
      benchmark::DoNotOptimize(p);
    }
    now += n * pkt_time;  // idle gap: the fluid system fully drains
  }
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t ops = rounds * static_cast<std::uint64_t>(n);
  ns_per_op =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()) /
      static_cast<double>(ops);
  return ops;
}

struct ComplexityCell {
  const char* name;
  int sched_ix;  // 0..5 = WF2Q+ WFQ WF2Q SCFQ SFQ DRR
  int n;
  bool churn;
};

std::vector<ComplexityCell> complexity_cells() {
  static const char* kNames[] = {"WF2Q+", "WFQ", "WF2Q", "SCFQ", "SFQ", "DRR"};
  std::vector<ComplexityCell> cells;
  for (int s = 0; s < 6; ++s) {
    for (const int n : {64, 512, 4096, 32768}) {
      cells.push_back({kNames[s], s, n, false});
    }
  }
  for (const int s : {0, 1}) {  // churn: WF2Q+ and WFQ only, as above
    for (const int n : {64, 512, 4096}) {
      cells.push_back({kNames[s], s, n, true});
    }
  }
  return cells;
}

std::uint64_t run_complexity_cell(const ComplexityCell& c, double& ns_per_op) {
  constexpr std::uint64_t kOps = 1u << 15;
  const std::uint64_t rounds =
      std::max<std::uint64_t>(1, kOps / static_cast<std::uint64_t>(c.n));
  switch (c.sched_ix) {
    case 0: {
      core::Wf2qPlus s(kLinkRate);
      return c.churn ? timed_churn(s, c.n, rounds, ns_per_op)
                     : timed_steady(s, c.n, kOps, ns_per_op);
    }
    case 1: {
      sched::Wfq s(kLinkRate);
      return c.churn ? timed_churn(s, c.n, rounds, ns_per_op)
                     : timed_steady(s, c.n, kOps, ns_per_op);
    }
    case 2: {
      sched::Wf2q s(kLinkRate);
      return timed_steady(s, c.n, kOps, ns_per_op);
    }
    case 3: {
      sched::Scfq s;
      return timed_steady(s, c.n, kOps, ns_per_op);
    }
    case 4: {
      sched::StartTimeFq s;
      return timed_steady(s, c.n, kOps, ns_per_op);
    }
    default: {
      sched::Drr s(kLinkRate, 8.0 * kBytes * static_cast<double>(c.n));
      return timed_steady(s, c.n, kOps, ns_per_op);
    }
  }
}

int run_campaign_mode(unsigned jobs) {
  const std::vector<ComplexityCell> cells = complexity_cells();
  hfq::runner::ThreadPool pool(jobs);
  std::vector<hfq::runner::ShardRun> shards = hfq::runner::run_shards(
      /*campaign_seed=*/0, cells.size(), pool,
      [&](hfq::runner::ShardRun& shard) {
        double ns_per_op = 0.0;
        shard.metrics.counter("ops") +=
            run_complexity_cell(cells[shard.index], ns_per_op);
        shard.metrics.gauge("timing/ns_per_op") = ns_per_op;
      });

  Table t({"scheduler", "pattern", "N", "ops", "ns/op"});
  int failed = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ComplexityCell& c = cells[i];
    hfq::runner::ShardRun& shard = shards[i];
    if (!shard.ok()) {
      std::cerr << "cell " << i << " (" << c.name << ") failed: "
                << shard.error << '\n';
      ++failed;
      continue;
    }
    t.row({c.name, c.churn ? "churn" : "steady", std::to_string(c.n),
           std::to_string(shard.metrics.counter("ops")),
           fmt(shard.metrics.gauge("timing/ns_per_op"), 1)});
  }
  t.print();
  return failed == 0 ? 0 : 1;
}

// ---- --datapath mode: legacy vs rewritten hot path, BENCH_datapath.json ----

// One packet per flow into an idle scheduler — the arrival-path cost (queue
// growth, tag stamping, heap insert) with no state warm. This is the cell the
// datapath rewrite targets directly: the legacy layout pays a deque node
// allocation plus a potential vector resize per packet here.
template <typename Sched>
std::uint64_t timed_setup_enqueue(Sched& s, int n, double& ns_per_op) {
  setup_flows(s, n);
  std::uint64_t id = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int f = 0; f < n; ++f) {
    s.enqueue(pkt(static_cast<net::FlowId>(f), id++), 0.0);
  }
  const auto t1 = std::chrono::steady_clock::now();
  ns_per_op =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()) /
      static_cast<double>(n);
  return static_cast<std::uint64_t>(n);
}

// Steady state through the burst API: dequeue_burst a run of 64, re-offer the
// same flows via enqueue_burst. Legacy schedulers take the base-class
// per-packet fallback loop, so this cell shows the amortization headroom of
// the batched interface itself.
template <typename Sched>
std::uint64_t timed_burst(Sched& s, int n, std::uint64_t iters,
                          double& ns_per_op) {
  constexpr std::size_t kBurst = 64;
  setup_flows(s, n);
  const double pkt_time = 8.0 * kBytes / kLinkRate;
  const double inf = std::numeric_limits<double>::infinity();
  std::uint64_t id = 0;
  double now = 0.0;
  for (int f = 0; f < n; ++f) {
    s.enqueue(pkt(static_cast<net::FlowId>(f), id++), now);
    s.enqueue(pkt(static_cast<net::FlowId>(f), id++), now);
  }
  std::vector<net::Packet> out;
  std::vector<net::Packet> refill;
  out.reserve(kBurst);
  refill.reserve(kBurst);
  std::uint64_t done = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (done < iters) {
    out.clear();
    const std::size_t got = s.dequeue_burst(out, kBurst, now, kLinkRate, inf);
    if (got == 0) break;  // drained: don't spin on an empty scheduler
    now += static_cast<double>(got) * pkt_time;
    refill.clear();
    for (const net::Packet& p : out) refill.push_back(pkt(p.flow, id++));
    s.enqueue_burst(refill, now);
    done += got;
  }
  const auto t1 = std::chrono::steady_clock::now();
  ns_per_op =
      done == 0
          ? 0.0
          : static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                    .count()) /
                static_cast<double>(done);
  return done;
}

struct DatapathCell {
  const char* impl;     // "legacy" | "new" | "cal"
  const char* pattern;  // setup_enqueue | steady | churn | burst
  int n;
};

template <typename Sched>
std::uint64_t run_datapath_pattern(Sched& s, const char* pattern, int n,
                                   double& ns_per_op) {
  constexpr std::uint64_t kOps = 1u << 17;
  if (std::strcmp(pattern, "setup_enqueue") == 0) {
    return timed_setup_enqueue(s, n, ns_per_op);
  }
  if (std::strcmp(pattern, "steady") == 0) {
    return timed_steady(s, n, kOps, ns_per_op);
  }
  if (std::strcmp(pattern, "churn") == 0) {
    const std::uint64_t rounds =
        std::max<std::uint64_t>(1, kOps / static_cast<std::uint64_t>(n));
    return timed_churn(s, n, rounds, ns_per_op);
  }
  return timed_burst(s, n, kOps, ns_per_op);
}

int run_datapath_mode(const std::string& out_path) {
  static const char* kPatterns[] = {"setup_enqueue", "steady", "churn",
                                    "burst"};
  std::vector<DatapathCell> cells;
  for (const char* impl : {"legacy", "new", "cal"}) {
    for (const char* pattern : kPatterns) {
      for (const int n : {10000, 100000, 1000000}) {
        cells.push_back({impl, pattern, n});
      }
    }
  }

  struct Result {
    std::uint64_t ops = 0;
    double ns_per_op = 0.0;
  };
  std::vector<Result> results(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const DatapathCell& c = cells[i];
    Result& r = results[i];
    if (std::strcmp(c.impl, "legacy") == 0) {
      audit::Wf2qPlusLegacy s(kLinkRate);
      r.ops = run_datapath_pattern(s, c.pattern, c.n, r.ns_per_op);
    } else if (std::strcmp(c.impl, "cal") == 0) {
      core::Wf2qPlus s(kLinkRate, sched::EligEngine::kCalendar);
      r.ops = run_datapath_pattern(s, c.pattern, c.n, r.ns_per_op);
    } else {
      core::Wf2qPlus s(kLinkRate, sched::EligEngine::kHeap);
      r.ops = run_datapath_pattern(s, c.pattern, c.n, r.ns_per_op);
    }
    std::cerr << c.impl << ' ' << c.pattern << " N=" << c.n << ": "
              << fmt(r.ns_per_op, 1) << " ns/op\n";
  }

  Table t({"impl", "pattern", "N", "ops", "ns/op", "pkts/s"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const DatapathCell& c = cells[i];
    const Result& r = results[i];
    t.row({c.impl, c.pattern, std::to_string(c.n), std::to_string(r.ops),
           fmt(r.ns_per_op, 1), fmt(1e9 / r.ns_per_op, 0)});
  }
  t.print();

  // Cell lookup for the speedup summary (legacy ns / new ns per grid point).
  auto find = [&](const char* impl, const char* pattern, int n) -> double {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (std::strcmp(cells[i].impl, impl) == 0 &&
          std::strcmp(cells[i].pattern, pattern) == 0 && cells[i].n == n) {
        return results[i].ns_per_op;
      }
    }
    return 0.0;
  };

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }
  out << "{\n"
      << "  \"benchmark\": \"datapath\",\n"
      << "  \"link_rate_bps\": " << fmt(kLinkRate, 0) << ",\n"
      << "  \"packet_bytes\": " << kBytes << ",\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const DatapathCell& c = cells[i];
    const Result& r = results[i];
    out << "    {\"impl\": \"" << c.impl << "\", \"pattern\": \"" << c.pattern
        << "\", \"n\": " << c.n << ", \"ops\": " << r.ops
        << ", \"ns_per_op\": " << fmt(r.ns_per_op, 1)
        << ", \"packets_per_sec\": " << fmt(1e9 / r.ns_per_op, 0) << "}"
        << (i + 1 < cells.size() ? "," : "") << '\n';
  }
  out << "  ],\n  \"speedup_legacy_over_new\": [\n";
  bool first = true;
  for (const char* pattern : kPatterns) {
    for (const int n : {10000, 100000, 1000000}) {
      const double legacy_ns = find("legacy", pattern, n);
      const double new_ns = find("new", pattern, n);
      if (new_ns <= 0.0) continue;
      if (!first) out << ",\n";
      first = false;
      out << "    {\"pattern\": \"" << pattern << "\", \"n\": " << n
          << ", \"x\": " << fmt(legacy_ns / new_ns, 2) << "}";
    }
  }
  out << "\n  ],\n  \"speedup_new_over_cal\": [\n";
  first = true;
  for (const char* pattern : kPatterns) {
    for (const int n : {10000, 100000, 1000000}) {
      const double new_ns = find("new", pattern, n);
      const double cal_ns = find("cal", pattern, n);
      if (cal_ns <= 0.0) continue;
      if (!first) out << ",\n";
      first = false;
      out << "    {\"pattern\": \"" << pattern << "\", \"n\": " << n
          << ", \"x\": " << fmt(new_ns / cal_ns, 2) << "}";
    }
  }
  out << "\n  ]\n}\n";
  std::cerr << "wrote " << out_path << '\n';
  return 0;
}

}  // namespace
}  // namespace hfq::bench

// Custom main: `--campaign [--jobs N]` selects the runner-sharded mode; any
// other invocation is handed to google-benchmark verbatim (identical to
// BENCHMARK_MAIN()).
int main(int argc, char** argv) {
  bool campaign = false;
  bool datapath = false;
  std::string out_path = "BENCH_datapath.json";
  unsigned jobs = 1;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--campaign") == 0) {
      campaign = true;
    } else if (std::strcmp(argv[i], "--datapath") == 0) {
      datapath = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (datapath) return hfq::bench::run_datapath_mode(out_path);
  if (campaign) return hfq::bench::run_campaign_mode(jobs);
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
