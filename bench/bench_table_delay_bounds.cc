// Experiment E9 — Corollary 2: measured worst-case delay of a leaky-bucket
// constrained session in an H-WF²Q+ hierarchy versus the analytical bound
//   sigma/r_i + sum over ancestor servers n of Lmax/r_n  (+ one link packet
//   time of measurement slack, since delay is measured to the end of
//   transmission),
// swept over hierarchy depth, with greedy adversarial cross traffic at
// every level. For contrast the same scenario is run under H-WFQ and
// H-SCFQ, whose nodes have no per-level Lmax WFI bound — their measured
// delays exceed the WF²Q+ bound's per-level structure as depth grows.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/hierarchy.h"
#include "core/node_policy.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "traffic/leaky_bucket.h"
#include "util/rng.h"

namespace hfq::bench {
namespace {

constexpr double kLink = 80.0;     // bps (unit-free toy scale)
constexpr std::uint32_t kBytes = 10;  // 80 bits = Lmax
constexpr double kLmax = 80.0;

struct CrossFlow {
  net::FlowId flow;
  double rate;  // guaranteed (= long-run) rate while everyone is greedy
};

struct Setup {
  core::Hierarchy spec;
  double r_session = 0.0;         // guaranteed rate of the measured session
  std::vector<double> r_servers;  // rates of its ancestor servers
  std::vector<CrossFlow> cross;   // greedy cross sessions
};

// Builds a depth-D chain: at every level the measured session's class
// shares the parent's rate with five greedy sibling sessions (so each node
// has enough competitors for the baselines' large WFI to show).
Setup make_chain(int depth) {
  Setup s{core::Hierarchy(kLink), 0.0, {}, {}};
  std::uint32_t node = 0;
  double rate = kLink;
  s.r_servers.push_back(kLink);  // root server
  net::FlowId next_flow = 1;     // flow 0 = measured session
  for (int d = 0; d < depth; ++d) {
    for (int j = 0; j < 5; ++j) {
      const double r = rate / 10.0;
      s.spec.add_session(node, "x" + std::to_string(d) + "_" +
                                   std::to_string(j),
                         r, next_flow);
      s.cross.push_back(CrossFlow{next_flow, r});
      ++next_flow;
    }
    node = s.spec.add_class(node, "L" + std::to_string(d), rate / 2.0);
    rate /= 2.0;
    s.r_servers.push_back(rate);
  }
  s.spec.add_session(node, "probe", rate / 2.0, 0);
  s.spec.add_session(node, "xleaf", rate / 2.0, next_flow);
  s.cross.push_back(CrossFlow{next_flow, rate / 2.0});
  s.r_session = rate / 2.0;
  return s;
}

struct Result {
  double max_delay = 0.0;
  double bound = 0.0;
};

template <typename Policy>
Result run_depth(int depth, std::uint64_t seed) {
  Setup su = make_chain(depth);
  auto sched = su.spec.build_packet<Policy>();
  sim::Simulator sim;
  sim::Link link(sim, *sched, kLink);

  const double sigma = 3.0 * kLmax;
  Result res;
  res.bound = sigma / su.r_session + kLmax / kLink /*tx slack*/;
  for (const double r : su.r_servers) res.bound += kLmax / r;

  link.set_delivery([&res](const net::Packet& p, net::Time t) {
    if (p.flow == 0) res.max_delay = std::max(res.max_delay, t - p.arrival);
  });

  traffic::LeakyBucketShaper shaper(
      sim, [&link](net::Packet p) { return link.submit(p); }, sigma,
      su.r_session);
  util::Rng rng = bench_rng(seed);
  std::uint64_t id = 0;
  double t = 0.0;
  for (int i = 0; i < 80; ++i) {
    t += rng.uniform(0.0, 8.0 * kLmax / su.r_session);
    const int burst = static_cast<int>(rng.uniform_int(1, 3));
    for (int k = 0; k < burst; ++k) {
      net::Packet p;
      p.flow = 0;
      p.size_bytes = kBytes;
      p.id = id++;
      sim.at(t, [&shaper, p] {
        net::Packet q = p;
        shaper.offer(q);
      });
    }
  }
  // Greedy cross traffic: everyone else loaded at t=0 with enough packets
  // to stay backlogged past the last probe (long-run service of a greedy
  // session in a fully loaded hierarchy equals its guaranteed rate).
  const double horizon = t;
  sim.at(0.0, [&] {
    for (const CrossFlow& cf : su.cross) {
      const int count =
          static_cast<int>(horizon * cf.rate / kLmax) + 400;
      preload_backlog([&link](net::Packet p) { link.submit(std::move(p)); },
                      cf.flow, kBytes, count,
                      static_cast<std::uint64_t>(cf.flow) << 32);
    }
  });
  sim.run();
  return res;
}

int run() {
  std::cout << "== Table: Corollary 2 delay bound vs. measured max delay "
               "(leaky-bucket probe, greedy cross traffic) ==\n";
  Table t({"depth", "bound", "H-WF2Q+ measured", "within bound?",
           "H-WFQ measured", "H-SCFQ measured"});
  bool ok = true;
  for (int depth = 1; depth <= 4; ++depth) {
    const auto wf2qp = run_depth<core::Wf2qPlusPolicy>(depth, 10 + depth);
    const auto wfq = run_depth<core::GpsSffPolicy>(depth, 10 + depth);
    const auto scfq = run_depth<core::ScfqPolicy>(depth, 10 + depth);
    const bool within = wf2qp.max_delay <= wf2qp.bound + 1e-9;
    ok = ok && within;
    t.row({std::to_string(depth), fmt(wf2qp.bound, 2),
           fmt(wf2qp.max_delay, 2), within ? "yes" : "NO",
           fmt(wfq.max_delay, 2), fmt(scfq.max_delay, 2)});
  }
  t.print();
  std::cout << "bound check (H-WF2Q+ within Corollary 2 at every depth): "
            << (ok ? "OK" : "FAILED") << "\n\n";
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hfq::bench

int main() { return hfq::bench::run(); }
