// Extension table — end-to-end delay across a chain of H-WF²Q+ hops
// versus the composed per-hop Corollary 2 bounds (the multi-hop framework
// the paper points to via [10]). Swept over path length.
#include <algorithm>
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/hpfq.h"
#include "sim/simulator.h"
#include "topo/network.h"
#include "traffic/cbr.h"
#include "traffic/leaky_bucket.h"
#include "util/rng.h"

namespace hfq::bench {
namespace {

constexpr double kRate = 10e6;
constexpr std::uint32_t kBytes = 1000;
constexpr double kLmax = 8.0 * kBytes;
constexpr double kProp = 0.001;
constexpr net::FlowId kProbe = 0;

struct Result {
  double measured = 0.0;
  double bound = 0.0;
};

Result run_hops(int hops, std::uint64_t seed) {
  sim::Simulator sim;
  topo::Network net(sim);
  std::vector<topo::PortId> path;
  for (int i = 0; i < hops; ++i) {
    auto sched = std::make_unique<core::HWf2qPlus>(kRate);
    sched->add_leaf(sched->root(), 1e6, kProbe);
    sched->add_leaf(sched->root(), 9e6, static_cast<net::FlowId>(1 + i));
    path.push_back(net.add_port(kRate, std::move(sched), kProp));
  }
  net.set_route(kProbe, path);
  for (int i = 0; i < hops; ++i) {
    net.set_route(static_cast<net::FlowId>(1 + i),
                  {path[static_cast<std::size_t>(i)]});
  }

  const double sigma = 2.0 * kLmax;
  std::map<std::uint64_t, double> sent_at;
  Result res;
  net.set_delivery([&](const net::Packet& p, net::Time t) {
    if (p.flow == kProbe) {
      res.measured = std::max(res.measured, t - sent_at[p.id]);
    }
  });
  traffic::LeakyBucketShaper shaper(
      sim,
      [&](net::Packet p) {
        sent_at[p.id] = sim.now();
        return net.inject(std::move(p));
      },
      sigma, 1e6);
  util::Rng rng = bench_rng(seed);
  double t = 0.0;
  std::uint64_t id = 0;
  for (int i = 0; i < 1500; ++i) {
    t += rng.exponential(2.0 * kLmax / 1e6);
    sim.at(t, [&shaper, pid = id++] {
      net::Packet p;
      p.flow = kProbe;
      p.size_bytes = kBytes;
      p.id = pid;
      shaper.offer(p);
    });
  }
  std::vector<std::unique_ptr<traffic::CbrSource>> cross;
  for (int i = 0; i < hops; ++i) {
    cross.push_back(std::make_unique<traffic::CbrSource>(
        sim, [&net](net::Packet p) { return net.inject(std::move(p)); },
        static_cast<net::FlowId>(1 + i), kBytes, kRate));
    cross.back()->start(0.0, t);
  }
  sim.run();

  // Composed bound: sigma once at the first hop, per-extra-hop output
  // burstiness sigma again, plus per-hop Lmax/r + transmission + prop.
  res.bound = sigma / 1e6 + (hops - 1) * sigma / 1e6;
  for (int i = 0; i < hops; ++i) {
    res.bound += kLmax / kRate + kLmax / kRate + kProp;
  }
  return res;
}

int run() {
  std::cout << "== Table: end-to-end delay vs. composed per-hop bounds "
               "(H-WF2Q+ chain, greedy cross traffic at every hop) ==\n";
  Table t({"hops", "measured max", "composed bound", "within?"});
  bool ok = true;
  for (int hops = 1; hops <= 5; ++hops) {
    const auto r = run_hops(hops, 40 + static_cast<std::uint64_t>(hops));
    const bool within = r.measured <= r.bound;
    ok = ok && within && r.measured > 0.0;
    t.row({std::to_string(hops), fmt_ms(r.measured), fmt_ms(r.bound),
           within ? "yes" : "NO"});
  }
  t.print();
  std::cout << "bound check: " << (ok ? "OK" : "FAILED") << "\n\n";
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hfq::bench

int main() { return hfq::bench::run(); }
