// Related-work overview (the paper's §6 in one table): for every one-level
// scheduler in the library, the measured Worst-case Fair Index at N=32, the
// measured latency-rate startup latency theta, and the algorithmic cost
// class — the three axes on which WF²Q+ is the first to win simultaneously.
#include <iostream>
#include <memory>
#include <string>

#include "bench_util.h"
#include "core/wf2qplus.h"
#include "net/scheduler.h"
#include "sched/approx_wfq.h"
#include "sched/drr.h"
#include "sched/scfq.h"
#include "sched/sfq.h"
#include "sched/virtual_clock.h"
#include "sched/wf2q.h"
#include "sched/wfq.h"
#include "sched/wrr.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "stats/latency_rate.h"
#include "stats/wfi_estimator.h"

namespace hfq::bench {
namespace {

constexpr double kLinkRate = 8000.0;
constexpr std::uint32_t kBytes = 125;
constexpr double kPktBits = 1000.0;
constexpr int kN = 32;  // light sessions

net::Packet pkt(net::FlowId f, std::uint64_t id) {
  net::Packet p;
  p.flow = f;
  p.size_bytes = kBytes;
  p.id = id;
  return p;
}

// B-WFI of the heavy session under the Fig. 2-style burst (packets).
template <typename Sched>
double measure_wfi(Sched& s) {
  sim::Simulator sim;
  sim::Link link(sim, s, kLinkRate);
  stats::WfiEstimator wfi(0.5);
  const int burst = 2 * kN + 10;
  int flow0_done = 0;
  link.set_delivery([&](const net::Packet& p, net::Time) {
    wfi.on_server_departure(p.size_bits(), p.flow == 0 ? p.size_bits() : 0.0);
    if (p.flow == 0 && ++flow0_done == burst) wfi.backlog_end();
  });
  sim.at(0.0, [&] {
    std::uint64_t id = 0;
    wfi.backlog_start();
    for (int k = 0; k < burst; ++k) link.submit(pkt(0, id++));
    for (int j = 1; j <= kN; ++j) {
      for (int k = 0; k < 6; ++k) {
        link.submit(pkt(static_cast<net::FlowId>(j), id++));
      }
    }
  });
  sim.run();
  return wfi.bwfi_bits() / kPktBits;
}

// Latency-rate theta of a session that becomes backlogged mid-contention.
template <typename Sched>
double measure_theta(Sched& s) {
  sim::Simulator sim;
  sim::Link link(sim, s, kLinkRate);
  stats::LatencyRateEstimator lr(kLinkRate / 2.0);
  link.set_delivery([&](const net::Packet& p, net::Time t) {
    if (p.flow == 0) lr.on_service(t, p.size_bits());
  });
  sim.at(0.0, [&] {
    std::uint64_t id = 0;
    for (int j = 1; j <= kN; ++j) {
      for (int k = 0; k < 2 * kN; ++k) {
        link.submit(pkt(static_cast<net::FlowId>(j), id++));
      }
    }
  });
  sim.at(1.0, [&] {
    lr.backlog_start(1.0);
    for (int k = 0; k < 30; ++k) {
      link.submit(pkt(0, 100000 + static_cast<std::uint64_t>(k)));
    }
  });
  sim.run();
  return lr.theta_seconds();
}

template <typename Sched>
void add_row(Table& t, const char* name, const char* cost, Sched&& make) {
  auto s1 = make();
  auto s2 = make();
  t.row({name, fmt(measure_wfi(*s1), 2), fmt(measure_theta(*s2) * 1e3, 1),
         cost});
}

template <typename S, typename... Args>
auto maker(Args... args) {
  return [args...] {
    auto s = std::make_unique<S>(args...);
    s->add_flow(0, kLinkRate / 2.0);
    for (int j = 1; j <= kN; ++j) {
      s->add_flow(static_cast<net::FlowId>(j), kLinkRate / 2.0 / kN);
    }
    return s;
  };
}

int run() {
  std::cout << "== Related-work overview (N=" << kN
            << " light sessions): WFI, latency-rate theta, cost ==\n";
  Table t({"scheduler", "B-WFI (pkts)", "LR theta (ms)", "per-packet cost"});
  add_row(t, "WFQ [6,14]", "O(N) worst", maker<sched::Wfq>(kLinkRate));
  add_row(t, "WF2Q [2]", "O(N) worst", maker<sched::Wf2q>(kLinkRate));
  add_row(t, "SCFQ [9]", "O(log N)", maker<sched::Scfq>());
  add_row(t, "SFQ (start-time)", "O(log N)", maker<sched::StartTimeFq>());
  add_row(t, "Virtual Clock", "O(log N)", maker<sched::VirtualClock>());
  add_row(t, "DRR [17]", "O(1)", maker<sched::Drr>(kLinkRate, 32 * kPktBits));
  add_row(t, "WRR", "O(1)", maker<sched::Wrr>(kLinkRate / 2.0 / kN));
  add_row(t, "ApproxWfq (SFF+Eq27)", "O(log N)",
          maker<sched::ApproxWfq>(kLinkRate));
  add_row(t, "WF2Q+ (this paper)", "O(log N)",
          maker<core::Wf2qPlus>(kLinkRate));
  t.print();

  // Shape: WF²Q+ must be at or near the best WFI *and* theta while staying
  // in the cheap cost class — the "first to have all three" claim.
  core::Wf2qPlus wf2qp(kLinkRate);
  wf2qp.add_flow(0, kLinkRate / 2.0);
  for (int j = 1; j <= kN; ++j) {
    wf2qp.add_flow(static_cast<net::FlowId>(j), kLinkRate / 2.0 / kN);
  }
  sched::Wfq wfq(kLinkRate);
  wfq.add_flow(0, kLinkRate / 2.0);
  for (int j = 1; j <= kN; ++j) {
    wfq.add_flow(static_cast<net::FlowId>(j), kLinkRate / 2.0 / kN);
  }
  const bool ok = measure_wfi(wf2qp) <= 1.2 && measure_wfi(wfq) > 10.0;
  std::cout << "shape check (WF2Q+ combines small WFI with cheap clock): "
            << (ok ? "OK" : "FAILED") << "\n\n";
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hfq::bench

int main() { return hfq::bench::run(); }
