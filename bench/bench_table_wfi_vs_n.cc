// Experiment E8 — the paper's §3.1/§3.2 claim as a table: the Worst-case
// Fair Index of WFQ (and the other SFF baselines) grows linearly with the
// number of sessions, while WF²Q and WF²Q+ stay at ~one maximum packet
// regardless of N (Theorems 3 and 4).
//
// Workload per N: the Fig. 2 pattern scaled up — session 0 has share 0.5
// and sends a long back-to-back burst at t=0; N light sessions (share
// 0.5/N each) are continuously backlogged. The measured quantity is the
// B-WFI of session 0 (Definition 2), in units of maximum packets.
//
// The (N, scheduler) cells run as independent shards on the experiment
// runner (src/runner/shard.h); `--jobs K` fans them across K threads. The
// measurement is seedless and cell-local, so the table is identical for
// every jobs count — and byte-identical to the pre-runner sequential
// version of this binary.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/wf2qplus.h"
#include "net/scheduler.h"
#include "runner/shard.h"
#include "sched/drr.h"
#include "sched/scfq.h"
#include "sched/sfq.h"
#include "sched/wf2q.h"
#include "sched/wfq.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "stats/wfi_estimator.h"

namespace hfq::bench {
namespace {

constexpr double kLinkRate = 8000.0;  // 1000-bit packets → 0.125 s slots
constexpr std::uint32_t kBytes = 125;
constexpr double kPktBits = 1000.0;

template <typename Sched>
double measure_bwfi_packets(Sched& s, int n_light) {
  sim::Simulator sim;
  sim::Link link(sim, s, kLinkRate);
  stats::WfiEstimator wfi(0.5);
  const int burst = 2 * n_light + 10;
  int flow0_departed = 0;
  link.set_delivery([&](const net::Packet& p, net::Time) {
    wfi.on_server_departure(p.size_bits(), p.flow == 0 ? p.size_bits() : 0.0);
    if (p.flow == 0 && ++flow0_departed == burst) {
      wfi.backlog_end();  // session 0's backlogged period is over
    }
  });
  sim.at(0.0, [&] {
    const auto submit = [&link](net::Packet p) { link.submit(std::move(p)); };
    wfi.backlog_start();
    std::uint64_t id = preload_backlog(submit, 0, kBytes, burst, 0);
    for (int j = 1; j <= n_light; ++j) {
      id = preload_backlog(submit, static_cast<net::FlowId>(j), kBytes, 6, id);
    }
  });
  sim.run();
  return wfi.bwfi_bits() / kPktBits;
}

template <typename Make>
double run_one(Make make, int n_light) {
  auto s = make();
  s->add_flow(0, kLinkRate / 2.0);
  for (int j = 1; j <= n_light; ++j) {
    s->add_flow(static_cast<net::FlowId>(j), kLinkRate / 2.0 / n_light);
  }
  return measure_bwfi_packets(*s, n_light);
}

constexpr int kSchedCount = 6;  // WFQ SCFQ SFQ DRR WF2Q WF2Q+

double run_cell(int sched_ix, int n) {
  switch (sched_ix) {
    case 0:
      return run_one([] { return std::make_unique<sched::Wfq>(kLinkRate); },
                     n);
    case 1:
      return run_one([] { return std::make_unique<sched::Scfq>(); }, n);
    case 2:
      return run_one([] { return std::make_unique<sched::StartTimeFq>(); }, n);
    case 3:
      return run_one(
          [] { return std::make_unique<sched::Drr>(kLinkRate, 8 * kPktBits); },
          n);
    case 4:
      return run_one([] { return std::make_unique<sched::Wf2q>(kLinkRate); },
                     n);
    default:
      return run_one(
          [] { return std::make_unique<core::Wf2qPlus>(kLinkRate); }, n);
  }
}

int run(unsigned jobs) {
  std::cout << "== Table: measured B-WFI of the heavy session vs. number of "
               "sessions (in max packets) ==\n";
  const std::vector<int> ns = {4, 8, 16, 32, 64};

  // One shard per (N, scheduler) cell, row-major. The B-WFI measurement is
  // deterministic (no traffic randomness), so the shard seed is unused.
  const std::size_t cells = ns.size() * kSchedCount;
  hfq::runner::ThreadPool pool(jobs);
  std::vector<hfq::runner::ShardRun> shards = hfq::runner::run_shards(
      /*campaign_seed=*/0, cells, pool, [&](hfq::runner::ShardRun& shard) {
        const int n = ns[shard.index / kSchedCount];
        const int sched_ix = static_cast<int>(shard.index % kSchedCount);
        shard.metrics.gauge("bwfi_packets") = run_cell(sched_ix, n);
      });
  for (const hfq::runner::ShardRun& shard : shards) {
    if (!shard.ok()) {
      std::cerr << "cell " << shard.index << " failed: " << shard.error
                << '\n';
      return 1;
    }
  }
  auto cell = [&](std::size_t ni, int sched_ix) {
    return shards[ni * kSchedCount + static_cast<std::size_t>(sched_ix)]
        .metrics.gauge("bwfi_packets");
  };

  Table t({"N (light sessions)", "WFQ", "SCFQ", "SFQ", "DRR", "WF2Q",
           "WF2Q+", "WF2Q+ bound (Thm 4)"});
  std::vector<double> wfq_series, wf2qp_series;
  for (std::size_t ni = 0; ni < ns.size(); ++ni) {
    const int n = ns[ni];
    const double wfq = cell(ni, 0);
    const double wf2qp = cell(ni, 5);
    // Theorem 4: alpha = L_i,max + (L_max − L_i,max) r_i/r = 1 packet here.
    t.row({std::to_string(n), fmt(wfq, 2), fmt(cell(ni, 1), 2),
           fmt(cell(ni, 2), 2), fmt(cell(ni, 3), 2), fmt(cell(ni, 4), 2),
           fmt(wf2qp, 2), "1.00"});
    wfq_series.push_back(wfq);
    wf2qp_series.push_back(wf2qp);
  }
  t.print();

  // Shape: WFQ's WFI grows ~linearly in N (≈ N/2); WF²Q+'s stays ≤ ~1.
  bool ok = true;
  for (std::size_t i = 1; i < ns.size(); ++i) {
    ok = ok && wfq_series[i] > 1.5 * wfq_series[i - 1];
  }
  ok = ok && wfq_series.back() > 20.0;
  for (const double v : wf2qp_series) ok = ok && v <= 1.2;
  std::cout << "shape check (WFQ WFI grows ~N/2; WF2Q+ WFI <= 1 packet): "
            << (ok ? "OK" : "FAILED") << "\n\n";
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hfq::bench

int main(int argc, char** argv) {
  unsigned jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::cerr << "usage: " << argv[0] << " [--jobs N]\n";
      return 2;
    }
  }
  return hfq::bench::run(jobs);
}
