// Telemetry-plane overhead budget (DESIGN.md "Telemetry").
//
// The acceptance bar is end-to-end — telemetry-on serve throughput within
// 2% of telemetry-off, recorded as the off/counters/monitor cells in
// BENCH_serve.json by `hfq_sweep --serve --grid` — but that number is
// noisy (threads, rings, pacing). This bench isolates the per-packet cost
// the shard actually pays, so a hot-path regression shows up as raw ns/op
// before it hides inside run-to-run serve jitter:
//
//   BM_SchedBaseline    the scheduler loop alone (what "off" pays)
//   BM_SchedCounters    + on_arrival/on_delivery/on_loop, no delay checks
//   BM_SchedMonitor     + per-delivery bound compare (monitor level)
//   BM_Hook*            each hook in isolation — the marginal cost of one
//                       more call site on the hot path
//
// Budget math: the flat datapath runs ~150-300 ns/packet (BENCH_serve
// unpaced cells), so 2% is 3-6 ns — the hooks must stay in the
// couple-of-relaxed-stores regime, which this bench makes measurable.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "core/wf2qplus.h"
#include "net/packet.h"
#include "telemetry/shard_telemetry.h"

namespace hfq::bench {
namespace {

constexpr double kLinkRate = 1e9;
constexpr std::uint32_t kBytes = 1000;

net::Packet pkt(net::FlowId f, std::uint64_t id) {
  net::Packet p;
  p.flow = f;
  p.size_bytes = kBytes;
  p.id = id;
  return p;
}

telemetry::ShardTelemetryConfig tel_cfg(std::size_t slots,
                                        bool delay_checks) {
  telemetry::ShardTelemetryConfig tc;
  tc.flow_slots = slots;
  tc.delay_checks = delay_checks;
  return tc;
}

// Steady-state enqueue+dequeue pairs on N backlogged WF²Q+ sessions — the
// same loop bench_sched_complexity and bench_trace_overhead time, so the
// telemetry deltas sit on a comparable baseline. `tel == nullptr` is the
// "off" level: the shard's `if (cfg_.telemetry)` branch and nothing else.
void sched_loop(benchmark::State& state, telemetry::ShardTelemetry* tel) {
  const int n = static_cast<int>(state.range(0));
  core::Wf2qPlus s(kLinkRate);
  for (int f = 0; f < n; ++f) {
    s.add_flow(static_cast<net::FlowId>(f), kLinkRate / n);
  }
  const double pkt_time = 8.0 * kBytes / kLinkRate;
  std::uint64_t id = 0;
  double now = 0.0;
  for (int f = 0; f < n; ++f) {
    s.enqueue(pkt(static_cast<net::FlowId>(f), id++), now);
    s.enqueue(pkt(static_cast<net::FlowId>(f), id++), now);
  }
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    now += pkt_time;
    auto p = s.dequeue(now);
    benchmark::DoNotOptimize(p);
    if (tel != nullptr) {
      // Mirror Shard::service_link / drain_ingress hook placement: breach
      // compare on every delivery, histogram sampled 1-in-8, one backlog
      // observation per loop.
      const bool sample = (++delivered & 7u) == 0;
      tel->on_delivery(p->flow, p->size_bytes, pkt_time, now, sample);
      tel->on_arrival(p->flow, kBytes);
      tel->on_loop(static_cast<std::uint64_t>(2 * n));
    }
    s.enqueue(pkt(p->flow, id++), now);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_SchedBaseline(benchmark::State& state) {
  sched_loop(state, nullptr);
  state.SetLabel("telemetry=off");
}

void BM_SchedCounters(benchmark::State& state) {
  telemetry::ShardTelemetry tel(
      tel_cfg(static_cast<std::size_t>(state.range(0)), false));
  sched_loop(state, &tel);
  state.SetLabel("telemetry=counters");
}

void BM_SchedMonitor(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  telemetry::ShardTelemetry tel(tel_cfg(n, true));
  // Generous bounds: the compare runs every delivery, the breach branch
  // never takes — the conforming-traffic steady state.
  for (std::size_t f = 0; f < n; ++f) {
    tel.set_bound(static_cast<net::FlowId>(f), 1e9);
  }
  sched_loop(state, &tel);
  state.SetLabel("telemetry=monitor");
}

// --- isolated hook costs ---------------------------------------------------

void BM_HookOnArrival(benchmark::State& state) {
  telemetry::ShardTelemetry tel(tel_cfg(1024, false));
  net::FlowId f = 0;
  for (auto _ : state) {
    tel.on_arrival(f, kBytes);
    f = (f + 1) & 1023u;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_HookOnDeliveryCounters(benchmark::State& state) {
  telemetry::ShardTelemetry tel(tel_cfg(1024, false));
  net::FlowId f = 0;
  std::uint64_t i = 0;
  for (auto _ : state) {
    tel.on_delivery(f, kBytes, 1e-4, 1.0, (++i & 7u) == 0);
    f = (f + 1) & 1023u;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_HookOnDeliveryMonitor(benchmark::State& state) {
  telemetry::ShardTelemetry tel(tel_cfg(1024, true));
  for (net::FlowId f = 0; f < 1024; ++f) tel.set_bound(f, 1e9);
  net::FlowId f = 0;
  std::uint64_t i = 0;
  for (auto _ : state) {
    tel.on_delivery(f, kBytes, 1e-4, 1.0, (++i & 7u) == 0);
    f = (f + 1) & 1023u;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_HookHistObserve(benchmark::State& state) {
  telemetry::LogHistogram h(1e-7);
  double v = 1e-6;
  for (auto _ : state) {
    h.observe(v);
    v = v < 1.0 ? v * 1.0000001 : 1e-6;
  }
  benchmark::DoNotOptimize(h.snapshot().count);
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_SchedBaseline)->Arg(64)->Arg(4096);
BENCHMARK(BM_SchedCounters)->Arg(64)->Arg(4096);
BENCHMARK(BM_SchedMonitor)->Arg(64)->Arg(4096);
BENCHMARK(BM_HookOnArrival);
BENCHMARK(BM_HookOnDeliveryCounters);
BENCHMARK(BM_HookOnDeliveryMonitor);
BENCHMARK(BM_HookHistObserve);

}  // namespace
}  // namespace hfq::bench

BENCHMARK_MAIN();
