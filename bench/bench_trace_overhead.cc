// Flight-recorder overhead budget (DESIGN.md "Observability").
//
// Three costs matter, and each build config exposes a different pair:
//
//   compiled-out   default build (-DHFQ_TRACE=OFF): HFQ_TRACE_EVENT expands
//                  to an empty statement, so NoRecorder here must match the
//                  same scheduler loop in bench_sched_complexity.
//   idle           -DHFQ_TRACE=ON but no recorder installed on the thread:
//                  every hook pays one thread_local pointer load + branch.
//   recording      -DHFQ_TRACE=ON with a RecordScope active: hooks format
//                  nothing, just stamp a fixed-size Event into the ring.
//
// Run the binary from both build trees and compare ns/op; each benchmark
// labels itself with the compile gate so the two outputs are unambiguous.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "core/wf2qplus.h"
#include "net/packet.h"
#include "obs/flight_recorder.h"

namespace hfq::bench {
namespace {

constexpr double kLinkRate = 1e9;
constexpr std::uint32_t kBytes = 1000;

net::Packet pkt(net::FlowId f, std::uint64_t id) {
  net::Packet p;
  p.flow = f;
  p.size_bytes = kBytes;
  p.id = id;
  return p;
}

const char* gate_label() {
  return obs::compiled_in() ? "HFQ_TRACE=ON" : "HFQ_TRACE=OFF";
}

// Steady-state enqueue+dequeue pairs on N backlogged WF²Q+ sessions — the
// same loop bench_sched_complexity times, so compiled-out numbers are
// directly comparable against that baseline.
void sched_loop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::Wf2qPlus s(kLinkRate);
  for (int f = 0; f < n; ++f) {
    s.add_flow(static_cast<net::FlowId>(f), kLinkRate / n);
  }
  const double pkt_time = 8.0 * kBytes / kLinkRate;
  std::uint64_t id = 0;
  double now = 0.0;
  for (int f = 0; f < n; ++f) {
    s.enqueue(pkt(static_cast<net::FlowId>(f), id++), now);
    s.enqueue(pkt(static_cast<net::FlowId>(f), id++), now);
  }
  for (auto _ : state) {
    now += pkt_time;
    auto p = s.dequeue(now);
    benchmark::DoNotOptimize(p);
    s.enqueue(pkt(p->flow, id++), now);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(gate_label());
}

// No recorder on the thread: compiled-out cost in the OFF build, idle-hook
// cost in the ON build.
void BM_SchedNoRecorder(benchmark::State& state) { sched_loop(state); }

// RecordScope active: every hook stamps an Event into the ring. In the OFF
// build the scope is installed but hooks don't exist, so this must equal
// BM_SchedNoRecorder there.
void BM_SchedRecording(benchmark::State& state) {
  obs::FlightRecorder recorder(obs::FlightRecorder::kDefaultCapacity);
  obs::RecordScope scope(recorder);
  sched_loop(state);
}

// Raw ring-write cost, isolated from any scheduler work: the marginal price
// of one additional hook on a hot path.
void BM_RecordEventRaw(benchmark::State& state) {
  obs::FlightRecorder recorder(obs::FlightRecorder::kDefaultCapacity);
  std::uint64_t i = 0;
  for (auto _ : state) {
    recorder.enqueue(obs::kFlatNode, 7, i++, units::WallTime{1.0},
                     units::VirtualTime{2.0}, 8000.0, 3.0);
    benchmark::DoNotOptimize(recorder.size());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(gate_label());
}

// SpanTimer pair cost (two steady_clock reads + two ring writes when a
// recorder is installed; a no-op object otherwise).
void BM_SpanTimer(benchmark::State& state) {
  obs::FlightRecorder recorder(obs::FlightRecorder::kDefaultCapacity);
  obs::RecordScope scope(recorder);
  for (auto _ : state) {
    obs::SpanTimer span("bench.span", 0.0);
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(gate_label());
}

BENCHMARK(BM_SchedNoRecorder)->Arg(64)->Arg(4096);
BENCHMARK(BM_SchedRecording)->Arg(64)->Arg(4096);
BENCHMARK(BM_RecordEventRaw);
BENCHMARK(BM_SpanTimer);

}  // namespace
}  // namespace hfq::bench

BENCHMARK_MAIN();
