// Helpers shared by the figure/table reproduction binaries: aligned console
// tables (the "rows the paper reports"), CSV series dumps for replotting,
// and the seeding/preload/drain boilerplate every experiment repeats.
#pragma once

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "net/packet.h"
#include "runner/splitmix.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace hfq::bench {

// Canonical bench RNG seeding. Stream 0 is the bench's own seed verbatim —
// the historical `util::Rng rng(seed)` — so existing outputs stay
// byte-identical; stream k > 0 derives an independent stream with the
// runner's SplitMix64 scheme (same contract as campaign shard seeds).
inline util::Rng bench_rng(std::uint64_t seed, std::uint64_t stream = 0) {
  return util::Rng(stream == 0 ? seed
                               : hfq::runner::derive_shard_seed(seed, stream));
}

// Submits `count` back-to-back packets of `size_bytes` for `flow` through
// `submit` (the usual way to make a session backlogged at t=0). Ids are
// first_id, first_id+1, ...; returns the next unused id so callers can
// chain preloads without id collisions.
template <typename Submit>
inline std::uint64_t preload_backlog(Submit&& submit, net::FlowId flow,
                                     std::uint32_t size_bytes, int count,
                                     std::uint64_t first_id) {
  for (int k = 0; k < count; ++k) {
    net::Packet p;
    p.flow = flow;
    p.size_bytes = size_bytes;
    p.id = first_id++;
    submit(std::move(p));
  }
  return first_id;
}

// Runs the simulation `margin_s` past the nominal source stop time, so
// queued backlog drains before measurements are read.
inline void run_and_drain(sim::Simulator& sim, double duration_s,
                          double margin_s) {
  sim.run_until(duration_s + margin_s);
}

// Minimal fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
        if (r[c].size() > width[c]) width[c] = r[c].size();
      }
    }
    auto line = [&] {
      os << '+';
      for (const auto w : width) os << std::string(w + 2, '-') << '+';
      os << '\n';
    };
    auto print_row = [&](const std::vector<std::string>& r) {
      os << '|';
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& cell = c < r.size() ? r[c] : std::string();
        os << ' ' << std::left << std::setw(static_cast<int>(width[c])) << cell
           << " |";
      }
      os << '\n';
    };
    line();
    print_row(headers_);
    line();
    for (const auto& r : rows_) print_row(r);
    line();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string fmt_ms(double seconds, int precision = 2) {
  return fmt(seconds * 1e3, precision) + " ms";
}

inline std::string fmt_mbps(double bps, int precision = 2) {
  return fmt(bps / 1e6, precision);
}

// Writes (x, y...) series as CSV next to the binary.
inline void write_csv(const std::string& path,
                      const std::vector<std::string>& columns,
                      const std::vector<std::vector<double>>& rows) {
  std::ofstream f(path);
  if (!f) {
    std::cerr << "warning: cannot write " << path << '\n';
    return;
  }
  for (std::size_t i = 0; i < columns.size(); ++i) {
    f << columns[i] << (i + 1 < columns.size() ? ',' : '\n');
  }
  for (const auto& r : rows) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      f << r[i] << (i + 1 < r.size() ? ',' : '\n');
    }
  }
  std::cout << "  (series written to " << path << ")\n";
}

}  // namespace hfq::bench
