// The Section 5.1 experiment (Figures 3–7): hierarchy, traffic mix, and the
// delay-measurement loop, shared by bench_fig4/5/6/7.
//
// The paper gives the constraints — RT-1 has share 0.81 of its parent N-1,
// which maps to a guaranteed rate of 9 Mbps; RT-1 is on/off 25 ms / 75 ms
// starting at t=200 ms; BE-1 is a continuously backlogged sibling; PS-n are
// constant-rate (or overloaded Poisson) sessions; CS-n are packet-train
// sessions arriving roughly every 193 ms through an upstream multiplexer;
// packets are 8 KB — but not the full tree, so the concrete hierarchy below
// is chosen to satisfy every stated constraint (documented in DESIGN.md):
//
//   link N-R: 45 Mbps
//   ├── N-2: 22.50 Mbps
//   │    ├── N-1: 11.11 Mbps
//   │    │    ├── RT-1: 9.00 Mbps  (share 0.81 of N-1)   [measured]
//   │    │    └── BE-1: 2.11 Mbps  (greedy)
//   │    └── PS-1..PS-10: 1.139 Mbps each (identical start times)
//   ├── CS-1..CS-10: 1.125 Mbps each (one multiplexed packet train)
//   └── PS-11..PS-20: 1.125 Mbps each (identical start times)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/hierarchy.h"
#include "core/hpfq.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "stats/delay_recorder.h"
#include "stats/service_curve.h"
#include "traffic/cbr.h"
#include "traffic/onoff.h"
#include "traffic/packet_train.h"
#include "traffic/poisson.h"
#include "util/rng.h"

namespace hfq::bench {

inline constexpr double kLinkBps = 45e6;
inline constexpr std::uint32_t kPktBytes = 8192;  // 8 KB, as in the paper
inline constexpr double kPktBits = 8.0 * kPktBytes;
inline constexpr net::FlowId kRt1 = 0;
inline constexpr net::FlowId kBe1 = 1;
inline constexpr net::FlowId kPsBase = 2;   // PS-1..PS-20 → flows 2..21
inline constexpr net::FlowId kCsBase = 22;  // CS-1..CS-10 → flows 22..31
inline constexpr int kPsCount = 20;

struct Fig3Scenario {
  bool cs_on = true;          // CS-n packet trains active
  double ps_load = 1.0;       // 1.0 = guaranteed rate; 1.5 = overloaded
  bool ps_poisson = false;    // false: constant-rate, true: Poisson
  double duration_s = 10.0;
  std::uint64_t seed = 1;
};

inline core::Hierarchy fig3_hierarchy() {
  core::Hierarchy spec(kLinkBps, "N-R");
  const auto n2 = spec.add_class(0, "N-2", 22.5e6);
  const auto n1 = spec.add_class(n2, "N-1", 11.11e6);
  spec.add_session(n1, "RT-1", 9.0e6, kRt1);
  spec.add_session(n1, "BE-1", 2.11e6, kBe1);
  for (int i = 0; i < 10; ++i) {
    spec.add_session(n2, "PS-" + std::to_string(i + 1), 1.139e6,
                     static_cast<net::FlowId>(kPsBase + i));
  }
  for (int i = 0; i < 10; ++i) {
    spec.add_session(0, "CS-" + std::to_string(i + 1), 1.125e6,
                     static_cast<net::FlowId>(kCsBase + i));
  }
  for (int i = 10; i < 20; ++i) {
    spec.add_session(0, "PS-" + std::to_string(i + 1), 1.125e6,
                     static_cast<net::FlowId>(kPsBase + i));
  }
  return spec;
}

struct Fig3Result {
  stats::DelayRecorder rt_delay;   // per-packet delay of RT-1
  stats::ServiceCurve rt_curve;    // cumulative arrivals/service (packets)
};

// Runs the scenario against the given node policy and measures RT-1.
template <typename Policy>
Fig3Result run_fig3(const Fig3Scenario& sc) {
  const core::Hierarchy spec = fig3_hierarchy();
  auto sched = spec.build_packet<Policy>();
  sim::Simulator sim;
  sim::Link link(sim, *sched, kLinkBps);

  Fig3Result out;
  link.set_delivery([&](const net::Packet& p, net::Time t) {
    if (p.flow == kRt1) {
      out.rt_delay.record(p, t);
      out.rt_curve.on_service(t);
    }
  });

  auto emit = [&link, &out](net::Packet p) {
    if (p.flow == kRt1) out.rt_curve.on_arrival(p.created);
    return link.submit(std::move(p));
  };

  util::Rng rng = bench_rng(sc.seed);

  // RT-1: deterministic on/off, 25 ms on / 75 ms off from t=200 ms; peak
  // rate equal to the guaranteed 9 Mbps. The guarantee can then drain the
  // burst as it arrives, so any delay beyond ~one packet time is inflicted
  // by the hierarchy — which is exactly what Figures 4–7 compare.
  traffic::OnOffSource rt(sim, emit, kRt1, kPktBytes, 9e6);
  rt.start_cycle(0.200, 0.025, 0.075, sc.duration_s);

  // BE-1: continuously backlogged (arrivals at link speed into an
  // unlimited buffer).
  traffic::CbrSource be(sim, emit, kBe1, kPktBytes, kLinkBps);
  be.start(0.0, sc.duration_s);

  // PS-n: constant-rate at guaranteed (scenario 1) or Poisson at
  // ps_load x guaranteed (overload scenarios). Identical start times, as in
  // the paper.
  std::vector<std::unique_ptr<traffic::SourceBase>> sources;
  // Identical rates keep the "identical start times" sessions phase-locked:
  // every period, ten packets hit the N-2 server and ten hit the root
  // simultaneously — the Fig. 2 arrival pattern in miniature, repeating.
  for (int i = 0; i < kPsCount; ++i) {
    const auto flow = static_cast<net::FlowId>(kPsBase + i);
    const double rate = 1.125e6 * sc.ps_load;
    if (sc.ps_poisson) {
      auto src = std::make_unique<traffic::PoissonSource>(
          sim, emit, flow, kPktBytes, rate, rng.fork());
      src->start(0.0, sc.duration_s);
      sources.push_back(std::move(src));
    } else {
      auto src = std::make_unique<traffic::CbrSource>(sim, emit, flow,
                                                      kPktBytes, rate);
      src->start(0.0, sc.duration_s);
      sources.push_back(std::move(src));
    }
  }

  // CS-n: all ten sources fire together every ~193 ms and pass through a
  // shared upstream multiplexer, which serializes them into ONE long packet
  // train (3 packets per session, spaced at the multiplexer's packet time).
  // This combined train is what excites the H-WFQ pathology: the root node
  // runs the (large-share) N-2 ahead while the train's virtual finish times
  // are still in the future, then stalls it to let the train catch up.
  if (sc.cs_on) {
    const double spacing = kPktBits / kLinkBps;
    std::uint64_t train_id = 1u << 20;
    for (double t0 = 0.0; t0 < sc.duration_s; t0 += 0.193) {
      for (int k = 0; k < 30; ++k) {
        const auto flow = static_cast<net::FlowId>(kCsBase + k / 3);
        net::Packet p;
        p.id = train_id++;
        p.flow = flow;
        p.size_bytes = kPktBytes;
        const double when = t0 + k * spacing;
        sim.at(when, [emit, p, when]() mutable {
          p.created = when;
          emit(p);
        });
      }
    }
  }

  run_and_drain(sim, sc.duration_s, 2.0);
  return out;
}

}  // namespace hfq::bench
