// Admission control in action: a batch of session requests evaluated
// against the Figure-1 agency tree with the paper's Corollary 2 bounds.
//
// Build & run:  ./build/examples/admission_demo
#include <cstdio>
#include <vector>

#include "core/hierarchy.h"
#include "qos/admission.h"

int main() {
  using namespace hfq;
  constexpr double kLmax = 8.0 * 1500;  // 1500 B MTU

  core::Hierarchy spec(45e6);
  const auto a1 = spec.add_class(0, "A1", 22.5e6);
  spec.add_session(a1, "A1.voice", 4e6, 0);
  spec.add_session(a1, "A1.besteffort", 9e6, 1);
  const auto a2 = spec.add_class(0, "A2", 2.25e6);

  const auto issues = qos::validate(spec);
  std::printf("tree valid: %s\n", issues.empty() ? "yes" : "NO");

  struct Req {
    const char* what;
    qos::AdmissionRequest r;
  };
  std::vector<Req> requests = {
      {"video under A1: 6 Mbps, 4-pkt bursts, 25 ms target",
       {a1, 6e6, 4 * kLmax, 0.025}},
      {"bulk under A1: 12 Mbps (exceeds A1 headroom)",
       {a1, 12e6, 2 * kLmax, 1.0}},
      {"telemetry under A2: 1 Mbps, 2-pkt bursts, 30 ms target",
       {a2, 1e6, 2 * kLmax, 0.030}},
      {"voice under A2: 0.5 Mbps, 3-pkt bursts, 10 ms target (too tight)",
       {a2, 0.5e6, 3 * kLmax, 0.010}},
  };

  std::printf("%-62s %-9s %-12s %s\n", "request", "decision", "bound",
              "reason");
  for (const auto& [what, r] : requests) {
    const auto d = qos::evaluate(spec, r, kLmax);
    std::printf("%-62s %-9s %9.2f ms %s\n", what,
                d.admitted ? "ADMIT" : "reject", d.bound_s * 1e3,
                d.reason.c_str());
  }

  // The bound for an already-attached session.
  const auto b = qos::delay_bound_for_flow(spec, 0, 3 * kLmax, kLmax);
  if (b.has_value()) {
    std::printf("\nA1.voice (4 Mbps, sigma = 3 pkts): Corollary 2 bound "
                "%.2f ms\n", *b * 1e3);
  }
  return 0;
}
