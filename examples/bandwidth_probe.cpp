// Packet-pair bandwidth estimation over WF²Q+ — the paper's third goal.
//
// The introduction argues fair queueing lets best-effort sources "accurately
// estimate the available bandwidth to them in a distributed fashion"
// (Keshav's packet-pair technique, the paper's [11]): under a fair-queueing
// server, two back-to-back packets of a flow are separated by exactly the
// flow's current fair share, so the receiver can estimate it from the
// inter-departure spacing.
//
// This example sends probe pairs through a WF²Q+ link while the competing
// load steps through three phases, and prints the estimated versus actual
// fair share in each phase.
//
// Build & run:  ./build/examples/bandwidth_probe
#include <cstdio>
#include <memory>
#include <vector>

#include "core/wf2qplus.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "traffic/cbr.h"

int main() {
  using namespace hfq;
  constexpr double kLink = 10e6;
  constexpr std::uint32_t kBytes = 1250;  // 10 kbit
  constexpr net::FlowId kProbe = 0, kBig = 1, kSmall = 2;

  core::Wf2qPlus sched(kLink);
  sched.add_flow(kProbe, 2e6);
  // Small buffers keep the "greedy" competitors greedy without deep
  // backlogs bleeding into the next phase.
  sched.add_flow(kBig, 4e6, /*capacity=*/16);
  sched.add_flow(kSmall, 4e6, /*capacity=*/16);

  sim::Simulator sim;
  sim::Link link(sim, sched, kLink);

  // Packet-pair receiver: estimate = L / spacing for consecutive probe
  // packets with the same pair id.
  double last_t = -1.0;
  std::uint64_t last_pair = UINT64_MAX;
  std::vector<std::pair<double, double>> estimates;  // (time, bps)
  link.set_delivery([&](const net::Packet& p, net::Time t) {
    if (p.flow != kProbe) return;
    if (p.meta == last_pair) {
      estimates.emplace_back(t, p.size_bits() / (t - last_t));
    }
    last_pair = p.meta;
    last_t = t;
  });

  // Probe: one back-to-back pair every 100 ms.
  std::uint64_t pair_id = 0;
  for (double t = 0.05; t < 3.0; t += 0.1) {
    sim.at(t, [&link, id = pair_id] {
      for (int k = 0; k < 2; ++k) {
        net::Packet p;
        p.flow = kProbe;
        p.size_bytes = kBytes;
        p.id = 2 * id + static_cast<std::uint64_t>(k);
        p.meta = id;
        link.submit(p);
      }
    });
    ++pair_id;
  }

  // Competing load: phase 1 [0,1): both competitors greedy;
  // phase 2 [1,2): only the 4 Mbps-weight competitor; phase 3 [2,3): none.
  traffic::CbrSource big(sim, [&](net::Packet p) { return link.submit(p); },
                         kBig, kBytes, kLink);
  traffic::CbrSource small(sim, [&](net::Packet p) { return link.submit(p); },
                           kSmall, kBytes, kLink);
  big.start(0.0, 2.0);
  small.start(0.0, 1.0);
  sim.run();

  struct Phase {
    double lo, hi, fair_share;
    const char* what;
  };
  // Fair shares by weight among backlogged flows:
  //   phase 1: 10M * 2/(2+4+4) = 2 Mbps
  //   phase 2: 10M * 2/(2+4)   = 3.33 Mbps
  //   phase 3: idle link       = 10 Mbps (the pair drains at line rate)
  const Phase phases[3] = {{0.0, 1.0, 2e6, "two greedy competitors"},
                           {1.0, 2.0, 10e6 / 3.0, "one greedy competitor"},
                           {2.0, 3.0, 10e6, "idle link"}};
  std::printf("packet-pair estimates vs fair share (WF2Q+ link):\n");
  bool all_ok = true;
  for (const Phase& ph : phases) {
    double sum = 0.0;
    int n = 0;
    for (const auto& [t, est] : estimates) {
      if (t > ph.lo + 0.1 && t <= ph.hi) {  // skip phase transient
        sum += est;
        ++n;
      }
    }
    const double mean = n > 0 ? sum / n : 0.0;
    const bool ok = n > 0 && std::abs(mean - ph.fair_share) < 0.15 * ph.fair_share;
    all_ok = all_ok && ok;
    std::printf("  %-24s estimated %6.2f Mbps   actual %6.2f Mbps   %s\n",
                ph.what, mean / 1e6, ph.fair_share / 1e6, ok ? "OK" : "off");
  }
  std::printf("%s\n", all_ok
                          ? "fair queueing makes the share observable "
                            "end-to-end — the paper's best-effort goal"
                          : "estimation failed");
  return all_ok ? 0 : 1;
}
