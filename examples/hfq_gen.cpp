// hfq_gen — synthetic trace generator for the CLI workflow.
//
//   usage: hfq_gen <out.csv> <duration_s> <spec>...
//     spec: flow,kind,rate_bps,bytes[,extra[,extra2]]
//       cbr,<rate>                      constant bit rate
//       poisson,<mean rate>             Poisson arrivals
//       onoff,<peak rate>,<on_s>,<off_s> deterministic on/off
//
//   example:
//     hfq_gen t.csv 5 0,cbr,2000000,1500 1,poisson,1000000,1500
//     hfq_sim my.tree t.csv wf2q+
//
// With no arguments, writes demo_trace.csv with a representative mix.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "trace/trace.h"
#include "traffic/cbr.h"
#include "traffic/onoff.h"
#include "traffic/poisson.h"
#include "util/rng.h"

namespace {

using namespace hfq;

struct Spec {
  net::FlowId flow = 0;
  std::string kind;
  double rate = 0.0;
  std::uint32_t bytes = 1500;
  double extra1 = 0.0, extra2 = 0.0;
};

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

Spec parse_spec(const std::string& text) {
  const auto parts = split(text, ',');
  if (parts.size() < 4) {
    throw std::runtime_error("bad spec (need flow,kind,rate,bytes): " + text);
  }
  Spec sp;
  sp.flow = static_cast<net::FlowId>(std::stoul(parts[0]));
  sp.kind = parts[1];
  sp.rate = std::stod(parts[2]);
  sp.bytes = static_cast<std::uint32_t>(std::stoul(parts[3]));
  if (parts.size() > 4) sp.extra1 = std::stod(parts[4]);
  if (parts.size() > 5) sp.extra2 = std::stod(parts[5]);
  return sp;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string out = argc > 1 ? argv[1] : "demo_trace.csv";
    const double duration = argc > 2 ? std::stod(argv[2]) : 2.0;
    std::vector<Spec> specs;
    for (int i = 3; i < argc; ++i) specs.push_back(parse_spec(argv[i]));
    if (specs.empty()) {
      specs = {
          {0, "cbr", 2e6, 1500, 0, 0},
          {1, "poisson", 1e6, 1500, 0, 0},
          {2, "onoff", 4e6, 1500, 0.025, 0.075},
      };
    }

    sim::Simulator sim;
    trace::Recorder recorder(sim);
    auto emit = recorder.wrap([](net::Packet) { return true; });

    util::Rng rng(42);
    std::vector<std::unique_ptr<traffic::SourceBase>> sources;
    for (const Spec& sp : specs) {
      if (sp.kind == "cbr") {
        auto s = std::make_unique<traffic::CbrSource>(sim, emit, sp.flow,
                                                      sp.bytes, sp.rate);
        s->start(0.0, duration);
        sources.push_back(std::move(s));
      } else if (sp.kind == "poisson") {
        auto s = std::make_unique<traffic::PoissonSource>(
            sim, emit, sp.flow, sp.bytes, sp.rate, rng.fork());
        s->start(0.0, duration);
        sources.push_back(std::move(s));
      } else if (sp.kind == "onoff") {
        auto s = std::make_unique<traffic::OnOffSource>(sim, emit, sp.flow,
                                                        sp.bytes, sp.rate);
        s->start_cycle(0.0, sp.extra1 > 0 ? sp.extra1 : 0.025,
                       sp.extra2 > 0 ? sp.extra2 : 0.075, duration);
        sources.push_back(std::move(s));
      } else {
        throw std::runtime_error("unknown source kind: " + sp.kind);
      }
    }
    sim.run();
    trace::write_file(out, recorder.records());
    std::printf("wrote %zu arrivals over %.3f s to %s\n",
                recorder.records().size(), duration, out.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::fprintf(stderr,
                 "usage: hfq_gen <out.csv> <duration_s> "
                 "<flow,kind,rate,bytes[,extra,extra2]>...\n");
    return 1;
  }
}
