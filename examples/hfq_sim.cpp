// hfq_sim — command-line driver: run an arrival trace through a
// link-sharing hierarchy and report per-flow statistics.
//
//   usage: hfq_sim <hierarchy.tree> <trace.csv> [policy]
//     policy: wf2q+ (default) | wfq | wf2q | scfq | sfq | drr
//
// With no arguments it runs a built-in demonstration (the Figure 1 agency
// tree against a bursty synthetic trace), so it is always runnable.
//
// Example hierarchy file:            Example trace file:
//   link 45M                           time_s,flow,size_bytes
//   A1 22.5M {                         0.000,0,1500
//     rt 13.5M flow=0                  0.001,1,1500
//     be 9M    flow=1                  ...
//   }
//   A2 2.25M flow=2
#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "core/hierarchy.h"
#include "core/node_policy.h"
#include "core/tree_parser.h"
#include "qos/admission.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "stats/delay_recorder.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace {

using namespace hfq;

constexpr const char* kDemoTree = R"(
link 45M
A1 22.5M {
  rt 13.5M flow=0
  be 9M    flow=1
}
A2 2.25M flow=2
A3 2.25M flow=3
)";

std::vector<trace::Record> demo_trace() {
  std::vector<trace::Record> records;
  util::Rng rng(2026);
  double t = 0.0;
  while (t < 2.0) {
    t += rng.exponential(0.0004);
    const auto flow = static_cast<net::FlowId>(rng.uniform_int(0, 3));
    records.push_back(trace::Record{t, flow, 1500});
  }
  return records;
}

template <typename Policy>
int run(const core::Hierarchy& spec, const std::vector<trace::Record>& recs) {
  auto sched = spec.build_packet<Policy>();
  sim::Simulator sim;
  sim::Link link(sim, *sched, spec.link_rate());
  std::map<net::FlowId, stats::DelayRecorder> delay;
  std::map<net::FlowId, double> bits;
  link.set_delivery([&](const net::Packet& p, net::Time t) {
    delay[p.flow].record(p, t);
    bits[p.flow] += p.size_bits();
  });
  trace::replay(sim, [&link](net::Packet p) { return link.submit(p); }, recs);
  sim.run();
  const double horizon = sim.now();

  std::printf("\n%zu packets over %.3f s, link utilization %.1f%%\n",
              recs.size(), horizon, 100.0 * link.utilization(horizon));
  std::printf("%-8s %10s %12s %12s %12s %12s\n", "flow", "packets",
              "rate Mbps", "mean delay", "p99 delay", "max delay");
  for (const auto& [flow, rec] : delay) {
    std::printf("%-8u %10zu %12.3f %9.3f ms %9.3f ms %9.3f ms\n", flow,
                rec.count(), bits[flow] / horizon / 1e6,
                rec.mean_delay() * 1e3, rec.percentile(99.0) * 1e3,
                rec.max_delay() * 1e3);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    core::Hierarchy spec = argc > 1
                               ? core::parse_hierarchy_file(argv[1])
                               : core::parse_hierarchy(std::string(kDemoTree));
    const std::vector<trace::Record> recs =
        argc > 2 ? trace::read_file(argv[2]) : demo_trace();
    const std::string policy = argc > 3 ? argv[3] : "wf2q+";

    std::printf("hierarchy:\n%s", core::format_hierarchy(spec).c_str());
    for (const auto& issue : qos::validate(spec)) {
      std::fprintf(stderr, "warning: %s\n", issue.message.c_str());
    }
    std::printf("policy: %s\n", policy.c_str());

    if (policy == "wf2q+") return run<core::Wf2qPlusPolicy>(spec, recs);
    if (policy == "wfq") return run<core::GpsSffPolicy>(spec, recs);
    if (policy == "wf2q") return run<core::GpsSeffPolicy>(spec, recs);
    if (policy == "scfq") return run<core::ScfqPolicy>(spec, recs);
    if (policy == "sfq") return run<core::SfqPolicy>(spec, recs);
    if (policy == "drr") return run<core::DrrPolicy>(spec, recs);
    std::fprintf(stderr, "unknown policy '%s'\n", policy.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
