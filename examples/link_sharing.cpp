// The paper's Figure 1 link-sharing example, as a runnable program.
//
// Eleven agencies share a 45 Mbps link. Agency A1 is guaranteed 50% and
// splits it between a real-time class (30% of the link) and best-effort
// (20% — "to avoid starvation of the best-effort traffic ... best-effort
// should get at least 20%" of A1's share). The other ten agencies get 5%
// each.
//
// The program toggles agencies on and off and prints, for each phase, the
// bandwidth every class actually received next to what H-GPS would give —
// demonstrating the hierarchical redistribution semantics: excess bandwidth
// goes to siblings first.
//
// Build & run:  ./build/examples/link_sharing
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/hierarchy.h"
#include "core/node_policy.h"
#include "fluid/share_solver.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "traffic/cbr.h"

int main() {
  using namespace hfq;
  constexpr double kLink = 45e6;
  constexpr net::FlowId kRealTime = 0;
  constexpr net::FlowId kBestEffort = 1;
  constexpr net::FlowId kAgencyBase = 2;  // A2..A11 → flows 2..11

  // Small session buffers (drop-tail) keep "greedy" sources greedy without
  // accumulating deep backlogs that would bleed across phases.
  constexpr std::size_t kBuf = 20;
  core::Hierarchy spec(kLink);
  const auto a1 = spec.add_class(0, "A1", 0.50 * kLink);
  spec.add_session(a1, "A1.realtime", 0.30 * kLink, kRealTime, kBuf);
  spec.add_session(a1, "A1.besteffort", 0.20 * kLink, kBestEffort, kBuf);
  for (int i = 0; i < 10; ++i) {
    spec.add_session(0, "A" + std::to_string(i + 2), 0.05 * kLink,
                     static_cast<net::FlowId>(kAgencyBase + i), kBuf);
  }

  auto sched = spec.build_packet<core::Wf2qPlusPolicy>();
  sim::Simulator sim;
  sim::Link link(sim, *sched, kLink);

  std::map<net::FlowId, double> phase_bits;
  link.set_delivery([&](const net::Packet& p, net::Time) {
    phase_bits[p.flow] += p.size_bits();
  });
  auto emit = [&](net::Packet p) { return link.submit(p); };

  // Greedy sources for every class; phases turn subsets on/off.
  std::vector<std::unique_ptr<traffic::CbrSource>> sources;
  auto drive = [&](net::FlowId f, double t0, double t1) {
    auto src = std::make_unique<traffic::CbrSource>(sim, emit, f, 1500,
                                                    kLink /*greedy*/);
    src->start(t0, t1);
    sources.push_back(std::move(src));
  };

  struct Phase {
    const char* what;
    double t0, t1;
    std::vector<net::FlowId> active;
  };
  std::vector<Phase> phases = {
      {"everyone active", 0.0, 1.0, {}},
      {"A1 best-effort idle (its 20% goes to A1 realtime first)", 1.0, 2.0, {}},
      {"all of A1 idle (50% redistributed to the ten agencies)", 2.0, 3.0, {}},
      {"only A1 realtime + A2 active", 3.0, 4.0, {}},
  };
  phases[0].active = {kRealTime, kBestEffort};
  phases[1].active = {kRealTime};
  phases[2].active = {};
  phases[3].active = {kRealTime};
  for (auto& ph : phases) {
    for (const auto f : ph.active) drive(f, ph.t0, ph.t1);
  }
  // Agencies A2..A11: active in phases 0-2; only A2 in phase 3.
  for (int i = 0; i < 10; ++i) {
    drive(static_cast<net::FlowId>(kAgencyBase + i), 0.0, 3.0);
  }
  drive(kAgencyBase, 3.0, 4.0);

  auto solver = spec.build_solver();
  const auto name_of = [&](net::FlowId f) -> std::string {
    if (f == kRealTime) return "A1.realtime";
    if (f == kBestEffort) return "A1.besteffort";
    return "A" + std::to_string(f - kAgencyBase + 2);
  };

  for (const auto& ph : phases) {
    phase_bits.clear();
    sim.run_until(ph.t1);
    // Ideal H-GPS split for this phase.
    for (std::uint32_t i = 1; i < spec.size(); ++i) {
      if (!spec.node(i).leaf) continue;
      const net::FlowId f = spec.node(i).flow;
      bool active = false;
      if (f >= kAgencyBase) {
        active = ph.t1 <= 3.0 || f == kAgencyBase;
      } else {
        for (const auto a : ph.active) active = active || a == f;
      }
      solver.set_demand(i, active ? fluid::ShareSolver::kInfiniteDemand : 0.0);
    }
    const auto ideal = solver.solve(kLink);
    std::printf("\nphase [%.0f-%.0f s]: %s\n", ph.t0, ph.t1, ph.what);
    std::printf("  %-14s %10s %10s\n", "class", "ideal", "measured");
    for (std::uint32_t i = 1; i < spec.size(); ++i) {
      if (!spec.node(i).leaf) continue;
      const net::FlowId f = spec.node(i).flow;
      const double measured = phase_bits[f] / (ph.t1 - ph.t0);
      if (ideal[i] > 0.0 || measured > 0.0) {
        std::printf("  %-14s %7.2f Mb %7.2f Mb\n", name_of(f).c_str(),
                    ideal[i] / 1e6, measured / 1e6);
      }
    }
  }
  std::printf("\n(measured tracks ideal: the hierarchy enforces the Figure 1 "
              "policy without per-phase reconfiguration)\n");
  return 0;
}
