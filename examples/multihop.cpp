// Multi-hop guarantees: a voice flow crossing three H-WF²Q+ switches, each
// loaded with local greedy traffic. Per-hop Corollary 2 bounds compose into
// an end-to-end bound (the framework the paper cites as [10]); this example
// measures the actual end-to-end delay against it.
//
// Build & run:  ./build/examples/multihop
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "core/hpfq.h"
#include "qos/admission.h"
#include "sim/simulator.h"
#include "topo/network.h"
#include "traffic/cbr.h"
#include "traffic/leaky_bucket.h"
#include "util/rng.h"

int main() {
  using namespace hfq;
  constexpr double kRate = 10e6;
  constexpr std::uint32_t kBytes = 1000;
  constexpr double kLmax = 8.0 * kBytes;
  constexpr double kProp = 0.002;  // 2 ms per hop
  constexpr int kHops = 3;
  constexpr net::FlowId kVoice = 0;

  sim::Simulator sim;
  topo::Network net(sim);

  // Each hop: voice (1 Mbps) vs a local greedy class (9 Mbps).
  std::vector<topo::PortId> path;
  for (int i = 0; i < kHops; ++i) {
    auto sched = std::make_unique<core::HWf2qPlus>(kRate);
    sched->add_leaf(sched->root(), 1e6, kVoice);
    sched->add_leaf(sched->root(), 9e6, static_cast<net::FlowId>(1 + i));
    path.push_back(net.add_port(kRate, std::move(sched), kProp));
  }
  net.set_route(kVoice, path);
  for (int i = 0; i < kHops; ++i) {
    net.set_route(static_cast<net::FlowId>(1 + i),
                  {path[static_cast<std::size_t>(i)]});
  }

  // Voice: (sigma, rho) = (2 packets, 1 Mbps), shaped at the source.
  const double sigma = 2.0 * kLmax;
  std::map<std::uint64_t, double> sent_at;
  double max_e2e = 0.0;
  std::uint64_t voice_count = 0;
  net.set_delivery([&](const net::Packet& p, net::Time t) {
    if (p.flow != kVoice) return;
    ++voice_count;
    max_e2e = std::max(max_e2e, t - sent_at[p.id]);
  });

  traffic::LeakyBucketShaper shaper(
      sim,
      [&](net::Packet p) {
        sent_at[p.id] = sim.now();
        return net.inject(std::move(p));
      },
      sigma, 1e6);
  util::Rng rng(3);
  double t = 0.0;
  std::uint64_t id = 0;
  for (int i = 0; i < 2000; ++i) {
    t += rng.exponential(2.0 * kLmax / 1e6);
    const int burst = static_cast<int>(rng.uniform_int(1, 2));
    for (int k = 0; k < burst; ++k) {
      sim.at(t, [&shaper, pid = id++] {
        net::Packet p;
        p.flow = kVoice;
        p.size_bytes = kBytes;
        p.id = pid;
        shaper.offer(p);
      });
    }
  }

  // Greedy local cross traffic saturates every hop.
  std::vector<std::unique_ptr<traffic::CbrSource>> cross;
  for (int i = 0; i < kHops; ++i) {
    cross.push_back(std::make_unique<traffic::CbrSource>(
        sim, [&net](net::Packet p) { return net.inject(std::move(p)); },
        static_cast<net::FlowId>(1 + i), kBytes, kRate));
    cross.back()->start(0.0, t);
  }
  sim.run();

  // End-to-end bound: per hop sigma/rho is paid once (the shaper releases
  // conformant traffic and each hop re-shapes only by its own WFI terms);
  // conservatively we charge sigma at the first hop and Lmax terms at all.
  double bound = sigma / 1e6;
  for (int i = 0; i < kHops; ++i) {
    bound += kLmax / kRate /*server Lmax term*/ + kLmax / kRate /*tx*/ +
             kProp;
  }
  // Each downstream hop can also see a per-hop burst of up to sigma again
  // (output jitter); charge it once more per extra hop.
  bound += (kHops - 1) * sigma / 1e6;

  std::printf("voice packets delivered: %llu\n",
              static_cast<unsigned long long>(voice_count));
  std::printf("max end-to-end delay: %.3f ms\n", max_e2e * 1e3);
  std::printf("composed bound:       %.3f ms\n", bound * 1e3);
  std::printf("within bound: %s\n", max_e2e <= bound ? "yes" : "NO");
  return max_e2e <= bound ? 0 : 1;
}
