// Quickstart: build a two-level H-WF²Q+ hierarchy, drive it with a link,
// and watch the schedule it produces.
//
//   link (10 Mbps)
//   ├── video   (6 Mbps)   — steady 6 Mbps stream
//   └── data    (4 Mbps)   — bursty: 30 packets dumped at t = 0
//
// Even though `data` dumps its whole burst instantly, `video` keeps
// receiving its guaranteed 6 Mbps: the burst cannot push ahead of the
// fluid schedule (WF²Q+'s SEFF policy).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/hpfq.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "traffic/cbr.h"

int main() {
  using namespace hfq;

  // 1. Describe the hierarchy. Flow ids route packets to leaves.
  constexpr net::FlowId kVideo = 0;
  constexpr net::FlowId kData = 1;
  core::HWf2qPlus sched(10e6);
  sched.add_leaf(sched.root(), 6e6, kVideo);
  sched.add_leaf(sched.root(), 4e6, kData);

  // 2. Attach it to a simulated 10 Mbps output link.
  sim::Simulator sim;
  sim::Link link(sim, sched, 10e6);

  double video_bits = 0.0, data_bits = 0.0;
  link.set_delivery([&](const net::Packet& p, net::Time t) {
    (p.flow == kVideo ? video_bits : data_bits) += p.size_bits();
    if (t < 0.01) {  // print the first ~10 ms of the schedule
      std::printf("  t=%7.3f ms  sent %s packet (%u bytes)\n", t * 1e3,
                  p.flow == kVideo ? "video" : "data ", p.size_bytes);
    }
  });

  // 3. Traffic: video at exactly 6 Mbps; data dumps a burst at t=0.
  traffic::CbrSource video(sim, [&](net::Packet p) { return link.submit(p); },
                           kVideo, /*bytes=*/1500, /*rate=*/6e6);
  video.start(0.0, /*stop=*/1.0);
  sim.at(0.0, [&] {
    for (int i = 0; i < 30; ++i) {
      net::Packet p;
      p.flow = kData;
      p.size_bytes = 1500;
      p.id = static_cast<std::uint64_t>(i);
      link.submit(p);
    }
  });

  std::printf("schedule head:\n");
  sim.run_until(1.0);

  std::printf("\nafter 1 s:  video %.2f Mbps   data %.2f Mbps\n",
              video_bits / 1e6, data_bits / 1e6);
  std::printf("video kept its 6 Mbps guarantee through the data burst: %s\n",
              video_bits > 5.8e6 ? "yes" : "NO");
  return video_bits > 5.8e6 ? 0 : 1;
}
