// Real-time guarantees: a leaky-bucket constrained voice flow inside a
// busy hierarchy, with its measured worst-case delay checked against the
// analytical bound of the paper's Corollary 2.
//
//   link (100 Mbps)
//   ├── tenant-A (50)
//   │   ├── voice (2)   — (sigma, rho) = (3 pkts, 2 Mbps)   [measured]
//   │   └── bulk  (48)  — greedy
//   └── tenant-B (50)   — greedy
//
// Bound: sigma/rho + Lmax/r_A + Lmax/r_link (+ one packet transmission
// time, since delay is measured to the end of transmission).
//
// Build & run:  ./build/examples/realtime_delay
#include <algorithm>
#include <cstdio>

#include "core/hpfq.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "stats/delay_recorder.h"
#include "traffic/cbr.h"
#include "traffic/leaky_bucket.h"
#include "traffic/poisson.h"
#include "util/rng.h"

int main() {
  using namespace hfq;
  constexpr double kLink = 100e6;
  constexpr std::uint32_t kBytes = 1500;
  constexpr double kLmax = 8.0 * kBytes;
  constexpr net::FlowId kVoice = 0, kBulk = 1, kTenantB = 2;

  core::HWf2qPlus sched(kLink);
  const auto a = sched.add_internal(sched.root(), 50e6);
  sched.add_leaf(a, 2e6, kVoice);
  sched.add_leaf(a, 48e6, kBulk);
  sched.add_leaf(sched.root(), 50e6, kTenantB);

  sim::Simulator sim;
  sim::Link link(sim, sched, kLink);

  stats::DelayRecorder voice_delay;
  link.set_delivery([&](const net::Packet& p, net::Time t) {
    if (p.flow == kVoice) voice_delay.record(p, t);
  });

  const double sigma = 3.0 * kLmax;
  const double rho = 2e6;
  traffic::LeakyBucketShaper shaper(
      sim, [&](net::Packet p) { return link.submit(p); }, sigma, rho);

  // Voice: bursty offered traffic, shaped to (sigma, rho) conformance.
  util::Rng rng(7);
  double t = 0.0;
  std::uint64_t id = 0;
  for (int i = 0; i < 2000; ++i) {
    t += rng.exponential(2.0 * kLmax / rho);
    const int burst = static_cast<int>(rng.uniform_int(1, 4));
    for (int k = 0; k < burst; ++k) {
      net::Packet p;
      p.flow = kVoice;
      p.size_bytes = kBytes;
      p.id = id++;
      sim.at(t, [&shaper, p] {
        net::Packet q = p;
        shaper.offer(q);
      });
    }
  }

  // Everyone else greedy for the whole run.
  traffic::CbrSource bulk(sim, [&](net::Packet p) { return link.submit(p); },
                          kBulk, kBytes, kLink);
  traffic::CbrSource tenant_b(sim,
                              [&](net::Packet p) { return link.submit(p); },
                              kTenantB, kBytes, kLink);
  bulk.start(0.0, t);
  tenant_b.start(0.0, t);
  sim.run();

  const double bound = sigma / rho + kLmax / 50e6 + kLmax / kLink +
                       kLmax / kLink;
  std::printf("voice packets: %zu\n", voice_delay.count());
  std::printf("measured delay: max %.3f ms, mean %.3f ms, p99 %.3f ms\n",
              voice_delay.max_delay() * 1e3, voice_delay.mean_delay() * 1e3,
              voice_delay.percentile(99.0) * 1e3);
  std::printf("Corollary 2 bound: %.3f ms\n", bound * 1e3);
  const bool within = voice_delay.max_delay() <= bound;
  std::printf("within bound: %s\n", within ? "yes" : "NO");
  return within ? 0 : 1;
}
