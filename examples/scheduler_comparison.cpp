// Compare the one-level schedulers on the same bursty workload: a latency
// sensitive flow competing with a misbehaving burster and a pool of steady
// flows. Prints per-scheduler delay and fairness numbers — a capsule of the
// paper's Section 3 argument for why a small Worst-case Fair Index matters.
//
// Build & run:  ./build/examples/scheduler_comparison
#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "core/wf2qplus.h"
#include "sched/drr.h"
#include "sched/fifo.h"
#include "sched/scfq.h"
#include "sched/sfq.h"
#include "sched/wf2q.h"
#include "sched/wfq.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "stats/delay_recorder.h"
#include "traffic/cbr.h"
#include "traffic/onoff.h"
#include "util/rng.h"

namespace {

using namespace hfq;

constexpr double kLink = 10e6;
constexpr std::uint32_t kBytes = 1250;  // 10 kbit packets
constexpr net::FlowId kLatency = 0;     // measured: 2 Mbps CBR
constexpr net::FlowId kBurster = 1;     // misbehaving on/off at 10 Mbps peak
constexpr net::FlowId kSteadyBase = 2;  // 4 steady 1.5 Mbps flows

struct Result {
  double max_ms, p99_ms;
};

template <typename Sched>
Result run(Sched& s) {
  sim::Simulator sim;
  sim::Link link(sim, s, kLink);
  stats::DelayRecorder lat;
  link.set_delivery([&](const net::Packet& p, net::Time t) {
    if (p.flow == kLatency) lat.record(p, t);
  });
  auto emit = [&](net::Packet p) { return link.submit(p); };

  traffic::CbrSource latency(sim, emit, kLatency, kBytes, 2e6);
  latency.start(0.0, 10.0);
  traffic::OnOffSource burster(sim, emit, kBurster, kBytes, kLink);
  burster.start_cycle(0.0, /*on=*/0.05, /*off=*/0.15, 10.0);
  std::vector<std::unique_ptr<traffic::CbrSource>> steady;
  for (int i = 0; i < 4; ++i) {
    steady.push_back(std::make_unique<traffic::CbrSource>(
        sim, emit, static_cast<net::FlowId>(kSteadyBase + i), kBytes, 1.5e6));
    steady.back()->start(0.0, 10.0);
  }
  sim.run();
  return Result{lat.max_delay() * 1e3, lat.percentile(99.0) * 1e3};
}

template <typename Sched>
void add_flows(Sched& s) {
  s.add_flow(kLatency, 2e6);
  s.add_flow(kBurster, 2e6);
  for (int i = 0; i < 4; ++i) {
    s.add_flow(static_cast<net::FlowId>(kSteadyBase + i), 1.5e6);
  }
}

}  // namespace

int main() {
  std::printf("latency-sensitive 2 Mbps flow vs. a 10 Mbps burster and four "
              "steady flows on a 10 Mbps link\n\n");
  std::printf("%-10s %12s %12s\n", "scheduler", "max delay", "p99 delay");

  {
    sched::Fifo s;
    sim::Simulator sim;
    sim::Link link(sim, s, kLink);
    stats::DelayRecorder lat;
    link.set_delivery([&](const net::Packet& p, net::Time t) {
      if (p.flow == kLatency) lat.record(p, t);
    });
    auto emit = [&](net::Packet p) { return link.submit(p); };
    traffic::CbrSource latency(sim, emit, kLatency, kBytes, 2e6);
    latency.start(0.0, 10.0);
    traffic::OnOffSource burster(sim, emit, kBurster, kBytes, kLink);
    burster.start_cycle(0.0, 0.05, 0.15, 10.0);
    std::vector<std::unique_ptr<traffic::CbrSource>> steady;
    for (int i = 0; i < 4; ++i) {
      steady.push_back(std::make_unique<traffic::CbrSource>(
          sim, emit, static_cast<net::FlowId>(kSteadyBase + i), kBytes,
          1.5e6));
      steady.back()->start(0.0, 10.0);
    }
    sim.run();
    std::printf("%-10s %9.2f ms %9.2f ms   (no isolation at all)\n", "FIFO",
                lat.max_delay() * 1e3, lat.percentile(99.0) * 1e3);
  }
  {
    sched::Wfq s(kLink);
    add_flows(s);
    const auto r = run(s);
    std::printf("%-10s %9.2f ms %9.2f ms\n", "WFQ", r.max_ms, r.p99_ms);
  }
  {
    sched::Scfq s;
    add_flows(s);
    const auto r = run(s);
    std::printf("%-10s %9.2f ms %9.2f ms\n", "SCFQ", r.max_ms, r.p99_ms);
  }
  {
    sched::StartTimeFq s;
    add_flows(s);
    const auto r = run(s);
    std::printf("%-10s %9.2f ms %9.2f ms\n", "SFQ", r.max_ms, r.p99_ms);
  }
  {
    sched::Drr s(kLink, 6.0 * 8.0 * kBytes);
    add_flows(s);
    const auto r = run(s);
    std::printf("%-10s %9.2f ms %9.2f ms\n", "DRR", r.max_ms, r.p99_ms);
  }
  {
    sched::Wf2q s(kLink);
    add_flows(s);
    const auto r = run(s);
    std::printf("%-10s %9.2f ms %9.2f ms\n", "WF2Q", r.max_ms, r.p99_ms);
  }
  {
    core::Wf2qPlus s(kLink);
    add_flows(s);
    const auto r = run(s);
    std::printf("%-10s %9.2f ms %9.2f ms   (the paper's algorithm)\n",
                "WF2Q+", r.max_ms, r.p99_ms);
  }
  return 0;
}
