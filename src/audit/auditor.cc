#include "audit/auditor.h"

#include <string>

#include "obs/flight_recorder.h"

namespace hfq::audit {

namespace {

std::string pkt_str(const net::Packet& p) {
  return "packet id " + std::to_string(p.id) + " flow " +
         std::to_string(p.flow);
}

// Violation details carry the flight-recorder tail when one is active on
// this thread (HFQ_TRACE build with a RecordScope installed): the auditor
// sees the scheduler as a black box, so the event log is the only record of
// the decision sequence that led here. Empty (and free) otherwise.
std::string with_flight_log(std::string detail) {
  const std::string log = obs::last_events_text(32);
  if (!log.empty()) {
    detail += '\n';
    detail += log;
  }
  return detail;
}

}  // namespace

bool SchedulerAuditor::enqueue(const net::Packet& p, net::Time now) {
  const bool ok = inner_.enqueue(p, now);
  if (ok) {
    if (p.flow >= pending_.size()) pending_.resize(p.flow + 1);
    pending_[p.flow].push_back(p.id);
    ++accepted_;
  } else {
    ++dropped_;
  }
  check_conservation("enqueue");
  return ok;
}

std::optional<net::Packet> SchedulerAuditor::dequeue(net::Time now) {
  auto p = inner_.dequeue(now);
  if (!p.has_value()) {
    if (expect_work_conserving_ && accepted_ > delivered_) {
      report("work-conservation", __FILE__, __LINE__,
             with_flight_log("dequeue reported idle with " +
                             std::to_string(accepted_ - delivered_) +
                             " packets queued"));
    }
    return p;
  }
  if (p->flow >= pending_.size() || pending_[p->flow].empty()) {
    report("conservation", __FILE__, __LINE__,
           with_flight_log(pkt_str(*p) +
                           " delivered but never accepted (duplication or "
                           "invention)"));
  } else if (pending_[p->flow].front() != p->id) {
    report("flow-fifo", __FILE__, __LINE__,
           with_flight_log(pkt_str(*p) +
                           " delivered ahead of earlier packet id " +
                           std::to_string(pending_[p->flow].front()) +
                           " of the same flow"));
    // Resynchronise so one reorder does not cascade into spurious reports:
    // drop the delivered id from wherever it sits in the flow's queue.
    auto& q = pending_[p->flow];
    for (auto it = q.begin(); it != q.end(); ++it) {
      if (*it == p->id) {
        q.erase(it);
        break;
      }
    }
  } else {
    pending_[p->flow].pop_front();
  }
  ++delivered_;
  check_conservation("dequeue");
  return p;
}

void SchedulerAuditor::check_conservation(const char* where) {
  const std::uint64_t expected = accepted_ - delivered_;
  const std::size_t actual = inner_.backlog_packets();
  if (actual != expected) {
    report("backlog-conservation", __FILE__, __LINE__,
           with_flight_log(std::string(where) + ": scheduler reports backlog " +
                           std::to_string(actual) +
                           " but accepted - delivered = " +
                           std::to_string(expected)));
  }
}

}  // namespace hfq::audit
