// Black-box scheduler auditor: a net::Scheduler decorator that checks the
// model-independent invariants every packet scheduler in this repository
// must satisfy, from the outside, in any build type:
//
//  * conservation — every packet handed out was previously accepted, no
//    duplication or invention, and the scheduler's backlog counter equals
//    accepted − delivered at every quiescent point;
//  * per-flow FIFO order — sessions are FIFO queues, so a flow's packets
//    depart in arrival order;
//  * work conservation — dequeue never reports idle while packets are
//    queued (all schedulers here except the shaped decorator are
//    work-conserving; disable with expect_work_conserving = false).
//
// Violations go through audit::report, so they abort by default and are
// collected (with a replayable seed) under the differential fuzzer. The
// decorator is opt-in per scheduler instance and costs one deque operation
// per packet; the compile-gated hooks in the schedulers themselves cover the
// algorithm-specific tag discipline this wrapper cannot see.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "audit/invariants.h"
#include "net/packet.h"
#include "net/scheduler.h"

namespace hfq::audit {

class SchedulerAuditor : public net::Scheduler {
 public:
  explicit SchedulerAuditor(net::Scheduler& inner,
                            bool expect_work_conserving = true)
      : inner_(inner), expect_work_conserving_(expect_work_conserving) {}

  bool enqueue(const net::Packet& p, net::Time now) override;
  std::optional<net::Packet> dequeue(net::Time now) override;

  [[nodiscard]] std::size_t backlog_packets() const override {
    return inner_.backlog_packets();
  }

  [[nodiscard]] std::uint64_t accepted() const noexcept { return accepted_; }
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  void check_conservation(const char* where);

  net::Scheduler& inner_;
  bool expect_work_conserving_;
  // Accepted-but-not-delivered packet ids per flow, in arrival order.
  std::vector<std::deque<std::uint64_t>> pending_;
  std::uint64_t accepted_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace hfq::audit
