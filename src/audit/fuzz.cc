#include "audit/fuzz.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <sstream>

#include "audit/auditor.h"
#include "audit/invariants.h"
#include "audit/wf2qplus_legacy.h"
#include "core/hpfq.h"
#include "core/wf2qplus.h"
#include "core/wf2qplus_fixed.h"
#include "fluid/gps.h"
#include "fluid/hgps.h"
#include "obs/flight_recorder.h"
#include "sched/scfq.h"
#include "sched/sfq.h"
#include "sched/wf2q.h"
#include "sched/wf2qplus_perpacket.h"
#include "sched/wfq.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "traffic/tcp.h"
#include "util/rng.h"

namespace hfq::audit {

const char* shape_name(TraceShape s) {
  switch (s) {
    case TraceShape::kUniform:     return "uniform";
    case TraceShape::kBursty:      return "bursty";
    case TraceShape::kTieHeavy:    return "tie-heavy";
    case TraceShape::kOverload:    return "overload";
    case TraceShape::kDrainRefill: return "drain-refill";
    case TraceShape::kCount:       break;
  }
  return "?";
}

// ---------------------------------------------------------------- tracegen

FuzzTrace generate_trace(std::uint64_t seed) {
  util::Rng rng(seed);
  FuzzTrace t;
  t.seed = seed;
  t.shape = static_cast<TraceShape>(
      rng.uniform_int(0, static_cast<int>(TraceShape::kCount) - 1));
  std::uint64_t id = 0;

  if (t.shape == TraceShape::kTieHeavy) {
    // Equal power-of-two rates and a power-of-two packet size keep every
    // tag exact in both double and 2^-20-tick arithmetic, so equal tags tie
    // *exactly* and the FIFO tie-break discipline decides the schedule.
    const int n = 1 << rng.uniform_int(1, 3);  // 2, 4 or 8 flows
    t.link_rate = 8192.0;
    t.rates.assign(static_cast<std::size_t>(n), 8192.0 / n);
    const int packets = 120 + static_cast<int>(rng.uniform_int(0, 80));
    double time = 0.0;
    while (id < static_cast<std::uint64_t>(packets)) {
      time += rng.uniform(0.0, 0.4);
      const int burst = static_cast<int>(rng.uniform_int(1, 2 * n));
      for (int k = 0; k < burst && id < static_cast<std::uint64_t>(packets);
           ++k) {
        t.arrivals.push_back(
            {time, static_cast<net::FlowId>(rng.uniform_int(0, n - 1)), 64,
             id++});
      }
    }
    return t;
  }

  const int n = static_cast<int>(rng.uniform_int(2, 8));
  t.link_rate = 8000.0;
  double weight_sum = 0.0;
  std::vector<double> weights(static_cast<std::size_t>(n));
  for (double& w : weights) {
    w = static_cast<double>(rng.uniform_int(1, 100));
    weight_sum += w;
  }
  for (double w : weights) t.rates.push_back(w / weight_sum * t.link_rate);

  const int packets = 150 + static_cast<int>(rng.uniform_int(0, 150));
  auto rand_flow = [&] {
    return static_cast<net::FlowId>(rng.uniform_int(0, n - 1));
  };
  auto rand_bytes = [&] {
    return static_cast<std::uint32_t>(rng.uniform_int(8, 250));
  };
  const double avg_bits = 8.0 * (8 + 250) / 2.0;

  switch (t.shape) {
    case TraceShape::kUniform:
    case TraceShape::kOverload: {
      const double load = t.shape == TraceShape::kUniform ? 0.75 : 1.6;
      const double mean_gap = avg_bits / (load * t.link_rate);
      double time = 0.0;
      for (int i = 0; i < packets; ++i) {
        time += rng.exponential(mean_gap);
        t.arrivals.push_back({time, rand_flow(), rand_bytes(), id++});
      }
      break;
    }
    case TraceShape::kBursty: {
      double time = 0.0;
      while (id < static_cast<std::uint64_t>(packets)) {
        const int burst = static_cast<int>(rng.uniform_int(2, 12));
        time += rng.exponential(burst * avg_bits / (0.9 * t.link_rate));
        for (int k = 0; k < burst && id < static_cast<std::uint64_t>(packets);
             ++k) {
          t.arrivals.push_back({time, rand_flow(), rand_bytes(), id++});
        }
      }
      break;
    }
    case TraceShape::kDrainRefill: {
      // Bursts separated by gaps that let the link fully drain — exercises
      // busy-period resets (both the idle-poll and the eager-enqueue path).
      double time = 0.0;
      while (id < static_cast<std::uint64_t>(packets)) {
        const int burst = static_cast<int>(rng.uniform_int(2, 15));
        double burst_bits = 0.0;
        for (int k = 0; k < burst && id < static_cast<std::uint64_t>(packets);
             ++k) {
          const std::uint32_t bytes = rand_bytes();
          burst_bits += 8.0 * bytes;
          t.arrivals.push_back({time, rand_flow(), bytes, id++});
        }
        time += burst_bits / t.link_rate + rng.uniform(0.05, 0.8);
      }
      break;
    }
    case TraceShape::kTieHeavy:
    case TraceShape::kCount:
      break;  // handled above / unreachable
  }
  return t;
}

// ------------------------------------------------------------ sim drivers

namespace {

struct Departure {
  net::Packet pkt;
  double time = 0.0;
};

net::Packet make_packet(const FuzzArrival& a) {
  net::Packet p;
  p.id = a.id;
  p.flow = a.flow;
  p.size_bytes = a.bytes;
  p.created = a.time;
  return p;
}

struct GpsTrack {
  double worst_ahead = 0.0;
  double worst_behind = 0.0;
};

// Drives `sched` over the trace through a Link, wrapped in the black-box
// auditor, with internal-hook and auditor violations collected into
// `failures` under `name`. When `track` is non-null, the fluid GPS server
// runs the same arrivals and per-flow cumulative service is compared at
// every departure instant.
std::vector<Departure> run_linked(const FuzzTrace& tr, net::Scheduler& sched,
                                  const std::string& name,
                                  std::vector<FuzzFailure>* failures,
                                  GpsTrack* track) {
  SchedulerAuditor audited(sched);
  CollectScope collect([&](const Violation& v) {
    failures->push_back({name + "/" + v.invariant, v.detail});
  });

  std::unique_ptr<fluid::GpsServer<double>> gps;
  if (track != nullptr) {
    gps = std::make_unique<fluid::GpsServer<double>>(tr.link_rate);
    for (net::FlowId f = 0; f < tr.rates.size(); ++f) {
      gps->add_flow(f, tr.rates[f]);
    }
  }

  sim::Simulator sim;
  sim::Link link(sim, audited, tr.link_rate);
  std::vector<Departure> out;
  std::vector<double> served(tr.rates.size(), 0.0);
  std::size_t next_arrival = 0;
  link.set_delivery([&](const net::Packet& p, net::Time now) {
    out.push_back({p, now});
    if (track == nullptr) return;
    served[p.flow] += p.size_bits();
    while (next_arrival < tr.arrivals.size() &&
           tr.arrivals[next_arrival].time <= now) {
      const FuzzArrival& a = tr.arrivals[next_arrival];
      gps->arrive(a.time, a.flow, 8.0 * a.bytes);
      ++next_arrival;
    }
    gps->advance_to(now);
    for (net::FlowId f = 0; f < tr.rates.size(); ++f) {
      const double diff = served[f] - gps->work(f);
      track->worst_ahead = std::max(track->worst_ahead, diff);
      track->worst_behind = std::max(track->worst_behind, -diff);
    }
  });
  for (const FuzzArrival& a : tr.arrivals) {
    sim.at(a.time, [&link, p = make_packet(a)] { link.submit(p); });
  }
  sim.run();
  return out;
}

// Drives the scheduler directly, emulating the link's timing but never
// issuing the idle poll (dequeue on an empty scheduler). A correct busy-
// period reset must produce the same schedule as the polled Link driver;
// a scheduler that leaks stale vtime/tags across an unpolled idle gap
// diverges here.
//
// Timing mirrors sim::Link exactly: while a transmission is in progress,
// arrivals up to and including its completion time are enqueued before the
// completion's dequeue (arrival events are scheduled first, and the event
// queue is FIFO at equal times); when the link is idle, submit() kicks
// immediately, so a busy period starts with only its first arrival visible.
std::vector<Departure> run_unpolled(const FuzzTrace& tr,
                                    net::Scheduler& sched) {
  std::vector<Departure> out;
  std::size_t i = 0;
  double next_free = 0.0;
  bool idle = true;
  auto submit = [&](const FuzzArrival& a) {
    net::Packet p = make_packet(a);
    p.arrival = a.time;
    sched.enqueue(p, a.time);
  };
  auto transmit = [&](double start) {
    auto p = sched.dequeue(start);
    if (!p.has_value()) return false;  // work-conservation bug; auditor's job
    next_free = start + p->size_bits() / tr.link_rate;
    out.push_back({*p, next_free});
    idle = false;
    return true;
  };
  for (;;) {
    if (idle) {
      if (i >= tr.arrivals.size()) break;
      const double start = std::max(next_free, tr.arrivals[i].time);
      submit(tr.arrivals[i++]);
      if (!transmit(start)) break;
    } else {
      while (i < tr.arrivals.size() && tr.arrivals[i].time <= next_free) {
        submit(tr.arrivals[i++]);
      }
      if (sched.backlog_packets() > 0) {
        if (!transmit(next_free)) break;
      } else {
        idle = true;  // the Link would poll dequeue() empty here; we don't
      }
    }
  }
  return out;
}

// Drives the scheduler through the batched APIs (enqueue_burst /
// dequeue_burst) with seed-derived randomized batching, mirroring
// run_unpolled's timing exactly. A correct burst implementation must
// produce the identical schedule — ids and departure times — for every
// coalescing pattern:
//  * arrivals sharing one instant are randomly merged into enqueue_burst
//    calls (only in the busy window; an idle link serves the first arrival
//    of an instant before later ones are offered, as run_unpolled does);
//  * each transmission opportunity commits a dequeue_burst of randomized
//    max size, bounded by the next not-yet-submitted arrival time — the
//    same horizon a batched sim::Link computes from its event queue.
std::vector<Departure> run_burst(const FuzzTrace& tr, net::Scheduler& sched) {
  util::Rng rng(tr.seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<Departure> out;
  std::size_t i = 0;
  double next_free = 0.0;
  bool idle = true;
  std::vector<net::Packet> burst_in, burst_out;
  auto packet_at = [&](const FuzzArrival& a) {
    net::Packet p = make_packet(a);
    p.arrival = a.time;
    return p;
  };
  // Enqueues every arrival with time <= upto; runs of identical arrival
  // instants are coalesced into one enqueue_burst with probability 1/2.
  auto submit_pending = [&](double upto) {
    while (i < tr.arrivals.size() && tr.arrivals[i].time <= upto) {
      const double t0 = tr.arrivals[i].time;
      burst_in.clear();
      burst_in.push_back(packet_at(tr.arrivals[i++]));
      if (rng.uniform_int(0, 1) == 1) {
        while (i < tr.arrivals.size() && tr.arrivals[i].time == t0 &&
               tr.arrivals[i].time <= upto) {
          burst_in.push_back(packet_at(tr.arrivals[i++]));
        }
      }
      if (burst_in.size() == 1) {
        sched.enqueue(burst_in[0], t0);
      } else {
        sched.enqueue_burst(burst_in, t0);
      }
    }
  };
  auto transmit_burst = [&](double start) {
    const double horizon = i < tr.arrivals.size()
                               ? tr.arrivals[i].time
                               : std::numeric_limits<double>::infinity();
    const auto max_burst =
        static_cast<std::size_t>(rng.uniform_int(1, 4));
    burst_out.clear();
    const std::size_t n =
        sched.dequeue_burst(burst_out, max_burst, start, tr.link_rate, horizon);
    if (n == 0) return false;  // work-conservation bug; auditor's job
    double t = start;
    for (std::size_t k = 0; k < n; ++k) {
      t += burst_out[k].size_bits() / tr.link_rate;
      out.push_back({burst_out[k], t});
    }
    next_free = t;
    idle = false;
    return true;
  };
  for (;;) {
    if (idle) {
      if (i >= tr.arrivals.size()) break;
      const double start = std::max(next_free, tr.arrivals[i].time);
      net::Packet p = packet_at(tr.arrivals[i++]);
      sched.enqueue(p, p.arrival);
      if (!transmit_burst(start)) break;
    } else {
      submit_pending(next_free);
      if (sched.backlog_packets() > 0) {
        if (!transmit_burst(next_free)) break;
      } else {
        idle = true;  // the Link would poll dequeue() empty here; we don't
      }
    }
  }
  return out;
}

// Closed-loop (TCP Reno) scenario derived from the trace: greedy ack-clocked
// senders over the link under test, loss only by drop-tail overflow of the
// leaf queues. Runs either the per-packet link or the batched link with the
// declared feedback fence D = feedback_delay_s; auditor and link-contract
// violations are collected into `failures` under `name`.
std::vector<Departure> run_tcp(const FuzzTrace& tr, bool batched,
                               double feedback_delay_s, double owd,
                               std::vector<FuzzFailure>* failures,
                               const std::string& name) {
  core::Wf2qPlus sched(tr.link_rate);
  const auto n =
      static_cast<net::FlowId>(std::min<std::size_t>(tr.rates.size(), 4));
  for (net::FlowId f = 0; f < n; ++f) {
    sched.add_flow(f, tr.rates[f], /*capacity_packets=*/8);
  }
  SchedulerAuditor audited(sched);
  CollectScope collect([&](const Violation& v) {
    failures->push_back({name + "/" + v.invariant, v.detail});
  });

  sim::Simulator sim;
  sim::Link link(sim, audited, tr.link_rate);
  if (batched) link.set_batched(true, 64, feedback_delay_s);

  traffic::TcpConfig cfg;
  cfg.one_way_delay_s = owd;
  std::vector<std::unique_ptr<traffic::TcpSource>> sources;
  for (net::FlowId f = 0; f < n; ++f) {
    sources.push_back(std::make_unique<traffic::TcpSource>(
        sim, [&link](net::Packet p) { return link.submit(p); }, f,
        /*packet_bytes=*/125, cfg));
  }
  std::vector<Departure> out;
  link.set_delivery([&](const net::Packet& p, net::Time now) {
    out.push_back({p, now});
    if (p.flow < sources.size()) sources[p.flow]->on_packet_delivered(p);
  });
  for (net::FlowId f = 0; f < n; ++f) {
    // Staggered starts: distinct instants, so idle-link kicks never tie.
    sources[f]->start(0.001 * static_cast<double>(f + 1));
  }
  sim.run_until(30.0);
  return out;
}

double max_packet_bits(const FuzzTrace& tr) {
  double lmax = 0.0;
  for (const FuzzArrival& a : tr.arrivals) {
    lmax = std::max(lmax, 8.0 * a.bytes);
  }
  return lmax;
}

void check_bound(std::vector<FuzzFailure>* failures, const std::string& check,
                 double value, double bound) {
  if (value > bound) {
    std::ostringstream os;
    os << value << " bits exceeds bound " << bound;
    failures->push_back({check, os.str()});
  }
}

// Identical departure schedules (ids and, optionally, times).
void check_same_schedule(std::vector<FuzzFailure>* failures,
                         const std::string& check,
                         const std::vector<Departure>& a,
                         const std::vector<Departure>& b,
                         bool compare_times) {
  if (a.size() != b.size()) {
    failures->push_back({check, "departure counts differ: " +
                                    std::to_string(a.size()) + " vs " +
                                    std::to_string(b.size())});
    return;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].pkt.id != b[i].pkt.id) {
      failures->push_back(
          {check, "departure " + std::to_string(i) + ": packet id " +
                      std::to_string(a[i].pkt.id) + " vs " +
                      std::to_string(b[i].pkt.id)});
      return;
    }
    if (compare_times && std::abs(a[i].time - b[i].time) > 1e-9) {
      failures->push_back({check, "departure " + std::to_string(i) +
                                      " times differ: " +
                                      std::to_string(a[i].time) + " vs " +
                                      std::to_string(b[i].time)});
      return;
    }
  }
}

// Per-flow cumulative service of two packet systems within `bound_bits` of
// each other at every departure index (the valid-WF²Q+-schedules-may-reorder
// comparison used for the fixed-point variant on non-exact traces).
void check_service_tracking(std::vector<FuzzFailure>* failures,
                            const std::string& check,
                            const std::vector<Departure>& a,
                            const std::vector<Departure>& b,
                            double bound_bits) {
  if (a.size() != b.size()) {
    failures->push_back({check, "departure counts differ"});
    return;
  }
  std::map<net::FlowId, double> wa, wb;
  for (std::size_t i = 0; i < a.size(); ++i) {
    wa[a[i].pkt.flow] += a[i].pkt.size_bits();
    wb[b[i].pkt.flow] += b[i].pkt.size_bits();
    for (const auto& [f, bits] : wa) {
      if (std::abs(bits - wb[f]) > bound_bits) {
        std::ostringstream os;
        os << "departure " << i << " flow " << f << ": " << bits << " vs "
           << wb[f] << " bits (bound " << bound_bits << ")";
        failures->push_back({check, os.str()});
        return;
      }
    }
  }
}

// Two-level hierarchy derived from the trace: flows split into two classes
// with rates summing to their leaves'. Returns per-leaf worst ahead/behind
// versus the fluid H-GPS reference; auditor violations go to `failures`.
GpsTrack run_hierarchy(const FuzzTrace& tr, std::vector<FuzzFailure>* failures,
                       const std::string& name) {
  const std::size_t n = tr.rates.size();
  const std::size_t half = n / 2 > 0 ? n / 2 : 1;
  double rate_a = 0.0, rate_b = 0.0;
  for (std::size_t f = 0; f < n; ++f) {
    (f < half ? rate_a : rate_b) += tr.rates[f];
  }

  core::HWf2qPlus h(tr.link_rate);
  const core::NodeId ca = h.add_internal(h.root(), rate_a);
  const core::NodeId cb = h.add_internal(h.root(), rate_b);
  fluid::HgpsServer<double> hg(tr.link_rate);
  const fluid::NodeId ga = hg.add_node(hg.root(), rate_a);
  const fluid::NodeId gb = hg.add_node(hg.root(), rate_b);
  std::vector<fluid::NodeId> leaf(n);
  for (std::size_t f = 0; f < n; ++f) {
    h.add_leaf(f < half ? ca : cb, tr.rates[f], static_cast<net::FlowId>(f));
    leaf[f] = hg.add_node(f < half ? ga : gb, tr.rates[f]);
  }

  SchedulerAuditor audited(h);
  CollectScope collect([&](const Violation& v) {
    failures->push_back({name + "/" + v.invariant, v.detail});
  });

  GpsTrack track;
  sim::Simulator sim;
  sim::Link link(sim, audited, tr.link_rate);
  std::vector<double> served(n, 0.0);
  std::size_t next_arrival = 0;
  link.set_delivery([&](const net::Packet& p, net::Time now) {
    served[p.flow] += p.size_bits();
    while (next_arrival < tr.arrivals.size() &&
           tr.arrivals[next_arrival].time <= now) {
      const FuzzArrival& a = tr.arrivals[next_arrival];
      hg.arrive(a.time, leaf[a.flow], 8.0 * a.bytes);
      ++next_arrival;
    }
    hg.advance_to(now);
    for (std::size_t f = 0; f < n; ++f) {
      const double diff = served[f] - hg.work(leaf[f]);
      track.worst_ahead = std::max(track.worst_ahead, diff);
      track.worst_behind = std::max(track.worst_behind, -diff);
    }
  });
  for (const FuzzArrival& a : tr.arrivals) {
    sim.at(a.time, [&link, p = make_packet(a)] { link.submit(p); });
  }
  sim.run();
  return track;
}

}  // namespace

// ---------------------------------------------------------------- checker

std::vector<FuzzFailure> run_checks(const FuzzTrace& tr,
                                    obs::FlightRecorder* external_recorder) {
  std::vector<FuzzFailure> failures;
  if (tr.arrivals.empty() || tr.rates.empty()) return failures;
  // In an HFQ_TRACE build every scheduler run below records into this ring;
  // if any check fails, the tail of the event log rides along as an extra
  // pseudo-failure so the mismatch comes with its decision timeline. With
  // tracing compiled out the recorder stays empty and nothing is appended.
  obs::FlightRecorder local_recorder(4096);
  obs::FlightRecorder& recorder =
      external_recorder != nullptr ? *external_recorder : local_recorder;
  obs::RecordScope recorder_scope(recorder);
  const double lmax = max_packet_bits(tr);
  const double eps = 1e-6;

  auto add_flows = [&](auto& s) {
    for (net::FlowId f = 0; f < tr.rates.size(); ++f) {
      s.add_flow(f, tr.rates[f]);
    }
  };

  // WF²Q+ (per-session tags, Eq. 28/29) — the paper's algorithm. Near GPS
  // on both sides; the Eq. 27 virtual time is approximate (it advances in
  // service time, not fluid time), so under overload the packet system can
  // run slightly more than one max packet ahead and somewhat more than two
  // behind. The constants are empirical envelopes validated over 100k+
  // seeds, not theorems — a tag-discipline bug blows far past them.
  std::vector<Departure> d_plus;
  {
    core::Wf2qPlus s(tr.link_rate);
    add_flows(s);
    GpsTrack t;
    d_plus = run_linked(tr, s, "wf2qplus", &failures, &t);
    check_bound(&failures, "wf2qplus-gps-ahead", t.worst_ahead,
                2.0 * lmax + eps);
    check_bound(&failures, "wf2qplus-gps-behind", t.worst_behind,
                3.0 * lmax + eps);
  }

  // WF²Q (SEFF on the exact GPS virtual time): same two-sided bound.
  {
    sched::Wf2q s(tr.link_rate);
    add_flows(s);
    GpsTrack t;
    run_linked(tr, s, "wf2q", &failures, &t);
    check_bound(&failures, "wf2q-gps-ahead", t.worst_ahead, lmax + eps);
    check_bound(&failures, "wf2q-gps-behind", t.worst_behind,
                2.0 * lmax + eps);
  }

  // WFQ: may run far ahead (the paper's critique) but never far behind.
  {
    sched::Wfq s(tr.link_rate);
    add_flows(s);
    GpsTrack t;
    run_linked(tr, s, "wfq", &failures, &t);
    check_bound(&failures, "wfq-gps-behind", t.worst_behind,
                2.0 * lmax + eps);
  }

  // SCFQ / SFQ: no per-flow fluid bound claimed; black-box invariants only.
  {
    sched::Scfq s;
    add_flows(s);
    run_linked(tr, s, "scfq", &failures, nullptr);
  }
  {
    sched::StartTimeFq s;
    add_flows(s);
    run_linked(tr, s, "sfq", &failures, nullptr);
  }

  // Per-packet WF²Q+ (Eqs. 6/7) against the per-session form (Eq. 28/29).
  // The two are NOT always schedule-identical: per-packet stamps
  // S = max(F_prev, V(arrival)) at arrival while per-session stamps
  // S = F_prev at head succession, and V may overtake a backlogged
  // session's finish tag (V is bounded by max F, not min F), at which
  // point the tags — and the order of later ties — diverge. Both remain
  // valid WF²Q+ schedules, so per-flow service must track within a couple
  // of max packets (rare overload seeds exceed one by a few bytes).
  {
    sched::Wf2qPlusPerPacket s(tr.link_rate);
    add_flows(s);
    GpsTrack t;
    const auto d = run_linked(tr, s, "wf2qplus-perpacket", &failures, &t);
    check_bound(&failures, "perpacket-gps-ahead", t.worst_ahead,
                2.0 * lmax + eps);
    check_bound(&failures, "perpacket-gps-behind", t.worst_behind,
                3.0 * lmax + eps);
    check_service_tracking(&failures, "perpacket-service-tracking", d_plus, d,
                           2.0 * lmax + eps);
  }

  // Fixed-point WF²Q+: same GPS bounds (plus a packet of tick-rounding
  // slack), per-flow service within a couple of max packets of the double
  // version, and — on tie-heavy traces, where all arithmetic is exact in
  // both — the *identical* schedule, pinning the FIFO tie-break discipline.
  std::vector<Departure> d_fixed;
  {
    core::Wf2qPlusFixed s(static_cast<std::uint64_t>(tr.link_rate));
    add_flows(s);
    GpsTrack t;
    const auto& d = d_fixed = run_linked(tr, s, "wf2qplus-fixed", &failures, &t);
    check_bound(&failures, "fixed-gps-ahead", t.worst_ahead,
                2.0 * lmax + eps);
    check_bound(&failures, "fixed-gps-behind", t.worst_behind,
                3.0 * lmax + eps);
    check_service_tracking(&failures, "fixed-service-tracking", d_plus, d,
                           2.0 * lmax + eps);
    if (tr.shape == TraceShape::kTieHeavy) {
      check_same_schedule(&failures, "fixed-tie-discipline", d_plus, d,
                          /*compare_times=*/false);
    }
  }

  // The deque-era datapath, preserved verbatim (audit/wf2qplus_legacy.h):
  // the arena/SoA rewrite must reproduce its schedule exactly — packet ids
  // AND departure times — on every trace. This is the old-vs-new
  // differential for the million-flow rewrite.
  {
    Wf2qPlusLegacy s(tr.link_rate);
    add_flows(s);
    const auto d = run_linked(tr, s, "wf2qplus-legacy", &failures, nullptr);
    check_same_schedule(&failures, "wf2qplus-legacy-equivalence", d_plus, d,
                        /*compare_times=*/true);
  }

  // Calendar eligible-set engine (sched/calendar.h): in exact mode the
  // TagCalendar build of every WF²Q+ variant must reproduce its heap
  // twin's schedule bit-for-bit — packet ids AND departure times — on
  // every trace. This is the engine-swap differential behind the
  // HFQ_ELIGIBLE=calendar default.
  {
    core::Wf2qPlus s(tr.link_rate, sched::EligEngine::kCalendar);
    add_flows(s);
    const auto d = run_linked(tr, s, "wf2qplus-cal", &failures, nullptr);
    check_same_schedule(&failures, "wf2qplus-cal-equivalence", d_plus, d,
                        /*compare_times=*/true);
  }
  {
    core::Wf2qPlusFixed s(static_cast<std::uint64_t>(tr.link_rate),
                          sched::EligEngine::kCalendar);
    add_flows(s);
    const auto d = run_linked(tr, s, "wf2qplus-fixedcal", &failures, nullptr);
    check_same_schedule(&failures, "fixed-cal-equivalence", d_fixed, d,
                        /*compare_times=*/true);
  }

  // Approximate (unsorted-bucket) calendar: picks may trail the true
  // minimum by one bucket width sigma, so the schedule is not identical —
  // but per-flow service must track the exact schedule within the
  // quantization budget sigma * r_link plus the usual packet slack.
  {
    double rmin = tr.rates[0];
    for (const double r : tr.rates) rmin = std::min(rmin, r);
    sched::CalendarTuning tuning;
    tuning.approximate = true;
    if (lmax > 0.0) tuning.max_packet_bits = lmax;
    const sched::CalendarGeometry g =
        sched::derive_geometry(tr.rates.size(), rmin, tuning);
    core::Wf2qPlus s(tr.link_rate, sched::EligEngine::kCalendar, tuning);
    add_flows(s);
    const auto d = run_linked(tr, s, "wf2qplus-approxcal", &failures, nullptr);
    check_service_tracking(&failures, "approxcal-service-tracking", d_plus, d,
                           g.width_vt * tr.link_rate + 3.0 * lmax + eps);
  }

  // Hierarchical calendar engine: HPfq<Wf2qPlusCalPolicy> must reproduce
  // HPfq<Wf2qPlusPolicy> exactly on the same two-class split.
  {
    const std::size_t n = tr.rates.size();
    const std::size_t half = n / 2 > 0 ? n / 2 : 1;
    double rate_a = 0.0, rate_b = 0.0;
    for (std::size_t f = 0; f < n; ++f) {
      (f < half ? rate_a : rate_b) += tr.rates[f];
    }
    if (rate_a > 0.0 && rate_b > 0.0) {
      auto build = [&](auto& h) {
        const core::NodeId ca = h.add_internal(h.root(), rate_a);
        const core::NodeId cb = h.add_internal(h.root(), rate_b);
        for (std::size_t f = 0; f < n; ++f) {
          h.add_leaf(f < half ? ca : cb, tr.rates[f],
                     static_cast<net::FlowId>(f));
        }
      };
      core::HWf2qPlus heap(tr.link_rate);
      core::HWf2qPlusCal cal(tr.link_rate);
      build(heap);
      build(cal);
      const auto dh =
          run_linked(tr, heap, "hwf2qplus-heapref", &failures, nullptr);
      const auto dc = run_linked(tr, cal, "hwf2qplus-cal", &failures, nullptr);
      check_same_schedule(&failures, "hwf2qplus-cal-equivalence", dh, dc,
                          /*compare_times=*/true);
    }
  }

  // Busy-period discipline: an unpolled direct driver (never dequeues from
  // an empty scheduler) must see the exact schedule the polled Link driver
  // sees. Stale vtime/tags leaking across an idle gap diverge here. The
  // batched driver additionally exercises enqueue_burst/dequeue_burst with
  // randomized coalescing — the burst APIs must hold to the per-packet
  // schedule exactly.
  {
    core::Wf2qPlus s(tr.link_rate);
    add_flows(s);
    const auto d = run_unpolled(tr, s);
    check_same_schedule(&failures, "wf2qplus-unpolled-equivalence", d_plus, d,
                        /*compare_times=*/true);
    core::Wf2qPlus sb(tr.link_rate);
    add_flows(sb);
    const auto db = run_burst(tr, sb);
    check_same_schedule(&failures, "wf2qplus-burst-equivalence", d, db,
                        /*compare_times=*/true);
  }
  {
    core::Wf2qPlusFixed polled(static_cast<std::uint64_t>(tr.link_rate));
    core::Wf2qPlusFixed unpolled(static_cast<std::uint64_t>(tr.link_rate));
    add_flows(polled);
    add_flows(unpolled);
    const auto dp = run_linked(tr, polled, "wf2qplus-fixed", &failures,
                               nullptr);
    const auto du = run_unpolled(tr, unpolled);
    check_same_schedule(&failures, "fixed-unpolled-equivalence", dp, du,
                        /*compare_times=*/true);
    core::Wf2qPlusFixed burst(static_cast<std::uint64_t>(tr.link_rate));
    add_flows(burst);
    const auto db = run_burst(tr, burst);
    check_same_schedule(&failures, "fixed-burst-equivalence", du, db,
                        /*compare_times=*/true);
  }

  // Closed-loop safety of the batched link (the feedback fence, see
  // sim/link.h): a TCP Reno scenario derived from the seed — ack-clocked
  // senders reacting to this link's own deliveries after 2*owd — must
  // produce the identical schedule (ids AND departure times) through the
  // per-packet link and the batched link fencing at D = 2*owd. Any
  // undeclared preemption would also fire the link's runtime contract
  // check, which the CollectScope above surfaces as a failure. This is the
  // fuzz confirmation behind removing the old "open-loop only" caveat.
  {
    const double owd = 0.005 + 0.005 * static_cast<double>(tr.seed % 8);
    const auto dp = run_tcp(tr, /*batched=*/false, 0.0, owd, &failures,
                            "tcp-perpacket");
    const auto db = run_tcp(tr, /*batched=*/true, 2.0 * owd, owd, &failures,
                            "tcp-batched");
    check_same_schedule(&failures, "tcp-batched-equivalence", dp, db,
                        /*compare_times=*/true);
  }

  // H-WF²Q+ against the fluid H-GPS reference on a two-level hierarchy:
  // per-session discrepancy bounded by a small number of max packets (one
  // per level ahead; behind gains the packet in transmission).
  {
    const GpsTrack t = run_hierarchy(tr, &failures, "hwf2qplus");
    check_bound(&failures, "hwf2qplus-hgps-ahead", t.worst_ahead,
                2.0 * lmax + eps);
    check_bound(&failures, "hwf2qplus-hgps-behind", t.worst_behind,
                4.0 * lmax + eps);
  }

  // Hierarchy baselines: black-box invariants (conservation, FIFO, work
  // conservation) — their fluid tracking is deliberately loose.
  {
    core::HWfq h(tr.link_rate);
    const core::NodeId c = h.add_internal(h.root(), tr.link_rate * 0.999);
    for (net::FlowId f = 0; f < tr.rates.size(); ++f) {
      h.add_leaf(c, tr.rates[f], f);
    }
    run_linked(tr, h, "hwfq", &failures, nullptr);
  }
  {
    core::HScfq h(tr.link_rate);
    const core::NodeId c = h.add_internal(h.root(), tr.link_rate * 0.999);
    for (net::FlowId f = 0; f < tr.rates.size(); ++f) {
      h.add_leaf(c, tr.rates[f], f);
    }
    run_linked(tr, h, "hscfq", &failures, nullptr);
  }

  if (!failures.empty() && recorder.total_recorded() > 0) {
    failures.push_back(
        {"flight-recorder",
         "last " + std::to_string(recorder.last(64).size()) + " of " +
             std::to_string(recorder.total_recorded()) + " events:\n" +
             obs::format_events(recorder.last(64))});
  }
  return failures;
}

// -------------------------------------------------------------- minimizer

FuzzTrace minimize(const FuzzTrace& trace,
                   const std::function<bool(const FuzzTrace&)>& fails) {
  if (!fails(trace)) return trace;
  FuzzTrace cur = trace;
  int evals = 0;
  constexpr int kMaxEvals = 600;
  std::size_t chunk = cur.arrivals.size() / 2;
  while (chunk >= 1 && evals < kMaxEvals) {
    bool removed_any = false;
    std::size_t start = 0;
    while (start < cur.arrivals.size() && evals < kMaxEvals) {
      FuzzTrace cand = cur;
      const std::size_t end =
          std::min(start + chunk, cand.arrivals.size());
      cand.arrivals.erase(cand.arrivals.begin() + static_cast<long>(start),
                          cand.arrivals.begin() + static_cast<long>(end));
      ++evals;
      if (!cand.arrivals.empty() && fails(cand)) {
        cur = std::move(cand);
        removed_any = true;
        // Re-test the same offset: it now holds different arrivals.
      } else {
        start += chunk;
      }
    }
    if (chunk == 1 && !removed_any) break;
    if (!removed_any || chunk > 1) chunk = std::max<std::size_t>(1, chunk / 2);
  }
  return cur;
}

std::string format_trace(const FuzzTrace& tr) {
  std::ostringstream os;
  os << "seed " << tr.seed << " shape " << shape_name(tr.shape) << " link "
     << tr.link_rate << " bps\nrates:";
  for (std::size_t f = 0; f < tr.rates.size(); ++f) {
    os << " [" << f << "]=" << tr.rates[f];
  }
  os << "\n" << tr.arrivals.size() << " arrivals:\n";
  for (const FuzzArrival& a : tr.arrivals) {
    os << "  t=" << a.time << " flow=" << a.flow << " bytes=" << a.bytes
       << " id=" << a.id << "\n";
  }
  return os.str();
}

}  // namespace hfq::audit
