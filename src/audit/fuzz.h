// Differential scheduler fuzzing: randomized traces driven through every
// packet scheduler and checked against the fluid GPS / H-GPS references and
// against alternative formulations of the same algorithm.
//
// This is the systematic version of the spot checks in
// tests/test_differential.cc: a seed deterministically generates a trace
// (bursty, tie-heavy, overloaded, or drain/refill-cycled), run_checks()
// replays it through the scheduler zoo under the black-box auditor (plus the
// compile-gated internal invariant hooks when the build enables them), and
// any failure is reported with the seed so it can be replayed exactly.
// minimize() shrinks a failing trace to a minimal arrival subsequence by
// greedy delta debugging.
//
// Used by tools/fuzz_sched_diff (CLI, runs in CI under ASan/UBSan) and by
// the seed-replay unit tests in tests/test_audit.cc.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/packet.h"
#include "obs/flight_recorder.h"

namespace hfq::audit {

enum class TraceShape : int {
  kUniform = 0,     // steady random arrivals, moderate load
  kBursty,          // batches of simultaneous arrivals separated by gaps
  kTieHeavy,        // equal power-of-two rates & sizes: tags tie constantly
  kOverload,        // sustained offered load > link rate
  kDrainRefill,     // bursts separated by gaps long enough to fully drain
  kCount
};

[[nodiscard]] const char* shape_name(TraceShape s);

struct FuzzArrival {
  double time = 0.0;
  net::FlowId flow = 0;
  std::uint32_t bytes = 0;
  std::uint64_t id = 0;
};

struct FuzzTrace {
  std::uint64_t seed = 0;
  TraceShape shape = TraceShape::kUniform;
  double link_rate = 0.0;
  std::vector<double> rates;          // per-flow guaranteed rates (bps)
  std::vector<FuzzArrival> arrivals;  // time-ordered
};

// Deterministically derives a trace (shape, flows, rates, arrivals) from a
// seed. Same seed, same trace — the replay contract the CLI relies on.
[[nodiscard]] FuzzTrace generate_trace(std::uint64_t seed);

struct FuzzFailure {
  std::string check;   // stable check name, e.g. "wf2qplus-gps-ahead"
  std::string detail;  // what diverged, with values
};

// Runs every differential and invariant check on the trace. Empty = clean.
// In an HFQ_TRACE build every scheduler run records into a flight-recorder
// ring; on failure the tail of the event log is appended as a final
// pseudo-failure with check == "flight-recorder". Pass `recorder` to record
// into a caller-owned ring instead (for saving the events to disk —
// fuzz_sched_diff --trace-dump).
[[nodiscard]] std::vector<FuzzFailure> run_checks(
    const FuzzTrace& trace, obs::FlightRecorder* recorder = nullptr);

// Greedy delta debugging: returns a trace whose arrival list is a minimal
// subsequence of `trace`'s for which `fails` still returns true. `fails`
// must be deterministic; evaluation count is capped, so the result is
// 1-minimal only if the cap is not hit.
[[nodiscard]] FuzzTrace minimize(
    const FuzzTrace& trace,
    const std::function<bool(const FuzzTrace&)>& fails);

// Human-readable dump (rates + arrivals) for failure reports.
[[nodiscard]] std::string format_trace(const FuzzTrace& trace);

}  // namespace hfq::audit
