// The invariant reporting machinery is header-only (the schedulers that use
// HFQ_AUDIT_CHECK must not link against this library); this TU anchors the
// hfq_audit target and keeps the header compiled with full warnings.
#include "audit/invariants.h"
