// Compile-time-optional scheduler invariant auditing.
//
// The paper's guarantees hang on tag discipline: SEFF must only serve
// eligible sessions (never S > V), the Eq. 27 virtual time must be monotone
// within a busy period, busy-period resets must not leak stale tags, and the
// eligible/waiting heaps must stay structurally valid. This header provides
// the reporting layer those checks feed into.
//
// Cost model: the hot-path hooks inside the schedulers are expanded only
// when the build defines HFQ_AUDIT_ENABLED (CMake option -DHFQ_AUDIT=ON).
// In a normal build HFQ_AUDIT_CHECK compiles to nothing — the condition is
// not even evaluated — so production performance is untouched (verified by
// bench_sched_complexity). The reporting layer itself is header-only so the
// low-level libraries (util, core) can use it without a link-time dependency
// on the audit library.
//
// A violation is fatal by default (abort, like HFQ_ASSERT): a scheduler with
// a corrupted virtual clock must not keep producing plausible-looking
// schedules. Tests and the differential fuzzer install a collecting handler
// instead so a violation becomes a recorded failure with a replayable seed.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "util/assert.h"

namespace hfq::audit {

// True when the scheduler hot-path hooks are compiled in.
[[nodiscard]] constexpr bool compiled_in() noexcept {
#ifdef HFQ_AUDIT_ENABLED
  return true;
#else
  return false;
#endif
}

struct Violation {
  const char* invariant = "";  // stable short name, e.g. "seff-eligibility"
  std::string detail;          // human-readable specifics (tags, ids)
  const char* file = "";
  int line = 0;
};

// Handler invoked on every reported violation. Thread-local: schedulers are
// single-threaded objects, so a violation is always reported on the thread
// driving that scheduler. Keeping the slot per-thread lets sharded runs
// (fuzz_sched_diff --jobs N, the campaign runner) each install their own
// collecting handler without a process-wide race; single-threaded callers
// see the old process-wide behaviour unchanged.
using Handler = std::function<void(const Violation&)>;

namespace detail {
inline Handler& handler_slot() {
  thread_local Handler h;  // empty = default (abort)
  return h;
}
inline std::uint64_t& violation_counter() {
  thread_local std::uint64_t n = 0;
  return n;
}
}  // namespace detail

// Installs a handler and returns the previous one. Passing an empty handler
// restores the default abort behaviour.
inline Handler set_handler(Handler h) {
  Handler prev = std::move(detail::handler_slot());
  detail::handler_slot() = std::move(h);
  return prev;
}

[[nodiscard]] inline std::uint64_t violation_count() {
  return detail::violation_counter();
}

inline void reset_violation_count() { detail::violation_counter() = 0; }

inline void report(const char* invariant, const char* file, int line,
                   std::string detail_msg) {
  ++detail::violation_counter();
  const Violation v{invariant, std::move(detail_msg), file, line};
  if (detail::handler_slot()) {
    detail::handler_slot()(v);
    return;
  }
  util::assert_fail(v.invariant, v.file, v.line, v.detail.c_str());
}

// RAII scope that collects violations into a caller-owned sink instead of
// aborting; restores the previous handler on destruction.
class CollectScope {
 public:
  explicit CollectScope(std::function<void(const Violation&)> sink)
      : prev_(set_handler(std::move(sink))) {}
  ~CollectScope() { set_handler(std::move(prev_)); }
  CollectScope(const CollectScope&) = delete;
  CollectScope& operator=(const CollectScope&) = delete;

 private:
  Handler prev_;
};

}  // namespace hfq::audit

// Hot-path invariant hook. `detail_expr` is an expression producing a
// std::string; it is evaluated only when the invariant is violated, and the
// whole statement (condition included) vanishes when auditing is compiled
// out.
#ifdef HFQ_AUDIT_ENABLED
#define HFQ_AUDIT_CHECK(invariant, cond, detail_expr)                        \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::hfq::audit::report((invariant), __FILE__, __LINE__, (detail_expr));  \
    }                                                                        \
  } while (false)
#else
#define HFQ_AUDIT_CHECK(invariant, cond, detail_expr) \
  do {                                                \
  } while (false)
#endif
