// The pre-rewrite WF²Q+ datapath, preserved as a differential twin.
//
// This is the deque-based implementation the arena/SoA datapath
// (src/core/wf2qplus.h) replaced: per-flow std::deque packet queues inside
// FlatSchedulerBase plus a *parallel* vector of std::deque<uint64_t>
// arrival-number queues for the FIFO tie-break. It is kept — verbatim apart
// from the additions below — for three consumers:
//
//  * fuzz_sched_diff's "wf2qplus-legacy-equivalence" check replays every
//    trace through both datapaths and requires the identical dequeue
//    sequence (ids AND times) — the schedule-equivalence proof for the
//    rewrite;
//  * bench_sched_complexity --datapath measures it as the "before" side of
//    BENCH_datapath.json;
//  * the "arrival-seq-sync" HFQ_AUDIT invariant added here demonstrates the
//    bug class the rewrite closes structurally: this layout keeps queue
//    membership and sequence bookkeeping in two containers that a partial
//    failure can desynchronize (tests/test_datapath.cc induces the desync
//    and watches the invariant fire). The arena datapath stores the arrival
//    number inside the queued packet's own slot, so the state this invariant
//    guards does not exist there.
//
// Known flaws preserved on purpose (fixed in the live datapath):
//  * enqueue resizes arrival_nos_ to flow+1 — O(max id) allocation per
//    first-contact id (the live path validates ids at the Scheduler
//    boundary and never resizes on the packet path);
//  * arrival_counter_ wraps at 2^64 (the live path saturates).
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "sched/flat_base.h"

namespace hfq::audit {

using net::FlowId;
using net::Packet;
using net::Time;
using units::Duration;
using units::RateBps;
using units::VirtualTime;
using units::WallTime;

class Wf2qPlusLegacy : public sched::FlatSchedulerBase {
 public:
  explicit Wf2qPlusLegacy(double link_rate_bps)
      : link_rate_(RateBps{link_rate_bps}) {
    HFQ_ASSERT(link_rate_bps > 0.0);
  }

  bool enqueue(const Packet& p, Time now) override {
    // Eager busy-period boundary detection: if the scheduler drained and the
    // link finished its last transmission strictly before this arrival, the
    // busy period is over even if the link never polled dequeue() again.
    if (backlog_ == 0 && !sched::wt_leq(WallTime{now}, busy_until_)) {
      HFQ_TRACE_EVENT(busy_start(obs::kFlatNode, WallTime{now}, vtime_,
                                 static_cast<double>(epoch_)));
      vtime_ = VirtualTime{};
      ++epoch_;
    }
    FlowState& f = flow(p.flow);
    if (!f.queue.push(p)) {
      trace_drop(p.flow, p, now);
      return false;
    }
    // hfq-lint: disable(alloc-in-hot-path) — the legacy layout's per-packet
    // deque bookkeeping is the exact pattern the rule exists to forbid.
    if (p.flow >= arrival_nos_.size()) arrival_nos_.resize(p.flow + 1);
    // hfq-lint: disable(alloc-in-hot-path) — ditto: deque node per packet.
    arrival_nos_[p.flow].push_back(arrival_counter_++);
    ++backlog_;
    HFQ_AUDIT_CHECK("arrival-seq-sync",
                    arrival_nos_[p.flow].size() == f.queue.size(),
                    "arrival-number deque diverged from packet queue: " +
                        std::to_string(arrival_nos_[p.flow].size()) + " vs " +
                        std::to_string(f.queue.size()));
    if (f.queue.size() == 1) {
      // Eq. 28, empty-queue branch: S = max(F_i, V). Tags from a previous
      // busy period are dropped via the epoch counter.
      const VirtualTime f_prev =
          f.epoch == epoch_ ? f.finish : VirtualTime{};
      f.start = f_prev > vtime_ ? f_prev : vtime_;
      f.finish = f.start + p.bits() / f.rate;  // Eq. 29
      f.epoch = epoch_;
      HFQ_AUDIT_CHECK("tag-sanity", f.start < f.finish,
                      "enqueue stamped start >= finish");
      insert_by_eligibility(p.flow, now);
    }
    trace_enqueue(p.flow, p, now, vtime_);
    return true;
  }

  std::optional<Packet> dequeue(Time now) override {
    if (backlog_ == 0) {
      HFQ_TRACE_EVENT(busy_end(obs::kFlatNode, WallTime{now}, vtime_,
                               static_cast<double>(epoch_)));
      vtime_ = VirtualTime{};
      ++epoch_;
      return std::nullopt;
    }
    // Eq. 27 in service time: V_now = max(V, Smin).
    VirtualTime v_now = vtime_;
    if (eligible_.empty()) {
      HFQ_ASSERT_MSG(!waiting_.empty(), "backlog without any head tags");
      const VirtualTime smin = waiting_.top_key().tag;
      if (smin > v_now) v_now = smin;
    }
    migrate_eligible(v_now, now);
    HFQ_ASSERT_MSG(!eligible_.empty(),
                   "SEFF must always find an eligible session");
    const FlowId id = eligible_.pop();
    FlowState& f = flow(id);
    HFQ_TRACE_EVENT(
        eligset_op(obs::kFlatNode, id, WallTime{now}, "select", f.finish));
    HFQ_AUDIT_CHECK("seff-eligibility", sched::vt_leq(f.start, v_now),
                    "served a session whose start tag " +
                        std::to_string(f.start.v()) + " exceeds V " +
                        std::to_string(v_now.v()));
    HFQ_AUDIT_CHECK("vtime-monotonic", v_now >= vtime_,
                    "virtual time moved backwards within a busy period");
    HFQ_AUDIT_CHECK("tag-epoch", f.epoch == epoch_,
                    "served a session carrying tags from a previous epoch");
    HFQ_AUDIT_CHECK("arrival-seq-sync",
                    arrival_nos_[id].size() == f.queue.size(),
                    "arrival-number deque diverged from packet queue: " +
                        std::to_string(arrival_nos_[id].size()) + " vs " +
                        std::to_string(f.queue.size()));
    f.handle = util::kInvalidHeapHandle;
    Packet p = f.queue.pop();
    arrival_nos_[id].pop_front();
    --backlog_;
    const Duration service_time = p.bits() / link_rate_;
    HFQ_TRACE_EVENT(vtime_update(obs::kFlatNode, WallTime{now}, vtime_,
                                 v_now + service_time));
    vtime_ = v_now + service_time;
    const WallTime tx_end = WallTime{now} + service_time;
    if (tx_end > busy_until_) busy_until_ = tx_end;
    if (!f.queue.empty()) {
      // Eq. 28, non-empty branch: S = F.
      f.start = f.finish;
      f.finish = f.start + f.queue.front().bits() / f.rate;
      insert_by_eligibility(id, now);
    }
    HFQ_AUDIT_CHECK("heap-valid", eligible_.validate() && waiting_.validate(),
                    "eligible/waiting heap order corrupted");
    HFQ_AUDIT_CHECK("backlog-conservation",
                    audit_queued_packets() == backlog_,
                    "backlog counter diverged from per-flow queue sizes");
    trace_dequeue(id, p, now, vtime_);
    return p;
  }

  [[nodiscard]] double vtime() const noexcept { return vtime_.v(); }

  // Head tags, exposed for tests.
  [[nodiscard]] double head_start(FlowId id) const {
    return flow(id).start.v();
  }
  [[nodiscard]] double head_finish(FlowId id) const {
    return flow(id).finish.v();
  }

 protected:
  void insert_by_eligibility(FlowId id, Time now) {
    FlowState& f = flow(id);
    const std::uint64_t no = arrival_nos_[id].front();
    if (sched::vt_leq(f.start, vtime_)) {
      f.in_eligible = true;
      f.handle = eligible_.push(sched::VtKey{f.finish, no}, id);
    } else {
      f.in_eligible = false;
      f.handle = waiting_.push(sched::VtKey{f.start, no}, id);
    }
    trace_flip(id, now, vtime_, f.in_eligible);
  }

  void migrate_eligible(VirtualTime v_now, Time now) {
    while (!waiting_.empty() && sched::vt_leq(waiting_.top_key().tag, v_now)) {
      const FlowId id = waiting_.pop();
      FlowState& f = flow(id);
      f.in_eligible = true;
      f.handle =
          eligible_.push(sched::VtKey{f.finish, arrival_nos_[id].front()}, id);
      trace_flip(id, now, v_now, true);
    }
  }

  RateBps link_rate_;
  VirtualTime vtime_;
  WallTime busy_until_;
  std::uint64_t epoch_ = 1;
  std::uint64_t arrival_counter_ = 0;
  // The two containers the "arrival-seq-sync" invariant keeps honest:
  // per-flow packet queues live in FlatSchedulerBase::flows_, the matching
  // arrival numbers here. Protected so tests can induce the desync.
  std::vector<std::deque<std::uint64_t>> arrival_nos_;
  util::HandleHeap<sched::VtKey, FlowId> eligible_;  // keyed by virtual finish
  util::HandleHeap<sched::VtKey, FlowId> waiting_;   // keyed by virtual start
};

}  // namespace hfq::audit
