// Hierarchy is header-only; this TU anchors the library target.
#include "core/hierarchy.h"
