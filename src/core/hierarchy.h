// Declarative description of a link-sharing hierarchy.
//
// One spec can instantiate (a) any HPfq<Policy> packet server, (b) the fluid
// H-GPS reference server, and (c) the ideal-share solver — so experiments
// compare all three on exactly the same tree. Node indices are identical
// across the three builds (nodes are added in spec order, root = 0).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/hpfq.h"
#include "fluid/hgps.h"
#include "fluid/share_solver.h"
#include "net/packet.h"
#include "util/assert.h"

namespace hfq::core {

class Hierarchy {
 public:
  struct NodeSpec {
    std::string name;
    double rate_bps = 0.0;
    std::int32_t parent = -1;  // -1 = root
    bool leaf = false;
    net::FlowId flow = net::kInvalidFlow;
    std::size_t capacity_packets = 0;
  };

  // Creates a hierarchy whose root (index 0) is the physical link.
  explicit Hierarchy(double link_rate_bps, std::string link_name = "link") {
    HFQ_ASSERT(link_rate_bps > 0.0);
    NodeSpec root;
    root.name = std::move(link_name);
    root.rate_bps = link_rate_bps;
    nodes_.push_back(std::move(root));
  }

  // Adds a link-sharing class; returns its node index.
  std::uint32_t add_class(std::uint32_t parent, std::string_view name,
                          double rate_bps) {
    return add(parent, name, rate_bps, false, net::kInvalidFlow, 0);
  }

  // Adds a session leaf fed by packets with the given flow id.
  std::uint32_t add_session(std::uint32_t parent, std::string_view name,
                            double rate_bps, net::FlowId flow,
                            std::size_t capacity_packets = 0) {
    return add(parent, name, rate_bps, true, flow, capacity_packets);
  }

  [[nodiscard]] const NodeSpec& node(std::uint32_t i) const {
    HFQ_ASSERT(i < nodes_.size());
    return nodes_[i];
  }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] double link_rate() const noexcept { return nodes_[0].rate_bps; }

  // Index of the node with the given name (names are unique).
  [[nodiscard]] std::uint32_t index_of(std::string_view name) const {
    for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].name == name) return i;
    }
    HFQ_ASSERT_MSG(false, "unknown hierarchy node name");
    return 0;
  }

  // Builds a packet server of the given policy. The returned object's node
  // ids equal the spec indices. (Returned by unique_ptr: schedulers are
  // pinned — links hold references to them.)
  template <typename Policy>
  [[nodiscard]] std::unique_ptr<HPfq<Policy>> build_packet() const {
    auto server = std::make_unique<HPfq<Policy>>(nodes_[0].rate_bps);
    for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
      const NodeSpec& n = nodes_[i];
      const auto parent = static_cast<NodeId>(n.parent);
      NodeId id;
      if (n.leaf) {
        id = server->add_leaf(parent, n.rate_bps, n.flow, n.capacity_packets);
      } else {
        id = server->add_internal(parent, n.rate_bps);
      }
      HFQ_ASSERT(id == i);
    }
    return server;
  }

  // Builds the fluid H-GPS reference on the same tree.
  [[nodiscard]] fluid::HgpsServer<double> build_fluid() const {
    fluid::HgpsServer<double> server(nodes_[0].rate_bps);
    for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
      const NodeSpec& n = nodes_[i];
      const auto id =
          server.add_node(static_cast<fluid::NodeId>(n.parent), n.rate_bps);
      HFQ_ASSERT(id == i);
    }
    return server;
  }

  // Builds the ideal-share solver (weights = guaranteed rates).
  [[nodiscard]] fluid::ShareSolver build_solver() const {
    fluid::ShareSolver solver;
    for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
      const NodeSpec& n = nodes_[i];
      const auto id = solver.add_node(
          static_cast<fluid::ShareSolver::NodeId>(n.parent), n.rate_bps);
      HFQ_ASSERT(id == i);
    }
    return solver;
  }

 private:
  std::uint32_t add(std::uint32_t parent, std::string_view name,
                    double rate_bps, bool leaf, net::FlowId flow,
                    std::size_t capacity) {
    HFQ_ASSERT(parent < nodes_.size());
    HFQ_ASSERT_MSG(!nodes_[parent].leaf, "cannot add child under a session");
    HFQ_ASSERT(rate_bps > 0.0);
    NodeSpec n;
    n.name = std::string(name);
    n.rate_bps = rate_bps;
    n.parent = static_cast<std::int32_t>(parent);
    n.leaf = leaf;
    n.flow = flow;
    n.capacity_packets = capacity;
    nodes_.push_back(std::move(n));
    return static_cast<std::uint32_t>(nodes_.size() - 1);
  }

  std::vector<NodeSpec> nodes_;
};

}  // namespace hfq::core
