// Explicit instantiations of the H-PFQ framework for every provided node
// policy; keeps all template code compiled with full warnings.
#include "core/hpfq.h"

namespace hfq::core {

template class HPfq<Wf2qPlusPolicy>;
template class HPfq<GpsSffPolicy>;
template class HPfq<GpsSeffPolicy>;
template class HPfq<ScfqPolicy>;
template class HPfq<SfqPolicy>;
template class HPfq<ApproxWfqPolicy>;
template class HPfq<DrrPolicy>;

}  // namespace hfq::core
