// H-PFQ: the hierarchical packet fair queueing framework of Section 4.
//
// The class implements the paper's ARRIVE / RESTART-NODE / RESET-PATH
// pseudocode over a tree of server nodes. Leaves hold real FIFO packet
// queues; every non-root node is connected to its parent through a logical
// queue that holds (a copy of) the head packet of its subtree. The node
// policy (core/node_policy.h) supplies the virtual time function and the
// child-selection rule, so the same framework yields H-WF²Q+, H-WFQ,
// H-WF²Q, H-SCFQ, H-SFQ and the ablation variants.
//
// Timing contract: the link calls dequeue() when it is ready to start the
// next transmission. Internally the RESET-PATH for packet k is deferred to
// the dequeue that selects packet k+1, which reproduces the paper's order
// of events exactly (the path is reset when the link finishes serving a
// packet, after which RESTART-NODE cascades bottom-up and can see every
// arrival that happened during the transmission).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "audit/invariants.h"
#include "core/node_policy.h"
#include "net/packet.h"
#include "net/packet_arena.h"
#include "net/scheduler.h"
#include "obs/flight_recorder.h"
#include "util/assert.h"
#include "util/units.h"

namespace hfq::core {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = UINT32_MAX;

template <typename Policy>
class HPfq : public net::Scheduler {
 public:
  explicit HPfq(double link_rate_bps) : link_rate_(RateBps{link_rate_bps}) {
    HFQ_ASSERT(link_rate_bps > 0.0);
    nodes_.emplace_back();  // root
    Node& r = nodes_[0];
    r.rate = RateBps{link_rate_bps};
    r.parent = kNoNode;
    r.policy.init(link_rate_bps);
  }

  [[nodiscard]] NodeId root() const noexcept { return 0; }

  // Adds an interior server node (a link-sharing class).
  NodeId add_internal(NodeId parent, double rate_bps) {
    const NodeId id = add_node(parent, rate_bps);
    nodes_[id].policy.init(rate_bps);
    return id;
  }

  // Adds a leaf session under `parent`. Packets with flow id `flow` are
  // routed to this leaf. `capacity_packets` bounds the session buffer
  // (0 = unlimited).
  NodeId add_leaf(NodeId parent, double rate_bps, net::FlowId flow,
                  std::size_t capacity_packets = 0) {
    HFQ_ASSERT_MSG(capacity_packets < UINT32_MAX,
                   "per-leaf capacity exceeds 2^32-1 packets");
    const NodeId id = add_node(parent, rate_bps);
    Node& n = nodes_[id];
    n.is_leaf = true;
    n.flow = flow;
    n.queue = net::ArenaFifo(static_cast<std::uint32_t>(capacity_packets));
    if (flow >= leaf_of_flow_.size()) leaf_of_flow_.resize(flow + 1, kNoNode);
    HFQ_ASSERT_MSG(leaf_of_flow_[flow] == kNoNode, "flow bound to two leaves");
    leaf_of_flow_[flow] = id;
    return id;
  }

  // --- net::Scheduler interface -------------------------------------------

  bool enqueue(const net::Packet& p, [[maybe_unused]] net::Time now) override {
    HFQ_ASSERT_MSG(p.flow < leaf_of_flow_.size() &&
                       leaf_of_flow_[p.flow] != kNoNode,
                   "packet for unknown flow");
    const NodeId leaf = leaf_of_flow_[p.flow];
    Node& n = nodes_[leaf];
    if (!n.queue.push(arena_, p, arrival_counter_)) {
      HFQ_TRACE_EVENT(
          drop(leaf, p.flow, p.id, WallTime{now}, p.size_bits()));
      return false;
    }
    // Tie-break sequence numbers are a flat-scheduler concern (HPfq orders
    // by per-node policy tags), but the arena slot carries one anyway;
    // saturate for the same reason as Wf2qPlus::enqueue_one.
    if (arrival_counter_ != UINT64_MAX) ++arrival_counter_;
    ++backlog_;
    HFQ_TRACE_EVENT(enqueue(leaf, p.flow, p.id, WallTime{now}, VirtualTime{},
                            p.size_bits(), static_cast<double>(backlog_)));
    if (n.queue.size() > 1) return true;  // logical head unchanged
    // ARRIVE: the packet becomes the head of the leaf's logical queue.
    n.logical = p;
    n.has_logical = true;
    stamp_child(leaf, /*continuing=*/false);
    if (!nodes_[n.parent].busy) restart_node(n.parent);
    return true;
  }

  std::optional<net::Packet> dequeue([[maybe_unused]] net::Time now) override {
    if (pending_reset_) {
      pending_reset_ = false;
      reset_path(0);
    }
    Node& r = nodes_[0];
    if (!r.has_logical) return std::nullopt;
    HFQ_TRACE_EVENT(dequeue(root(), r.logical.flow, r.logical.id,
                            WallTime{now}, VirtualTime{},
                            r.logical.size_bits(),
                            static_cast<double>(backlog_ - 1)));
    HFQ_AUDIT_CHECK("hpfq-backlog-conservation",
                    audit_queued_packets() == backlog_,
                    "backlog counter diverged from leaf queue sizes");
    HFQ_AUDIT_CHECK("hpfq-active-chain", audit_active_chain(),
                    "active-child chain inconsistent with the root's head");
    HFQ_AUDIT_CHECK("hpfq-policy-valid", audit_policies(),
                    "a node policy's heaps or child tags are corrupted");
    pending_reset_ = true;
    --backlog_;
    return r.logical;
  }

  [[nodiscard]] std::size_t backlog_packets() const override {
    return backlog_;
  }

  // --- introspection -------------------------------------------------------

  [[nodiscard]] std::uint64_t drops(net::FlowId flow) const {
    return nodes_[leaf_of_flow_[flow]].queue.drops();
  }
  [[nodiscard]] std::size_t queue_length(net::FlowId flow) const {
    return nodes_[leaf_of_flow_[flow]].queue.size();
  }
  [[nodiscard]] double node_rate(NodeId id) const {
    return nodes_[id].rate.bps();
  }
  [[nodiscard]] NodeId parent_of(NodeId id) const { return nodes_[id].parent; }
  [[nodiscard]] NodeId leaf_of(net::FlowId flow) const {
    return leaf_of_flow_[flow];
  }
  // Reference time T_n = W_n(0,t)/r_n of a node (Section 4.1).
  [[nodiscard]] double reference_time(NodeId id) const {
    return nodes_[id].T.seconds();
  }
  [[nodiscard]] const Policy& policy_of(NodeId id) const {
    return nodes_[id].policy;
  }
  // Mutable access for tuning knobs (e.g. rebase thresholds in tests).
  [[nodiscard]] Policy& mutable_policy(NodeId id) { return nodes_[id].policy; }
  [[nodiscard]] double link_rate() const noexcept { return link_rate_.bps(); }

 private:
  struct Node {
    RateBps rate;
    NodeId parent = kNoNode;
    std::vector<NodeId> children;
    std::size_t child_slot = 0;  // index within parent's policy
    bool is_leaf = false;
    bool busy = false;
    bool has_logical = false;
    net::Packet logical;  // head packet of this subtree's logical queue
    NodeId active_child = kNoNode;
    VirtualTime s, f;      // tags as a child of the parent node
    WallTime T;            // reference time (seconds of service / rate)
    net::ArenaFifo queue;  // leaves only; packets live in the shared arena
    net::FlowId flow = net::kInvalidFlow;
    Policy policy;  // interior nodes only
  };

  NodeId add_node(NodeId parent, double rate_bps) {
    HFQ_ASSERT(parent < nodes_.size());
    HFQ_ASSERT_MSG(!nodes_[parent].is_leaf, "cannot add child under a leaf");
    HFQ_ASSERT(rate_bps > 0.0);
    const NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.emplace_back();
    Node& n = nodes_[id];
    n.rate = RateBps{rate_bps};
    n.parent = parent;
    n.child_slot = nodes_[parent].children.size();
    nodes_[parent].children.push_back(id);
    nodes_[parent].policy.add_child(n.child_slot, rate_bps);
    return id;
  }

  // Registers node `c`'s new logical head with its parent's policy and
  // refreshes the (s, f) tags. `continuing` selects the Eq. 28 branch.
  void stamp_child(NodeId c, bool continuing) {
    Node& n = nodes_[c];
    Node& p = nodes_[n.parent];
    const VtStamp tags =
        p.policy.on_head(n.child_slot, n.logical.bits(), continuing, p.T);
    n.s = tags.start;
    n.f = tags.finish;
    // The child's new head tags as seen by the parent server; the event's
    // flow field carries the child *node* id (wall timestamp = parent's
    // reference time, Section 4.1).
    HFQ_TRACE_EVENT(
        eligibility_flip(n.parent, c, p.T, VirtualTime{}, n.s, n.f, true));
  }

  // RESTART-NODE(n): select a new head for node `nid` (and cascade upward).
  void restart_node(NodeId nid) {
    Node& n = nodes_[nid];
    HFQ_ASSERT(!n.is_leaf);
    if (n.policy.has_selectable()) {
      const std::size_t slot = n.policy.select(n.T);
      const NodeId child = n.children[slot];
      HFQ_ASSERT(nodes_[child].has_logical);
      n.active_child = child;
      n.logical = nodes_[child].logical;
      n.has_logical = true;
      HFQ_TRACE_EVENT(eligset_op(nid, child, n.T, "select", nodes_[child].f));
      if (!n.busy) {
        HFQ_TRACE_EVENT(busy_start(nid, n.T, VirtualTime{}, 0.0));
      }
      // Line 13: the node's reference time advances by the service this
      // selection commits to.
      n.T += n.logical.bits() / n.rate;
      if (nid != 0) {
        // Lines 7–10: restamp this node as a child of its parent. The
        // continuing branch applies when the node stayed busy.
        stamp_child(nid, /*continuing=*/n.busy);
      }
      n.busy = true;
    } else {
      if (n.busy) {
        HFQ_TRACE_EVENT(busy_end(nid, n.T, VirtualTime{}, 0.0));
      }
      n.active_child = kNoNode;
      n.has_logical = false;
      n.busy = false;
    }
    // Lines 17–18: cascade to the parent if it has not selected a packet.
    if (nid != 0 && !nodes_[n.parent].has_logical) {
      restart_node(n.parent);
    }
  }

  // RESET-PATH(n): the packet at the head of this subtree departed.
  void reset_path(NodeId nid) {
    Node& n = nodes_[nid];
    n.has_logical = false;
    if (n.is_leaf) {
      n.queue.pop(arena_);  // the transmitted packet leaves the real queue
      if (!n.queue.empty()) {
        n.logical = n.queue.front(arena_);
        n.has_logical = true;
        stamp_child(nid, /*continuing=*/true);
      }
      restart_node(n.parent);
    } else {
      const NodeId m = n.active_child;
      HFQ_ASSERT(m != kNoNode);
      n.active_child = kNoNode;
      reset_path(m);
    }
  }

  // --- audit helpers (called from HFQ_AUDIT_CHECK hooks only) -------------

  // Sum of real leaf queues. Matches backlog_ only while no RESET-PATH is
  // pending (the handed-out packet leaves its leaf queue lazily); the
  // dequeue hook runs exactly in that window.
  [[nodiscard]] std::size_t audit_queued_packets() const {
    std::size_t n = 0;
    for (const Node& node : nodes_) {
      if (node.is_leaf) n += node.queue.size();
    }
    return n;
  }

  // Following active_child from the root must reach a leaf whose real head
  // packet is the packet every node on the chain advertises as its logical
  // head.
  [[nodiscard]] bool audit_active_chain() const {
    NodeId id = 0;
    while (!nodes_[id].is_leaf) {
      const Node& n = nodes_[id];
      if (!n.has_logical || n.active_child == kNoNode) return false;
      if (nodes_[n.active_child].logical.id != n.logical.id) return false;
      id = n.active_child;
    }
    const Node& leaf = nodes_[id];
    return leaf.has_logical && !leaf.queue.empty() &&
           leaf.queue.front(arena_).id == leaf.logical.id;
  }

  [[nodiscard]] bool audit_policies() const {
    for (const Node& n : nodes_) {
      if (!n.is_leaf && !n.policy.audit_valid()) return false;
    }
    return true;
  }

  RateBps link_rate_;
  std::size_t backlog_ = 0;
  bool pending_reset_ = false;
  std::uint64_t arrival_counter_ = 0;
  net::PacketArena arena_;  // shared by every leaf FIFO
  std::vector<Node> nodes_;
  std::vector<NodeId> leaf_of_flow_;
};

// The paper's H-WF²Q+ server and the baseline hierarchies.
using HWf2qPlus = HPfq<Wf2qPlusPolicy>;
using HWf2qPlusCal = HPfq<Wf2qPlusCalPolicy>;  // calendar eligible sets
using HWfq = HPfq<GpsSffPolicy>;
using HWf2q = HPfq<GpsSeffPolicy>;
using HScfq = HPfq<ScfqPolicy>;
using HSfq = HPfq<SfqPolicy>;
using HApproxWfq = HPfq<ApproxWfqPolicy>;
using HDrr = HPfq<DrrPolicy>;

}  // namespace hfq::core
