// Per-node scheduling policies for the H-PFQ framework (Section 4).
//
// The framework (core/hpfq.h) runs the paper's ARRIVE / RESTART-NODE /
// RESET-PATH pseudocode; everything policy-specific — the virtual time
// function and the child-selection rule — lives here. A policy manages the
// virtual start/finish tags of its node's *children* (the paper's s_m, f_m
// maintained per logical queue) and answers two questions:
//
//   on_head(...)  — a child's logical queue got a new head packet: stamp it
//                   (Eq. 28/29 against this node's virtual time) and make
//                   the child selectable;
//   select(...)   — pick the next child to serve and perform the node's
//                   virtual-time update for that service.
//
// Provided policies:
//   Wf2qPlusPolicy   — SEFF + Eq. 27 virtual time      → H-WF²Q+  (the paper)
//   Wf2qPlusCalPolicy— same, calendar-backed eligible sets (sched/calendar.h)
//   GpsSffPolicy     — SFF  + exact GPS virtual time   → H-WFQ    (baseline)
//   GpsSeffPolicy    — SEFF + exact GPS virtual time   → H-WF²Q   (baseline)
//   ScfqPolicy       — SFF  + self-clocked V           → H-SCFQ   (baseline)
//   SfqPolicy        — min-start + start-clocked V     → H-SFQ    (extension)
//   ApproxWfqPolicy  — SFF  + Eq. 27 virtual time      → ablation: shows the
//                      pathology is the missing eligibility test, not the
//                      virtual time function
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "sched/calendar.h"
#include "sched/flat_base.h"
#include "sched/gps_virtual_time.h"
#include "util/assert.h"
#include "util/heap.h"

namespace hfq::core {

using units::Bits;
using units::Duration;
using units::RateBps;
using units::VirtualTime;
using units::WallTime;

struct VtStamp {
  VirtualTime start;
  VirtualTime finish;
};

// Shared child bookkeeping: rates, head tags, head sizes, registration.
class NodePolicyBase {
 public:
  void init(double node_rate_bps) {
    HFQ_ASSERT(node_rate_bps > 0.0);
    node_rate_ = RateBps{node_rate_bps};
  }

  void add_child(std::size_t slot, double rate_bps) {
    HFQ_ASSERT(rate_bps > 0.0);
    if (slot >= children_.size()) children_.resize(slot + 1);
    children_[slot].rate = RateBps{rate_bps};
  }

  [[nodiscard]] std::size_t child_count() const noexcept {
    return children_.size();
  }

  // Audit hook: policies with internal heap/tag structure override this to
  // report corruption (statically dispatched through HPfq's policy type).
  [[nodiscard]] bool audit_valid() const { return true; }

 protected:
  struct Child {
    RateBps rate;
    VirtualTime start;
    VirtualTime finish;
    Bits head_bits;
    util::HeapHandle handle = util::kInvalidHeapHandle;
    bool in_eligible = false;
  };

  Child& child(std::size_t slot) {
    HFQ_ASSERT(slot < children_.size());
    return children_[slot];
  }

  // Stamps per Eq. 28/29 against virtual time `v`.
  VtStamp stamp(Child& c, Bits bits, bool continuing, VirtualTime v) {
    VtStamp st;
    st.start = continuing ? c.finish : (c.finish > v ? c.finish : v);
    st.finish = st.start + bits / c.rate;
    c.start = st.start;
    c.finish = st.finish;
    c.head_bits = bits;
    return st;
  }

  RateBps node_rate_;
  std::vector<Child> children_;
};

// SEFF + Eq. 27 — the WF²Q+ node server (the paper's pseudocode, Table 1).
class Wf2qPlusPolicy : public NodePolicyBase {
 public:
  [[nodiscard]] double vtime() const noexcept { return vtime_.v(); }

  VtStamp on_head(std::size_t slot, Bits bits, bool continuing,
                  WallTime /*T_node*/) {
    Child& c = child(slot);
    const VtStamp st = stamp(c, bits, continuing, vtime_);
    if (sched::vt_leq(c.start, vtime_)) {
      c.in_eligible = true;
      c.handle = eligible_.push(c.finish, slot);
    } else {
      c.in_eligible = false;
      c.handle = waiting_.push(c.start, slot);
    }
    return st;
  }

  [[nodiscard]] bool has_selectable() const noexcept {
    return !eligible_.empty() || !waiting_.empty();
  }

  std::size_t select(WallTime /*T_node*/) {
    // Lines 1 and 12 of RESTART-NODE: pick the smallest finish tag among
    // E_n = {m : s_m <= max(V, Smin)}, then V <- max(V, Smin) + L/r_n.
    VirtualTime v_now = vtime_;
    if (eligible_.empty()) {
      HFQ_ASSERT_MSG(!waiting_.empty(), "select with no selectable children");
      if (waiting_.top_key() > v_now) v_now = waiting_.top_key();
    }
    while (!waiting_.empty() && sched::vt_leq(waiting_.top_key(), v_now)) {
      const std::size_t slot = waiting_.pop();
      Child& c = child(slot);
      c.in_eligible = true;
      c.handle = eligible_.push(c.finish, slot);
    }
    HFQ_ASSERT(!eligible_.empty());
    const std::size_t slot = eligible_.pop();
    Child& c = child(slot);
    c.handle = util::kInvalidHeapHandle;
    vtime_ = v_now + c.head_bits / node_rate_;
    maybe_rebase();
    return slot;
  }

  [[nodiscard]] std::uint64_t rebase_count() const noexcept {
    return rebases_;
  }

  // Test/tuning knob: virtual time at which the node rebases its tags.
  void set_rebase_threshold(double seconds) {
    HFQ_ASSERT(seconds > 0.0);
    rebase_threshold_ = VirtualTime{seconds};
  }

  // Structural audit: both heaps ordered, every registered child's tags
  // sane (start <= finish).
  [[nodiscard]] bool audit_valid() const {
    if (!eligible_.validate() || !waiting_.validate()) return false;
    for (const Child& c : children_) {
      if (c.handle != util::kInvalidHeapHandle && c.finish < c.start) {
        return false;
      }
    }
    return true;
  }

 private:
  // A hierarchy node never restarts its clock (there is no idle-detection
  // below the root), so on long-running servers the tags grow without
  // bound and double precision eventually erodes the sub-packet tag
  // differences that ordering depends on. Subtracting a common offset is
  // order-preserving everywhere tags are compared, so it is invisible to
  // the algorithm.
  void maybe_rebase() {
    if (vtime_ < rebase_threshold_) return;
    const Duration off = vtime_ - VirtualTime{};
    vtime_ = VirtualTime{};
    for (Child& c : children_) {
      c.start -= off;
      c.finish -= off;
    }
    eligible_.transform_keys([off](VirtualTime k) { return k - off; });
    waiting_.transform_keys([off](VirtualTime k) { return k - off; });
    ++rebases_;
  }

  VirtualTime vtime_;
  VirtualTime rebase_threshold_{1e9};
  std::uint64_t rebases_ = 0;
  util::HandleHeap<VirtualTime, std::size_t> eligible_;  // keyed by finish tag
  util::HandleHeap<VirtualTime, std::size_t> waiting_;   // keyed by start tag
};

// SEFF + Eq. 27 with calendar-backed eligible sets: the same schedule as
// Wf2qPlusPolicy (the per-insert sequence numbers reproduce HandleHeap's
// push-order tie-break, and sorted buckets pick the exact (tag, seq)
// minimum), but select() finds the minimum with ctz bitmap walks instead of
// heap sifts — so interior nodes at any depth benefit from the PR-8 engine.
// Rebase rebuilds the wheels with the stored sequence numbers, which is
// order-equivalent to HandleHeap::transform_keys (both preserve (key, seq)
// order under a common offset).
class Wf2qPlusCalPolicy : public NodePolicyBase {
 public:
  void set_tuning(const sched::CalendarTuning& t) {
    tuning_ = t;
    cal_ready_ = false;
  }

  [[nodiscard]] double vtime() const noexcept { return vtime_.v(); }

  VtStamp on_head(std::size_t slot, Bits bits, bool continuing,
                  WallTime /*T_node*/) {
    Child& c = child(slot);
    const VtStamp st = stamp(c, bits, continuing, vtime_);
    if (!cal_ready_) {
      build_calendars();
    } else if (queued_.size() < children_.size()) {
      // Children added after the first packet: grow the id arrays. The
      // geometry stays as derived at build time — out-of-window tags ride
      // the overflow list, so this is a perf concern only, not correctness.
      eligible_.ensure_ids(children_.size());
      waiting_.ensure_ids(children_.size());
      queued_.resize(children_.size(), 0);
      seq_of_.resize(children_.size(), 0);
    }
    const auto id = static_cast<std::uint32_t>(slot);
    queued_[slot] = 1;
    seq_of_[slot] = seq_++;
    if (sched::vt_leq(c.start, vtime_)) {
      c.in_eligible = true;
      eligible_.insert(id, c.finish.v(), seq_of_[slot]);
    } else {
      c.in_eligible = false;
      waiting_.insert(id, c.start.v(), seq_of_[slot]);
    }
    return st;
  }

  [[nodiscard]] bool has_selectable() const noexcept {
    return !eligible_.empty() || !waiting_.empty();
  }

  std::size_t select(WallTime /*T_node*/) {
    VirtualTime v_now = vtime_;
    if (eligible_.empty()) {
      HFQ_ASSERT_MSG(!waiting_.empty(), "select with no selectable children");
      const VirtualTime smin{waiting_.peek_min().tag};
      if (smin > v_now) v_now = smin;
    }
    waiting_.drain_leq(
        [v_now](double s) { return sched::vt_leq(VirtualTime{s}, v_now); },
        [this](std::uint32_t id, double, std::uint64_t) {
          Child& c = child(id);
          c.in_eligible = true;
          seq_of_[id] = seq_++;
          eligible_.insert(id, c.finish.v(), seq_of_[id]);
        });
    HFQ_ASSERT(!eligible_.empty());
    const std::size_t slot = eligible_.pop_min();
    Child& c = child(slot);
    queued_[slot] = 0;
    vtime_ = v_now + c.head_bits / node_rate_;
    maybe_rebase();
    return slot;
  }

  [[nodiscard]] std::uint64_t rebase_count() const noexcept {
    return rebases_;
  }

  void set_rebase_threshold(double seconds) {
    HFQ_ASSERT(seconds > 0.0);
    rebase_threshold_ = VirtualTime{seconds};
  }

  [[nodiscard]] bool audit_valid() const {
    if (!eligible_.validate() || !waiting_.validate()) return false;
    std::size_t queued = 0;
    for (std::size_t i = 0; i < children_.size(); ++i) {
      if (i < queued_.size() && queued_[i] != 0) {
        ++queued;
        if (children_[i].finish < children_[i].start) return false;
      }
    }
    return eligible_.size() + waiting_.size() == queued;
  }

 private:
  void build_calendars() {
    double rmin = 0.0;
    for (const Child& c : children_) {
      const double r = c.rate.bps();
      if (r > 0.0 && (rmin == 0.0 || r < rmin)) rmin = r;
    }
    const sched::CalendarGeometry g = sched::derive_geometry(
        children_.size(), rmin > 0.0 ? rmin : 1.0, tuning_);
    sched::CalendarQuant<double> q;
    q.inv_width = 1.0 / g.width_vt;
    eligible_.configure(q, g.log2_buckets, tuning_.approximate);
    waiting_.configure(q, g.log2_buckets, tuning_.approximate);
    eligible_.ensure_ids(children_.size());
    waiting_.ensure_ids(children_.size());
    queued_.assign(children_.size(), 0);
    seq_of_.assign(children_.size(), 0);
    cal_ready_ = true;
  }

  // Same offset-subtraction rebase as Wf2qPlusPolicy; the wheels are
  // rebuilt from the shifted tags with the stored sequence numbers, which
  // preserves the (key, seq) total order exactly.
  void maybe_rebase() {
    if (vtime_ < rebase_threshold_) return;
    const Duration off = vtime_ - VirtualTime{};
    vtime_ = VirtualTime{};
    for (Child& c : children_) {
      c.start -= off;
      c.finish -= off;
    }
    eligible_.clear();
    waiting_.clear();
    for (std::size_t i = 0; i < children_.size(); ++i) {
      if (i >= queued_.size() || queued_[i] == 0) continue;
      const Child& c = children_[i];
      const auto id = static_cast<std::uint32_t>(i);
      if (c.in_eligible) {
        eligible_.insert(id, c.finish.v(), seq_of_[i]);
      } else {
        waiting_.insert(id, c.start.v(), seq_of_[i]);
      }
    }
    ++rebases_;
  }

  VirtualTime vtime_;
  VirtualTime rebase_threshold_{1e9};
  std::uint64_t rebases_ = 0;
  std::uint64_t seq_ = 0;
  bool cal_ready_ = false;
  sched::CalendarTuning tuning_;
  std::vector<std::uint8_t> queued_;
  std::vector<std::uint64_t> seq_of_;
  sched::TagCalendar<double> eligible_;  // keyed by finish tag
  sched::TagCalendar<double> waiting_;   // keyed by start tag
};

// SFF + Eq. 27 virtual time: an ablation showing that replacing the GPS
// virtual time alone does not fix WFQ — the eligibility test does.
class ApproxWfqPolicy : public NodePolicyBase {
 public:
  [[nodiscard]] double vtime() const noexcept { return vtime_.v(); }

  VtStamp on_head(std::size_t slot, Bits bits, bool continuing,
                  WallTime /*T_node*/) {
    Child& c = child(slot);
    const VtStamp st = stamp(c, bits, continuing, vtime_);
    c.handle = heads_.push(c.finish, slot);
    return st;
  }

  [[nodiscard]] bool has_selectable() const noexcept { return !heads_.empty(); }

  std::size_t select(WallTime /*T_node*/) {
    HFQ_ASSERT(!heads_.empty());
    // Smin over selectable children — linear scan is fine here: this policy
    // exists only for ablation benchmarks.
    VirtualTime smin;
    bool first = true;
    for (std::size_t i = 0; i < child_count(); ++i) {
      const Child& c = children_[i];
      if (c.handle == util::kInvalidHeapHandle) continue;
      // Min-reduction over tags, not an eligibility test — exact compare is
      // what "minimum" means. hfq-lint: disable(tag-compare)
      if (first || c.start < smin) {
        smin = c.start;
        first = false;
      }
    }
    VirtualTime v_now = vtime_;
    if (!first && smin > v_now) v_now = smin;
    const std::size_t slot = heads_.pop();
    Child& c = child(slot);
    c.handle = util::kInvalidHeapHandle;
    vtime_ = v_now + c.head_bits / node_rate_;
    return slot;
  }

 private:
  VirtualTime vtime_;
  util::HandleHeap<VirtualTime, std::size_t> heads_;  // finish tag (SFF)
};

// Exact GPS virtual time per node (the node's fluid reference runs in the
// node reference time T_n = W_n(0,t)/r_n — Section 4.1). Base for H-WFQ
// (SFF) and H-WF²Q (SEFF).
template <bool kUseEligibility>
class GpsTrackedPolicy : public NodePolicyBase {
 public:
  void init(double node_rate_bps) {
    NodePolicyBase::init(node_rate_bps);
    vt_.emplace(node_rate_bps);
  }

  void add_child(std::size_t slot, double rate_bps) {
    NodePolicyBase::add_child(slot, rate_bps);
    vt_->add_flow(static_cast<net::FlowId>(slot), rate_bps);
  }

  [[nodiscard]] double vtime() const noexcept { return vt_->vtime(); }

  VtStamp on_head(std::size_t slot, Bits bits, bool /*continuing*/,
                  WallTime T_node) {
    Child& c = child(slot);
    // The logical packet "arrives" at the node now; stamp it in the node's
    // fluid GPS system. This subsumes Eq. 28: while the child stays
    // fluid-backlogged the stamp degenerates to S = F_prev.
    const auto st =
        vt_->on_arrival(T_node, static_cast<net::FlowId>(slot), bits);
    c.start = st.start;
    c.finish = st.finish;
    c.head_bits = bits;
    if constexpr (kUseEligibility) {
      if (sched::vt_leq(c.start, vt_->vnow())) {
        c.in_eligible = true;
        c.handle = eligible_.push(c.finish, slot);
      } else {
        c.in_eligible = false;
        c.handle = waiting_.push(c.start, slot);
      }
    } else {
      c.handle = eligible_.push(c.finish, slot);
    }
    return VtStamp{st.start, st.finish};
  }

  [[nodiscard]] bool has_selectable() const noexcept {
    return !eligible_.empty() || !waiting_.empty();
  }

  std::size_t select(WallTime T_node) {
    vt_->advance_to(T_node);
    if constexpr (kUseEligibility) {
      while (!waiting_.empty() &&
             sched::vt_leq(waiting_.top_key(), vt_->vnow())) {
        const std::size_t slot = waiting_.pop();
        Child& c = child(slot);
        c.in_eligible = true;
        c.handle = eligible_.push(c.finish, slot);
      }
      if (eligible_.empty()) {
        // Floating-point guard: fall back to the smallest start tag.
        HFQ_ASSERT(!waiting_.empty());
        const std::size_t slot = waiting_.pop();
        child(slot).handle = util::kInvalidHeapHandle;
        return slot;
      }
    }
    HFQ_ASSERT(!eligible_.empty());
    const std::size_t slot = eligible_.pop();
    child(slot).handle = util::kInvalidHeapHandle;
    return slot;
  }

  [[nodiscard]] bool audit_valid() const {
    return eligible_.validate() && waiting_.validate();
  }

 private:
  std::optional<sched::GpsVirtualTime> vt_;  // constructed in init()
  util::HandleHeap<VirtualTime, std::size_t> eligible_;  // finish-tag keyed
  util::HandleHeap<VirtualTime, std::size_t> waiting_;   // start-tag keyed
};

using GpsSffPolicy = GpsTrackedPolicy<false>;   // H-WFQ node
using GpsSeffPolicy = GpsTrackedPolicy<true>;   // H-WF²Q node

// Self-clocked (SCFQ) node: V = finish tag of the child in service; SFF.
class ScfqPolicy : public NodePolicyBase {
 public:
  [[nodiscard]] double vtime() const noexcept { return vtime_.v(); }

  VtStamp on_head(std::size_t slot, Bits bits, bool continuing,
                  WallTime /*T_node*/) {
    Child& c = child(slot);
    const VtStamp st = stamp(c, bits, continuing, vtime_);
    c.handle = heads_.push(c.finish, slot);
    return st;
  }

  [[nodiscard]] bool has_selectable() const noexcept { return !heads_.empty(); }

  std::size_t select(WallTime /*T_node*/) {
    HFQ_ASSERT(!heads_.empty());
    const std::size_t slot = heads_.pop();
    Child& c = child(slot);
    c.handle = util::kInvalidHeapHandle;
    vtime_ = c.finish;
    return slot;
  }

 private:
  VirtualTime vtime_;
  util::HandleHeap<VirtualTime, std::size_t> heads_;  // keyed by finish tag
};

// Deficit Round Robin node (→ H-DRR): no virtual times at all — children
// rotate with byte deficits, quantum proportional to their rate. Extension
// baseline showing that a frame-based hierarchy keeps long-run shares but
// has frame-sized WFI at every level.
class DrrPolicy : public NodePolicyBase {
 public:
  // One frame hands each child rate_child/rate_node of `frame_bits`.
  // 16 Kbit default ≈ two 1000-byte packets per full-rate child.
  void set_frame_bits(double bits) {
    HFQ_ASSERT(bits > 0.0);
    frame_bits_ = bits;
  }

  [[nodiscard]] double vtime() const noexcept { return 0.0; }

  VtStamp on_head(std::size_t slot, Bits bits, bool /*continuing*/,
                  WallTime /*T_node*/) {
    Child& c = child(slot);
    c.head_bits = bits;
    if (slot >= state_.size()) state_.resize(slot + 1);
    state_[slot].has_head = true;
    if (!state_[slot].in_list) {
      state_[slot].in_list = true;
      state_[slot].deficit = 0.0;
      state_[slot].visited = false;
      active_.push_back(slot);
    }
    ++selectable_;
    return VtStamp{};  // tags unused by frame-based nodes
  }

  [[nodiscard]] bool has_selectable() const noexcept {
    return selectable_ > 0;
  }

  std::size_t select(WallTime /*T_node*/) {
    HFQ_ASSERT(selectable_ > 0);
    for (;;) {
      HFQ_ASSERT(!active_.empty());
      const std::size_t slot = active_.front();
      DrrState& st = state_[slot];
      if (!st.has_head) {
        // The child drained (it did not re-register after its last
        // service): retire it from the round.
        st.in_list = false;
        st.deficit = 0.0;
        st.visited = false;
        active_.pop_front();
        continue;
      }
      if (!st.visited) {
        st.deficit += quantum(slot);
        st.visited = true;
      }
      if (st.deficit + 1e-9 >= child(slot).head_bits.bits()) {
        st.deficit -= child(slot).head_bits.bits();
        st.has_head = false;  // consumed; re-registered via on_head
        --selectable_;
        return slot;
      }
      st.visited = false;
      active_.pop_front();
      active_.push_back(slot);
    }
  }

 private:
  struct DrrState {
    bool has_head = false;
    bool in_list = false;
    bool visited = false;
    double deficit = 0.0;
  };

  [[nodiscard]] double quantum(std::size_t slot) const {
    return frame_bits_ * children_[slot].rate.bps() / node_rate_.bps();
  }

  double frame_bits_ = 16000.0;
  std::size_t selectable_ = 0;
  std::vector<DrrState> state_;
  std::deque<std::size_t> active_;
};

// Start-time node: V = start tag of the child in service; pick min start.
class SfqPolicy : public NodePolicyBase {
 public:
  [[nodiscard]] double vtime() const noexcept { return vtime_.v(); }

  VtStamp on_head(std::size_t slot, Bits bits, bool continuing,
                  WallTime /*T_node*/) {
    Child& c = child(slot);
    const VtStamp st = stamp(c, bits, continuing, vtime_);
    c.handle = heads_.push(c.start, slot);
    return st;
  }

  [[nodiscard]] bool has_selectable() const noexcept { return !heads_.empty(); }

  std::size_t select(WallTime /*T_node*/) {
    HFQ_ASSERT(!heads_.empty());
    const std::size_t slot = heads_.pop();
    Child& c = child(slot);
    c.handle = util::kInvalidHeapHandle;
    vtime_ = c.start;
    return slot;
  }

 private:
  VirtualTime vtime_;
  util::HandleHeap<VirtualTime, std::size_t> heads_;  // keyed by start tag
};

}  // namespace hfq::core
