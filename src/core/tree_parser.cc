#include "core/tree_parser.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace hfq::core {
namespace {

class Tokenizer {
 public:
  explicit Tokenizer(std::istream& in) {
    std::string line;
    while (std::getline(in, line)) {
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      std::istringstream ls(line);
      std::string tok;
      while (ls >> tok) tokens_.push_back(tok);
    }
  }

  [[nodiscard]] bool done() const noexcept { return pos_ >= tokens_.size(); }

  [[nodiscard]] const std::string& peek() const {
    if (done()) throw std::runtime_error("hierarchy: unexpected end of input");
    return tokens_[pos_];
  }

  std::string next() {
    const std::string t = peek();
    ++pos_;
    return t;
  }

  // Consumes `expected` or throws.
  void expect(const std::string& expected) {
    const std::string t = next();
    if (t != expected) {
      throw std::runtime_error("hierarchy: expected '" + expected +
                               "', got '" + t + "'");
    }
  }

 private:
  std::vector<std::string> tokens_;
  std::size_t pos_ = 0;
};

double parse_rate(const std::string& tok) {
  std::size_t idx = 0;
  double value = 0.0;
  try {
    value = std::stod(tok, &idx);
  } catch (const std::exception&) {
    throw std::runtime_error("hierarchy: bad rate '" + tok + "'");
  }
  double mult = 1.0;
  if (idx < tok.size()) {
    if (idx + 1 != tok.size()) {
      throw std::runtime_error("hierarchy: bad rate suffix in '" + tok + "'");
    }
    switch (tok[idx]) {
      case 'k':
      case 'K':
        mult = 1e3;
        break;
      case 'M':
        mult = 1e6;
        break;
      case 'G':
        mult = 1e9;
        break;
      default:
        throw std::runtime_error("hierarchy: bad rate suffix in '" + tok +
                                 "'");
    }
  }
  if (value <= 0.0) {
    throw std::runtime_error("hierarchy: rate must be positive in '" + tok +
                             "'");
  }
  return value * mult;
}

// Parses `key=value` attributes; returns true if the token matched `key`.
bool parse_attr(const std::string& tok, const std::string& key,
                std::uint64_t& out) {
  if (tok.rfind(key + "=", 0) != 0) return false;
  const std::string v = tok.substr(key.size() + 1);
  try {
    std::size_t idx = 0;
    const auto parsed = std::stoull(v, &idx);
    if (idx != v.size()) throw std::invalid_argument(v);
    out = parsed;
  } catch (const std::exception&) {
    throw std::runtime_error("hierarchy: bad attribute '" + tok + "'");
  }
  return true;
}

void parse_children(Tokenizer& tz, Hierarchy& spec, std::uint32_t parent);

// Parses one node entry (name rate [attrs] [{children}]).
void parse_node(Tokenizer& tz, Hierarchy& spec, std::uint32_t parent) {
  const std::string name = tz.next();
  if (name == "{" || name == "}") {
    throw std::runtime_error("hierarchy: expected node name, got '" + name +
                             "'");
  }
  const double rate = parse_rate(tz.next());
  bool has_flow = false;
  std::uint64_t flow = 0, cap = 0;
  while (!tz.done()) {
    const std::string& t = tz.peek();
    std::uint64_t v = 0;
    if (parse_attr(t, "flow", v)) {
      has_flow = true;
      flow = v;
      tz.next();
    } else if (parse_attr(t, "cap", v)) {
      cap = v;
      tz.next();
    } else {
      break;
    }
  }
  if (!tz.done() && tz.peek() == "{") {
    if (has_flow) {
      throw std::runtime_error("hierarchy: session '" + name +
                               "' cannot have children");
    }
    const auto id = spec.add_class(parent, name, rate);
    tz.expect("{");
    parse_children(tz, spec, id);
    tz.expect("}");
  } else if (has_flow) {
    spec.add_session(parent, name, rate, static_cast<net::FlowId>(flow),
                     static_cast<std::size_t>(cap));
  } else {
    // Childless class: legal (capacity may be attached later).
    spec.add_class(parent, name, rate);
  }
}

void parse_children(Tokenizer& tz, Hierarchy& spec, std::uint32_t parent) {
  while (!tz.done() && tz.peek() != "}") {
    parse_node(tz, spec, parent);
  }
}

}  // namespace

Hierarchy parse_hierarchy(std::istream& in) {
  Tokenizer tz(in);
  tz.expect("link");
  const double link_rate = parse_rate(tz.next());
  Hierarchy spec(link_rate);
  parse_children(tz, spec, 0);
  if (!tz.done()) {
    throw std::runtime_error("hierarchy: trailing token '" + tz.peek() + "'");
  }
  return spec;
}

Hierarchy parse_hierarchy(const std::string& text) {
  std::istringstream in(text);
  return parse_hierarchy(in);
}

Hierarchy parse_hierarchy_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("hierarchy: cannot open " + path);
  return parse_hierarchy(f);
}

namespace {

std::string rate_str(double bps) {
  std::ostringstream os;
  if (bps >= 1e9 && bps == static_cast<double>(static_cast<long long>(bps / 1e9)) * 1e9) {
    os << bps / 1e9 << 'G';
  } else if (bps >= 1e6) {
    os << bps / 1e6 << 'M';
  } else if (bps >= 1e3) {
    os << bps / 1e3 << 'k';
  } else {
    os << bps;
  }
  return os.str();
}

void format_subtree(const Hierarchy& spec, std::uint32_t node, int depth,
                    std::ostringstream& os) {
  // Children of `node`, in insertion order.
  for (std::uint32_t i = 1; i < spec.size(); ++i) {
    if (static_cast<std::uint32_t>(spec.node(i).parent) != node) continue;
    const auto& n = spec.node(i);
    os << std::string(static_cast<std::size_t>(depth) * 2, ' ') << n.name
       << ' ' << rate_str(n.rate_bps);
    if (n.leaf) {
      os << " flow=" << n.flow;
      if (n.capacity_packets != 0) os << " cap=" << n.capacity_packets;
      os << '\n';
    } else {
      os << " {\n";
      format_subtree(spec, i, depth + 1, os);
      os << std::string(static_cast<std::size_t>(depth) * 2, ' ') << "}\n";
    }
  }
}

}  // namespace

std::string format_hierarchy(const Hierarchy& spec) {
  std::ostringstream os;
  os << "link " << rate_str(spec.link_rate()) << '\n';
  format_subtree(spec, 0, 0, os);
  return os.str();
}

}  // namespace hfq::core
