// Textual hierarchy description → core::Hierarchy.
//
// Grammar (whitespace-separated tokens, '#' starts a comment to EOL):
//
//   link <rate>
//   <name> <rate> [flow=<id>] [cap=<packets>] [ { <children...> } ]
//
// Rates accept k/M/G suffixes (powers of ten, bits/sec). A node with a
// flow= attribute is a session leaf; anything else is a link-sharing class.
//
//   link 45M
//   N-2 22.5M {
//     N-1 11.11M {
//       RT-1 9M    flow=0 cap=64
//       BE-1 2.11M flow=1
//     }
//   }
//   B 22.5M flow=2
//
// Parse errors throw std::runtime_error with the offending token.
#pragma once

#include <iosfwd>
#include <string>

#include "core/hierarchy.h"

namespace hfq::core {

[[nodiscard]] Hierarchy parse_hierarchy(std::istream& in);
[[nodiscard]] Hierarchy parse_hierarchy(const std::string& text);
[[nodiscard]] Hierarchy parse_hierarchy_file(const std::string& path);

// Renders a Hierarchy back to the textual format (round-trips through
// parse_hierarchy).
[[nodiscard]] std::string format_hierarchy(const Hierarchy& spec);

}  // namespace hfq::core
