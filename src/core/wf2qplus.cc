// Wf2qPlus is header-only; this TU anchors the library target.
#include "core/wf2qplus.h"
