// WF²Q+ — the paper's core contribution (Section 3.4).
//
// Combines the three properties no earlier PFQ algorithm had together:
//  (a) delay bounds within one packet transmission time of GPS,
//  (b) the smallest possible Worst-case Fair Index
//      (alpha_i = L_i,max + (L_max − L_i,max)·r_i/r, Theorem 4), and
//  (c) O(log N) work per packet.
//
// Two ingredients:
//  * the SEFF policy — among packets whose virtual start time is <= the
//    current virtual time, pick the smallest virtual finish time;
//  * the virtual time function of Eq. 27,
//        V(t+τ) = max(V(t)+τ, min_{i∈B(t)} S_i),
//    evaluated in service time: on each selection of a packet of length L,
//        V ← max(V, Smin) + L/r,
//    which is the form the paper's own pseudocode (Section 4.2) uses and
//    needs no fluid-system tracking.
//
// The eligible set is maintained by one of two engines behind a ctor/compile
// switch (sched/calendar.h, HFQ_ELIGIBLE=heap|calendar): two flat 4-ary
// heaps (sessions whose head has not started in virtual time wait in a
// start-time heap; eligible sessions sit in a finish-time heap; advancing V
// migrates between them, O(log N) per op — the complexity claim measured by
// bench/bench_sched_complexity), or two hierarchical-bitmap calendar wheels
// over the same (tag, arrival_no) keys with O(1) ctz-based find-min. The
// calendar's sorted-bucket default reproduces the heap schedule bit for bit
// (fuzzed per seed); its approximate mode trades a <= one-bucket WFI
// penalty for unsorted O(1) inserts.
//
// Datapath (million-flow rewrite; see DESIGN.md "Datapath"): queued packets
// live in a flat arena with the per-flow FIFO threaded through the slots and
// the arrival sequence number stored in the slot itself; per-flow state is
// split into flat arrays (sched/soa_base.h) plus the packed tag record
// below. The arithmetic is bit-for-bit the deque-era implementation's —
// audit::Wf2qPlusLegacy preserves that implementation and fuzz_sched_diff
// proves schedule equivalence (identical dequeue order AND times) on every
// seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sched/calendar.h"
#include "sched/soa_base.h"

namespace hfq::core {

using net::FlowId;
using net::Packet;
using net::Time;
using units::Bits;
using units::Duration;
using units::RateBps;
using units::VirtualTime;
using units::WallTime;

class Wf2qPlus : public sched::SoaSchedulerBase {
 public:
  explicit Wf2qPlus(double link_rate_bps,
                    sched::EligEngine engine = sched::default_elig_engine(),
                    sched::CalendarTuning tuning = {})
      : link_rate_(RateBps{link_rate_bps}),
        use_calendar_(engine == sched::EligEngine::kCalendar),
        cal_tuning_(tuning) {
    HFQ_ASSERT(link_rate_bps > 0.0);
  }

  void add_flow(FlowId id, double rate_bps,
                std::size_t capacity_packets = 0) override {
    SoaSchedulerBase::add_flow(id, rate_bps, capacity_packets);
    if (id >= tags_.size()) tags_.resize(static_cast<std::size_t>(id) + 1);
    tags_[id].rate = RateBps{rate_bps};
    if (use_calendar_) {
      cal_eligible_.ensure_ids(meta_.size());
      cal_waiting_.ensure_ids(meta_.size());
    }
  }

  // Pre-sizes every flow-indexed array plus the packet arena.
  void reserve(std::size_t flows, std::size_t packets) {
    SoaSchedulerBase::reserve(flows, packets);
    tags_.reserve(flows);
    eligible_.reserve(flows);
    waiting_.reserve(flows);
  }

  bool enqueue(const Packet& p, Time now) override {
    // Eager busy-period boundary detection: if the scheduler drained and the
    // link finished its last transmission strictly before this arrival, the
    // busy period is over even if the link never polled dequeue() again.
    // Without this, a drained-but-unpolled scheduler leaks stale vtime_ and
    // finish tags into the new busy period and inflates start tags.
    if (backlog_ == 0 && !sched::wt_leq(WallTime{now}, busy_until_)) {
      HFQ_TRACE_EVENT(busy_start(obs::kFlatNode, WallTime{now}, vtime_,
                                 static_cast<double>(epoch_)));
      vtime_ = VirtualTime{};
      ++epoch_;
    }
    return enqueue_one(p, now);
  }

  // Burst arrival: every packet in `packets` arrives at the instant `now`.
  // The busy-period boundary check is hoisted out of the loop — after the
  // first accepted packet backlog_ > 0 makes the per-packet check a no-op,
  // and repeated evaluations at one instant are idempotent on the schedule
  // (only the internal epoch counter, which is compared for equality, could
  // tick differently across an all-drop prefix), so one up-front check is
  // exactly equivalent to the per-packet loop.
  std::size_t enqueue_burst(const std::vector<Packet>& packets,
                            Time now) override {
    if (packets.empty()) return 0;
    if (backlog_ == 0 && !sched::wt_leq(WallTime{now}, busy_until_)) {
      HFQ_TRACE_EVENT(busy_start(obs::kFlatNode, WallTime{now}, vtime_,
                                 static_cast<double>(epoch_)));
      vtime_ = VirtualTime{};
      ++epoch_;
    }
    std::size_t accepted = 0;
    for (const Packet& p : packets) {
      if (enqueue_one(p, now)) ++accepted;
    }
    return accepted;
  }

  std::optional<Packet> dequeue(Time now) override { return dequeue_one(now); }

  // Burst service: back-to-back transmissions on a link of `rate_bps`
  // starting at `now`, stopping before a packet whose start would reach
  // `horizon` (the caller's next arrival). Same per-packet selection and
  // Eq.-27 updates as N dequeue() calls — the loop only strips the
  // per-packet virtual dispatch and re-entry overhead; fuzz_sched_diff's
  // burst-equivalence check holds it to the per-packet schedule exactly.
  std::size_t dequeue_burst(std::vector<Packet>& out, std::size_t max_packets,
                            Time now, double rate_bps,
                            Time horizon) override {
    std::size_t n = 0;
    Time t = now;
    while (n < max_packets) {
      if (n > 0 && !(t < horizon)) break;
      std::optional<Packet> p = dequeue_one(t);
      if (!p.has_value()) break;
      t += p->size_bits() / rate_bps;
      out.push_back(*p);
      ++n;
    }
    return n;
  }

  // --- Live reconfiguration (net::Scheduler overrides) ----------------------
  //
  // The serve control plane applies a batch of live_* edits between two
  // scheduling decisions, then commit_live_edits() makes them visible. An
  // edit that touches a backlogged session invalidates heap keys (the finish
  // tag is a function of the rate; removal orphans a heap entry), and
  // InlineHeap deliberately has no erase — so commit rebuilds both heaps
  // from the surviving head tags. VtKey carries the head arrival number, so
  // the rebuild reproduces the exact FIFO tie-break order of the original
  // inserts; cost is O(backlogged flows), independent of table size.

  [[nodiscard]] bool supports_live_edits() const override { return true; }

  bool live_add_flow(FlowId id, double rate_bps,
                     std::size_t capacity_packets) override {
    if (!net::flow_id_in_bounds(id) || known_flow(id) || !(rate_bps > 0.0) ||
        capacity_packets >= UINT32_MAX) {
      return false;
    }
    add_flow(id, rate_bps, capacity_packets);
    return true;
  }

  bool live_set_rate(FlowId id, double rate_bps) override {
    if (!known_flow(id) || !(rate_bps > 0.0)) return false;
    rate_[id] = RateBps{rate_bps};
    Tag& t = tags_[id];
    t.rate = RateBps{rate_bps};
    if (!fifo_[id].empty() && t.epoch == epoch_) {
      // Eq. 29 re-stamp at the new rate. The start tag is the virtual
      // instant the head's service became due — history the edit does not
      // rewrite — so only the finish tag moves; packets behind the head are
      // stamped at the new rate when they reach it, as usual.
      t.finish = t.start + fifo_[id].front(arena_).bits() / t.rate;
      needs_rebuild_ = true;
    }
    return true;
  }

  bool live_remove_flow(FlowId id, std::uint64_t* dropped) override {
    if (!known_flow(id)) return false;
    net::ArenaFifo& q = fifo_[id];
    const bool was_backlogged = !q.empty();
    std::uint64_t n = 0;
    while (!q.empty()) {
      q.pop(arena_);
      ++n;
    }
    backlog_ -= static_cast<std::size_t>(n);
    if (dropped != nullptr) *dropped += n;
    meta_[id] = Meta{};
    fifo_[id] = net::ArenaFifo{};
    tags_[id] = Tag{};
    if (was_backlogged) needs_rebuild_ = true;
    return true;
  }

  void commit_live_edits() override {
    if (!needs_rebuild_) return;
    rebuild_eligible_sets();
    needs_rebuild_ = false;
  }

  // Post-splice audit: every virtual-time invariant a batch of live edits
  // could have broken, checkable from outside a scheduling decision.
  [[nodiscard]] bool validate_splice(std::string* why) override {
    const auto fail = [why](std::string msg) {
      if (why != nullptr) *why = std::move(msg);
      return false;
    };
    if (needs_rebuild_) {
      return fail("validate_splice called before commit_live_edits");
    }
    if (audit_queued_packets() != backlog_) {
      return fail("backlog counter diverged from per-flow queue sizes");
    }
    std::size_t backlogged = 0;
    for (std::size_t i = 0; i < meta_.size(); ++i) {
      const FlowId id = static_cast<FlowId>(i);
      if (!known_flow(id)) {
        if (!fifo_[i].empty()) {
          return fail("unregistered flow " + std::to_string(id) +
                      " still holds packets");
        }
        continue;
      }
      if (fifo_[i].empty()) continue;
      ++backlogged;
      const Tag& t = tags_[i];
      if (!std::isfinite(t.start.v()) || !std::isfinite(t.finish.v())) {
        return fail("flow " + std::to_string(id) + ": non-finite tag");
      }
      if (!(t.start < t.finish)) {
        return fail("flow " + std::to_string(id) + ": start >= finish");
      }
      if (t.epoch > epoch_) {
        return fail("flow " + std::to_string(id) +
                    ": tag epoch from the future");
      }
    }
    if (eligible_set_size() != backlogged) {
      return fail("eligible-set membership (" +
                  std::to_string(eligible_set_size()) +
                  ") != backlogged flow count (" + std::to_string(backlogged) +
                  ")");
    }
    if (!eligible_sets_valid()) {
      return fail("eligible/waiting set order corrupted");
    }
    return true;
  }

  // Which eligible-set engine this instance runs (test/bench introspection).
  [[nodiscard]] bool uses_calendar() const noexcept { return use_calendar_; }
  [[nodiscard]] const sched::CalendarStats& calendar_stats() const noexcept {
    return cal_eligible_.stats();
  }

  [[nodiscard]] double vtime() const noexcept { return vtime_.v(); }

  // Head tags, exposed for tests.
  [[nodiscard]] double head_start(FlowId id) const {
    return tags_[id].start.v();
  }
  [[nodiscard]] double head_finish(FlowId id) const {
    return tags_[id].finish.v();
  }

  // Test hooks for the arrival-counter saturation contract (FIFO tie-break
  // bookkeeping; see the comment at arrival_counter_).
  void set_arrival_counter_for_test(std::uint64_t v) noexcept {
    arrival_counter_ = v;
  }
  [[nodiscard]] std::uint64_t arrival_counter_for_test() const noexcept {
    return arrival_counter_;
  }

 private:
  // Per-flow tag record, packed so a stamp touches one 32-byte half-line:
  // the guaranteed rate (duplicated from the base array for locality),
  // Eq. 28/29 start/finish tags of the head packet, and the busy-period
  // epoch the tags were stamped in.
  struct Tag {
    RateBps rate;
    VirtualTime start;
    VirtualTime finish;
    std::uint64_t epoch = 0;
  };
  static_assert(sizeof(Tag) == 32, "Tag must stay half a cache line");

  // Shared body of enqueue()/enqueue_burst(): everything except the eager
  // busy-boundary check.
  bool enqueue_one(const Packet& p, Time now) {
    if (!accept_flow(p.flow)) {
      trace_drop(p.flow, p, now);
      return false;
    }
    net::ArenaFifo& q = fifo_[p.flow];
    if (!q.push(arena_, p, arrival_counter_)) {
      trace_drop(p.flow, p, now);
      return false;
    }
    // The arrival number feeds VtKey tie-breaks (FIFO service for equal
    // tags). Saturate instead of wrapping: a wrapped counter would make the
    // newest packet in a tie win over every older one — the PR-1 bug class
    // reintroduced silently after 2^64 packets. Saturation degrades ties to
    // heap-insertion order only at the (unreachable in practice) ceiling,
    // and tests/test_datapath.cc pins the behavior.
    if (arrival_counter_ != UINT64_MAX) ++arrival_counter_;
    ++backlog_;
    if (q.size() == 1) {
      // Eq. 28, empty-queue branch: S = max(F_i, V). Tags from a previous
      // busy period are dropped via the epoch counter (V restarts at 0 each
      // busy period, matching the definition of the virtual time function).
      Tag& t = tags_[p.flow];
      const VirtualTime f_prev = t.epoch == epoch_ ? t.finish : VirtualTime{};
      t.start = f_prev > vtime_ ? f_prev : vtime_;
      t.finish = t.start + p.bits() / t.rate;  // Eq. 29
      t.epoch = epoch_;
      HFQ_AUDIT_CHECK("tag-sanity", t.start < t.finish,
                      "enqueue stamped start >= finish");
      insert_by_eligibility(p.flow, now);
    }
    trace_enqueue(p.flow, p, now, vtime_);
    return true;
  }

  // Shared body of dequeue()/dequeue_burst(); non-virtual so the burst loop
  // inlines it.
  std::optional<Packet> dequeue_one(Time now) {
    if (backlog_ == 0) {
      // The link polls once more after the final transmission completes;
      // only then is the busy period really over (a packet handed out by
      // the previous dequeue was still in service until now). Restart the
      // virtual clock lazily via the epoch counter. (The eager check in
      // enqueue() covers drivers that skip this idle poll.)
      HFQ_TRACE_EVENT(busy_end(obs::kFlatNode, WallTime{now}, vtime_,
                               static_cast<double>(epoch_)));
      vtime_ = VirtualTime{};
      ++epoch_;
      return std::nullopt;
    }
    // Eq. 27 in service time: V_now = max(V, Smin). If any session is
    // eligible its start is <= V already, so the max only matters when the
    // eligible set is empty. All eligible-set operations go through the
    // engine dispatch helpers below — never a direct heap sift in this body
    // (lint rule sift-in-hot-loop).
    VirtualTime v_now = vtime_;
    if (eligible_set_empty()) {
      HFQ_ASSERT_MSG(eligible_set_size() != 0,
                     "backlog without any head tags");
      const VirtualTime smin = waiting_smin();
      if (smin > v_now) v_now = smin;
    }
    migrate_eligible(v_now, now);
    HFQ_ASSERT_MSG(!eligible_set_empty(),
                   "SEFF must always find an eligible session");
    const FlowId id = pop_min_eligible();
    Tag& t = tags_[id];
    HFQ_TRACE_EVENT(
        eligset_op(obs::kFlatNode, id, WallTime{now}, "select", t.finish));
    HFQ_AUDIT_CHECK("seff-eligibility", sched::vt_leq(t.start, v_now),
                    "served a session whose start tag " +
                        std::to_string(t.start.v()) + " exceeds V " +
                        std::to_string(v_now.v()));
    HFQ_AUDIT_CHECK("vtime-monotonic", v_now >= vtime_,
                    "virtual time moved backwards within a busy period");
    HFQ_AUDIT_CHECK("tag-epoch", t.epoch == epoch_,
                    "served a session carrying tags from a previous epoch");
    net::ArenaFifo& q = fifo_[id];
    Packet p = q.pop(arena_);
    --backlog_;
    const Duration service_time = p.bits() / link_rate_;
    HFQ_TRACE_EVENT(vtime_update(obs::kFlatNode, WallTime{now}, vtime_,
                                 v_now + service_time));
    vtime_ = v_now + service_time;
    // The transmission this selection commits to occupies the link until
    // now + L/r; the busy period cannot end before then.
    const WallTime tx_end = WallTime{now} + service_time;
    if (tx_end > busy_until_) busy_until_ = tx_end;
    if (!q.empty()) {
      // Eq. 28, non-empty branch: the next packet arrived while the queue
      // was backlogged, so S = F.
      t.start = t.finish;
      t.finish = t.start + q.front(arena_).bits() / t.rate;
      insert_by_eligibility(id, now);
    }
    HFQ_AUDIT_CHECK("eligset-valid", eligible_sets_valid(),
                    "eligible/waiting set order corrupted");
    HFQ_AUDIT_CHECK("backlog-conservation",
                    audit_queued_packets() == backlog_,
                    "backlog counter diverged from per-flow queue sizes");
    trace_dequeue(id, p, now, vtime_);
    return p;
  }

  // --- Eligible-set engine dispatch -----------------------------------------
  //
  // Heap engine: the PR-5 InlineHeaps keyed by (tag, arrival_no).
  // Calendar engine: TagCalendar over the same keys (sched/calendar.h) —
  // sorted buckets by default, so pop order is bit-identical to the heaps
  // (fuzzed per seed in audit::run_checks). The use_calendar_ branch is
  // set once at construction and perfectly predicted.

  [[nodiscard]] bool eligible_set_empty() const {
    return use_calendar_ ? cal_eligible_.empty() : eligible_.empty();
  }
  [[nodiscard]] std::size_t eligible_set_size() const {
    return use_calendar_ ? cal_eligible_.size() + cal_waiting_.size()
                         : eligible_.size() + waiting_.size();
  }
  [[nodiscard]] bool eligible_sets_valid() {
    return use_calendar_ ? cal_eligible_.validate() && cal_waiting_.validate()
                         : eligible_.validate() && waiting_.validate();
  }
  [[nodiscard]] VirtualTime waiting_smin() {
    if (use_calendar_) {
      HFQ_ASSERT(!cal_waiting_.empty());
      return VirtualTime{cal_waiting_.peek_min().tag};
    }
    HFQ_ASSERT(!waiting_.empty());
    return waiting_.top_key().tag;
  }
  [[nodiscard]] FlowId pop_min_eligible() {
    if (use_calendar_) return static_cast<FlowId>(cal_eligible_.pop_min());
    return eligible_.pop();
  }

  // Derives the calendar geometry from the registered flows and builds both
  // wheels; deferred to the first insert so every add_flow (and the minimum
  // rate) is known. Rebuilds re-derive by resetting cal_ready_.
  void build_calendars() {
    double rmin = 0.0;
    std::size_t flows = 0;
    for (std::size_t i = 0; i < meta_.size(); ++i) {
      if (meta_[i].registered == 0) continue;
      ++flows;
      const double r = rate_[i].bps();
      if (rmin == 0.0 || r < rmin) rmin = r;
    }
    const sched::CalendarGeometry g =
        sched::derive_geometry(flows, rmin > 0.0 ? rmin : 1.0, cal_tuning_);
    sched::CalendarQuant<double> q;
    q.inv_width = 1.0 / g.width_vt;
    cal_eligible_.configure(q, g.log2_buckets, cal_tuning_.approximate);
    cal_waiting_.configure(q, g.log2_buckets, cal_tuning_.approximate);
    cal_eligible_.ensure_ids(meta_.size());
    cal_waiting_.ensure_ids(meta_.size());
    cal_ready_ = true;
  }

  void insert_by_eligibility(FlowId id, Time now) {
    Tag& t = tags_[id];
    Meta& m = meta_[id];
    const std::uint64_t no = fifo_[id].front_arrival_no(arena_);
    if (use_calendar_ && !cal_ready_) build_calendars();
    if (sched::vt_leq(t.start, vtime_)) {
      m.in_eligible = 1;
      if (use_calendar_) {
        cal_eligible_.insert(id, t.finish.v(), no);
      } else {
        eligible_.push(sched::VtKey{t.finish, no}, id);
      }
    } else {
      m.in_eligible = 0;
      if (use_calendar_) {
        cal_waiting_.insert(id, t.start.v(), no);
      } else {
        waiting_.push(sched::VtKey{t.start, no}, id);
      }
    }
    trace_flip(id, now, vtime_, t.start, t.finish, m.in_eligible != 0);
  }

  // Rebuilds both eligible sets from scratch after a live-edit batch
  // invalidated keys. Classification (eligible vs waiting) and tie-break
  // order are exactly what a fresh sequence of insert_by_eligibility calls
  // produces, because the keys are pure functions of the surviving tags and
  // head arrival numbers. The calendar additionally re-derives its geometry
  // (an edit may have changed the minimum rate or flow count). The
  // wall-clock argument only feeds trace timestamps.
  void rebuild_eligible_sets() {
    eligible_.clear();
    waiting_.clear();
    if (use_calendar_) {
      cal_eligible_.clear();
      cal_waiting_.clear();
      cal_ready_ = false;  // re-derive geometry + configure on next insert
    }
    for (std::size_t i = 0; i < meta_.size(); ++i) {
      const FlowId id = static_cast<FlowId>(i);
      if (meta_[i].registered == 0 || fifo_[i].empty()) continue;
      insert_by_eligibility(id, Time{0});
    }
  }

  void migrate_eligible(VirtualTime v_now, Time now) {
    if (use_calendar_) {
      cal_waiting_.drain_leq(
          [v_now](double s) {
            return sched::vt_leq(VirtualTime{s}, v_now);
          },
          [this, v_now, now](std::uint32_t id, double, std::uint64_t no) {
            Tag& t = tags_[id];
            meta_[id].in_eligible = 1;
            cal_eligible_.insert(id, t.finish.v(), no);
            const auto fid = static_cast<FlowId>(id);
            trace_flip(fid, now, v_now, t.start, t.finish, true);
          });
      return;
    }
    while (!waiting_.empty() && sched::vt_leq(waiting_.top_key().tag, v_now)) {
      const FlowId id = waiting_.pop();
      Tag& t = tags_[id];
      meta_[id].in_eligible = 1;
      eligible_.push(
          sched::VtKey{t.finish, fifo_[id].front_arrival_no(arena_)}, id);
      trace_flip(id, now, v_now, t.start, t.finish, true);
    }
  }

  RateBps link_rate_;
  VirtualTime vtime_;
  // Real time at which the transmission committed by the latest dequeue
  // completes; an arrival into an empty scheduler after this instant starts
  // a new busy period.
  WallTime busy_until_;
  std::uint64_t epoch_ = 1;
  // Global FIFO sequence for tie-breaks; saturating (see enqueue_one).
  std::uint64_t arrival_counter_ = 0;
  // Set by live_* edits that invalidated heap keys; cleared by
  // commit_live_edits() after the rebuild.
  bool needs_rebuild_ = false;
  std::vector<Tag> tags_;
  // Heap engine — InlineHeap, not HandleHeap: the datapath never cancels
  // below the root, and dropping the handle table removes one random store
  // per slot moved in a sift — the difference between ~2.5x and ~4x at N=1M.
  util::InlineHeap<sched::VtKey, FlowId> eligible_;  // keyed by virtual finish
  util::InlineHeap<sched::VtKey, FlowId> waiting_;   // keyed by virtual start
  // Calendar engine — hierarchical-bitmap wheels over the same keys.
  bool use_calendar_ = false;
  bool cal_ready_ = false;
  sched::CalendarTuning cal_tuning_;
  sched::TagCalendar<double> cal_eligible_;
  sched::TagCalendar<double> cal_waiting_;
};

}  // namespace hfq::core
