// WF²Q+ — the paper's core contribution (Section 3.4).
//
// Combines the three properties no earlier PFQ algorithm had together:
//  (a) delay bounds within one packet transmission time of GPS,
//  (b) the smallest possible Worst-case Fair Index
//      (alpha_i = L_i,max + (L_max − L_i,max)·r_i/r, Theorem 4), and
//  (c) O(log N) work per packet.
//
// Two ingredients:
//  * the SEFF policy — among packets whose virtual start time is <= the
//    current virtual time, pick the smallest virtual finish time;
//  * the virtual time function of Eq. 27,
//        V(t+τ) = max(V(t)+τ, min_{i∈B(t)} S_i),
//    evaluated in service time: on each selection of a packet of length L,
//        V ← max(V, Smin) + L/r,
//    which is the form the paper's own pseudocode (Section 4.2) uses and
//    needs no fluid-system tracking.
//
// The eligible set is maintained with two handle-based heaps: sessions whose
// head has not started in virtual time wait in a start-time heap; eligible
// sessions sit in a finish-time heap. Advancing V migrates sessions between
// them, so every operation is O(log N) — the complexity claim measured by
// bench/bench_sched_complexity.
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "sched/flat_base.h"

namespace hfq::core {

using net::FlowId;
using net::Packet;
using net::Time;
using units::Bits;
using units::Duration;
using units::RateBps;
using units::VirtualTime;
using units::WallTime;

class Wf2qPlus : public sched::FlatSchedulerBase {
 public:
  explicit Wf2qPlus(double link_rate_bps)
      : link_rate_(RateBps{link_rate_bps}) {
    HFQ_ASSERT(link_rate_bps > 0.0);
  }

  bool enqueue(const Packet& p, Time now) override {
    // Eager busy-period boundary detection: if the scheduler drained and the
    // link finished its last transmission strictly before this arrival, the
    // busy period is over even if the link never polled dequeue() again.
    // Without this, a drained-but-unpolled scheduler leaks stale vtime_ and
    // finish tags into the new busy period and inflates start tags.
    if (backlog_ == 0 && !sched::wt_leq(WallTime{now}, busy_until_)) {
      HFQ_TRACE_EVENT(busy_start(obs::kFlatNode, WallTime{now}, vtime_,
                                 static_cast<double>(epoch_)));
      vtime_ = VirtualTime{};
      ++epoch_;
    }
    FlowState& f = flow(p.flow);
    if (!f.queue.push(p)) {
      trace_drop(p.flow, p, now);
      return false;
    }
    if (p.flow >= arrival_nos_.size()) arrival_nos_.resize(p.flow + 1);
    arrival_nos_[p.flow].push_back(arrival_counter_++);
    ++backlog_;
    if (f.queue.size() == 1) {
      // Eq. 28, empty-queue branch: S = max(F_i, V). Tags from a previous
      // busy period are dropped via the epoch counter (V restarts at 0 each
      // busy period, matching the definition of the virtual time function).
      const VirtualTime f_prev =
          f.epoch == epoch_ ? f.finish : VirtualTime{};
      f.start = f_prev > vtime_ ? f_prev : vtime_;
      f.finish = f.start + p.bits() / f.rate;  // Eq. 29
      f.epoch = epoch_;
      HFQ_AUDIT_CHECK("tag-sanity", f.start < f.finish,
                      "enqueue stamped start >= finish");
      insert_by_eligibility(p.flow, now);
    }
    trace_enqueue(p.flow, p, now, vtime_);
    return true;
  }

  std::optional<Packet> dequeue(Time now) override {
    if (backlog_ == 0) {
      // The link polls once more after the final transmission completes;
      // only then is the busy period really over (a packet handed out by
      // the previous dequeue was still in service until now). Restart the
      // virtual clock lazily via the epoch counter. (The eager check in
      // enqueue() covers drivers that skip this idle poll.)
      HFQ_TRACE_EVENT(busy_end(obs::kFlatNode, WallTime{now}, vtime_,
                               static_cast<double>(epoch_)));
      vtime_ = VirtualTime{};
      ++epoch_;
      return std::nullopt;
    }
    // Eq. 27 in service time: V_now = max(V, Smin). If any session is
    // eligible its start is <= V already, so the max only matters when the
    // eligible heap is empty.
    VirtualTime v_now = vtime_;
    if (eligible_.empty()) {
      HFQ_ASSERT_MSG(!waiting_.empty(), "backlog without any head tags");
      const VirtualTime smin = waiting_.top_key().tag;
      if (smin > v_now) v_now = smin;
    }
    migrate_eligible(v_now, now);
    HFQ_ASSERT_MSG(!eligible_.empty(),
                   "SEFF must always find an eligible session");
    const FlowId id = eligible_.pop();
    FlowState& f = flow(id);
    HFQ_TRACE_EVENT(
        heap_op(obs::kFlatNode, id, WallTime{now}, "select", f.finish));
    HFQ_AUDIT_CHECK("seff-eligibility", sched::vt_leq(f.start, v_now),
                    "served a session whose start tag " +
                        std::to_string(f.start.v()) + " exceeds V " +
                        std::to_string(v_now.v()));
    HFQ_AUDIT_CHECK("vtime-monotonic", v_now >= vtime_,
                    "virtual time moved backwards within a busy period");
    HFQ_AUDIT_CHECK("tag-epoch", f.epoch == epoch_,
                    "served a session carrying tags from a previous epoch");
    f.handle = util::kInvalidHeapHandle;
    Packet p = f.queue.pop();
    arrival_nos_[id].pop_front();
    --backlog_;
    const Duration service_time = p.bits() / link_rate_;
    HFQ_TRACE_EVENT(vtime_update(obs::kFlatNode, WallTime{now}, vtime_,
                                 v_now + service_time));
    vtime_ = v_now + service_time;
    // The transmission this selection commits to occupies the link until
    // now + L/r; the busy period cannot end before then.
    const WallTime tx_end = WallTime{now} + service_time;
    if (tx_end > busy_until_) busy_until_ = tx_end;
    if (!f.queue.empty()) {
      // Eq. 28, non-empty branch: the next packet arrived while the queue
      // was backlogged, so S = F.
      f.start = f.finish;
      f.finish = f.start + f.queue.front().bits() / f.rate;
      insert_by_eligibility(id, now);
    }
    HFQ_AUDIT_CHECK("heap-valid", eligible_.validate() && waiting_.validate(),
                    "eligible/waiting heap order corrupted");
    HFQ_AUDIT_CHECK("backlog-conservation",
                    audit_queued_packets() == backlog_,
                    "backlog counter diverged from per-flow queue sizes");
    trace_dequeue(id, p, now, vtime_);
    return p;
  }

  [[nodiscard]] double vtime() const noexcept { return vtime_.v(); }

  // Head tags, exposed for tests.
  [[nodiscard]] double head_start(FlowId id) const {
    return flow(id).start.v();
  }
  [[nodiscard]] double head_finish(FlowId id) const {
    return flow(id).finish.v();
  }

 private:
  void insert_by_eligibility(FlowId id, Time now) {
    FlowState& f = flow(id);
    const std::uint64_t no = arrival_nos_[id].front();
    if (sched::vt_leq(f.start, vtime_)) {
      f.in_eligible = true;
      f.handle = eligible_.push(sched::VtKey{f.finish, no}, id);
    } else {
      f.in_eligible = false;
      f.handle = waiting_.push(sched::VtKey{f.start, no}, id);
    }
    trace_flip(id, now, vtime_, f.in_eligible);
  }

  void migrate_eligible(VirtualTime v_now, Time now) {
    while (!waiting_.empty() && sched::vt_leq(waiting_.top_key().tag, v_now)) {
      const FlowId id = waiting_.pop();
      FlowState& f = flow(id);
      f.in_eligible = true;
      f.handle =
          eligible_.push(sched::VtKey{f.finish, arrival_nos_[id].front()}, id);
      trace_flip(id, now, v_now, true);
    }
  }

  RateBps link_rate_;
  VirtualTime vtime_;
  // Real time at which the transmission committed by the latest dequeue
  // completes; an arrival into an empty scheduler after this instant starts
  // a new busy period.
  WallTime busy_until_;
  std::uint64_t epoch_ = 1;
  std::uint64_t arrival_counter_ = 0;
  std::vector<std::deque<std::uint64_t>> arrival_nos_;
  util::HandleHeap<sched::VtKey, FlowId> eligible_;  // keyed by virtual finish
  util::HandleHeap<sched::VtKey, FlowId> waiting_;   // keyed by virtual start
};

}  // namespace hfq::core
