// Wf2qPlusFixed is header-only; this TU anchors the library target.
#include "core/wf2qplus_fixed.h"
