// WF²Q+ in pure integer (fixed-point) arithmetic — the form a hardware or
// kernel datapath would implement.
//
// The paper positions WF²Q+ for high-speed switches (its O(log N) argument
// targets ATM-era hardware); a floating-point virtual clock is a liability
// there. This variant keeps every tag in integer "virtual ticks"
// (2^-20 s), uses only add/compare/divide, and relies on the busy-period
// epoch reset to keep magnitudes small (a uint64 tick counter would take
// half a million years of continuous virtual time to wrap).
//
// Finish increments round UP so a session can never be credited more
// service than it is entitled to; the discrepancy versus the double
// implementation is below one tick per packet and the scheduling
// properties (WFI <= Lmax, delay bounds) are preserved — tested in
// tests/test_fixed.cc.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "sched/flat_base.h"

namespace hfq::core {

class Wf2qPlusFixed : public sched::FlatSchedulerBase {
 public:
  // Virtual time resolution: 2^-20 seconds per tick.
  static constexpr int kTickShift = 20;

  explicit Wf2qPlusFixed(std::uint64_t link_rate_bps)
      : link_rate_(link_rate_bps) {
    HFQ_ASSERT(link_rate_bps > 0);
  }

  // Integer rates only (bits/sec).
  void add_flow(net::FlowId id, double rate_bps,
                std::size_t capacity_packets = 0) override {
    HFQ_ASSERT_MSG(rate_bps >= 1.0, "fixed-point flows need >= 1 bps");
    FlatSchedulerBase::add_flow(id, rate_bps, capacity_packets);
    if (id >= fx_.size()) fx_.resize(id + 1);
    fx_[id].rate = static_cast<std::uint64_t>(rate_bps);
  }

  bool enqueue(const net::Packet& p, net::Time /*now*/) override {
    FlowState& f = flow(p.flow);
    if (!f.queue.push(p)) return false;
    ++backlog_;
    if (f.queue.size() == 1) {
      Fx& x = fx_[p.flow];
      const std::uint64_t f_prev = x.epoch == epoch_ ? x.finish : 0;
      x.start = f_prev > vtime_ ? f_prev : vtime_;
      x.finish = x.start + finish_increment(p.size_bits(), x.rate);
      x.epoch = epoch_;
      insert_by_eligibility(p.flow);
    }
    return true;
  }

  std::optional<net::Packet> dequeue(net::Time /*now*/) override {
    if (backlog_ == 0) {
      vtime_ = 0;
      ++epoch_;
      return std::nullopt;
    }
    std::uint64_t v_now = vtime_;
    if (eligible_.empty()) {
      HFQ_ASSERT(!waiting_.empty());
      const std::uint64_t smin = waiting_.top_key();
      if (smin > v_now) v_now = smin;
    }
    while (!waiting_.empty() && waiting_.top_key() <= v_now) {
      const net::FlowId id = waiting_.pop();
      FlowState& f = flow(id);
      f.in_eligible = true;
      f.handle = eligible_.push(fx_[id].finish, id);
    }
    HFQ_ASSERT(!eligible_.empty());
    const net::FlowId id = eligible_.pop();
    FlowState& f = flow(id);
    f.handle = util::kInvalidHeapHandle;
    net::Packet p = f.queue.pop();
    --backlog_;
    vtime_ = v_now + finish_increment(p.size_bits(), link_rate_);
    if (!f.queue.empty()) {
      Fx& x = fx_[id];
      x.start = x.finish;
      x.finish = x.start + finish_increment(f.queue.front().size_bits(), x.rate);
      insert_by_eligibility(id);
    }
    return p;
  }

  [[nodiscard]] std::uint64_t vtime_ticks() const noexcept { return vtime_; }

 private:
  struct Fx {
    std::uint64_t rate = 0;
    std::uint64_t start = 0;
    std::uint64_t finish = 0;
    std::uint64_t epoch = 0;
  };

  // ceil(bits * 2^20 / rate): rounding up means a flow's next start tag is
  // never early — the conservative direction for guarantees.
  static std::uint64_t finish_increment(double bits, std::uint64_t rate) {
    const auto b = static_cast<std::uint64_t>(bits);
    const unsigned __int128 scaled =
        (static_cast<unsigned __int128>(b) << kTickShift) + rate - 1;
    return static_cast<std::uint64_t>(scaled / rate);
  }

  void insert_by_eligibility(net::FlowId id) {
    FlowState& f = flow(id);
    const Fx& x = fx_[id];
    if (x.start <= vtime_) {
      f.in_eligible = true;
      f.handle = eligible_.push(x.finish, id);
    } else {
      f.in_eligible = false;
      f.handle = waiting_.push(x.start, id);
    }
  }

  std::uint64_t link_rate_;
  std::uint64_t vtime_ = 0;
  std::uint64_t epoch_ = 1;
  std::vector<Fx> fx_;
  util::HandleHeap<std::uint64_t, net::FlowId> eligible_;
  util::HandleHeap<std::uint64_t, net::FlowId> waiting_;
};

}  // namespace hfq::core
