// WF²Q+ in pure integer (fixed-point) arithmetic — the form a hardware or
// kernel datapath would implement.
//
// The paper positions WF²Q+ for high-speed switches (its O(log N) argument
// targets ATM-era hardware); a floating-point virtual clock is a liability
// there. This variant keeps every tag in integer "virtual ticks"
// (2^-20 s), uses only add/compare/divide, and relies on the busy-period
// epoch reset to keep magnitudes small (a uint64 tick counter would take
// half a million years of continuous virtual time to wrap).
//
// Finish increments round UP so a session can never be credited more
// service than it is entitled to; the discrepancy versus the double
// implementation is below one tick per packet and the scheduling
// properties (WFI <= Lmax, delay bounds) are preserved — tested in
// tests/test_fixed.cc.
//
// Tie discipline matches Wf2qPlus: heap keys carry the head packet's global
// arrival number, so sessions with equal tags are served in packet-arrival
// (FIFO) order. Keying on the bare tag and relying on heap push order is
// wrong — waiting→eligible migration re-pushes sessions in start-tag order,
// which destroys arrival order for equal finish tags.
//
// Datapath: same arena/SoA layout as Wf2qPlus (sched/soa_base.h,
// DESIGN.md "Datapath") — queued packets live in a flat arena with the
// per-flow FIFO threaded through the slots, the arrival number rides in the
// slot, and the integer tag record below packs one flow's stamping state
// into half a cache line.
#pragma once

#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sched/calendar.h"
#include "sched/soa_base.h"

namespace hfq::core {

using units::VTicks;

class Wf2qPlusFixed : public sched::SoaSchedulerBase {
 public:
  // Virtual time resolution: 2^-20 seconds per tick.
  static constexpr int kTickShift = 20;

  explicit Wf2qPlusFixed(
      std::uint64_t link_rate_bps,
      sched::EligEngine engine = sched::default_elig_engine(),
      sched::CalendarTuning tuning = {})
      : link_rate_(link_rate_bps),
        inv_link_rate_(1.0 / static_cast<double>(link_rate_bps)),
        use_calendar_(engine == sched::EligEngine::kCalendar),
        cal_tuning_(tuning) {
    HFQ_ASSERT(link_rate_bps > 0);
  }

  // Integer rates only (bits/sec). Fractional configured rates are rounded
  // to the nearest integer — truncation would shave up to a full bit/sec off
  // the guarantee (a 2.9 bps flow used to be quantized to 2 bps, a 31% cut).
  void add_flow(net::FlowId id, double rate_bps,
                std::size_t capacity_packets = 0) override {
    HFQ_ASSERT_MSG(rate_bps >= 1.0, "fixed-point flows need >= 1 bps");
    SoaSchedulerBase::add_flow(id, rate_bps, capacity_packets);
    if (id >= fx_.size()) fx_.resize(static_cast<std::size_t>(id) + 1);
    fx_[id].rate = static_cast<std::uint64_t>(std::llround(rate_bps));
    if (use_calendar_) {
      cal_eligible_.ensure_ids(meta_.size());
      cal_waiting_.ensure_ids(meta_.size());
    }
  }

  // Pre-sizes every flow-indexed array plus the packet arena.
  void reserve(std::size_t flows, std::size_t packets) {
    SoaSchedulerBase::reserve(flows, packets);
    fx_.reserve(flows);
    eligible_.reserve(flows);
    waiting_.reserve(flows);
  }

  bool enqueue(const net::Packet& p, net::Time now) override {
    // Eager busy-period boundary detection (mirrors Wf2qPlus): an arrival
    // into a drained scheduler after the last transmission completed starts
    // a new busy period even if the link never issued the idle poll.
    if (backlog_ == 0 && !sched::wt_leq(sched::WallTime{now}, busy_until_)) {
      HFQ_TRACE_EVENT(busy_start(obs::kFlatNode, sched::WallTime{now},
                                 vt(vtime_), static_cast<double>(epoch_)));
      vtime_ = VTicks{};
      ++epoch_;
    }
    return enqueue_one(p, now);
  }

  // Burst arrival at one instant; the boundary check hoists exactly as in
  // Wf2qPlus::enqueue_burst (see the equivalence argument there).
  std::size_t enqueue_burst(const std::vector<net::Packet>& packets,
                            net::Time now) override {
    if (packets.empty()) return 0;
    if (backlog_ == 0 && !sched::wt_leq(sched::WallTime{now}, busy_until_)) {
      HFQ_TRACE_EVENT(busy_start(obs::kFlatNode, sched::WallTime{now},
                                 vt(vtime_), static_cast<double>(epoch_)));
      vtime_ = VTicks{};
      ++epoch_;
    }
    std::size_t accepted = 0;
    for (const net::Packet& p : packets) {
      if (enqueue_one(p, now)) ++accepted;
    }
    return accepted;
  }

  std::optional<net::Packet> dequeue(net::Time now) override {
    return dequeue_one(now);
  }

  std::size_t dequeue_burst(std::vector<net::Packet>& out,
                            std::size_t max_packets, net::Time now,
                            double rate_bps, net::Time horizon) override {
    std::size_t n = 0;
    net::Time t = now;
    while (n < max_packets) {
      if (n > 0 && !(t < horizon)) break;
      std::optional<net::Packet> p = dequeue_one(t);
      if (!p.has_value()) break;
      t += p->size_bits() / rate_bps;
      out.push_back(*p);
      ++n;
    }
    return n;
  }

  // --- Live reconfiguration (net::Scheduler overrides) ----------------------
  //
  // Integer twin of the Wf2qPlus live-edit block (see the commentary
  // there): edits invalidate heap keys, commit rebuilds both heaps, FxKey's
  // arrival number reproduces the FIFO tie-break order exactly.

  [[nodiscard]] bool supports_live_edits() const override { return true; }

  bool live_add_flow(net::FlowId id, double rate_bps,
                     std::size_t capacity_packets) override {
    if (!net::flow_id_in_bounds(id) || known_flow(id) || !(rate_bps >= 1.0) ||
        capacity_packets >= UINT32_MAX) {
      return false;
    }
    add_flow(id, rate_bps, capacity_packets);
    return true;
  }

  bool live_set_rate(net::FlowId id, double rate_bps) override {
    if (!known_flow(id) || !(rate_bps >= 1.0)) return false;
    rate_[id] = sched::RateBps{rate_bps};
    Fx& x = fx_[id];
    x.rate = static_cast<std::uint64_t>(std::llround(rate_bps));
    if (!fifo_[id].empty() && x.epoch == epoch_) {
      // Eq. 29 re-stamp at the new rate from the unchanged start tag.
      x.finish =
          x.start + finish_increment(fifo_[id].front(arena_).size_bits(),
                                     x.rate);
      needs_rebuild_ = true;
    }
    return true;
  }

  bool live_remove_flow(net::FlowId id, std::uint64_t* dropped) override {
    if (!known_flow(id)) return false;
    net::ArenaFifo& q = fifo_[id];
    const bool was_backlogged = !q.empty();
    std::uint64_t n = 0;
    while (!q.empty()) {
      q.pop(arena_);
      ++n;
    }
    backlog_ -= static_cast<std::size_t>(n);
    if (dropped != nullptr) *dropped += n;
    meta_[id] = Meta{};
    fifo_[id] = net::ArenaFifo{};
    fx_[id] = Fx{};
    if (was_backlogged) needs_rebuild_ = true;
    return true;
  }

  void commit_live_edits() override {
    if (!needs_rebuild_) return;
    rebuild_eligible_sets();
    needs_rebuild_ = false;
  }

  [[nodiscard]] bool validate_splice(std::string* why) override {
    const auto fail = [why](std::string msg) {
      if (why != nullptr) *why = std::move(msg);
      return false;
    };
    if (needs_rebuild_) {
      return fail("validate_splice called before commit_live_edits");
    }
    if (audit_queued_packets() != backlog_) {
      return fail("backlog counter diverged from per-flow queue sizes");
    }
    std::size_t backlogged = 0;
    for (std::size_t i = 0; i < meta_.size(); ++i) {
      const net::FlowId id = static_cast<net::FlowId>(i);
      if (!known_flow(id)) {
        if (!fifo_[i].empty()) {
          return fail("unregistered flow " + std::to_string(id) +
                      " still holds packets");
        }
        continue;
      }
      if (fifo_[i].empty()) continue;
      ++backlogged;
      const Fx& x = fx_[i];
      // hfq-lint: disable(tag-compare) — exact integer-domain check.
      if (!(x.start < x.finish)) {
        return fail("flow " + std::to_string(id) + ": start >= finish");
      }
      if (x.epoch > epoch_) {
        return fail("flow " + std::to_string(id) +
                    ": tag epoch from the future");
      }
    }
    if (eligible_set_size() != backlogged) {
      return fail("eligible-set membership (" +
                  std::to_string(eligible_set_size()) +
                  ") != backlogged flow count (" + std::to_string(backlogged) +
                  ")");
    }
    if (!eligible_sets_valid()) {
      return fail("eligible/waiting set order corrupted");
    }
    return true;
  }

  // Which eligible-set engine this instance runs (test/bench introspection).
  [[nodiscard]] bool uses_calendar() const noexcept { return use_calendar_; }

  [[nodiscard]] std::uint64_t vtime_ticks() const noexcept {
    return vtime_.ticks();
  }

  // Head tags in ticks, exposed for tests.
  [[nodiscard]] std::uint64_t head_start_ticks(net::FlowId id) const {
    return fx_[id].start.ticks();
  }
  [[nodiscard]] std::uint64_t head_finish_ticks(net::FlowId id) const {
    return fx_[id].finish.ticks();
  }

 private:
  // Per-flow integer tag record — the fixed-point twin of Wf2qPlus::Tag,
  // packed to half a cache line so a stamp touches one 32-byte block.
  struct Fx {
    std::uint64_t rate = 0;
    VTicks start;
    VTicks finish;
    std::uint64_t epoch = 0;
  };
  static_assert(sizeof(Fx) == 32, "Fx must stay half a cache line");

  // Heap key: integer tag, ties broken by global packet arrival number so
  // equal tags serve in FIFO order (the integer twin of sched::VtKey).
  struct FxKey {
    VTicks tag;
    std::uint64_t arrival_no = 0;

    friend bool operator<(const FxKey& a, const FxKey& b) {
      if (a.tag != b.tag) return a.tag < b.tag;
      return a.arrival_no < b.arrival_no;
    }
  };

  // ceil(bits * 2^20 / rate): rounding up means a flow's next start tag is
  // never early — the conservative direction for guarantees.
  static VTicks finish_increment(double bits, std::uint64_t rate) {
    const auto b = static_cast<std::uint64_t>(bits);
    const unsigned __int128 scaled =
        (static_cast<unsigned __int128>(b) << kTickShift) + rate - 1;
    return VTicks{static_cast<std::uint64_t>(scaled / rate)};
  }

  // Tick tags rendered as event-payload virtual time (seconds).
  static constexpr units::VirtualTime vt(VTicks x) noexcept {
    return units::VirtualTime{x.to_seconds(kTickShift)};
  }

  bool enqueue_one(const net::Packet& p, net::Time now) {
    if (!accept_flow(p.flow)) {
      trace_drop(p.flow, p, now);
      return false;
    }
    net::ArenaFifo& q = fifo_[p.flow];
    if (!q.push(arena_, p, arrival_counter_)) {
      trace_drop(p.flow, p, now);
      return false;
    }
    // Saturating, as in Wf2qPlus::enqueue_one: a wrapped tie-break counter
    // would re-open the PR-1 FIFO-order bug after 2^64 packets.
    if (arrival_counter_ != UINT64_MAX) ++arrival_counter_;
    ++backlog_;
    if (q.size() == 1) {
      Fx& x = fx_[p.flow];
      const VTicks f_prev = x.epoch == epoch_ ? x.finish : VTicks{};
      x.start = f_prev > vtime_ ? f_prev : vtime_;
      x.finish = x.start + finish_increment(p.size_bits(), x.rate);
      x.epoch = epoch_;
      HFQ_AUDIT_CHECK("tag-sanity", x.start < x.finish,
                      "enqueue stamped start >= finish");
      insert_by_eligibility(p.flow, now);
    }
    trace_enqueue(p.flow, p, now, vt(vtime_));
    return true;
  }

  std::optional<net::Packet> dequeue_one(net::Time now) {
    if (backlog_ == 0) {
      HFQ_TRACE_EVENT(busy_end(obs::kFlatNode, sched::WallTime{now},
                               vt(vtime_), static_cast<double>(epoch_)));
      vtime_ = VTicks{};
      ++epoch_;
      return std::nullopt;
    }
    // Eligible-set operations go through the engine dispatch helpers —
    // never a direct heap sift in this body (lint rule sift-in-hot-loop).
    VTicks v_now = vtime_;
    if (eligible_set_empty()) {
      HFQ_ASSERT(eligible_set_size() != 0);
      const VTicks smin = waiting_smin();
      if (smin > v_now) v_now = smin;
    }
    migrate_eligible(v_now, now);
    HFQ_ASSERT(!eligible_set_empty());
    const net::FlowId id = pop_min_eligible();
    Fx& x = fx_[id];
    HFQ_TRACE_EVENT(eligset_op(obs::kFlatNode, id, sched::WallTime{now},
                               "select", vt(x.finish)));
    // hfq-lint: disable(tag-compare) — exact integer-domain eligibility.
    HFQ_AUDIT_CHECK("seff-eligibility", x.start <= v_now,
                    "served a session whose start tag " +
                        std::to_string(x.start.ticks()) + " exceeds V " +
                        std::to_string(v_now.ticks()));
    HFQ_AUDIT_CHECK("vtime-monotonic", v_now >= vtime_,
                    "virtual time moved backwards within a busy period");
    HFQ_AUDIT_CHECK("tag-epoch", x.epoch == epoch_,
                    "served a session carrying tags from a previous epoch");
    net::ArenaFifo& q = fifo_[id];
    net::Packet p = q.pop(arena_);
    --backlog_;
    HFQ_TRACE_EVENT(
        vtime_update(obs::kFlatNode, sched::WallTime{now}, vt(vtime_),
                     vt(v_now + finish_increment(p.size_bits(), link_rate_))));
    vtime_ = v_now + finish_increment(p.size_bits(), link_rate_);
    const sched::WallTime tx_end =
        sched::WallTime{now} + sched::Duration{p.size_bits() * inv_link_rate_};
    if (tx_end > busy_until_) busy_until_ = tx_end;
    if (!q.empty()) {
      x.start = x.finish;
      x.finish =
          x.start + finish_increment(q.front(arena_).size_bits(), x.rate);
      insert_by_eligibility(id, now);
    }
    HFQ_AUDIT_CHECK("eligset-valid", eligible_sets_valid(),
                    "eligible/waiting set order corrupted");
    HFQ_AUDIT_CHECK("backlog-conservation",
                    audit_queued_packets() == backlog_,
                    "backlog counter diverged from per-flow queue sizes");
    trace_dequeue(id, p, now, vt(vtime_));
    return p;
  }

  // --- Eligible-set engine dispatch (integer twin of Wf2qPlus's) ------------

  [[nodiscard]] bool eligible_set_empty() const {
    return use_calendar_ ? cal_eligible_.empty() : eligible_.empty();
  }
  [[nodiscard]] std::size_t eligible_set_size() const {
    return use_calendar_ ? cal_eligible_.size() + cal_waiting_.size()
                         : eligible_.size() + waiting_.size();
  }
  [[nodiscard]] bool eligible_sets_valid() {
    return use_calendar_ ? cal_eligible_.validate() && cal_waiting_.validate()
                         : eligible_.validate() && waiting_.validate();
  }
  [[nodiscard]] VTicks waiting_smin() {
    if (use_calendar_) {
      HFQ_ASSERT(!cal_waiting_.empty());
      return VTicks{cal_waiting_.peek_min().tag};
    }
    HFQ_ASSERT(!waiting_.empty());
    return waiting_.top_key().tag;
  }
  [[nodiscard]] net::FlowId pop_min_eligible() {
    if (use_calendar_) {
      return static_cast<net::FlowId>(cal_eligible_.pop_min());
    }
    return eligible_.pop();
  }

  void migrate_eligible(VTicks v_now, [[maybe_unused]] net::Time now) {
    if (use_calendar_) {
      const std::uint64_t bound = v_now.ticks();
      cal_waiting_.drain_leq(
          // Integer ticks compare exactly; the vt_leq tolerance is a
          // float-only concern. hfq-lint: disable(tag-compare)
          [bound](std::uint64_t s) { return s <= bound; },
          [this, v_now, now](std::uint32_t id, std::uint64_t,
                             std::uint64_t no) {
            meta_[id].in_eligible = 1;
            cal_eligible_.insert(id, fx_[id].finish.ticks(), no);
            HFQ_TRACE_EVENT(eligibility_flip(
                obs::kFlatNode, static_cast<net::FlowId>(id),
                sched::WallTime{now}, vt(v_now), vt(fx_[id].start),
                vt(fx_[id].finish), true));
          });
      return;
    }
    // Integer ticks compare exactly; the vt_leq tolerance is a float-only
    // concern. hfq-lint: disable(tag-compare)
    while (!waiting_.empty() && waiting_.top_key().tag <= v_now) {
      const net::FlowId id = waiting_.pop();
      meta_[id].in_eligible = 1;
      eligible_.push(
          FxKey{fx_[id].finish, fifo_[id].front_arrival_no(arena_)}, id);
      HFQ_TRACE_EVENT(eligibility_flip(obs::kFlatNode, id,
                                       sched::WallTime{now}, vt(v_now),
                                       vt(fx_[id].start), vt(fx_[id].finish),
                                       true));
    }
  }

  // Derives the tick-domain geometry: the shared width derivation gives a
  // bucket width in virtual seconds; the integer wheel rounds it down to a
  // power-of-two tick count so quantization is a shift.
  void build_calendars() {
    double rmin = 0.0;
    std::size_t flows = 0;
    for (std::size_t i = 0; i < fx_.size(); ++i) {
      if (meta_[i].registered == 0) continue;
      ++flows;
      const double r = static_cast<double>(fx_[i].rate);
      if (rmin == 0.0 || (r > 0.0 && r < rmin)) rmin = r;
    }
    const sched::CalendarGeometry g =
        sched::derive_geometry(flows, rmin > 0.0 ? rmin : 1.0, cal_tuning_);
    const double width_ticks =
        g.width_vt * static_cast<double>(std::uint64_t{1} << kTickShift);
    unsigned shift = 0;
    while (shift < 40 && (2.0 * static_cast<double>(std::uint64_t{1} << shift)) <=
                             width_ticks) {
      ++shift;
    }
    sched::CalendarQuant<std::uint64_t> q;
    q.shift = shift;
    cal_eligible_.configure(q, g.log2_buckets, cal_tuning_.approximate);
    cal_waiting_.configure(q, g.log2_buckets, cal_tuning_.approximate);
    cal_eligible_.ensure_ids(meta_.size());
    cal_waiting_.ensure_ids(meta_.size());
    cal_ready_ = true;
  }

  void insert_by_eligibility(net::FlowId id, [[maybe_unused]] net::Time now) {
    const Fx& x = fx_[id];
    Meta& m = meta_[id];
    const std::uint64_t no = fifo_[id].front_arrival_no(arena_);
    if (use_calendar_ && !cal_ready_) build_calendars();
    // hfq-lint: disable(tag-compare) — exact integer-domain eligibility.
    if (x.start <= vtime_) {
      m.in_eligible = 1;
      if (use_calendar_) {
        cal_eligible_.insert(id, x.finish.ticks(), no);
      } else {
        eligible_.push(FxKey{x.finish, no}, id);
      }
    } else {
      m.in_eligible = 0;
      if (use_calendar_) {
        cal_waiting_.insert(id, x.start.ticks(), no);
      } else {
        waiting_.push(FxKey{x.start, no}, id);
      }
    }
    HFQ_TRACE_EVENT(eligibility_flip(obs::kFlatNode, id, sched::WallTime{now},
                                     vt(vtime_), vt(x.start), vt(x.finish),
                                     m.in_eligible != 0));
  }

  // Rebuilds both eligible sets after a live-edit batch (integer twin of
  // Wf2qPlus::rebuild_eligible_sets; same exact-order argument).
  void rebuild_eligible_sets() {
    eligible_.clear();
    waiting_.clear();
    if (use_calendar_) {
      cal_eligible_.clear();
      cal_waiting_.clear();
      cal_ready_ = false;
    }
    for (std::size_t i = 0; i < meta_.size(); ++i) {
      const net::FlowId id = static_cast<net::FlowId>(i);
      if (meta_[i].registered == 0 || fifo_[i].empty()) continue;
      insert_by_eligibility(id, net::Time{0});
    }
  }

  std::uint64_t link_rate_;
  double inv_link_rate_;
  VTicks vtime_;
  // Real time at which the latest committed transmission completes; bounds
  // the current busy period.
  sched::WallTime busy_until_;
  std::uint64_t epoch_ = 1;
  // Global FIFO sequence for tie-breaks; saturating (see enqueue_one).
  std::uint64_t arrival_counter_ = 0;
  // Set by live_* edits that invalidated heap keys; cleared by
  // commit_live_edits() after the rebuild.
  bool needs_rebuild_ = false;
  std::vector<Fx> fx_;
  // Heap engine.
  util::InlineHeap<FxKey, net::FlowId> eligible_;  // keyed by finish tag
  util::InlineHeap<FxKey, net::FlowId> waiting_;   // keyed by start tag
  // Calendar engine — tick-domain wheels (shift quantizer).
  bool use_calendar_ = false;
  bool cal_ready_ = false;
  sched::CalendarTuning cal_tuning_;
  sched::TagCalendar<std::uint64_t> cal_eligible_;
  sched::TagCalendar<std::uint64_t> cal_waiting_;
};

}  // namespace hfq::core
