// Explicit instantiations of the fluid GPS server for the two supported
// numeric types; keeps template code compiled and warnings visible.
#include "fluid/gps.h"

namespace hfq::fluid {

template class GpsServer<double>;
template class GpsServer<util::Rational>;

}  // namespace hfq::fluid
