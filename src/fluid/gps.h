// Event-driven fluid Generalized Processor Sharing (GPS) reference server.
//
// This is the idealized system of Parekh & Gallager [14] that WFQ / WF²Q /
// WF²Q+ approximate. It is used as the test oracle: packet schedulers are
// checked against per-packet fluid finish times and cumulative service
// curves. The implementation is templated on the numeric type so the paper's
// worked examples can be verified with exact rational arithmetic.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <type_traits>
#include <vector>

#include "net/packet.h"
#include "util/assert.h"
#include "util/rational.h"
#include "util/units.h"

namespace hfq::fluid {

using net::FlowId;

// Numeric glue so the same fluid code runs on double and exact Rational.
template <typename Num>
struct NumTraits;

template <>
struct NumTraits<double> {
  static constexpr double zero() { return 0.0; }
  // Service amounts below this are considered fully drained (absorbs FP dust
  // from repeated rate subdivision).
  static bool is_drained(double backlog_bits) { return backlog_bits <= 1e-6; }
};

template <>
struct NumTraits<util::Rational> {
  static util::Rational zero() { return util::Rational(0); }
  static bool is_drained(const util::Rational& backlog_bits) {
    return backlog_bits <= util::Rational(0);
  }
};

// A completed fluid service of one packet.
template <typename Num>
struct FluidDeparture {
  Num time{};
  FlowId flow = net::kInvalidFlow;
  std::uint64_t pkt_index = 0;  // 0-based per-flow sequence number
};

template <typename Num>
class GpsServer {
 public:
  explicit GpsServer(Num link_rate_bps) : link_rate_(link_rate_bps) {
    HFQ_ASSERT(Num(0) < link_rate_);
  }

  // Registers a flow with its guaranteed rate (bits/sec). The GPS share is
  // proportional to the rate. Must be called before arrivals for the flow.
  void add_flow(FlowId id, Num rate_bps) {
    HFQ_ASSERT(Num(0) < rate_bps);
    if (id >= flows_.size()) flows_.resize(id + 1);
    HFQ_ASSERT_MSG(!flows_[id].registered, "flow registered twice");
    flows_[id].registered = true;
    flows_[id].rate = rate_bps;
  }

  // Feeds a packet arrival. Times must be non-decreasing across calls.
  void arrive(Num time, FlowId id, Num bits) {
    HFQ_ASSERT(id < flows_.size() && flows_[id].registered);
    HFQ_ASSERT_MSG(!(time < now_), "arrivals must be time-ordered");
    HFQ_ASSERT(Num(0) < bits);
    advance_to(time);
    Flow& f = flows_[id];
    f.boundaries.push_back(f.arrived_bits + bits);
    f.arrived_bits += bits;
    if (!f.backlogged) {
      f.backlogged = true;
      backlogged_count_ += 1;
      backlogged_rate_sum_ += f.rate;
    }
  }

  // Unit-typed boundary for the double instantiation: the internals are
  // numeric-generic (they also run on exact Rational), so the strong types
  // stop at this interface, like at the packet schedulers'.
  template <typename N = Num,
            typename = std::enable_if_t<std::is_same_v<N, double>>>
  void arrive(units::WallTime time, FlowId id, units::Bits bits) {
    arrive(time.seconds(), id, bits.bits());
  }
  template <typename N = Num,
            typename = std::enable_if_t<std::is_same_v<N, double>>>
  void advance_to(units::WallTime t) {
    advance_to(t.seconds());
  }

  // Processes fluid service up to absolute time `t`.
  void advance_to(Num t) {
    HFQ_ASSERT_MSG(!(t < now_), "cannot advance backwards");
    while (now_ < t) {
      if (backlogged_count_ == 0) {
        now_ = t;
        return;
      }
      // Time until the earliest backlogged flow crosses a packet boundary.
      std::optional<Num> min_dt;
      for (FlowId id = 0; id < flows_.size(); ++id) {
        const Flow& f = flows_[id];
        if (!f.backlogged) continue;
        const Num rate = instantaneous_rate(f);
        const Num dt = (f.boundaries.front() - f.served_bits) / rate;
        if (!min_dt || dt < *min_dt) min_dt = dt;
      }
      const Num dt_to_t = t - now_;
      serve_for(*min_dt < dt_to_t ? *min_dt : dt_to_t);
      process_departures();
    }
    process_departures();
  }

  // Departure log in fluid finish-time order (ties: flow id order).
  [[nodiscard]] const std::vector<FluidDeparture<Num>>& departures() const {
    return departures_;
  }

  // Cumulative bits served to flow `id` as of the current time.
  [[nodiscard]] Num work(FlowId id) const {
    HFQ_ASSERT(id < flows_.size() && flows_[id].registered);
    return flows_[id].served_bits;
  }

  [[nodiscard]] Num backlog(FlowId id) const {
    HFQ_ASSERT(id < flows_.size() && flows_[id].registered);
    return flows_[id].arrived_bits - flows_[id].served_bits;
  }

  [[nodiscard]] bool backlogged(FlowId id) const {
    HFQ_ASSERT(id < flows_.size() && flows_[id].registered);
    return flows_[id].backlogged;
  }

  [[nodiscard]] std::size_t backlogged_flows() const noexcept {
    return backlogged_count_;
  }

  [[nodiscard]] Num now() const { return now_; }
  [[nodiscard]] Num link_rate() const { return link_rate_; }

 private:
  struct Flow {
    bool registered = false;
    bool backlogged = false;
    Num rate{};          // guaranteed rate (share weight)
    Num arrived_bits{};  // cumulative arrivals
    Num served_bits{};   // cumulative service
    std::uint64_t departed_count = 0;
    std::deque<Num> boundaries;  // cumulative-bit packet boundaries not yet departed
  };

  // Rate of a backlogged flow: share of the link proportional to its
  // guaranteed rate among currently backlogged flows (Eq. 2 of the paper).
  [[nodiscard]] Num instantaneous_rate(const Flow& f) const {
    return f.rate / backlogged_rate_sum_ * link_rate_;
  }

  void serve_for(Num dt) {
    if (!(Num(0) < dt)) return;
    for (FlowId id = 0; id < flows_.size(); ++id) {
      Flow& f = flows_[id];
      if (!f.backlogged) continue;
      f.served_bits += instantaneous_rate(f) * dt;
      if (f.arrived_bits < f.served_bits) f.served_bits = f.arrived_bits;
    }
    now_ += dt;
  }

  void process_departures() {
    for (FlowId id = 0; id < flows_.size(); ++id) {
      Flow& f = flows_[id];
      while (!f.boundaries.empty() &&
             NumTraits<Num>::is_drained(f.boundaries.front() - f.served_bits)) {
        departures_.push_back(FluidDeparture<Num>{now_, id, f.departed_count});
        f.departed_count += 1;
        f.boundaries.pop_front();
      }
      if (f.backlogged &&
          NumTraits<Num>::is_drained(f.arrived_bits - f.served_bits)) {
        f.backlogged = false;
        f.served_bits = f.arrived_bits;  // snap away FP dust
        backlogged_count_ -= 1;
        backlogged_rate_sum_ -= f.rate;
        if (backlogged_count_ == 0) backlogged_rate_sum_ = NumTraits<Num>::zero();
      }
    }
  }

  Num link_rate_;
  Num now_ = NumTraits<Num>::zero();
  Num backlogged_rate_sum_ = NumTraits<Num>::zero();
  std::size_t backlogged_count_ = 0;

  std::vector<Flow> flows_;
  std::vector<FluidDeparture<Num>> departures_;
};

}  // namespace hfq::fluid
