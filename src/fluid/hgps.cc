// Explicit instantiations of the fluid H-GPS server.
#include "fluid/hgps.h"

namespace hfq::fluid {

template class HgpsServer<double>;
template class HgpsServer<util::Rational>;

}  // namespace hfq::fluid
