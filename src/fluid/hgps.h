// Event-driven fluid Hierarchical GPS (H-GPS) reference server (Section 2.2
// of the paper).
//
// Each node distributes the service it receives to its backlogged children
// in proportion to their shares; packet queues live only at leaves. The
// implementation reproduces the paper's defining behaviour, including the
// finish-order reordering that makes a single virtual time function
// impossible (the A1/A2/B example) — a unit test pins those exact numbers.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <type_traits>
#include <vector>

#include "fluid/gps.h"
#include "util/assert.h"
#include "util/units.h"

namespace hfq::fluid {

using NodeId = std::uint32_t;

template <typename Num>
class HgpsServer {
 public:
  explicit HgpsServer(Num link_rate_bps) : link_rate_(link_rate_bps) {
    HFQ_ASSERT(Num(0) < link_rate_);
    nodes_.push_back(Node{});  // root
    nodes_[0].rate = link_rate_;
    nodes_[0].parent = kNoParent;
  }

  [[nodiscard]] NodeId root() const noexcept { return 0; }

  // Adds a node under `parent` with guaranteed rate `rate_bps` (bits/sec).
  // A node becomes a leaf by receiving arrivals; internal nodes are those
  // with children. Children's rates should sum to at most the parent's.
  NodeId add_node(NodeId parent, Num rate_bps) {
    HFQ_ASSERT(parent < nodes_.size());
    HFQ_ASSERT(Num(0) < rate_bps);
    const NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(Node{});
    nodes_[id].rate = rate_bps;
    nodes_[id].parent = parent;
    nodes_[parent].children.push_back(id);
    return id;
  }

  // Feeds a packet arrival at a leaf. Times must be non-decreasing.
  void arrive(Num time, NodeId leaf, Num bits) {
    HFQ_ASSERT(leaf < nodes_.size());
    HFQ_ASSERT_MSG(nodes_[leaf].children.empty(), "arrivals only at leaves");
    HFQ_ASSERT_MSG(!(time < now_), "arrivals must be time-ordered");
    advance_to(time);
    Node& n = nodes_[leaf];
    n.boundaries.push_back(n.arrived_bits + bits);
    n.arrived_bits += bits;
    mark_backlogged(leaf);
  }

  // Unit-typed boundary for the double instantiation (see fluid/gps.h).
  template <typename N = Num,
            typename = std::enable_if_t<std::is_same_v<N, double>>>
  void arrive(units::WallTime time, NodeId leaf, units::Bits bits) {
    arrive(time.seconds(), leaf, bits.bits());
  }
  template <typename N = Num,
            typename = std::enable_if_t<std::is_same_v<N, double>>>
  void advance_to(units::WallTime t) {
    advance_to(t.seconds());
  }

  // Processes fluid service up to absolute time `t`.
  void advance_to(Num t) {
    HFQ_ASSERT_MSG(!(t < now_), "cannot advance backwards");
    while (now_ < t) {
      if (!nodes_[0].backlogged) {
        now_ = t;
        return;
      }
      compute_rates();
      std::optional<Num> min_dt;
      for (NodeId id = 0; id < nodes_.size(); ++id) {
        const Node& n = nodes_[id];
        if (!is_leaf(id) || !n.backlogged) continue;
        const Num dt = (n.boundaries.front() - n.served_bits) / n.inst_rate;
        if (!min_dt || dt < *min_dt) min_dt = dt;
      }
      const Num dt_to_t = t - now_;
      serve_for(*min_dt < dt_to_t ? *min_dt : dt_to_t);
      process_departures();
    }
    process_departures();
  }

  [[nodiscard]] const std::vector<FluidDeparture<Num>>& departures() const {
    return departures_;
  }

  // Cumulative bits served to the subtree rooted at `id` (for a leaf, to the
  // session) as of the current time. This is the paper's W_n(0, t).
  [[nodiscard]] Num work(NodeId id) const {
    HFQ_ASSERT(id < nodes_.size());
    return nodes_[id].served_bits;
  }

  [[nodiscard]] Num backlog(NodeId leaf) const {
    HFQ_ASSERT(leaf < nodes_.size() && is_leaf(leaf));
    return nodes_[leaf].arrived_bits - nodes_[leaf].served_bits;
  }

  [[nodiscard]] bool backlogged(NodeId id) const {
    HFQ_ASSERT(id < nodes_.size());
    return nodes_[id].backlogged;
  }

  // Instantaneous service rate of a node as of the last event (valid for
  // backlogged nodes between events).
  [[nodiscard]] Num instantaneous_rate(NodeId id) {
    compute_rates();
    return nodes_[id].inst_rate;
  }

  [[nodiscard]] Num now() const { return now_; }
  [[nodiscard]] Num link_rate() const { return link_rate_; }

 private:
  static constexpr NodeId kNoParent = UINT32_MAX;

  struct Node {
    Num rate{};              // guaranteed rate (share weight)
    NodeId parent = kNoParent;
    std::vector<NodeId> children;
    bool backlogged = false;
    Num inst_rate{};         // current fluid rate (recomputed per event)
    Num arrived_bits{};      // leaves only
    Num served_bits{};       // leaves: session service; internal: subtree sum
    std::uint64_t departed_count = 0;
    std::deque<Num> boundaries;
  };

  [[nodiscard]] bool is_leaf(NodeId id) const {
    return nodes_[id].children.empty();
  }

  void mark_backlogged(NodeId leaf) {
    for (NodeId id = leaf; id != kNoParent; id = nodes_[id].parent) {
      if (nodes_[id].backlogged) break;
      nodes_[id].backlogged = true;
    }
  }

  // Top-down proportional distribution among backlogged children (Eq. 8/9).
  void compute_rates() {
    for (Node& n : nodes_) n.inst_rate = NumTraits<Num>::zero();
    if (!nodes_[0].backlogged) return;
    nodes_[0].inst_rate = link_rate_;
    // nodes_ is in creation order, parents precede children.
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      const Node& n = nodes_[id];
      if (!n.backlogged || n.children.empty()) continue;
      Num share_sum = NumTraits<Num>::zero();
      for (const NodeId c : n.children) {
        if (nodes_[c].backlogged) share_sum += nodes_[c].rate;
      }
      for (const NodeId c : n.children) {
        if (nodes_[c].backlogged) {
          nodes_[c].inst_rate = n.inst_rate * nodes_[c].rate / share_sum;
        }
      }
    }
  }

  void serve_for(Num dt) {
    if (!(Num(0) < dt)) return;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      Node& n = nodes_[id];
      if (!is_leaf(id) || !n.backlogged) continue;
      Num served = n.inst_rate * dt;
      if (n.arrived_bits - n.served_bits < served) {
        served = n.arrived_bits - n.served_bits;
      }
      n.served_bits += served;
      // Propagate subtree service to ancestors.
      for (NodeId a = n.parent; a != kNoParent; a = nodes_[a].parent) {
        nodes_[a].served_bits += served;
      }
    }
    now_ += dt;
  }

  void process_departures() {
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      Node& n = nodes_[id];
      if (!is_leaf(id)) continue;
      while (!n.boundaries.empty() &&
             NumTraits<Num>::is_drained(n.boundaries.front() - n.served_bits)) {
        departures_.push_back(FluidDeparture<Num>{now_, id, n.departed_count});
        n.departed_count += 1;
        n.boundaries.pop_front();
      }
      if (n.backlogged &&
          NumTraits<Num>::is_drained(n.arrived_bits - n.served_bits)) {
        n.served_bits = n.arrived_bits;  // snap away FP dust
        unmark_backlogged(id);
      }
    }
  }

  // Clears backlogged flags upward while subtrees have drained.
  void unmark_backlogged(NodeId leaf) {
    nodes_[leaf].backlogged = false;
    for (NodeId id = nodes_[leaf].parent; id != kNoParent;
         id = nodes_[id].parent) {
      bool any = false;
      for (const NodeId c : nodes_[id].children) {
        if (nodes_[c].backlogged) {
          any = true;
          break;
        }
      }
      if (any) break;
      nodes_[id].backlogged = false;
    }
  }

  Num link_rate_;
  Num now_ = NumTraits<Num>::zero();
  std::vector<Node> nodes_;
  std::vector<FluidDeparture<Num>> departures_;
};

}  // namespace hfq::fluid
