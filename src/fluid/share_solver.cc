// ShareSolver is header-only; this TU anchors the library target.
#include "fluid/share_solver.h"
