// Hierarchical water-filling solver for ideal H-GPS bandwidth shares.
//
// Given the link-sharing tree, per-node weights, and per-leaf demands
// (finite for peak-rate-limited sources, infinite for greedy/TCP sources),
// computes the instantaneous bandwidth H-GPS would give every node: each
// node splits its capacity among children in proportion to weights, capped
// at demand, with surplus redistributed among the unsatisfied siblings.
// This generates the "ideal" curves of the paper's Fig. 9(b).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/assert.h"
#include "util/units.h"

namespace hfq::fluid {

class ShareSolver {
 public:
  using NodeId = std::uint32_t;
  static constexpr double kInfiniteDemand =
      std::numeric_limits<double>::infinity();

  // Creates the solver with an implicit root node (id 0).
  ShareSolver() { nodes_.push_back(Node{}); }

  // Adds a node under `parent` with the given weight (any positive scale —
  // only ratios between siblings matter).
  NodeId add_node(NodeId parent, double weight) {
    HFQ_ASSERT(parent < nodes_.size());
    HFQ_ASSERT(weight > 0.0);
    const NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(Node{});
    nodes_[id].parent = parent;
    nodes_[id].weight = weight;
    nodes_[parent].children.push_back(id);
    return id;
  }

  // Sets a leaf's demand in bits/sec (0 = inactive; kInfiniteDemand = greedy).
  void set_demand(NodeId leaf, double demand_bps) {
    HFQ_ASSERT(leaf < nodes_.size());
    HFQ_ASSERT_MSG(nodes_[leaf].children.empty(), "demand only at leaves");
    HFQ_ASSERT(demand_bps >= 0.0);
    nodes_[leaf].demand = demand_bps;
  }
  void set_demand(NodeId leaf, units::RateBps demand) {
    set_demand(leaf, demand.bps());
  }

  // Computes the allocation for every node given the root capacity.
  // Result is indexed by NodeId (bits/sec).
  [[nodiscard]] std::vector<double> solve(double link_rate_bps) const {
    HFQ_ASSERT(link_rate_bps > 0.0);
    std::vector<double> subtree_demand(nodes_.size(), 0.0);
    // Children were always appended after parents, so a reverse sweep
    // aggregates demands bottom-up.
    for (std::size_t i = nodes_.size(); i-- > 0;) {
      const Node& n = nodes_[i];
      if (n.children.empty()) {
        subtree_demand[i] = n.demand;
      } else {
        double sum = 0.0;
        for (const NodeId c : n.children) sum += subtree_demand[c];
        subtree_demand[i] = sum;
      }
    }
    std::vector<double> alloc(nodes_.size(), 0.0);
    alloc[0] = std::min(link_rate_bps, subtree_demand[0]);
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      if (!nodes_[id].children.empty()) {
        fill_children(id, alloc[id], subtree_demand, alloc);
      }
    }
    return alloc;
  }
  [[nodiscard]] std::vector<double> solve(units::RateBps link_rate) const {
    return solve(link_rate.bps());
  }

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

 private:
  struct Node {
    NodeId parent = 0;
    double weight = 1.0;
    double demand = 0.0;  // leaves only
    std::vector<NodeId> children;
  };

  // Water-filling among the children of `id` given capacity `cap`.
  void fill_children(NodeId id, double cap,
                     const std::vector<double>& subtree_demand,
                     std::vector<double>& alloc) const {
    const Node& n = nodes_[id];
    struct Entry {
      NodeId child;
      double weight;
      double demand;
    };
    std::vector<Entry> active;
    active.reserve(n.children.size());
    for (const NodeId c : n.children) {
      if (subtree_demand[c] > 0.0) {
        active.push_back(Entry{c, nodes_[c].weight, subtree_demand[c]});
      }
    }
    double remaining = cap;
    double weight_sum = 0.0;
    for (const Entry& e : active) weight_sum += e.weight;
    // Iteratively satisfy children whose demand is below their fair share.
    // Each pass removes at least one child, so this terminates in O(k²),
    // fine for link-sharing trees.
    std::vector<bool> done(active.size(), false);
    std::size_t open = active.size();
    while (open > 0) {
      bool changed = false;
      for (std::size_t i = 0; i < active.size(); ++i) {
        if (done[i]) continue;
        const double fair = remaining * active[i].weight / weight_sum;
        if (active[i].demand <= fair) {
          alloc[active[i].child] = active[i].demand;
          remaining -= active[i].demand;
          weight_sum -= active[i].weight;
          done[i] = true;
          --open;
          changed = true;
        }
      }
      if (!changed) break;
    }
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (!done[i]) {
        alloc[active[i].child] = remaining * active[i].weight / weight_sum;
      }
    }
  }

  std::vector<Node> nodes_;
};

}  // namespace hfq::fluid
