// FlowQueue is header-only; this TU anchors the library target.
#include "net/flow.h"
