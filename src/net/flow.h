// Per-session FIFO packet queue with byte accounting and optional capacity.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "net/packet.h"
#include "util/assert.h"

namespace hfq::net {

// FIFO queue for one session. Capacity (in packets) bounds the queue for
// drop-tail behaviour; 0 means unlimited. Drops are counted, which the TCP
// experiments rely on as their loss signal.
class FlowQueue {
 public:
  FlowQueue() = default;
  explicit FlowQueue(std::size_t capacity_packets)
      : capacity_(capacity_packets) {}

  // Returns true if accepted, false if dropped (queue full).
  bool push(const Packet& p) {
    if (capacity_ != 0 && q_.size() >= capacity_) {
      ++drops_;
      return false;
    }
    q_.push_back(p);
    bytes_ += p.size_bytes;
    return true;
  }

  [[nodiscard]] const Packet& front() const {
    HFQ_ASSERT(!q_.empty());
    return q_.front();
  }

  Packet pop() {
    HFQ_ASSERT(!q_.empty());
    Packet p = q_.front();
    q_.pop_front();
    bytes_ -= p.size_bytes;
    return p;
  }

  [[nodiscard]] bool empty() const noexcept { return q_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return q_.size(); }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::deque<Packet> q_;
  std::size_t capacity_ = 0;  // 0 = unlimited
  std::uint64_t bytes_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace hfq::net
