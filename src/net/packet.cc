#include "net/packet.h"

#include <ostream>

namespace hfq::net {

std::ostream& operator<<(std::ostream& os, const Packet& p) {
  return os << "pkt{id=" << p.id << " flow=" << p.flow << " bytes="
            << p.size_bytes << (p.kind == PacketKind::kAck ? " ack" : "")
            << "}";
}

}  // namespace hfq::net
