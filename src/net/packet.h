// Packet and flow identifiers shared by every module.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>

#include "util/units.h"

namespace hfq::net {

// Identifies a session (the paper's "session"/leaf queue). Dense small
// integers; schedulers size their tables by the largest id registered.
using FlowId = std::uint32_t;
inline constexpr FlowId kInvalidFlow = std::numeric_limits<FlowId>::max();

// Simulated wall-clock time in seconds. Kept as a raw double across the
// sim/net substrate; the unit-safe scheduler layer converts to
// units::WallTime at its interface boundary (see src/util/units.h and
// DESIGN.md "Unit safety"). The alias names the intended strong type so the
// substrate can migrate without touching every call site again.
using Time = double;
using WallTime = units::WallTime;

enum class PacketKind : std::uint8_t {
  kData = 0,
  kAck = 1,  // used by the TCP substrate
};

struct Packet {
  std::uint64_t id = 0;         // globally unique, assigned by the creator
  FlowId flow = kInvalidFlow;   // session the packet belongs to
  std::uint32_t size_bytes = 0;
  Time created = 0.0;           // time the source emitted the packet
  Time arrival = 0.0;           // time it entered the measured server
  PacketKind kind = PacketKind::kData;
  std::uint64_t meta = 0;       // protocol scratch (e.g. TCP sequence number)

  [[nodiscard]] double size_bits() const noexcept {
    return 8.0 * static_cast<double>(size_bytes);
  }

  // Unit-typed size for the scheduler layer; same value as size_bits().
  [[nodiscard]] units::Bits bits() const noexcept {
    return units::Bits{size_bits()};
  }
};

std::ostream& operator<<(std::ostream& os, const Packet& p);

}  // namespace hfq::net
