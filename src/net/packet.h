// Packet and flow identifiers shared by every module.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>

namespace hfq::net {

// Identifies a session (the paper's "session"/leaf queue). Dense small
// integers; schedulers size their tables by the largest id registered.
using FlowId = std::uint32_t;
inline constexpr FlowId kInvalidFlow = std::numeric_limits<FlowId>::max();

// Simulated time in seconds.
using Time = double;

enum class PacketKind : std::uint8_t {
  kData = 0,
  kAck = 1,  // used by the TCP substrate
};

struct Packet {
  std::uint64_t id = 0;         // globally unique, assigned by the creator
  FlowId flow = kInvalidFlow;   // session the packet belongs to
  std::uint32_t size_bytes = 0;
  Time created = 0.0;           // time the source emitted the packet
  Time arrival = 0.0;           // time it entered the measured server
  PacketKind kind = PacketKind::kData;
  std::uint64_t meta = 0;       // protocol scratch (e.g. TCP sequence number)

  [[nodiscard]] double size_bits() const noexcept {
    return 8.0 * static_cast<double>(size_bytes);
  }
};

std::ostream& operator<<(std::ostream& os, const Packet& p);

}  // namespace hfq::net
