// PacketArena/ArenaFifo are header-only; this TU anchors the library target.
#include "net/packet_arena.h"
