// Index-based packet arena with intrusive per-flow FIFO queues.
//
// The million-flow datapath keeps every queued packet in one flat slab:
// a queued packet is a 64-byte arena slot addressed by a 32-bit PacketRef,
// and the per-flow FIFO is threaded through the slots themselves (each slot
// carries the ref of its queue successor). Compared to the previous layout —
// a std::deque<Packet> per flow plus a parallel std::deque<uint64_t> of
// arrival sequence numbers — this removes every per-packet heap allocation
// from the enqueue/dequeue hot path, collapses the two deques that could
// desynchronize into one record (the arrival number lives in the packet's
// own slot, so queue membership and sequence bookkeeping cannot diverge),
// and cuts per-idle-flow memory from ~1.2 KB of deque headers/blocks to the
// 32 bytes of an ArenaFifo.
//
// Lifetime rules (see DESIGN.md "Datapath"):
//  * A PacketRef is valid from ArenaFifo::push until the matching pop; the
//    pop copies the packet out and returns the slot to the free list.
//  * Refs are indices, not pointers — the slab may grow (vector reallocate)
//    while refs are outstanding and they stay valid.
//  * One arena serves one scheduler; refs are meaningless across arenas.
//  * The free list is LIFO, so a drained-and-refilled scheduler reuses hot
//    slots instead of walking the slab.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "util/assert.h"

namespace hfq::net {

// Index of a packet slot inside a PacketArena.
using PacketRef = std::uint32_t;
inline constexpr PacketRef kNullPacketRef = UINT32_MAX;

class PacketArena {
 public:
  // One queued packet: the packet itself, the global arrival sequence number
  // stamped at enqueue (FIFO tie-break for equal virtual-time tags), and the
  // intrusive link to the next packet in the same flow's FIFO. 64 bytes —
  // exactly one cache line per queued packet.
  struct Slot {
    Packet pkt;
    std::uint64_t arrival_no = 0;
    PacketRef next = kNullPacketRef;
  };
  static_assert(sizeof(Packet) <= 48, "Packet grew; arena slot exceeds 64B");

  PacketArena() = default;
  PacketArena(const PacketArena&) = delete;
  PacketArena& operator=(const PacketArena&) = delete;

  // Pre-sizes the slab (amortization for large workloads; optional — the
  // slab grows on demand).
  void reserve(std::size_t n) { slots_.reserve(n); }

  // Allocates a slot for `p`, stamping its arrival number. O(1); allocates
  // from the OS only when the slab must grow beyond its high-water mark.
  PacketRef alloc(const Packet& p, std::uint64_t arrival_no) {
    PacketRef r;
    if (free_head_ != kNullPacketRef) {
      r = free_head_;
      free_head_ = slots_[r].next;
    } else {
      HFQ_ASSERT_MSG(slots_.size() < kNullPacketRef,
                     "packet arena exhausted 2^32-1 slots");
      r = static_cast<PacketRef>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[r];
    s.pkt = p;
    s.arrival_no = arrival_no;
    s.next = kNullPacketRef;
    ++live_;
    return r;
  }

  // Returns a slot to the free list. The ref must not be used afterwards.
  void release(PacketRef r) {
    HFQ_ASSERT(r < slots_.size() && live_ > 0);
    slots_[r].next = free_head_;
    free_head_ = r;
    --live_;
  }

  [[nodiscard]] Slot& operator[](PacketRef r) {
    HFQ_ASSERT(r < slots_.size());
    return slots_[r];
  }
  [[nodiscard]] const Slot& operator[](PacketRef r) const {
    HFQ_ASSERT(r < slots_.size());
    return slots_[r];
  }

  // Live (queued) packets and slab high-water mark.
  [[nodiscard]] std::size_t live() const noexcept { return live_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  std::vector<Slot> slots_;
  PacketRef free_head_ = kNullPacketRef;
  std::size_t live_ = 0;
};

// Per-flow FIFO threaded through arena slots. Mirrors net::FlowQueue's
// interface and drop-tail semantics (capacity in packets, 0 = unlimited,
// drops counted) but owns no storage of its own: 32 bytes per flow, flat in
// the scheduler's flow table.
class ArenaFifo {
 public:
  ArenaFifo() = default;
  explicit ArenaFifo(std::uint32_t capacity_packets)
      : capacity_(capacity_packets) {}

  // Returns true if accepted, false if dropped (queue full). On accept the
  // packet and its arrival number are written into a fresh arena slot linked
  // at the tail.
  bool push(PacketArena& arena, const Packet& p, std::uint64_t arrival_no) {
    if (capacity_ != 0 && len_ >= capacity_) {
      ++drops_;
      return false;
    }
    const PacketRef r = arena.alloc(p, arrival_no);
    if (tail_ == kNullPacketRef) {
      head_ = r;
    } else {
      arena[tail_].next = r;
    }
    tail_ = r;
    ++len_;
    bytes_ += p.size_bytes;
    return true;
  }

  [[nodiscard]] const Packet& front(const PacketArena& arena) const {
    HFQ_ASSERT(head_ != kNullPacketRef);
    return arena[head_].pkt;
  }

  // Arrival sequence number of the head packet (heap tie-break key).
  [[nodiscard]] std::uint64_t front_arrival_no(
      const PacketArena& arena) const {
    HFQ_ASSERT(head_ != kNullPacketRef);
    return arena[head_].arrival_no;
  }

  Packet pop(PacketArena& arena) {
    HFQ_ASSERT(head_ != kNullPacketRef);
    const PacketRef r = head_;
    Packet p = arena[r].pkt;
    head_ = arena[r].next;
    if (head_ == kNullPacketRef) tail_ = kNullPacketRef;
    --len_;
    bytes_ -= p.size_bytes;
    arena.release(r);
    return p;
  }

  [[nodiscard]] bool empty() const noexcept { return len_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return len_; }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  PacketRef head_ = kNullPacketRef;
  PacketRef tail_ = kNullPacketRef;
  std::uint32_t len_ = 0;
  std::uint32_t capacity_ = 0;  // 0 = unlimited
  std::uint64_t bytes_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace hfq::net
