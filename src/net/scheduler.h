// The scheduler interface a link drives.
//
// Timing contract (matches the paper's Section 4.2 ordering): the link calls
// dequeue() at the instant it is ready to begin the next transmission, i.e.
// after the previous packet fully departed. Any packet enqueued during the
// previous transmission is therefore visible to the selection — this is what
// makes SEFF eligibility and RESET-PATH-then-RESTART semantics exact.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/packet.h"

namespace hfq::net {

// Upper bound on flow ids a scheduler will size tables for. Flow tables are
// indexed by id (O(max id) memory), so an unchecked hostile id is a
// one-packet out-of-memory: the previous datapath resized a
// per-flow-deque vector to `flow + 1` inside enqueue. Registration above
// the bound is rejected at add_flow; a packet carrying an id that was never
// registered is dropped (counted, see unknown_flow_drops) instead of
// touching any table.
inline constexpr FlowId kMaxFlows = 1u << 26;  // 67M flows ≈ a few GB of table

[[nodiscard]] constexpr bool flow_id_in_bounds(FlowId id) noexcept {
  return id < kMaxFlows;
}

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Offers a packet to the session queue. `now` is the arrival time (used by
  // virtual-time bookkeeping). Returns false iff the packet was dropped
  // (finite session buffer, or an out-of-bounds/unregistered flow id).
  virtual bool enqueue(const Packet& p, Time now) = 0;

  // Picks the next packet to transmit, or nullopt if idle. `now` is the time
  // transmission would begin.
  virtual std::optional<Packet> dequeue(Time now) = 0;

  // Number of packets currently queued (a packet handed out by dequeue() is
  // no longer counted).
  [[nodiscard]] virtual std::size_t backlog_packets() const = 0;

  [[nodiscard]] bool empty() const { return backlog_packets() == 0; }

  // --- Batched datapath -----------------------------------------------------
  //
  // The burst API amortizes per-call overhead (virtual dispatch, busy-period
  // boundary checks, Eq.-27 bookkeeping re-entry) across a run of packets.
  // Semantics are DEFINED by the per-packet loop below: a scheduler override
  // must produce exactly the same packet sequence, tags, and internal state
  // as N calls through the per-packet API — fuzz_sched_diff's
  // burst-equivalence check enforces this bit-for-bit.

  // Enqueues `packets`, all arriving at the same instant `now`, in order.
  // Returns the number accepted (drops are counted per flow as usual).
  virtual std::size_t enqueue_burst(const std::vector<Packet>& packets,
                                    Time now) {
    std::size_t accepted = 0;
    for (const Packet& p : packets) {
      if (enqueue(p, now)) ++accepted;
    }
    return accepted;
  }

  // Dequeues up to `max_packets` packets for back-to-back transmission on a
  // link of `rate_bps`, appending them to `out`. The first packet starts at
  // `now`; packet k+1 starts when packet k finishes. The burst stops before
  // a packet whose start time would be >= `horizon` (the caller's next
  // external event — an arrival the selection must see). The first dequeue
  // is unconditional, mirroring a link that polls once when it goes idle;
  // in particular an empty scheduler still observes the idle poll (lazy
  // busy-period reset). Returns the number of packets appended.
  virtual std::size_t dequeue_burst(std::vector<Packet>& out,
                                    std::size_t max_packets, Time now,
                                    double rate_bps, Time horizon) {
    std::size_t n = 0;
    Time t = now;
    while (n < max_packets) {
      if (n > 0 && !(t < horizon)) break;
      std::optional<Packet> p = dequeue(t);
      if (!p.has_value()) break;
      t += p->size_bits() / rate_bps;
      out.push_back(*p);
      ++n;
    }
    return n;
  }
};

}  // namespace hfq::net
