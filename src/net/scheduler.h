// The scheduler interface a link drives.
//
// Timing contract (matches the paper's Section 4.2 ordering): the link calls
// dequeue() at the instant it is ready to begin the next transmission, i.e.
// after the previous packet fully departed. Any packet enqueued during the
// previous transmission is therefore visible to the selection — this is what
// makes SEFF eligibility and RESET-PATH-then-RESTART semantics exact.
#pragma once

#include <cstdint>
#include <optional>

#include "net/packet.h"

namespace hfq::net {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Offers a packet to the session queue. `now` is the arrival time (used by
  // virtual-time bookkeeping). Returns false iff the packet was dropped
  // (finite session buffer).
  virtual bool enqueue(const Packet& p, Time now) = 0;

  // Picks the next packet to transmit, or nullopt if idle. `now` is the time
  // transmission would begin.
  virtual std::optional<Packet> dequeue(Time now) = 0;

  // Number of packets currently queued (a packet handed out by dequeue() is
  // no longer counted).
  [[nodiscard]] virtual std::size_t backlog_packets() const = 0;

  [[nodiscard]] bool empty() const { return backlog_packets() == 0; }
};

}  // namespace hfq::net
