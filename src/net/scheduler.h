// The scheduler interface a link drives.
//
// Timing contract (matches the paper's Section 4.2 ordering): the link calls
// dequeue() at the instant it is ready to begin the next transmission, i.e.
// after the previous packet fully departed. Any packet enqueued during the
// previous transmission is therefore visible to the selection — this is what
// makes SEFF eligibility and RESET-PATH-then-RESTART semantics exact.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.h"

namespace hfq::net {

// Upper bound on flow ids a scheduler will size tables for. Flow tables are
// indexed by id (O(max id) memory), so an unchecked hostile id is a
// one-packet out-of-memory: the previous datapath resized a
// per-flow-deque vector to `flow + 1` inside enqueue. Registration above
// the bound is rejected at add_flow; a packet carrying an id that was never
// registered is dropped (counted, see unknown_flow_drops) instead of
// touching any table.
inline constexpr FlowId kMaxFlows = 1u << 26;  // 67M flows ≈ a few GB of table

[[nodiscard]] constexpr bool flow_id_in_bounds(FlowId id) noexcept {
  return id < kMaxFlows;
}

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Offers a packet to the session queue. `now` is the arrival time (used by
  // virtual-time bookkeeping). Returns false iff the packet was dropped
  // (finite session buffer, or an out-of-bounds/unregistered flow id).
  virtual bool enqueue(const Packet& p, Time now) = 0;

  // Picks the next packet to transmit, or nullopt if idle. `now` is the time
  // transmission would begin.
  virtual std::optional<Packet> dequeue(Time now) = 0;

  // Number of packets currently queued (a packet handed out by dequeue() is
  // no longer counted).
  [[nodiscard]] virtual std::size_t backlog_packets() const = 0;

  [[nodiscard]] bool empty() const { return backlog_packets() == 0; }

  // --- Batched datapath -----------------------------------------------------
  //
  // The burst API amortizes per-call overhead (virtual dispatch, busy-period
  // boundary checks, Eq.-27 bookkeeping re-entry) across a run of packets.
  // Semantics are DEFINED by the per-packet loop below: a scheduler override
  // must produce exactly the same packet sequence, tags, and internal state
  // as N calls through the per-packet API — fuzz_sched_diff's
  // burst-equivalence check enforces this bit-for-bit.

  // Enqueues `packets`, all arriving at the same instant `now`, in order.
  // Returns the number accepted (drops are counted per flow as usual).
  virtual std::size_t enqueue_burst(const std::vector<Packet>& packets,
                                    Time now) {
    std::size_t accepted = 0;
    for (const Packet& p : packets) {
      if (enqueue(p, now)) ++accepted;
    }
    return accepted;
  }

  // Dequeues up to `max_packets` packets for back-to-back transmission on a
  // link of `rate_bps`, appending them to `out`. The first packet starts at
  // `now`; packet k+1 starts when packet k finishes. The burst stops before
  // a packet whose start time would be >= `horizon` (the caller's next
  // external event — an arrival the selection must see). The first dequeue
  // is unconditional, mirroring a link that polls once when it goes idle;
  // in particular an empty scheduler still observes the idle poll (lazy
  // busy-period reset). Returns the number of packets appended.
  virtual std::size_t dequeue_burst(std::vector<Packet>& out,
                                    std::size_t max_packets, Time now,
                                    double rate_bps, Time horizon) {
    std::size_t n = 0;
    Time t = now;
    while (n < max_packets) {
      if (n > 0 && !(t < horizon)) break;
      std::optional<Packet> p = dequeue(t);
      if (!p.has_value()) break;
      t += p->size_bits() / rate_bps;
      out.push_back(*p);
      ++n;
    }
    return n;
  }

  // --- Live reconfiguration ---------------------------------------------------
  //
  // A long-running service (src/serve/) edits the class hierarchy while
  // packets keep flowing: add a session, change a session's guaranteed rate,
  // or remove a session — all between two scheduling decisions, never
  // mid-decision. The protocol is: any number of live_* calls, then exactly
  // one commit_live_edits() before the next enqueue/dequeue. A scheduler that
  // cannot splice its state without draining leaves the defaults in place
  // (supports_live_edits() == false) and the service refuses the edit up
  // front instead of corrupting virtual time.

  [[nodiscard]] virtual bool supports_live_edits() const { return false; }

  // Registers a new session with a guaranteed rate (bits/s) and an optional
  // per-session buffer cap (0 = unlimited). Returns false if unsupported,
  // the id is out of bounds, or the id is already registered.
  virtual bool live_add_flow(FlowId /*id*/, double /*rate_bps*/,
                             std::size_t /*capacity_packets*/ = 0) {
    return false;
  }

  // Changes a registered session's guaranteed rate. If the session is
  // backlogged, its head packet's finish tag is re-stamped from the
  // unchanged start tag at the new rate (Eq. 29); queued packets behind the
  // head are re-tagged as they reach the head, as usual. Returns false if
  // unsupported or the session is unknown / the rate non-positive.
  virtual bool live_set_rate(FlowId /*id*/, double /*rate_bps*/) {
    return false;
  }

  // Unregisters a session. Queued packets are dropped and counted into
  // `*dropped` (if non-null). Returns false if unsupported or unknown.
  virtual bool live_remove_flow(FlowId /*id*/,
                                std::uint64_t* /*dropped*/ = nullptr) {
    return false;
  }

  // Makes a batch of live_* edits visible to the next scheduling decision
  // (e.g. rebuilds eligibility structures). Must be called after any live_*
  // call returned true, before the next enqueue/dequeue.
  virtual void commit_live_edits() {}

  // Post-splice audit: verifies the virtual-time invariants survived the
  // edit batch (heap shape, tag sanity, backlog accounting). Returns true
  // when consistent; on failure fills `*why` (if non-null) with a
  // diagnostic. Schedulers without live-edit support trivially pass.
  [[nodiscard]] virtual bool validate_splice(std::string* /*why*/ = nullptr) {
    return true;
  }
};

}  // namespace hfq::net
