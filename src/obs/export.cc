#include "obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <deque>
#include <istream>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace hfq::obs {
namespace {

std::string fmt_double(double x) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return std::string(buf);
}

// Events recorded outside any node (span timers) share one overflow track so
// the viewer doesn't render a 4-billion-id thread.
constexpr std::uint32_t kJsonNoNodeTid = 999999;

std::uint32_t json_tid(std::uint32_t node) {
  return node == kNoTraceNode ? kJsonNoNodeTid : node;
}

// Stable storage for detail strings parsed out of CSV files: Event::detail
// is a const char* that must outlive the events, so parsed strings are
// interned in a node-based container with a process lifetime.
const char* intern_detail(const std::string& s) {
  if (s.empty()) return "";
  static std::mutex mu;
  static std::set<std::string> pool;
  std::lock_guard<std::mutex> lk(mu);
  return pool.insert(s).first->c_str();
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_chrome_json(std::ostream& os, const std::vector<Event>& events,
                       const ExportOptions& opt) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const std::string& obj) {
    if (!first) os << ",\n";
    first = false;
    os << obj;
  };

  // Metadata: process name + one named track per node seen in the stream.
  emit("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{"
       "\"name\":\"" +
       json_escape(opt.process_name) + "\"}}");
  std::set<std::uint32_t> nodes;
  bool any_no_node = false;
  for (const Event& e : events) {
    if (e.node == kNoTraceNode) {
      any_no_node = true;
    } else {
      nodes.insert(e.node);
    }
  }
  for (std::uint32_t n : nodes) {
    std::string name;
    auto it = opt.node_names.find(n);
    if (it != opt.node_names.end()) {
      name = it->second;
    } else {
      name = "node " + std::to_string(n);
    }
    emit("{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(json_tid(n)) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
         json_escape(name) + "\"}}");
  }
  if (any_no_node) {
    emit("{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(kJsonNoNodeTid) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"driver\"}}");
  }

  for (const Event& e : events) {
    // Simulated seconds -> trace microseconds.
    const std::string ts = fmt_double(e.wall.seconds() * 1e6);
    const std::string tid = std::to_string(json_tid(e.node));
    if (e.kind == EventKind::kSpanBegin) {
      // The matching kSpanEnd carries the duration; a lone begin adds
      // nothing the complete slice doesn't.
      continue;
    }
    if (e.kind == EventKind::kSpanEnd) {
      emit("{\"ph\":\"X\",\"pid\":1,\"tid\":" + tid + ",\"ts\":" + ts +
           ",\"dur\":" + fmt_double(e.a / 1000.0) + ",\"name\":\"" +
           json_escape(e.detail) + "\",\"args\":{\"host_ns\":" +
           fmt_double(e.a) + ",\"seq\":" + std::to_string(e.seq) + "}}");
      continue;
    }
    std::string name = kind_name(e.kind);
    if (e.detail[0] != '\0') {
      name += ":";
      name += e.detail;
    }
    std::string args = "{\"seq\":" + std::to_string(e.seq);
    if (e.flow != kNoTraceFlow) args += ",\"flow\":" + std::to_string(e.flow);
    if (e.packet != 0) args += ",\"packet\":" + std::to_string(e.packet);
    args += ",\"vtime\":" + fmt_double(e.vtime.v());
    args += ",\"a\":" + fmt_double(e.a);
    args += ",\"b\":" + fmt_double(e.b);
    args += "}";
    emit("{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" + tid +
         ",\"ts\":" + ts + ",\"name\":\"" + json_escape(name) +
         "\",\"args\":" + args + "}");
  }
  os << "\n]}\n";
}

void write_csv(std::ostream& os, const std::vector<Event>& events) {
  os << "seq,kind,node,flow,packet,wall_s,vtime,a,b,detail\n";
  for (const Event& e : events) {
    os << e.seq << ',' << kind_name(e.kind) << ',' << e.node << ',' << e.flow
       << ',' << e.packet << ',' << fmt_double(e.wall.seconds()) << ','
       << fmt_double(e.vtime.v()) << ',' << fmt_double(e.a) << ','
       << fmt_double(e.b) << ',' << e.detail << '\n';
  }
}

std::vector<Event> read_csv(std::istream& is) {
  std::vector<Event> out;
  std::string line;
  if (!std::getline(is, line)) {
    throw std::runtime_error("trace csv: empty input");
  }
  if (line.rfind("seq,kind,", 0) != 0) {
    throw std::runtime_error("trace csv: missing header, got: " + line);
  }
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::vector<std::string> f = split_csv_line(line);
    if (f.size() != 10) {
      throw std::runtime_error("trace csv line " + std::to_string(lineno) +
                               ": expected 10 fields, got " +
                               std::to_string(f.size()));
    }
    Event e;
    try {
      e.seq = std::stoull(f[0]);
      if (!kind_from_name(f[1], &e.kind)) {
        throw std::runtime_error("unknown event kind '" + f[1] + "'");
      }
      e.node = static_cast<std::uint32_t>(std::stoul(f[2]));
      e.flow = static_cast<std::uint32_t>(std::stoul(f[3]));
      e.packet = std::stoull(f[4]);
      const double wall = std::stod(f[5]);
      const double vraw = std::stod(f[6]);
      if (!std::isfinite(wall)) {
        throw std::runtime_error("non-finite wall timestamp");
      }
      e.wall = units::WallTime{wall};
      e.vtime = units::VirtualTime{vraw};
      e.a = std::stod(f[7]);
      e.b = std::stod(f[8]);
      e.detail = intern_detail(f[9]);
    } catch (const std::exception& ex) {
      throw std::runtime_error("trace csv line " + std::to_string(lineno) +
                               ": " + ex.what());
    }
    out.push_back(e);
  }
  return out;
}

std::vector<Event> filter_events(const std::vector<Event>& in,
                                 const EventFilter& f) {
  std::vector<Event> out;
  for (const Event& e : in) {
    if (f.matches(e)) out.push_back(e);
  }
  return out;
}

namespace {

// Name of the first field that differs, or "" if equal. Span host-ns (the
// `a` payload of SpanEnd) is excluded: it is a host wall-clock measurement.
std::string first_diff_field(const Event& x, const Event& y) {
  if (x.kind != y.kind) return "kind";
  if (x.node != y.node) return "node";
  if (x.flow != y.flow) return "flow";
  if (std::string(x.detail) != y.detail) return "detail";
  if (x.kind == EventKind::kSpanBegin || x.kind == EventKind::kSpanEnd) {
    if (x.wall != y.wall) return "wall";
    return "";
  }
  if (x.packet != y.packet) return "packet";
  if (x.wall != y.wall) return "wall";
  if (x.vtime != y.vtime) return "vtime";
  if (x.a != y.a) return "a";  // hfq-lint: disable(tag-compare)
  if (x.b != y.b) return "b";  // hfq-lint: disable(tag-compare)
  return "";
}

}  // namespace

std::vector<EventDiff> diff_events(const std::vector<Event>& a,
                                   const std::vector<Event>& b,
                                   std::size_t max_diffs) {
  std::vector<EventDiff> out;
  const std::size_t n = a.size() > b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n && out.size() < max_diffs; ++i) {
    if (i >= a.size() || i >= b.size()) {
      out.push_back({i, i < a.size() ? format_event(a[i]) : std::string(),
                     i < b.size() ? format_event(b[i]) : std::string(),
                     "missing"});
      continue;
    }
    const std::string field = first_diff_field(a[i], b[i]);
    if (!field.empty()) {
      out.push_back({i, format_event(a[i]), format_event(b[i]), field});
    }
  }
  return out;
}

}  // namespace hfq::obs
