// Exporters for FlightRecorder event streams.
//
//  * Chrome trace-event JSON — loadable in Perfetto / chrome://tracing. Each
//    hierarchy node becomes its own track (tid = node id, named via
//    ExportOptions::node_names metadata); scheduling events are instants,
//    SpanEnd events become complete ("X") slices with their measured host
//    duration.
//  * Compact CSV — one event per line, round-trippable through read_csv so
//    `hfq_trace print/diff` can operate on saved recordings.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"

namespace hfq::obs {

struct ExportOptions {
  // Human-readable names for node tracks in the Chrome JSON (e.g. "root",
  // "leaf:A1"). Nodes without an entry are named "node <id>".
  std::map<std::uint32_t, std::string> node_names;
  // Process name shown in the trace viewer.
  std::string process_name = "hfq";
};

// Escapes a string for embedding in a JSON string literal (quotes,
// backslashes, control characters).
[[nodiscard]] std::string json_escape(const std::string& s);

// Writes the events as a Chrome trace-event JSON document.
void write_chrome_json(std::ostream& os, const std::vector<Event>& events,
                       const ExportOptions& opt = {});

// Writes the events as CSV (header + one line per event).
void write_csv(std::ostream& os, const std::vector<Event>& events);

// Parses a CSV produced by write_csv. Throws std::runtime_error on malformed
// input. Detail strings are interned (stable for the process lifetime) so
// Event::detail keeps its static-storage contract.
[[nodiscard]] std::vector<Event> read_csv(std::istream& is);

// Predicate bundle for `hfq_trace print` filters; unset fields match all.
struct EventFilter {
  std::optional<std::uint32_t> node;
  std::optional<std::uint32_t> flow;
  std::optional<EventKind> kind;
  std::optional<double> since;  // wall seconds, inclusive

  [[nodiscard]] bool matches(const Event& e) const {
    if (node && e.node != *node) return false;
    if (flow && e.flow != *flow) return false;
    if (kind && e.kind != *kind) return false;
    if (since && e.wall.seconds() < *since) return false;
    return true;
  }
};

[[nodiscard]] std::vector<Event> filter_events(const std::vector<Event>& in,
                                               const EventFilter& f);

// One divergence found by diff_events.
struct EventDiff {
  std::size_t index;    // position in the event sequence
  std::string lhs;      // formatted event from a ("" past the end)
  std::string rhs;      // formatted event from b ("" past the end)
  std::string field;    // first differing field, or "missing"
};

// Compares two recordings event-by-event. Span events are compared by kind
// and name only — the SpanEnd host-ns payload is wall-clock measurement and
// legitimately differs between runs. Returns at most `max_diffs` entries.
[[nodiscard]] std::vector<EventDiff> diff_events(
    const std::vector<Event>& a, const std::vector<Event>& b,
    std::size_t max_diffs = 32);

}  // namespace hfq::obs
