#include "obs/flight_recorder.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace hfq::obs {

const char* kind_name(EventKind k) noexcept {
  switch (k) {
    case EventKind::kEnqueue:
      return "enqueue";
    case EventKind::kDequeue:
      return "dequeue";
    case EventKind::kVtimeUpdate:
      return "vtime_update";
    case EventKind::kEligibilityFlip:
      return "eligibility_flip";
    case EventKind::kEligsetOp:
      return "eligset_op";
    case EventKind::kDrop:
      return "drop";
    case EventKind::kBusyPeriodStart:
      return "busy_start";
    case EventKind::kBusyPeriodEnd:
      return "busy_end";
    case EventKind::kSpanBegin:
      return "span_begin";
    case EventKind::kSpanEnd:
      return "span_end";
    case EventKind::kCount:
      break;
  }
  return "unknown";
}

bool kind_from_name(const std::string& name, EventKind* out) {
  for (std::uint8_t i = 0; i < static_cast<std::uint8_t>(EventKind::kCount);
       ++i) {
    const auto k = static_cast<EventKind>(i);
    if (name == kind_name(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

std::string format_event(const Event& e) {
  char buf[256];
  char ids[64] = "";
  if (e.node != kNoTraceNode && e.flow != kNoTraceFlow) {
    std::snprintf(ids, sizeof(ids), " node=%" PRIu32 " flow=%" PRIu32, e.node,
                  e.flow);
  } else if (e.node != kNoTraceNode) {
    std::snprintf(ids, sizeof(ids), " node=%" PRIu32, e.node);
  } else if (e.flow != kNoTraceFlow) {
    std::snprintf(ids, sizeof(ids), " flow=%" PRIu32, e.flow);
  }
  switch (e.kind) {
    case EventKind::kEnqueue:
    case EventKind::kDequeue:
      std::snprintf(buf, sizeof(buf),
                    "#%" PRIu64 " t=%.9g %s%s pkt=%" PRIu64
                    " V=%.9g bits=%g backlog=%g",
                    e.seq, e.wall.seconds(), kind_name(e.kind), ids, e.packet,
                    e.vtime.v(), e.a, e.b);
      break;
    case EventKind::kVtimeUpdate:
      std::snprintf(buf, sizeof(buf), "#%" PRIu64 " t=%.9g %s%s V %.9g -> %.9g",
                    e.seq, e.wall.seconds(), kind_name(e.kind), ids, e.a,
                    e.vtime.v());
      break;
    case EventKind::kEligibilityFlip:
      std::snprintf(buf, sizeof(buf),
                    "#%" PRIu64 " t=%.9g %s%s -> %s S=%.9g F=%.9g V=%.9g",
                    e.seq, e.wall.seconds(), kind_name(e.kind), ids, e.detail,
                    e.a, e.b, e.vtime.v());
      break;
    case EventKind::kEligsetOp:
      std::snprintf(buf, sizeof(buf), "#%" PRIu64 " t=%.9g %s%s %s key=%.9g",
                    e.seq, e.wall.seconds(), kind_name(e.kind), ids, e.detail,
                    e.a);
      break;
    case EventKind::kDrop:
      std::snprintf(buf, sizeof(buf),
                    "#%" PRIu64 " t=%.9g %s%s pkt=%" PRIu64 " bits=%g", e.seq,
                    e.wall.seconds(), kind_name(e.kind), ids, e.packet, e.a);
      break;
    case EventKind::kBusyPeriodStart:
    case EventKind::kBusyPeriodEnd:
      std::snprintf(buf, sizeof(buf),
                    "#%" PRIu64 " t=%.9g %s%s V=%.9g epoch=%g", e.seq,
                    e.wall.seconds(), kind_name(e.kind), ids, e.vtime.v(),
                    e.a);
      break;
    case EventKind::kSpanBegin:
      std::snprintf(buf, sizeof(buf), "#%" PRIu64 " t=%.9g %s %s", e.seq,
                    e.wall.seconds(), kind_name(e.kind), e.detail);
      break;
    case EventKind::kSpanEnd:
      std::snprintf(buf, sizeof(buf), "#%" PRIu64 " t=%.9g %s %s host_ns=%g",
                    e.seq, e.wall.seconds(), kind_name(e.kind), e.detail, e.a);
      break;
    case EventKind::kCount:
      std::snprintf(buf, sizeof(buf), "#%" PRIu64 " t=%.9g unknown", e.seq,
                    e.wall.seconds());
      break;
  }
  return std::string(buf);
}

std::string format_events(const std::vector<Event>& events) {
  std::string out;
  for (const Event& e : events) {
    out += format_event(e);
    out += '\n';
  }
  return out;
}

std::string last_events_text(std::size_t n) {
  const FlightRecorder* rec = current();
  if (rec == nullptr || rec->total_recorded() == 0) return "";
  std::string out = "flight recorder (last ";
  std::vector<Event> events = rec->last(n);
  out += std::to_string(events.size());
  out += " of ";
  out += std::to_string(rec->total_recorded());
  out += " events):\n";
  out += format_events(events);
  return out;
}

}  // namespace hfq::obs
