// Scheduler flight recorder: a fixed-capacity, single-writer ring buffer of
// typed scheduling events, threaded through the scheduler hot paths.
//
// The paper's claims are per-packet claims — which eligible session SEFF
// picks, how the Eq. 27 virtual time jumps at busy-period boundaries, when a
// session's eligibility flips — and when the differential fuzzer or the
// SchedulerAuditor flags a divergence, aggregate outputs cannot explain it.
// The flight recorder keeps the last-N decision events so every failure is a
// replayable, inspectable timeline (exporters in obs/export.h render it as
// Chrome trace-event JSON for Perfetto and as a compact CSV).
//
// Cost model (mirrors audit/invariants.h):
//  * The scheduler hooks expand only when the build defines
//    HFQ_TRACE_ENABLED (CMake option -DHFQ_TRACE=ON; global, because the
//    schedulers are header-only templates and per-target definitions would
//    create ODR-violating mixed instantiations). When OFF,
//    HFQ_TRACE_EVENT(...) compiles to nothing — arguments are not even
//    evaluated — and SpanTimer is an empty type.
//  * When ON, a hook still costs only a thread_local pointer test unless a
//    recorder is installed. Recording never changes a scheduling decision,
//    so sim outputs are byte-identical with tracing off, idle, or active.
//  * A recorder is single-writer by construction: schedulers are
//    single-threaded objects, and installation is thread_local (RecordScope)
//    so every campaign shard / fuzz worker records into its own buffer with
//    no locks and no shared mutable state (the same model as the audit
//    handler and MetricsRegistry).
//
// The ring, the exporters and the CLI are compiled unconditionally — only
// the hot-path hooks are gated — so tests of the buffer/export layers run in
// every build type.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/units.h"

namespace hfq::obs {

// True when the scheduler hot-path hooks are compiled in.
[[nodiscard]] constexpr bool compiled_in() noexcept {
#ifdef HFQ_TRACE_ENABLED
  return true;
#else
  return false;
#endif
}

// Node id for flat (one-level) schedulers; hierarchical schedulers use their
// own NodeId values (root = 0 in HPfq, so flat schedulers share track 0).
inline constexpr std::uint32_t kFlatNode = 0;
// "No node" marker for events outside any scheduler node.
inline constexpr std::uint32_t kNoTraceNode = 0xffffffffu;
inline constexpr std::uint32_t kNoTraceFlow = 0xffffffffu;

enum class EventKind : std::uint8_t {
  kEnqueue = 0,       // packet accepted into a session queue
  kDequeue,           // packet selected for transmission
  kVtimeUpdate,       // Eq. 27 advance: V <- max(V, Smin) + L/r
  kEligibilityFlip,   // session moved between waiting and eligible sets
  kEligsetOp,         // eligible-set op: heap or calendar select (see detail)
  kDrop,              // packet rejected (finite session buffer)
  kBusyPeriodStart,   // arrival into a drained server started a busy period
  kBusyPeriodEnd,     // idle poll on a drained server ended the busy period
  kSpanBegin,         // RAII span entry (detail = span name)
  kSpanEnd,           // RAII span exit (a = elapsed host nanoseconds)
  kCount
};

[[nodiscard]] const char* kind_name(EventKind k) noexcept;
// Parses a kind from its kind_name; returns false on unknown names.
[[nodiscard]] bool kind_from_name(const std::string& name, EventKind* out);

// One recorded event. Fixed-size and trivially copyable so the ring is a
// flat array; `detail` must point at a string with static storage duration
// (heap-op names, span names) — recording never allocates.
//
// Field use by kind (unused fields are zero):
//   kEnqueue / kDequeue   flow, packet, wall, vtime (V at/after the op),
//                         a = packet bits, b = backlog after the op
//   kVtimeUpdate          wall, a = old V, vtime = new V
//   kEligibilityFlip      flow, wall, vtime = V, a = start tag,
//                         b = finish tag, detail = "eligible" | "waiting"
//   kEligsetOp            flow, wall, a/b = eligible-set key(s),
//                         detail = operation name
//   kDrop                 flow, packet, wall, a = packet bits
//   kBusyPeriodStart/End  wall, vtime = V before the reset, a = epoch
//   kSpanBegin/End        wall, detail = span name, a = host ns (end only)
struct Event {
  std::uint64_t seq = 0;  // per-recorder monotone sequence number
  EventKind kind = EventKind::kEnqueue;
  std::uint32_t node = kNoTraceNode;
  std::uint32_t flow = kNoTraceFlow;
  std::uint64_t packet = 0;
  units::WallTime wall;
  units::VirtualTime vtime;
  double a = 0.0;
  double b = 0.0;
  const char* detail = "";
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 14;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity)
      : buf_(capacity == 0 ? 1 : capacity) {}

  // Appends `e` (stamping its sequence number), overwriting the oldest event
  // once the ring is full. Single-writer; no locks, no allocation.
  void record(Event e) noexcept {
    e.seq = next_seq_++;
    buf_[head_] = e;
    head_ = head_ + 1 == buf_.size() ? 0 : head_ + 1;
    if (size_ < buf_.size()) {
      ++size_;
    } else {
      ++overwritten_;
    }
  }

  // --- typed emitters (the vocabulary the HFQ_TRACE_EVENT hooks use) ------

  void enqueue(std::uint32_t node, std::uint32_t flow, std::uint64_t packet,
               units::WallTime t, units::VirtualTime v, double bits,
               double backlog_after) noexcept {
    Event e;
    e.kind = EventKind::kEnqueue;
    e.node = node;
    e.flow = flow;
    e.packet = packet;
    e.wall = t;
    e.vtime = v;
    e.a = bits;
    e.b = backlog_after;
    record(e);
  }

  void dequeue(std::uint32_t node, std::uint32_t flow, std::uint64_t packet,
               units::WallTime t, units::VirtualTime v, double bits,
               double backlog_after) noexcept {
    Event e;
    e.kind = EventKind::kDequeue;
    e.node = node;
    e.flow = flow;
    e.packet = packet;
    e.wall = t;
    e.vtime = v;
    e.a = bits;
    e.b = backlog_after;
    record(e);
  }

  void vtime_update(std::uint32_t node, units::WallTime t,
                    units::VirtualTime from, units::VirtualTime to) noexcept {
    Event e;
    e.kind = EventKind::kVtimeUpdate;
    e.node = node;
    e.wall = t;
    e.vtime = to;
    e.a = from.v();
    record(e);
  }

  void eligibility_flip(std::uint32_t node, std::uint32_t flow,
                        units::WallTime t, units::VirtualTime v,
                        units::VirtualTime start, units::VirtualTime finish,
                        bool now_eligible) noexcept {
    Event e;
    e.kind = EventKind::kEligibilityFlip;
    e.node = node;
    e.flow = flow;
    e.wall = t;
    e.vtime = v;
    e.a = start.v();
    e.b = finish.v();
    e.detail = now_eligible ? "eligible" : "waiting";
    record(e);
  }

  // `op` must be a static string (e.g. "push-eligible", "pop-waiting",
  // "select").
  void eligset_op(std::uint32_t node, std::uint32_t flow, units::WallTime t,
               const char* op, units::VirtualTime key,
               units::VirtualTime key2 = units::VirtualTime{}) noexcept {
    Event e;
    e.kind = EventKind::kEligsetOp;
    e.node = node;
    e.flow = flow;
    e.wall = t;
    e.a = key.v();
    e.b = key2.v();
    e.detail = op;
    record(e);
  }

  void drop(std::uint32_t node, std::uint32_t flow, std::uint64_t packet,
            units::WallTime t, double bits) noexcept {
    Event e;
    e.kind = EventKind::kDrop;
    e.node = node;
    e.flow = flow;
    e.packet = packet;
    e.wall = t;
    e.a = bits;
    record(e);
  }

  void busy_start(std::uint32_t node, units::WallTime t, units::VirtualTime v,
                  double epoch) noexcept {
    Event e;
    e.kind = EventKind::kBusyPeriodStart;
    e.node = node;
    e.wall = t;
    e.vtime = v;
    e.a = epoch;
    record(e);
  }

  void busy_end(std::uint32_t node, units::WallTime t, units::VirtualTime v,
                double epoch) noexcept {
    Event e;
    e.kind = EventKind::kBusyPeriodEnd;
    e.node = node;
    e.wall = t;
    e.vtime = v;
    e.a = epoch;
    record(e);
  }

  void span_begin(const char* name, units::WallTime t) noexcept {
    Event e;
    e.kind = EventKind::kSpanBegin;
    e.wall = t;
    e.detail = name;
    record(e);
  }

  void span_end(const char* name, units::WallTime t, double host_ns) noexcept {
    Event e;
    e.kind = EventKind::kSpanEnd;
    e.wall = t;
    e.a = host_ns;
    e.detail = name;
    record(e);
  }

  // --- inspection ---------------------------------------------------------

  // Events currently held, oldest to newest.
  [[nodiscard]] std::vector<Event> snapshot() const {
    std::vector<Event> out;
    out.reserve(size_);
    const std::size_t cap = buf_.size();
    const std::size_t first = size_ < cap ? 0 : head_;
    for (std::size_t i = 0; i < size_; ++i) {
      out.push_back(buf_[(first + i) % cap]);
    }
    return out;
  }

  // The newest `n` events, oldest first.
  [[nodiscard]] std::vector<Event> last(std::size_t n) const {
    std::vector<Event> all = snapshot();
    if (n < all.size()) all.erase(all.begin(), all.end() - static_cast<std::ptrdiff_t>(n));
    return all;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }
  // Events pushed out of the ring since the last clear().
  [[nodiscard]] std::uint64_t overwritten() const noexcept {
    return overwritten_;
  }
  // Total events ever recorded (size() + overwritten()).
  [[nodiscard]] std::uint64_t total_recorded() const noexcept {
    return next_seq_;
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
    next_seq_ = 0;
    overwritten_ = 0;
  }

 private:
  std::vector<Event> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t overwritten_ = 0;
};

// --- thread-local installation ---------------------------------------------

namespace detail {
inline FlightRecorder*& slot() noexcept {
  thread_local FlightRecorder* r = nullptr;
  return r;
}
}  // namespace detail

// The recorder installed on this thread, or nullptr (recording disabled).
[[nodiscard]] inline FlightRecorder* current() noexcept {
  return detail::slot();
}

// RAII installation of a recorder into the thread-local slot; restores the
// previous recorder on destruction (scopes nest).
class RecordScope {
 public:
  explicit RecordScope(FlightRecorder& r) noexcept : prev_(detail::slot()) {
    detail::slot() = &r;
  }
  ~RecordScope() { detail::slot() = prev_; }
  RecordScope(const RecordScope&) = delete;
  RecordScope& operator=(const RecordScope&) = delete;

 private:
  FlightRecorder* prev_;
};

// --- text formatting (failure dumps) ----------------------------------------

// One-line human-readable rendering of an event.
[[nodiscard]] std::string format_event(const Event& e);
// One event per line.
[[nodiscard]] std::string format_events(const std::vector<Event>& events);
// The newest `n` events of the recorder installed on this thread, formatted
// for a failure report — empty string when no recorder is installed or
// nothing was recorded (so appending it is always safe).
[[nodiscard]] std::string last_events_text(std::size_t n);

// --- hot-path hooks ---------------------------------------------------------

// HFQ_TRACE_EVENT(enqueue(node, flow, ...)) calls the named FlightRecorder
// emitter on the thread's recorder. With HFQ_TRACE off the whole statement
// (argument evaluation included) vanishes.
#ifdef HFQ_TRACE_ENABLED
#define HFQ_TRACE_EVENT(call)                                             \
  do {                                                                    \
    if (::hfq::obs::FlightRecorder* hfq_rec_ = ::hfq::obs::current()) {   \
      hfq_rec_->call;                                                     \
    }                                                                     \
  } while (false)
#else
#define HFQ_TRACE_EVENT(call) \
  do {                        \
  } while (false)
#endif

// RAII span timer for self-profiling a scheduler call from the driver side
// (sim::Link wraps enqueue/dequeue in one). Records a kSpanBegin on entry
// and a kSpanEnd carrying the elapsed *host* nanoseconds on exit — the only
// non-deterministic payload in the event stream (exporters and `hfq_trace
// diff` treat it accordingly). An empty type when tracing is compiled out.
#ifdef HFQ_TRACE_ENABLED
class SpanTimer {
 public:
  SpanTimer(const char* name, double sim_now) noexcept
      : rec_(current()), name_(name), wall_(units::WallTime{sim_now}) {
    if (rec_ != nullptr) {
      rec_->span_begin(name_, wall_);
      t0_ = std::chrono::steady_clock::now();
    }
  }
  ~SpanTimer() {
    if (rec_ != nullptr) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - t0_)
                          .count();
      rec_->span_end(name_, wall_, static_cast<double>(ns));
    }
  }
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
  FlightRecorder* rec_;
  const char* name_;
  units::WallTime wall_;
  std::chrono::steady_clock::time_point t0_;
};
#else
class SpanTimer {
 public:
  SpanTimer(const char*, double) noexcept {}
};
#endif

}  // namespace hfq::obs
