#include "qos/admission.h"

#include <map>

namespace hfq::qos {
namespace {

// Sum of children's guaranteed rates per node index.
std::map<std::uint32_t, double> children_rate_sums(
    const core::Hierarchy& spec) {
  std::map<std::uint32_t, double> sums;
  for (std::uint32_t i = 1; i < spec.size(); ++i) {
    sums[static_cast<std::uint32_t>(spec.node(i).parent)] +=
        spec.node(i).rate_bps;
  }
  return sums;
}

}  // namespace

std::vector<ValidationIssue> validate(const core::Hierarchy& spec) {
  std::vector<ValidationIssue> issues;
  const auto sums = children_rate_sums(spec);
  for (const auto& [node, sum] : sums) {
    const double rate = spec.node(node).rate_bps;
    // Tolerate tiny floating slack (shares are often typed as decimals).
    if (sum > rate * (1.0 + 1e-9) + 1e-9) {
      issues.push_back(ValidationIssue{
          node, sum, rate,
          "children of '" + spec.node(node).name +
              "' oversubscribe it: " + std::to_string(sum) + " > " +
              std::to_string(rate)});
    }
  }
  return issues;
}

std::optional<double> delay_bound(const core::Hierarchy& spec,
                                  std::uint32_t leaf, double sigma_bits,
                                  double lmax_bits) {
  if (leaf >= spec.size() || !spec.node(leaf).leaf) return std::nullopt;
  HFQ_ASSERT(sigma_bits >= 0.0);
  HFQ_ASSERT(lmax_bits > 0.0);
  double bound = sigma_bits / spec.node(leaf).rate_bps;
  // Ancestor servers: parent class, ..., root (the link).
  for (std::int32_t n = spec.node(leaf).parent; n >= 0;
       n = spec.node(static_cast<std::uint32_t>(n)).parent) {
    bound += lmax_bits / spec.node(static_cast<std::uint32_t>(n)).rate_bps;
  }
  bound += lmax_bits / spec.link_rate();  // own transmission time
  return bound;
}

std::optional<double> delay_bound_for_flow(const core::Hierarchy& spec,
                                           net::FlowId flow,
                                           double sigma_bits,
                                           double lmax_bits) {
  for (std::uint32_t i = 1; i < spec.size(); ++i) {
    if (spec.node(i).leaf && spec.node(i).flow == flow) {
      return delay_bound(spec, i, sigma_bits, lmax_bits);
    }
  }
  return std::nullopt;
}

AdmissionDecision evaluate(const core::Hierarchy& spec,
                           const AdmissionRequest& req, double lmax_bits) {
  AdmissionDecision out;
  if (req.parent >= spec.size() || spec.node(req.parent).leaf) {
    out.reason = "parent is not a class";
    return out;
  }
  if (req.rate_bps <= 0.0) {
    out.reason = "rate must be positive";
    return out;
  }
  // Headroom under the parent.
  double children = 0.0;
  for (std::uint32_t i = 1; i < spec.size(); ++i) {
    if (static_cast<std::uint32_t>(spec.node(i).parent) == req.parent) {
      children += spec.node(i).rate_bps;
    }
  }
  out.headroom_bps = spec.node(req.parent).rate_bps - children;
  if (req.rate_bps > out.headroom_bps * (1.0 + 1e-9) + 1e-9) {
    out.reason = "insufficient rate headroom under parent";
    return out;
  }
  // Bound the hypothetical session would get (Corollary 2 path walk).
  double bound = req.sigma_bits / req.rate_bps;
  for (std::int32_t n = static_cast<std::int32_t>(req.parent); n >= 0;
       n = spec.node(static_cast<std::uint32_t>(n)).parent) {
    bound += lmax_bits / spec.node(static_cast<std::uint32_t>(n)).rate_bps;
  }
  bound += lmax_bits / spec.link_rate();
  out.bound_s = bound;
  if (bound > req.target_s) {
    out.reason = "delay bound " + std::to_string(bound) +
                 " s exceeds target " + std::to_string(req.target_s) + " s";
    return out;
  }
  out.admitted = true;
  out.reason = "ok";
  return out;
}

}  // namespace hfq::qos
