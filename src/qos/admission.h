// Admission control and delay-bound computation on a link-sharing tree —
// the library's "downstream user" API for the paper's analytical results.
//
// Given a Hierarchy and the maximum packet size, this module:
//  * validates the rate configuration (children's guaranteed rates must not
//    oversubscribe their parent — the assumption behind Eqs. 3/8),
//  * computes each session's Corollary 2 delay bound for a (sigma, rho)
//    arrival constraint under H-WF²Q+,
//  * answers admission queries: can a new session with a given rate and
//    delay target be attached under a given class?
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/hierarchy.h"
#include "net/packet.h"
#include "util/assert.h"

namespace hfq::qos {

struct ValidationIssue {
  std::uint32_t node = 0;   // hierarchy index of the offending class
  double children_rate = 0.0;
  double node_rate = 0.0;
  std::string message;
};

// Checks that every class's children sum to at most its own rate. Returns
// all violations (empty = valid).
[[nodiscard]] std::vector<ValidationIssue> validate(
    const core::Hierarchy& spec);

// Corollary 2 (conservative form): delay bound for a (sigma_bits,
// rho = session rate) constrained session at hierarchy index `leaf` under
// H-WF²Q+ nodes:
//
//   sigma / r_session + sum over ancestor servers n of Lmax / r_n
//   + Lmax / r_link   (the packet's own transmission time)
//
// Returns nullopt if `leaf` is not a session.
[[nodiscard]] std::optional<double> delay_bound(const core::Hierarchy& spec,
                                                std::uint32_t leaf,
                                                double sigma_bits,
                                                double lmax_bits);

// The same bound looked up by flow id.
[[nodiscard]] std::optional<double> delay_bound_for_flow(
    const core::Hierarchy& spec, net::FlowId flow, double sigma_bits,
    double lmax_bits);

// Admission request: attach a new session under class `parent` with the
// given guaranteed rate and (sigma, rho=rate) constraint; the session needs
// end-of-transmission delay at most `target_s`.
struct AdmissionRequest {
  std::uint32_t parent = 0;
  double rate_bps = 0.0;
  double sigma_bits = 0.0;
  double target_s = 0.0;
};

struct AdmissionDecision {
  bool admitted = false;
  double bound_s = 0.0;       // the bound the new session would get
  double headroom_bps = 0.0;  // spare rate under the parent before adding
  std::string reason;
};

// Evaluates the request against the tree (without modifying it): the parent
// must have `rate_bps` of unallocated rate, and the resulting Corollary 2
// bound must meet the target.
[[nodiscard]] AdmissionDecision evaluate(const core::Hierarchy& spec,
                                         const AdmissionRequest& req,
                                         double lmax_bits);

}  // namespace hfq::qos
