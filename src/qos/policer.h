// (sigma, rho) token-bucket policer: drops non-conformant packets.
//
// The enforcement-side counterpart of traffic::LeakyBucketShaper (which
// delays instead). Admission control (qos/admission.h) computes bounds that
// hold for (sigma, rho)-constrained sessions; a policer at the edge makes
// the constraint true by construction for untrusted traffic.
#pragma once

#include <cstdint>

#include "net/packet.h"
#include "util/assert.h"

namespace hfq::qos {

class Policer {
 public:
  Policer(double sigma_bits, double rho_bps)
      : sigma_(sigma_bits), rho_(rho_bps), tokens_(sigma_bits) {
    HFQ_ASSERT(sigma_bits > 0.0);
    HFQ_ASSERT(rho_bps > 0.0);
  }

  // Returns true if the packet conforms (and charges the bucket); false if
  // it must be dropped. Call with non-decreasing timestamps.
  bool conforms(const net::Packet& p, net::Time now) {
    HFQ_ASSERT_MSG(now >= clock_ - 1e-12, "policer time went backwards");
    if (now > clock_) {
      tokens_ += rho_ * (now - clock_);
      if (tokens_ > sigma_) tokens_ = sigma_;
      clock_ = now;
    }
    if (p.size_bits() <= tokens_ + 1e-9) {
      tokens_ -= p.size_bits();
      ++conformant_;
      return true;
    }
    ++dropped_;
    return false;
  }

  [[nodiscard]] std::uint64_t conformant() const noexcept {
    return conformant_;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] double tokens_bits() const noexcept { return tokens_; }

 private:
  double sigma_;
  double rho_;
  double tokens_;
  net::Time clock_ = 0.0;
  std::uint64_t conformant_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace hfq::qos
