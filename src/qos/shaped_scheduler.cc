// ShapedScheduler is header-only; this TU anchors the library target.
#include "qos/shaped_scheduler.h"
