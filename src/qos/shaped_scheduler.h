// Rate-capped scheduling: a Scheduler decorator that shapes selected flows
// to (sigma, rho) envelopes before they reach the inner scheduler.
//
// H-PFQ is work conserving: a class with idle siblings absorbs their
// bandwidth. Deployments often also want an upper bound per class (the
// "ceil" of later hierarchical shapers like Linux HTB). Composing the
// paper's machinery gets exactly that: shape the flow's arrivals to
// (sigma, rho_max) — its Corollary 2 bound then holds with rho = rho_max —
// and let the inner H-WF²Q+ distribute what the shaper admits.
//
// The decorator is itself a net::Scheduler, so links drive it unchanged;
// non-capped flows pass straight through.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "net/packet.h"
#include "net/scheduler.h"
#include "sim/simulator.h"
#include "traffic/leaky_bucket.h"
#include "util/assert.h"

namespace hfq::qos {

class ShapedScheduler : public net::Scheduler {
 public:
  // `inner` must outlive this object (typically both owned side by side).
  ShapedScheduler(sim::Simulator& sim, net::Scheduler& inner)
      : sim_(sim), inner_(inner) {}

  // Caps `flow` to at most rho_bps with burst tolerance sigma_bits.
  void cap_flow(net::FlowId flow, double sigma_bits, double rho_bps) {
    HFQ_ASSERT_MSG(shapers_.count(flow) == 0, "flow capped twice");
    shapers_.emplace(
        flow, std::make_unique<traffic::LeakyBucketShaper>(
                  sim_,
                  [this](net::Packet p) {
                    const net::Time now = sim_.now();
                    net::Packet q = p;
                    q.arrival = now;
                    const bool ok = inner_.enqueue(q, now);
                    if (ok && idle_notify_) idle_notify_();
                    return ok;
                  },
                  sigma_bits, rho_bps));
  }

  // A link normally learns about new work through submit(); shaped packets
  // surface later, so the owner must give us a poke-the-link callback.
  void set_idle_notify(std::function<void()> fn) {
    idle_notify_ = std::move(fn);
  }

  bool enqueue(const net::Packet& p, net::Time now) override {
    const auto it = shapers_.find(p.flow);
    if (it == shapers_.end()) {
      return inner_.enqueue(p, now);
    }
    it->second->offer(p);
    return true;  // accepted by the shaper (released later)
  }

  std::optional<net::Packet> dequeue(net::Time now) override {
    return inner_.dequeue(now);
  }

  [[nodiscard]] std::size_t backlog_packets() const override {
    return inner_.backlog_packets();
  }

 private:
  sim::Simulator& sim_;
  net::Scheduler& inner_;
  std::function<void()> idle_notify_;
  std::map<net::FlowId, std::unique_ptr<traffic::LeakyBucketShaper>> shapers_;
};

}  // namespace hfq::qos
