#include "runner/campaign.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "runner/simulate.h"
#include "runner/thread_pool.h"

namespace hfq::runner {

CampaignResult run_campaign(const CampaignSpec& spec, unsigned jobs,
                            std::size_t only_shard,
                            const std::string& trace_dir) {
  CampaignResult result;
  result.spec = spec;
  result.jobs = jobs == 0 ? ThreadPool::default_jobs() : jobs;

  std::vector<Scenario> grid = spec.expand();
  if (only_shard != SIZE_MAX) {
    if (only_shard >= grid.size()) {
      throw std::runtime_error("campaign: shard index out of range (grid has " +
                               std::to_string(grid.size()) + " shards)");
    }
    grid = {grid[only_shard]};
  }

  result.shards.resize(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    result.shards[i].scenario = std::move(grid[i]);
  }

  if (!trace_dir.empty()) std::filesystem::create_directories(trace_dir);

  ThreadPool pool(result.jobs);
  pool.parallel_for(result.shards.size(), [&](std::size_t i) {
    CampaignShard& shard = result.shards[i];
    try {
      if (trace_dir.empty()) {
        run_scenario(shard.scenario, shard.metrics);
      } else {
        // Per-shard recorder: installation is thread-local, so concurrent
        // workers record into disjoint rings with no synchronization. The
        // export cost is measured and filed under the wall-clock "timing/"
        // prefix, which the determinism check (--verify) already excludes.
        obs::FlightRecorder recorder(1 << 16);
        {
          obs::RecordScope scope(recorder);
          run_scenario(shard.scenario, shard.metrics);
        }
        const auto t0 = std::chrono::steady_clock::now();
        if (recorder.total_recorded() > 0) {
          const std::string base =
              trace_dir + "/shard_" + std::to_string(i);
          std::ofstream json(base + ".json");
          obs::write_chrome_json(json, recorder.snapshot());
          std::ofstream csv(base + ".csv");
          obs::write_csv(csv, recorder.snapshot());
        }
        const std::chrono::duration<double, std::nano> export_ns =
            std::chrono::steady_clock::now() - t0;
        shard.metrics.gauge("timing/trace/events") =
            static_cast<double>(recorder.total_recorded());
        shard.metrics.gauge("timing/trace/overwritten") =
            static_cast<double>(recorder.overwritten());
        shard.metrics.gauge("timing/trace/export_ns") = export_ns.count();
      }
    } catch (const std::exception& e) {
      shard.error = e.what();
    } catch (...) {
      shard.error = "unknown exception";
    }
  });

  // Aggregate strictly in shard-index order after the join, so the merged
  // registry is independent of the worker interleaving.
  for (const CampaignShard& shard : result.shards) {
    if (shard.ok()) result.aggregate.merge(shard.metrics);
  }
  return result;
}

bool campaigns_deterministically_equal(const CampaignResult& a,
                                       const CampaignResult& b,
                                       std::string* why) {
  if (a.shards.size() != b.shards.size()) {
    if (why) {
      std::ostringstream os;
      os << "shard count " << a.shards.size() << " vs " << b.shards.size();
      *why = os.str();
    }
    return false;
  }
  for (std::size_t i = 0; i < a.shards.size(); ++i) {
    const CampaignShard& sa = a.shards[i];
    const CampaignShard& sb = b.shards[i];
    if (sa.error != sb.error) {
      if (why) *why = "shard " + std::to_string(i) + " error state differs";
      return false;
    }
    std::string detail;
    if (!sa.metrics.deterministic_equals(sb.metrics, &detail)) {
      if (why) *why = "shard " + std::to_string(i) + ": " + detail;
      return false;
    }
  }
  std::string detail;
  if (!a.aggregate.deterministic_equals(b.aggregate, &detail)) {
    if (why) *why = "aggregate: " + detail;
    return false;
  }
  return true;
}

}  // namespace hfq::runner
