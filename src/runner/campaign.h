// Campaign driver: expands a CampaignSpec into its shard grid, fans the
// shards out over a worker pool, and merges per-shard metrics into a
// campaign aggregate after the join.
//
// Determinism contract (checked by `hfq_sweep --verify` and the CI smoke
// job): every per-shard deterministic metric, and the aggregate produced by
// merging in shard-index order, is bit-identical for any --jobs value —
// parallelism only changes wall-clock ("timing/") metrics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runner/metrics.h"
#include "runner/scenario.h"
#include "runner/shard.h"

namespace hfq::runner {

struct CampaignShard {
  Scenario scenario;
  MetricsRegistry metrics;
  std::string error;  // empty = ok

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

struct CampaignResult {
  CampaignSpec spec;
  unsigned jobs = 1;
  std::vector<CampaignShard> shards;
  MetricsRegistry aggregate;  // merge of all ok shards, in index order

  [[nodiscard]] bool ok() const {
    for (const CampaignShard& s : shards) {
      if (!s.ok()) return false;
    }
    return !shards.empty();
  }
};

// Runs the whole grid. `only_shard` restricts execution to one shard index
// (standalone replay; pass SIZE_MAX for all). With `trace_dir` non-empty a
// per-shard flight recorder is installed around each run (worker threads
// record independently — the recorder slot is thread-local) and each shard's
// events are written to <trace_dir>/shard_<i>.json (Chrome trace-event) and
// .csv; recording cost lands in the shard's "timing/trace/*" gauges, which
// the determinism contract already excludes. Useful only in an HFQ_TRACE
// build — otherwise the recorders stay empty and no files are written.
[[nodiscard]] CampaignResult run_campaign(const CampaignSpec& spec,
                                          unsigned jobs,
                                          std::size_t only_shard = SIZE_MAX,
                                          const std::string& trace_dir = "");

// Bit-exact comparison of two runs of the same campaign (per-shard
// deterministic metrics and shard count). On mismatch fills `why`.
[[nodiscard]] bool campaigns_deterministically_equal(const CampaignResult& a,
                                                     const CampaignResult& b,
                                                     std::string* why);

}  // namespace hfq::runner
