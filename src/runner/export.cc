#include "runner/export.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace hfq::runner {

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Minimal JSON string escaping (quotes, backslashes, control chars). Metric
// and scenario names are ASCII identifiers in practice, but error strings
// can carry arbitrary exception text.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_metric_objects(std::ostream& os, const MetricsRegistry& m,
                          const std::string& indent) {
  const auto flat = m.flatten(/*deterministic_only=*/false);
  os << indent << "\"metrics\": {";
  bool first = true;
  for (const auto& [name, value] : flat) {
    if (MetricsRegistry::is_timing(name)) continue;
    os << (first ? "\n" : ",\n") << indent << "  \"" << json_escape(name)
       << "\": " << fmt_double(value);
    first = false;
  }
  os << (first ? "" : "\n" + indent) << "},\n";
  os << indent << "\"timing\": {";
  first = true;
  for (const auto& [name, value] : flat) {
    if (!MetricsRegistry::is_timing(name)) continue;
    os << (first ? "\n" : ",\n") << indent << "  \"" << json_escape(name)
       << "\": " << fmt_double(value);
    first = false;
  }
  os << (first ? "" : "\n" + indent) << "}";
}

void write_scenario_fields(std::ostream& os, const Scenario& sc,
                           const std::string& indent) {
  os << indent << "\"index\": " << sc.index << ",\n"
     << indent << "\"seed\": " << sc.seed << ",\n"
     << indent << "\"scheduler\": \"" << json_escape(sc.scheduler) << "\",\n"
     << indent << "\"tree\": \"" << json_escape(sc.tree_name) << "\",\n"
     << indent << "\"load\": " << fmt_double(sc.load) << ",\n"
     << indent << "\"traffic\": \"" << json_escape(sc.traffic) << "\",\n"
     << indent << "\"repeat\": " << sc.repeat << ",\n"
     << indent << "\"duration_s\": " << fmt_double(sc.duration_s) << ",\n"
     << indent << "\"packet_bytes\": " << sc.packet_bytes << ",\n";
}

}  // namespace

void write_campaign_json(std::ostream& os, const CampaignResult& result) {
  os << "{\n";
  os << "  \"schema\": \"hfq-campaign-v1\",\n";
  os << "  \"campaign\": \"" << json_escape(result.spec.name) << "\",\n";
  os << "  \"campaign_seed\": " << result.spec.seed << ",\n";
  os << "  \"jobs\": " << result.jobs << ",\n";
  os << "  \"ok\": " << (result.ok() ? "true" : "false") << ",\n";
  os << "  \"shards\": [\n";
  for (std::size_t i = 0; i < result.shards.size(); ++i) {
    const CampaignShard& shard = result.shards[i];
    os << "    {\n";
    write_scenario_fields(os, shard.scenario, "      ");
    os << "      \"error\": \"" << json_escape(shard.error) << "\",\n";
    write_metric_objects(os, shard.metrics, "      ");
    os << "\n    }" << (i + 1 < result.shards.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"aggregate\": {\n";
  write_metric_objects(os, result.aggregate, "    ");
  os << "\n  }\n";
  os << "}\n";
}

void write_campaign_csv(std::ostream& os, const CampaignResult& result) {
  os << "index,scheduler,tree,load,traffic,repeat,seed,metric,value\n";
  for (const CampaignShard& shard : result.shards) {
    const Scenario& sc = shard.scenario;
    for (const auto& [name, value] : shard.metrics.flatten(false)) {
      os << sc.index << ',' << sc.scheduler << ',' << sc.tree_name << ','
         << fmt_double(sc.load) << ',' << sc.traffic << ',' << sc.repeat << ','
         << sc.seed << ',' << name << ',' << fmt_double(value) << '\n';
    }
  }
}

namespace {

template <typename Writer>
void write_file(const std::string& path, const CampaignResult& result,
                Writer writer) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("export: cannot open " + path);
  writer(f, result);
  if (!f) throw std::runtime_error("export: write failed for " + path);
}

}  // namespace

void write_campaign_json_file(const std::string& path,
                              const CampaignResult& result) {
  write_file(path, result, write_campaign_json);
}

void write_campaign_csv_file(const std::string& path,
                             const CampaignResult& result) {
  write_file(path, result, write_campaign_csv);
}

}  // namespace hfq::runner
