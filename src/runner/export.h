// Campaign result exporters.
//
// JSON ("hfq-campaign-v1"): one self-describing perf record per campaign —
// the spec, per-shard scenario + metrics, and the index-order aggregate.
// Deterministic metrics and wall-clock "timing/" metrics are kept in
// separate objects so tooling can diff the former bit-exactly and treat the
// latter as advisory. Doubles are printed with %.17g (round-trip exact).
//
// CSV: long format, one row per (shard, metric) —
//   index,scheduler,tree,load,traffic,repeat,seed,metric,value
// which loads directly into pandas/gnuplot without per-campaign schemas.
#pragma once

#include <iosfwd>
#include <string>

#include "runner/campaign.h"

namespace hfq::runner {

void write_campaign_json(std::ostream& os, const CampaignResult& result);
void write_campaign_csv(std::ostream& os, const CampaignResult& result);

// Convenience wrappers; throw std::runtime_error when the file cannot be
// opened.
void write_campaign_json_file(const std::string& path,
                              const CampaignResult& result);
void write_campaign_csv_file(const std::string& path,
                             const CampaignResult& result);

}  // namespace hfq::runner
