#include "runner/metrics.h"

#include <algorithm>
#include <cstdio>

#include "util/assert.h"

namespace hfq::runner {

std::uint64_t& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

double& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

stats::RunningMoments& MetricsRegistry::moments(const std::string& name) {
  return moments_[name];
}

stats::P2Quantile& MetricsRegistry::quantile(const std::string& name,
                                             double q) {
  auto it = quantiles_.find(name);
  if (it == quantiles_.end()) {
    it = quantiles_.emplace(name, Quantile{q, stats::P2Quantile(q)}).first;
  }
  HFQ_ASSERT_MSG(it->second.q == q, "quantile re-registered with different q");
  return it->second.est;
}

stats::Histogram& MetricsRegistry::histogram(const std::string& name,
                                             double bin_width,
                                             std::size_t bin_count) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, Hist{bin_width, bin_count,
                                 stats::Histogram(bin_width, bin_count)})
             .first;
  }
  HFQ_ASSERT_MSG(
      it->second.bin_width == bin_width && it->second.bin_count == bin_count,
      "histogram re-registered with a different layout");
  return it->second.h;
}

bool MetricsRegistry::is_timing(const std::string& name) {
  return name.rfind("timing/", 0) == 0;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
  for (const auto& [name, v] : other.gauges_) gauges_[name] += v;
  for (const auto& [name, m] : other.moments_) moments_[name].merge(m);
  for (const auto& [name, qm] : other.quantiles_) {
    quantile(name, qm.q).merge(qm.est);
  }
  for (const auto& [name, hm] : other.histograms_) {
    histogram(name, hm.bin_width, hm.bin_count).merge(hm.h);
  }
}

std::vector<std::pair<std::string, double>> MetricsRegistry::flatten(
    bool deterministic_only) const {
  std::vector<std::pair<std::string, double>> out;
  auto keep = [deterministic_only](const std::string& name) {
    return !(deterministic_only && is_timing(name));
  };
  for (const auto& [name, v] : counters_) {
    if (keep(name)) out.emplace_back(name, static_cast<double>(v));
  }
  for (const auto& [name, v] : gauges_) {
    if (keep(name)) out.emplace_back(name, v);
  }
  for (const auto& [name, m] : moments_) {
    if (!keep(name)) continue;
    out.emplace_back(name + "/count", static_cast<double>(m.count()));
    out.emplace_back(name + "/mean", m.mean());
    out.emplace_back(name + "/min", m.min());
    out.emplace_back(name + "/max", m.max());
    out.emplace_back(name + "/stddev", m.stddev());
  }
  for (const auto& [name, qm] : quantiles_) {
    if (!keep(name)) continue;
    out.emplace_back(name + "/count", static_cast<double>(qm.est.count()));
    out.emplace_back(name + "/value", qm.est.value());
  }
  for (const auto& [name, hm] : histograms_) {
    if (!keep(name)) continue;
    for (std::size_t i = 0; i < hm.h.bin_count(); ++i) {
      if (hm.h.bin(i) != 0) {
        char key[32];
        std::snprintf(key, sizeof(key), "/bin%zu", i);
        out.emplace_back(name + key, static_cast<double>(hm.h.bin(i)));
      }
    }
    out.emplace_back(name + "/overflow", static_cast<double>(hm.h.overflow()));
    out.emplace_back(name + "/total", static_cast<double>(hm.h.total()));
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool MetricsRegistry::deterministic_equals(const MetricsRegistry& other,
                                           std::string* why) const {
  const auto a = flatten(true);
  const auto b = other.flatten(true);
  if (a.size() != b.size()) {
    if (why != nullptr) *why = "metric sets differ in size";
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].first != b[i].first) {
      if (why != nullptr) *why = "metric name mismatch: " + a[i].first +
                                 " vs " + b[i].first;
      return false;
    }
    if (a[i].second != b[i].second) {
      if (why != nullptr) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), ": %.17g vs %.17g", a[i].second,
                      b[i].second);
        *why = a[i].first + buf;
      }
      return false;
    }
  }
  return true;
}

}  // namespace hfq::runner
