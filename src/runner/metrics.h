// MetricsRegistry — named counters, gauges, and streaming statistics that a
// simulation shard populates while it runs.
//
// Concurrency model: a registry is single-owner. Every worker thread owns
// the registry of the shard it is executing (no shared mutable state, no
// locks on the hot path); the campaign driver merges the per-shard
// registries after the pool joins, in shard-index order, so the aggregate
// is identical for any --jobs value. Merge semantics per metric kind:
//   counter    sum (exact)
//   gauge      last-write on the owner; merge takes the sum (callers that
//              want per-shard gauges read them from the shard registry)
//   moments    stats::RunningMoments::merge (Chan) — exact count/min/max,
//              mean/variance to FP rounding
//   histogram  stats::Histogram::merge — exact, same bin layout required
//   quantile   stats::P2Quantile::merge — approximate, documented bound
//
// Names are free-form strings; the "timing/" prefix is reserved for
// wall-clock measurements (throughput, ns per event), which are excluded
// from determinism comparisons and flagged in exports — everything else
// must be a pure function of (scenario, seed).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "stats/histogram.h"
#include "stats/quantile.h"

namespace hfq::runner {

class MetricsRegistry {
 public:
  // Accessors create the metric on first use; later calls must agree on the
  // configuration (quantile q, histogram layout).
  std::uint64_t& counter(const std::string& name);
  double& gauge(const std::string& name);
  stats::RunningMoments& moments(const std::string& name);
  stats::P2Quantile& quantile(const std::string& name, double q);
  stats::Histogram& histogram(const std::string& name, double bin_width,
                              std::size_t bin_count);

  // True when the "timing/" convention marks `name` as wall-clock-derived
  // (excluded from determinism comparisons).
  [[nodiscard]] static bool is_timing(const std::string& name);

  // Folds `other` into this registry (union of names; see the per-kind
  // semantics above). Metrics present in both must have matching
  // configurations.
  void merge(const MetricsRegistry& other);

  // Flattens every metric to (name, value) scalars in lexicographic order:
  //   counter c          -> "c"
  //   gauge g            -> "g"
  //   moments m          -> "m/count", "m/mean", "m/min", "m/max", "m/stddev"
  //   quantile p         -> "p/count", "p/value"
  //   histogram h        -> "h/bin<i>" (non-empty bins), "h/overflow",
  //                         "h/total"
  // With `deterministic_only`, "timing/" metrics are dropped — the rest is
  // the shard's determinism fingerprint (compared bit-exactly).
  [[nodiscard]] std::vector<std::pair<std::string, double>> flatten(
      bool deterministic_only) const;

  // Bit-exact equality of the deterministic flattening; on mismatch `why`
  // (if non-null) names the first diverging entry.
  [[nodiscard]] bool deterministic_equals(const MetricsRegistry& other,
                                          std::string* why = nullptr) const;

 private:
  struct Quantile {
    double q = 0.0;
    stats::P2Quantile est{0.5};
  };
  struct Hist {
    double bin_width = 0.0;
    std::size_t bin_count = 0;
    stats::Histogram h{1.0, 1};
  };

  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, stats::RunningMoments> moments_;
  std::map<std::string, Quantile> quantiles_;
  std::map<std::string, Hist> histograms_;
};

}  // namespace hfq::runner
