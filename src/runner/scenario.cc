#include "runner/scenario.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "runner/splitmix.h"

namespace hfq::runner {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& line) {
  throw std::runtime_error("campaign: " + what + " in line '" + line + "'");
}

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream ls(line);
  std::vector<std::string> toks;
  std::string t;
  while (ls >> t) toks.push_back(t);
  return toks;
}

// Parses "key=value" off a token; returns false if the key does not match.
bool attr(const std::string& tok, const std::string& key, std::string& out) {
  if (tok.rfind(key + "=", 0) != 0) return false;
  out = tok.substr(key.size() + 1);
  return true;
}

double parse_rate(const std::string& tok, const std::string& line) {
  std::size_t idx = 0;
  double v = 0.0;
  try {
    v = std::stod(tok, &idx);
  } catch (const std::exception&) {
    fail("bad rate '" + tok + "'", line);
  }
  double mult = 1.0;
  if (idx + 1 == tok.size()) {
    switch (tok[idx]) {
      case 'k':
      case 'K':
        mult = 1e3;
        break;
      case 'M':
        mult = 1e6;
        break;
      case 'G':
        mult = 1e9;
        break;
      default:
        fail("bad rate suffix '" + tok + "'", line);
    }
  } else if (idx != tok.size()) {
    fail("bad rate '" + tok + "'", line);
  }
  if (v <= 0.0) fail("rate must be positive", line);
  return v * mult;
}

// Collects the body of a `{ ... }` block verbatim, the opening '{' having
// already been consumed on `line`. Braces inside '#' comments don't count.
std::string collect_block(std::istream& in, const std::string& line) {
  std::ostringstream body;
  int depth = 1;
  std::string tline;
  while (depth > 0 && std::getline(in, tline)) {
    std::string scan = tline;
    const auto h = scan.find('#');
    if (h != std::string::npos) scan.erase(h);
    for (const char ch : scan) {
      if (ch == '{') ++depth;
      if (ch == '}') --depth;
    }
    if (depth == 0) {
      // Drop the final closing brace (everything before it is body).
      const auto close = scan.rfind('}');
      body << scan.substr(0, close) << '\n';
    } else {
      body << tline << '\n';
    }
  }
  if (depth != 0) fail("unterminated block", line);
  return body.str();
}

void synth_subtree(std::ostringstream& os, int fanout, int levels_left,
                   double rate, const std::string& prefix, int indent,
                   int& next_flow) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  char rate_buf[32];
  std::snprintf(rate_buf, sizeof(rate_buf), "%.17g",
                rate / static_cast<double>(fanout));
  for (int c = 0; c < fanout; ++c) {
    const std::string name = prefix + std::to_string(c);
    if (levels_left == 1) {
      os << pad << "s" << name << ' ' << rate_buf << " flow=" << next_flow++
         << '\n';
    } else {
      os << pad << "c" << name << ' ' << rate_buf << " {\n";
      synth_subtree(os, fanout, levels_left - 1,
                    rate / static_cast<double>(fanout), name + "_",
                    indent + 1, next_flow);
      os << pad << "}\n";
    }
  }
}

}  // namespace

std::string Scenario::label() const {
  std::ostringstream os;
  os << "sched=" << scheduler << " tree=" << tree_name << " load=" << load
     << " traffic=" << traffic << " rep=" << repeat;
  if (batched_link) os << " batched=1";
  return os.str();
}

std::vector<Scenario> CampaignSpec::expand() const {
  if (schedulers.empty()) throw std::runtime_error("campaign: no schedulers");
  if (trees.empty()) throw std::runtime_error("campaign: no trees");
  if (repeats < 1) throw std::runtime_error("campaign: repeats < 1");
  if (duration_s <= 0.0) throw std::runtime_error("campaign: duration <= 0");
  const std::vector<double> load_axis = loads.empty() ? std::vector<double>{1.0}
                                                      : loads;
  const std::vector<std::string> traffic_axis =
      traffics.empty() ? std::vector<std::string>{"cbr"} : traffics;

  std::vector<Scenario> out;
  for (const std::string& sched : schedulers) {
    for (const Tree& tree : trees) {
      for (const double load : load_axis) {
        for (const std::string& traffic : traffic_axis) {
          for (int rep = 0; rep < repeats; ++rep) {
            Scenario sc;
            sc.campaign = name;
            sc.tree_name = tree.name;
            sc.tree_text = tree.text;
            sc.scheduler = sched;
            sc.traffic = traffic;
            sc.load = load;
            sc.duration_s = duration_s;
            sc.packet_bytes = packet_bytes;
            sc.batched_link = batched_link;
            sc.repeat = rep;
            sc.index = out.size();
            sc.seed = derive_shard_seed(seed, sc.index);
            out.push_back(std::move(sc));
          }
        }
      }
    }
  }
  return out;
}

CampaignSpec parse_campaign(std::istream& in) {
  CampaignSpec spec;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::vector<std::string> toks = tokenize(line);
    if (toks.empty()) continue;
    const std::string& key = toks[0];
    auto need = [&](std::size_t n) {
      if (toks.size() < 1 + n) fail("missing value(s)", line);
    };
    if (key == "campaign") {
      need(1);
      spec.name = toks[1];
    } else if (key == "seed") {
      need(1);
      spec.seed = std::stoull(toks[1]);
    } else if (key == "duration") {
      need(1);
      spec.duration_s = std::stod(toks[1]);
    } else if (key == "packet-bytes") {
      need(1);
      spec.packet_bytes = static_cast<std::uint32_t>(std::stoul(toks[1]));
    } else if (key == "repeats") {
      need(1);
      spec.repeats = std::stoi(toks[1]);
    } else if (key == "batched-link") {
      need(1);
      if (toks[1] != "0" && toks[1] != "1") {
        fail("batched-link takes 0 or 1", line);
      }
      spec.batched_link = toks[1] == "1";
    } else if (key == "schedulers") {
      need(1);
      for (std::size_t i = 1; i < toks.size(); ++i) {
        const auto& known = known_schedulers();
        if (std::find(known.begin(), known.end(), toks[i]) == known.end()) {
          fail("unknown scheduler '" + toks[i] + "'", line);
        }
        spec.schedulers.push_back(toks[i]);
      }
    } else if (key == "loads") {
      need(1);
      for (std::size_t i = 1; i < toks.size(); ++i) {
        const double v = std::stod(toks[i]);
        if (v <= 0.0) fail("load must be positive", line);
        spec.loads.push_back(v);
      }
    } else if (key == "traffic") {
      need(1);
      for (std::size_t i = 1; i < toks.size(); ++i) {
        const auto& known = known_traffics();
        if (std::find(known.begin(), known.end(), toks[i]) == known.end()) {
          fail("unknown traffic kind '" + toks[i] + "'", line);
        }
        spec.traffics.push_back(toks[i]);
      }
    } else if (key == "tree") {
      need(1);
      CampaignSpec::Tree tree;
      tree.name = toks[1];
      const bool inline_tree = !toks.empty() && toks.back() == "{";
      if (inline_tree) {
        // Collect verbatim tree_parser text until the opening brace's match.
        // The '{' that opened the block is not part of the tree text.
        tree.text = collect_block(in, line);
      } else {
        int fanout = 0, depth = 0;
        double link_bps = 8e6;
        for (std::size_t i = 2; i < toks.size(); ++i) {
          std::string v;
          if (attr(toks[i], "fanout", v)) {
            fanout = std::stoi(v);
          } else if (attr(toks[i], "depth", v)) {
            depth = std::stoi(v);
          } else if (attr(toks[i], "link", v)) {
            link_bps = parse_rate(v, line);
          } else {
            fail("unknown tree attribute '" + toks[i] + "'", line);
          }
        }
        if (fanout < 2 || depth < 1) {
          fail("synthetic tree needs fanout>=2 depth>=1", line);
        }
        tree.text = synth_tree(fanout, depth, link_bps);
      }
      spec.trees.push_back(std::move(tree));
    } else if (key == "serve-shards") {
      need(1);
      spec.serve.shards = std::stoul(toks[1]);
    } else if (key == "serve-producers") {
      need(1);
      spec.serve.producers = std::stoul(toks[1]);
      if (spec.serve.producers == 0) fail("serve-producers must be >= 1", line);
    } else if (key == "serve-ring-bits") {
      need(1);
      const int bits = std::stoi(toks[1]);
      if (bits < 1 || bits > 30) fail("serve-ring-bits takes 1..30", line);
      spec.serve.ring_capacity = std::size_t{1} << bits;
    } else if (key == "serve-paced") {
      need(1);
      if (toks[1] != "0" && toks[1] != "1") fail("serve-paced takes 0 or 1",
                                                 line);
      spec.serve.paced = toks[1] == "1";
    } else if (key == "serve-horizon-us") {
      need(1);
      spec.serve.horizon_us = std::stod(toks[1]);
      if (spec.serve.horizon_us <= 0.0) {
        fail("serve-horizon-us must be positive", line);
      }
    } else if (key == "serve-telemetry") {
      need(1);
      if (toks[1] != "off" && toks[1] != "counters" && toks[1] != "monitor") {
        fail("serve-telemetry takes off|counters|monitor", line);
      }
      spec.serve.telemetry = toks[1];
    } else if (key == "serve-telemetry-period") {
      need(1);
      spec.serve.telemetry_period_s = std::stod(toks[1]);
      if (spec.serve.telemetry_period_s <= 0.0) {
        fail("serve-telemetry-period must be positive", line);
      }
    } else if (key == "serve-telemetry-slack") {
      need(1);
      spec.serve.telemetry_slack_s = std::stod(toks[1]);
      if (spec.serve.telemetry_slack_s < 0.0) {
        fail("serve-telemetry-slack must be >= 0", line);
      }
    } else if (key == "serve-edit") {
      need(1);
      if (toks.back() != "{") fail("serve-edit needs '<at_s> {'", line);
      ServeSpec::Edit edit;
      edit.at_s = std::stod(toks[1]);
      if (edit.at_s < 0.0) fail("serve-edit time must be >= 0", line);
      edit.text = collect_block(in, line);
      spec.serve.edits.push_back(std::move(edit));
    } else {
      fail("unknown directive '" + key + "'", line);
    }
  }
  std::stable_sort(spec.serve.edits.begin(), spec.serve.edits.end(),
                   [](const ServeSpec::Edit& a, const ServeSpec::Edit& b) {
                     return a.at_s < b.at_s;
                   });
  return spec;
}

CampaignSpec parse_campaign_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("campaign: cannot open " + path);
  return parse_campaign(f);
}

std::string synth_tree(int fanout, int depth, double link_bps) {
  std::ostringstream os;
  char rate_buf[32];
  std::snprintf(rate_buf, sizeof(rate_buf), "%.17g", link_bps);
  os << "link " << rate_buf << '\n';
  int next_flow = 0;
  synth_subtree(os, fanout, depth, link_bps, "", 0, next_flow);
  return os.str();
}

const std::vector<std::string>& known_schedulers() {
  static const std::vector<std::string> k = {
      "hwf2q+",      "hwfq",  "hwf2q",      "hscfq",    "hsfq",
      "hdrr",        "happrox-wfq", "wf2q+", "wf2q+fixed",
      "hwf2q+cal",   "wf2q+cal",    "wf2q+fixedcal"};
  return k;
}

const std::vector<std::string>& known_traffics() {
  static const std::vector<std::string> k = {"cbr", "poisson", "onoff",
                                             "mixed"};
  return k;
}

}  // namespace hfq::runner
