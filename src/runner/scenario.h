// Scenario and campaign specifications for the experiment runner.
//
// A Scenario is one fully-specified simulation: a link-sharing tree (in the
// core/tree_parser text format), a scheduler variant, a traffic mix, a
// duration, and a derived seed. A CampaignSpec is the parameter grid the
// sweep CLI expands — schedulers × trees × loads × traffic kinds × repeats
// — into a shard list, one Scenario per shard, in a fixed lexicographic
// order so shard indices (and therefore derived seeds) are stable across
// runs and thread counts.
//
// Campaign file format (whitespace-tokenized lines, '#' to EOL comments):
//
//   campaign <name>
//   seed <u64>                  # campaign seed (default 1)
//   duration <seconds>          # per-shard source run time (default 1.0)
//   packet-bytes <n>            # packet size for all sources (default 1000)
//   repeats <n>                 # seeds per grid point (default 1)
//   schedulers <key>...         # hwf2q+ hwfq ... | wf2q+ wf2q+fixed (flat SoA)
//   loads <x>...                # offered load / guaranteed rate (e.g. 0.9 1.5)
//   traffic <kind>...           # cbr | poisson | onoff | mixed
//   tree <name> fanout=<f> depth=<d> [link=<rate>]   # synthetic balanced tree
//   tree <name> {               # inline core/tree_parser text
//     link 8M
//     ...
//   }
//
// Service-mode directives (consumed by `hfq_sweep --serve`, which runs the
// campaign grid through the live multi-core service instead of the
// discrete-event simulation; ignored by plain `hfq_sweep`):
//
//   serve-shards <n>            # shard threads (default 4)
//   serve-producers <n>         # load-generator threads (default 2)
//   serve-ring-bits <b>         # per-shard ingress ring = 2^b slots (default 16)
//   serve-paced <0|1>           # 1: wall-clock pacing; 0: blast/bench (default 1)
//   serve-horizon-us <x>        # paced-mode commit window (default 100)
//   serve-edit <at_s> {         # live hierarchy edit batch at t=<at_s> seconds
//     s0 4M                     #   (serve/edits.h grammar: re-weight / add /
//     remove s1                 #    remove, applied without draining)
//   }
//
// Synthetic trees split the link rate equally at every level; each leaf is
// a session with flow id = leaf ordinal. `depth` counts class levels above
// the sessions (depth=1: fanout sessions under the link; depth=2: fanout
// classes × fanout sessions; ...).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace hfq::runner {

struct Scenario {
  std::string campaign;
  std::string tree_name;
  std::string tree_text;  // core/tree_parser format
  std::string scheduler;  // variant key, see known_schedulers()
  std::string traffic;    // "cbr" | "poisson" | "onoff" | "mixed"
  double load = 1.0;      // offered rate / guaranteed rate, per leaf
  double duration_s = 1.0;
  std::uint32_t packet_bytes = 1000;
  // Drain the link in bursts (sim::Link::set_batched) — safe because every
  // runner source is open-loop. Changes tie ordering at shared instants, so
  // deterministic metrics are only comparable within one setting; off by
  // default to keep existing campaign outputs stable.
  bool batched_link = false;
  int repeat = 0;         // repeat ordinal within the grid point
  std::size_t index = 0;  // shard index in the expanded grid
  std::uint64_t seed = 0; // derive_shard_seed(campaign seed, index)

  // Stable one-line label for tables and JSON ("sched=... tree=... ...").
  [[nodiscard]] std::string label() const;
};

// Service-mode parameters (see header comment). Shared by every scenario of
// the campaign; only `hfq_sweep --serve` reads them.
struct ServeSpec {
  std::size_t shards = 4;
  std::size_t producers = 2;
  std::size_t ring_capacity = 1 << 16;
  bool paced = true;
  double horizon_us = 100.0;
  // Telemetry plane level: "off", "counters", or "monitor" (the default —
  // telemetry is always-on unless a bench explicitly sheds it).
  std::string telemetry = "monitor";
  double telemetry_period_s = 0.5;   // plane epoch
  double telemetry_slack_s = 0.05;   // bound-monitor jitter allowance

  struct Edit {
    double at_s = 0.0;   // service-clock time to apply the batch
    std::string text;    // serve/edits.h batch grammar
  };
  std::vector<Edit> edits;  // kept sorted by at_s by the parser
};

struct CampaignSpec {
  struct Tree {
    std::string name;
    std::string text;
  };

  std::string name = "campaign";
  std::uint64_t seed = 1;
  double duration_s = 1.0;
  std::uint32_t packet_bytes = 1000;
  int repeats = 1;
  bool batched_link = false;  // `batched-link 1` directive
  std::vector<std::string> schedulers;
  std::vector<Tree> trees;
  std::vector<double> loads;
  std::vector<std::string> traffics;
  ServeSpec serve;

  // Expands the grid in fixed order: scheduler (outermost) × tree × load ×
  // traffic × repeat (innermost). Shard seeds are derived from `seed` and
  // the linear index. Throws std::runtime_error on an empty/invalid grid.
  [[nodiscard]] std::vector<Scenario> expand() const;
};

// Parses the campaign file format above. Throws std::runtime_error with the
// offending line on error.
[[nodiscard]] CampaignSpec parse_campaign(std::istream& in);
[[nodiscard]] CampaignSpec parse_campaign_file(const std::string& path);

// Synthetic balanced tree in tree_parser text form (see header comment).
[[nodiscard]] std::string synth_tree(int fanout, int depth, double link_bps);

// Scheduler variant keys run_scenario() accepts.
[[nodiscard]] const std::vector<std::string>& known_schedulers();
// Traffic kinds run_scenario() accepts.
[[nodiscard]] const std::vector<std::string>& known_traffics();

}  // namespace hfq::runner
