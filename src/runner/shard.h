// Generic sharded fan-out: the layer between the thread pool and the
// scenario-level campaign driver.
//
// A shard is (index, derived seed, its own MetricsRegistry). run_shards()
// executes `body` once per shard across the pool; exceptions become the
// shard's error string instead of escaping a worker thread. Because a
// shard's inputs are exactly (campaign_seed, index) and its outputs live in
// its own slot, the result vector is identical for every jobs count — the
// determinism contract `hfq_sweep --verify` checks end to end.
//
// Used by run_campaign() for scenario grids, by the ported benches
// (bench_table_wfi_vs_n, bench_sched_complexity --campaign) for their cell
// grids, and by fuzz_sched_diff --jobs for seed ranges.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "runner/metrics.h"
#include "runner/splitmix.h"
#include "runner/thread_pool.h"

namespace hfq::runner {

struct ShardRun {
  std::size_t index = 0;
  std::uint64_t seed = 0;  // derive_shard_seed(campaign_seed, index)
  MetricsRegistry metrics;
  std::string error;  // empty = ok

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

inline std::vector<ShardRun> run_shards(
    std::uint64_t campaign_seed, std::size_t count, const ThreadPool& pool,
    const std::function<void(ShardRun&)>& body) {
  std::vector<ShardRun> shards(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards[i].index = i;
    shards[i].seed = derive_shard_seed(campaign_seed, i);
  }
  pool.parallel_for(count, [&](std::size_t i) {
    try {
      body(shards[i]);
    } catch (const std::exception& e) {
      shards[i].error = e.what();
    } catch (...) {
      shards[i].error = "unknown exception";
    }
  });
  return shards;
}

}  // namespace hfq::runner
