#include "runner/simulate.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/hierarchy.h"
#include "core/hpfq.h"
#include "core/tree_parser.h"
#include "core/wf2qplus.h"
#include "core/wf2qplus_fixed.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "traffic/cbr.h"
#include "traffic/onoff.h"
#include "traffic/poisson.h"
#include "util/rng.h"

namespace hfq::runner {

namespace {

// On/off sources burst at 4x the average rate, 25 ms on / 75 ms off — the
// paper's RT-1 duty cycle generalized to an arbitrary average rate.
constexpr double kOnOffPeakFactor = 4.0;
constexpr double kOnS = 0.025;
constexpr double kOffS = 0.075;

struct Leaf {
  std::string name;
  net::FlowId flow;
  double rate_bps;
};

std::vector<Leaf> leaves_of(const core::Hierarchy& spec) {
  std::vector<Leaf> out;
  for (std::uint32_t i = 1; i < spec.size(); ++i) {
    const auto& n = spec.node(i);
    if (n.leaf) out.push_back(Leaf{n.name, n.flow, n.rate_bps});
  }
  return out;
}

// Instantiates a flat (depth-1) SoA scheduler: every non-root node must be a
// session directly under the link. The flat variants are the datapath-
// optimized schedulers the serve/ shards run, and the only ones with
// live-edit support.
template <typename Sched, typename LinkRate>
std::unique_ptr<net::Scheduler> build_flat(
    const std::string& key, const core::Hierarchy& spec,
    sched::EligEngine engine = sched::default_elig_engine()) {
  auto sched = std::make_unique<Sched>(static_cast<LinkRate>(spec.link_rate()),
                                       engine);
  for (std::uint32_t i = 1; i < spec.size(); ++i) {
    const auto& n = spec.node(i);
    if (!n.leaf || n.parent != 0) {
      throw std::runtime_error("runner: scheduler '" + key +
                               "' is flat; node '" + n.name +
                               "' must be a session directly under the link");
    }
    sched->add_flow(n.flow, n.rate_bps, n.capacity_packets);
  }
  return sched;
}

}  // namespace

std::unique_ptr<net::Scheduler> build_scheduler(const std::string& key,
                                                const core::Hierarchy& spec) {
  if (key == "hwf2q+") return spec.build_packet<core::Wf2qPlusPolicy>();
  if (key == "hwfq") return spec.build_packet<core::GpsSffPolicy>();
  if (key == "hwf2q") return spec.build_packet<core::GpsSeffPolicy>();
  if (key == "hscfq") return spec.build_packet<core::ScfqPolicy>();
  if (key == "hsfq") return spec.build_packet<core::SfqPolicy>();
  if (key == "hdrr") return spec.build_packet<core::DrrPolicy>();
  if (key == "happrox-wfq") return spec.build_packet<core::ApproxWfqPolicy>();
  if (key == "wf2q+") return build_flat<core::Wf2qPlus, double>(key, spec);
  if (key == "wf2q+fixed") {
    return build_flat<core::Wf2qPlusFixed, std::uint64_t>(key, spec);
  }
  // Explicit calendar-engine variants: same algorithms, TagCalendar eligible
  // sets (sched/calendar.h). Schedules are bit-identical to the heap keys.
  if (key == "hwf2q+cal") return spec.build_packet<core::Wf2qPlusCalPolicy>();
  if (key == "wf2q+cal") {
    return build_flat<core::Wf2qPlus, double>(key, spec,
                                              sched::EligEngine::kCalendar);
  }
  if (key == "wf2q+fixedcal") {
    return build_flat<core::Wf2qPlusFixed, std::uint64_t>(
        key, spec, sched::EligEngine::kCalendar);
  }
  throw std::runtime_error("runner: unknown scheduler variant '" + key + "'");
}

void run_scenario(const Scenario& sc, MetricsRegistry& m) {
  const auto wall0 = std::chrono::steady_clock::now();

  const core::Hierarchy spec = core::parse_hierarchy(sc.tree_text);
  const std::vector<Leaf> leaves = leaves_of(spec);
  if (leaves.empty()) throw std::runtime_error("runner: tree has no sessions");

  auto sched = build_scheduler(sc.scheduler, spec);
  sim::Simulator sim;
  sim::Link link(sim, *sched, spec.link_rate());
  // Every runner source (cbr/poisson/onoff) is open-loop, satisfying the
  // batched drain's requirement that deliveries never inject traffic.
  if (sc.batched_link) link.set_batched(true);

  // Delay metrics in seconds; histogram bins of one link packet time cover
  // delays up to 512 packet times, beyond which the overflow bucket counts.
  const double pkt_time = 8.0 * sc.packet_bytes / spec.link_rate();
  stats::Histogram& delay_hist = m.histogram("delay/hist", pkt_time, 512);
  stats::RunningMoments& delay_all = m.moments("delay/all");
  stats::P2Quantile& delay_p99 = m.quantile("delay/p99", 0.99);

  // Per-leaf metric slots resolved up front: map insertions don't move
  // existing nodes, so the references stay valid for the whole run and the
  // delivery path does no string building.
  struct LeafMetrics {
    stats::RunningMoments* delay = nullptr;
    std::uint64_t* service_bits = nullptr;
  };
  net::FlowId max_flow = 0;
  for (const Leaf& leaf : leaves) max_flow = std::max(max_flow, leaf.flow);
  std::vector<LeafMetrics> by_flow(max_flow + 1);
  for (const Leaf& leaf : leaves) {
    by_flow[leaf.flow].delay = &m.moments("delay/leaf/" + leaf.name);
    by_flow[leaf.flow].service_bits =
        &m.counter("service/leaf/" + leaf.name + "/bits");
  }
  std::uint64_t& delivered = m.counter("packets/delivered");
  std::uint64_t& offered = m.counter("packets/offered");
  std::uint64_t& dropped = m.counter("packets/dropped");

  link.set_delivery([&](const net::Packet& p, net::Time t) {
    const double d = t - p.created;
    ++delivered;
    delay_all.add(d);
    delay_p99.add(d);
    delay_hist.add(d);
    const LeafMetrics& lm = by_flow[p.flow];
    lm.delay->add(d);
    *lm.service_bits += static_cast<std::uint64_t>(p.size_bits());
  });

  // Sources stamp `created` themselves (make_packet); the wrapper only
  // counts offers and drops.
  auto emit = [&](net::Packet p) {
    ++offered;
    if (!link.submit(std::move(p))) ++dropped;
    return true;
  };

  util::Rng rng(sc.seed);
  std::vector<std::unique_ptr<traffic::SourceBase>> sources;
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    const Leaf& leaf = leaves[i];
    const double rate = leaf.rate_bps * sc.load;
    std::string kind = sc.traffic;
    if (kind == "mixed") {
      static const char* kKinds[] = {"cbr", "poisson", "onoff"};
      kind = kKinds[i % 3];
    }
    if (kind == "cbr") {
      auto src = std::make_unique<traffic::CbrSource>(
          sim, emit, leaf.flow, sc.packet_bytes, rate);
      src->start(0.0, sc.duration_s);
      sources.push_back(std::move(src));
    } else if (kind == "poisson") {
      auto src = std::make_unique<traffic::PoissonSource>(
          sim, emit, leaf.flow, sc.packet_bytes, rate, rng.fork());
      src->start(0.0, sc.duration_s);
      sources.push_back(std::move(src));
    } else if (kind == "onoff") {
      auto src = std::make_unique<traffic::OnOffSource>(
          sim, emit, leaf.flow, sc.packet_bytes, rate * kOnOffPeakFactor);
      src->start_cycle(0.0, kOnS, kOffS, sc.duration_s);
      sources.push_back(std::move(src));
    } else {
      throw std::runtime_error("runner: unknown traffic kind '" + kind + "'");
    }
  }

  // Sources stop scheduling at duration_s; running the queue dry drains the
  // backlog (bounded: the link serves at full rate once arrivals cease).
  sim.run();

  m.counter("events/executed") += sim.events_executed();
  m.gauge("time/drained_s") = sim.now();
  m.gauge("link/utilization") = link.utilization(sim.now());
  m.gauge("service/bits_total") = link.bits_sent();

  const auto wall1 = std::chrono::steady_clock::now();
  const double wall_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              wall1 - wall0)
                              .count());
  m.gauge("timing/wall_ns") = wall_ns;
  if (sim.events_executed() > 0 && wall_ns > 0.0) {
    m.gauge("timing/ns_per_event") =
        wall_ns / static_cast<double>(sim.events_executed());
    m.gauge("timing/events_per_s") =
        static_cast<double>(sim.events_executed()) / (wall_ns * 1e-9);
  }
}

}  // namespace hfq::runner
