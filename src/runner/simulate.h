// Executes one Scenario: builds the tree and scheduler variant, attaches a
// link and traffic sources, runs the discrete-event simulation to drain,
// and populates the shard's MetricsRegistry.
#pragma once

#include <memory>
#include <string>

#include "net/scheduler.h"
#include "runner/metrics.h"
#include "runner/scenario.h"

namespace hfq::core {
class Hierarchy;
}

namespace hfq::runner {

// Instantiates the scheduler variant named by `key` ("hwf2q+", "hwfq", ...)
// on the given tree. Throws std::runtime_error for an unknown key.
[[nodiscard]] std::unique_ptr<net::Scheduler> build_scheduler(
    const std::string& key, const core::Hierarchy& spec);

// Runs the scenario and fills `metrics`. Deterministic metrics (packet
// counts, delay statistics, per-leaf service) depend only on the scenario
// fields including the seed; "timing/" metrics are wall-clock throughput
// measurements. Throws std::runtime_error on configuration errors (bad
// tree text, unknown scheduler/traffic kind).
void run_scenario(const Scenario& sc, MetricsRegistry& metrics);

}  // namespace hfq::runner
