// SplitMix64 — the seed-derivation PRNG for campaign sharding.
//
// A campaign has ONE user-visible seed; every shard k derives its own RNG
// stream as splitmix64(campaign_seed, k). SplitMix64 is a bijective mixing
// of the 64-bit counter (Steele/Lea/Flood, "Fast splittable pseudorandom
// number generators"), so distinct shard indices always map to distinct,
// well-scrambled seeds even for campaign seeds like 0 and 1. The derived
// value seeds the shard's util::Rng (mt19937_64).
//
// This derivation is the determinism contract of the whole runner: a shard's
// stream depends only on (campaign_seed, shard_index) — never on thread
// count, scheduling order, or which worker picks the shard up — so any
// shard replays bit-identically standalone (`hfq_sweep --shard K --jobs 1`).
#pragma once

#include <cstdint>

namespace hfq::runner {

// One SplitMix64 step: advances `state` by the golden-gamma and returns the
// mixed output.
constexpr std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Derived seed for shard `index` of a campaign: the (index+1)-th output of
// the SplitMix64 sequence started at `campaign_seed`, computed directly
// (the generator's state after k steps is seed + k*gamma).
constexpr std::uint64_t derive_shard_seed(std::uint64_t campaign_seed,
                                          std::uint64_t index) {
  std::uint64_t state = campaign_seed + index * 0x9e3779b97f4a7c15ULL;
  return splitmix64_next(state);
}

}  // namespace hfq::runner
