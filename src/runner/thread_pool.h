// Worker thread pool for experiment campaigns.
//
// The runner's unit of work is a *shard*: an independent, self-seeded
// simulation. Shards never share mutable state (each owns its Simulator,
// scheduler, and MetricsRegistry), so the pool needs no work-item locking
// beyond one atomic shard cursor — workers claim the next index with
// fetch_add and write results into their own pre-allocated slot. That is
// the "lock-free per-worker accumulation, merge-on-join" discipline: all
// cross-thread communication is the cursor and the join.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/assert.h"

namespace hfq::runner {

class ThreadPool {
 public:
  // `jobs` = number of worker threads; 0 picks the hardware concurrency.
  explicit ThreadPool(unsigned jobs)
      : jobs_(jobs != 0 ? jobs : default_jobs()) {}

  [[nodiscard]] unsigned jobs() const noexcept { return jobs_; }

  [[nodiscard]] static unsigned default_jobs() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
  }

  // Runs body(i) for every i in [0, count), fanned out over the workers,
  // and blocks until all complete. Result placement is the caller's job
  // (write to slot i); the pool guarantees each index runs exactly once.
  // `body` must not throw — shard errors are data, not control flow, so
  // runners catch and record them inside the body (an escaped exception
  // would tear down the process from a worker thread).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body) const {
    if (count == 0) return;
    if (jobs_ == 1) {
      // Inline fast path: no threads, same index order as the cursor would
      // produce. Keeps single-job runs trivially debuggable (gdb, perf).
      for (std::size_t i = 0; i < count; ++i) body(i);
      return;
    }
    std::atomic<std::size_t> cursor{0};
    auto worker = [&] {
      for (;;) {
        // verify: relaxed — RMW atomicity alone guarantees each index is
        // claimed exactly once; result visibility to the caller rides on
        // thread::join below, not on this counter. Proven by the
        // `pool-cursor` model-check scenario (hfq_verify).
        const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        body(i);
      }
    };
    const std::size_t n_threads =
        std::min<std::size_t>(jobs_, count);
    std::vector<std::thread> threads;
    threads.reserve(n_threads);
    for (std::size_t t = 0; t < n_threads; ++t) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }

 private:
  unsigned jobs_;
};

}  // namespace hfq::runner
