// ApproxWfq is header-only; this TU anchors the library target.
#include "sched/approx_wfq.h"
