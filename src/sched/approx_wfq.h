// "Approximate WFQ": the SFF policy running on the cheap Eq. 27 virtual
// time instead of the exact GPS one — i.e. WF²Q+ with the eligibility test
// removed.
//
// This is the design point of the frame/potential-based WFQ approximations
// the paper cites ([18] and the SCFQ family): replace the expensive clock,
// keep smallest-finish-first. The ablation benchmarks show its WFI is as
// bad as WFQ's — the paper's argument that eligibility (SEFF), not the
// clock, is what H-PFQ needs.
#pragma once

#include <optional>

#include "sched/flat_base.h"

namespace hfq::sched {

class ApproxWfq : public FlatSchedulerBase {
 public:
  explicit ApproxWfq(double link_rate_bps)
      : link_rate_(RateBps{link_rate_bps}) {
    HFQ_ASSERT(link_rate_bps > 0.0);
  }

  bool enqueue(const Packet& p, Time /*now*/) override {
    FlowState& f = flow(p.flow);
    if (!f.queue.push(p)) return false;
    ++backlog_;
    if (f.queue.size() == 1) {
      const VirtualTime f_prev =
          f.epoch == epoch_ ? f.finish : VirtualTime{};
      f.start = f_prev > vtime_ ? f_prev : vtime_;
      f.finish = f.start + p.bits() / f.rate;
      f.epoch = epoch_;
      f.handle = heads_.push(f.finish, p.flow);
      if (f.start < smin_ || heads_.size() == 1) smin_ = f.start;
    }
    return true;
  }

  std::optional<Packet> dequeue(Time /*now*/) override {
    if (heads_.empty()) {
      vtime_ = VirtualTime{};
      smin_ = VirtualTime{};
      ++epoch_;
      return std::nullopt;
    }
    const FlowId id = heads_.pop();
    FlowState& f = flow(id);
    f.handle = util::kInvalidHeapHandle;
    Packet p = f.queue.pop();
    --backlog_;
    // Eq. 27 update with the smallest start tag tracked conservatively:
    // V <- max(V, Smin) + L/r.
    VirtualTime v_now = vtime_;
    if (smin_ > v_now) v_now = smin_;
    vtime_ = v_now + p.bits() / link_rate_;
    if (!f.queue.empty()) {
      f.start = f.finish;
      f.finish = f.start + f.queue.front().bits() / f.rate;
      f.handle = heads_.push(f.finish, id);
      if (f.start < smin_) smin_ = f.start;
    }
    return p;
  }

  [[nodiscard]] double vtime() const noexcept { return vtime_.v(); }

 private:
  RateBps link_rate_;
  VirtualTime vtime_;
  VirtualTime smin_;
  std::uint64_t epoch_ = 1;
  util::HandleHeap<VirtualTime, FlowId> heads_;  // min finish tag (SFF)
};

}  // namespace hfq::sched
