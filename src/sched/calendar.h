// TagCalendar — hierarchical-bitmap calendar queue over quantized
// virtual-time tags: the cache-aware eligible-set engine (ROADMAP item 1
// follow-up; DESIGN.md "Eligible-set structures").
//
// The heap-backed eligible/waiting sets cost O(log N) comparisons per
// operation, and at N=1M the sift path is memory-bound: every level touched
// is a cache miss. This structure is the QFQ-style answer (Checconi &
// Rizzo's approximated groups; in spirit Luangsomboon & Liebeherr's
// constant-time hierarchical scheduler): quantize tags into buckets of
// width sigma, keep per-bucket intrusive flow lists in flat arrays, track
// bucket occupancy in a tower of uint64 bitmaps (one summary bit per 64
// buckets per level), and find the minimum with a handful of ctz
// instructions instead of a sift.
//
// Geometry (see derive_geometry): the live tag window of WF2Q+ spans at
// most 2*Lmax/rmin virtual seconds above the anchor (waiting starts are
// <= V + Lmax/rmin, finishes one increment further), so
//
//   sigma = width_factor * (2*Lmax/rmin) / B,     B = ~2x flow count
//
// covers the window with ~1 flow per bucket at width_factor = 1. Because
// width_factor <= B/2 is enforced, sigma <= Lmax/rmin always: the
// quantization penalty of the approximate mode is bounded by one bucket
// width, i.e. at most one per-node L_max/r term — exactly the slack the
// paper's hierarchical WFI bounds already budget per level.
//
// Exact vs approximate pick:
//   * sorted buckets (default): each bucket's intrusive list is kept
//     sorted by (tag, arrival_no), so the head of the first occupied
//     bucket IS the global minimum in the same total order the heaps use —
//     schedules are bit-identical to the heap build. Chains are doubly
//     linked: insert is O(1) for append (monotone arrivals), O(1) for
//     prepend, and otherwise walks backward from the tail — so a dense
//     equal-tag bucket with mostly-monotone `no` arrivals (plus the odd
//     straggler already at the tail) still inserts in O(1) amortized;
//     the true worst case remains O(bucket population).
//   * unsorted buckets (approximate): append-at-tail, pop-at-head. Pops can
//     be off by < sigma in tag — a WFI penalty of at most sigma * r_i
//     service, asserted against the WFI estimator in the fuzzer/ablation.
//
// Wraparound / rotation: bucket numbers are absolute (ab = quantize(tag));
// the wheel maps ab onto slot ab & (B-1). The anchor base_ab_ is advanced
// lazily to the first occupied bucket on every find — "rotation" is just
// that anchor move, no bucket is ever copied. Tags beyond the wheel window
// [base, base+B) wait on an overflow list and are migrated in when the
// anchor catches up; tags below the window (tolerance slack, hierarchy
// rebase) are clamped into the anchor bucket, which is order-exact because
// the in-bucket pick compares exact tags. A busy-period vtime reset always
// finds the calendar empty (no backlog, no tags), so the anchor simply
// re-seeds at the next insert.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/assert.h"

namespace hfq::sched {

// Which eligible-set engine a scheduler instance runs. The compile default
// is heap unless the build sets -DHFQ_ELIGIBLE_CALENDAR (CMake
// -DHFQ_ELIGIBLE=calendar); a ctor argument overrides per instance.
enum class EligEngine : std::uint8_t { kHeap, kCalendar };

[[nodiscard]] constexpr EligEngine default_elig_engine() noexcept {
#if defined(HFQ_ELIGIBLE_CALENDAR)
  return EligEngine::kCalendar;
#else
  return EligEngine::kHeap;
#endif
}

// Knobs for the calendar build. Defaults give the exact engine with ~1
// flow per bucket; width_factor is the ablation sweep's knob
// (bench_ablation_eligibility) and `approximate` selects the
// unsorted-bucket WFI-bounded pick.
struct CalendarTuning {
  double max_packet_bits = 12000.0;  // Lmax for the width derivation (1500B)
  double width_factor = 1.0;         // sigma multiplier, clamped to [2^-10, B/2]
  bool approximate = false;          // unsorted buckets + head pick
  int min_log2_buckets = 6;
  int max_log2_buckets = 21;
};

// Derived geometry: bucket count (power of two) from the flow count,
// bucket width in virtual seconds from min-rate/max-packet.
struct CalendarGeometry {
  int log2_buckets = 6;
  double width_vt = 1.0;  // sigma, virtual seconds per bucket
};

[[nodiscard]] inline CalendarGeometry derive_geometry(
    std::size_t flows, double min_rate_bps, const CalendarTuning& t) {
  HFQ_ASSERT(min_rate_bps > 0.0);
  CalendarGeometry g;
  int lg = t.min_log2_buckets;
  while (lg < t.max_log2_buckets &&
         (std::size_t{1} << lg) < 2 * (flows > 0 ? flows : 1)) {
    ++lg;
  }
  g.log2_buckets = lg;
  const double span = 2.0 * t.max_packet_bits / min_rate_bps;
  double factor = t.width_factor;
  const double factor_cap = static_cast<double>(std::size_t{1} << (lg - 1));
  if (factor > factor_cap) factor = factor_cap;
  if (factor < 1.0 / 1024.0) factor = 1.0 / 1024.0;
  g.width_vt = factor * span / static_cast<double>(std::size_t{1} << lg);
  return g;
}

// Counters for the ablation bench and tests; cheap enough to stay on.
struct CalendarStats {
  std::uint64_t inserts = 0;
  std::uint64_t sorted_steps = 0;        // in-bucket walk steps on insert
  std::uint64_t pops = 0;
  std::uint64_t bucket_advances = 0;     // anchor rotations
  std::uint64_t overflow_inserts = 0;
  std::uint64_t overflow_migrations = 0; // entries moved overflow -> wheel
};

// Tag -> absolute bucket number. Specialized per tag scalar so the double
// build multiplies by 1/sigma and the tick build shifts.
template <typename K>
struct CalendarQuant;

template <>
struct CalendarQuant<double> {
  double inv_width = 1.0;  // 1/sigma
  [[nodiscard]] std::uint64_t operator()(double tag) const noexcept {
    const double x = tag * inv_width;
    if (x <= 0.0) return 0;
    // Finite tags at any sane magnitude stay far below 2^62; guard the
    // cast anyway so a corrupt tag cannot invoke UB.
    if (x >= 4.6e18) return std::uint64_t{1} << 62;
    return static_cast<std::uint64_t>(x);
  }
};

template <>
struct CalendarQuant<std::uint64_t> {
  unsigned shift = 0;  // sigma = 2^shift ticks
  [[nodiscard]] std::uint64_t operator()(std::uint64_t tag) const noexcept {
    return tag >> shift;
  }
};

// The calendar itself. K is the raw tag scalar (double virtual seconds or
// integer ticks); entries are (id, tag, arrival_no) with id < ensure_ids().
// Each id may be present at most once per calendar instance.
template <typename K>
class TagCalendar {
 public:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  struct MinRef {
    std::uint32_t id = kNil;
    K tag{};
    std::uint64_t no = 0;
  };

  [[nodiscard]] bool configured() const noexcept { return !bucket_.empty(); }

  // (Re)builds the wheel. Discards any current content — callers rebuild
  // membership afterwards (live-edit commit, hierarchy rebase).
  void configure(CalendarQuant<K> q, int log2_buckets, bool approximate) {
    HFQ_ASSERT(log2_buckets >= 1 && log2_buckets <= 26);
    quant_ = q;
    log2_buckets_ = log2_buckets;
    mask_ = (std::uint64_t{1} << log2_buckets) - 1;
    sorted_ = !approximate;
    bucket_.assign(std::size_t{1} << log2_buckets, Bucket{kNil, kNil});
    levels_ = 0;
    std::size_t bits = std::size_t{1} << log2_buckets;
    while (true) {
      const std::size_t words = (bits + 63) / 64;
      bits_[levels_].assign(words, 0);
      ++levels_;
      if (words == 1) break;
      bits = words;
    }
    size_ = 0;
    of_head_ = kNil;
    of_count_ = 0;
    of_min_ab_ = 0;
    base_ab_ = 0;
  }

  // Grows the per-id arrays (cold path: add_flow / add_child).
  void ensure_ids(std::size_t n) {
    if (n > entry_.size()) entry_.resize(n);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] const CalendarStats& stats() const noexcept { return stats_; }
  [[nodiscard]] int log2_buckets() const noexcept { return log2_buckets_; }
  [[nodiscard]] std::uint64_t base_bucket() const noexcept { return base_ab_; }
  [[nodiscard]] std::size_t overflow_count() const noexcept {
    return of_count_;
  }
  [[nodiscard]] K width_probe(K tag) const noexcept {  // test hook
    return tag;
  }
  [[nodiscard]] std::uint64_t bucket_of(K tag) const noexcept {
    return quant_(tag);
  }

  void insert(std::uint32_t id, K tag, std::uint64_t no) {
    HFQ_ASSERT(configured());
    HFQ_ASSERT(id < entry_.size());
    Entry& e = entry_[id];
    e.tag = tag;
    e.no = no;
    e.next = kNil;
    ++stats_.inserts;
    std::uint64_t ab = quant_(tag);
    bool clamped = false;
    if (size_ == 0) {
      base_ab_ = ab;  // fresh anchor: first entry defines the window
    } else if (ab >= base_ab_ + wheel_size_buckets()) {
      overflow_push(id, ab);
      ++size_;
      return;
    } else if (ab < base_ab_) {
      ab = base_ab_;  // below-window clamp (order-exact: picks compare tags)
      clamped = true;
    }
    bucket_insert(slot_of(ab), id, clamped);
    ++size_;
  }

  // The minimum entry under (tag, no) order — exact when sorted, within one
  // bucket width otherwise. Non-const: reconciles overflow and advances the
  // anchor. Precondition: !empty().
  [[nodiscard]] MinRef peek_min() {
    const std::size_t slot = locate_first();
    const std::uint32_t id = bucket_[slot].head;
    return MinRef{id, entry_[id].tag, entry_[id].no};
  }

  // Removes and returns the minimum entry's id. Precondition: !empty().
  std::uint32_t pop_min() {
    const std::size_t slot = locate_first();
    ++stats_.pops;
    return pop_head(slot);
  }

  // Pops entries in (tag, no) order while `pred(tag)` holds, calling
  // `fn(id, tag, no)` for each. With sorted buckets the popped set and
  // order equal the heap's migration loop exactly; with unsorted buckets
  // the stop is approximate (late entries lag by < sigma).
  template <typename Pred, typename Fn>
  void drain_leq(Pred&& pred, Fn&& fn) {
    while (size_ != 0) {
      const std::size_t slot = locate_first();
      const std::uint32_t id = bucket_[slot].head;
      const K tag = entry_[id].tag;
      if (!pred(tag)) break;
      const std::uint64_t no = entry_[id].no;
      pop_head(slot);
      ++stats_.pops;
      fn(id, tag, no);
    }
  }

  void clear() {
    for (std::size_t l = 0; l < levels_; ++l) {
      std::fill(bits_[l].begin(), bits_[l].end(), std::uint64_t{0});
    }
    size_ = 0;
    of_head_ = kNil;
    of_count_ = 0;
    of_min_ab_ = 0;
    base_ab_ = 0;
  }

  // Structural audit (O(B/64 + n)): bitmap tower consistent with bucket
  // occupancy, chain counts sum to size, sorted order per bucket, every
  // wheel entry inside the window, overflow min exact.
  [[nodiscard]] bool validate() const {
    if (!configured()) return size_ == 0;
    std::size_t counted = 0;
    const std::size_t nb = bucket_.size();
    for (std::size_t s = 0; s < nb; ++s) {
      const bool occ = (bits_[0][s >> 6] >> (s & 63)) & 1u;
      if (!occ) continue;
      std::uint32_t id = bucket_[s].head;
      if (id == kNil) return false;
      std::uint32_t prev = kNil;
      std::size_t chain = 0;
      while (id != kNil) {
        if (++chain > size_) return false;  // cycle guard
        const Entry& e = entry_[id];
        if (e.prev != prev) return false;  // doubly-linked consistency
        if (quant_(e.tag) >= base_ab_ + wheel_size_buckets()) return false;
        if (sorted_ && prev != kNil && entry_less(e, entry_[prev])) {
          return false;
        }
        prev = id;
        id = e.next;
      }
      if (bucket_[s].tail != prev) return false;
      counted += chain;
    }
    // Summary levels: bit set iff the word below is non-zero.
    for (std::size_t l = 1; l < levels_; ++l) {
      for (std::size_t w = 0; w < bits_[l].size(); ++w) {
        for (int b = 0; b < 64; ++b) {
          const std::size_t below = w * 64 + static_cast<std::size_t>(b);
          if (below >= bits_[l - 1].size()) break;
          const bool summary = (bits_[l][w] >> b) & 1u;
          if (summary != (bits_[l - 1][below] != 0)) return false;
        }
      }
    }
    std::size_t of_n = 0;
    std::uint64_t of_min = ~std::uint64_t{0};
    for (std::uint32_t id = of_head_; id != kNil; id = entry_[id].next) {
      if (++of_n > size_) return false;
      const std::uint64_t ab = quant_(entry_[id].tag);
      if (ab < of_min) of_min = ab;
    }
    if (of_n != of_count_) return false;
    if (of_n != 0 && of_min != of_min_ab_) return false;
    return counted + of_n == size_;
  }

 private:
  struct Entry {
    K tag{};
    std::uint64_t no = 0;
    std::uint32_t next = kNil;
    std::uint32_t prev = kNil;  // doubly-linked: sorted insert walks backward
  };
  struct Bucket {
    std::uint32_t head;
    std::uint32_t tail;
  };

  [[nodiscard]] std::uint64_t wheel_size_buckets() const noexcept {
    return mask_ + 1;
  }
  [[nodiscard]] std::size_t slot_of(std::uint64_t ab) const noexcept {
    return static_cast<std::size_t>(ab & mask_);
  }
  [[nodiscard]] std::size_t wheel_count() const noexcept {
    return size_ - of_count_;
  }

  [[nodiscard]] static bool entry_less(const Entry& a,
                                       const Entry& b) noexcept {
    // hfq-lint: disable(tag-compare) — exact total order (tag, arrival_no),
    // identical to the heap key comparison.
    if (a.tag != b.tag) return a.tag < b.tag;
    return a.no < b.no;
  }

  void set_bits(std::size_t slot) {
    std::size_t idx = slot;
    for (std::size_t l = 0; l < levels_; ++l) {
      bits_[l][idx >> 6] |= std::uint64_t{1} << (idx & 63);
      idx >>= 6;
    }
  }

  void clear_bit(std::size_t slot) {
    std::size_t idx = slot;
    for (std::size_t l = 0; l < levels_; ++l) {
      std::uint64_t& w = bits_[l][idx >> 6];
      w &= ~(std::uint64_t{1} << (idx & 63));
      if (w != 0) break;  // word still occupied: summaries stay set
      idx >>= 6;
    }
  }

  // First set level-0 bit >= pos, or npos. Classic tower walk: mask the
  // partial word at each level on the way up, descend with ctz.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  [[nodiscard]] std::size_t find_ge(std::size_t pos) const {
    std::size_t idx = pos;
    std::size_t l = 0;
    for (; l < levels_; ++l) {
      const std::size_t w = idx >> 6;
      if (w >= bits_[l].size()) return npos;
      const std::uint64_t word = bits_[l][w] & (~std::uint64_t{0} << (idx & 63));
      if (word != 0) {
        std::size_t bit = (w << 6) +
                          static_cast<std::size_t>(__builtin_ctzll(word));
        // Descend back to level 0.
        while (l > 0) {
          --l;
          const std::uint64_t below = bits_[l][bit];
          HFQ_ASSERT(below != 0);
          bit = (bit << 6) + static_cast<std::size_t>(__builtin_ctzll(below));
        }
        return bit;
      }
      idx = w + 1;  // continue one level up, one word to the right
    }
    return npos;
  }

  // Slot of the first occupied bucket in ring order from the anchor, after
  // reconciling the overflow list; advances the anchor to it (the lazy
  // rotation). Precondition: size_ != 0.
  [[nodiscard]] std::size_t locate_first() {
    for (;;) {
      if (wheel_count() == 0) {
        migrate_overflow(of_min_ab_);
        continue;
      }
      const std::size_t base_slot = slot_of(base_ab_);
      std::size_t s = find_ge(base_slot);
      if (s == npos) s = find_ge(0);
      HFQ_ASSERT(s != npos);
      const std::uint64_t ab =
          base_ab_ + ((s - base_slot) & mask_);
      if (of_count_ != 0 && of_min_ab_ <= ab) {
        migrate_overflow(base_ab_);
        continue;
      }
      if (ab != base_ab_) {
        base_ab_ = ab;
        ++stats_.bucket_advances;
      }
      return s;
    }
  }

  std::uint32_t pop_head(std::size_t slot) {
    Bucket& b = bucket_[slot];
    const std::uint32_t id = b.head;
    HFQ_ASSERT(id != kNil);
    b.head = entry_[id].next;
    if (b.head == kNil) {
      b.tail = kNil;
      clear_bit(slot);
    } else {
      entry_[b.head].prev = kNil;
    }
    --size_;
    return id;
  }

  void bucket_insert(std::size_t slot, std::uint32_t id,
                     bool clamped = false) {
    Bucket& b = bucket_[slot];
    const bool occupied = ((bits_[0][slot >> 6] >> (slot & 63)) & 1u) != 0;
    Entry& e = entry_[id];
    if (!occupied) {
      e.prev = kNil;
      b.head = b.tail = id;
      set_bits(slot);
      return;
    }
    if (!sorted_ && clamped) {
      // Unsorted buckets keep no in-bucket order, but a clamped entry's tag
      // is below the whole window — head placement keeps the one-bucket
      // error bound instead of burying it behind larger tags.
      e.prev = kNil;
      e.next = b.head;
      entry_[b.head].prev = id;
      b.head = id;
      return;
    }
    if (!sorted_ || !entry_less(e, entry_[b.tail])) {
      e.prev = b.tail;  // append (the common monotone case)
      entry_[b.tail].next = id;
      b.tail = id;
      return;
    }
    if (entry_less(e, entry_[b.head])) {
      e.prev = kNil;  // prepend (descending runs, below-window clamps)
      e.next = b.head;
      entry_[b.head].prev = id;
      b.head = id;
      return;
    }
    // Sorted walk BACKWARD from the tail. Dense equal-tag buckets arise
    // when many flows share a finish tag; arrivals are then mostly
    // monotone in `no` with the occasional straggler already parked at the
    // tail, so the insertion point sits a step or two back from the tail —
    // a head-forward walk would pay O(chain) per insert in that regime.
    std::uint32_t cur = b.tail;
    while (entry_less(e, entry_[cur])) {
      ++stats_.sorted_steps;
      cur = entry_[cur].prev;
      HFQ_ASSERT(cur != kNil);  // head case handled by the prepend fast path
    }
    e.prev = cur;
    e.next = entry_[cur].next;
    entry_[e.next].prev = id;  // e < tail entry, so a successor exists
    entry_[cur].next = id;
  }

  void overflow_push(std::uint32_t id, std::uint64_t ab) {
    entry_[id].next = of_head_;
    of_head_ = id;
    if (of_count_ == 0 || ab < of_min_ab_) of_min_ab_ = ab;
    ++of_count_;
    ++stats_.overflow_inserts;
  }

  // Moves overflow entries that now fit the window [new_base, new_base+B)
  // into the wheel. When the wheel is empty the anchor jumps to new_base
  // (the overflow minimum), so at least one entry always lands.
  void migrate_overflow(std::uint64_t new_base) {
    HFQ_ASSERT(of_count_ != 0);
    if (wheel_count() == 0) base_ab_ = new_base;
    std::uint32_t id = of_head_;
    of_head_ = kNil;
    std::size_t kept = 0;
    std::uint64_t kept_min = ~std::uint64_t{0};
    while (id != kNil) {
      const std::uint32_t next = entry_[id].next;
      std::uint64_t ab = quant_(entry_[id].tag);
      if (ab < base_ab_ + wheel_size_buckets()) {
        if (ab < base_ab_) ab = base_ab_;
        entry_[id].next = kNil;
        bucket_insert(slot_of(ab), id);
        --of_count_;
        ++stats_.overflow_migrations;
      } else {
        entry_[id].next = of_head_;
        of_head_ = id;
        ++kept;
        if (ab < kept_min) kept_min = ab;
      }
      id = next;
    }
    HFQ_ASSERT(of_count_ == kept);
    of_min_ab_ = kept_min;
  }

  CalendarQuant<K> quant_{};
  int log2_buckets_ = 0;
  std::uint64_t mask_ = 0;
  bool sorted_ = true;
  std::size_t levels_ = 0;
  std::size_t size_ = 0;
  std::uint64_t base_ab_ = 0;      // absolute bucket of the window anchor
  std::uint32_t of_head_ = kNil;   // overflow: tags beyond the window
  std::size_t of_count_ = 0;
  std::uint64_t of_min_ab_ = 0;
  CalendarStats stats_{};
  std::vector<Bucket> bucket_;
  std::vector<Entry> entry_;       // per-id tag/no/next (intrusive lists)
  // Bitmap tower: bits_[0] has one bit per bucket, each higher level one
  // bit per word below; 26 levels of headroom is 6*5 > 26 buckets.
  std::vector<std::uint64_t> bits_[5];
};

}  // namespace hfq::sched
