// Drr is header-only; this TU anchors the library target.
#include "sched/drr.h"
