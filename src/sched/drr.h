// Deficit Round Robin (DRR) — Shreedhar & Varghese [17].
//
// Frame-based baseline: O(1) work per packet, no virtual times, but — as the
// paper's related-work section notes — a Worst-case Fair Index proportional
// to the frame length, i.e. large.
#pragma once

#include <deque>
#include <optional>

#include "sched/flat_base.h"

namespace hfq::sched {

class Drr : public FlatSchedulerBase {
 public:
  // `frame_bits` is the total quantum handed out per round across flows; a
  // flow's quantum is frame_bits * rate_i / link_rate. Quanta smaller than a
  // packet are legal (the flow accumulates deficit over several rounds).
  Drr(double link_rate_bps, double frame_bits)
      : link_rate_(link_rate_bps), frame_bits_(frame_bits) {
    HFQ_ASSERT(link_rate_bps > 0.0);
    HFQ_ASSERT(frame_bits > 0.0);
  }

  bool enqueue(const Packet& p, Time /*now*/) override {
    FlowState& f = flow(p.flow);
    if (!f.queue.push(p)) return false;
    ++backlog_;
    if (f.queue.size() == 1) {
      f.deficit = Bits{};
      f.visited_this_round = false;
      active_.push_back(p.flow);
    }
    return true;
  }

  std::optional<Packet> dequeue(Time /*now*/) override {
    while (!active_.empty()) {
      const FlowId id = active_.front();
      FlowState& f = flow(id);
      if (!f.visited_this_round) {
        f.deficit += Bits{quantum(id)};
        f.visited_this_round = true;
      }
      const Bits head_bits = f.queue.front().bits();
      if (f.deficit + Bits{1e-9} >= head_bits) {
        f.deficit -= head_bits;
        Packet p = f.queue.pop();
        --backlog_;
        if (f.queue.empty()) {
          f.deficit = Bits{};  // deficit does not persist across idle
          f.visited_this_round = false;
          active_.pop_front();
        }
        return p;
      }
      // Quantum exhausted: move to the back of the round.
      f.visited_this_round = false;
      active_.pop_front();
      active_.push_back(id);
    }
    return std::nullopt;
  }

  [[nodiscard]] double quantum(FlowId id) const {
    return frame_bits_ * flow(id).rate.bps() / link_rate_;
  }

 private:
  double link_rate_;
  double frame_bits_;
  std::deque<FlowId> active_;
};

}  // namespace hfq::sched
