// Single shared FIFO queue — the degenerate baseline scheduler.
#pragma once

#include <optional>

#include "net/flow.h"
#include "net/scheduler.h"

namespace hfq::sched {

class Fifo : public net::Scheduler {
 public:
  Fifo() = default;
  // Bounds the shared buffer (0 = unlimited).
  explicit Fifo(std::size_t capacity_packets) : queue_(capacity_packets) {}

  bool enqueue(const net::Packet& p, net::Time /*now*/) override {
    return queue_.push(p);
  }

  std::optional<net::Packet> dequeue(net::Time /*now*/) override {
    if (queue_.empty()) return std::nullopt;
    return queue_.pop();
  }

  [[nodiscard]] std::size_t backlog_packets() const override {
    return queue_.size();
  }

  [[nodiscard]] std::uint64_t drops() const noexcept { return queue_.drops(); }

 private:
  net::FlowQueue queue_;
};

}  // namespace hfq::sched
