// Shared per-flow state for the one-level (flat) packet schedulers.
#pragma once

#include <cstdint>
#include <vector>

#include "audit/invariants.h"
#include "net/flow.h"
#include "net/packet.h"
#include "net/scheduler.h"
#include "obs/flight_recorder.h"
#include "sched/tags.h"
#include "util/assert.h"
#include "util/heap.h"
#include "util/units.h"

namespace hfq::sched {

using net::FlowId;
using net::Packet;
using net::Time;
using units::Bits;
using units::Duration;
using units::RateBps;
using units::VirtualTime;
using units::WallTime;

// Common flow table: registration with guaranteed rate, per-flow FIFO queue
// with optional capacity, and backlog accounting. Concrete schedulers add
// their tag/selection logic on top.
class FlatSchedulerBase : public net::Scheduler {
 public:
  // Registers a flow. `rate_bps` is its guaranteed rate; `capacity_packets`
  // bounds the session buffer (0 = unlimited). Virtual: schedulers with
  // policy-specific per-flow state (WFQ/WF²Q fluid trackers) extend it, and
  // registration through a base pointer must reach them.
  virtual void add_flow(FlowId id, double rate_bps,
                        std::size_t capacity_packets = 0) {
    HFQ_ASSERT(rate_bps > 0.0);
    if (id >= flows_.size()) flows_.resize(id + 1);
    HFQ_ASSERT_MSG(!flows_[id].registered, "flow registered twice");
    flows_[id].registered = true;
    flows_[id].rate = RateBps{rate_bps};
    flows_[id].queue = net::FlowQueue(capacity_packets);
  }

  [[nodiscard]] std::size_t backlog_packets() const override {
    return backlog_;
  }

  [[nodiscard]] std::uint64_t drops(FlowId id) const {
    HFQ_ASSERT(id < flows_.size() && flows_[id].registered);
    return flows_[id].queue.drops();
  }

  [[nodiscard]] std::size_t queue_length(FlowId id) const {
    HFQ_ASSERT(id < flows_.size() && flows_[id].registered);
    return flows_[id].queue.size();
  }

  [[nodiscard]] double rate_of(FlowId id) const {
    HFQ_ASSERT(id < flows_.size() && flows_[id].registered);
    return flows_[id].rate.bps();
  }

  [[nodiscard]] std::size_t flow_count() const noexcept {
    return flows_.size();
  }

 protected:
  struct FlowState {
    bool registered = false;
    RateBps rate;
    net::FlowQueue queue;
    // Virtual start/finish tags of the head packet (schedulers that use
    // virtual times; Eq. 28/29 per-session form).
    VirtualTime start;
    VirtualTime finish;
    util::HeapHandle handle = util::kInvalidHeapHandle;
    bool in_eligible = false;  // WF²Q-family: which heap `handle` refers to
    // Busy-period epoch for self-clocked schedulers: tags stamped in an
    // older epoch are treated as zero (O(1) idle reset).
    std::uint64_t epoch = 0;
    // DRR state.
    Bits deficit;
    bool visited_this_round = false;
    // WRR state: packets served from this flow in the current round.
    double round_served = 0.0;
  };

  // Backlog conservation: the packet counter must equal the sum of the
  // per-flow queue lengths at every quiescent point. O(flows); called from
  // audit hooks only.
  [[nodiscard]] std::size_t audit_queued_packets() const {
    std::size_t n = 0;
    for (const FlowState& f : flows_) n += f.queue.size();
    return n;
  }

  // Flight-recorder hooks (obs/flight_recorder.h), shared by the concrete
  // schedulers so each hot-path call site stays one line. No-ops unless the
  // build compiles the hooks in (HFQ_TRACE) AND a recorder is installed on
  // this thread; the [[maybe_unused]] markers cover the compiled-out build.
  // `v` is the scheduler's virtual time after the operation (schedulers
  // without one pass VirtualTime{}).
  void trace_enqueue([[maybe_unused]] FlowId id,
                     [[maybe_unused]] const Packet& p,
                     [[maybe_unused]] Time now,
                     [[maybe_unused]] VirtualTime v) const {
    HFQ_TRACE_EVENT(enqueue(obs::kFlatNode, id, p.id, WallTime{now}, v,
                            p.size_bits(), static_cast<double>(backlog_)));
  }
  void trace_dequeue([[maybe_unused]] FlowId id,
                     [[maybe_unused]] const Packet& p,
                     [[maybe_unused]] Time now,
                     [[maybe_unused]] VirtualTime v) const {
    HFQ_TRACE_EVENT(dequeue(obs::kFlatNode, id, p.id, WallTime{now}, v,
                            p.size_bits(), static_cast<double>(backlog_)));
  }
  void trace_drop([[maybe_unused]] FlowId id, [[maybe_unused]] const Packet& p,
                  [[maybe_unused]] Time now) const {
    HFQ_TRACE_EVENT(
        drop(obs::kFlatNode, id, p.id, WallTime{now}, p.size_bits()));
  }
  void trace_flip([[maybe_unused]] FlowId id, [[maybe_unused]] Time now,
                  [[maybe_unused]] VirtualTime v,
                  [[maybe_unused]] bool now_eligible) const {
    HFQ_TRACE_EVENT(eligibility_flip(obs::kFlatNode, id, WallTime{now}, v,
                                     flows_[id].start, flows_[id].finish,
                                     now_eligible));
  }

  FlowState& flow(FlowId id) {
    HFQ_ASSERT_MSG(id < flows_.size() && flows_[id].registered,
                   "unknown flow id");
    return flows_[id];
  }
  const FlowState& flow(FlowId id) const {
    HFQ_ASSERT_MSG(id < flows_.size() && flows_[id].registered,
                   "unknown flow id");
    return flows_[id];
  }

  std::vector<FlowState> flows_;
  std::size_t backlog_ = 0;
};

}  // namespace hfq::sched
