// GpsVirtualTime is header-only; this TU anchors the library target.
#include "sched/gps_virtual_time.h"
