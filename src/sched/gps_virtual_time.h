// Piecewise-linear GPS virtual time V_GPS(·) (Eqs. 4–7 of the paper).
//
// Tracks the fluid GPS system induced by a stamped arrival stream and
// answers V(T) at any reference time T. The reference time is real time for
// a standalone server and the node reference time T_n = W_n(0,t)/r_n for a
// server node inside a hierarchy (Section 4.1).
//
// Worst-case cost of an advance is O(N) (stepping over fluid departure
// epochs) — exactly the complexity the paper attributes to WFQ/WF²Q and the
// motivation for WF²Q+'s cheaper Eq. 27 function.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "util/assert.h"
#include "util/heap.h"

namespace hfq::sched {

using net::FlowId;

class GpsVirtualTime {
 public:
  struct Stamp {
    double start = 0.0;
    double finish = 0.0;
  };

  explicit GpsVirtualTime(double link_rate_bps) : link_rate_(link_rate_bps) {
    HFQ_ASSERT(link_rate_bps > 0.0);
  }

  // Registers a flow with its guaranteed rate (bits/sec); the GPS share is
  // rate / link_rate.
  void add_flow(FlowId id, double rate_bps) {
    HFQ_ASSERT(rate_bps > 0.0);
    if (id >= flows_.size()) flows_.resize(id + 1);
    HFQ_ASSERT_MSG(!flows_[id].registered, "flow registered twice");
    flows_[id].registered = true;
    flows_[id].rate = rate_bps;
  }

  // Stamps a packet arriving at reference time T: S = max(F_prev, V(T)),
  // F = S + bits / r_i. Times must be non-decreasing across calls.
  Stamp on_arrival(double T, FlowId id, double bits) {
    HFQ_ASSERT(id < flows_.size() && flows_[id].registered);
    HFQ_ASSERT(bits > 0.0);
    advance_to(T);
    Flow& f = flows_[id];
    Stamp st;
    st.start = f.last_finish > vtime_ ? f.last_finish : vtime_;
    st.finish = st.start + bits / f.rate;
    f.last_finish = st.finish;
    if (f.handle == util::kInvalidHeapHandle) {
      f.handle = backlog_.push(f.last_finish, id);
      phi_sum_ += f.rate / link_rate_;
    } else {
      backlog_.update_key(f.handle, f.last_finish);
    }
    return st;
  }

  // Advances the fluid system to reference time T (>= previous T).
  void advance_to(double T) {
    HFQ_ASSERT_MSG(T >= ref_time_ - 1e-9, "reference time went backwards");
    while (ref_time_ < T) {
      if (backlog_.empty()) {
        ref_time_ = T;
        return;
      }
      // Next fluid departure: flow whose backlog empties at V = min lastF.
      const double v_next = backlog_.top_key();
      const double dt_needed = (v_next - vtime_) * phi_sum_;
      const double dt_avail = T - ref_time_;
      if (dt_needed <= dt_avail) {
        vtime_ = v_next;
        ref_time_ += dt_needed;
        pop_departures();
      } else {
        vtime_ += dt_avail / phi_sum_;
        ref_time_ = T;
      }
    }
  }

  // Current virtual time (valid after advance_to / on_arrival).
  [[nodiscard]] double vtime() const noexcept { return vtime_; }
  [[nodiscard]] double ref_time() const noexcept { return ref_time_; }

  // True if the flow still has fluid backlog (its last finish tag is ahead
  // of the current virtual time).
  [[nodiscard]] bool fluid_backlogged(FlowId id) const {
    HFQ_ASSERT(id < flows_.size() && flows_[id].registered);
    return flows_[id].handle != util::kInvalidHeapHandle;
  }

 private:
  struct Flow {
    bool registered = false;
    double rate = 0.0;
    double last_finish = 0.0;  // largest virtual finish among arrived packets
    util::HeapHandle handle = util::kInvalidHeapHandle;
  };

  void pop_departures() {
    while (!backlog_.empty() && backlog_.top_key() <= vtime_ + 1e-12) {
      const FlowId id = backlog_.pop();
      flows_[id].handle = util::kInvalidHeapHandle;
      phi_sum_ -= flows_[id].rate / link_rate_;
    }
    if (backlog_.empty()) phi_sum_ = 0.0;
  }

  double link_rate_;
  double vtime_ = 0.0;
  double ref_time_ = 0.0;
  double phi_sum_ = 0.0;  // sum of shares of fluid-backlogged flows
  std::vector<Flow> flows_;
  util::HandleHeap<double, FlowId> backlog_;  // keyed by last_finish
};

}  // namespace hfq::sched
