// Piecewise-linear GPS virtual time V_GPS(·) (Eqs. 4–7 of the paper).
//
// Tracks the fluid GPS system induced by a stamped arrival stream and
// answers V(T) at any reference time T. The reference time is real time for
// a standalone server and the node reference time T_n = W_n(0,t)/r_n for a
// server node inside a hierarchy (Section 4.1) — either way a WallTime
// instant, strictly distinct from the VirtualTime axis the stamps live on.
//
// Worst-case cost of an advance is O(N) (stepping over fluid departure
// epochs) — exactly the complexity the paper attributes to WFQ/WF²Q and the
// motivation for WF²Q+'s cheaper Eq. 27 function.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "util/assert.h"
#include "util/heap.h"
#include "util/units.h"

namespace hfq::sched {

using net::FlowId;
using units::Bits;
using units::Duration;
using units::RateBps;
using units::VirtualTime;
using units::WallTime;

class GpsVirtualTime {
 public:
  struct Stamp {
    VirtualTime start;
    VirtualTime finish;
  };

  explicit GpsVirtualTime(double link_rate_bps)
      : link_rate_(RateBps{link_rate_bps}) {
    HFQ_ASSERT(link_rate_bps > 0.0);
  }

  // Registers a flow with its guaranteed rate (bits/sec); the GPS share is
  // rate / link_rate.
  void add_flow(FlowId id, double rate_bps) {
    HFQ_ASSERT(rate_bps > 0.0);
    if (id >= flows_.size()) flows_.resize(id + 1);
    HFQ_ASSERT_MSG(!flows_[id].registered, "flow registered twice");
    flows_[id].registered = true;
    flows_[id].rate = RateBps{rate_bps};
  }

  // Stamps a packet arriving at reference time T: S = max(F_prev, V(T)),
  // F = S + bits / r_i. Times must be non-decreasing across calls.
  Stamp on_arrival(WallTime T, FlowId id, Bits bits) {
    HFQ_ASSERT(id < flows_.size() && flows_[id].registered);
    HFQ_ASSERT(bits.bits() > 0.0);
    advance_to(T);
    Flow& f = flows_[id];
    Stamp st;
    st.start = f.last_finish > vtime_ ? f.last_finish : vtime_;
    st.finish = st.start + bits / f.rate;
    f.last_finish = st.finish;
    if (f.handle == util::kInvalidHeapHandle) {
      f.handle = backlog_.push(f.last_finish, id);
      phi_sum_ += f.rate / link_rate_;
    } else {
      backlog_.update_key(f.handle, f.last_finish);
    }
    return st;
  }

  // Advances the fluid system to reference time T (>= previous T).
  void advance_to(WallTime T) {
    HFQ_ASSERT_MSG(T >= ref_time_ - Duration{1e-9},
                   "reference time went backwards");
    while (ref_time_ < T) {
      if (backlog_.empty()) {
        ref_time_ = T;
        return;
      }
      // Next fluid departure: flow whose backlog empties at V = min lastF.
      const VirtualTime v_next = backlog_.top_key();
      const Duration dt_needed = (v_next - vtime_) * phi_sum_;
      const Duration dt_avail = T - ref_time_;
      if (dt_needed <= dt_avail) {
        vtime_ = v_next;
        ref_time_ += dt_needed;
        pop_departures();
      } else {
        vtime_ += dt_avail / phi_sum_;
        ref_time_ = T;
      }
    }
  }

  // Current virtual time as a typed instant (valid after advance_to /
  // on_arrival); the raw-double accessors below serve tests and telemetry.
  [[nodiscard]] VirtualTime vnow() const noexcept { return vtime_; }
  [[nodiscard]] double vtime() const noexcept { return vtime_.v(); }
  [[nodiscard]] double ref_time() const noexcept {
    return ref_time_.seconds();
  }

  // True if the flow still has fluid backlog (its last finish tag is ahead
  // of the current virtual time).
  [[nodiscard]] bool fluid_backlogged(FlowId id) const {
    HFQ_ASSERT(id < flows_.size() && flows_[id].registered);
    return flows_[id].handle != util::kInvalidHeapHandle;
  }

 private:
  struct Flow {
    bool registered = false;
    RateBps rate;
    VirtualTime last_finish;  // largest virtual finish among arrived packets
    util::HeapHandle handle = util::kInvalidHeapHandle;
  };

  void pop_departures() {
    // Drain with an explicit absolute slack, not vt_leq's relative one: a
    // fluid departure is due when V reaches the finish tag and the 1e-12
    // absorbs only the accumulated-sum dust. hfq-lint: disable(tag-compare)
    while (!backlog_.empty() &&
           backlog_.top_key() <= vtime_ + Duration{1e-12}) {
      const FlowId id = backlog_.pop();
      flows_[id].handle = util::kInvalidHeapHandle;
      phi_sum_ -= flows_[id].rate / link_rate_;
    }
    if (backlog_.empty()) phi_sum_ = 0.0;
  }

  RateBps link_rate_;
  VirtualTime vtime_;
  WallTime ref_time_;
  double phi_sum_ = 0.0;  // sum of shares of fluid-backlogged flows
  std::vector<Flow> flows_;
  util::HandleHeap<VirtualTime, FlowId> backlog_;  // keyed by last_finish
};

}  // namespace hfq::sched
