// Self-Clocked Fair Queueing (SCFQ) — Golestani [9].
//
// Avoids tracking the fluid system entirely: the virtual time is simply the
// finish tag of the packet currently in service (O(1)). The price, which the
// paper quantifies, is that the virtual time can stall (slope 0), so delay
// bounds and WFI grow with the number of sessions.
#pragma once

#include <optional>

#include "sched/flat_base.h"

namespace hfq::sched {

class Scfq : public FlatSchedulerBase {
 public:
  Scfq() = default;

  bool enqueue(const Packet& p, Time /*now*/) override {
    FlowState& f = flow(p.flow);
    if (!f.queue.push(p)) return false;
    ++backlog_;
    if (f.queue.size() == 1) {
      // Tags from previous busy periods are discarded (Golestani restarts
      // the virtual clock every busy period).
      const VirtualTime f_prev =
          f.epoch == epoch_ ? f.finish : VirtualTime{};
      f.start = f_prev > vtime_ ? f_prev : vtime_;
      f.finish = f.start + p.bits() / f.rate;
      f.epoch = epoch_;
      f.handle = heads_.push(f.finish, p.flow);
    }
    return true;
  }

  std::optional<Packet> dequeue(Time /*now*/) override {
    if (heads_.empty()) {
      // Busy period over (the link polls after the final transmission):
      // restart the clock lazily via the epoch counter.
      vtime_ = VirtualTime{};
      ++epoch_;
      return std::nullopt;
    }
    const FlowId id = heads_.pop();
    FlowState& f = flow(id);
    f.handle = util::kInvalidHeapHandle;
    vtime_ = f.finish;  // the self-clock: V(t) = tag of packet in service
    Packet p = f.queue.pop();
    --backlog_;
    if (!f.queue.empty()) {
      f.start = f.finish;
      f.finish = f.start + f.queue.front().bits() / f.rate;
      f.handle = heads_.push(f.finish, id);
    }
    return p;
  }

  [[nodiscard]] double vtime() const noexcept { return vtime_.v(); }

 private:
  VirtualTime vtime_;
  std::uint64_t epoch_ = 1;
  util::HandleHeap<VirtualTime, FlowId> heads_;  // min finish tag (SFF)
};

}  // namespace hfq::sched
