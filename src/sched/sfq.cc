// StartTimeFq is header-only; this TU anchors the library target.
#include "sched/sfq.h"
