// Start-time Fair Queueing (SFQ) — Goyal, Vin & Cheng, 1996.
//
// A contemporary of WF²Q+ included as an extension baseline: tags are
// computed as in SCFQ but the server picks the smallest *start* tag, and the
// virtual time is the start tag of the packet in service. Complexity is
// O(log N); fairness is good but the delay bound is weaker than WF²Q+'s
// (inversely proportional to the session rate rather than the link rate).
#pragma once

#include <optional>

#include "sched/flat_base.h"

namespace hfq::sched {

class StartTimeFq : public FlatSchedulerBase {
 public:
  StartTimeFq() = default;

  bool enqueue(const Packet& p, Time /*now*/) override {
    FlowState& f = flow(p.flow);
    if (!f.queue.push(p)) return false;
    ++backlog_;
    if (f.queue.size() == 1) {
      const VirtualTime f_prev =
          f.epoch == epoch_ ? f.finish : VirtualTime{};
      f.start = f_prev > vtime_ ? f_prev : vtime_;
      f.finish = f.start + p.bits() / f.rate;
      f.epoch = epoch_;
      f.handle = heads_.push(f.start, p.flow);
    }
    return true;
  }

  std::optional<Packet> dequeue(Time /*now*/) override {
    if (heads_.empty()) {
      // Busy period over (the link polls after the final transmission):
      // restart the clock lazily via the epoch counter.
      vtime_ = VirtualTime{};
      ++epoch_;
      return std::nullopt;
    }
    const FlowId id = heads_.pop();
    FlowState& f = flow(id);
    f.handle = util::kInvalidHeapHandle;
    vtime_ = f.start;  // V(t) = start tag of the packet in service
    Packet p = f.queue.pop();
    --backlog_;
    if (!f.queue.empty()) {
      f.start = f.finish;
      f.finish = f.start + f.queue.front().bits() / f.rate;
      f.handle = heads_.push(f.start, id);
    }
    return p;
  }

  [[nodiscard]] double vtime() const noexcept { return vtime_.v(); }

 private:
  VirtualTime vtime_;
  std::uint64_t epoch_ = 1;
  util::HandleHeap<VirtualTime, FlowId> heads_;  // min start tag
};

}  // namespace hfq::sched
