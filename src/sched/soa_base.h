// Flat structure-of-arrays flow table for the million-flow schedulers.
//
// FlatSchedulerBase (sched/flat_base.h) keeps one ~200-byte FlowState per
// flow, dominated by a std::deque-backed FlowQueue whose header alone is
// ~80 bytes and whose first push heap-allocates a 512-byte block. At N=1M
// flows that is >1 GB of pointer-chasing working set — far beyond any cache
// level — and a per-packet allocation on the enqueue path. This base splits
// the flow table into parallel flat arrays sized by access pattern:
//
//   fifo_[id]  32 B  intrusive FIFO head/tail into the shared packet arena
//   rate_[id]   8 B  guaranteed rate (stamping)
//   meta_[id]   8 B  heap handle + registered/in_eligible flags
//
// plus the packet arena itself (one 64-byte slot per *queued* packet). Tag
// state (start/finish/epoch) stays in the concrete scheduler, which packs it
// with whatever numeric domain it uses (double virtual time, integer ticks).
// The result is ~50 bytes of table per idle flow and zero per-packet heap
// allocation — the whole 1M-flow working set fits in this machine's L3.
//
// The public accessor surface mirrors FlatSchedulerBase so tests and the
// runner treat both generations of scheduler uniformly. Flow ids are
// validated at this boundary: registration beyond net::kMaxFlows is refused,
// and a packet whose flow id was never registered is dropped and counted
// (unknown_flow_drops) instead of indexing — or worse, resizing — any table.
#pragma once

#include <cstdint>
#include <vector>

#include "audit/invariants.h"
#include "net/packet.h"
#include "net/packet_arena.h"
#include "net/scheduler.h"
#include "obs/flight_recorder.h"
#include "sched/tags.h"
#include "util/assert.h"
#include "util/heap.h"
#include "util/units.h"

namespace hfq::sched {

using net::FlowId;
using net::Packet;
using net::Time;
using units::Bits;
using units::Duration;
using units::RateBps;
using units::VirtualTime;
using units::WallTime;

class SoaSchedulerBase : public net::Scheduler {
 public:
  // Registers a flow. `rate_bps` is its guaranteed rate; `capacity_packets`
  // bounds the session buffer (0 = unlimited). Virtual so schedulers with
  // extra per-flow state can extend it and still be reached through a base
  // pointer.
  virtual void add_flow(FlowId id, double rate_bps,
                        std::size_t capacity_packets = 0) {
    HFQ_ASSERT(rate_bps > 0.0);
    HFQ_ASSERT_MSG(net::flow_id_in_bounds(id),
                   "flow id exceeds net::kMaxFlows");
    HFQ_ASSERT_MSG(capacity_packets < UINT32_MAX,
                   "per-flow capacity exceeds 2^32-1 packets");
    if (id >= meta_.size()) grow(static_cast<std::size_t>(id) + 1);
    HFQ_ASSERT_MSG(meta_[id].registered == 0, "flow registered twice");
    meta_[id].registered = 1;
    rate_[id] = RateBps{rate_bps};
    fifo_[id] = net::ArenaFifo(static_cast<std::uint32_t>(capacity_packets));
  }

  // Pre-sizes the flow table and the packet arena (optional amortization;
  // both grow on demand).
  void reserve(std::size_t flows, std::size_t packets) {
    meta_.reserve(flows);
    rate_.reserve(flows);
    fifo_.reserve(flows);
    arena_.reserve(packets);
  }

  [[nodiscard]] std::size_t backlog_packets() const override {
    return backlog_;
  }

  [[nodiscard]] std::uint64_t drops(FlowId id) const {
    HFQ_ASSERT(known_flow(id));
    return fifo_[id].drops();
  }

  [[nodiscard]] std::size_t queue_length(FlowId id) const {
    HFQ_ASSERT(known_flow(id));
    return fifo_[id].size();
  }

  [[nodiscard]] double rate_of(FlowId id) const {
    HFQ_ASSERT(known_flow(id));
    return rate_[id].bps();
  }

  [[nodiscard]] std::size_t flow_count() const noexcept {
    return meta_.size();
  }

  // Packets dropped because their flow id was never registered (the
  // boundary-validation path; see net::kMaxFlows).
  [[nodiscard]] std::uint64_t unknown_flow_drops() const noexcept {
    return unknown_flow_drops_;
  }

 protected:
  // Handle + flags, packed to 8 bytes so the flag check and the handle
  // update on the dequeue path share one load.
  struct Meta {
    util::HeapHandle handle = util::kInvalidHeapHandle;
    std::uint8_t registered = 0;
    std::uint8_t in_eligible = 0;
    std::uint16_t reserved = 0;
  };
  static_assert(sizeof(Meta) == 8, "Meta must stay one 8-byte word");

  [[nodiscard]] bool known_flow(FlowId id) const noexcept {
    return id < meta_.size() && meta_[id].registered != 0;
  }

  // Boundary validation for the enqueue hot path: false (and a counted
  // drop) for any id that no add_flow ever registered. The caller must not
  // index the flow table when this returns false.
  [[nodiscard]] bool accept_flow(FlowId id) {
    if (known_flow(id)) return true;
    ++unknown_flow_drops_;
    return false;
  }

  void grow(std::size_t n) {
    meta_.resize(n);
    rate_.resize(n);
    fifo_.resize(n);
  }

  // Backlog conservation: the packet counter must equal the sum of the
  // per-flow queue lengths at every quiescent point. O(flows); called from
  // audit hooks only.
  [[nodiscard]] std::size_t audit_queued_packets() const {
    std::size_t n = 0;
    for (const net::ArenaFifo& q : fifo_) n += q.size();
    return n;
  }

  // Flight-recorder hooks (obs/flight_recorder.h) — same shape as
  // FlatSchedulerBase's so a trace consumer cannot tell the generations
  // apart. No-ops unless the build compiles the hooks in (HFQ_TRACE) AND a
  // recorder is installed on this thread. `v` is the scheduler's virtual
  // time after the operation. trace_flip takes the tags explicitly because
  // tag storage lives in the concrete scheduler.
  void trace_enqueue([[maybe_unused]] FlowId id,
                     [[maybe_unused]] const Packet& p,
                     [[maybe_unused]] Time now,
                     [[maybe_unused]] VirtualTime v) const {
    HFQ_TRACE_EVENT(enqueue(obs::kFlatNode, id, p.id, WallTime{now}, v,
                            p.size_bits(), static_cast<double>(backlog_)));
  }
  void trace_dequeue([[maybe_unused]] FlowId id,
                     [[maybe_unused]] const Packet& p,
                     [[maybe_unused]] Time now,
                     [[maybe_unused]] VirtualTime v) const {
    HFQ_TRACE_EVENT(dequeue(obs::kFlatNode, id, p.id, WallTime{now}, v,
                            p.size_bits(), static_cast<double>(backlog_)));
  }
  void trace_drop([[maybe_unused]] FlowId id, [[maybe_unused]] const Packet& p,
                  [[maybe_unused]] Time now) const {
    HFQ_TRACE_EVENT(
        drop(obs::kFlatNode, id, p.id, WallTime{now}, p.size_bits()));
  }
  void trace_flip([[maybe_unused]] FlowId id, [[maybe_unused]] Time now,
                  [[maybe_unused]] VirtualTime v,
                  [[maybe_unused]] VirtualTime start,
                  [[maybe_unused]] VirtualTime finish,
                  [[maybe_unused]] bool now_eligible) const {
    HFQ_TRACE_EVENT(eligibility_flip(obs::kFlatNode, id, WallTime{now}, v,
                                     start, finish, now_eligible));
  }

  net::PacketArena arena_;
  std::vector<Meta> meta_;
  std::vector<RateBps> rate_;
  std::vector<net::ArenaFifo> fifo_;
  std::size_t backlog_ = 0;
  std::uint64_t unknown_flow_drops_ = 0;
};

}  // namespace hfq::sched
