// StochasticFq is header-only; this TU anchors the library target.
#include "sched/stochastic_fq.h"
