// Stochastic Fair Queueing — McKenney [12].
//
// Fairness on the cheap: flows are hashed into a fixed number of buckets
// and the buckets are served round-robin (packet-by-packet). Colliding
// flows share one bucket's service; a keyed hash perturbs the mapping so
// collisions are not permanent across restarts. No per-flow rates at all —
// included as the paper's related-work baseline for "approximating fair
// queueing with lower complexity" and measured in the WFI table.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "net/flow.h"
#include "net/scheduler.h"
#include "util/assert.h"

namespace hfq::sched {

class StochasticFq : public net::Scheduler {
 public:
  // `buckets` should be a few times the expected number of active flows;
  // `per_bucket_capacity` bounds each bucket (0 = unlimited); `hash_key`
  // seeds the perturbable hash.
  explicit StochasticFq(std::size_t buckets,
                        std::size_t per_bucket_capacity = 0,
                        std::uint64_t hash_key = 0x9e3779b97f4a7c15ULL)
      : key_(hash_key) {
    HFQ_ASSERT(buckets > 0);
    buckets_.reserve(buckets);
    for (std::size_t i = 0; i < buckets; ++i) {
      buckets_.emplace_back(per_bucket_capacity);
    }
  }

  bool enqueue(const net::Packet& p, net::Time /*now*/) override {
    const std::size_t b = bucket_of(p.flow);
    net::FlowQueue& q = buckets_[b];
    const bool was_empty = q.empty();
    if (!q.push(p)) return false;
    ++backlog_;
    if (was_empty) active_.push_back(b);
    return true;
  }

  std::optional<net::Packet> dequeue(net::Time /*now*/) override {
    if (active_.empty()) return std::nullopt;
    const std::size_t b = active_.front();
    active_.pop_front();
    net::Packet p = buckets_[b].pop();
    --backlog_;
    if (!buckets_[b].empty()) active_.push_back(b);
    return p;
  }

  [[nodiscard]] std::size_t backlog_packets() const override {
    return backlog_;
  }

  // Re-keys the hash ("perturbation") — colliding flows get re-spread.
  // Queued packets stay in their old buckets and drain round-robin.
  void perturb(std::uint64_t new_key) { key_ = new_key; }

  [[nodiscard]] std::size_t bucket_of(net::FlowId flow) const {
    // Fibonacci-style mix keyed by key_.
    std::uint64_t x = (static_cast<std::uint64_t>(flow) + 1) * key_;
    x ^= x >> 29;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 32;
    return static_cast<std::size_t>(x % buckets_.size());
  }

  [[nodiscard]] std::uint64_t drops() const {
    std::uint64_t n = 0;
    for (const auto& b : buckets_) n += b.drops();
    return n;
  }

 private:
  std::uint64_t key_;
  std::vector<net::FlowQueue> buckets_;
  std::deque<std::size_t> active_;
  std::size_t backlog_ = 0;
};

}  // namespace hfq::sched
