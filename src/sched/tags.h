// Tag-comparison policy and heap key shared by every scheduler generation
// (the AoS FlatSchedulerBase zoo and the SoA million-flow datapath).
#pragma once

#include <cstdint>

#include "util/units.h"

namespace hfq::sched {

// Comparison tolerance for virtual-time eligibility tests: absolute epsilon
// scaled to the magnitude of the tags involved. This is THE sanctioned way
// to compare tags for eligibility — direct relational operators on tag
// fields are flagged by tools/hfq_lint (rule tag-compare).
[[nodiscard]] constexpr bool vt_leq(units::VirtualTime a,
                                    units::VirtualTime b) {
  return units::approx_leq(a.v(), b.v());
}

// Same tolerance for wall-clock instants (busy-period boundary tests).
[[nodiscard]] constexpr bool wt_leq(units::WallTime a, units::WallTime b) {
  return units::approx_leq(a.seconds(), b.seconds());
}

// Heap key for virtual-time tags: equal tags are ordered by packet arrival
// sequence, reproducing the classic "global packet priority queue" tie
// semantics of WFQ (the paper's Fig. 2 timeline depends on this: session 1's
// tenth packet ties at virtual finish 20 with the ten one-packet sessions
// and wins because it arrived first).
struct VtKey {
  units::VirtualTime tag;
  std::uint64_t arrival_no = 0;

  friend bool operator<(const VtKey& a, const VtKey& b) {
    if (a.tag != b.tag) return a.tag < b.tag;
    return a.arrival_no < b.arrival_no;
  }
};

}  // namespace hfq::sched
