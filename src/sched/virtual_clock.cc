// VirtualClock is header-only; this TU anchors the library target.
#include "sched/virtual_clock.h"
