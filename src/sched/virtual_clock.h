// Virtual Clock (Zhang, 1990) — an early rate-based discipline included as
// a contrast baseline.
//
// Each flow keeps an auxiliary clock advanced by L/r_i per packet, lower
// bounded by real time; the server transmits the smallest clock value.
// Unlike the GPS family it *remembers* past excess: a flow that used idle
// bandwidth has its clock run ahead of real time and is then locked out
// while others catch up — unbounded unfairness, which the WFI table
// benchmarks make visible.
#pragma once

#include <optional>
#include <vector>

#include "sched/flat_base.h"

namespace hfq::sched {

class VirtualClock : public FlatSchedulerBase {
 public:
  VirtualClock() = default;

  void add_flow(FlowId id, double rate_bps,
                std::size_t capacity_packets = 0) override {
    FlatSchedulerBase::add_flow(id, rate_bps, capacity_packets);
    if (id >= aux_.size()) aux_.resize(id + 1);
  }

  bool enqueue(const Packet& p, Time now) override {
    FlowState& f = flow(p.flow);
    if (!f.queue.push(p)) return false;
    ++backlog_;
    // Stamp every packet at arrival: auxVC = max(now, auxVC) + L/r.
    // Per-session storage suffices because stamps within a flow are
    // monotone; the head stamp is reconstructed below. Unlike the GPS
    // family the tags live on the *wall-clock* axis (the aux clock is
    // lower bounded by real time), hence WallTime rather than VirtualTime.
    if (f.queue.size() == 1) {
      AuxClock& a = aux_[p.flow];
      const WallTime t{now};
      a.start = a.finish > t ? a.finish : t;
      a.finish = a.start + p.bits() / f.rate;
      f.handle = heads_.push(a.finish, p.flow);
    }
    // Packets queued behind the head chain their stamps at dequeue time.
    return true;
  }

  std::optional<Packet> dequeue(Time now) override {
    if (heads_.empty()) return std::nullopt;
    const FlowId id = heads_.pop();
    FlowState& f = flow(id);
    f.handle = util::kInvalidHeapHandle;
    Packet p = f.queue.pop();
    --backlog_;
    if (!f.queue.empty()) {
      AuxClock& a = aux_[id];
      const WallTime t{now};
      a.start = a.finish > t ? a.finish : t;
      a.finish = a.start + f.queue.front().bits() / f.rate;
      f.handle = heads_.push(a.finish, id);
    }
    return p;
  }

 private:
  // The per-flow auxiliary clock persists across idle periods — that memory
  // of past excess service is the defining (mis)feature of Virtual Clock.
  struct AuxClock {
    WallTime start;
    WallTime finish;
  };

  std::vector<AuxClock> aux_;
  util::HandleHeap<WallTime, FlowId> heads_;  // min auxVC
};

}  // namespace hfq::sched
