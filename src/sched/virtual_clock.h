// Virtual Clock (Zhang, 1990) — an early rate-based discipline included as
// a contrast baseline.
//
// Each flow keeps an auxiliary clock advanced by L/r_i per packet, lower
// bounded by real time; the server transmits the smallest clock value.
// Unlike the GPS family it *remembers* past excess: a flow that used idle
// bandwidth has its clock run ahead of real time and is then locked out
// while others catch up — unbounded unfairness, which the WFI table
// benchmarks make visible.
#pragma once

#include <optional>

#include "sched/flat_base.h"

namespace hfq::sched {

class VirtualClock : public FlatSchedulerBase {
 public:
  VirtualClock() = default;

  bool enqueue(const Packet& p, Time now) override {
    FlowState& f = flow(p.flow);
    if (!f.queue.push(p)) return false;
    ++backlog_;
    // Stamp every packet at arrival: auxVC = max(now, auxVC) + L/r.
    // Per-session storage suffices because stamps within a flow are
    // monotone; the head stamp is reconstructed below.
    if (f.queue.size() == 1) {
      f.start = f.finish > now ? f.finish : now;
      f.finish = f.start + p.size_bits() / f.rate;
      f.handle = heads_.push(f.finish, p.flow);
    }
    // Packets queued behind the head chain their stamps at dequeue time.
    return true;
  }

  std::optional<Packet> dequeue(Time now) override {
    if (heads_.empty()) return std::nullopt;
    const FlowId id = heads_.pop();
    FlowState& f = flow(id);
    f.handle = util::kInvalidHeapHandle;
    Packet p = f.queue.pop();
    --backlog_;
    if (!f.queue.empty()) {
      f.start = f.finish > now ? f.finish : now;
      f.finish = f.start + f.queue.front().size_bits() / f.rate;
      f.handle = heads_.push(f.finish, id);
    }
    return p;
  }

 private:
  util::HandleHeap<double, FlowId> heads_;  // min auxVC
};

}  // namespace hfq::sched
