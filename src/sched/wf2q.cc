// Wf2q is header-only; this TU anchors the library target.
#include "sched/wf2q.h"
