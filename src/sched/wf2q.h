// Worst-case Fair Weighted Fair Queueing (WF²Q) — Bennett & Zhang [2].
//
// Like WFQ it stamps packets against the exact GPS virtual time, but the
// server uses the Smallest Eligible virtual Finish time First (SEFF) policy:
// only packets that have already started service in the fluid GPS system
// (virtual start <= current virtual time) may be picked. This gives the
// optimal Worst-case Fair Index at the cost of the expensive O(N) virtual
// time function — the gap that WF²Q+ (src/core/wf2qplus.h) closes.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "sched/flat_base.h"
#include "sched/gps_virtual_time.h"

namespace hfq::sched {

class Wf2q : public FlatSchedulerBase {
 public:
  explicit Wf2q(double link_rate_bps) : vt_(link_rate_bps) {}

  void add_flow(FlowId id, double rate_bps,
                std::size_t capacity_packets = 0) override {
    FlatSchedulerBase::add_flow(id, rate_bps, capacity_packets);
    vt_.add_flow(id, rate_bps);
    if (id >= stamps_.size()) stamps_.resize(id + 1);
  }

  bool enqueue(const Packet& p, Time now) override {
    FlowState& f = flow(p.flow);
    if (!f.queue.push(p)) return false;
    const auto st = vt_.on_arrival(WallTime{now}, p.flow, p.bits());
    stamps_[p.flow].push_back(Entry{st, arrival_counter_++});
    ++backlog_;
    if (f.queue.size() == 1) set_head(p.flow);
    return true;
  }

  std::optional<Packet> dequeue(Time now) override {
    vt_.advance_to(WallTime{now});
    migrate_eligible();
    FlowId id;
    if (!eligible_.empty()) {
      id = eligible_.pop();
    } else if (!waiting_.empty()) {
      // Theory guarantees an eligible packet whenever the server is busy;
      // this branch only absorbs floating-point edge cases by falling back
      // to the smallest start time.
      id = waiting_.pop();
    } else {
      return std::nullopt;
    }
    FlowState& f = flow(id);
    f.handle = util::kInvalidHeapHandle;
    Packet p = f.queue.pop();
    stamps_[id].pop_front();
    --backlog_;
    if (!f.queue.empty()) set_head(id);
    return p;
  }

  [[nodiscard]] double vtime() const noexcept { return vt_.vtime(); }

 private:
  struct Entry {
    GpsVirtualTime::Stamp stamp;
    std::uint64_t arrival_no = 0;
  };

  void set_head(FlowId id) {
    FlowState& f = flow(id);
    const Entry& e = stamps_[id].front();
    f.start = e.stamp.start;
    f.finish = e.stamp.finish;
    if (vt_leq(f.start, vt_.vnow())) {
      f.in_eligible = true;
      f.handle = eligible_.push(VtKey{f.finish, e.arrival_no}, id);
    } else {
      f.in_eligible = false;
      f.handle = waiting_.push(VtKey{f.start, e.arrival_no}, id);
    }
  }

  // Moves flows whose head has started in the fluid system into the
  // eligible heap.
  void migrate_eligible() {
    while (!waiting_.empty() && vt_leq(waiting_.top_key().tag, vt_.vnow())) {
      const FlowId id = waiting_.pop();
      FlowState& f = flow(id);
      f.in_eligible = true;
      f.handle = eligible_.push(
          VtKey{f.finish, stamps_[id].front().arrival_no}, id);
    }
  }

  GpsVirtualTime vt_;
  std::vector<std::deque<Entry>> stamps_;
  std::uint64_t arrival_counter_ = 0;
  util::HandleHeap<VtKey, FlowId> eligible_;  // keyed by virtual finish
  util::HandleHeap<VtKey, FlowId> waiting_;   // keyed by virtual start
};

}  // namespace hfq::sched
