// Wf2qPlusPerPacket is header-only; this TU anchors the library target.
#include "sched/wf2qplus_perpacket.h"
