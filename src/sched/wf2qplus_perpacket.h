// WF²Q+ with per-packet tags — the formulation the paper simplifies away.
//
// Section 3.4 notes that maintaining per-packet virtual start/finish times
// (Eqs. 6–7) "may not be acceptable for networks with small packet sizes"
// and introduces the per-session form (Eqs. 28–29) used by core::Wf2qPlus.
// This class implements the *original* per-packet formulation as a
// differential reference. The two schedules coincide as long as V never
// overtakes a backlogged session's newest finish tag (then
// max(F_prev, V) == F_prev and the stamps agree); under sustained overload
// V can pass an overdue session's tags — V is only bounded by the maximum
// finish tag — and the formulations legitimately order later ties
// differently. Both are valid WF²Q+ schedules: the differential fuzzer
// (audit/fuzz.cc) checks their per-flow service stays within one maximum
// packet, and tests/test_differential.cc pins exact equality on moderate
// loads where the condition holds.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "sched/flat_base.h"

namespace hfq::sched {

class Wf2qPlusPerPacket : public FlatSchedulerBase {
 public:
  explicit Wf2qPlusPerPacket(double link_rate_bps)
      : link_rate_(RateBps{link_rate_bps}) {
    HFQ_ASSERT(link_rate_bps > 0.0);
  }

  void add_flow(FlowId id, double rate_bps,
                std::size_t capacity_packets = 0) override {
    FlatSchedulerBase::add_flow(id, rate_bps, capacity_packets);
    if (id >= tags_.size()) tags_.resize(id + 1);
  }

  bool enqueue(const Packet& p, Time /*now*/) override {
    FlowState& f = flow(p.flow);
    if (!f.queue.push(p)) return false;
    // Per-packet stamping at ARRIVAL time (Eqs. 6–7 with V_WF2Q+):
    // S^k = max(F^{k-1}, V(a)), F^k = S^k + L/r_i.
    PerFlow& t = tags_[p.flow];
    const VirtualTime f_prev =
        t.epoch == epoch_ &&
                !(t.stamps.empty() && t.last_finish == VirtualTime{})
            ? t.last_finish
            : VirtualTime{};
    Stamp st;
    st.start = f_prev > vtime_ ? f_prev : vtime_;
    st.finish = st.start + p.bits() / f.rate;
    st.arrival_no = arrival_counter_++;
    t.last_finish = st.finish;
    t.epoch = epoch_;
    t.stamps.push_back(st);
    ++backlog_;
    if (f.queue.size() == 1) insert_head(p.flow);
    return true;
  }

  std::optional<Packet> dequeue(Time /*now*/) override {
    if (backlog_ == 0) {
      vtime_ = VirtualTime{};
      ++epoch_;
      return std::nullopt;
    }
    VirtualTime v_now = vtime_;
    if (eligible_.empty()) {
      HFQ_ASSERT(!waiting_.empty());
      const VirtualTime smin = waiting_.top_key().tag;
      if (smin > v_now) v_now = smin;
    }
    while (!waiting_.empty() && vt_leq(waiting_.top_key().tag, v_now)) {
      const FlowId id = waiting_.pop();
      FlowState& f = flow(id);
      f.in_eligible = true;
      const Stamp& st = tags_[id].stamps.front();
      f.handle = eligible_.push(VtKey{st.finish, st.arrival_no}, id);
    }
    HFQ_ASSERT(!eligible_.empty());
    const FlowId id = eligible_.pop();
    FlowState& f = flow(id);
    f.handle = util::kInvalidHeapHandle;
    Packet p = f.queue.pop();
    tags_[id].stamps.pop_front();
    --backlog_;
    vtime_ = v_now + p.bits() / link_rate_;
    if (!f.queue.empty()) insert_head(id);
    return p;
  }

  [[nodiscard]] double vtime() const noexcept { return vtime_.v(); }

 private:
  struct Stamp {
    VirtualTime start;
    VirtualTime finish;
    std::uint64_t arrival_no = 0;
  };
  struct PerFlow {
    std::deque<Stamp> stamps;  // one per queued packet
    VirtualTime last_finish;   // F of the newest stamped packet
    std::uint64_t epoch = 0;
  };

  void insert_head(FlowId id) {
    FlowState& f = flow(id);
    const Stamp& st = tags_[id].stamps.front();
    f.start = st.start;
    f.finish = st.finish;
    if (vt_leq(st.start, vtime_)) {
      f.in_eligible = true;
      f.handle = eligible_.push(VtKey{st.finish, st.arrival_no}, id);
    } else {
      f.in_eligible = false;
      f.handle = waiting_.push(VtKey{st.start, st.arrival_no}, id);
    }
  }

  RateBps link_rate_;
  VirtualTime vtime_;
  std::uint64_t epoch_ = 1;
  std::uint64_t arrival_counter_ = 0;
  std::vector<PerFlow> tags_;
  util::HandleHeap<VtKey, FlowId> eligible_;
  util::HandleHeap<VtKey, FlowId> waiting_;
};

}  // namespace hfq::sched
