// Wfq is header-only; this TU anchors the library target.
#include "sched/wfq.h"
