// Weighted Fair Queueing (WFQ / PGPS) — Demers, Keshav & Shenker [6];
// Parekh & Gallager [14].
//
// Packets are stamped with virtual start/finish times from the exact GPS
// virtual time function; the server picks the Smallest virtual Finish time
// First (SFF) among all queued packets. This is the paper's principal
// baseline: tight delay bound but a Worst-case Fair Index that grows with
// the number of sessions (Section 3.1).
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "sched/flat_base.h"
#include "sched/gps_virtual_time.h"

namespace hfq::sched {

class Wfq : public FlatSchedulerBase {
 public:
  explicit Wfq(double link_rate_bps) : vt_(link_rate_bps) {}

  void add_flow(FlowId id, double rate_bps,
                std::size_t capacity_packets = 0) override {
    FlatSchedulerBase::add_flow(id, rate_bps, capacity_packets);
    vt_.add_flow(id, rate_bps);
    if (id >= stamps_.size()) stamps_.resize(id + 1);
  }

  bool enqueue(const Packet& p, Time now) override {
    FlowState& f = flow(p.flow);
    if (!f.queue.push(p)) return false;
    // Stamp only accepted packets — dropped traffic never enters the
    // reference fluid system.
    const auto st = vt_.on_arrival(WallTime{now}, p.flow, p.bits());
    stamps_[p.flow].push_back(Entry{st, arrival_counter_++});
    ++backlog_;
    if (f.queue.size() == 1) set_head(p.flow);
    return true;
  }

  std::optional<Packet> dequeue(Time now) override {
    vt_.advance_to(WallTime{now});
    if (heads_.empty()) return std::nullopt;
    const FlowId id = heads_.pop();
    FlowState& f = flow(id);
    f.handle = util::kInvalidHeapHandle;
    Packet p = f.queue.pop();
    stamps_[id].pop_front();
    --backlog_;
    if (!f.queue.empty()) set_head(id);
    return p;
  }

  // Virtual tags of the head packet (exposed for tests/benchmarks).
  [[nodiscard]] GpsVirtualTime::Stamp head_stamp(FlowId id) const {
    HFQ_ASSERT(!stamps_[id].empty());
    return stamps_[id].front().stamp;
  }

  [[nodiscard]] double vtime() const noexcept { return vt_.vtime(); }

 private:
  struct Entry {
    GpsVirtualTime::Stamp stamp;
    std::uint64_t arrival_no = 0;
  };

  void set_head(FlowId id) {
    FlowState& f = flow(id);
    const Entry& e = stamps_[id].front();
    f.start = e.stamp.start;
    f.finish = e.stamp.finish;
    f.handle = heads_.push(VtKey{f.finish, e.arrival_no}, id);
  }

  GpsVirtualTime vt_;
  std::vector<std::deque<Entry>> stamps_;
  std::uint64_t arrival_counter_ = 0;
  util::HandleHeap<VtKey, FlowId> heads_;  // min virtual finish time (SFF)
};

}  // namespace hfq::sched
