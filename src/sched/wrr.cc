// Wrr is header-only; this TU anchors the library target.
#include "sched/wrr.h"
