// Weighted Round Robin — the simplest weighted baseline.
//
// Serves up to w_i packets from flow i per round, w_i proportional to the
// configured rate. Ignores packet sizes entirely (DRR [17] exists to fix
// exactly that), so its fairness degrades with variable-size packets —
// demonstrated in the scheduler-comparison tests.
#pragma once

#include <deque>
#include <optional>

#include "sched/flat_base.h"

namespace hfq::sched {

class Wrr : public FlatSchedulerBase {
 public:
  // `base_rate` maps rates to integer per-round packet counts:
  // w_i = max(1, round(rate_i / base_rate)).
  explicit Wrr(double base_rate_bps) : base_rate_(base_rate_bps) {
    HFQ_ASSERT(base_rate_bps > 0.0);
  }

  bool enqueue(const Packet& p, Time /*now*/) override {
    FlowState& f = flow(p.flow);
    if (!f.queue.push(p)) return false;
    ++backlog_;
    if (f.queue.size() == 1) {
      f.round_served = 0.0;
      f.visited_this_round = false;
      active_.push_back(p.flow);
    }
    return true;
  }

  std::optional<Packet> dequeue(Time /*now*/) override {
    while (!active_.empty()) {
      const FlowId id = active_.front();
      FlowState& f = flow(id);
      if (f.round_served < weight_of(id)) {
        f.round_served += 1.0;
        Packet p = f.queue.pop();
        --backlog_;
        if (f.queue.empty()) {
          f.round_served = 0.0;
          active_.pop_front();
        }
        return p;
      }
      // Round quota exhausted: rotate.
      f.round_served = 0.0;
      active_.pop_front();
      active_.push_back(id);
    }
    return std::nullopt;
  }

  [[nodiscard]] double weight_of(FlowId id) const {
    const double w = flow(id).rate.bps() / base_rate_;
    return w < 1.0 ? 1.0 : static_cast<double>(static_cast<int>(w + 0.5));
  }

 private:
  double base_rate_;
  std::deque<FlowId> active_;
};

}  // namespace hfq::sched
