#include "serve/edits.h"

#include <cctype>
#include <sstream>
#include <stdexcept>

namespace hfq::serve {

namespace {

// Tree-parser rate grammar: a positive decimal with an optional k/M/G
// suffix (powers of ten, bits/sec).
double parse_rate(const std::string& tok, const std::string& line) {
  double mult = 1.0;
  std::string num = tok;
  if (!num.empty()) {
    switch (num.back()) {
      case 'k': case 'K': mult = 1e3; num.pop_back(); break;
      case 'M':           mult = 1e6; num.pop_back(); break;
      case 'G':           mult = 1e9; num.pop_back(); break;
      default: break;
    }
  }
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(num, &used);
  } catch (const std::exception&) {
    throw std::runtime_error("serve edit: bad rate '" + tok + "' in: " + line);
  }
  if (used != num.size() || !(v > 0.0)) {
    throw std::runtime_error("serve edit: bad rate '" + tok + "' in: " + line);
  }
  return v * mult;
}

std::uint64_t parse_uint(const std::string& tok, const std::string& line) {
  std::size_t used = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(tok, &used);
  } catch (const std::exception&) {
    throw std::runtime_error("serve edit: bad integer '" + tok +
                             "' in: " + line);
  }
  if (used != tok.size()) {
    throw std::runtime_error("serve edit: bad integer '" + tok +
                             "' in: " + line);
  }
  return v;
}

}  // namespace

std::vector<EditOp> parse_edits(const std::string& text) {
  std::vector<EditOp> ops;
  std::istringstream lines(text);
  std::string raw;
  while (std::getline(lines, raw)) {
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream ls(raw);
    std::vector<std::string> toks;
    for (std::string t; ls >> t;) toks.push_back(t);
    if (toks.empty()) continue;

    EditOp op;
    if (toks[0] == "remove") {
      if (toks.size() != 2) {
        throw std::runtime_error("serve edit: expected 'remove <name>' in: " +
                                 raw);
      }
      op.kind = EditOp::Kind::kRemove;
      op.name = toks[1];
      ops.push_back(std::move(op));
      continue;
    }

    // Upsert: <name> <rate> [flow=<id>] [cap=<packets>]
    if (toks.size() < 2) {
      throw std::runtime_error(
          "serve edit: expected '<name> <rate> [flow=..] [cap=..]' in: " +
          raw);
    }
    op.kind = EditOp::Kind::kUpsert;
    op.name = toks[0];
    op.rate_bps = parse_rate(toks[1], raw);
    for (std::size_t i = 2; i < toks.size(); ++i) {
      const std::string& t = toks[i];
      if (t.rfind("flow=", 0) == 0) {
        op.has_flow = true;
        op.flow = static_cast<net::FlowId>(parse_uint(t.substr(5), raw));
      } else if (t.rfind("cap=", 0) == 0) {
        op.capacity_packets =
            static_cast<std::size_t>(parse_uint(t.substr(4), raw));
      } else {
        throw std::runtime_error("serve edit: unknown attribute '" + t +
                                 "' in: " + raw);
      }
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

}  // namespace hfq::serve
