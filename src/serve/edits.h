// Live hierarchy edits for the scheduler service (DESIGN.md "Service",
// epoch-edit protocol).
//
// An edit batch is text in the tree-parser session-line grammar
// (core/tree_parser.h), one statement per line, '#' comments to EOL:
//
//   <name> <rate> [flow=<id>] [cap=<packets>]   # upsert
//   remove <name>                               # drop the session
//
// An upsert of a name the service already knows is a RE-WEIGHT (the rate
// changes, the flow binding must not); an upsert of a new name is an ADD
// and must carry flow=. Rates accept the tree parser's k/M/G suffixes
// (powers of ten, bits/sec).
//
// Parsing is name-level only: the service resolves names against its own
// directory and dispatches resolved flow-id operations to the owning shard,
// which applies them at an epoch boundary (serve/shard.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.h"

namespace hfq::serve {

// One parsed statement (names not yet resolved to flows/shards).
struct EditOp {
  enum class Kind { kUpsert, kRemove };
  Kind kind = Kind::kUpsert;
  std::string name;
  double rate_bps = 0.0;                   // kUpsert
  bool has_flow = false;                   // kUpsert: flow= present
  net::FlowId flow = 0;                    // valid iff has_flow
  std::size_t capacity_packets = 0;        // kUpsert: cap= (0 = unlimited)
};

// A flow-level operation after name resolution, ready for one shard.
struct ResolvedEdit {
  enum class Kind { kAdd, kSetRate, kRemove };
  Kind kind = Kind::kAdd;
  net::FlowId flow = 0;
  double rate_bps = 0.0;            // kAdd / kSetRate
  std::size_t capacity_packets = 0; // kAdd
};

// Parses an edit batch. Throws std::runtime_error with the offending line
// on any syntax error (unknown verb, missing rate, malformed attribute).
[[nodiscard]] std::vector<EditOp> parse_edits(const std::string& text);

}  // namespace hfq::serve
