// Epoch-boundary edit handoff: the single-slot ticket/ack protocol between
// the control plane and a shard loop (DESIGN.md "Service", live edits).
//
// Extracted from Shard so the protocol is (a) reusable and (b) checkable:
// like BasicMpscRing, the class is templated over the atomic implementation
// and the wait-loop backoff, so the *same source* runs in production on
// std::atomic + a sleeping backoff and under the model checker
// (src/verify/) on verify::atomic + a cooperative yield. The `epoch-gate`
// scenario in hfq_verify exhaustively checks the linearizability contract
// below; the memory_order annotations carry `// verify:` justifications per
// the atomic-ordering lint rule.
//
// Protocol:
//   control plane           shard loop (per epoch boundary)
//   ------------------      -------------------------------
//   submit(batch):          take():
//     CAS slot nullptr->b     exchange slot -> b (acquire)
//       (release)           ...apply b to the scheduler...
//     ticket = ++submitted  ack():
//   wait_for(ticket):         ++applied (release)
//     applied >= ticket?
//       (acquire)
//
// Contract (ack => visible): wait_for(t) returning true happens-after the
// shard's ack of batch t, and the ack's release pairs with wait_for's
// acquire — so every scheduler mutation the epoch applied is visible to the
// control plane. The slot CAS/exchange pair likewise publishes the batch
// contents to the shard. Only ONE consumer may call take()/ack().
//
// Liveness: submit spins when a previous batch is still waiting for its
// epoch boundary — the control plane is allowed to wait, the shard loop
// never does. Both wait loops poll an `alive` predicate so a stopped or
// faulted shard cannot strand the control plane.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>

namespace hfq::serve {

// Production backoff for the control-plane wait loops.
struct SleepBackoff {
  static void pause() {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
};

template <class Batch, template <class> class AtomicT = std::atomic,
          class Backoff = SleepBackoff>
class EpochGate {
 public:
  EpochGate() = default;
  EpochGate(const EpochGate&) = delete;
  EpochGate& operator=(const EpochGate&) = delete;

  ~EpochGate() {
    // verify: acquire — teardown runs after the consumer thread is joined;
    // the acquire covers the (edge) case of a batch submitted but never
    // taken, so its contents are visible to the deleting thread.
    delete pending_.exchange(nullptr, std::memory_order_acquire);
  }

  // Control plane: hands `batch` to the consumer, to be applied at its
  // next epoch boundary. Returns the ticket to pass to wait_for(), or —
  // when `alive()` goes false while a previous batch still occupies the
  // slot — frees the batch and returns the current submission count
  // (wait_for on it then reports whether those earlier batches landed).
  template <class AliveFn>
  std::uint64_t submit(std::unique_ptr<Batch> batch, AliveFn&& alive) {
    Batch* raw = batch.release();
    Batch* expected = nullptr;
    // verify: release on success — publishes the batch contents to the
    // consumer's acquire exchange in take(); relaxed on failure — the
    // retry only needs the observed pointer, which CAS reloads anyway.
    while (!pending_.compare_exchange_weak(expected, raw,
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {
      expected = nullptr;
      if (!alive()) {
        delete raw;
        // verify: relaxed — monotone counter read; the caller only
        // compares tickets, no payload is accessed off this value.
        return submitted_.load(std::memory_order_relaxed);
      }
      Backoff::pause();
    }
    // verify: relaxed — ticket arithmetic only; the applied_/wait_for
    // acquire-release pair carries all cross-thread ordering.
    return submitted_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  // Control plane: blocks until batch `ticket` was acked (true) or
  // `alive()` went false first (false). On true, everything the consumer
  // did before ack() is visible to the caller.
  template <class AliveFn>
  bool wait_for(std::uint64_t ticket, AliveFn&& alive) const {
    for (;;) {
      // verify: acquire — pairs with ack()'s release fetch_add; seeing
      // applied >= ticket makes the epoch's scheduler mutations visible.
      if (applied_.load(std::memory_order_acquire) >= ticket) return true;
      if (!alive()) return false;
      Backoff::pause();
    }
  }

  // Consumer (ONE thread): claims the pending batch, or nullptr. The
  // caller applies it, then calls ack() exactly once per non-null take().
  std::unique_ptr<Batch> take() {
    // verify: acquire — pairs with submit()'s release CAS; the batch
    // contents are visible before the consumer walks them.
    return std::unique_ptr<Batch>(
        pending_.exchange(nullptr, std::memory_order_acquire));
  }

  // Consumer: publishes the applied epoch to wait_for().
  void ack() {
    // verify: release — pairs with wait_for()'s acquire load; everything
    // the epoch applied happens-before the control plane's wakeup.
    applied_.fetch_add(1, std::memory_order_release);
  }

  [[nodiscard]] std::uint64_t submitted() const noexcept {
    // verify: relaxed — monitoring counter.
    return submitted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t applied() const noexcept {
    // verify: relaxed — monitoring counter.
    return applied_.load(std::memory_order_relaxed);
  }

 private:
  AtomicT<Batch*> pending_{nullptr};
  AtomicT<std::uint64_t> submitted_{0};
  AtomicT<std::uint64_t> applied_{0};
};

}  // namespace hfq::serve
