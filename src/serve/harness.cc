#include "serve/harness.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <thread>

#include "core/tree_parser.h"
#include "serve/load_gen.h"
#include "serve/service.h"
#include "serve/stats_export.h"

namespace hfq::serve {

std::string ServeRunResult::summary() const {
  std::ostringstream os;
  os << "offered=" << offered << " delivered=" << delivered
     << " backlog=" << backlog << " sched_drops=" << sched_drops
     << " edit_drops=" << edit_drops << " ring_drops=" << ring_drops
     << " edits=" << edit_batches << " wall=" << wall_s << "s conservation="
     << (conservation_ok ? "OK" : "VIOLATED");
  if (monitored_flows > 0) {
    os << " monitored=" << monitored_flows << " breaches=" << breaches;
  }
  if (audit_violations > 0) os << " AUDIT=" << audit_violations;
  if (splice_failures > 0) os << " SPLICE=" << splice_failures;
  if (faulted_shards > 0) os << " FAULTED=" << faulted_shards;
  return os.str();
}

ServeRunResult run_serve_scenario(const runner::Scenario& sc,
                                  const runner::ServeSpec& serve,
                                  std::ostream* stats_sink,
                                  const std::string& spill_dir,
                                  const std::string& prom_path,
                                  const std::string& breach_dir) {
  const core::Hierarchy tree = core::parse_hierarchy(sc.tree_text);

  ServiceConfig cfg;
  cfg.num_shards = serve.shards;
  cfg.scheduler = sc.scheduler;
  cfg.ring_capacity = serve.ring_capacity;
  cfg.paced = serve.paced;
  cfg.horizon_s = serve.horizon_us * 1e-6;
  cfg.spill_dir = spill_dir;
  if (serve.telemetry == "off") {
    cfg.telemetry.level = TelemetrySpec::Level::kOff;
  } else if (serve.telemetry == "counters") {
    cfg.telemetry.level = TelemetrySpec::Level::kCounters;
  } else {
    cfg.telemetry.level = TelemetrySpec::Level::kMonitor;
  }
  cfg.telemetry.period_s = serve.telemetry_period_s;
  cfg.telemetry.slack_s = serve.telemetry_slack_s;
  cfg.telemetry.lmax_bits = 8.0 * sc.packet_bytes;
  cfg.telemetry.prom_path = prom_path;
  cfg.telemetry.breach_dir = breach_dir;
  Service svc(tree, cfg);

  std::unique_ptr<StatsExporter> exporter;
  if (stats_sink != nullptr) {
    exporter = std::make_unique<StatsExporter>(svc, *stats_sink, 0.5);
  }

  svc.start();
  if (exporter) exporter->start();

  // Control thread: fire each edit batch at its service-clock time. Edits
  // are sorted by at_s; apply_edit_text blocks until every shard applied the
  // batch at an epoch boundary, so batches land in order. Errors (bad edit
  // text against this tree) are rethrown on join.
  std::thread editor;
  std::atomic<bool> edit_stop{false};
  std::exception_ptr edit_error;
  if (!serve.edits.empty()) {
    editor = std::thread([&] {
      try {
        for (const runner::ServeSpec::Edit& e : serve.edits) {
          // verify: acquire — pairs with the release store of edit_stop
          // below so the editor observes everything the main thread did
          // before requesting shutdown (same shape as the `shard-stop`
          // model-check scenario).
          while (!edit_stop.load(std::memory_order_acquire) &&
                 svc.clock_s() < e.at_s) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          if (edit_stop.load(std::memory_order_acquire)) return;
          svc.apply_edit_text(e.text);
        }
      } catch (...) {
        edit_error = std::current_exception();
      }
    });
  }

  LoadGenConfig lg;
  lg.producers = serve.producers;
  lg.duration_s = sc.duration_s;
  lg.packet_bytes = sc.packet_bytes;
  lg.load = sc.load;
  lg.traffic = sc.traffic;
  lg.seed = sc.seed;
  lg.paced = serve.paced;

  const auto wall0 = std::chrono::steady_clock::now();
  const LoadGenTotals gen = run_load(svc, tree, lg);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();

  if (editor.joinable()) {
    // verify: release — publishes the completed run to the editor's
    // acquire loads before it returns.
    edit_stop.store(true, std::memory_order_release);
    editor.join();
  }

  // Give the shards a moment to work the rings down before the shutdown
  // drain snapshots the backlog; purely cosmetic for paced runs (the fence
  // keeps delivery near real time), it shortens the backlog tail in bench
  // runs. Residue left anyway is accounted, not lost.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  svc.stop();
  if (exporter) exporter->stop();
  if (edit_error) std::rethrow_exception(edit_error);

  const Service::Totals t = svc.totals();
  ServeRunResult r;
  r.offered = gen.offered;
  r.rejected = gen.rejected;
  r.delivered = t.delivered;
  r.backlog = t.backlog;
  r.sched_drops = t.sched_drops;
  r.edit_drops = t.edit_drops;
  r.ring_drops = t.ring_drops;
  r.edit_batches = svc.edit_batches();
  r.audit_violations = t.audit_violations;
  r.splice_failures = t.splice_failures;
  r.faulted_shards = t.faulted_shards;
  r.conservation_ok =
      r.offered == r.delivered + r.backlog + r.sched_drops + r.edit_drops +
                       r.ring_drops;
  r.wall_s = wall_s;
  r.shards = svc.num_shards();
  r.shard_mpps.reserve(r.shards);
  r.shard_delivered.reserve(r.shards);
  r.shard_busy_ns.reserve(r.shards);
  for (std::size_t i = 0; i < r.shards; ++i) {
    const ShardStats& st = svc.shard(i).stats();
    // verify: relaxed — monitoring snapshot after the run; exactness is
    // guaranteed by the service stop/join that precedes this, not by
    // ordering on the counter reads.
    const std::uint64_t n = st.delivered.load(std::memory_order_relaxed);
    r.shard_mpps.push_back(
        wall_s > 0.0 ? static_cast<double>(n) / wall_s / 1e6 : 0.0);
    r.shard_delivered.push_back(n);
    r.shard_busy_ns.push_back(st.busy_ns.load(std::memory_order_relaxed));
    if (const telemetry::ShardTelemetry* tel = svc.shard_telemetry(i)) {
      r.delay_breaches += tel->delay_breaches();
    }
  }
  if (telemetry::TelemetryPlane* plane = svc.plane()) {
    r.breaches = plane->breaches_total();
    r.snapshot_seq = plane->snapshot_seq();
  }
  if (telemetry::BoundMonitor* mon = svc.monitor()) {
    r.lag_breaches = mon->flow_lag_breaches() + mon->class_lag_breaches();
    r.monitored_flows = mon->monitored_flows();
  }
  return r;
}

}  // namespace hfq::serve
