// End-to-end service run for one runner::Scenario — the engine behind
// `hfq_sweep --serve`.
//
// Builds the Service from the scenario's tree and scheduler key, starts the
// stats exporter (newline-JSON to `stats_sink`, when given), drives the
// load generator, fires the campaign's `serve-edit` batches at their
// service-clock times from a control thread (the edits apply at shard epoch
// boundaries — no draining), then stops everything and closes the books:
//
//   conservation_ok :=
//     offered == delivered + backlog + sched_drops + edit_drops + ring_drops
//
// The identity is exact (not approximate) because Shard::stop() drains ring
// residue into the scheduler before the final counter reads and every
// producer-side rejection is mirrored by a ring drop count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "runner/scenario.h"

namespace hfq::serve {

struct ServeRunResult {
  std::uint64_t offered = 0;
  std::uint64_t rejected = 0;        // producer-side ring-full count
  std::uint64_t delivered = 0;
  std::uint64_t backlog = 0;
  std::uint64_t sched_drops = 0;
  std::uint64_t edit_drops = 0;
  std::uint64_t ring_drops = 0;
  std::uint64_t edit_batches = 0;    // batches acknowledged by all shards
  std::uint64_t audit_violations = 0;
  std::uint64_t splice_failures = 0;
  std::uint64_t faulted_shards = 0;
  bool conservation_ok = false;
  double wall_s = 0.0;               // load-generation wall time
  std::size_t shards = 0;
  std::vector<double> shard_mpps;    // per-shard delivered rate, Mpkts/s wall
  std::vector<std::uint64_t> shard_delivered;
  // Bench (unpaced) runs only: per-shard nanoseconds spent in working loop
  // iterations — `busy_ns / delivered` is scheduler-bound ns/op even when
  // producers time-share cores with the shards. Zero on paced runs.
  std::vector<std::uint64_t> shard_busy_ns;

  // Telemetry plane results (zero when telemetry is off).
  std::uint64_t breaches = 0;          // delay + lag, plane total
  std::uint64_t delay_breaches = 0;    // shard-side Corollary 2 violations
  std::uint64_t lag_breaches = 0;      // monitor WFI lag violations
  std::uint64_t snapshot_seq = 0;      // exposition snapshots published
  std::uint64_t monitored_flows = 0;

  [[nodiscard]] std::string summary() const;  // one line for the CLI
};

// Runs the scenario through the live service. `stats_sink`, when non-null,
// receives the newline-JSON stats stream (one object per shard per tick).
// `prom_path` / `breach_dir`, when non-empty, enable the telemetry plane's
// Prometheus exposition file and breach-report directory (the level itself
// comes from serve.telemetry). Throws std::runtime_error on configuration
// errors (bad tree text, unknown scheduler key, invalid shard count,
// malformed edit batch).
ServeRunResult run_serve_scenario(const runner::Scenario& sc,
                                  const runner::ServeSpec& serve,
                                  std::ostream* stats_sink,
                                  const std::string& spill_dir = "",
                                  const std::string& prom_path = "",
                                  const std::string& breach_dir = "");

}  // namespace hfq::serve
