#include "serve/load_gen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <queue>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/hierarchy.h"
#include "serve/service.h"
#include "util/assert.h"

namespace hfq::serve {

namespace {

enum class Model : std::uint8_t { kCbr, kPoisson, kOnOff };

// On/off shape matches the runner's source model: 4x the mean rate for 25ms
// of every 100ms period (25% duty), so the long-run mean equals `load` x
// the session's guaranteed rate.
constexpr double kPeakFactor = 4.0;
constexpr double kOnS = 0.025;
constexpr double kPeriodS = 0.1;

struct SessionGen {
  net::FlowId flow = 0;
  Model model = Model::kCbr;
  double mean_interval_s = 0.0;  // at the offered (load-scaled) rate
  double next_t = 0.0;
};

struct Later {
  const std::vector<SessionGen>* gens;
  bool operator()(std::size_t a, std::size_t b) const {
    return (*gens)[a].next_t > (*gens)[b].next_t;
  }
};

Model model_for(const std::string& traffic, std::size_t idx) {
  if (traffic == "cbr") return Model::kCbr;
  if (traffic == "poisson") return Model::kPoisson;
  if (traffic == "onoff") return Model::kOnOff;
  if (traffic == "mixed") {
    switch (idx % 3) {
      case 0: return Model::kCbr;
      case 1: return Model::kPoisson;
      default: return Model::kOnOff;
    }
  }
  throw std::runtime_error("serve load: unknown traffic kind '" + traffic +
                           "' (cbr|poisson|onoff|mixed)");
}

// Advances one session's calendar entry past an emission at g.next_t.
void advance(SessionGen& g, std::mt19937_64& rng) {
  switch (g.model) {
    case Model::kCbr:
      g.next_t += g.mean_interval_s;
      break;
    case Model::kPoisson: {
      std::exponential_distribution<double> exp(1.0 / g.mean_interval_s);
      g.next_t += exp(rng);
      break;
    }
    case Model::kOnOff: {
      g.next_t += g.mean_interval_s / kPeakFactor;
      const double phase = std::fmod(g.next_t, kPeriodS);
      if (phase >= kOnS) {
        // Off window: jump to the start of the next on-period.
        g.next_t += kPeriodS - phase;
      }
      break;
    }
  }
}

void producer_main(Service& svc, const LoadGenConfig& cfg,
                   std::vector<SessionGen> gens, std::size_t producer,
                   std::atomic<std::uint64_t>* offered,
                   std::atomic<std::uint64_t>* rejected) {
  std::mt19937_64 rng(cfg.seed * 0x9e3779b97f4a7c15ULL + producer + 1);
  std::uniform_real_distribution<double> uni(0.0, 1.0);

  // Stagger starting phases so CBR sessions don't emit in lockstep.
  for (SessionGen& g : gens) {
    g.next_t = uni(rng) * g.mean_interval_s;
    if (g.model == Model::kOnOff) {
      const double phase = std::fmod(g.next_t, kPeriodS);
      if (phase >= kOnS) g.next_t += kPeriodS - phase;
    }
  }

  std::priority_queue<std::size_t, std::vector<std::size_t>, Later> calendar(
      Later{&gens});
  for (std::size_t i = 0; i < gens.size(); ++i) {
    if (gens[i].next_t < cfg.duration_s) calendar.push(i);
  }

  std::uint64_t counter = 0;
  std::uint64_t local_offered = 0;
  std::uint64_t local_rejected = 0;
  const std::uint64_t id_base = (static_cast<std::uint64_t>(producer) + 1)
                                << 48;
  while (!calendar.empty()) {
    const std::size_t i = calendar.top();
    calendar.pop();
    SessionGen& g = gens[i];
    if (cfg.paced) {
      // Hold the emission until the service clock reaches its calendar
      // time; sleep while far out, spin-yield inside the last 200us.
      for (;;) {
        const double lag = g.next_t - svc.clock_s();
        if (lag <= 0.0) break;
        if (lag > 200e-6) {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        } else {
          std::this_thread::yield();
        }
      }
    }
    net::Packet p;
    p.id = id_base | ++counter;
    p.flow = g.flow;
    p.size_bytes = cfg.packet_bytes;
    p.created = g.next_t;
    p.arrival = g.next_t;
    ++local_offered;
    if (!svc.submit(p)) ++local_rejected;
    advance(g, rng);
    if (g.next_t < cfg.duration_s) calendar.push(i);
  }
  // verify: relaxed — one accumulation per producer lifetime; the caller
  // reads only after join(), which carries the visibility (the same
  // claim-then-join pattern the `pool-cursor` model-check scenario proves).
  offered->fetch_add(local_offered, std::memory_order_relaxed);
  rejected->fetch_add(local_rejected, std::memory_order_relaxed);
}

}  // namespace

LoadGenTotals run_load(Service& svc, const core::Hierarchy& tree,
                       const LoadGenConfig& cfg) {
  HFQ_ASSERT_MSG(cfg.producers > 0, "need at least one producer");
  HFQ_ASSERT_MSG(cfg.duration_s > 0.0 && cfg.load > 0.0 &&
                     cfg.packet_bytes > 0,
                 "load generator config out of range");
  (void)model_for(cfg.traffic, 0);  // validate before spawning threads

  const double bits = 8.0 * static_cast<double>(cfg.packet_bytes);
  std::vector<std::vector<SessionGen>> stripes(cfg.producers);
  std::size_t leaf_idx = 0;
  for (std::uint32_t i = 1; i < tree.size(); ++i) {
    const core::Hierarchy::NodeSpec& n = tree.node(i);
    if (!n.leaf) continue;
    SessionGen g;
    g.flow = n.flow;
    g.model = model_for(cfg.traffic, leaf_idx);
    g.mean_interval_s = bits / (cfg.load * n.rate_bps);
    stripes[leaf_idx % cfg.producers].push_back(g);
    ++leaf_idx;
  }
  HFQ_ASSERT_MSG(leaf_idx > 0, "hierarchy has no session leaves");

  std::atomic<std::uint64_t> offered{0};
  std::atomic<std::uint64_t> rejected{0};
  std::vector<std::thread> threads;
  threads.reserve(cfg.producers);
  for (std::size_t p = 0; p < cfg.producers; ++p) {
    threads.emplace_back(producer_main, std::ref(svc), std::cref(cfg),
                         std::move(stripes[p]), p, &offered, &rejected);
  }
  for (std::thread& t : threads) t.join();
  // verify: relaxed — every producer joined above; join() synchronizes-with
  // thread exit, so these reads need no ordering of their own (downgraded
  // from the seq_cst default, proven by the `pool-cursor` scenario).
  return LoadGenTotals{offered.load(std::memory_order_relaxed),
                       rejected.load(std::memory_order_relaxed)};
}

}  // namespace hfq::serve
