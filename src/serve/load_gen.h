// Multi-threaded load generator for the scheduler service (the producer
// side of `hfq_sweep --serve`).
//
// Each producer thread owns a stripe of the tree's sessions (leaf index mod
// producer count) and runs a calendar (min-heap of next-emission times): per
// session the offered rate is `load` x its guaranteed rate, shaped by the
// configured traffic model. Packets are stamped with the session's flow id
// and a per-producer unique id, then pushed through Service::submit() —
// lock-free into the owning shard's ring, with a full ring counted as a
// rejection on both sides (producer `rejected`, shard `ring_drops`), so the
// conservation identity closes exactly:
//
//   offered == delivered + backlog + sched_drops + edit_drops + ring_drops
//
// Paced mode holds each emission until the service clock reaches its
// calendar time (sleep when far, spin-yield when close); bench mode blasts
// the calendar as fast as the rings accept it.
#pragma once

#include <cstdint>
#include <string>

namespace hfq::core {
class Hierarchy;
}

namespace hfq::serve {

class Service;

struct LoadGenConfig {
  std::size_t producers = 2;
  double duration_s = 5.0;      // virtual span of the generated schedule
  std::uint32_t packet_bytes = 1000;
  double load = 0.9;            // offered rate / guaranteed rate, per session
  std::string traffic = "poisson";  // cbr | poisson | onoff | mixed
  std::uint64_t seed = 1;
  bool paced = true;            // false: blast (bench mode)
};

struct LoadGenTotals {
  std::uint64_t offered = 0;    // Service::submit() calls
  std::uint64_t rejected = 0;   // submit() == false (ring full)
};

// Runs the generator to completion (all producers joined). The tree must be
// the same hierarchy the service was built from. Throws std::runtime_error
// on an unknown traffic kind.
LoadGenTotals run_load(Service& svc, const core::Hierarchy& tree,
                       const LoadGenConfig& cfg);

}  // namespace hfq::serve
