// TU anchor for serve/mpsc_ring.h (header-only; keeps the header compiling
// standalone under the library's warning flags).
#include "serve/mpsc_ring.h"
