// Bounded lock-free multi-producer / single-consumer packet ring — the
// ingress queue in front of each scheduler shard (DESIGN.md "Service").
//
// Vyukov's bounded MPMC queue restricted to one consumer: each slot carries
// a sequence word that encodes, relative to the producers' claim counter,
// whether the slot is free (seq == pos: claimable), already written
// (seq == pos + 1: readable by the consumer), or still occupied from
// `capacity` positions ago (seq < pos: the ring is FULL). Producers claim a
// position with one CAS and publish with one release store; the consumer
// needs no atomics on its own index at all. A full ring DROPS the packet and
// counts it (drops()) — backpressure is the producer's problem, the shard
// loop must never block (the backpressure policy in DESIGN.md).
//
// Ordering: positions are claimed in CAS order, so packets from one producer
// thread dequeue in that producer's submission order (per-producer FIFO).
// The service maps each flow to exactly one shard (consistent hashing) and
// the load generator emits each flow from exactly one producer thread, so
// per-flow packet order is preserved end to end — asserted by
// tests/test_serve.cc under TSan.
//
// The class is a template over the atomic implementation and the slot
// payload cell so the *same source* runs under the concurrency model
// checker (src/verify/): `BasicMpscRing<>` is the production ring on
// std::atomic and a bare net::Packet payload (byte-identical to the
// pre-template class), while the checker instantiates
// `BasicMpscRing<verify::atomic, verify::var<net::Packet>>` to schedule
// every access and race-check the payload. The memory_order protocol below
// is verified by `hfq_verify --exhaustive` (scenario `ring`), and the
// mutation harness proves the checker refutes every single-site weakening
// of it (`hfq_verify --mutate`).
//
// Layout: every production slot is one cache line (64 B: an 8-byte seq +
// the 48-byte net::Packet), and the producer-shared claim counter, the
// consumer index and the drop counter each get their own line, so producers
// and the consumer never false-share.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "net/packet.h"
#include "util/assert.h"

namespace hfq::serve {

template <template <class> class AtomicT = std::atomic,
          class Cell = net::Packet>
class BasicMpscRing {
 public:
  // `capacity` must be a power of two (the index mask trick), >= 2.
  // `start_seq` offsets every index (head, tail, slot sequence numbers) so
  // tests can start the counters next to an integer-overflow boundary; the
  // protocol only ever compares small differences, so operation is
  // identical at any origin (verified across UINT64_MAX by
  // tests/test_serve.cc and the `ring-wrap` model-check scenario).
  explicit BasicMpscRing(std::size_t capacity, std::uint64_t start_seq = 0)
      : capacity_(capacity), mask_(capacity - 1),
        slots_(std::make_unique<Slot[]>(capacity)), tail_(start_seq) {
    HFQ_ASSERT_MSG(capacity >= 2 && (capacity & (capacity - 1)) == 0,
                   "ring capacity must be a power of two >= 2");
    for (std::size_t i = 0; i < capacity; ++i) {
      // verify: relaxed — pre-publication; start() / thread creation
      // happens-before any producer or consumer access.
      slots_[(start_seq + i) & mask_].seq.store(start_seq + i,
                                                std::memory_order_relaxed);
    }
    head_.store(start_seq, std::memory_order_relaxed);
  }

  BasicMpscRing(const BasicMpscRing&) = delete;
  BasicMpscRing& operator=(const BasicMpscRing&) = delete;

  // Producer side (any thread): claims a slot and publishes the packet.
  // Returns false — and counts a drop — when the ring is full.
  bool try_push(const net::Packet& p) {
    // verify: relaxed — a stale head only costs a retry through the CAS,
    // which re-reads it; no data is accessed off this value.
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& s = slots_[pos & mask_];
      // verify: acquire — pairs with the consumer's release in pop_burst:
      // seeing seq == pos proves the consumer's read of the PREVIOUS
      // occupant completed, so overwriting s.pkt below cannot race it.
      const std::uint64_t seq = s.seq.load(std::memory_order_acquire);
      const auto dif =
          static_cast<std::int64_t>(seq - pos);
      if (dif == 0) {
        // verify: relaxed — the CAS only arbitrates position ownership
        // among producers; publication ordering is carried entirely by
        // the release store of seq below.
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          s.pkt = p;
          // verify: release — publishes s.pkt; pairs with the consumer's
          // acquire load of seq (packet write cannot sink below this).
          s.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS lost: `pos` was reloaded by compare_exchange; retry there.
      } else if (dif < 0) {
        // The slot still holds the entry from one lap ago: ring full.
        // verify: relaxed — statistics counter; read via drops() after
        // the producers are joined.
        drops_.fetch_add(1, std::memory_order_relaxed);
        return false;
      } else {
        // Another producer claimed this position; chase the head.
        // verify: relaxed — same retry argument as the first load.
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  // Consumer side (ONE thread only): drains up to `max` packets into `out`
  // (appended). Returns the number popped.
  std::size_t pop_burst(std::vector<net::Packet>& out, std::size_t max) {
    std::size_t n = 0;
    while (n < max) {
      Slot& s = slots_[tail_ & mask_];
      // verify: acquire — pairs with the producer's release store: seeing
      // seq == tail+1 makes the producer's s.pkt write visible before the
      // read below.
      const std::uint64_t seq = s.seq.load(std::memory_order_acquire);
      if (seq != tail_ + 1) break;  // next slot not yet published
      out.push_back(s.pkt);
      // Release the slot for the producers' next lap.
      // verify: release — pairs with the producer's acquire load of seq;
      // the s.pkt read above cannot sink below this, so the next lap's
      // overwrite cannot race it.
      s.seq.store(tail_ + capacity_, std::memory_order_release);
      ++tail_;
      ++n;
    }
    return n;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  // Packets rejected because the ring was full (producer-side counter).
  [[nodiscard]] std::uint64_t drops() const noexcept {
    // verify: relaxed — monitoring counter; exact only once producers are
    // joined (load_gen reads it after join).
    return drops_.load(std::memory_order_relaxed);
  }

  // Entries currently in flight, as seen from the consumer thread
  // (approximate while producers are pushing).
  [[nodiscard]] std::size_t approx_size() const noexcept {
    // verify: relaxed — gauge; a stale head only under-reports.
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    // Modular difference: head and tail may sit on opposite sides of the
    // uint64 overflow boundary when the ring was started near UINT64_MAX.
    return static_cast<std::size_t>(head - tail_);
  }

 private:
  struct alignas(64) Slot {
    AtomicT<std::uint64_t> seq{0};
    Cell pkt;
  };
  // Layout contract for the production instantiation only — the checker's
  // instrumented cells are bigger by design.
  static constexpr bool kProductionLayout =
      std::is_same_v<AtomicT<std::uint64_t>, std::atomic<std::uint64_t>> &&
      std::is_same_v<Cell, net::Packet>;
  static_assert(!kProductionLayout || sizeof(net::Packet) <= 56,
                "Packet must fit a cache-line slot next to the 8-byte seq");
  static_assert(!kProductionLayout ||
                    (alignof(Slot) == 64 && sizeof(Slot) == 64),
                "one slot per cache line");

  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  // Producer-shared claim counter, consumer index and drop counter on their
  // own cache lines: producers CAS head_ constantly, the consumer owns
  // tail_ exclusively, and drops_ is only touched on overflow.
  alignas(64) AtomicT<std::uint64_t> head_{0};
  alignas(64) std::uint64_t tail_ = 0;
  alignas(64) AtomicT<std::uint64_t> drops_{0};
};

// The production ring: std::atomic, bare packet payload.
using MpscRing = BasicMpscRing<>;

}  // namespace hfq::serve
