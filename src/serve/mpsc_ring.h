// Bounded lock-free multi-producer / single-consumer packet ring — the
// ingress queue in front of each scheduler shard (DESIGN.md "Service").
//
// Vyukov's bounded MPMC queue restricted to one consumer: each slot carries
// a sequence word that encodes, relative to the producers' claim counter,
// whether the slot is free (seq == pos: claimable), already written
// (seq == pos + 1: readable by the consumer), or still occupied from
// `capacity` positions ago (seq < pos: the ring is FULL). Producers claim a
// position with one CAS and publish with one release store; the consumer
// needs no atomics on its own index at all. A full ring DROPS the packet and
// counts it (drops()) — backpressure is the producer's problem, the shard
// loop must never block (the backpressure policy in DESIGN.md).
//
// Ordering: positions are claimed in CAS order, so packets from one producer
// thread dequeue in that producer's submission order (per-producer FIFO).
// The service maps each flow to exactly one shard (consistent hashing) and
// the load generator emits each flow from exactly one producer thread, so
// per-flow packet order is preserved end to end — asserted by
// tests/test_serve.cc under TSan.
//
// Layout: every slot is one cache line (64 B: an 8-byte seq + the 48-byte
// net::Packet), and the producer-shared claim counter, the consumer index
// and the drop counter each get their own line, so producers and the
// consumer never false-share.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.h"
#include "util/assert.h"

namespace hfq::serve {

class MpscRing {
 public:
  // `capacity` must be a power of two (the index mask trick), >= 2.
  explicit MpscRing(std::size_t capacity)
      : capacity_(capacity), mask_(capacity - 1),
        slots_(std::make_unique<Slot[]>(capacity)) {
    HFQ_ASSERT_MSG(capacity >= 2 && (capacity & (capacity - 1)) == 0,
                   "ring capacity must be a power of two >= 2");
    for (std::size_t i = 0; i < capacity; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  // Producer side (any thread): claims a slot and publishes the packet.
  // Returns false — and counts a drop — when the ring is full.
  bool try_push(const net::Packet& p) {
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& s = slots_[pos & mask_];
      const std::uint64_t seq = s.seq.load(std::memory_order_acquire);
      const auto dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          s.pkt = p;
          s.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS lost: `pos` was reloaded by compare_exchange; retry there.
      } else if (dif < 0) {
        // The slot still holds the entry from one lap ago: ring full.
        drops_.fetch_add(1, std::memory_order_relaxed);
        return false;
      } else {
        // Another producer claimed this position; chase the head.
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  // Consumer side (ONE thread only): drains up to `max` packets into `out`
  // (appended). Returns the number popped.
  std::size_t pop_burst(std::vector<net::Packet>& out, std::size_t max) {
    std::size_t n = 0;
    while (n < max) {
      Slot& s = slots_[tail_ & mask_];
      const std::uint64_t seq = s.seq.load(std::memory_order_acquire);
      if (seq != tail_ + 1) break;  // next slot not yet published
      out.push_back(s.pkt);
      // Release the slot for the producers' next lap.
      s.seq.store(tail_ + capacity_, std::memory_order_release);
      ++tail_;
      ++n;
    }
    return n;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  // Packets rejected because the ring was full (producer-side counter).
  [[nodiscard]] std::uint64_t drops() const noexcept {
    return drops_.load(std::memory_order_relaxed);
  }

  // Entries currently in flight, as seen from the consumer thread
  // (approximate while producers are pushing).
  [[nodiscard]] std::size_t approx_size() const noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    return head >= tail_ ? static_cast<std::size_t>(head - tail_) : 0;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> seq{0};
    net::Packet pkt;
  };
  static_assert(sizeof(net::Packet) <= 56,
                "Packet must fit a cache-line slot next to the 8-byte seq");
  static_assert(alignof(Slot) == 64 && sizeof(Slot) == 64,
                "one slot per cache line");

  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  // Producer-shared claim counter, consumer index and drop counter on their
  // own cache lines: producers CAS head_ constantly, the consumer owns
  // tail_ exclusively, and drops_ is only touched on overflow.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::uint64_t tail_ = 0;
  alignas(64) std::atomic<std::uint64_t> drops_{0};
};

}  // namespace hfq::serve
