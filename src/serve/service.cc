#include "serve/service.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "runner/simulate.h"

namespace hfq::serve {

Service::Service(const core::Hierarchy& tree, const ServiceConfig& cfg) {
  validate_shard_count(cfg.num_shards);
  num_shards_ = cfg.num_shards;

  // Build the directory from the tree's leaves; every leaf is a session the
  // control plane may later re-weight or remove by name.
  for (std::uint32_t i = 1; i < tree.size(); ++i) {
    const core::Hierarchy::NodeSpec& n = tree.node(i);
    if (!n.leaf) continue;
    if (directory_.count(n.name) != 0) {
      throw std::runtime_error("serve: duplicate session name '" + n.name +
                               "' in hierarchy");
    }
    if (flow_names_.count(n.flow) != 0) {
      throw std::runtime_error("serve: flow " + std::to_string(n.flow) +
                               " bound to two sessions ('" +
                               flow_names_[n.flow] + "', '" + n.name + "')");
    }
    directory_[n.name] = DirEntry{n.flow, n.rate_bps};
    flow_names_[n.flow] = n.name;
  }
  if (directory_.empty()) {
    throw std::runtime_error("serve: hierarchy has no session leaves");
  }

  // Uniform 1/N scaling: same tree shape and node order (so node indices
  // match the input), every rate divided by the shard count. Ratios — and
  // therefore the schedule — are preserved; each shard runs the full tree
  // at 1/N speed.
  const double inv = 1.0 / static_cast<double>(num_shards_);
  core::Hierarchy scaled(tree.link_rate() * inv, tree.node(0).name);
  for (std::uint32_t i = 1; i < tree.size(); ++i) {
    const core::Hierarchy::NodeSpec& n = tree.node(i);
    const auto parent = static_cast<std::uint32_t>(n.parent);
    if (n.leaf) {
      scaled.add_session(parent, n.name, n.rate_bps * inv, n.flow,
                         n.capacity_packets);
    } else {
      scaled.add_class(parent, n.name, n.rate_bps * inv);
    }
  }

  // Telemetry blocks precede the shards so ShardConfig can point at them.
  const TelemetrySpec& ts = cfg.telemetry;
  const bool telemetry_on = ts.level != TelemetrySpec::Level::kOff;
  const bool monitor_on = ts.level == TelemetrySpec::Level::kMonitor;
  if (telemetry_on) {
    net::FlowId max_flow = 0;
    for (const auto& kv : directory_) {
      max_flow = std::max(max_flow, kv.second.flow);
    }
    telemetry::ShardTelemetryConfig tc;
    tc.flow_slots =
        std::min(static_cast<std::size_t>(max_flow) + 1 + ts.flow_headroom,
                 TelemetrySpec::kMaxFlowSlots);
    // Delay stamps are wall-clock only in paced mode; unpaced (bench)
    // shards serve in virtual time, where arrival->departure spans are not
    // delays, so the per-packet compare would be noise.
    tc.delay_checks = monitor_on && cfg.paced;
    telemetry_.reserve(num_shards_);
    for (std::size_t s = 0; s < num_shards_; ++s) {
      telemetry_.push_back(std::make_unique<telemetry::ShardTelemetry>(tc));
    }
    if (monitor_on) {
      telemetry::BoundMonitorConfig mc;
      mc.lmax_bits = ts.lmax_bits;
      mc.sigma_packets = ts.sigma_packets;
      mc.slack_s = ts.slack_s;
      mc.delay_checks = tc.delay_checks;
      monitor_ = std::make_unique<telemetry::BoundMonitor>(tree, num_shards_,
                                                           mc);
    }
  }

  shards_.reserve(num_shards_);
  for (std::size_t s = 0; s < num_shards_; ++s) {
    ShardConfig sc;
    sc.index = static_cast<std::uint32_t>(s);
    sc.link_rate_bps = scaled.link_rate();
    sc.ring_capacity = cfg.ring_capacity;
    sc.ingest_burst = cfg.ingest_burst;
    sc.service_burst = cfg.service_burst;
    sc.paced = cfg.paced;
    sc.horizon_s = cfg.horizon_s;
    sc.spill_dir = cfg.spill_dir;
    sc.telemetry = telemetry_on ? telemetry_[s].get() : nullptr;
    sc.capture_dir = ts.breach_dir;
    shards_.push_back(std::make_unique<Shard>(
        sc, runner::build_scheduler(cfg.scheduler, scaled)));
  }

  if (telemetry_on) {
    std::vector<telemetry::ShardTelemetry*> blocks;
    blocks.reserve(telemetry_.size());
    for (auto& t : telemetry_) blocks.push_back(t.get());
    if (monitor_) monitor_->attach(blocks);
    telemetry::PlaneConfig pc;
    pc.period_s = ts.period_s;
    pc.prom_path = ts.prom_path;
    pc.breach_dir = ts.breach_dir;
    plane_ = std::make_unique<telemetry::TelemetryPlane>(
        pc, std::move(blocks), monitor_.get(),
        [this] {
          std::vector<telemetry::ShardStatsView> views(shards_.size());
          for (std::size_t s = 0; s < shards_.size(); ++s) {
            const ShardStats& st = shards_[s]->stats();
            telemetry::ShardStatsView& v = views[s];
            // verify: relaxed — periodic monitoring copy, single-writer
            // counters; bounded staleness is part of the snapshot protocol.
            v.ingested = st.ingested.load(std::memory_order_relaxed);
            v.accepted = st.accepted.load(std::memory_order_relaxed);
            v.delivered = st.delivered.load(std::memory_order_relaxed);
            v.backlog = st.backlog.load(std::memory_order_relaxed);
            v.edit_drops = st.edit_drops.load(std::memory_order_relaxed);
            v.ring_drops = shards_[s]->ring_drops();
            v.epoch = st.epoch.load(std::memory_order_relaxed);
            v.audit_violations =
                st.audit_violations.load(std::memory_order_relaxed);
            v.splice_failures =
                st.splice_failures.load(std::memory_order_relaxed);
            v.busy_ns = st.busy_ns.load(std::memory_order_relaxed);
            v.faulted = shards_[s]->faulted();
          }
          return views;
        },
        [this] { return clock_s(); },
        [this](std::uint32_t shard) {
          if (shard < shards_.size()) shards_[shard]->request_capture();
        });
  }
}

Service::~Service() { stop(); }

void Service::start() {
  if (started_) return;
  started_ = true;
  const Shard::Clock::time_point t0 = Shard::Clock::now();
  for (auto& s : shards_) s->start(t0);
  if (plane_) plane_->start();
}

void Service::stop() {
  if (!started_) return;
  for (auto& s : shards_) s->stop();
  // Plane last: its final tick publishes the post-drain counter state.
  if (plane_) plane_->stop();
  started_ = false;
}

void Service::apply_edit_text(const std::string& text) {
  apply_edits_internal(text, /*monitored=*/true);
}

void Service::apply_edit_text_unmonitored(const std::string& text) {
  apply_edits_internal(text, /*monitored=*/false);
}

void Service::apply_edits_internal(const std::string& text, bool monitored) {
  if (!supports_live_edits()) {
    throw std::runtime_error(
        "serve: scheduler does not support live edits (flat \"wf2q+\" and "
        "\"wf2q+fixed\" do)");
  }
  const std::vector<EditOp> parsed = parse_edits(text);
  if (parsed.empty()) return;

  // Resolve names against the directory. Per-shard rates are the session
  // rate scaled by 1/N, matching the construction-time scaling.
  const double inv = 1.0 / static_cast<double>(num_shards_);
  std::vector<ResolvedEdit> ops;
  ops.reserve(parsed.size());
  for (const EditOp& op : parsed) {
    ResolvedEdit r;
    if (op.kind == EditOp::Kind::kRemove) {
      auto it = directory_.find(op.name);
      if (it == directory_.end()) {
        throw std::runtime_error("serve edit: unknown session '" + op.name +
                                 "' in remove");
      }
      r.kind = ResolvedEdit::Kind::kRemove;
      r.flow = it->second.flow;
      flow_names_.erase(it->second.flow);
      directory_.erase(it);
      ops.push_back(r);
      continue;
    }
    auto it = directory_.find(op.name);
    if (it != directory_.end()) {
      // Known name: a re-weight. The flow binding is part of the session's
      // identity and must not change underneath queued packets.
      if (op.has_flow && op.flow != it->second.flow) {
        throw std::runtime_error(
            "serve edit: session '" + op.name + "' is bound to flow " +
            std::to_string(it->second.flow) + ", not flow " +
            std::to_string(op.flow));
      }
      r.kind = ResolvedEdit::Kind::kSetRate;
      r.flow = it->second.flow;
      r.rate_bps = op.rate_bps * inv;
      it->second.rate_bps = op.rate_bps;
    } else {
      if (!op.has_flow) {
        throw std::runtime_error("serve edit: new session '" + op.name +
                                 "' needs an explicit flow=<id>");
      }
      if (flow_names_.count(op.flow) != 0) {
        throw std::runtime_error(
            "serve edit: flow " + std::to_string(op.flow) +
            " is already bound to session '" + flow_names_[op.flow] + "'");
      }
      r.kind = ResolvedEdit::Kind::kAdd;
      r.flow = op.flow;
      r.rate_bps = op.rate_bps * inv;
      r.capacity_packets = op.capacity_packets;
      directory_[op.name] = DirEntry{op.flow, op.rate_bps};
      flow_names_[op.flow] = op.name;
    }
    ops.push_back(r);
  }

  // Every shard carries the full (scaled) flow table, so the batch goes to
  // all of them; only the owning shard ever has queued packets for a flow,
  // so removal drop counts stay correct. Dispatch first, then wait, so the
  // shards splice concurrently.
  std::vector<std::uint64_t> tickets(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    tickets[s] = shards_[s]->submit_edits(ops);
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!shards_[s]->wait_for_edits(tickets[s])) {
      throw std::runtime_error("serve edit: shard " + std::to_string(s) +
                               " stopped before applying the batch");
    }
  }
  ++edit_batches_;
  // Keep the online guarantees tracking the configuration (the unmonitored
  // variant skips this on purpose — see the header).
  if (monitored && monitor_) monitor_->on_edits(ops);
}

Service::Totals Service::totals() const {
  Totals t;
  for (const auto& s : shards_) {
    const ShardStats& st = s->stats();
    // verify: relaxed — live monitoring totals; each counter is written by
    // exactly one shard thread and a torn multi-counter snapshot is
    // acceptable (the conservation identity is asserted only after stop()).
    t.ingested += st.ingested.load(std::memory_order_relaxed);
    t.accepted += st.accepted.load(std::memory_order_relaxed);
    t.delivered += st.delivered.load(std::memory_order_relaxed);
    t.backlog += st.backlog.load(std::memory_order_relaxed);
    t.edit_drops += st.edit_drops.load(std::memory_order_relaxed);
    t.audit_violations += st.audit_violations.load(std::memory_order_relaxed);
    t.splice_failures += st.splice_failures.load(std::memory_order_relaxed);
    t.ring_drops += s->ring_drops();
    if (s->faulted()) ++t.faulted_shards;
  }
  t.sched_drops = t.ingested - t.accepted;
  return t;
}

std::vector<Service::Session> Service::sessions() const {
  std::vector<Session> out;
  out.reserve(directory_.size());
  for (const auto& [name, e] : directory_) {
    out.push_back(Session{name, e.flow, e.rate_bps});
  }
  return out;
}

}  // namespace hfq::serve
