// The long-lived multi-core scheduler service (DESIGN.md "Service").
//
// Owns N shards, each wrapping one scheduler built from the configured
// hierarchy with every rate scaled by 1/N (uniform scaling preserves all
// rate ratios, so each shard's schedule is the full tree's schedule at 1/N
// speed; the consistent-hash flow spread makes per-shard offered load match
// the scaled capacity in expectation). Producers call submit(), which maps
// the packet's flow to its shard (serve/shard_map.h) and pushes onto that
// shard's MPSC ring — wait-free for the producer, drop-with-counter on
// overflow.
//
// Control plane: apply_edit_text() parses a batch in the tree-parser
// session-line grammar (serve/edits.h), resolves names against the
// service's session directory, dispatches the resolved flow operations to
// EVERY shard (all shards carry the full scaled flow table; only the owner
// shard ever queues a given flow's packets), and blocks until each shard
// acknowledged applying the batch at an epoch boundary. No draining, no
// pause: packets keep flowing through the edit.
//
// Conservation identity (asserted by the hfq_sweep --serve harness after
// stop()):  offered = delivered + backlog + sched_drops + edit_drops +
// ring_drops, where offered is the producers' own count of submit() calls.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/hierarchy.h"
#include "net/packet.h"
#include "serve/shard.h"
#include "serve/shard_map.h"
#include "telemetry/bound_monitor.h"
#include "telemetry/plane.h"
#include "telemetry/shard_telemetry.h"

namespace hfq::serve {

// Always-on telemetry configuration (DESIGN.md "Telemetry").
struct TelemetrySpec {
  enum class Level {
    kOff,       // no telemetry blocks at all (bench baseline)
    kCounters,  // per-shard counters + histograms, no bound monitor
    kMonitor,   // counters + online WFI/Corollary-2 bound monitor
  };
  Level level = Level::kMonitor;
  double period_s = 0.5;        // plane epoch (snapshot + monitor + expose)
  std::string prom_path;        // Prometheus exposition file ("" = off)
  std::string breach_dir;       // breach reports + capture dumps ("" = off)
  double lmax_bits = 12000.0;   // Lmax for the analytic bounds (1500 B)
  double sigma_packets = 16.0;  // (sigma, rho) burstiness allowance
  double slack_s = 0.05;        // scheduling/OS jitter allowance
  // Per-flow cell arrays are sized max-flow-id + this headroom (live adds
  // land in the headroom), capped at kMaxFlowSlots.
  std::size_t flow_headroom = 1024;
  static constexpr std::size_t kMaxFlowSlots = 1u << 21;
};

struct ServiceConfig {
  std::size_t num_shards = 4;
  // Scheduler key, as in campaign files: "wf2q+" (SoA double), "wf2q+fixed"
  // (SoA integer), their calendar-engine twins "wf2q+cal"/"wf2q+fixedcal"
  // (TagCalendar eligible sets, same schedules), or any hierarchical key
  // runner::build_scheduler accepts ("hwf2q+", ... — these refuse live
  // edits).
  std::string scheduler = "wf2q+";
  std::size_t ring_capacity = 1 << 16;
  std::size_t ingest_burst = 256;
  std::size_t service_burst = 256;
  bool paced = true;
  double horizon_s = 100e-6;
  std::string spill_dir;
  TelemetrySpec telemetry;
};

class Service {
 public:
  // Validates the configuration (shard count, scheduler key, tree shape)
  // and builds all shards; throws std::invalid_argument /
  // std::runtime_error with a clear message on a bad config.
  Service(const core::Hierarchy& tree, const ServiceConfig& cfg);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  void start();
  void stop();

  // Producer API (any thread): routes by flow and pushes onto the owning
  // shard's ring. Returns false when that ring is full (counted there).
  bool submit(const net::Packet& p) {
    return shards_[shard_of(p.flow, shards_.size())]->ring().try_push(p);
  }

  [[nodiscard]] std::uint32_t shard_index_of(net::FlowId flow) const {
    return shard_of(flow, shards_.size());
  }

  // Control plane (one thread at a time): applies a live edit batch.
  // Throws on parse errors, unknown names, flow-binding conflicts, or a
  // scheduler without live-edit support; blocks until every shard applied
  // the batch. The bound monitor (when on) is updated in the same call, so
  // the guarantees it checks always track the configured hierarchy.
  void apply_edit_text(const std::string& text);

  // Fault injection for tests and drills: applies the batch to the shards
  // WITHOUT telling the bound monitor, so the service deliberately departs
  // from the service curves the monitor still enforces. A mis-weighting
  // edit applied this way MUST trip the monitor within an epoch — that is
  // the telemetry plane's acceptance test, not a production entry point.
  void apply_edit_text_unmonitored(const std::string& text);

  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] const Shard& shard(std::size_t i) const { return *shards_[i]; }
  [[nodiscard]] double clock_s() const { return shards_[0]->clock_s(); }
  [[nodiscard]] bool supports_live_edits() const {
    return shards_[0]->supports_live_edits();
  }
  [[nodiscard]] std::uint64_t edit_batches() const noexcept {
    return edit_batches_;
  }

  struct Totals {
    std::uint64_t ingested = 0;
    std::uint64_t accepted = 0;
    std::uint64_t delivered = 0;
    std::uint64_t backlog = 0;
    std::uint64_t sched_drops = 0;  // ingested - accepted
    std::uint64_t edit_drops = 0;
    std::uint64_t ring_drops = 0;
    std::uint64_t audit_violations = 0;
    std::uint64_t splice_failures = 0;
    std::uint64_t faulted_shards = 0;
  };
  [[nodiscard]] Totals totals() const;

  // One session known to the directory (for tests and the load generator).
  struct Session {
    std::string name;
    net::FlowId flow = 0;
    double rate_bps = 0.0;  // unscaled (full-tree) rate
  };
  [[nodiscard]] std::vector<Session> sessions() const;

  // Telemetry accessors; null / empty when the level disables the piece.
  [[nodiscard]] telemetry::TelemetryPlane* plane() noexcept {
    return plane_.get();
  }
  [[nodiscard]] telemetry::BoundMonitor* monitor() noexcept {
    return monitor_.get();
  }
  [[nodiscard]] const telemetry::ShardTelemetry* shard_telemetry(
      std::size_t i) const {
    return i < telemetry_.size() ? telemetry_[i].get() : nullptr;
  }

 private:
  struct DirEntry {
    net::FlowId flow = 0;
    double rate_bps = 0.0;
  };

  void apply_edits_internal(const std::string& text, bool monitored);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<telemetry::ShardTelemetry>> telemetry_;
  std::unique_ptr<telemetry::BoundMonitor> monitor_;
  std::unique_ptr<telemetry::TelemetryPlane> plane_;
  std::unordered_map<std::string, DirEntry> directory_;  // name -> session
  std::unordered_map<net::FlowId, std::string> flow_names_;
  std::size_t num_shards_ = 0;
  bool started_ = false;
  std::uint64_t edit_batches_ = 0;
};

}  // namespace hfq::serve
