#include "serve/shard.h"

#include <exception>
#include <fstream>
#include <limits>
#include <utility>

#include "audit/invariants.h"
#include "obs/export.h"
#include "util/assert.h"

namespace hfq::serve {

Shard::Shard(const ShardConfig& cfg, std::unique_ptr<net::Scheduler> sched)
    : cfg_(cfg), sched_(std::move(sched)),
      ring_(std::make_unique<MpscRing>(cfg.ring_capacity)) {
  HFQ_ASSERT_MSG(cfg_.link_rate_bps > 0.0, "shard link rate must be positive");
  HFQ_ASSERT(cfg_.ingest_burst > 0 && cfg_.service_burst > 0);
  ingest_buf_.reserve(cfg_.ingest_burst);
  service_buf_.reserve(cfg_.service_burst);
}

Shard::~Shard() { stop(); }

void Shard::start(Clock::time_point t0) {
  HFQ_ASSERT_MSG(!thread_.joinable(), "shard started twice");
  t0_ = t0;
  // verify: relaxed — thread creation below happens-before everything the
  // shard thread does; no other thread observes stop_ between these lines.
  stop_.store(false, std::memory_order_relaxed);
  // verify: release — running() readers (acquire) sequence after the
  // shard's configuration writes above.
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { thread_main(); });
}

void Shard::stop() {
  if (!thread_.joinable()) return;
  // verify: release — the loop's acquire load of stop_ orders the caller's
  // final pushes before shutdown drain (join() would synchronize too, but
  // the loop reads stop_ while still running).
  stop_.store(true, std::memory_order_release);
  thread_.join();
}

std::uint64_t Shard::submit_edits(std::vector<ResolvedEdit> ops) {
  // A previous batch may still be waiting for its epoch boundary; the gate
  // spins the control plane (never the shard loop) and bails out if the
  // shard stops first.
  return edit_gate_.submit(
      std::make_unique<EditBatch>(EditBatch{std::move(ops)}), [this] {
        // verify: acquire — see running().
        return running_.load(std::memory_order_acquire);
      });
}

bool Shard::wait_for_edits(std::uint64_t ticket) const {
  return edit_gate_.wait_for(ticket, [this] {
    // verify: acquire — see running()/faulted(); a false return must
    // sequence after the shard's shutdown or fault bookkeeping.
    return running_.load(std::memory_order_acquire) &&
           !faulted_.load(std::memory_order_acquire);
  });
}

void Shard::thread_main() {
  // A long-running shard must not take the whole process down on an audit
  // violation (the default handler aborts): record it, spill forensics,
  // and keep the counters honest. Exceptions park the shard (faulted).
  audit::Handler prev =
      audit::set_handler([this](const audit::Violation& v) {
        stats_.audit_violations.fetch_add(1, std::memory_order_relaxed);
        spill_forensics(std::string(v.invariant) + ": " + v.detail);
      });
  obs::RecordScope record(recorder_);
  try {
    // verify: acquire — pairs with stop()'s release store; shutdown drain
    // below must see every packet pushed before stop was requested.
    while (!stop_.load(std::memory_order_acquire)) {
      if (!run_once()) std::this_thread::yield();
    }
    // Shutdown: pull ring residue into the scheduler so nothing in flight
    // escapes the conservation identity (in = out + queued + dropped).
    while (drain_ingress() > 0) {
    }
    stats_.backlog.store(sched_->backlog_packets(), std::memory_order_relaxed);
  } catch (const std::exception& e) {
    // verify: release — pairs with faulted()'s acquire; fault state is
    // published before observers can see the flag.
    faulted_.store(true, std::memory_order_release);
    spill_forensics(std::string("exception: ") + e.what());
  } catch (...) {
    // verify: release — same pairing as above.
    faulted_.store(true, std::memory_order_release);
    spill_forensics("unknown exception");
  }
  publish_latency();
  // verify: release — pairs with running()'s acquire; final counters and
  // the shutdown drain happen-before anyone observes the shard as down.
  running_.store(false, std::memory_order_release);
  audit::set_handler(std::move(prev));
}

bool Shard::run_once() {
  apply_pending_edits();
  // verify: acquire — rare one-shot request from the telemetry plane; pairs
  // with request_capture()'s release so the dump sees the breach context.
  if (capture_req_.load(std::memory_order_acquire)) take_capture();
  if (!cfg_.paced) {
    // Bench mode: meter the working iterations so BENCH_serve.json can
    // report scheduler-bound ns/op independent of producer interleaving.
    const Clock::time_point a = Clock::now();
    const std::size_t in = drain_ingress();
    const std::size_t out = service_link();
    if (in + out == 0) return false;
    stats_.busy_ns.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - a)
                .count()),
        std::memory_order_relaxed);
    return true;
  }
  const std::size_t in = drain_ingress();
  const std::size_t out = service_link();
  return in + out > 0;
}

std::size_t Shard::drain_ingress() {
  ingest_buf_.clear();
  const std::size_t n = ring_->pop_burst(ingest_buf_, cfg_.ingest_burst);
  if (n == 0) return 0;
  const double now = cfg_.paced ? clock_s() : link_free_at_;
  const std::size_t ok = sched_->enqueue_burst(ingest_buf_, now);
  stats_.ingested.fetch_add(n, std::memory_order_relaxed);
  stats_.accepted.fetch_add(ok, std::memory_order_relaxed);
  stats_.backlog.store(sched_->backlog_packets(), std::memory_order_relaxed);
  if (cfg_.telemetry != nullptr) {
    std::uint32_t max_bytes = 0;
    for (std::size_t i = 0; i < n; ++i) {
      cfg_.telemetry->on_arrival(ingest_buf_[i].flow,
                                 ingest_buf_[i].size_bytes);
      if (ingest_buf_[i].size_bytes > max_bytes) {
        max_bytes = ingest_buf_[i].size_bytes;
      }
    }
    if (ok < n) {
      // The scheduler doesn't say WHICH packets it rejected, only how
      // many; charge the drop with an upper bound on its bits so the
      // monitor's provable-backlog arithmetic stays conservative.
      cfg_.telemetry->on_sched_drop(n - ok,
                                    8ull * (n - ok) * max_bytes);
    }
  }
  return n;
}

std::size_t Shard::service_link() {
  double t0;
  double fence;
  if (cfg_.paced) {
    // Closed-loop drain window: commit transmissions at most horizon_s
    // ahead of the wall clock — an arrival can still influence everything
    // past the fence (sim::Link's feedback fence, realized in real time).
    const double now = clock_s();
    fence = now + cfg_.horizon_s;
    if (link_free_at_ >= fence) return 0;  // link busy through the window
    t0 = link_free_at_ > now ? link_free_at_ : now;
  } else {
    // Bench mode: pure virtual time, no fence — scheduler-bound throughput.
    t0 = link_free_at_;
    fence = std::numeric_limits<double>::infinity();
  }
  if (sched_->backlog_packets() == 0) return 0;
  service_buf_.clear();
  const std::size_t n = sched_->dequeue_burst(
      service_buf_, cfg_.service_burst, t0, cfg_.link_rate_bps, fence);
  if (n == 0) return 0;
  double t = t0;
  for (std::size_t i = 0; i < n; ++i) {
    t += service_buf_[i].size_bits() / cfg_.link_rate_bps;
    // Service latency (arrival -> departure on the virtual link), sampled
    // every 8th packet to keep the P^2 and histogram updates off the common
    // path. The telemetry delay-bound compare runs on EVERY packet — a
    // breach must be caught on the packet that commits it.
    const bool sample = (++delivered_local_ & 7u) == 0;
    if (sample) {
      const double d = t - service_buf_[i].created;
      lat_p50_.add(d);
      lat_p99_.add(d);
    }
    if (cfg_.telemetry != nullptr) {
      cfg_.telemetry->on_delivery(service_buf_[i].flow,
                                  service_buf_[i].size_bytes,
                                  t - service_buf_[i].created, t, sample);
    }
  }
  link_free_at_ = t;
  stats_.delivered.fetch_add(n, std::memory_order_relaxed);
  const std::uint64_t depth = sched_->backlog_packets();
  stats_.backlog.store(depth, std::memory_order_relaxed);
  if (cfg_.telemetry != nullptr) cfg_.telemetry->on_loop(depth);
  if ((delivered_local_ & 1023u) < n) publish_latency();
  return n;
}

void Shard::apply_pending_edits() {
  std::unique_ptr<EditBatch> own = edit_gate_.take();
  if (own == nullptr) return;
  std::uint64_t dropped = 0;
  for (const ResolvedEdit& e : own->ops) {
    bool ok = true;
    switch (e.kind) {
      case ResolvedEdit::Kind::kAdd:
        ok = sched_->live_add_flow(e.flow, e.rate_bps, e.capacity_packets);
        break;
      case ResolvedEdit::Kind::kSetRate:
        ok = sched_->live_set_rate(e.flow, e.rate_bps);
        break;
      case ResolvedEdit::Kind::kRemove:
        ok = sched_->live_remove_flow(e.flow, &dropped);
        break;
    }
    if (!ok) {
      // The service resolves names against its directory before dispatch,
      // so a rejection here means directory/scheduler state diverged.
      audit::report("live-edit-rejected", __FILE__, __LINE__,
                    "shard " + std::to_string(cfg_.index) +
                        ": scheduler rejected edit for flow " +
                        std::to_string(e.flow));
    }
  }
  sched_->commit_live_edits();
  std::string why;
  if (!sched_->validate_splice(&why)) {
    stats_.splice_failures.fetch_add(1, std::memory_order_relaxed);
    audit::report("splice-invariants", __FILE__, __LINE__,
                  "shard " + std::to_string(cfg_.index) + ": " + why);
  }
  if (dropped > 0) {
    stats_.edit_drops.fetch_add(dropped, std::memory_order_relaxed);
    stats_.backlog.store(sched_->backlog_packets(),
                         std::memory_order_relaxed);
  }
  // verify: relaxed — monitoring counter (stats export).
  stats_.epoch.fetch_add(1, std::memory_order_relaxed);
  // ack => visible: everything this epoch applied happens-before
  // wait_for_edits() returning true (release inside).
  edit_gate_.ack();
}

void Shard::publish_latency() {
  stats_.p50_s.store(lat_p50_.value(), std::memory_order_relaxed);
  stats_.p99_s.store(lat_p99_.value(), std::memory_order_relaxed);
}

void Shard::take_capture() {
  // verify: relaxed — the shard thread is the only consumer of the flag
  // once set; clearing it races nothing.
  capture_req_.store(false, std::memory_order_relaxed);
  if (captured_ || cfg_.capture_dir.empty()) return;
  captured_ = true;
  const std::vector<obs::Event> events = recorder_.snapshot();
  const std::string path = cfg_.capture_dir + "/shard" +
                           std::to_string(cfg_.index) + "_ring.csv";
  std::ofstream os(path);
  if (!os) return;
  os << "# shard " << cfg_.index
     << " anomaly capture (telemetry breach trigger)\n";
  obs::write_csv(os, events);
}

void Shard::spill_forensics(const std::string& reason) {
  if (spilled_ || cfg_.spill_dir.empty()) return;
  spilled_ = true;
  const std::vector<obs::Event> events = recorder_.snapshot();
  if (events.empty() && !obs::compiled_in()) return;
  const std::string path =
      cfg_.spill_dir + "/shard" + std::to_string(cfg_.index) + ".csv";
  std::ofstream os(path);
  if (!os) return;
  os << "# shard " << cfg_.index << " fault: " << reason << "\n";
  obs::write_csv(os, events);
}

}  // namespace hfq::serve
