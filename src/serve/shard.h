// One scheduler shard of the long-lived service: a thread that owns a
// net::Scheduler outright and drives it through three lock-free phases per
// loop iteration (DESIGN.md "Service"):
//
//   run_once():
//     apply_pending_edits()  — epoch boundary: adopt a control-plane edit
//                              batch (atomic slot exchange), commit, audit
//                              the splice;
//     drain_ingress()        — pop a burst from the MPSC ring, enqueue_burst
//                              into the scheduler;
//     service_link()         — dequeue_burst against the shard's virtual
//                              link, bounded by the closed-loop drain window
//                              (paced mode) or run flat out (bench mode).
//
// The loop body acquires NO mutex or condition variable — enforced by the
// hfq_lint rule `lock-in-shard-loop` on the function names above. All
// cross-thread communication is the ingress ring, the atomic edit slot and
// the padded stats counters. Idle iterations yield.
//
// Virtual link model: `link_free_at_` is the instant the last committed
// transmission ends. Paced mode measures `now` on the service's wall clock
// and commits transmissions no further than `now + horizon_s` ahead — the
// same closed-loop fence as sim::Link's batched drain (an arrival can
// preempt anything not yet committed, so the commit window bounds the
// schedule's divergence from an oracle that saw the arrival). Bench mode
// sets now = link_free_at_ and no fence: pure virtual time, scheduler-bound
// throughput.
//
// Fault policy: an exception out of the loop, or an audit violation
// reported by the scheduler (splice check, HFQ_AUDIT hooks), spills the
// shard's flight recorder to <spill_dir>/shard<i>.csv (when tracing is
// compiled in), stamps the fault counters, and — for exceptions — parks the
// shard. The service stays up; conservation accounting makes the loss
// visible.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/packet.h"
#include "net/scheduler.h"
#include "obs/flight_recorder.h"
#include "serve/edits.h"
#include "serve/epoch_gate.h"
#include "serve/mpsc_ring.h"
#include "stats/quantile.h"
#include "telemetry/shard_telemetry.h"

namespace hfq::serve {

struct ShardConfig {
  std::uint32_t index = 0;
  double link_rate_bps = 0.0;        // this shard's virtual link rate
  std::size_t ring_capacity = 1 << 16;
  std::size_t ingest_burst = 256;    // max ring pops per drain_ingress
  std::size_t service_burst = 256;   // max transmissions per dequeue_burst
  bool paced = true;                 // false = bench mode (virtual time)
  double horizon_s = 100e-6;         // closed-loop commit window (paced)
  std::string spill_dir;             // flight-recorder spill on fault ("" = off)
  // Always-on telemetry block for this shard (owned by the Service; null =
  // telemetry off). The loop's only extra work is the lock-free hooks in
  // shard_telemetry.h.
  telemetry::ShardTelemetry* telemetry = nullptr;
  // Anomaly-capture spill directory: request_capture() makes the shard dump
  // its flight-recorder ring here ("" = off).
  std::string capture_dir;
};

// Runtime counters published by the shard thread (relaxed atomics; the
// stats exporter reads them without synchronizing with the loop).
// verify: every counter here is written by exactly one shard thread and
// read by monitoring/reporting paths, so ALL accesses are relaxed — a
// reader that needs an exact snapshot (the post-run conservation identity)
// synchronizes through Shard::stop()/join instead of counter ordering.
struct ShardStats {
  std::atomic<std::uint64_t> ingested{0};    // popped from the ring
  std::atomic<std::uint64_t> accepted{0};    // accepted by the scheduler
  std::atomic<std::uint64_t> delivered{0};   // departed the virtual link
  std::atomic<std::uint64_t> edit_drops{0};  // dropped by live_remove_flow
  std::atomic<std::uint64_t> epoch{0};       // edit batches applied
  std::atomic<std::uint64_t> backlog{0};     // gauge: scheduler queue depth
  std::atomic<std::uint64_t> audit_violations{0};
  std::atomic<std::uint64_t> splice_failures{0};
  // Bench mode only: wall nanoseconds the shard thread spent inside working
  // run_once() iterations. `busy_ns / delivered` is the scheduler-bound
  // per-packet cost even when producers share cores with the shard (wall
  // time would double-count their interleaving).
  std::atomic<std::uint64_t> busy_ns{0};
  std::atomic<double> p50_s{0.0};            // service latency quantiles
  std::atomic<double> p99_s{0.0};
};

class Shard {
 public:
  using Clock = std::chrono::steady_clock;

  // The shard takes sole ownership of the scheduler; after start() only the
  // shard thread touches it (live edits go through submit_edits).
  Shard(const ShardConfig& cfg, std::unique_ptr<net::Scheduler> sched);
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  // Starts the shard thread. `t0` is the service-wide clock origin (packet
  // `created` stamps and the pacing clock share it).
  void start(Clock::time_point t0);

  // Requests stop, joins, and drains ring residue into the scheduler so the
  // conservation identity holds at shutdown (nothing is lost in the ring).
  void stop();

  [[nodiscard]] MpscRing& ring() noexcept { return *ring_; }
  [[nodiscard]] const ShardStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t ring_drops() const noexcept {
    return ring_->drops();
  }
  [[nodiscard]] bool running() const noexcept {
    // verify: acquire — callers poll this to sequence after shutdown
    // (thread_main's release store); seq_cst bought nothing extra here.
    return running_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool faulted() const noexcept {
    // verify: acquire — pairs with the release store in the fault path so
    // a true reading sequences after the fault bookkeeping.
    return faulted_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const ShardConfig& config() const noexcept { return cfg_; }

  // Scheduler capability probe — const and thread-safe (pure virtual
  // lookup); everything stateful goes through submit_edits.
  [[nodiscard]] bool supports_live_edits() const {
    return sched_->supports_live_edits();
  }

  // Control plane: hands an edit batch to the shard thread, to be applied
  // at the next epoch boundary WITHOUT draining. Returns a ticket;
  // wait_for_edits(ticket) blocks until the batch was applied (true) or the
  // shard stopped/faulted first (false). May briefly sleep when a previous
  // batch is still pending — the control plane is allowed to wait, the
  // shard loop never does.
  std::uint64_t submit_edits(std::vector<ResolvedEdit> ops);
  bool wait_for_edits(std::uint64_t ticket) const;

  // Seconds since the service clock origin.
  [[nodiscard]] double clock_s() const {
    return std::chrono::duration<double>(Clock::now() - t0_).count();
  }

  // Anomaly capture (telemetry plane, any thread): asks the shard thread to
  // dump its own flight-recorder ring to <capture_dir>/shard<i>_ring.csv at
  // the next loop iteration. The recorder stays single-writer — the dump
  // happens on the shard thread, off the per-packet path, at most once.
  void request_capture() noexcept {
    // verify: release — the breach bookkeeping that motivated the capture
    // happens-before the shard observes the request.
    capture_req_.store(true, std::memory_order_release);
  }

 private:
  struct EditBatch {
    std::vector<ResolvedEdit> ops;
  };

  void thread_main();
  bool run_once();
  std::size_t drain_ingress();
  std::size_t service_link();
  void apply_pending_edits();
  void publish_latency();
  void spill_forensics(const std::string& reason);
  void take_capture();

  ShardConfig cfg_;
  std::unique_ptr<net::Scheduler> sched_;
  std::unique_ptr<MpscRing> ring_;
  ShardStats stats_;

  std::thread thread_;
  Clock::time_point t0_{};
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> faulted_{false};
  std::atomic<bool> capture_req_{false};
  // Ticket/ack handoff for live edits; the protocol itself lives in
  // epoch_gate.h where the model checker can instantiate it.
  EpochGate<EditBatch> edit_gate_;

  // Shard-thread-only state below (no padding needed: one writer).
  std::vector<net::Packet> ingest_buf_;
  std::vector<net::Packet> service_buf_;
  double link_free_at_ = 0.0;  // virtual-link cursor, seconds since t0_
  stats::P2Quantile lat_p50_{0.5};
  stats::P2Quantile lat_p99_{0.99};
  std::uint64_t delivered_local_ = 0;  // latency sampling stride counter
  obs::FlightRecorder recorder_{8192};
  bool spilled_ = false;
  bool captured_ = false;
};

}  // namespace hfq::serve
