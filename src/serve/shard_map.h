// Flow → shard mapping for the scheduler service: Lamping & Veach's jump
// consistent hash over a SplitMix64-mixed flow id.
//
// Why jump hash: it is stateless and deterministic — the mapping is a pure
// function of (flow, num_shards) — so a restart with the same shard count
// maps every flow to the same shard (no remap across restarts, no
// ring-state file to persist), and changing the shard count from n to n+1
// moves only ~1/(n+1) of the flows (the consistent-hash property), keeping
// reconfiguration cheap. The SplitMix64 pre-mix matters because flow ids
// are small dense integers: jump hash treats its key as an LCG seed, and
// adjacent seeds are correlated enough to skew the shard histogram.
//
// Per-flow packet order: a flow maps to exactly one shard, so all its
// packets traverse one MPSC ring and one scheduler — order is preserved as
// long as each producer thread emits a given flow's packets itself (see
// serve/mpsc_ring.h).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "net/packet.h"
#include "net/scheduler.h"

namespace hfq::serve {

namespace detail {
// SplitMix64 finalizer — decorrelates dense flow ids before the jump LCG.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace detail

// Rejects shard counts the mapping (and the service) cannot support: zero
// shards is a divide-by-nothing, and more shards than representable flows
// can never all be used — both are configuration errors, reported with a
// clear message at startup instead of propagating as UB.
inline void validate_shard_count(std::size_t num_shards) {
  if (num_shards == 0) {
    throw std::invalid_argument("serve: shard count must be >= 1");
  }
  if (num_shards > net::kMaxFlows) {
    throw std::invalid_argument(
        "serve: shard count " + std::to_string(num_shards) +
        " exceeds net::kMaxFlows (" + std::to_string(net::kMaxFlows) +
        ") — more shards than addressable flows");
  }
}

// The shard serving `flow` out of `num_shards`. Pure and deterministic:
// same inputs, same shard, on every run of every build (pinned values are
// asserted in tests/test_serve.cc). Precondition: num_shards was accepted
// by validate_shard_count.
[[nodiscard]] inline std::uint32_t shard_of(net::FlowId flow,
                                            std::size_t num_shards) noexcept {
  std::uint64_t key = detail::mix64(flow);
  std::int64_t b = -1;
  std::int64_t j = 0;
  while (j < static_cast<std::int64_t>(num_shards)) {
    b = j;
    key = key * 2862933555777941757ULL + 1;
    j = static_cast<std::int64_t>(
        static_cast<double>(b + 1) *
        (static_cast<double>(1LL << 31) /
         static_cast<double>((key >> 33) + 1)));
  }
  return static_cast<std::uint32_t>(b);
}

}  // namespace hfq::serve
