#include "serve/stats_export.h"

#include <chrono>
#include <iomanip>

#include "serve/service.h"
#include "util/assert.h"

namespace hfq::serve {

StatsExporter::StatsExporter(const Service& svc, std::ostream& sink,
                             double period_s)
    : svc_(svc), sink_(sink), period_s_(period_s),
      last_delivered_(svc.num_shards(), 0),
      last_t_(svc.num_shards(), 0.0) {
  HFQ_ASSERT_MSG(period_s_ > 0.0, "stats period must be positive");
}

StatsExporter::~StatsExporter() { stop(); }

void StatsExporter::start() {
  HFQ_ASSERT_MSG(!thread_.joinable(), "stats exporter started twice");
  stop_ = false;
  thread_ = std::thread([this] { run_once(); });
}

void StatsExporter::stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> g(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  write_tick();  // final snapshot with current totals
}

void StatsExporter::run_once() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    const auto period =
        std::chrono::duration<double>(period_s_);
    if (cv_.wait_for(lk, period, [this] { return stop_; })) return;
    lk.unlock();
    write_tick();
    lk.lock();
  }
}

void StatsExporter::write_tick() {
  const double now = svc_.clock_s();
  const std::uint64_t seq = ticks_ + 1;
  sink_ << std::setprecision(9);
  for (std::size_t i = 0; i < svc_.num_shards(); ++i) {
    const Shard& sh = svc_.shard(i);
    const ShardStats& st = sh.stats();
    // verify: relaxed — periodic monitoring export; values may lag the
    // shard thread by a tick, which the derived-rate math tolerates, so
    // no ordering is needed on any read below.
    //
    // Read order matters for the DERIVED sched_drops: the shard bumps
    // `ingested` before `accepted`, so reading accepted FIRST guarantees
    // ingested >= the accepted we saw and the difference can never
    // underflow to a bogus huge "drop burst" mid-stream (it previously
    // could, most visibly while live edits kept the loop busy).
    const std::uint64_t accepted =
        st.accepted.load(std::memory_order_relaxed);
    const std::uint64_t ingested =
        st.ingested.load(std::memory_order_relaxed);
    const std::uint64_t delivered =
        st.delivered.load(std::memory_order_relaxed);
    const double dt = now - last_t_[i];
    const double pps =
        dt > 0.0
            ? static_cast<double>(delivered - last_delivered_[i]) / dt
            : 0.0;
    last_delivered_[i] = delivered;
    last_t_[i] = now;
    sink_ << "{\"t\":" << now << ",\"seq\":" << seq << ",\"shard\":" << i
          << ",\"epoch\":"
          << st.epoch.load(std::memory_order_relaxed)
          << ",\"ingested\":" << ingested << ",\"accepted\":" << accepted
          << ",\"delivered\":" << delivered
          << ",\"sched_drops\":" << (ingested - accepted)
          << ",\"edit_drops\":" << st.edit_drops.load(std::memory_order_relaxed)
          << ",\"ring_drops\":" << sh.ring_drops()
          << ",\"backlog\":" << st.backlog.load(std::memory_order_relaxed)
          << ",\"p50_s\":" << st.p50_s.load(std::memory_order_relaxed)
          << ",\"p99_s\":" << st.p99_s.load(std::memory_order_relaxed)
          << ",\"pps\":" << pps << ",\"faulted\":" << (sh.faulted() ? 1 : 0)
          << "}\n";
  }
  sink_.flush();
  ++ticks_;
}

}  // namespace hfq::serve
