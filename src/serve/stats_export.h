// Newline-JSON runtime stats export for the scheduler service.
//
// A control-plane thread wakes every `period_s` and writes one JSON object
// per shard per tick to the sink stream: throughput (pps from the delivered
// delta), queue depth, drop/overflow counters, edit epoch, and the P^2
// latency quantiles the shard publishes. One object per line, flushed per
// tick, so `tail -f` and line-oriented tooling consume it directly:
//
//   {"t":1.504,"seq":4,"shard":0,"epoch":2,"ingested":812345,...}
//
// Stream contract: every exported counter is monotonic (single-writer shard
// atomics, never reset — live hierarchy edits change rates, not counters),
// and every line carries the tick's `seq`, which increases by exactly one
// per tick. A reader that sees seq jump backwards is looking at a restarted
// stream; a gap means it missed ticks; a repeated seq with a different `t`
// is a torn/concatenated stream. `sched_drops` is derived (ingested -
// accepted) with the reads ordered so it can never underflow.
//
// This is control-plane code: it reads the shards' padded atomic counters
// and never touches a scheduler, a ring, or a shard loop. Its sleep uses a
// condition variable so stop() interrupts a tick immediately — the
// `lock-in-shard-loop` lint flags the wait by name pattern and is
// suppressed by policy in hfq_lint.supp (see DESIGN.md "Service").
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <thread>
#include <vector>

namespace hfq::serve {

class Service;

class StatsExporter {
 public:
  StatsExporter(const Service& svc, std::ostream& sink, double period_s = 0.5);
  ~StatsExporter();

  StatsExporter(const StatsExporter&) = delete;
  StatsExporter& operator=(const StatsExporter&) = delete;

  void start();
  void stop();

  // Writes one tick's worth of lines immediately (also used by stop() for a
  // final snapshot, so the stream always ends with current totals).
  void write_tick();

  [[nodiscard]] std::uint64_t ticks() const noexcept { return ticks_; }

 private:
  void run_once();  // the exporter loop (control plane; may block)

  const Service& svc_;
  std::ostream& sink_;
  double period_s_;
  std::vector<std::uint64_t> last_delivered_;
  std::vector<double> last_t_;
  std::uint64_t ticks_ = 0;

  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace hfq::serve
