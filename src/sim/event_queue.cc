// EventQueue is header-only; this TU anchors the library target.
#include "sim/event_queue.h"
