// Time-ordered event queue for the discrete-event kernel.
//
// Events at equal times fire in schedule order (FIFO), which makes every
// simulation in this repository deterministic.
#pragma once

#include <cstdint>
#include <functional>

#include "net/packet.h"
#include "util/heap.h"

namespace hfq::sim {

using Time = net::Time;
using EventId = util::HeapHandle;
inline constexpr EventId kInvalidEvent = util::kInvalidHeapHandle;

class EventQueue {
 public:
  using Action = std::function<void()>;

  EventId schedule(Time when, Action action) {
    return heap_.push(when, std::move(action));
  }

  // Cancels a pending event. Safe to call only while the event is pending.
  void cancel(EventId id) { heap_.erase(id); }

  [[nodiscard]] bool pending(EventId id) const { return heap_.contains(id); }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  [[nodiscard]] Time next_time() const { return heap_.top_key(); }

  // Removes and returns the earliest event's action.
  Action pop() { return heap_.pop(); }

 private:
  util::HandleHeap<Time, Action> heap_;
};

}  // namespace hfq::sim
