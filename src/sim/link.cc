// Link is header-only; this TU anchors the library target.
#include "sim/link.h"
