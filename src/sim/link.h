// An output link: serves one packet at a time from a Scheduler at a fixed
// bit rate, delivering each departed packet to a callback.
//
// Two drain modes:
//  * per-packet (default): every transmission is one simulator event, the
//    scheduler is consulted once per packet. This is the reference timing
//    model; every figure and test runs on it.
//  * batched (set_batched): the link commits a run of back-to-back
//    transmissions in one scheduler call (net::Scheduler::dequeue_burst),
//    bounded by the simulator's next pending event, and schedules their
//    completions in bulk. Per-packet delivery times are preserved exactly;
//    what changes is tie ordering at shared instants — the drain is deferred
//    to a same-time event so all simultaneous arrivals enqueue before the
//    link selects, whereas per-packet mode serves the first arrival of an
//    instant before later ones are offered. OPEN-LOOP ONLY: delivery
//    callbacks must not inject traffic (a closed loop — e.g. traffic::Tcp —
//    reacts to each delivery, and a committed burst cannot be preempted).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "net/packet.h"
#include "net/scheduler.h"
#include "obs/flight_recorder.h"
#include "sim/simulator.h"
#include "util/assert.h"

namespace hfq::sim {

class Link {
 public:
  // Called when a packet finishes transmission; `now` is the departure time.
  using DeliveryFn = std::function<void(const net::Packet&, Time now)>;

  Link(Simulator& sim, net::Scheduler& sched, double rate_bps)
      : sim_(sim), sched_(sched), rate_bps_(rate_bps) {
    HFQ_ASSERT_MSG(rate_bps > 0.0, "link rate must be positive");
  }

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  void set_delivery(DeliveryFn fn) { deliver_ = std::move(fn); }

  // Switches to the batched drain (see the header comment for semantics and
  // the open-loop requirement). `max_burst` caps transmissions committed per
  // scheduler call. Must not be toggled while a transmission is in flight.
  void set_batched(bool on, std::size_t max_burst = 64) {
    HFQ_ASSERT_MSG(!busy_, "cannot switch drain mode mid-transmission");
    HFQ_ASSERT(max_burst > 0);
    batched_ = on;
    max_burst_ = max_burst;
  }
  [[nodiscard]] bool batched() const noexcept { return batched_; }

  // Entry point for traffic: stamps the arrival time, offers the packet to
  // the scheduler and starts transmitting if idle. Returns false on drop.
  bool submit(net::Packet p) {
    p.arrival = sim_.now();
    bool accepted = false;
    {
      // Self-profiling span around the scheduler call (obs flight recorder;
      // an empty object unless HFQ_TRACE is compiled in).
      obs::SpanTimer span("link.enqueue", sim_.now());
      accepted = sched_.enqueue(p, sim_.now());
    }
    if (accepted) kick();
    return accepted;
  }

  // Re-checks the scheduler for work. Needed by components that insert
  // packets into the scheduler outside submit() (e.g. qos::ShapedScheduler
  // releasing shaped packets on a timer).
  void poke() { kick(); }

  [[nodiscard]] double rate_bps() const noexcept { return rate_bps_; }
  [[nodiscard]] bool busy() const noexcept { return busy_; }
  [[nodiscard]] std::uint64_t packets_sent() const noexcept { return sent_; }
  [[nodiscard]] double bits_sent() const noexcept { return bits_sent_; }

  // Fraction of [0, now] the link spent transmitting.
  [[nodiscard]] double utilization(Time now) const {
    return now > 0.0 ? bits_sent_ / (rate_bps_ * now) : 0.0;
  }

 private:
  // Starts the next transmission if the link is idle and work is queued.
  void kick() {
    if (busy_) return;
    if (batched_) {
      // Defer the drain to a fresh same-time event: it runs after every
      // event already scheduled for this instant, so all simultaneous
      // arrivals are enqueued — and the emitting source has scheduled its
      // next arrival, making the horizon below exact.
      if (!drain_pending_) {
        drain_pending_ = true;
        sim_.at(sim_.now(), [this] { drain(); });
      }
      return;
    }
    std::optional<net::Packet> p;
    {
      obs::SpanTimer span("link.dequeue", sim_.now());
      p = sched_.dequeue(sim_.now());
    }
    if (!p.has_value()) return;
    busy_ = true;
    const double tx_seconds = p->size_bits() / rate_bps_;
    sim_.after(tx_seconds, [this, pkt = *p] { complete(pkt); });
  }

  void complete(const net::Packet& p) {
    busy_ = false;
    ++sent_;
    bits_sent_ += p.size_bits();
    if (deliver_) deliver_(p, sim_.now());
    kick();
  }

  // Batched mode: commit up to max_burst_ back-to-back transmissions,
  // bounded by the next pending arrival (a packet whose start would fall at
  // or past it must wait — it may not be the scheduler's choice once that
  // arrival lands).
  void drain() {
    drain_pending_ = false;
    if (busy_) return;
    const Time now = sim_.now();
    const Time horizon = sim_.has_pending_events()
                             ? sim_.next_event_time()
                             : std::numeric_limits<Time>::infinity();
    burst_.clear();
    std::size_t n;
    {
      obs::SpanTimer span("link.dequeue", now);
      n = sched_.dequeue_burst(burst_, max_burst_, now, rate_bps_, horizon);
    }
    if (n == 0) return;
    busy_ = true;
    // Completion times accumulate exactly as dequeue_burst's internal clock
    // does, so each packet departs at the instant per-packet mode would
    // deliver it.
    Time t = now;
    for (std::size_t i = 0; i < n; ++i) {
      t += burst_[i].size_bits() / rate_bps_;
      const bool last = i + 1 == n;
      sim_.at(t, [this, pkt = burst_[i], last] { complete_batched(pkt, last); });
    }
  }

  void complete_batched(const net::Packet& p, bool last) {
    ++sent_;
    bits_sent_ += p.size_bits();
    if (deliver_) deliver_(p, sim_.now());
    if (last) {
      busy_ = false;
      kick();
    }
  }

  Simulator& sim_;
  net::Scheduler& sched_;
  double rate_bps_;
  DeliveryFn deliver_;
  bool busy_ = false;
  bool batched_ = false;
  bool drain_pending_ = false;
  std::size_t max_burst_ = 64;
  std::vector<net::Packet> burst_;  // reused across drains
  std::uint64_t sent_ = 0;
  double bits_sent_ = 0.0;
};

}  // namespace hfq::sim
