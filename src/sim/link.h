// An output link: serves one packet at a time from a Scheduler at a fixed
// bit rate, delivering each departed packet to a callback.
//
// Two drain modes:
//  * per-packet (default): every transmission is one simulator event, the
//    scheduler is consulted once per packet. This is the reference timing
//    model; every figure and test runs on it.
//  * batched (set_batched): the link commits a run of back-to-back
//    transmissions in one scheduler call (net::Scheduler::dequeue_burst) and
//    schedules their completions in bulk. Per-packet delivery times are
//    preserved exactly; what changes is tie ordering at shared instants —
//    the drain is deferred to a same-time event so all simultaneous arrivals
//    enqueue before the link selects, whereas per-packet mode serves the
//    first arrival of an instant before later ones are offered.
//
// Closed-loop safety (the feedback fence). A committed burst cannot be
// preempted, so a burst is only exact if no arrival the scheduler should
// have seen lands before a committed packet's start. Arrivals come from two
// places: events already pending when the drain runs (the drain is deferred
// to a same-time event, so every source has its next emission scheduled —
// the simulator's next-event time bounds those exactly), and *reactions to
// this burst's own deliveries* (a closed loop such as traffic::Tcp). The
// latter are invisible to the event horizon at commit time. The caller
// therefore declares the loop's minimum feedback delay D via
// set_batched(on, max_burst, feedback_delay_s): a reaction to a delivery at
// t >= now cannot re-enter the scheduler before t + D, so fencing the burst
// at now + D (in addition to the pending-event horizon) makes the committed
// schedule identical to per-packet mode — any reaction lands at or after
// the fence, which no committed packet's start reaches. The fence is
// conservative by at most one packet (it uses now + D, not first-delivery +
// D). D defaults to kOpenLoopFeedback (infinity): open-loop traffic never
// reacts, so the event horizon alone is exact — the pre-existing behavior.
// For TCP Reno, D = 2 * one_way_delay_s (delivery -> receiver after one
// owd -> ACK -> sender after another owd). D = 0 degenerates to one packet
// per commit, which is per-packet-exact for any loop.
//
// The declaration is verified at runtime: if a packet is submitted (or the
// scheduler poked) while a burst is in flight, at an instant strictly
// earlier than the start of the burst's last committed packet, the declared
// D was too large and the schedule may diverge from per-packet mode — the
// link reports "batched-feedback-contract" through audit::report (once per
// burst). An arrival exactly at a committed start is the benign tie case
// already covered by the tie-ordering note above.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "audit/invariants.h"
#include "net/packet.h"
#include "net/scheduler.h"
#include "obs/flight_recorder.h"
#include "sim/simulator.h"
#include "util/assert.h"

namespace hfq::sim {

class Link {
 public:
  // Called when a packet finishes transmission; `now` is the departure time.
  using DeliveryFn = std::function<void(const net::Packet&, Time now)>;

  // Default feedback delay: infinity, i.e. "this traffic never reacts to
  // deliveries" — correct for all open-loop sources (CBR/Poisson/on-off).
  static constexpr double kOpenLoopFeedback =
      std::numeric_limits<double>::infinity();

  Link(Simulator& sim, net::Scheduler& sched, double rate_bps)
      : sim_(sim), sched_(sched), rate_bps_(rate_bps) {
    HFQ_ASSERT_MSG(rate_bps > 0.0, "link rate must be positive");
  }

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  void set_delivery(DeliveryFn fn) { deliver_ = std::move(fn); }

  // Switches to the batched drain (see the header comment for semantics and
  // the feedback fence). `max_burst` caps transmissions committed per
  // scheduler call; `feedback_delay_s` declares the minimum delay between a
  // delivery and any traffic it can cause to re-enter this scheduler
  // (kOpenLoopFeedback for traffic that never reacts). Must not be toggled
  // while a transmission is in flight.
  void set_batched(bool on, std::size_t max_burst = 64,
                   double feedback_delay_s = kOpenLoopFeedback) {
    HFQ_ASSERT_MSG(!busy_, "cannot switch drain mode mid-transmission");
    HFQ_ASSERT(max_burst > 0);
    HFQ_ASSERT_MSG(feedback_delay_s >= 0.0,
                   "feedback delay must be non-negative");
    batched_ = on;
    max_burst_ = max_burst;
    feedback_delay_s_ = feedback_delay_s;
  }
  [[nodiscard]] bool batched() const noexcept { return batched_; }
  [[nodiscard]] double feedback_delay_s() const noexcept {
    return feedback_delay_s_;
  }

  // Entry point for traffic: stamps the arrival time, offers the packet to
  // the scheduler and starts transmitting if idle. Returns false on drop.
  bool submit(net::Packet p) {
    check_feedback_contract();
    p.arrival = sim_.now();
    bool accepted = false;
    {
      // Self-profiling span around the scheduler call (obs flight recorder;
      // an empty object unless HFQ_TRACE is compiled in).
      obs::SpanTimer span("link.enqueue", sim_.now());
      accepted = sched_.enqueue(p, sim_.now());
    }
    if (accepted) kick();
    return accepted;
  }

  // Re-checks the scheduler for work. Needed by components that insert
  // packets into the scheduler outside submit() (e.g. qos::ShapedScheduler
  // releasing shaped packets on a timer).
  void poke() {
    check_feedback_contract();
    kick();
  }

  [[nodiscard]] double rate_bps() const noexcept { return rate_bps_; }
  [[nodiscard]] bool busy() const noexcept { return busy_; }
  [[nodiscard]] std::uint64_t packets_sent() const noexcept { return sent_; }
  [[nodiscard]] double bits_sent() const noexcept { return bits_sent_; }

  // Times the declared feedback contract was observed broken (an arrival
  // landed strictly before a committed packet's start; counted once per
  // burst, also reported via audit::report).
  [[nodiscard]] std::uint64_t feedback_contract_violations() const noexcept {
    return feedback_violations_;
  }

  // Fraction of [0, now] the link spent transmitting.
  [[nodiscard]] double utilization(Time now) const {
    return now > 0.0 ? bits_sent_ / (rate_bps_ * now) : 0.0;
  }

 private:
  // Starts the next transmission if the link is idle and work is queued.
  void kick() {
    if (busy_) return;
    if (batched_) {
      // Defer the drain to a fresh same-time event: it runs after every
      // event already scheduled for this instant, so all simultaneous
      // arrivals are enqueued — and the emitting source has scheduled its
      // next arrival, making the pending-event horizon below exact.
      if (!drain_pending_) {
        drain_pending_ = true;
        sim_.at(sim_.now(), [this] { drain(); });
      }
      return;
    }
    std::optional<net::Packet> p;
    {
      obs::SpanTimer span("link.dequeue", sim_.now());
      p = sched_.dequeue(sim_.now());
    }
    if (!p.has_value()) return;
    busy_ = true;
    const double tx_seconds = p->size_bits() / rate_bps_;
    sim_.after(tx_seconds, [this, pkt = *p] { complete(pkt); });
  }

  void complete(const net::Packet& p) {
    busy_ = false;
    ++sent_;
    bits_sent_ += p.size_bits();
    if (deliver_) deliver_(p, sim_.now());
    kick();
  }

  // Batched mode: commit up to max_burst_ back-to-back transmissions,
  // bounded by the earlier of the next pending arrival and the feedback
  // fence now + D (a packet whose start would fall at or past either must
  // wait — it may not be the scheduler's choice once that arrival lands).
  void drain() {
    drain_pending_ = false;
    if (busy_) return;
    const Time now = sim_.now();
    Time horizon = sim_.has_pending_events()
                       ? sim_.next_event_time()
                       : std::numeric_limits<Time>::infinity();
    const Time fence = now + feedback_delay_s_;
    if (fence < horizon) horizon = fence;
    burst_.clear();
    std::size_t n;
    {
      obs::SpanTimer span("link.dequeue", now);
      n = sched_.dequeue_burst(burst_, max_burst_, now, rate_bps_, horizon);
    }
    if (n == 0) return;
    busy_ = true;
    burst_violation_reported_ = false;
    // Completion times accumulate exactly as dequeue_burst's internal clock
    // does, so each packet departs at the instant per-packet mode would
    // deliver it.
    Time t = now;
    for (std::size_t i = 0; i < n; ++i) {
      if (i + 1 == n) burst_last_start_ = t;
      t += burst_[i].size_bits() / rate_bps_;
      const bool last = i + 1 == n;
      sim_.at(t, [this, pkt = burst_[i], last] { complete_batched(pkt, last); });
    }
  }

  void complete_batched(const net::Packet& p, bool last) {
    ++sent_;
    bits_sent_ += p.size_bits();
    if (deliver_) deliver_(p, sim_.now());
    if (last) {
      busy_ = false;
      kick();
    }
  }

  // Runtime verification of the declared feedback delay: an arrival while a
  // burst is in flight, strictly before the start of the burst's last
  // committed packet, means a committed selection could have been different
  // in per-packet mode — the declared D overstated the loop's true delay.
  void check_feedback_contract() {
    if (!batched_ || !busy_ || burst_violation_reported_) return;
    if (sim_.now() < burst_last_start_) {
      burst_violation_reported_ = true;
      ++feedback_violations_;
      audit::report("batched-feedback-contract", __FILE__, __LINE__,
                    "arrival at t=" + std::to_string(sim_.now()) +
                        " preempts a committed burst (last start " +
                        std::to_string(burst_last_start_) +
                        "); declared feedback_delay_s=" +
                        std::to_string(feedback_delay_s_) + " is too large");
    }
  }

  Simulator& sim_;
  net::Scheduler& sched_;
  double rate_bps_;
  DeliveryFn deliver_;
  bool busy_ = false;
  bool batched_ = false;
  bool drain_pending_ = false;
  std::size_t max_burst_ = 64;
  double feedback_delay_s_ = kOpenLoopFeedback;
  std::vector<net::Packet> burst_;  // reused across drains
  // Start time of the last packet of the in-flight burst (contract check).
  Time burst_last_start_ = 0.0;
  bool burst_violation_reported_ = false;
  std::uint64_t feedback_violations_ = 0;
  std::uint64_t sent_ = 0;
  double bits_sent_ = 0.0;
};

}  // namespace hfq::sim
