// An output link: serves one packet at a time from a Scheduler at a fixed
// bit rate, delivering each departed packet to a callback.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>

#include "net/packet.h"
#include "net/scheduler.h"
#include "obs/flight_recorder.h"
#include "sim/simulator.h"

namespace hfq::sim {

class Link {
 public:
  // Called when a packet finishes transmission; `now` is the departure time.
  using DeliveryFn = std::function<void(const net::Packet&, Time now)>;

  Link(Simulator& sim, net::Scheduler& sched, double rate_bps)
      : sim_(sim), sched_(sched), rate_bps_(rate_bps) {
    HFQ_ASSERT_MSG(rate_bps > 0.0, "link rate must be positive");
  }

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  void set_delivery(DeliveryFn fn) { deliver_ = std::move(fn); }

  // Entry point for traffic: stamps the arrival time, offers the packet to
  // the scheduler and starts transmitting if idle. Returns false on drop.
  bool submit(net::Packet p) {
    p.arrival = sim_.now();
    bool accepted = false;
    {
      // Self-profiling span around the scheduler call (obs flight recorder;
      // an empty object unless HFQ_TRACE is compiled in).
      obs::SpanTimer span("link.enqueue", sim_.now());
      accepted = sched_.enqueue(p, sim_.now());
    }
    if (accepted) kick();
    return accepted;
  }

  // Re-checks the scheduler for work. Needed by components that insert
  // packets into the scheduler outside submit() (e.g. qos::ShapedScheduler
  // releasing shaped packets on a timer).
  void poke() { kick(); }

  [[nodiscard]] double rate_bps() const noexcept { return rate_bps_; }
  [[nodiscard]] bool busy() const noexcept { return busy_; }
  [[nodiscard]] std::uint64_t packets_sent() const noexcept { return sent_; }
  [[nodiscard]] double bits_sent() const noexcept { return bits_sent_; }

  // Fraction of [0, now] the link spent transmitting.
  [[nodiscard]] double utilization(Time now) const {
    return now > 0.0 ? bits_sent_ / (rate_bps_ * now) : 0.0;
  }

 private:
  // Starts the next transmission if the link is idle and work is queued.
  void kick() {
    if (busy_) return;
    std::optional<net::Packet> p;
    {
      obs::SpanTimer span("link.dequeue", sim_.now());
      p = sched_.dequeue(sim_.now());
    }
    if (!p.has_value()) return;
    busy_ = true;
    const double tx_seconds = p->size_bits() / rate_bps_;
    sim_.after(tx_seconds, [this, pkt = *p] { complete(pkt); });
  }

  void complete(const net::Packet& p) {
    busy_ = false;
    ++sent_;
    bits_sent_ += p.size_bits();
    if (deliver_) deliver_(p, sim_.now());
    kick();
  }

  Simulator& sim_;
  net::Scheduler& sched_;
  double rate_bps_;
  DeliveryFn deliver_;
  bool busy_ = false;
  std::uint64_t sent_ = 0;
  double bits_sent_ = 0.0;
};

}  // namespace hfq::sim
