// Simulator is header-only; this TU anchors the library target.
#include "sim/simulator.h"
