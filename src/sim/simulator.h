// Discrete-event simulator kernel (NETSIM-equivalent substrate).
#pragma once

#include <cstdint>

#include "sim/event_queue.h"
#include "util/assert.h"

namespace hfq::sim {

class Simulator {
 public:
  [[nodiscard]] Time now() const noexcept { return now_; }

  // Schedules `action` at absolute time `when` (>= now).
  EventId at(Time when, EventQueue::Action action) {
    HFQ_ASSERT_MSG(when >= now_, "event scheduled in the past");
    return events_.schedule(when, std::move(action));
  }

  // Schedules `action` `delay` seconds from now.
  EventId after(Time delay, EventQueue::Action action) {
    HFQ_ASSERT_MSG(delay >= 0.0, "negative delay");
    return events_.schedule(now_ + delay, std::move(action));
  }

  void cancel(EventId id) { events_.cancel(id); }
  [[nodiscard]] bool pending(EventId id) const { return events_.pending(id); }

  // Executes the next event; returns false if none remain.
  bool step() {
    if (events_.empty()) return false;
    now_ = events_.next_time();
    auto action = events_.pop();
    action();
    ++executed_;
    return true;
  }

  // Runs until the event queue drains.
  void run() {
    while (step()) {
    }
  }

  // Runs every event with time <= t_end, then advances the clock to t_end.
  void run_until(Time t_end) {
    while (!events_.empty() && events_.next_time() <= t_end) {
      step();
    }
    if (t_end > now_) now_ = t_end;
  }

  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }
  [[nodiscard]] std::size_t events_pending() const noexcept { return events_.size(); }

  // Earliest pending event — the horizon a batched link may commit
  // transmissions up to (sim/link.h). Only valid when events are pending.
  [[nodiscard]] bool has_pending_events() const noexcept {
    return !events_.empty();
  }
  [[nodiscard]] Time next_event_time() const { return events_.next_time(); }

 private:
  EventQueue events_;
  Time now_ = 0.0;
  std::uint64_t executed_ = 0;
};

}  // namespace hfq::sim
