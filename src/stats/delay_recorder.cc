// DelayRecorder is header-only; this TU anchors the library target.
#include "stats/delay_recorder.h"
