// Per-flow packet delay measurement.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "util/assert.h"

namespace hfq::stats {

// Records (departure time, delay) samples for one flow and answers summary
// queries. Delay is measured from the packet's arrival at the server to the
// end of its transmission, matching the paper's per-hop delay figures.
class DelayRecorder {
 public:
  struct Sample {
    net::Time when = 0.0;   // departure time
    double delay = 0.0;     // seconds
  };

  void record(const net::Packet& p, net::Time departure) {
    HFQ_ASSERT_MSG(departure >= p.arrival, "negative delay");
    samples_.push_back(Sample{departure, departure - p.arrival});
    sum_ += samples_.back().delay;
    if (samples_.back().delay > max_) max_ = samples_.back().delay;
  }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] double max_delay() const noexcept { return max_; }
  [[nodiscard]] double mean_delay() const {
    return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
  }

  // p in [0, 100]; nearest-rank percentile.
  [[nodiscard]] double percentile(double p) const {
    HFQ_ASSERT(p >= 0.0 && p <= 100.0);
    if (samples_.empty()) return 0.0;
    std::vector<double> v;
    v.reserve(samples_.size());
    for (const Sample& s : samples_) v.push_back(s.delay);
    std::sort(v.begin(), v.end());
    const auto rank = static_cast<std::size_t>(
        p / 100.0 * static_cast<double>(v.size() - 1) + 0.5);
    return v[std::min(rank, v.size() - 1)];
  }

  [[nodiscard]] const std::vector<Sample>& samples() const noexcept {
    return samples_;
  }

  void clear() {
    samples_.clear();
    sum_ = 0.0;
    max_ = 0.0;
  }

 private:
  std::vector<Sample> samples_;
  double sum_ = 0.0;
  double max_ = 0.0;
};

}  // namespace hfq::stats
