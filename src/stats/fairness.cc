// Fairness helpers are header-only; this TU anchors the library target.
#include "stats/fairness.h"
