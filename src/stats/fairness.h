// Fairness summary metrics for experiment reporting.
#pragma once

#include <cmath>
#include <span>

#include "util/assert.h"

namespace hfq::stats {

// Jain's fairness index over per-flow allocations: 1.0 = perfectly equal,
// 1/n = maximally skewed. Pass normalized allocations (x_i = W_i / r_i) to
// measure weighted fairness.
[[nodiscard]] inline double jain_index(std::span<const double> x) {
  HFQ_ASSERT(!x.empty());
  double sum = 0.0, sum_sq = 0.0;
  for (const double v : x) {
    HFQ_ASSERT(v >= 0.0);
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;  // all zero: trivially equal
  return sum * sum / (static_cast<double>(x.size()) * sum_sq);
}

// Max-min ratio of normalized allocations (1.0 = perfectly weighted-fair).
[[nodiscard]] inline double min_over_max(std::span<const double> x) {
  HFQ_ASSERT(!x.empty());
  double lo = x[0], hi = x[0];
  for (const double v : x) {
    lo = v < lo ? v : lo;
    hi = v > hi ? v : hi;
  }
  return hi > 0.0 ? lo / hi : 1.0;
}

}  // namespace hfq::stats
