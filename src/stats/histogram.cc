// Histogram is header-only; this TU anchors the library target.
#include "stats/histogram.h"
