// Fixed-bin histogram for delay distributions.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.h"

namespace hfq::stats {

class Histogram {
 public:
  // Bins of width `bin_width` covering [0, bin_width * bin_count); values
  // beyond the last bin are counted in the overflow bucket.
  Histogram(double bin_width, std::size_t bin_count)
      : bin_width_(bin_width), bins_(bin_count, 0) {
    HFQ_ASSERT(bin_width > 0.0);
    HFQ_ASSERT(bin_count > 0);
  }

  void add(double value) {
    HFQ_ASSERT(value >= 0.0);
    const auto idx = static_cast<std::size_t>(value / bin_width_);
    if (idx < bins_.size()) {
      ++bins_[idx];
    } else {
      ++overflow_;
    }
    ++total_;
  }

  // Merges a histogram with the identical bin layout (same width and
  // count). Exact: the merged bins equal what a single instance would hold
  // after ingesting both sample streams — integer counts commute, so
  // per-worker accumulation + merge-on-join loses nothing.
  void merge(const Histogram& other) {
    HFQ_ASSERT_MSG(other.bin_width_ == bin_width_ &&
                       other.bins_.size() == bins_.size(),
                   "histogram merge requires an identical bin layout");
    for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
    overflow_ += other.overflow_;
    total_ += other.total_;
  }

  [[nodiscard]] std::uint64_t bin(std::size_t i) const {
    HFQ_ASSERT(i < bins_.size());
    return bins_[i];
  }
  [[nodiscard]] std::size_t bin_count() const noexcept { return bins_.size(); }
  [[nodiscard]] double bin_width() const noexcept { return bin_width_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  // Fraction of samples with value < x (linear interpolation inside bins).
  [[nodiscard]] double cdf(double x) const {
    if (total_ == 0) return 0.0;
    double count = 0.0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
      const double lo = static_cast<double>(i) * bin_width_;
      const double hi = lo + bin_width_;
      if (x >= hi) {
        count += static_cast<double>(bins_[i]);
      } else if (x > lo) {
        count += static_cast<double>(bins_[i]) * (x - lo) / bin_width_;
      } else {
        break;
      }
    }
    return count / static_cast<double>(total_);
  }

 private:
  double bin_width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace hfq::stats
