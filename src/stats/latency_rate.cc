// LatencyRateEstimator is header-only; this TU anchors the library target.
#include "stats/latency_rate.h"
