// Latency-rate (LR) server characterization.
//
// A server is an LR(theta, r) server for a flow if during any backlogged
// period starting at t0, W(t0, t) >= r * (t - t0 - theta) for all t. The
// smallest feasible theta summarizes a scheduler's worst-case "startup"
// latency — for WF²Q+ it is on the order of L_i/r_i + Lmax/R, while for
// WFQ-family servers it inherits the N-dependent WFI. This estimator
// measures theta online from observed service.
#pragma once

#include <algorithm>

#include "net/packet.h"
#include "util/assert.h"

namespace hfq::stats {

class LatencyRateEstimator {
 public:
  // `rate_bps` is the guaranteed rate the LR curve is tested against.
  explicit LatencyRateEstimator(double rate_bps) : rate_(rate_bps) {
    HFQ_ASSERT(rate_bps > 0.0);
  }

  // Flow transitions empty -> backlogged at time t.
  void backlog_start(net::Time t) {
    in_backlog_ = true;
    t0_ = t;
    served_in_period_ = 0.0;
  }

  void backlog_end() { in_backlog_ = false; }

  // `bits` of the observed flow finished service at time t.
  void on_service(net::Time t, double bits) {
    if (!in_backlog_) return;
    served_in_period_ += bits;
    // Feasibility at this instant: W >= r (t - t0 - theta)
    //   → theta >= (t - t0) - W / r.
    const double needed = (t - t0_) - served_in_period_ / rate_;
    theta_ = std::max(theta_, needed);
  }

  // The smallest theta consistent with everything observed so far.
  [[nodiscard]] double theta_seconds() const noexcept {
    return std::max(theta_, 0.0);
  }

 private:
  double rate_;
  bool in_backlog_ = false;
  net::Time t0_ = 0.0;
  double served_in_period_ = 0.0;
  double theta_ = 0.0;
};

}  // namespace hfq::stats
