// P2Quantile / RunningMoments are header-only; this TU anchors the target.
#include "stats/quantile.h"
