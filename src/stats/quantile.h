// Streaming statistics: P² quantile estimation and Welford running moments.
//
// Long simulations produce millions of delay samples; these estimators
// track percentiles and moments in O(1) space so experiment harnesses can
// run unbounded. (DelayRecorder keeps exact samples for the plots; these
// are for the long-haul counters.)
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>

#include "util/assert.h"

namespace hfq::stats {

// Jain & Chlamtac's P² algorithm: estimates one quantile with five markers,
// no stored samples.
class P2Quantile {
 public:
  explicit P2Quantile(double quantile) : q_(quantile) {
    HFQ_ASSERT(quantile > 0.0 && quantile < 1.0);
  }

  void add(double x) {
    if (count_ < 5) {
      initial_[count_++] = x;
      if (count_ == 5) {
        std::sort(initial_.begin(), initial_.end());
        for (int i = 0; i < 5; ++i) {
          height_[i] = initial_[static_cast<std::size_t>(i)];
          pos_[i] = i + 1;
        }
        desired_[0] = 1.0;
        desired_[1] = 1.0 + 2.0 * q_;
        desired_[2] = 1.0 + 4.0 * q_;
        desired_[3] = 3.0 + 2.0 * q_;
        desired_[4] = 5.0;
        incr_[0] = 0.0;
        incr_[1] = q_ / 2.0;
        incr_[2] = q_;
        incr_[3] = (1.0 + q_) / 2.0;
        incr_[4] = 1.0;
      }
      return;
    }
    // Find the cell k containing x and bump marker positions.
    int k;
    if (x < height_[0]) {
      height_[0] = x;
      k = 0;
    } else if (x >= height_[4]) {
      height_[4] = x;
      k = 3;
    } else {
      k = 0;
      while (k < 3 && x >= height_[k + 1]) ++k;
    }
    for (int i = k + 1; i < 5; ++i) pos_[i] += 1;
    for (int i = 0; i < 5; ++i) desired_[i] += incr_[i];
    // Adjust interior markers toward their desired positions.
    for (int i = 1; i <= 3; ++i) {
      const double d = desired_[i] - pos_[i];
      if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1) ||
          (d <= -1.0 && pos_[i - 1] - pos_[i] < -1)) {
        const int s = d >= 0 ? 1 : -1;
        const double parabolic = parabolic_update(i, s);
        if (height_[i - 1] < parabolic && parabolic < height_[i + 1]) {
          height_[i] = parabolic;
        } else {  // linear fallback
          height_[i] = height_[i] + s * (height_[i + s] - height_[i]) /
                                        (pos_[i + s] - pos_[i]);
        }
        pos_[i] += s;
      }
    }
    ++count_;
  }

  // Current estimate (exact for < 5 samples).
  [[nodiscard]] double value() const {
    if (count_ == 0) return 0.0;
    if (count_ < 5) {
      auto sorted = initial_;
      std::sort(sorted.begin(), sorted.begin() + count_);
      const auto rank = static_cast<std::size_t>(
          q_ * static_cast<double>(count_ - 1) + 0.5);
      return sorted[std::min<std::size_t>(rank, count_ - 1)];
    }
    return height_[2];
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  // Merges another estimator of the SAME quantile (per-worker shards of one
  // sample stream, combined on join).
  //
  // P² keeps five markers, not samples, so the merge is approximate: each
  // marker set is read as a piecewise-linear empirical CDF, the
  // count-weighted mixture of the two CDFs is inverted at the five P²
  // marker fractions {0, q/2, q, (1+q)/2, 1}, and the result re-seeds this
  // estimator's markers. Documented error contract (tested in
  // tests/test_stats.cc):
  //   * count() is exact (sum of both counts);
  //   * the merged estimate lies in [min(mins), max(maxes)];
  //   * merging adds at most one piecewise-linear interpolation error on
  //     top of the worse input estimate — for the continuous distributions
  //     the campaign metrics measure, merged value() tracks
  //     single-instance ingestion within a few percent of the sample range.
  // Sides with fewer than five samples still hold raw samples and merge
  // exactly (replayed through add()).
  void merge(const P2Quantile& other) {
    HFQ_ASSERT_MSG(other.q_ == q_, "quantile merge requires the same q");
    if (other.count_ == 0) return;
    if (other.count_ < 5) {  // other still holds raw samples: replay them
      for (std::size_t i = 0; i < other.count_; ++i) add(other.initial_[i]);
      return;
    }
    if (count_ < 5) {  // we hold raw samples: replay ours into a copy
      P2Quantile merged = other;
      for (std::size_t i = 0; i < count_; ++i) merged.add(initial_[i]);
      *this = merged;
      return;
    }
    const double wa = static_cast<double>(count_);
    const double wb = static_cast<double>(other.count_);
    // Invert the mixture CDF at the five desired marker fractions by
    // sweeping the union of both marker heights (the mixture is piecewise
    // linear with breakpoints exactly there).
    std::array<double, 10> xs{};
    for (int i = 0; i < 5; ++i) {
      xs[static_cast<std::size_t>(i)] = height_[i];
      xs[static_cast<std::size_t>(5 + i)] = other.height_[i];
    }
    std::sort(xs.begin(), xs.end());
    const std::array<double, 5> frac = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0,
                                        1.0};
    std::array<double, 5> merged_h{};
    for (int m = 0; m < 5; ++m) {
      const double f = frac[static_cast<std::size_t>(m)];
      // Find the breakpoint segment whose mixture CDF straddles f.
      double lo_x = xs[0], lo_f = 0.0;
      merged_h[static_cast<std::size_t>(m)] = xs[9];
      for (const double x : xs) {
        const double fx =
            (wa * marker_cdf(x) + wb * other.marker_cdf(x)) / (wa + wb);
        if (fx >= f) {
          merged_h[static_cast<std::size_t>(m)] =
              fx > lo_f ? lo_x + (x - lo_x) * (f - lo_f) / (fx - lo_f) : x;
          break;
        }
        lo_x = x;
        lo_f = fx;
      }
    }
    std::sort(merged_h.begin(), merged_h.end());  // guard FP monotonicity
    count_ += other.count_;
    const double n = static_cast<double>(count_);
    height_ = merged_h;
    desired_[0] = 1.0;
    desired_[1] = 1.0 + 2.0 * q_ * (n - 1.0) / 4.0;
    desired_[2] = 1.0 + q_ * (n - 1.0);
    desired_[3] = 1.0 + (1.0 + q_) * (n - 1.0) / 2.0;
    desired_[4] = n;
    pos_[0] = 1.0;
    pos_[4] = n;
    for (int i = 1; i <= 3; ++i) {
      // Round the desired position, keeping positions strictly increasing
      // so the marker-adjustment guards stay well-formed.
      pos_[i] = std::max(pos_[i - 1] + 1.0, std::floor(desired_[i] + 0.5));
    }
    for (int i = 3; i >= 1; --i) {
      if (pos_[i] >= pos_[i + 1]) pos_[i] = pos_[i + 1] - 1.0;
    }
  }

 private:
  // Empirical CDF fraction at x implied by the markers: piecewise linear
  // through (height_[i], (pos_[i]-1)/(count-1)).
  [[nodiscard]] double marker_cdf(double x) const {
    const double n1 = static_cast<double>(count_) - 1.0;
    if (x <= height_[0]) return 0.0;
    if (x >= height_[4]) return 1.0;
    int i = 0;
    while (i < 4 && x >= height_[i + 1]) ++i;
    const double c0 = (pos_[i] - 1.0) / n1;
    const double c1 = (pos_[i + 1] - 1.0) / n1;
    const double span = height_[i + 1] - height_[i];
    if (span <= 0.0) return c1;
    return c0 + (c1 - c0) * (x - height_[i]) / span;
  }

  [[nodiscard]] double parabolic_update(int i, int s) const {
    const double d = static_cast<double>(s);
    return height_[i] +
           d / (pos_[i + 1] - pos_[i - 1]) *
               ((pos_[i] - pos_[i - 1] + d) * (height_[i + 1] - height_[i]) /
                    (pos_[i + 1] - pos_[i]) +
                (pos_[i + 1] - pos_[i] - d) * (height_[i] - height_[i - 1]) /
                    (pos_[i] - pos_[i - 1]));
  }

  double q_;
  std::uint64_t count_ = 0;
  std::array<double, 5> initial_{};
  std::array<double, 5> height_{};
  std::array<double, 5> pos_{};
  std::array<double, 5> desired_{};
  std::array<double, 5> incr_{};
};

// Welford's online mean/variance.
class RunningMoments {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  // Merges another instance (Chan et al.'s pairwise update — the classic
  // parallel-variance formula). count/min/max are exact; mean and variance
  // equal single-instance ingestion up to floating-point rounding (a few
  // ULP per merge), which is the documented bound the merge-on-join metric
  // path relies on.
  void merge(const RunningMoments& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(o.n_);
    const double delta = o.mean_ - mean_;
    m2_ += o.m2_ + delta * delta * na * nb / (na + nb);
    mean_ += delta * nb / (na + nb);
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    n_ += o.n_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept {
    return std::sqrt(variance());
  }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace hfq::stats
