// Streaming statistics: P² quantile estimation and Welford running moments.
//
// Long simulations produce millions of delay samples; these estimators
// track percentiles and moments in O(1) space so experiment harnesses can
// run unbounded. (DelayRecorder keeps exact samples for the plots; these
// are for the long-haul counters.)
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>

#include "util/assert.h"

namespace hfq::stats {

// Jain & Chlamtac's P² algorithm: estimates one quantile with five markers,
// no stored samples.
class P2Quantile {
 public:
  explicit P2Quantile(double quantile) : q_(quantile) {
    HFQ_ASSERT(quantile > 0.0 && quantile < 1.0);
  }

  void add(double x) {
    if (count_ < 5) {
      initial_[count_++] = x;
      if (count_ == 5) {
        std::sort(initial_.begin(), initial_.end());
        for (int i = 0; i < 5; ++i) {
          height_[i] = initial_[static_cast<std::size_t>(i)];
          pos_[i] = i + 1;
        }
        desired_[0] = 1.0;
        desired_[1] = 1.0 + 2.0 * q_;
        desired_[2] = 1.0 + 4.0 * q_;
        desired_[3] = 3.0 + 2.0 * q_;
        desired_[4] = 5.0;
        incr_[0] = 0.0;
        incr_[1] = q_ / 2.0;
        incr_[2] = q_;
        incr_[3] = (1.0 + q_) / 2.0;
        incr_[4] = 1.0;
      }
      return;
    }
    // Find the cell k containing x and bump marker positions.
    int k;
    if (x < height_[0]) {
      height_[0] = x;
      k = 0;
    } else if (x >= height_[4]) {
      height_[4] = x;
      k = 3;
    } else {
      k = 0;
      while (k < 3 && x >= height_[k + 1]) ++k;
    }
    for (int i = k + 1; i < 5; ++i) pos_[i] += 1;
    for (int i = 0; i < 5; ++i) desired_[i] += incr_[i];
    // Adjust interior markers toward their desired positions.
    for (int i = 1; i <= 3; ++i) {
      const double d = desired_[i] - pos_[i];
      if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1) ||
          (d <= -1.0 && pos_[i - 1] - pos_[i] < -1)) {
        const int s = d >= 0 ? 1 : -1;
        const double parabolic = parabolic_update(i, s);
        if (height_[i - 1] < parabolic && parabolic < height_[i + 1]) {
          height_[i] = parabolic;
        } else {  // linear fallback
          height_[i] = height_[i] + s * (height_[i + s] - height_[i]) /
                                        (pos_[i + s] - pos_[i]);
        }
        pos_[i] += s;
      }
    }
    ++count_;
  }

  // Current estimate (exact for < 5 samples).
  [[nodiscard]] double value() const {
    if (count_ == 0) return 0.0;
    if (count_ < 5) {
      auto sorted = initial_;
      std::sort(sorted.begin(), sorted.begin() + count_);
      const auto rank = static_cast<std::size_t>(
          q_ * static_cast<double>(count_ - 1) + 0.5);
      return sorted[std::min<std::size_t>(rank, count_ - 1)];
    }
    return height_[2];
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 private:
  [[nodiscard]] double parabolic_update(int i, int s) const {
    const double d = static_cast<double>(s);
    return height_[i] +
           d / (pos_[i + 1] - pos_[i - 1]) *
               ((pos_[i] - pos_[i - 1] + d) * (height_[i + 1] - height_[i]) /
                    (pos_[i + 1] - pos_[i]) +
                (pos_[i + 1] - pos_[i] - d) * (height_[i] - height_[i - 1]) /
                    (pos_[i] - pos_[i - 1]));
  }

  double q_;
  std::uint64_t count_ = 0;
  std::array<double, 5> initial_{};
  std::array<double, 5> height_{};
  std::array<double, 5> pos_{};
  std::array<double, 5> desired_{};
  std::array<double, 5> incr_{};
};

// Welford's online mean/variance.
class RunningMoments {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept {
    return std::sqrt(variance());
  }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace hfq::stats
