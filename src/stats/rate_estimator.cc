// RateEstimator is header-only; this TU anchors the library target.
#include "stats/rate_estimator.h"
