// Windowed, exponentially averaged bandwidth estimation.
//
// Matches the measurement method of the paper's Section 5.2: "bandwidth is
// measured by exponentially averaging over 50 ms windows".
#pragma once

#include <vector>

#include "net/packet.h"
#include "util/assert.h"

namespace hfq::stats {

class RateEstimator {
 public:
  struct Sample {
    net::Time when = 0.0;  // window end
    double rate_bps = 0.0;
  };

  // `window` is the averaging window in seconds; `alpha` the exponential
  // smoothing weight of the newest window.
  explicit RateEstimator(double window_seconds = 0.050, double alpha = 0.3)
      : window_(window_seconds), alpha_(alpha), window_end_(window_seconds) {
    HFQ_ASSERT(window_seconds > 0.0);
    HFQ_ASSERT(alpha > 0.0 && alpha <= 1.0);
  }

  // Accounts `bits` delivered at time `t`. Times must be non-decreasing.
  void on_delivery(net::Time t, double bits) {
    roll_to(t);
    bits_in_window_ += bits;
  }

  // Flushes windows up to time `t` (call before reading the series at the
  // end of a run).
  void flush(net::Time t) { roll_to(t); }

  [[nodiscard]] double current_rate_bps() const noexcept { return ema_; }
  [[nodiscard]] const std::vector<Sample>& series() const noexcept {
    return series_;
  }

 private:
  void roll_to(net::Time t) {
    while (t >= window_end_) {
      ema_ = alpha_ * (bits_in_window_ / window_) + (1.0 - alpha_) * ema_;
      series_.push_back(Sample{window_end_, ema_});
      bits_in_window_ = 0.0;
      window_end_ += window_;
    }
  }

  double window_;
  double alpha_;
  double window_end_;  // first window ends at `window_`
  double bits_in_window_ = 0.0;
  double ema_ = 0.0;
  std::vector<Sample> series_;
};

}  // namespace hfq::stats
