// ServiceCurve is header-only; this TU anchors the library target.
#include "stats/service_curve.h"
