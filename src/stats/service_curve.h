// Cumulative arrival and service curves for one flow.
//
// Reproduces the paper's Fig. 5 view: "the upper line is the number of
// packets arrived at the server at time t, the lower line is the number of
// packets served by time t" — and the vertical gap between them is the
// service lag the Worst-case Fair Index controls.
#pragma once

#include <vector>

#include "net/packet.h"
#include "util/assert.h"

namespace hfq::stats {

class ServiceCurve {
 public:
  struct Point {
    net::Time when = 0.0;
    double cumulative = 0.0;  // packets (or bits, caller's choice of unit)
  };

  void on_arrival(net::Time t, double amount = 1.0) {
    arrived_ += amount;
    arrivals_.push_back(Point{t, arrived_});
  }

  void on_service(net::Time t, double amount = 1.0) {
    served_ += amount;
    HFQ_ASSERT_MSG(served_ <= arrived_ + 1e-9, "service exceeds arrivals");
    services_.push_back(Point{t, served_});
    const double lag = backlog();
    if (lag > max_lag_) max_lag_ = lag;
  }

  [[nodiscard]] double arrived() const noexcept { return arrived_; }
  [[nodiscard]] double served() const noexcept { return served_; }
  [[nodiscard]] double backlog() const noexcept { return arrived_ - served_; }
  // Largest arrival-to-service vertical gap observed at service instants.
  [[nodiscard]] double max_lag() const noexcept { return max_lag_; }

  [[nodiscard]] const std::vector<Point>& arrivals() const noexcept {
    return arrivals_;
  }
  [[nodiscard]] const std::vector<Point>& services() const noexcept {
    return services_;
  }

  // Cumulative service as of time t (step function, right-continuous).
  [[nodiscard]] double served_by(net::Time t) const {
    double v = 0.0;
    for (const Point& p : services_) {
      if (p.when > t) break;
      v = p.cumulative;
    }
    return v;
  }

 private:
  double arrived_ = 0.0;
  double served_ = 0.0;
  double max_lag_ = 0.0;
  std::vector<Point> arrivals_;
  std::vector<Point> services_;
};

}  // namespace hfq::stats
