// WfiEstimator is header-only; this TU anchors the library target.
#include "stats/wfi_estimator.h"
