// Online measurement of the Bit Worst-case Fair Index (Definition 2).
//
//   B-WFI_i = max over backlogged intervals [t1,t2] of
//             (phi_i/phi_s) * W_s(t1,t2) − W_i(t1,t2)
//
// Tracked online: let X(t) = share * W_s(0,t) − W_i(0,t). Within one
// backlogged period of flow i the supremum of X(t2) − X(t1) is
// X(t) − min X seen so far in that period; the estimator keeps the running
// maximum across periods. Experiments feed it one update per server packet
// departure, which measures the index at packet granularity — exactly the
// granularity at which the paper's bounds are stated.
#pragma once

#include "util/assert.h"

namespace hfq::stats {

class WfiEstimator {
 public:
  // `share` is phi_i / phi_s: the flow's guaranteed fraction of the
  // observed server's service.
  explicit WfiEstimator(double share) : share_(share) {
    HFQ_ASSERT(share > 0.0 && share <= 1.0);
  }

  // Marks the start of a backlogged period of the observed flow.
  void backlog_start() {
    in_backlog_ = true;
    min_x_ = x_;
  }

  // Marks the end of a backlogged period.
  void backlog_end() { in_backlog_ = false; }

  // Accounts one server departure: `server_bits` left the server, of which
  // `flow_bits` (0 or the same value) belonged to the observed flow. Only
  // service inside backlogged periods widens the index.
  void on_server_departure(double server_bits, double flow_bits) {
    if (!in_backlog_) return;
    x_ += share_ * server_bits - flow_bits;
    if (x_ - min_x_ > bwfi_) bwfi_ = x_ - min_x_;
    if (x_ < min_x_) min_x_ = x_;
  }

  // Largest observed B-WFI in bits.
  [[nodiscard]] double bwfi_bits() const noexcept { return bwfi_; }

  // Time WFI given the flow's guaranteed rate (Definition 1 equivalence:
  // A = alpha / r_i).
  [[nodiscard]] double twfi_seconds(double flow_rate_bps) const {
    HFQ_ASSERT(flow_rate_bps > 0.0);
    return bwfi_ / flow_rate_bps;
  }

 private:
  double share_;
  bool in_backlog_ = false;
  double x_ = 0.0;      // share * W_s − W_i, cumulative
  double min_x_ = 0.0;  // minimum X within the current backlogged period
  double bwfi_ = 0.0;
};

}  // namespace hfq::stats
