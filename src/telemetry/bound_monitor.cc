#include "telemetry/bound_monitor.h"

#include <utility>

#include "qos/admission.h"
#include "util/assert.h"

namespace hfq::telemetry {

namespace {

core::Hierarchy scale_tree(const core::Hierarchy& tree,
                           std::size_t num_shards) {
  const double inv = 1.0 / static_cast<double>(num_shards);
  core::Hierarchy scaled(tree.link_rate() * inv, tree.node(0).name);
  for (std::uint32_t i = 1; i < tree.size(); ++i) {
    const core::Hierarchy::NodeSpec& n = tree.node(i);
    const auto parent = static_cast<std::uint32_t>(n.parent);
    if (n.leaf) {
      scaled.add_session(parent, n.name, n.rate_bps * inv, n.flow,
                         n.capacity_packets);
    } else {
      scaled.add_class(parent, n.name, n.rate_bps * inv);
    }
  }
  return scaled;
}

}  // namespace

BoundMonitor::BoundMonitor(const core::Hierarchy& tree,
                           std::size_t num_shards,
                           const BoundMonitorConfig& cfg)
    : cfg_(cfg), scaled_(scale_tree(tree, num_shards)),
      num_shards_(num_shards) {
  HFQ_ASSERT(num_shards > 0);
  HFQ_ASSERT(cfg.lmax_bits > 0.0);

  // Classes first so leaves can reference them. classes_[k] corresponds to
  // the k-th internal node (root excluded: the link aggregate is just the
  // shard's delivered counter, already exported).
  std::unordered_map<std::uint32_t, std::uint32_t> class_of_node;
  if (cfg_.per_class) {
    for (std::uint32_t i = 1; i < scaled_.size(); ++i) {
      const core::Hierarchy::NodeSpec& n = scaled_.node(i);
      if (n.leaf) continue;
      ClassRec c;
      c.name = n.name;
      c.rate_scaled = n.rate_bps;
      c.tail_s = scaled_tail(i);
      class_of_node.emplace(i, static_cast<std::uint32_t>(classes_.size()));
      classes_.push_back(std::move(c));
    }
  }

  for (std::uint32_t i = 1; i < scaled_.size(); ++i) {
    const core::Hierarchy::NodeSpec& n = scaled_.node(i);
    if (!n.leaf) continue;
    const auto tail = qos::delay_bound(scaled_, i, 0.0, cfg_.lmax_bits);
    HFQ_ASSERT(tail.has_value());
    std::vector<std::uint32_t> memberships;
    for (std::int32_t a = n.parent; a > 0;
         a = scaled_.node(static_cast<std::uint32_t>(a)).parent) {
      auto it = class_of_node.find(static_cast<std::uint32_t>(a));
      if (it != class_of_node.end()) memberships.push_back(it->second);
    }
    register_flow(n.flow, n.rate_bps, *tail, n.name, std::move(memberships));
  }
}

double BoundMonitor::scaled_tail(std::uint32_t node) const {
  // WFI latency term for the aggregate at `node`, treated as a session of
  // its parent server: Lmax over every server on the path to the root,
  // plus the link transmission time, plus — conservatively — Lmax at the
  // node's own rate to absorb its internal packetization.
  double tail = cfg_.lmax_bits / scaled_.node(node).rate_bps;
  for (std::int32_t a = scaled_.node(node).parent; a >= 0;
       a = scaled_.node(static_cast<std::uint32_t>(a)).parent) {
    tail += cfg_.lmax_bits / scaled_.node(static_cast<std::uint32_t>(a)).rate_bps;
  }
  tail += cfg_.lmax_bits / scaled_.link_rate();
  return tail;
}

void BoundMonitor::register_flow(net::FlowId flow, double rate_scaled,
                                 double tail_s, std::string name,
                                 std::vector<std::uint32_t> classes) {
  HFQ_ASSERT_MSG(flow_index_.count(flow) == 0,
                 "bound monitor: flow registered twice");
  FlowRec rec;
  rec.active = true;
  rec.flow = flow;
  rec.rate_scaled = rate_scaled;
  rec.tail_s = tail_s;
  rec.bound_s = cfg_.sigma_packets * cfg_.lmax_bits / rate_scaled + tail_s +
                cfg_.slack_s;
  rec.name = std::move(name);
  for (std::uint32_t c : classes) classes_[c].members.push_back(
      static_cast<std::uint32_t>(flows_.size()));
  rec.classes = std::move(classes);
  flow_index_.emplace(flow, static_cast<std::uint32_t>(flows_.size()));
  flows_.push_back(std::move(rec));
  ++active_flows_;
  for (auto& per_shard : spans_) per_shard.resize(flows_.size());
  if (!shards_.empty()) publish_bound(flows_.back());
}

void BoundMonitor::publish_bound(const FlowRec& rec) {
  const double b =
      cfg_.delay_checks && rec.active ? rec.bound_s : ShardTelemetry::kNoBound;
  for (ShardTelemetry* st : shards_) st->set_bound(rec.flow, b);
}

void BoundMonitor::reset_spans(std::uint32_t rec_idx) {
  for (auto& per_shard : spans_) {
    if (rec_idx < per_shard.size()) per_shard[rec_idx].active = false;
  }
  for (std::uint32_t c : flows_[rec_idx].classes) {
    for (auto& per_shard : class_spans_) per_shard[c].active = false;
  }
}

void BoundMonitor::attach(std::vector<ShardTelemetry*> shards) {
  shards_ = std::move(shards);
  HFQ_ASSERT(shards_.size() == num_shards_);
  spans_.assign(shards_.size(), std::vector<Span>(flows_.size()));
  class_spans_.assign(shards_.size(), std::vector<Span>(classes_.size()));
  drop_bits_seen_.assign(shards_.size(), 0);
  for (const FlowRec& rec : flows_) {
    if (rec.active) publish_bound(rec);
  }
}

void BoundMonitor::on_edits(const std::vector<serve::ResolvedEdit>& ops) {
  using Kind = serve::ResolvedEdit::Kind;
  for (const serve::ResolvedEdit& op : ops) {
    auto it = flow_index_.find(op.flow);
    switch (op.kind) {
      case Kind::kSetRate: {
        if (it == flow_index_.end()) break;
        FlowRec& rec = flows_[it->second];
        rec.rate_scaled = op.rate_bps;
        rec.bound_s = cfg_.sigma_packets * cfg_.lmax_bits / op.rate_bps +
                      rec.tail_s + cfg_.slack_s;
        publish_bound(rec);
        reset_spans(it->second);
        break;
      }
      case Kind::kAdd: {
        if (it != flow_index_.end()) break;
        // Live adds go to the flat live-edit schedulers, where the only
        // ancestor server is the link itself.
        const double tail = 2.0 * cfg_.lmax_bits / scaled_.link_rate();
        register_flow(op.flow, op.rate_bps, tail,
                      "flow" + std::to_string(op.flow), {});
        break;
      }
      case Kind::kRemove: {
        if (it == flow_index_.end()) break;
        FlowRec& rec = flows_[it->second];
        rec.active = false;
        --active_flows_;
        reset_spans(it->second);
        publish_bound(rec);  // clears to kNoBound
        flow_index_.erase(it);
        break;
      }
    }
  }
}

std::vector<Breach> BoundMonitor::evaluate(double now_s) {
  ++evaluations_;
  spans_active_ = 0;
  std::vector<Breach> out;
  const double lmax = cfg_.lmax_bits;

  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    const ShardTelemetry& st = *shards_[s];
    const std::uint64_t drops = st.dropped_bits_upper();
    const bool drop_epoch = drops != drop_bits_seen_[s];
    drop_bits_seen_[s] = drops;

    // Per-flow spans.
    for (std::uint32_t idx = 0; idx < flows_.size(); ++idx) {
      const FlowRec& rec = flows_[idx];
      if (!rec.active || rec.flow >= st.flow_slots()) continue;
      const std::uint64_t arrived = st.arrived_bits(rec.flow);
      const std::uint64_t served = st.served_bits(rec.flow);
      Span& sp = spans_[s][idx];
      if (drop_epoch) sp.active = false;
      // Provable queued bits now: arrivals minus service minus every bit
      // the shard might ever have dropped (phantom-backlog guard).
      const std::uint64_t avail =
          arrived > served + drops ? arrived - served - drops : 0;
      if (!sp.active) {
        if (static_cast<double>(avail) >= lmax) {
          sp = Span{true, now_s, served, avail};
        }
        continue;
      }
      const std::uint64_t served_since = served - sp.served0;
      if (served_since >= sp.backlog0) {
        // The τ-bits are gone; the queue may have emptied. Re-anchor.
        sp = static_cast<double>(avail) >= lmax
                 ? Span{true, now_s, served, avail}
                 : Span{};
        continue;
      }
      ++spans_active_;
      const double elapsed = now_s - sp.t0_s;
      const double lag =
          elapsed - static_cast<double>(served_since) / rec.rate_scaled;
      const double budget = rec.tail_s + cfg_.slack_s;
      if (lag > budget) {
        ++flow_lag_breaches_;
        Breach b;
        b.kind = Breach::Kind::kFlowLag;
        b.shard = s;
        b.flow = rec.flow;
        b.name = rec.name;
        b.measured_s = lag;
        b.budget_s = budget;
        b.at_s = now_s;
        out.push_back(std::move(b));
        sp = Span{true, now_s, served, avail};  // one breach per epoch
      }
    }

    // Per-class aggregate spans.
    for (std::uint32_t c = 0; c < classes_.size(); ++c) {
      const ClassRec& cls = classes_[c];
      std::uint64_t arrived = 0, served = 0;
      for (std::uint32_t idx : cls.members) {
        const FlowRec& rec = flows_[idx];
        if (!rec.active || rec.flow >= st.flow_slots()) continue;
        arrived += st.arrived_bits(rec.flow);
        served += st.served_bits(rec.flow);
      }
      Span& sp = class_spans_[s][c];
      if (drop_epoch) sp.active = false;
      const std::uint64_t avail =
          arrived > served + drops ? arrived - served - drops : 0;
      if (!sp.active) {
        if (static_cast<double>(avail) >= lmax) {
          sp = Span{true, now_s, served, avail};
        }
        continue;
      }
      const std::uint64_t served_since = served - sp.served0;
      if (served_since >= sp.backlog0) {
        sp = static_cast<double>(avail) >= lmax
                 ? Span{true, now_s, served, avail}
                 : Span{};
        continue;
      }
      ++spans_active_;
      const double elapsed = now_s - sp.t0_s;
      const double lag =
          elapsed - static_cast<double>(served_since) / cls.rate_scaled;
      const double budget = cls.tail_s + cfg_.slack_s;
      if (lag > budget) {
        ++class_lag_breaches_;
        Breach b;
        b.kind = Breach::Kind::kClassLag;
        b.shard = s;
        b.name = cls.name;
        b.measured_s = lag;
        b.budget_s = budget;
        b.at_s = now_s;
        out.push_back(std::move(b));
        sp = Span{true, now_s, served, avail};
      }
    }
  }
  return out;
}

double BoundMonitor::delay_bound_s(net::FlowId flow) const {
  auto it = flow_index_.find(flow);
  return it != flow_index_.end() ? flows_[it->second].bound_s
                                 : ShardTelemetry::kNoBound;
}

std::string BoundMonitor::session_name(net::FlowId flow) const {
  auto it = flow_index_.find(flow);
  return it != flow_index_.end() ? flows_[it->second].name : std::string();
}

double BoundMonitor::lag_budget_s(net::FlowId flow) const {
  auto it = flow_index_.find(flow);
  return it != flow_index_.end()
             ? flows_[it->second].tail_s + cfg_.slack_s
             : ShardTelemetry::kNoBound;
}

}  // namespace hfq::telemetry
