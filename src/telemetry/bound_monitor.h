// Online fairness-bound monitor: turns the paper's analytic machinery into
// a runtime guarantee checker (DESIGN.md "Telemetry", bound-monitor math).
//
// The monitor runs on the telemetry plane's control thread, never on a
// shard hot path. It watches two guarantees per monitored session (and,
// aggregated, per link-sharing class), both derived from the H-WF²Q+
// results the repo already proves offline:
//
//  1. Packet delay (Corollary 2). Each shard runs the full tree uniformly
//     scaled by 1/N, so the per-shard bound for a (sigma, rho=r_i)
//     constrained session is the Corollary 2 walk over the SCALED tree:
//       D_i = sigma/r_i' + Σ_{ancestors n} Lmax/r_n' + Lmax/r_link'
//     (primes = scaled rates; numerically N × the full-tree bound). The
//     monitor precomputes D_i + slack per flow and publishes it into each
//     ShardTelemetry's bound array; the SHARD compares every delivery
//     against it, so a violated bound is caught on the very packet that
//     breaks it — within the epoch it happens, as ISSUE 10 requires.
//     Delay checks only run in paced mode: unpaced shards serve in virtual
//     time, where arrival→departure spans are not wall delays.
//
//  2. Normalized service lag (WFI). WF²Q+ is worst-case fair: from ANY
//     instant τ inside a session-backlogged period, the session receives
//       S_i(τ, t) ≥ r_i'·(t − τ) − r_i'·C_i   with   r_i'·C_i/r_i' = tail_i
//     where tail_i = Σ Lmax/r_n' + Lmax/r_link' is the WFI-derived latency
//     term (the sigma-free part of D_i). Because the guarantee anchors at
//     any τ — the Worst-case Fair Index property, not the weaker
//     start-of-backlog service curve — the monitor can anchor a span at an
//     epoch tick and assert, epochs later:
//       lag = (t − τ) − S_i(τ,t)/r_i'  must stay ≤ tail_i + slack.
//     A span is only judged while the session is PROVABLY continuously
//     backlogged: if bits served since τ are fewer than the bits queued at
//     τ, the queue cannot have emptied (per-flow FIFO). Queued-at-τ is
//     arrived − served minus the shard's cumulative scheduler-drop bits
//     upper bound, so phantom backlog from dropped arrivals can never
//     masquerade as starvation; any drop activity during a span resets it.
//
// Live edits: the service forwards each applied ResolvedEdit batch; the
// monitor re-derives bounds, updates the shard bound arrays, and resets
// affected spans. The deliberate-violation path for tests is simply an
// edit applied to the shards but NOT forwarded here (see
// serve::Service::apply_edit_text_unmonitored).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/hierarchy.h"
#include "net/packet.h"
#include "serve/edits.h"
#include "telemetry/shard_telemetry.h"

namespace hfq::telemetry {

struct BoundMonitorConfig {
  double lmax_bits = 12000.0;    // max packet, bits (1500 B default)
  double sigma_packets = 16.0;   // (sigma, rho) burst allowance, Lmax units
  double slack_s = 0.05;         // jitter allowance on both checks
  bool per_class = true;         // also monitor internal-node aggregates
  bool delay_checks = true;      // publish per-flow delay bounds to shards
};

// One detected guarantee violation.
struct Breach {
  enum class Kind { kDelay, kFlowLag, kClassLag };
  Kind kind = Kind::kFlowLag;
  std::uint32_t shard = 0;
  net::FlowId flow = 0;          // kDelay / kFlowLag
  std::string name;              // session or class name when known
  double measured_s = 0.0;       // observed delay, or observed lag
  double budget_s = 0.0;         // the bound it broke
  double at_s = 0.0;             // service-clock time of detection
  std::uint64_t seq = 0;         // shard breach ordinal (kDelay only)
};

class BoundMonitor {
 public:
  // `tree` is the UNSCALED service hierarchy; the monitor rebuilds the same
  // 1/num_shards scaling the service applies to each shard and reuses
  // qos::delay_bound on the scaled tree.
  BoundMonitor(const core::Hierarchy& tree, std::size_t num_shards,
               const BoundMonitorConfig& cfg);

  // Registers the per-shard telemetry blocks and publishes every known
  // flow's delay bound into their bound arrays. Call before Service::start.
  void attach(std::vector<ShardTelemetry*> shards);

  // Applies a live-edit batch (rates already scaled per shard, exactly as
  // dispatched to the shards). Recomputes bounds, updates the shard bound
  // arrays, resets spans of affected flows.
  void on_edits(const std::vector<serve::ResolvedEdit>& ops);

  // One monitoring epoch at service-clock time `now_s`: scans the per-flow
  // cells of every shard, advances backlog spans, returns lag breaches
  // found this epoch. Delay breaches are detected shard-side; the plane
  // collects those from the breach rings directly.
  [[nodiscard]] std::vector<Breach> evaluate(double now_s);

  // The delay bound (including slack) the monitor published for a flow, in
  // seconds; infinity when unmonitored.
  [[nodiscard]] double delay_bound_s(net::FlowId flow) const;
  // The WFI lag budget (tail + slack) for a flow, seconds.
  [[nodiscard]] double lag_budget_s(net::FlowId flow) const;
  // Directory name of a monitored flow ("" when unknown).
  [[nodiscard]] std::string session_name(net::FlowId flow) const;

  [[nodiscard]] std::size_t monitored_flows() const noexcept {
    return active_flows_;
  }
  [[nodiscard]] std::size_t monitored_classes() const noexcept {
    return classes_.size();
  }
  [[nodiscard]] std::uint64_t flow_lag_breaches() const noexcept {
    return flow_lag_breaches_;
  }
  [[nodiscard]] std::uint64_t class_lag_breaches() const noexcept {
    return class_lag_breaches_;
  }
  [[nodiscard]] std::uint64_t spans_active() const noexcept {
    return spans_active_;
  }
  [[nodiscard]] std::uint64_t evaluations() const noexcept {
    return evaluations_;
  }
  [[nodiscard]] const BoundMonitorConfig& config() const noexcept {
    return cfg_;
  }

 private:
  // A provably-continuously-backlogged observation window on one shard.
  struct Span {
    bool active = false;
    double t0_s = 0.0;            // anchor instant τ
    std::uint64_t served0 = 0;    // S(0, τ), bits
    std::uint64_t backlog0 = 0;   // provable queued bits at τ
  };

  struct FlowRec {
    bool active = false;
    net::FlowId flow = 0;
    double rate_scaled = 0.0;     // r_i', bits/s on one shard
    double tail_s = 0.0;          // WFI latency term on the scaled tree
    double bound_s = 0.0;         // Corollary 2 delay bound + slack
    std::string name;
    std::vector<std::uint32_t> classes;  // indices into classes_
  };

  struct ClassRec {
    std::string name;
    double rate_scaled = 0.0;
    double tail_s = 0.0;
    std::vector<std::uint32_t> members;  // indices into flows_
  };

  void register_flow(net::FlowId flow, double rate_scaled, double tail_s,
                     std::string name, std::vector<std::uint32_t> classes);
  void publish_bound(const FlowRec& rec);
  void reset_spans(std::uint32_t rec_idx);
  [[nodiscard]] double scaled_tail(std::uint32_t node) const;

  BoundMonitorConfig cfg_;
  core::Hierarchy scaled_;       // the per-shard tree (1/N rates)
  std::size_t num_shards_ = 0;

  std::vector<FlowRec> flows_;
  std::unordered_map<net::FlowId, std::uint32_t> flow_index_;
  std::vector<ClassRec> classes_;
  std::size_t active_flows_ = 0;

  std::vector<ShardTelemetry*> shards_;
  // spans[shard][rec_idx] / class_spans[shard][class_idx].
  std::vector<std::vector<Span>> spans_;
  std::vector<std::vector<Span>> class_spans_;
  // Per-shard cumulative dropped-bits upper bound at last look; any advance
  // poisons that shard's spans for the epoch.
  std::vector<std::uint64_t> drop_bits_seen_;

  std::uint64_t flow_lag_breaches_ = 0;
  std::uint64_t class_lag_breaches_ = 0;
  std::uint64_t spans_active_ = 0;
  std::uint64_t evaluations_ = 0;
};

}  // namespace hfq::telemetry
