#include "telemetry/log_histogram.h"

#include <algorithm>

namespace hfq::telemetry {

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  HFQ_ASSERT_MSG(unit == other.unit && sub_bits == other.sub_bits,
                 "histogram merge requires an identical bucket geometry");
  if (other.buckets.size() > buckets.size()) {
    buckets.resize(other.buckets.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum_units += other.sum_units;
}

std::uint64_t HistogramSnapshot::bucket_lo(std::uint32_t sub_bits,
                                           std::size_t i) {
  const std::uint64_t sub = 1ull << sub_bits;
  if (i < sub) return i;
  const std::uint64_t block = i >> sub_bits;      // ≥ 1
  const std::uint64_t within = i & (sub - 1);
  const std::uint64_t shift = block - 1;
  return (sub + within) << shift;
}

std::uint64_t HistogramSnapshot::bucket_hi(std::uint32_t sub_bits,
                                           std::size_t i) {
  const std::uint64_t sub = 1ull << sub_bits;
  if (i < sub) return i + 1;
  const std::uint64_t shift = (i >> sub_bits) - 1;
  return bucket_lo(sub_bits, i) + (1ull << shift);
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  double seen = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double next = seen + static_cast<double>(buckets[i]);
    if (next >= target) {
      const double lo = static_cast<double>(bucket_lo(sub_bits, i));
      const double hi = static_cast<double>(bucket_hi(sub_bits, i));
      const double frac =
          buckets[i] > 0
              ? (target - seen) / static_cast<double>(buckets[i])
              : 1.0;
      return unit * (lo + (hi - lo) * std::clamp(frac, 0.0, 1.0));
    }
    seen = next;
  }
  return max_value();
}

double HistogramSnapshot::max_value() const {
  for (std::size_t i = buckets.size(); i-- > 0;) {
    if (buckets[i] > 0) {
      return unit * static_cast<double>(bucket_hi(sub_bits, i));
    }
  }
  return 0.0;
}

HistogramSnapshot LogHistogram::snapshot() const {
  HistogramSnapshot s;
  s.unit = unit_;
  s.sub_bits = kSubBits;
  s.buckets.resize(kBuckets);
  std::size_t last = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t v = buckets_[i].load(std::memory_order_relaxed);
    s.buckets[i] = v;
    if (v > 0) last = i + 1;
    s.count += v;
  }
  s.buckets.resize(last);
  s.sum_units = sum_units_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace hfq::telemetry
