// Log-bucketed (HDR-style) histogram for the always-on telemetry plane.
//
// The serve layer needs latency/backlog distributions that are (a) cheap
// enough to update on the shard hot path — no locks, no allocation, no
// floating-point log() — and (b) mergeable across shards and across time
// without losing information. Fixed-width bins (stats/histogram.h) cannot
// cover nine decades of latency; P² sketches (stats/quantile.h) are not
// mergeable exactly. This histogram covers [unit, ~2^62*unit) with
// `1 << kSubBits` sub-buckets per octave (kSubBits = 5 → 32 buckets per
// power of two, ≤ 3.2% relative bucket width), the HdrHistogram layout:
//
//   value v  →  n = floor(v / unit)            (saturating)
//   n < 32   →  bucket n                       (exact linear region)
//   n ≥ 32   →  msb = floor(log2 n); shift = msb - 5
//               bucket = ((msb - 4) << 5) + ((n >> shift) - 32)
//
// The bucket index is a handful of integer ops around a count-leading-zeros
// — no branches on the value magnitude, no FP transcendentals.
//
// Concurrency model: exactly one writer (the owning shard thread) and any
// number of readers (the telemetry plane). Buckets are relaxed atomics the
// writer bumps with plain load+store (single-writer, so no RMW needed — a
// bump compiles to two MOVs, not a LOCK XADD). Every bucket is individually
// monotonic, so a reader's snapshot is bounded between the histogram's past
// and present state; `count` is derived from the snapshot's own buckets, so
// a snapshot is always internally consistent. Snapshots are plain structs:
// merging them is exact integer addition — associative and commutative, the
// property test_telemetry.cc proves — so per-shard accumulation + plane
// merge equals one global histogram.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/assert.h"

namespace hfq::telemetry {

// Plain-data snapshot of a LogHistogram (or a merge of several).
struct HistogramSnapshot {
  double unit = 1.0;              // bucket geometry base (seconds, packets…)
  std::uint32_t sub_bits = 0;     // buckets per octave = 1 << sub_bits
  std::vector<std::uint64_t> buckets;  // trimmed after the last non-zero
  std::uint64_t count = 0;        // sum of buckets (derived, consistent)
  double sum_units = 0.0;         // approximate Σ value/unit (writer-racy)

  // Exact integer merge; layouts (unit, sub_bits) must match.
  void merge(const HistogramSnapshot& other);

  // Value (in `unit`s) at the lower/upper edge of bucket i.
  [[nodiscard]] static std::uint64_t bucket_lo(std::uint32_t sub_bits,
                                               std::size_t i);
  [[nodiscard]] static std::uint64_t bucket_hi(std::uint32_t sub_bits,
                                               std::size_t i);

  // Quantile q in [0,1], returned in value units (unit * bucket upper edge,
  // linear interpolation inside the bucket). 0 when empty.
  [[nodiscard]] double quantile(double q) const;
  // Largest recorded value's bucket upper edge, in value units.
  [[nodiscard]] double max_value() const;
  [[nodiscard]] double mean() const {
    return count > 0 ? sum_units * unit / static_cast<double>(count) : 0.0;
  }
};

class LogHistogram {
 public:
  static constexpr std::uint32_t kSubBits = 5;
  static constexpr std::uint64_t kSub = 1ull << kSubBits;
  // Covers msb 5..56 → indices up to (56-4)<<5 + 31; 2048 slots is enough
  // for any double that survives the saturating unit conversion.
  static constexpr std::size_t kBuckets = 1u << 11;

  // `unit` is the resolution floor: values below one unit land in bucket 0.
  explicit LogHistogram(double unit) : unit_(unit) {
    HFQ_ASSERT_MSG(unit > 0.0, "histogram unit must be positive");
  }

  // Single-writer hot-path update: integer bucket index + two relaxed
  // plain load+store bumps. No locks, no allocation, no formatting.
  void observe(double value) noexcept {
    const std::uint64_t n = to_units(value);
    bump(buckets_[index_of(n)]);
    // Saturating sum in units; relaxed single-writer like the buckets.
    sum_units_.store(sum_units_.load(std::memory_order_relaxed) +
                         static_cast<double>(n),
                     std::memory_order_relaxed);
  }

  [[nodiscard]] double unit() const noexcept { return unit_; }

  // Reader-side consistent-enough snapshot (see header comment).
  [[nodiscard]] HistogramSnapshot snapshot() const;

  // Bucket index for a value expressed in units (exposed for tests).
  [[nodiscard]] static std::size_t index_of(std::uint64_t n) noexcept {
    if (n < kSub) return static_cast<std::size_t>(n);
    const int msb = 63 - __builtin_clzll(n);
    const std::size_t idx =
        (static_cast<std::size_t>(msb - static_cast<int>(kSubBits) + 1)
         << kSubBits) +
        static_cast<std::size_t>(
            (n >> (msb - static_cast<int>(kSubBits))) - kSub);
    return idx < kBuckets ? idx : kBuckets - 1;
  }

  [[nodiscard]] std::uint64_t to_units(double value) const noexcept {
    if (!(value > 0.0)) return 0;
    const double scaled = value / unit_;
    constexpr double kMax = 9.0e18;  // < 2^63, keeps the cast defined
    return scaled >= kMax ? static_cast<std::uint64_t>(kMax)
                          : static_cast<std::uint64_t>(scaled);
  }

 private:
  static void bump(std::atomic<std::uint64_t>& c) noexcept {
    c.store(c.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
  }

  double unit_;
  std::atomic<double> sum_units_{0.0};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

}  // namespace hfq::telemetry
