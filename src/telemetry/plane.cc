#include "telemetry/plane.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <utility>

#include "telemetry/prometheus.h"
#include "util/assert.h"

namespace hfq::telemetry {

namespace {

const char* kind_name(Breach::Kind k) {
  switch (k) {
    case Breach::Kind::kDelay: return "delay";
    case Breach::Kind::kFlowLag: return "flow_lag";
    case Breach::Kind::kClassLag: return "class_lag";
  }
  return "unknown";
}

void summary(TextWriter& w, const std::string& name,
             const HistogramSnapshot& h) {
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%g", q);
    w.sample(name, {{"quantile", buf}}, h.quantile(q));
  }
  w.sample(name + "_sum",
           {}, h.sum_units * h.unit);
  w.sample(name + "_count", {}, static_cast<double>(h.count));
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

TelemetryPlane::TelemetryPlane(const PlaneConfig& cfg,
                               std::vector<ShardTelemetry*> shards,
                               BoundMonitor* monitor, StatsSource stats,
                               ClockFn clock, CaptureFn capture)
    : cfg_(cfg),
      shards_(std::move(shards)),
      monitor_(monitor),
      stats_(std::move(stats)),
      clock_(std::move(clock)),
      capture_(std::move(capture)) {
  HFQ_ASSERT(cfg_.period_s > 0.0);
  ring_seen_.assign(shards_.size(), 0);
  capture_armed_.assign(shards_.size(), false);
}

TelemetryPlane::~TelemetryPlane() { stop(); }

void TelemetryPlane::start() {
  if (running_.exchange(true)) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { plane_loop(); });
}

void TelemetryPlane::stop() {
  if (!running_.exchange(false)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  tick();  // final epoch: publish the end-of-run state
}

void TelemetryPlane::plane_loop() {
  using namespace std::chrono;
  const auto period = duration<double>(cfg_.period_s);
  auto next = steady_clock::now() + duration_cast<nanoseconds>(period);
  while (!stop_.load(std::memory_order_acquire)) {
    // Poll-sleep in short slices so stop() never waits a full epoch.
    if (steady_clock::now() < next) {
      std::this_thread::sleep_for(milliseconds(5));
      continue;
    }
    next += duration_cast<nanoseconds>(period);
    tick();
  }
}

void TelemetryPlane::tick() {
  std::lock_guard<std::mutex> lk(tick_mu_);
  const double now = clock_();

  std::vector<Breach> fresh;
  if (monitor_ != nullptr) fresh = monitor_->evaluate(now);
  drain_delay_breaches(fresh);
  if (!fresh.empty()) record_breaches(std::move(fresh));

  seq_.store(seq_.load(std::memory_order_relaxed) + 1,
             std::memory_order_release);
  if (!cfg_.prom_path.empty()) write_exposition(render());
}

void TelemetryPlane::drain_delay_breaches(std::vector<Breach>& out) {
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    const auto copies = shards_[s]->breaches_since(ring_seen_[s]);
    for (const auto& c : copies) {
      ring_seen_[s] = std::max(ring_seen_[s], c.seq);
      Breach b;
      b.kind = Breach::Kind::kDelay;
      b.shard = s;
      b.flow = c.flow;
      if (monitor_ != nullptr) b.name = monitor_->session_name(c.flow);
      b.measured_s = c.delay_s;
      b.budget_s = c.bound_s;
      b.at_s = c.at_s;
      b.seq = c.seq;
      out.push_back(std::move(b));
    }
    // The ring holds the newest kBreachRing; if more landed than we saw,
    // account for the skipped ones so `ring_seen_` tracks the counter.
    ring_seen_[s] = std::max(ring_seen_[s], shards_[s]->delay_breaches());
  }
}

void TelemetryPlane::record_breaches(std::vector<Breach> fresh) {
  for (Breach& b : fresh) {
    const std::uint64_t ordinal =
        breaches_total_.load(std::memory_order_relaxed) + 1;
    breaches_total_.store(ordinal, std::memory_order_release);
    if (!cfg_.breach_dir.empty() && ordinal <= cfg_.breach_file_cap) {
      write_breach_report(b, ordinal);
    }
    if (capture_ && b.shard < capture_armed_.size() &&
        !capture_armed_[b.shard]) {
      capture_armed_[b.shard] = true;
      capture_(b.shard);
    }
    std::lock_guard<std::mutex> lk(log_mu_);
    if (breach_log_.size() < cfg_.breach_log_cap) {
      breach_log_.push_back(std::move(b));
    }
  }
}

std::vector<Breach> TelemetryPlane::breach_log() const {
  std::lock_guard<std::mutex> lk(log_mu_);
  return breach_log_;
}

std::string TelemetryPlane::render() {
  TextWriter w;
  const double now = clock_();
  const std::uint64_t seq = seq_.load(std::memory_order_relaxed);

  w.family("hfq_snapshot_seq", "counter",
           "Exposition snapshot sequence number (resets only with the "
           "service; a decrease means a restarted stream).");
  w.sample("hfq_snapshot_seq", {}, static_cast<double>(seq + 1));
  w.family("hfq_service_clock_seconds", "gauge",
           "Service clock at snapshot time.");
  w.sample("hfq_service_clock_seconds", {}, now);

  // Raw service counters, one sample per shard.
  const std::vector<ShardStatsView> stats =
      stats_ ? stats_() : std::vector<ShardStatsView>();
  struct Fam {
    const char* name;
    const char* type;
    const char* help;
    std::uint64_t ShardStatsView::*field;
  };
  static const Fam kFams[] = {
      {"hfq_shard_ingested_total", "counter",
       "Packets popped from the ingress ring.", &ShardStatsView::ingested},
      {"hfq_shard_accepted_total", "counter",
       "Packets accepted by the scheduler.", &ShardStatsView::accepted},
      {"hfq_shard_delivered_total", "counter",
       "Packets departed the virtual link.", &ShardStatsView::delivered},
      {"hfq_shard_backlog_packets", "gauge", "Scheduler queue depth.",
       &ShardStatsView::backlog},
      {"hfq_shard_edit_drops_total", "counter",
       "Packets dropped by live session removal.",
       &ShardStatsView::edit_drops},
      {"hfq_shard_ring_drops_total", "counter",
       "Packets rejected at the ingress ring.", &ShardStatsView::ring_drops},
      {"hfq_shard_epoch_total", "counter", "Edit batches applied.",
       &ShardStatsView::epoch},
      {"hfq_shard_audit_violations_total", "counter",
       "Scheduler audit violations.", &ShardStatsView::audit_violations},
      {"hfq_shard_splice_failures_total", "counter",
       "Live-edit splice failures.", &ShardStatsView::splice_failures},
      {"hfq_shard_busy_nanoseconds_total", "counter",
       "Wall nanoseconds in working loop iterations (bench mode).",
       &ShardStatsView::busy_ns},
  };
  for (const Fam& f : kFams) {
    w.family(f.name, f.type, f.help);
    for (std::uint32_t s = 0; s < stats.size(); ++s) {
      w.sample(f.name, {{"shard", std::to_string(s)}},
               static_cast<double>(stats[s].*(f.field)));
    }
  }
  w.family("hfq_shard_faulted", "gauge", "1 when the shard thread parked.");
  for (std::uint32_t s = 0; s < stats.size(); ++s) {
    w.sample("hfq_shard_faulted", {{"shard", std::to_string(s)}},
             stats[s].faulted ? 1.0 : 0.0);
  }

  // Telemetry-block counters.
  w.family("hfq_delay_breaches_total", "counter",
           "Deliveries later than the Corollary 2 per-shard bound.");
  w.family("hfq_sched_dropped_packets_total", "counter",
           "Scheduler-rejected packets seen by telemetry.");
  w.family("hfq_unmonitored_packets_total", "counter",
           "Arrivals on flows outside the telemetry flow-slot range.");
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    const LabelSet lbl = {{"shard", std::to_string(s)}};
    w.sample("hfq_delay_breaches_total", lbl,
             static_cast<double>(shards_[s]->delay_breaches()));
    w.sample("hfq_sched_dropped_packets_total", lbl,
             static_cast<double>(shards_[s]->dropped_pkts()));
    w.sample("hfq_unmonitored_packets_total", lbl,
             static_cast<double>(shards_[s]->unmonitored_pkts()));
  }

  // Merged latency / backlog distributions (exact integer merge).
  if (!shards_.empty()) {
    HistogramSnapshot lat = shards_[0]->latency_snapshot();
    HistogramSnapshot bkl = shards_[0]->backlog_snapshot();
    for (std::uint32_t s = 1; s < shards_.size(); ++s) {
      lat.merge(shards_[s]->latency_snapshot());
      bkl.merge(shards_[s]->backlog_snapshot());
    }
    w.family("hfq_latency_seconds", "summary",
             "Sampled arrival-to-departure service latency.");
    summary(w, "hfq_latency_seconds", lat);
    w.family("hfq_backlog_packets", "summary",
             "Per-loop scheduler queue depth samples.");
    summary(w, "hfq_backlog_packets", bkl);
  }

  // Bound-monitor state.
  if (monitor_ != nullptr) {
    w.family("hfq_monitored_flows", "gauge",
             "Sessions with a live Corollary 2 bound.");
    w.sample("hfq_monitored_flows", {},
             static_cast<double>(monitor_->monitored_flows()));
    w.family("hfq_monitored_classes", "gauge",
             "Internal-node aggregates under lag monitoring.");
    w.sample("hfq_monitored_classes", {},
             static_cast<double>(monitor_->monitored_classes()));
    w.family("hfq_lag_spans_active", "gauge",
             "Provably-backlogged observation spans last epoch.");
    w.sample("hfq_lag_spans_active", {},
             static_cast<double>(monitor_->spans_active()));
    w.family("hfq_flow_lag_breaches_total", "counter",
             "Per-flow WFI service-lag violations.");
    w.sample("hfq_flow_lag_breaches_total", {},
             static_cast<double>(monitor_->flow_lag_breaches()));
    w.family("hfq_class_lag_breaches_total", "counter",
             "Per-class WFI service-lag violations.");
    w.sample("hfq_class_lag_breaches_total", {},
             static_cast<double>(monitor_->class_lag_breaches()));
    w.family("hfq_monitor_evaluations_total", "counter",
             "Bound-monitor epochs evaluated.");
    w.sample("hfq_monitor_evaluations_total", {},
             static_cast<double>(monitor_->evaluations()));
  }

  w.family("hfq_breaches_total", "counter",
           "All guarantee breaches (delay + lag) recorded by the plane.");
  w.sample("hfq_breaches_total", {},
           static_cast<double>(breaches_total_.load(
               std::memory_order_relaxed)));
  return w.str();
}

void TelemetryPlane::write_exposition(const std::string& text) const {
  const std::string tmp = cfg_.prom_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;  // exposition is best-effort; the run goes on
    out << text;
  }
  std::rename(tmp.c_str(), cfg_.prom_path.c_str());
}

void TelemetryPlane::write_breach_report(const Breach& b,
                                         std::uint64_t ordinal) const {
  const std::string path =
      cfg_.breach_dir + "/breach_" + std::to_string(ordinal) + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) return;
  out << "{\n"
      << "  \"ordinal\": " << ordinal << ",\n"
      << "  \"kind\": \"" << kind_name(b.kind) << "\",\n"
      << "  \"shard\": " << b.shard << ",\n"
      << "  \"flow\": " << b.flow << ",\n"
      << "  \"name\": \"" << json_escape(b.name) << "\",\n"
      << "  \"measured_s\": " << b.measured_s << ",\n"
      << "  \"budget_s\": " << b.budget_s << ",\n"
      << "  \"at_s\": " << b.at_s << ",\n"
      << "  \"shard_breach_seq\": " << b.seq << "\n"
      << "}\n";
}

}  // namespace hfq::telemetry
