// The telemetry plane: one control-plane thread that periodically snapshots
// every shard's telemetry block, runs the online bound monitor, publishes a
// Prometheus-text exposition file, and arms anomaly capture when a
// guarantee breaks (DESIGN.md "Telemetry").
//
// The plane deliberately does NOT depend on src/serve/: it is handed the
// per-shard ShardTelemetry blocks, a stats-source callback that copies the
// service's raw counters into plain structs, a service clock, and a capture
// callback. serve::Service owns and wires all of these (service.h), so
// hfq_serve links hfq_telemetry and not the other way around.
//
// Everything expensive — string formatting, histogram merging, file IO —
// happens on this thread. Shard threads only ever touch their own
// ShardTelemetry (shard_telemetry.h); the plane reads those blocks with
// relaxed loads under the single-writer monotonic-counter protocol.
//
// Exposition protocol: each tick renders the full metric set (stamped with
// a monotonically increasing `hfq_snapshot_seq`) into <prom_path>.tmp and
// std::rename()s it over <prom_path>, so a scraper never observes a torn
// file. Breach handling: new delay breaches are drained from the shard
// rings, lag breaches come from the bound monitor; each new breach is
// appended to the in-memory breach log, written as a JSON report under
// breach_dir/, and — once per shard per run — the capture callback is
// invoked so the service spills that shard's flight-recorder ring next to
// the reports.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/bound_monitor.h"
#include "telemetry/shard_telemetry.h"

namespace hfq::telemetry {

// Plain copy of one shard's service-level counters, filled by the stats
// source callback each tick.
struct ShardStatsView {
  std::uint64_t ingested = 0;
  std::uint64_t accepted = 0;
  std::uint64_t delivered = 0;
  std::uint64_t backlog = 0;
  std::uint64_t edit_drops = 0;
  std::uint64_t ring_drops = 0;
  std::uint64_t epoch = 0;
  std::uint64_t audit_violations = 0;
  std::uint64_t splice_failures = 0;
  std::uint64_t busy_ns = 0;
  bool faulted = false;
};

struct PlaneConfig {
  double period_s = 0.5;      // monitoring epoch
  std::string prom_path;      // exposition file ("" = don't write)
  std::string breach_dir;     // breach JSON reports ("" = don't write)
  std::size_t breach_log_cap = 1024;
  std::size_t breach_file_cap = 32;  // at most this many report files
};

class TelemetryPlane {
 public:
  using StatsSource = std::function<std::vector<ShardStatsView>()>;
  using ClockFn = std::function<double()>;          // service seconds
  using CaptureFn = std::function<void(std::uint32_t shard)>;

  // `monitor` may be null (counters-only level); the plane then skips lag
  // evaluation but still drains shard delay-breach rings.
  TelemetryPlane(const PlaneConfig& cfg,
                 std::vector<ShardTelemetry*> shards, BoundMonitor* monitor,
                 StatsSource stats, ClockFn clock, CaptureFn capture);
  ~TelemetryPlane();

  TelemetryPlane(const TelemetryPlane&) = delete;
  TelemetryPlane& operator=(const TelemetryPlane&) = delete;

  void start();
  // Runs one final synchronous tick (so short runs still publish) and
  // joins the plane thread.
  void stop();

  // One synchronous monitoring epoch; also the loop body. Thread-safe
  // against the plane thread via the tick mutex (tests call it directly).
  void tick();

  [[nodiscard]] std::uint64_t snapshot_seq() const noexcept {
    return seq_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t breaches_total() const noexcept {
    return breaches_total_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::vector<Breach> breach_log() const;
  // Renders the current metric set (what the next exposition write would
  // contain). Control-plane only.
  [[nodiscard]] std::string render();

  [[nodiscard]] const PlaneConfig& config() const noexcept { return cfg_; }

 private:
  void plane_loop();
  void drain_delay_breaches(std::vector<Breach>& out);
  void record_breaches(std::vector<Breach> fresh);
  void write_exposition(const std::string& text) const;
  void write_breach_report(const Breach& b, std::uint64_t ordinal) const;

  PlaneConfig cfg_;
  std::vector<ShardTelemetry*> shards_;
  BoundMonitor* monitor_ = nullptr;
  StatsSource stats_;
  ClockFn clock_;
  CaptureFn capture_;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> breaches_total_{0};

  std::mutex tick_mu_;                   // serializes tick() callers
  mutable std::mutex log_mu_;            // guards breach_log_
  std::vector<Breach> breach_log_;
  std::vector<std::uint64_t> ring_seen_;     // per-shard drained breach seq
  std::vector<bool> capture_armed_;          // per-shard: spill requested
};

}  // namespace hfq::telemetry
