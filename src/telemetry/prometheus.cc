#include "telemetry/prometheus.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

namespace hfq::telemetry {

namespace {

bool valid_metric_name(const std::string& s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_') {
    return false;
  }
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != ':') {
      return false;
    }
  }
  return true;
}

void append_escaped(std::string& out, const std::string& v) {
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '"': out += "\\\""; break;
      default: out += c;
    }
  }
}

void append_value(std::string& out, double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    out += buf;
  } else if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
  }
}

// Family a sample name belongs to: strips summary suffixes.
std::string family_of(const std::string& name) {
  for (const char* suffix : {"_sum", "_count"}) {
    const std::string s(suffix);
    if (name.size() > s.size() &&
        name.compare(name.size() - s.size(), s.size(), s) == 0) {
      return name.substr(0, name.size() - s.size());
    }
  }
  return name;
}

}  // namespace

void TextWriter::family(const std::string& name, const std::string& type,
                        const std::string& help) {
  out_ += "# HELP ";
  out_ += name;
  out_ += ' ';
  out_ += help;
  out_ += "\n# TYPE ";
  out_ += name;
  out_ += ' ';
  out_ += type;
  out_ += '\n';
}

void TextWriter::sample(const std::string& name, const LabelSet& labels,
                        double value) {
  out_ += name;
  if (!labels.empty()) {
    out_ += '{';
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) out_ += ',';
      first = false;
      out_ += k;
      out_ += "=\"";
      append_escaped(out_, v);
      out_ += '"';
    }
    out_ += '}';
  }
  out_ += ' ';
  append_value(out_, value);
  out_ += '\n';
}

const PromSample* PromParseResult::find(const std::string& name,
                                        const LabelSet& labels) const {
  for (const PromSample& s : samples) {
    if (s.name != name) continue;
    bool match = true;
    for (const auto& [k, v] : labels) {
      bool found = false;
      for (const auto& [sk, sv] : s.labels) {
        if (sk == k) {
          found = sv == v;
          break;
        }
      }
      if (!found) {
        match = false;
        break;
      }
    }
    if (match) return &s;
  }
  return nullptr;
}

double PromParseResult::sum(const std::string& name) const {
  double total = 0.0;
  for (const PromSample& s : samples) {
    if (s.name == name) total += s.value;
  }
  return total;
}

namespace {

struct LineParser {
  const std::string& line;
  std::size_t pos = 0;

  explicit LineParser(const std::string& l) : line(l) {}

  [[nodiscard]] bool done() const { return pos >= line.size(); }
  [[nodiscard]] char peek() const { return line[pos]; }
  void skip_spaces() {
    while (!done() && (peek() == ' ' || peek() == '\t')) ++pos;
  }
  std::string take_name() {
    const std::size_t start = pos;
    while (!done() &&
           (std::isalnum(static_cast<unsigned char>(peek())) ||
            peek() == '_' || peek() == ':')) {
      ++pos;
    }
    return line.substr(start, pos - start);
  }
};

bool parse_labels(LineParser& p, LabelSet& out, std::string& err) {
  ++p.pos;  // consume '{'
  while (true) {
    p.skip_spaces();
    if (p.done()) {
      err = "unterminated label set";
      return false;
    }
    if (p.peek() == '}') {
      ++p.pos;
      return true;
    }
    const std::string key = p.take_name();
    if (key.empty()) {
      err = "empty label name";
      return false;
    }
    if (p.done() || p.peek() != '=') {
      err = "expected '=' after label name";
      return false;
    }
    ++p.pos;
    if (p.done() || p.peek() != '"') {
      err = "expected '\"' to open label value";
      return false;
    }
    ++p.pos;
    std::string value;
    while (!p.done() && p.peek() != '"') {
      char c = p.peek();
      if (c == '\\') {
        ++p.pos;
        if (p.done()) {
          err = "dangling escape in label value";
          return false;
        }
        const char e = p.peek();
        c = e == 'n' ? '\n' : e;  // \\ and \" unescape to themselves
      }
      value += c;
      ++p.pos;
    }
    if (p.done()) {
      err = "unterminated label value";
      return false;
    }
    ++p.pos;  // closing quote
    out.emplace_back(key, value);
    p.skip_spaces();
    if (!p.done() && p.peek() == ',') ++p.pos;
  }
}

bool parse_value(const std::string& text, double& out) {
  if (text == "+Inf" || text == "Inf") {
    out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (text == "-Inf") {
    out = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (text == "NaN") {
    out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}

}  // namespace

PromParseResult parse_prometheus(const std::string& text) {
  PromParseResult out;
  std::vector<std::string> typed;  // family names with a # TYPE line

  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::string line = text.substr(
        start, nl == std::string::npos ? std::string::npos : nl - start);
    start = nl == std::string::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (line.empty()) continue;

    auto fail = [&](const std::string& why) {
      out.errors.push_back("line " + std::to_string(line_no) + ": " + why);
    };

    if (line[0] == '#') {
      // `# HELP <name> <text>` / `# TYPE <name> <type>` / plain comment.
      if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
        const bool is_type = line[2] == 'T';
        const std::size_t name_at = 7;
        const std::size_t sp = line.find(' ', name_at);
        if (sp == std::string::npos) {
          fail("HELP/TYPE line without a payload");
          continue;
        }
        const std::string name = line.substr(name_at, sp - name_at);
        if (!valid_metric_name(name)) {
          fail("invalid metric name '" + name + "'");
          continue;
        }
        const std::string rest = line.substr(sp + 1);
        if (is_type) {
          if (rest != "counter" && rest != "gauge" && rest != "summary" &&
              rest != "histogram" && rest != "untyped") {
            fail("unknown metric type '" + rest + "'");
            continue;
          }
          typed.push_back(name);
          bool seen = false;
          for (auto& f : out.families) {
            if (f.name == name) {
              f.type = rest;
              seen = true;
            }
          }
          if (!seen) out.families.push_back(PromFamily{name, rest, ""});
        } else {
          bool seen = false;
          for (auto& f : out.families) {
            if (f.name == name) {
              f.help = rest;
              seen = true;
            }
          }
          if (!seen) out.families.push_back(PromFamily{name, "", rest});
        }
      }
      continue;  // other comments are legal and ignored
    }

    LineParser p(line);
    PromSample s;
    s.name = p.take_name();
    if (s.name.empty() || !valid_metric_name(s.name)) {
      fail("expected a metric name");
      continue;
    }
    if (!p.done() && p.peek() == '{') {
      std::string err;
      if (!parse_labels(p, s.labels, err)) {
        fail(err);
        continue;
      }
    }
    p.skip_spaces();
    if (p.done()) {
      fail("sample without a value");
      continue;
    }
    const std::string value_text = line.substr(p.pos);
    if (!parse_value(value_text, s.value)) {
      fail("malformed value '" + value_text + "'");
      continue;
    }
    const std::string fam = family_of(s.name);
    bool has_type = false;
    for (const std::string& t : typed) {
      if (t == fam || t == s.name) {
        has_type = true;
        break;
      }
    }
    if (!has_type) {
      fail("sample '" + s.name + "' precedes its # TYPE declaration");
      continue;
    }
    out.samples.push_back(std::move(s));
  }
  return out;
}

}  // namespace hfq::telemetry
