// Prometheus text-format exposition: a tiny writer and a strict parser.
//
// The telemetry plane serializes the metric set with TextWriter and
// publishes it atomically (write to <path>.tmp, std::rename). The parser
// exists for the consumers inside this repo — `hfq_top`, the CI scrape
// check, and the round-trip test — and is deliberately strict: every line
// must be a well-formed `# HELP`, `# TYPE`, comment, or sample line, and
// every sample's family must have been typed first. Anything else is
// reported as a parse error (CI asserts zero).
//
// Only the subset of the format the plane emits is supported: counter,
// gauge, and summary families; label values with \\, \n and \" escapes;
// no exemplars, no timestamps.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hfq::telemetry {

using LabelSet = std::vector<std::pair<std::string, std::string>>;

class TextWriter {
 public:
  // Starts a family: emits `# HELP` and `# TYPE` lines. `type` is
  // "counter", "gauge" or "summary".
  void family(const std::string& name, const std::string& type,
              const std::string& help);

  // Emits one sample of the current (or any previously declared) family.
  // `name` may carry a summary suffix (_sum, _count).
  void sample(const std::string& name, const LabelSet& labels, double value);

  [[nodiscard]] const std::string& str() const noexcept { return out_; }

 private:
  std::string out_;
};

struct PromSample {
  std::string name;
  LabelSet labels;
  double value = 0.0;
};

struct PromFamily {
  std::string name;
  std::string type;
  std::string help;
};

struct PromParseResult {
  std::vector<PromFamily> families;
  std::vector<PromSample> samples;
  std::vector<std::string> errors;  // one entry per malformed line

  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
  // First sample matching name + labels (all given labels must match
  // exactly); nullptr when absent.
  [[nodiscard]] const PromSample* find(const std::string& name,
                                       const LabelSet& labels = {}) const;
  // Sum of every sample of the family (e.g. a per-shard counter's total).
  [[nodiscard]] double sum(const std::string& name) const;
};

// Parses a full exposition text. Never throws; malformed lines land in
// `errors` with their line number.
[[nodiscard]] PromParseResult parse_prometheus(const std::string& text);

}  // namespace hfq::telemetry
