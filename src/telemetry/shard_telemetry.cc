#include "telemetry/shard_telemetry.h"

#include <algorithm>

namespace hfq::telemetry {

std::vector<ShardTelemetry::BreachCopy> ShardTelemetry::breaches_since(
    std::uint64_t from_seq) const {
  const std::uint64_t n = breach_count_.load(std::memory_order_acquire);
  if (n <= from_seq) return {};
  const std::uint64_t first =
      std::max(from_seq + 1, n > kBreachRing ? n - kBreachRing + 1 : 1);
  std::vector<BreachCopy> out;
  out.reserve(static_cast<std::size_t>(n - first + 1));
  for (std::uint64_t seq = first; seq <= n; ++seq) {
    const BreachSlot& s = ring_[(seq - 1) % kBreachRing];
    BreachCopy c;
    c.seq = s.seq.load(std::memory_order_relaxed);
    c.flow = s.flow.load(std::memory_order_relaxed);
    c.delay_s = s.delay_s.load(std::memory_order_relaxed);
    c.bound_s = s.bound_s.load(std::memory_order_relaxed);
    c.at_s = s.at_s.load(std::memory_order_relaxed);
    // The writer may have lapped this slot between the counter read and
    // the slot read; keep whichever breach now occupies it (it is newer)
    // as long as it is within the window we are reporting.
    if (c.seq >= first && c.seq <= n) out.push_back(c);
  }
  std::sort(out.begin(), out.end(),
            [](const BreachCopy& a, const BreachCopy& b) {
              return a.seq < b.seq;
            });
  return out;
}

}  // namespace hfq::telemetry
