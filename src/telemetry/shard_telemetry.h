// Always-on per-shard telemetry block: the shard-side half of the
// telemetry plane (DESIGN.md "Telemetry").
//
// One ShardTelemetry is owned by the Service per shard and updated from
// exactly one writer — the shard thread — via the on_arrival / on_delivery
// / on_loop hooks below. The hooks are the *only* telemetry code on the
// per-packet path and obey the `metrics-in-hot-loop` lint rule: no string
// formatting, no allocation, no locking — integer bucket math and relaxed
// single-writer atomic bumps (plain load+store, never a LOCK RMW). The
// telemetry plane (plane.h) reads everything from its control-plane thread
// with relaxed loads; every exported quantity is individually monotonic, so
// snapshots are bounded between past and present state.
//
// Contents:
//   * latency / backlog log-bucketed histograms (log_histogram.h),
//   * per-flow service cells — cumulative arrived/served packets and bits,
//     indexed by flow id (flat array, sized at service build; flows beyond
//     the slot bound are counted, not tracked),
//   * a per-flow delay-bound array written by the control plane (bound
//     monitor) and compared on every delivery: the shard detects a breach
//     of the Corollary-2/WFI delay bound the moment the late packet leaves
//     the virtual link — within the epoch it happens — and records it into
//     a small breach ring for the plane to report,
//   * drop/unmonitored counters that keep the plane's per-flow backlog
//     arithmetic honest (see bound_monitor.h).
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "net/packet.h"
#include "telemetry/log_histogram.h"
#include "util/assert.h"

namespace hfq::telemetry {

// One delay-bound breach, recorded by the shard thread at delivery time.
// Slots are relaxed atomics published through a release store of the breach
// counter; a reader can see a torn slot only if more than kBreachRing
// breaches land between its counter read and its slot reads (forensics
// quality is unaffected — the counters are exact).
struct BreachSlot {
  std::atomic<std::uint64_t> seq{0};   // 1-based breach ordinal
  std::atomic<std::uint32_t> flow{0};
  std::atomic<double> delay_s{0.0};
  std::atomic<double> bound_s{0.0};
  std::atomic<double> at_s{0.0};       // service-clock departure time
};

// Per-flow cumulative service cell: 32 bytes, one cacheline holds two.
// Single writer (the shard thread); all counters monotonic.
struct FlowCell {
  std::atomic<std::uint64_t> arrived_pkts{0};
  std::atomic<std::uint64_t> arrived_bits{0};
  std::atomic<std::uint64_t> served_pkts{0};
  std::atomic<std::uint64_t> served_bits{0};
};

struct ShardTelemetryConfig {
  std::size_t flow_slots = 0;     // per-flow cells; 0 disables flow tracking
  bool delay_checks = true;       // compare delivery delay against bounds
  double latency_unit_s = 1e-7;   // 100 ns latency resolution floor
  double backlog_unit = 1.0;      // 1 packet backlog resolution
};

class ShardTelemetry {
 public:
  static constexpr std::size_t kBreachRing = 32;

  explicit ShardTelemetry(const ShardTelemetryConfig& cfg)
      : cfg_(cfg),
        latency_(cfg.latency_unit_s),
        backlog_(cfg.backlog_unit) {
    if (cfg_.flow_slots > 0) {
      flows_ = std::make_unique<FlowCell[]>(cfg_.flow_slots);
      bounds_ = std::make_unique<std::atomic<double>[]>(cfg_.flow_slots);
      for (std::size_t i = 0; i < cfg_.flow_slots; ++i) {
        bounds_[i].store(kNoBound, std::memory_order_relaxed);
      }
    }
  }

  ShardTelemetry(const ShardTelemetry&) = delete;
  ShardTelemetry& operator=(const ShardTelemetry&) = delete;

  // --- shard-thread hot-path hooks (metrics-in-hot-loop discipline) --------

  // One packet accepted by the scheduler at drain time.
  void on_arrival(net::FlowId flow, std::uint32_t size_bytes) noexcept {
    if (flow < cfg_.flow_slots) {
      FlowCell& c = flows_[flow];
      bump(c.arrived_pkts, 1);
      bump(c.arrived_bits, 8ull * size_bytes);
    } else {
      bump(unmonitored_pkts_, 1);
    }
  }

  // One packet departed the virtual link. `delay_s` is arrival→departure on
  // the service clock; `sample` strides the histogram update (the breach
  // compare runs on every packet — a missed breach is not a smaller one).
  void on_delivery(net::FlowId flow, std::uint32_t size_bytes, double delay_s,
                   double at_s, bool sample) noexcept {
    if (flow < cfg_.flow_slots) {
      FlowCell& c = flows_[flow];
      bump(c.served_pkts, 1);
      bump(c.served_bits, 8ull * size_bytes);
      if (cfg_.delay_checks) {
        const double bound = bounds_[flow].load(std::memory_order_relaxed);
        if (delay_s > bound) record_breach(flow, delay_s, bound, at_s);
      }
    }
    if (sample) latency_.observe(delay_s);
  }

  // Scheduler rejected `pkts` of a drained burst (finite session buffer or
  // unknown flow): the cells above over-count arrivals by at most
  // `bits_upper` — the bound monitor reads these to keep its backlog
  // criterion sound (phantom backlog never passes for starvation).
  void on_sched_drop(std::uint64_t pkts, std::uint64_t bits_upper) noexcept {
    bump(dropped_pkts_, pkts);
    bump(dropped_bits_upper_, bits_upper);
  }

  // Sampled once per working loop iteration with the scheduler's queue depth.
  void on_loop(std::uint64_t backlog_pkts) noexcept {
    backlog_.observe(static_cast<double>(backlog_pkts));
  }

  // --- control-plane side ---------------------------------------------------

  static constexpr double kNoBound = std::numeric_limits<double>::infinity();

  // Sets/clears the delay bound the shard compares deliveries against.
  // Called by the bound monitor at build time and at live-edit boundaries;
  // racing the shard thread is safe (atomic, and a one-epoch-stale bound
  // only delays or anticipates detection by that epoch).
  void set_bound(net::FlowId flow, double bound_s) noexcept {
    if (flow < cfg_.flow_slots) {
      bounds_[flow].store(bound_s, std::memory_order_relaxed);
    }
  }
  [[nodiscard]] double bound(net::FlowId flow) const noexcept {
    return flow < cfg_.flow_slots
               ? bounds_[flow].load(std::memory_order_relaxed)
               : kNoBound;
  }

  [[nodiscard]] std::size_t flow_slots() const noexcept {
    return cfg_.flow_slots;
  }
  [[nodiscard]] const ShardTelemetryConfig& config() const noexcept {
    return cfg_;
  }

  // Monotonic counters (relaxed reads; each written by the shard thread).
  [[nodiscard]] std::uint64_t delay_breaches() const noexcept {
    return breach_count_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t dropped_pkts() const noexcept {
    return dropped_pkts_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped_bits_upper() const noexcept {
    return dropped_bits_upper_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t unmonitored_pkts() const noexcept {
    return unmonitored_pkts_.load(std::memory_order_relaxed);
  }

  // Raw cell reads for the bound monitor's per-flow scan.
  [[nodiscard]] std::uint64_t arrived_pkts(net::FlowId f) const noexcept {
    return flows_[f].arrived_pkts.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t arrived_bits(net::FlowId f) const noexcept {
    return flows_[f].arrived_bits.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t served_pkts(net::FlowId f) const noexcept {
    return flows_[f].served_pkts.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t served_bits(net::FlowId f) const noexcept {
    return flows_[f].served_bits.load(std::memory_order_relaxed);
  }

  [[nodiscard]] HistogramSnapshot latency_snapshot() const {
    return latency_.snapshot();
  }
  [[nodiscard]] HistogramSnapshot backlog_snapshot() const {
    return backlog_.snapshot();
  }

  // Breach details currently held in the ring, oldest first, capped at
  // kBreachRing. `from_seq` skips breaches already reported (1-based).
  struct BreachCopy {
    std::uint64_t seq = 0;
    net::FlowId flow = 0;
    double delay_s = 0.0;
    double bound_s = 0.0;
    double at_s = 0.0;
  };
  [[nodiscard]] std::vector<BreachCopy> breaches_since(
      std::uint64_t from_seq) const;

 private:
  static void bump(std::atomic<std::uint64_t>& c, std::uint64_t by) noexcept {
    c.store(c.load(std::memory_order_relaxed) + by,
            std::memory_order_relaxed);
  }

  void record_breach(net::FlowId flow, double delay_s, double bound_s,
                     double at_s) noexcept {
    const std::uint64_t n =
        breach_count_.load(std::memory_order_relaxed);
    BreachSlot& s = ring_[n % kBreachRing];
    s.seq.store(n + 1, std::memory_order_relaxed);
    s.flow.store(flow, std::memory_order_relaxed);
    s.delay_s.store(delay_s, std::memory_order_relaxed);
    s.bound_s.store(bound_s, std::memory_order_relaxed);
    s.at_s.store(at_s, std::memory_order_relaxed);
    // Publish: readers that observe the new count see the slot writes.
    breach_count_.store(n + 1, std::memory_order_release);
  }

  ShardTelemetryConfig cfg_;
  LogHistogram latency_;
  LogHistogram backlog_;
  std::unique_ptr<FlowCell[]> flows_;
  std::unique_ptr<std::atomic<double>[]> bounds_;
  BreachSlot ring_[kBreachRing];
  std::atomic<std::uint64_t> breach_count_{0};
  std::atomic<std::uint64_t> dropped_pkts_{0};
  std::atomic<std::uint64_t> dropped_bits_upper_{0};
  std::atomic<std::uint64_t> unmonitored_pkts_{0};
};

}  // namespace hfq::telemetry
