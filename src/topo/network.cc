// Network is header-only; this TU anchors the library target.
#include "topo/network.h"
