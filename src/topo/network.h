// Multi-hop topology substrate: switches' output ports chained by routes.
//
// The paper analyses a single server; its delay bounds compose across hops
// (the end-to-end framework it cites as [10]). This module wires multiple
// scheduler+link ports into a network so sessions can be driven across
// several H-PFQ hops: each port owns a scheduler and a link; per-flow
// routes name the sequence of ports; packets are forwarded with a
// per-port propagation delay.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "net/packet.h"
#include "net/scheduler.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "util/assert.h"

namespace hfq::topo {

using PortId = std::uint32_t;

class Network {
 public:
  using DeliveryFn = std::function<void(const net::Packet&, net::Time)>;

  explicit Network(sim::Simulator& sim) : sim_(sim) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Adds an output port: `sched` is the port's scheduler (the Network takes
  // ownership), `rate_bps` the line rate, `prop_delay_s` the propagation
  // delay to the next hop (or to the receiver for the last hop).
  PortId add_port(double rate_bps, std::unique_ptr<net::Scheduler> sched,
                  double prop_delay_s = 0.0) {
    HFQ_ASSERT(rate_bps > 0.0);
    HFQ_ASSERT(prop_delay_s >= 0.0);
    const PortId id = static_cast<PortId>(ports_.size());
    auto port = std::make_unique<Port>();
    port->sched = std::move(sched);
    port->link = std::make_unique<sim::Link>(sim_, *port->sched, rate_bps);
    port->prop_delay = prop_delay_s;
    port->link->set_delivery([this, id](const net::Packet& p, net::Time t) {
      on_port_delivery(id, p, t);
    });
    ports_.push_back(std::move(port));
    return id;
  }

  // Declares the path a flow takes (in order). Must be set before inject();
  // a route may not visit the same port twice.
  void set_route(net::FlowId flow, std::vector<PortId> path) {
    HFQ_ASSERT_MSG(!path.empty(), "empty route");
    for (std::size_t i = 0; i < path.size(); ++i) {
      HFQ_ASSERT(path[i] < ports_.size());
      for (std::size_t j = i + 1; j < path.size(); ++j) {
        HFQ_ASSERT_MSG(path[i] != path[j], "route visits a port twice");
      }
    }
    routes_[flow] = std::move(path);
  }

  // Called when a packet leaves the last hop of its route (after that
  // port's propagation delay).
  void set_delivery(DeliveryFn fn) { deliver_ = std::move(fn); }

  // Optional per-port tap: observes every departure from the port (before
  // propagation).
  void set_port_tap(PortId port, DeliveryFn fn) {
    HFQ_ASSERT(port < ports_.size());
    ports_[port]->tap = std::move(fn);
  }

  // Injects a packet at the first hop of its flow's route. Returns false if
  // the first-hop scheduler dropped it.
  bool inject(net::Packet p) {
    const auto it = routes_.find(p.flow);
    HFQ_ASSERT_MSG(it != routes_.end(), "no route for flow");
    return ports_[it->second.front()]->link->submit(std::move(p));
  }

  [[nodiscard]] net::Scheduler& scheduler(PortId port) {
    HFQ_ASSERT(port < ports_.size());
    return *ports_[port]->sched;
  }
  [[nodiscard]] sim::Link& link(PortId port) {
    HFQ_ASSERT(port < ports_.size());
    return *ports_[port]->link;
  }
  [[nodiscard]] std::size_t port_count() const noexcept {
    return ports_.size();
  }

 private:
  struct Port {
    std::unique_ptr<net::Scheduler> sched;
    std::unique_ptr<sim::Link> link;
    double prop_delay = 0.0;
    DeliveryFn tap;
  };

  void on_port_delivery(PortId port, const net::Packet& p, net::Time t) {
    Port& pt = *ports_[port];
    if (pt.tap) pt.tap(p, t);
    const auto& path = routes_.at(p.flow);
    // Find this port's position on the flow's path; forward or deliver.
    std::size_t pos = 0;
    while (pos < path.size() && path[pos] != port) ++pos;
    HFQ_ASSERT_MSG(pos < path.size(), "packet delivered off its route");
    if (pos + 1 < path.size()) {
      const PortId next = path[pos + 1];
      sim_.after(pt.prop_delay, [this, next, pkt = p]() mutable {
        ports_[next]->link->submit(std::move(pkt));
      });
    } else if (deliver_) {
      sim_.after(pt.prop_delay,
                 [this, pkt = p] { deliver_(pkt, sim_.now()); });
    }
  }

  sim::Simulator& sim_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::map<net::FlowId, std::vector<PortId>> routes_;
  DeliveryFn deliver_;
};

}  // namespace hfq::topo
