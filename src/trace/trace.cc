#include "trace/trace.h"

#include <cmath>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace hfq::trace {

std::vector<Record> read(std::istream& in) {
  std::vector<Record> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    if (lineno == 1 && line.rfind("time", 0) == 0) continue;  // header
    std::istringstream ls(line);
    Record r;
    char c1 = 0, c2 = 0;
    if (!(ls >> r.time >> c1 >> r.flow >> c2 >> r.size_bytes) || c1 != ',' ||
        c2 != ',') {
      throw std::runtime_error("trace: malformed line " +
                               std::to_string(lineno) + ": " + line);
    }
    // NaN fails every relational test, so `time < 0.0` alone lets NaN (and
    // +inf) through — both would corrupt the link's busy-period accounting
    // downstream. Reject anything non-finite explicitly.
    if (!std::isfinite(r.time) || r.time < 0.0 || r.size_bytes == 0) {
      throw std::runtime_error("trace: invalid record at line " +
                               std::to_string(lineno));
    }
    if (!out.empty() && r.time < out.back().time) {
      throw std::runtime_error("trace: timestamps not monotone at line " +
                               std::to_string(lineno));
    }
    out.push_back(r);
  }
  return out;
}

std::vector<Record> read_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("trace: cannot open " + path);
  return read(f);
}

void write(std::ostream& out, const std::vector<Record>& records) {
  out << "time_s,flow,size_bytes\n";
  for (const Record& r : records) {
    out << r.time << ',' << r.flow << ',' << r.size_bytes << '\n';
  }
}

void write_file(const std::string& path, const std::vector<Record>& records) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("trace: cannot open " + path);
  write(f, records);
}

void replay(sim::Simulator& sim, traffic::Emit emit,
            const std::vector<Record>& records) {
  auto seq = std::make_shared<std::map<net::FlowId, std::uint64_t>>();
  for (const Record& r : records) {
    sim.at(r.time, [emit, r, seq] {
      net::Packet p;
      p.flow = r.flow;
      p.size_bytes = r.size_bytes;
      p.id = (static_cast<std::uint64_t>(r.flow) << 32) | (*seq)[r.flow]++;
      p.created = r.time;
      emit(p);
    });
  }
}

traffic::Emit Recorder::wrap(traffic::Emit next) {
  return [this, next = std::move(next)](net::Packet p) {
    records_.push_back(Record{sim_.now(), p.flow, p.size_bytes});
    return next(std::move(p));
  };
}

}  // namespace hfq::trace
