// Arrival-trace I/O: record, save, load and replay packet arrival traces.
//
// Format: CSV with one record per line, `time_s,flow,size_bytes`, sorted by
// time. Lets experiments be captured once and replayed against any
// scheduler (the harness equivalent of the paper driving the same arrival
// pattern through H-WFQ and H-WF²Q+).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/packet.h"
#include "sim/simulator.h"
#include "traffic/source.h"

namespace hfq::trace {

struct Record {
  net::Time time = 0.0;
  net::FlowId flow = 0;
  std::uint32_t size_bytes = 0;

  friend bool operator==(const Record&, const Record&) = default;
};

// Parses a trace from a stream. Throws std::runtime_error on malformed
// input (bad fields, non-monotone timestamps).
[[nodiscard]] std::vector<Record> read(std::istream& in);

// Reads a trace file from disk. Throws std::runtime_error if unreadable.
[[nodiscard]] std::vector<Record> read_file(const std::string& path);

// Writes a trace (header line + records).
void write(std::ostream& out, const std::vector<Record>& records);
void write_file(const std::string& path, const std::vector<Record>& records);

// Schedules every record as a packet emission on the simulator. Packet ids
// are (flow << 32 | per-flow sequence number), like the built-in sources.
void replay(sim::Simulator& sim, traffic::Emit emit,
            const std::vector<Record>& records);

// Captures arrivals into a trace (wrap an Emit target with this to record
// what a source mix produced).
class Recorder {
 public:
  explicit Recorder(sim::Simulator& sim) : sim_(sim) {}

  // Returns an Emit that records and forwards to `next`.
  [[nodiscard]] traffic::Emit wrap(traffic::Emit next);

  [[nodiscard]] const std::vector<Record>& records() const noexcept {
    return records_;
  }

 private:
  sim::Simulator& sim_;
  std::vector<Record> records_;
};

}  // namespace hfq::trace
