// CbrSource is header-only; this TU anchors the library target.
#include "traffic/cbr.h"
