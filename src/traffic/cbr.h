// Constant bit rate source: one packet every size/rate seconds.
//
// The paper's PS-n "constant rate sessions with identical start times and a
// peak transmission rate equal to their guaranteed rate".
#pragma once

#include <limits>

#include "traffic/source.h"
#include "util/assert.h"

namespace hfq::traffic {

class CbrSource : public SourceBase {
 public:
  // Emits `packet_bytes` packets at `rate_bps` from `start` until `stop`.
  CbrSource(sim::Simulator& sim, Emit emit, FlowId flow,
            std::uint32_t packet_bytes, double rate_bps)
      : SourceBase(sim, std::move(emit), flow, packet_bytes),
        period_(8.0 * packet_bytes / rate_bps) {
    HFQ_ASSERT(rate_bps > 0.0);
  }

  void start(Time at, Time stop = std::numeric_limits<Time>::infinity()) {
    stop_ = stop;
    sim_.at(at, [this] { tick(); });
  }

  [[nodiscard]] double period() const noexcept { return period_; }

 private:
  void tick() {
    if (sim_.now() >= stop_) return;
    emit_(make_packet());
    sim_.after(period_, [this] { tick(); });
  }

  double period_;
  Time stop_ = std::numeric_limits<Time>::infinity();
};

}  // namespace hfq::traffic
