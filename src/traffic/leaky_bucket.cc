// LeakyBucketShaper is header-only; this TU anchors the library target.
#include "traffic/leaky_bucket.h"
