// (sigma, rho) leaky-bucket shaper.
//
// Delays offered packets until they conform to the token bucket — the
// arrival constraint (Eq. 17) under which the paper's delay bounds
// (Lemma 1, Theorems 2–4, Corollary 2) hold. Property tests shape random
// bursty traffic through this and then assert the bounds.
#pragma once

#include <deque>
#include <utility>

#include "traffic/source.h"
#include "util/assert.h"

namespace hfq::traffic {

class LeakyBucketShaper {
 public:
  // `sigma_bits` bucket depth, `rho_bps` token rate. Packets longer than
  // sigma can never conform; asserted on offer.
  LeakyBucketShaper(sim::Simulator& sim, Emit emit, double sigma_bits,
                    double rho_bps)
      : sim_(sim), emit_(std::move(emit)), sigma_(sigma_bits), rho_(rho_bps),
        tokens_(sigma_bits) {  // the bucket starts full
    HFQ_ASSERT(sigma_bits > 0.0);
    HFQ_ASSERT(rho_bps > 0.0);
  }

  LeakyBucketShaper(const LeakyBucketShaper&) = delete;
  LeakyBucketShaper& operator=(const LeakyBucketShaper&) = delete;

  // Offers a packet; it is released at the earliest conforming instant
  // (possibly immediately). FIFO order is preserved: the token state is
  // committed at each packet's release time, so the clock only moves
  // forward even when the next offer happens before the previous release.
  void offer(Packet p) {
    HFQ_ASSERT_MSG(p.size_bits() <= sigma_ + 1e-9,
                   "packet larger than bucket depth can never conform");
    const Time now = sim_.now();
    if (clock_ < now) refill(now);
    Time release = clock_;  // >= previous packet's release (FIFO)
    if (tokens_ < p.size_bits()) {
      release += (p.size_bits() - tokens_) / rho_;
    }
    refill(release);
    tokens_ -= p.size_bits();
    if (release <= now) {
      emit_(std::move(p));
    } else {
      sim_.at(release, [this, pkt = std::move(p)] { emit_(pkt); });
    }
  }

  [[nodiscard]] double sigma_bits() const noexcept { return sigma_; }
  [[nodiscard]] double rho_bps() const noexcept { return rho_; }

 private:
  void refill(Time t) {
    HFQ_ASSERT(t >= clock_);
    tokens_ += rho_ * (t - clock_);
    if (tokens_ > sigma_) tokens_ = sigma_;
    clock_ = t;
  }

  sim::Simulator& sim_;
  Emit emit_;
  double sigma_;
  double rho_;
  double tokens_;
  Time clock_ = 0.0;  // time at which `tokens_` is valid (monotone)
};

}  // namespace hfq::traffic
