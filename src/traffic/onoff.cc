// OnOffSource is header-only; this TU anchors the library target.
#include "traffic/onoff.h"
