// Deterministic on/off source: CBR at peak rate during "on", silent during
// "off".
//
// The paper's RT-1 session is exactly this (25 ms on / 75 ms off), and the
// link-sharing experiment's ON/OFF background sources use one-shot on
// periods given by an explicit schedule — supported via the schedule
// overload.
#pragma once

#include <limits>
#include <utility>
#include <vector>

#include "traffic/source.h"
#include "util/assert.h"

namespace hfq::traffic {

class OnOffSource : public SourceBase {
 public:
  OnOffSource(sim::Simulator& sim, Emit emit, FlowId flow,
              std::uint32_t packet_bytes, double peak_rate_bps)
      : SourceBase(sim, std::move(emit), flow, packet_bytes),
        period_(8.0 * packet_bytes / peak_rate_bps) {
    HFQ_ASSERT(peak_rate_bps > 0.0);
  }

  // Periodic duty cycle: on for `on_s`, off for `off_s`, starting at `at`.
  void start_cycle(Time at, double on_s, double off_s,
                   Time stop = std::numeric_limits<Time>::infinity()) {
    HFQ_ASSERT(on_s > 0.0 && off_s >= 0.0);
    on_s_ = on_s;
    off_s_ = off_s;
    stop_ = stop;
    sim_.at(at, [this] { begin_burst(); });
  }

  // Explicit schedule of [begin, end) active intervals (the Fig. 8(b)
  // on/off source timelines).
  void start_schedule(std::vector<std::pair<Time, Time>> intervals) {
    for (const auto& [begin, end] : intervals) {
      HFQ_ASSERT(end > begin);
      sim_.at(begin, [this, end] {
        burst_end_ = end;
        tick();
      });
    }
  }

 private:
  void begin_burst() {
    if (sim_.now() >= stop_) return;
    burst_end_ = sim_.now() + on_s_;
    tick();
    sim_.after(on_s_ + off_s_, [this] { begin_burst(); });
  }

  void tick() {
    if (sim_.now() >= burst_end_ || sim_.now() >= stop_) return;
    emit_(make_packet());
    sim_.after(period_, [this] { tick(); });
  }

  double period_;
  double on_s_ = 0.0;
  double off_s_ = 0.0;
  Time burst_end_ = 0.0;
  Time stop_ = std::numeric_limits<Time>::infinity();
};

}  // namespace hfq::traffic
