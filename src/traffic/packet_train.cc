// PacketTrainSource is header-only; this TU anchors the library target.
#include "traffic/packet_train.h"
