// Packet-train source: periodic bursts of back-to-back packets.
//
// Models the paper's CS-n sessions: constant-rate sources passed through a
// multiplexer so that each active period delivers a train of packets spaced
// at the multiplexer's service time rather than simultaneous arrivals.
#pragma once

#include <limits>

#include "traffic/source.h"
#include "util/assert.h"

namespace hfq::traffic {

class PacketTrainSource : public SourceBase {
 public:
  // Every `period` seconds emits a train of `burst_len` packets spaced
  // `spacing` seconds apart (spacing = packet time on the upstream mux).
  PacketTrainSource(sim::Simulator& sim, Emit emit, FlowId flow,
                    std::uint32_t packet_bytes, std::size_t burst_len,
                    double spacing_s, double period_s)
      : SourceBase(sim, std::move(emit), flow, packet_bytes),
        burst_len_(burst_len), spacing_(spacing_s), period_(period_s) {
    HFQ_ASSERT(burst_len > 0);
    HFQ_ASSERT(spacing_s >= 0.0);
    HFQ_ASSERT(period_s > 0.0);
    HFQ_ASSERT_MSG(spacing_s * static_cast<double>(burst_len) <= period_s,
                   "train longer than its period");
  }

  void start(Time at, Time stop = std::numeric_limits<Time>::infinity()) {
    stop_ = stop;
    sim_.at(at, [this] { begin_train(); });
  }

 private:
  void begin_train() {
    if (sim_.now() >= stop_) return;
    remaining_ = burst_len_;
    tick();
    sim_.after(period_, [this] { begin_train(); });
  }

  void tick() {
    if (remaining_ == 0 || sim_.now() >= stop_) return;
    emit_(make_packet());
    --remaining_;
    if (remaining_ > 0) sim_.after(spacing_, [this] { tick(); });
  }

  std::size_t burst_len_;
  double spacing_;
  double period_;
  std::size_t remaining_ = 0;
  Time stop_ = std::numeric_limits<Time>::infinity();
};

}  // namespace hfq::traffic
