// Poisson source: exponential inter-arrival times with a given average rate.
//
// The paper's overload experiments (Sections 5.1.2–5.1.3) drive the PS-n
// sessions as Poisson sources at 1.5x their guaranteed rate.
#pragma once

#include <limits>

#include "traffic/source.h"
#include "util/assert.h"
#include "util/rng.h"

namespace hfq::traffic {

class PoissonSource : public SourceBase {
 public:
  PoissonSource(sim::Simulator& sim, Emit emit, FlowId flow,
                std::uint32_t packet_bytes, double mean_rate_bps,
                util::Rng rng)
      : SourceBase(sim, std::move(emit), flow, packet_bytes),
        mean_gap_(8.0 * packet_bytes / mean_rate_bps), rng_(rng) {
    HFQ_ASSERT(mean_rate_bps > 0.0);
  }

  void start(Time at, Time stop = std::numeric_limits<Time>::infinity()) {
    stop_ = stop;
    sim_.at(at, [this] { tick(); });
  }

 private:
  void tick() {
    if (sim_.now() >= stop_) return;
    emit_(make_packet());
    sim_.after(rng_.exponential(mean_gap_), [this] { tick(); });
  }

  double mean_gap_;
  util::Rng rng_;
  Time stop_ = std::numeric_limits<Time>::infinity();
};

}  // namespace hfq::traffic
