// Common machinery for traffic sources.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "net/packet.h"
#include "sim/simulator.h"

namespace hfq::traffic {

using net::FlowId;
using net::Packet;
using net::Time;

// A source hands finished packets to an Emit target — normally
// sim::Link::submit. The return value reports drop-tail acceptance; sources
// that care (none of the open-loop ones) may inspect it.
using Emit = std::function<bool(Packet)>;

class SourceBase {
 public:
  SourceBase(sim::Simulator& sim, Emit emit, FlowId flow,
             std::uint32_t packet_bytes)
      : sim_(sim), emit_(std::move(emit)), flow_(flow),
        packet_bytes_(packet_bytes) {}

  SourceBase(const SourceBase&) = delete;
  SourceBase& operator=(const SourceBase&) = delete;
  virtual ~SourceBase() = default;

  [[nodiscard]] FlowId flow() const noexcept { return flow_; }
  [[nodiscard]] std::uint64_t packets_emitted() const noexcept { return seq_; }

 protected:
  // Builds the next packet. Ids encode (flow, per-flow sequence) so they are
  // globally unique and deterministic.
  Packet make_packet() {
    Packet p;
    p.id = (static_cast<std::uint64_t>(flow_) << 32) | seq_;
    p.flow = flow_;
    p.size_bytes = packet_bytes_;
    p.created = sim_.now();
    ++seq_;
    return p;
  }

  sim::Simulator& sim_;
  Emit emit_;
  FlowId flow_;
  std::uint32_t packet_bytes_;
  std::uint64_t seq_ = 0;
};

}  // namespace hfq::traffic
