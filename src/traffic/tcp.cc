#include "traffic/tcp.h"

#include <algorithm>

#include "util/assert.h"

namespace hfq::traffic {

TcpSource::TcpSource(sim::Simulator& sim, Emit emit, FlowId flow,
                     std::uint32_t packet_bytes, Config config)
    : SourceBase(sim, std::move(emit), flow, packet_bytes),
      cfg_(config),
      ssthresh_(config.initial_ssthresh_pkts) {
  HFQ_ASSERT(cfg_.one_way_delay_s >= 0.0);
  HFQ_ASSERT(cfg_.initial_ssthresh_pkts >= 2.0);
  rto_ = std::max(cfg_.min_rto_s, 4.0 * cfg_.one_way_delay_s);
}

void TcpSource::start(Time at) {
  sim_.at(at, [this] { try_send(); });
}

void TcpSource::on_packet_delivered(const Packet& p) {
  HFQ_ASSERT(p.flow == flow_);
  const std::uint64_t seq = p.meta;
  // Propagation to the receiver, then receiver processing.
  sim_.after(cfg_.one_way_delay_s, [this, seq] { receiver_handle(seq); });
}

void TcpSource::receiver_handle(std::uint64_t seq) {
  bool duplicate = true;
  if (seq == rcv_next_) {
    ++rcv_next_;
    // Absorb any buffered out-of-order segments now in order.
    while (!rcv_ooo_.empty() && *rcv_ooo_.begin() == rcv_next_) {
      rcv_ooo_.erase(rcv_ooo_.begin());
      ++rcv_next_;
    }
    duplicate = false;
    // Delayed ACKs: only every ack_every-th in-order arrival generates a
    // (cumulative) ACK immediately; a held ACK is flushed by the delack
    // timer. Out-of-order arrivals always ack at once so the
    // fast-retransmit dupack signal is not delayed.
    if (cfg_.ack_every > 1 && ++delack_count_ < cfg_.ack_every) {
      if (delack_event_ == sim::kInvalidEvent ||
          !sim_.pending(delack_event_)) {
        delack_event_ =
            sim_.after(cfg_.delack_timeout_s, [this] { flush_delack(); });
      }
      return;
    }
    delack_count_ = 0;
  } else if (seq > rcv_next_) {
    rcv_ooo_.insert(seq);  // gap: cumulative ack unchanged → duplicate ack
    delack_count_ = 0;
  }
  // else: old retransmission; ack the current cumulative point.
  cancel_delack();
  const std::uint64_t cum = rcv_next_ - 1;
  sim_.after(cfg_.one_way_delay_s,
             [this, cum, duplicate] { on_ack(cum, duplicate); });
}

void TcpSource::flush_delack() {
  delack_event_ = sim::kInvalidEvent;
  delack_count_ = 0;
  const std::uint64_t cum = rcv_next_ - 1;
  sim_.after(cfg_.one_way_delay_s,
             [this, cum] { on_ack(cum, /*duplicate=*/false); });
}

void TcpSource::cancel_delack() {
  if (delack_event_ != sim::kInvalidEvent && sim_.pending(delack_event_)) {
    sim_.cancel(delack_event_);
  }
  delack_event_ = sim::kInvalidEvent;
}

void TcpSource::on_ack(std::uint64_t cum, bool duplicate) {
  if (cum > acked_hi_) {
    const std::uint64_t newly = cum - acked_hi_;
    acked_hi_ = cum;
    dup_acks_ = 0;
    if (in_recovery_) {
      if (cum >= recovery_point_) {
        // Full recovery (Reno): deflate to ssthresh.
        in_recovery_ = false;
        cwnd_ = ssthresh_;
      } else {
        // Partial ack: retransmit the next hole immediately.
        ++retransmits_;
        send_segment(acked_hi_ + 1);
      }
    } else if (cwnd_ < ssthresh_) {
      cwnd_ += static_cast<double>(newly);  // slow start
    } else {
      cwnd_ += static_cast<double>(newly) / cwnd_;  // congestion avoidance
    }
    cwnd_ = std::min(cwnd_, cfg_.max_cwnd_pkts);
    rto_ = std::max(cfg_.min_rto_s, 4.0 * cfg_.one_way_delay_s);
    arm_rto();
  } else if (duplicate) {
    ++dup_acks_;
    if (!in_recovery_ && dup_acks_ == 3) {
      // Fast retransmit + fast recovery.
      const double flight = static_cast<double>(next_seq_ - 1 - acked_hi_);
      ssthresh_ = std::max(flight / 2.0, 2.0);
      cwnd_ = ssthresh_ + 3.0;
      in_recovery_ = true;
      recovery_point_ = next_seq_ - 1;
      ++retransmits_;
      send_segment(acked_hi_ + 1);
    } else if (in_recovery_) {
      cwnd_ += 1.0;  // window inflation per extra duplicate ack
    }
  }
  try_send();
}

void TcpSource::send_segment(std::uint64_t seq) {
  Packet p = make_packet();
  p.meta = seq;
  emit_(std::move(p));  // drop-tail loss is silent to the sender
  arm_rto();
}

void TcpSource::try_send() {
  const auto window = static_cast<std::uint64_t>(cwnd_);
  while (next_seq_ <= acked_hi_ + window) {
    send_segment(next_seq_);
    ++next_seq_;
  }
}

void TcpSource::arm_rto() {
  if (rto_event_ != sim::kInvalidEvent && sim_.pending(rto_event_)) {
    sim_.cancel(rto_event_);
  }
  if (acked_hi_ + 1 < next_seq_) {  // data outstanding
    rto_event_ = sim_.after(rto_, [this] { on_rto(); });
  } else {
    rto_event_ = sim::kInvalidEvent;
  }
}

void TcpSource::on_rto() {
  rto_event_ = sim::kInvalidEvent;
  ++timeouts_;
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = 1.0;
  dup_acks_ = 0;
  in_recovery_ = false;
  rto_ = std::min(rto_ * 2.0, cfg_.max_rto_s);  // exponential backoff
  ++retransmits_;
  send_segment(acked_hi_ + 1);
}

}  // namespace hfq::traffic
