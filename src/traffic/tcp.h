// Simplified TCP Reno over the simulator — the substrate the paper's
// link-sharing experiment (Section 5.2) drives its TCP-n sessions with.
//
// Model (documented substitution, see DESIGN.md): a bulk-transfer sender
// with slow start, congestion avoidance, fast retransmit/fast recovery and
// an exponential-backoff RTO, paired with an in-object receiver that
// returns one cumulative ACK per delivered data packet after a fixed
// propagation delay. Loss happens only by drop-tail overflow of the
// session's leaf queue in the scheduler under test; the ACK path is ideal.
// This preserves exactly what the experiment needs: an ack-clocked, greedy,
// adaptive source that keeps its class backlogged and absorbs whatever
// bandwidth the hierarchy assigns it.
#pragma once

#include <cstdint>
#include <set>

#include "sim/event_queue.h"
#include "traffic/source.h"

namespace hfq::traffic {

struct TcpConfig {
  double one_way_delay_s = 0.005;  // propagation, each direction
  double initial_ssthresh_pkts = 64.0;
  double max_cwnd_pkts = 1e9;      // effectively unbounded by default
  double min_rto_s = 0.2;
  double max_rto_s = 60.0;
  // Delayed ACKs: acknowledge every k-th in-order segment (k=1 disables).
  // Out-of-order segments are always acked immediately (dupack signal),
  // and a held ACK is flushed after delack_timeout_s (the classic 200 ms
  // timer — without it a 1-segment window deadlocks against the sender).
  int ack_every = 1;
  double delack_timeout_s = 0.2;
};

class TcpSource : public SourceBase {
 public:
  using Config = TcpConfig;

  TcpSource(sim::Simulator& sim, Emit emit, FlowId flow,
            std::uint32_t packet_bytes, Config config = Config());

  // Starts the bulk transfer (greedy: infinite data).
  void start(Time at);

  // Wire this to the bottleneck link's delivery path for this flow's data
  // packets: models the packet reaching the receiver (after the one-way
  // propagation delay) and the ACK coming back.
  void on_packet_delivered(const Packet& p);

  // --- observability ------------------------------------------------------
  [[nodiscard]] double cwnd_pkts() const noexcept { return cwnd_; }
  [[nodiscard]] double ssthresh_pkts() const noexcept { return ssthresh_; }
  [[nodiscard]] std::uint64_t bytes_acked() const noexcept {
    return acked_hi_ * packet_bytes_;
  }
  [[nodiscard]] std::uint64_t retransmits() const noexcept {
    return retransmits_;
  }
  [[nodiscard]] std::uint64_t timeouts() const noexcept { return timeouts_; }

 private:
  void receiver_handle(std::uint64_t seq);        // runs at receiver time
  void flush_delack();                            // delayed-ack timer fired
  void cancel_delack();
  void on_ack(std::uint64_t cum, bool duplicate); // runs back at the sender
  void send_segment(std::uint64_t seq);
  void try_send();
  void arm_rto();
  void on_rto();

  Config cfg_;
  // Sender state. Sequence numbers count segments, starting at 1; `cum` in
  // an ACK is the highest in-order segment received.
  double cwnd_ = 1.0;
  double ssthresh_;
  std::uint64_t next_seq_ = 1;   // next new segment to send
  std::uint64_t acked_hi_ = 0;   // highest cumulative ack
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recovery_point_ = 0;
  double rto_ = 1.0;
  sim::EventId rto_event_ = sim::kInvalidEvent;
  std::uint64_t retransmits_ = 0;
  std::uint64_t timeouts_ = 0;

  // Receiver state.
  std::uint64_t rcv_next_ = 1;             // next expected segment
  std::set<std::uint64_t> rcv_ooo_;        // out-of-order segments held
  int delack_count_ = 0;                   // in-order arrivals since last ACK
  sim::EventId delack_event_ = sim::kInvalidEvent;
};

}  // namespace hfq::traffic
