// Lightweight assertion macros used across the library.
//
// HFQ_ASSERT is active in all build types: scheduling invariants are cheap to
// check relative to simulation work, and a silently-corrupted virtual clock
// is far more expensive to debug than the check.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace hfq::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "HFQ_ASSERT failed: %s at %s:%d%s%s\n", expr, file,
               line, msg != nullptr ? " — " : "", msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace hfq::util

#define HFQ_ASSERT(expr)                                              \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::hfq::util::assert_fail(#expr, __FILE__, __LINE__, nullptr);   \
    }                                                                 \
  } while (false)

#define HFQ_ASSERT_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::hfq::util::assert_fail(#expr, __FILE__, __LINE__, (msg));     \
    }                                                                 \
  } while (false)
