// HandleHeap is header-only; this TU anchors the library target and
// explicitly instantiates the most common configuration as a compile check.
#include "util/heap.h"

#include <cstdint>

namespace hfq::util {

template class HandleHeap<double, std::uint32_t>;

}  // namespace hfq::util
