// Handle-based binary min-heap with arbitrary removal and key updates.
//
// Packet fair queueing needs priority queues whose elements move between
// queues (e.g. the WF²Q+ eligible/waiting sets) or are deleted from the
// middle (a flow that empties). std::priority_queue supports neither, so this
// heap hands out stable integer handles and supports O(log n) erase and
// update through them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.h"

namespace hfq::util {

// Stable identifier for an element inside a HandleHeap. Handles are reused
// after erase, but a handle is never dangling while its element is present.
using HeapHandle = std::uint32_t;
inline constexpr HeapHandle kInvalidHeapHandle = UINT32_MAX;

// Min-heap of (Key, Value) pairs ordered by Key (then by insertion sequence,
// so ties break FIFO — important for deterministic simulation).
template <typename Key, typename Value>
class HandleHeap {
 public:
  HandleHeap() = default;

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  // Inserts and returns a handle valid until erase/pop of this element.
  HeapHandle push(Key key, Value value) {
    HeapHandle h;
    if (!free_.empty()) {
      h = free_.back();
      free_.pop_back();
      nodes_[h] = Node{std::move(key), std::move(value), heap_.size(), seq_++};
    } else {
      h = static_cast<HeapHandle>(nodes_.size());
      nodes_.push_back(Node{std::move(key), std::move(value), heap_.size(), seq_++});
    }
    heap_.push_back(h);
    sift_up(heap_.size() - 1);
    return h;
  }

  // The minimum element. Precondition: !empty().
  [[nodiscard]] const Key& top_key() const {
    HFQ_ASSERT(!heap_.empty());
    return nodes_[heap_.front()].key;
  }
  [[nodiscard]] const Value& top_value() const {
    HFQ_ASSERT(!heap_.empty());
    return nodes_[heap_.front()].value;
  }
  [[nodiscard]] HeapHandle top_handle() const {
    HFQ_ASSERT(!heap_.empty());
    return heap_.front();
  }

  // Removes and returns the minimum element's value.
  Value pop() {
    HFQ_ASSERT(!heap_.empty());
    const HeapHandle h = heap_.front();
    Value v = std::move(nodes_[h].value);
    erase(h);
    return v;
  }

  // Removes the element with the given handle (any position).
  void erase(HeapHandle h) {
    HFQ_ASSERT(contains(h));
    const std::size_t pos = nodes_[h].pos;
    const std::size_t last = heap_.size() - 1;
    if (pos != last) {
      swap_at(pos, last);
      heap_.pop_back();
      release(h);
      // The element moved into `pos` may need to move either way.
      if (!sift_up(pos)) sift_down(pos);
    } else {
      heap_.pop_back();
      release(h);
    }
  }

  // Changes the key of an element in place.
  void update_key(HeapHandle h, Key key) {
    HFQ_ASSERT(contains(h));
    nodes_[h].key = std::move(key);
    const std::size_t pos = nodes_[h].pos;
    if (!sift_up(pos)) sift_down(pos);
  }

  [[nodiscard]] const Key& key_of(HeapHandle h) const {
    HFQ_ASSERT(contains(h));
    return nodes_[h].key;
  }
  [[nodiscard]] const Value& value_of(HeapHandle h) const {
    HFQ_ASSERT(contains(h));
    return nodes_[h].value;
  }
  [[nodiscard]] Value& value_of(HeapHandle h) {
    HFQ_ASSERT(contains(h));
    return nodes_[h].value;
  }

  // True if `h` currently names a live element.
  [[nodiscard]] bool contains(HeapHandle h) const noexcept {
    return h < nodes_.size() && nodes_[h].pos != kErased;
  }

  void clear() noexcept {
    heap_.clear();
    nodes_.clear();
    free_.clear();
    seq_ = 0;
  }

  // Applies a strictly order-preserving transform to every key (e.g.
  // subtracting a common offset). Because the transform is monotone, the
  // heap shape stays valid and no re-heapify is needed. Used by long-running
  // schedulers to rebase virtual times before double precision degrades.
  // A non-monotone transform silently corrupts the heap order, so debug and
  // audit builds validate the heap property after the transform.
  template <typename Fn>
  void transform_keys(Fn&& fn) {
    for (const HeapHandle h : heap_) {
      nodes_[h].key = fn(nodes_[h].key);
    }
#if defined(HFQ_AUDIT_ENABLED) || !defined(NDEBUG)
    HFQ_ASSERT_MSG(validate(),
                   "transform_keys transform was not order-preserving");
#endif
  }

  // Full structural check: min-heap property (including the FIFO seq
  // tie-break) and position back-pointer consistency. O(n); used by the
  // audit subsystem and by transform_keys in debug builds.
  [[nodiscard]] bool validate() const {
    for (std::size_t i = 1; i < heap_.size(); ++i) {
      if (less(heap_[i], heap_[(i - 1) / 2])) return false;
    }
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      if (heap_[i] >= nodes_.size() || nodes_[heap_[i]].pos != i) return false;
    }
    return true;
  }

 private:
  static constexpr std::size_t kErased = SIZE_MAX;

  struct Node {
    Key key{};
    Value value{};
    std::size_t pos = kErased;  // index into heap_, kErased if not present
    std::uint64_t seq = 0;      // FIFO tie-break
  };

  [[nodiscard]] bool less(HeapHandle a, HeapHandle b) const {
    const Node& na = nodes_[a];
    const Node& nb = nodes_[b];
    if (na.key < nb.key) return true;
    if (nb.key < na.key) return false;
    return na.seq < nb.seq;
  }

  void swap_at(std::size_t i, std::size_t j) {
    std::swap(heap_[i], heap_[j]);
    nodes_[heap_[i]].pos = i;
    nodes_[heap_[j]].pos = j;
  }

  // Returns true if the element moved.
  bool sift_up(std::size_t pos) {
    bool moved = false;
    while (pos > 0) {
      const std::size_t parent = (pos - 1) / 2;
      if (!less(heap_[pos], heap_[parent])) break;
      swap_at(pos, parent);
      pos = parent;
      moved = true;
    }
    return moved;
  }

  void sift_down(std::size_t pos) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t smallest = pos;
      const std::size_t l = 2 * pos + 1;
      const std::size_t r = 2 * pos + 2;
      if (l < n && less(heap_[l], heap_[smallest])) smallest = l;
      if (r < n && less(heap_[r], heap_[smallest])) smallest = r;
      if (smallest == pos) return;
      swap_at(pos, smallest);
      pos = smallest;
    }
  }

  void release(HeapHandle h) {
    nodes_[h].pos = kErased;
    free_.push_back(h);
  }

  std::vector<Node> nodes_;
  std::vector<HeapHandle> heap_;   // heap of handles
  std::vector<HeapHandle> free_;   // recycled handles
  std::uint64_t seq_ = 0;
};

}  // namespace hfq::util
