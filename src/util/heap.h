// Handle-based d-ary min-heap with arbitrary removal and key updates.
//
// Packet fair queueing needs priority queues whose elements move between
// queues (e.g. the WF²Q+ eligible/waiting sets) or are deleted from the
// middle (a flow that empties). std::priority_queue supports neither, so this
// heap hands out stable integer handles and supports O(log n) erase and
// update through them.
//
// Layout (million-flow datapath): keys and FIFO sequence numbers live
// *inside* the heap array itself, so a sift compares against children that
// sit in one or two adjacent cache lines instead of chasing a handle
// indirection per comparison. The handle table (`nodes_`) holds only the
// value and the position back-pointer. The default arity of 4 quarters the
// sift-down depth versus a binary heap at 1M elements (10 levels instead of
// 20) while every child group still spans at most two cache lines — the
// standard cache-friendly point for 32-byte slots.
//
// Pop order is a pure function of the (key, insertion-seq) total order, so it
// is identical for every arity: swapping the arity (or this implementation
// against the old pointer-chasing binary heap) cannot change a schedule.
// tests/test_util.cc asserts this cross-arity equivalence.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.h"

namespace hfq::util {

// Stable identifier for an element inside a HandleHeap. Handles are reused
// after erase, but a handle is never dangling while its element is present.
using HeapHandle = std::uint32_t;
inline constexpr HeapHandle kInvalidHeapHandle = UINT32_MAX;

// Min-heap of (Key, Value) pairs ordered by Key (then by insertion sequence,
// so ties break FIFO — important for deterministic simulation).
template <typename Key, typename Value, std::size_t Arity = 4>
class HandleHeap {
  static_assert(Arity >= 2, "a heap needs at least two children per node");

 public:
  HandleHeap() = default;

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  // Pre-sizes both the slot array and the handle table (amortization for
  // million-element workloads; optional).
  void reserve(std::size_t n) {
    heap_.reserve(n);
    nodes_.reserve(n);
  }

  // Inserts and returns a handle valid until erase/pop of this element.
  HeapHandle push(Key key, Value value) {
    HeapHandle h;
    if (!free_.empty()) {
      h = free_.back();
      free_.pop_back();
      nodes_[h].value = std::move(value);
      nodes_[h].pos = heap_.size();
    } else {
      h = static_cast<HeapHandle>(nodes_.size());
      nodes_.push_back(Node{std::move(value), heap_.size()});
    }
    heap_.push_back(Slot{std::move(key), seq_++, h});
    sift_up(heap_.size() - 1);
    return h;
  }

  // The minimum element. Precondition: !empty().
  [[nodiscard]] const Key& top_key() const {
    HFQ_ASSERT(!heap_.empty());
    return heap_.front().key;
  }
  [[nodiscard]] const Value& top_value() const {
    HFQ_ASSERT(!heap_.empty());
    return nodes_[heap_.front().handle].value;
  }
  [[nodiscard]] HeapHandle top_handle() const {
    HFQ_ASSERT(!heap_.empty());
    return heap_.front().handle;
  }

  // Removes and returns the minimum element's value.
  Value pop() {
    HFQ_ASSERT(!heap_.empty());
    const HeapHandle h = heap_.front().handle;
    Value v = std::move(nodes_[h].value);
    erase(h);
    return v;
  }

  // Removes the element with the given handle (any position).
  void erase(HeapHandle h) {
    HFQ_ASSERT(contains(h));
    const std::size_t pos = nodes_[h].pos;
    const std::size_t last = heap_.size() - 1;
    if (pos != last) {
      heap_[pos] = std::move(heap_[last]);
      nodes_[heap_[pos].handle].pos = pos;
      heap_.pop_back();
      release(h);
      // The element moved into `pos` may need to move either way.
      if (!sift_up(pos)) sift_down(pos);
    } else {
      heap_.pop_back();
      release(h);
    }
  }

  // Changes the key of an element in place.
  void update_key(HeapHandle h, Key key) {
    HFQ_ASSERT(contains(h));
    const std::size_t pos = nodes_[h].pos;
    heap_[pos].key = std::move(key);
    if (!sift_up(pos)) sift_down(pos);
  }

  [[nodiscard]] const Key& key_of(HeapHandle h) const {
    HFQ_ASSERT(contains(h));
    return heap_[nodes_[h].pos].key;
  }
  [[nodiscard]] const Value& value_of(HeapHandle h) const {
    HFQ_ASSERT(contains(h));
    return nodes_[h].value;
  }
  [[nodiscard]] Value& value_of(HeapHandle h) {
    HFQ_ASSERT(contains(h));
    return nodes_[h].value;
  }

  // True if `h` currently names a live element.
  [[nodiscard]] bool contains(HeapHandle h) const noexcept {
    return h < nodes_.size() && nodes_[h].pos != kErased;
  }

  void clear() noexcept {
    heap_.clear();
    nodes_.clear();
    free_.clear();
    seq_ = 0;
  }

  // Applies a strictly order-preserving transform to every key (e.g.
  // subtracting a common offset). Because the transform is monotone, the
  // heap shape stays valid and no re-heapify is needed. Used by long-running
  // schedulers to rebase virtual times before double precision degrades.
  // A non-monotone transform silently corrupts the heap order, so debug and
  // audit builds validate the heap property after the transform.
  template <typename Fn>
  void transform_keys(Fn&& fn) {
    for (Slot& s : heap_) {
      s.key = fn(s.key);
    }
#if defined(HFQ_AUDIT_ENABLED) || !defined(NDEBUG)
    HFQ_ASSERT_MSG(validate(),
                   "transform_keys transform was not order-preserving");
#endif
  }

  // Full structural check: min-heap property (including the FIFO seq
  // tie-break) and position back-pointer consistency. O(n); used by the
  // audit subsystem and by transform_keys in debug builds.
  [[nodiscard]] bool validate() const {
    for (std::size_t i = 1; i < heap_.size(); ++i) {
      if (less(heap_[i], heap_[(i - 1) / Arity])) return false;
    }
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      const HeapHandle h = heap_[i].handle;
      if (h >= nodes_.size() || nodes_[h].pos != i) return false;
    }
    return true;
  }

 private:
  static constexpr std::size_t kErased = SIZE_MAX;

  // One heap position: key and FIFO tie-break sequence inline (compared on
  // every sift step), plus the owning handle.
  struct Slot {
    Key key{};
    std::uint64_t seq = 0;  // FIFO tie-break
    HeapHandle handle = kInvalidHeapHandle;
  };

  // Per-handle state: the payload and where its slot currently sits.
  struct Node {
    Value value{};
    std::size_t pos = kErased;  // index into heap_, kErased if not present
  };

  [[nodiscard]] static bool less(const Slot& a, const Slot& b) {
    if (a.key < b.key) return true;
    if (b.key < a.key) return false;
    return a.seq < b.seq;
  }

  // Returns true if the element moved. Hole-based: the moving slot is held
  // in a local and written once at its final position.
  bool sift_up(std::size_t pos) {
    if (pos == 0) return false;
    Slot moving = std::move(heap_[pos]);
    bool moved = false;
    while (pos > 0) {
      const std::size_t parent = (pos - 1) / Arity;
      if (!less(moving, heap_[parent])) break;
      heap_[pos] = std::move(heap_[parent]);
      nodes_[heap_[pos].handle].pos = pos;
      pos = parent;
      moved = true;
    }
    heap_[pos] = std::move(moving);
    nodes_[heap_[pos].handle].pos = pos;
    return moved;
  }

  void sift_down(std::size_t pos) {
    const std::size_t n = heap_.size();
    Slot moving = std::move(heap_[pos]);
    for (;;) {
      const std::size_t first = Arity * pos + 1;
      if (first >= n) break;
      const std::size_t end = first + Arity < n ? first + Arity : n;
      std::size_t smallest = first;
      for (std::size_t c = first + 1; c < end; ++c) {
        if (less(heap_[c], heap_[smallest])) smallest = c;
      }
      if (!less(heap_[smallest], moving)) break;
      heap_[pos] = std::move(heap_[smallest]);
      nodes_[heap_[pos].handle].pos = pos;
      pos = smallest;
    }
    heap_[pos] = std::move(moving);
    nodes_[heap_[pos].handle].pos = pos;
  }

  void release(HeapHandle h) {
    nodes_[h].pos = kErased;
    free_.push_back(h);
  }

  std::vector<Slot> heap_;         // the d-ary heap itself (keys inline)
  std::vector<Node> nodes_;        // handle table: value + position
  std::vector<HeapHandle> free_;   // recycled handles
  std::uint64_t seq_ = 0;
};

// d-ary min-heap with the same (key, insertion-seq) ordering contract as
// HandleHeap but no handle table: push/pop/top only, no erase-from-middle or
// update_key. Everything — key, seq, value — lives in the heap slot, so a
// sift touches nothing but the heap array itself (HandleHeap additionally
// writes one position back-pointer into its scattered handle table per slot
// moved, which at a million elements is the dominant cache cost). The WF²Q+
// eligible/waiting sets never erase below the root, so the hot datapath uses
// this; anything needing cancellation (the event queue, node policies with
// flow removal) stays on HandleHeap.
//
// Because both heaps order by the identical (key, seq) total order, their
// pop sequences are interchangeable — swapping one for the other cannot
// change a schedule (asserted across arities in tests/test_util.cc).
template <typename Key, typename Value, std::size_t Arity = 4>
class InlineHeap {
  static_assert(Arity >= 2, "a heap needs at least two children per node");

 public:
  InlineHeap() = default;

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  void reserve(std::size_t n) { heap_.reserve(n); }

  void push(Key key, Value value) {
    heap_.push_back(Slot{std::move(key), seq_++, std::move(value)});
    sift_up(heap_.size() - 1);
  }

  // The minimum element. Precondition: !empty().
  [[nodiscard]] const Key& top_key() const {
    HFQ_ASSERT(!heap_.empty());
    return heap_.front().key;
  }
  [[nodiscard]] const Value& top_value() const {
    HFQ_ASSERT(!heap_.empty());
    return heap_.front().value;
  }

  // Removes and returns the minimum element's value.
  Value pop() {
    HFQ_ASSERT(!heap_.empty());
    Value v = std::move(heap_.front().value);
    const std::size_t last = heap_.size() - 1;
    if (last != 0) {
      heap_.front() = std::move(heap_[last]);
      heap_.pop_back();
      sift_down(0);
    } else {
      heap_.pop_back();
    }
    return v;
  }

  void clear() noexcept {
    heap_.clear();
    seq_ = 0;
  }

  // Order-preserving key rebase; see HandleHeap::transform_keys.
  template <typename Fn>
  void transform_keys(Fn&& fn) {
    for (Slot& s : heap_) {
      s.key = fn(s.key);
    }
#if defined(HFQ_AUDIT_ENABLED) || !defined(NDEBUG)
    HFQ_ASSERT_MSG(validate(),
                   "transform_keys transform was not order-preserving");
#endif
  }

  // Min-heap property including the FIFO seq tie-break. O(n).
  [[nodiscard]] bool validate() const {
    for (std::size_t i = 1; i < heap_.size(); ++i) {
      if (less(heap_[i], heap_[(i - 1) / Arity])) return false;
    }
    return true;
  }

 private:
  struct Slot {
    Key key{};
    std::uint64_t seq = 0;  // FIFO tie-break
    Value value{};
  };

  [[nodiscard]] static bool less(const Slot& a, const Slot& b) {
    if (a.key < b.key) return true;
    if (b.key < a.key) return false;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t pos) {
    if (pos == 0) return;
    Slot moving = std::move(heap_[pos]);
    while (pos > 0) {
      const std::size_t parent = (pos - 1) / Arity;
      if (!less(moving, heap_[parent])) break;
      heap_[pos] = std::move(heap_[parent]);
      pos = parent;
    }
    heap_[pos] = std::move(moving);
  }

  void sift_down(std::size_t pos) {
    const std::size_t n = heap_.size();
    Slot moving = std::move(heap_[pos]);
    for (;;) {
      const std::size_t first = Arity * pos + 1;
      if (first >= n) break;
      const std::size_t end = first + Arity < n ? first + Arity : n;
      std::size_t smallest = first;
      for (std::size_t c = first + 1; c < end; ++c) {
        if (less(heap_[c], heap_[smallest])) smallest = c;
      }
      if (!less(heap_[smallest], moving)) break;
      heap_[pos] = std::move(heap_[smallest]);
      pos = smallest;
    }
    heap_[pos] = std::move(moving);
  }

  std::vector<Slot> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace hfq::util
