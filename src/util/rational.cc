#include "util/rational.h"

#include <cstdlib>
#include <ostream>

namespace hfq::util {
namespace {

__int128 gcd128(__int128 a, __int128 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const __int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

constexpr __int128 kLimit = static_cast<__int128>(1) << 96;

}  // namespace

void Rational::normalize() {
  HFQ_ASSERT_MSG(den_ != 0, "rational with zero denominator");
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_ == 0) {
    den_ = 1;
    return;
  }
  const __int128 g = gcd128(num_, den_);
  num_ /= g;
  den_ /= g;
  // Guard against values creeping toward overflow of intermediate products
  // (which use num*den of two rationals, i.e. up to 2x these widths).
  HFQ_ASSERT_MSG(num_ < kLimit && num_ > -kLimit && den_ < kLimit,
                 "rational magnitude exceeds safe range");
}

std::string Rational::to_string() const {
  auto int128_to_string = [](__int128 v) {
    if (v == 0) return std::string("0");
    const bool neg = v < 0;
    if (neg) v = -v;
    std::string s;
    while (v > 0) {
      s.insert(s.begin(), static_cast<char>('0' + static_cast<int>(v % 10)));
      v /= 10;
    }
    if (neg) s.insert(s.begin(), '-');
    return s;
  };
  std::string s = int128_to_string(num_);
  if (den_ != 1) {
    s += '/';
    s += int128_to_string(den_);
  }
  return s;
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.to_string();
}

}  // namespace hfq::util
