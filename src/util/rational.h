// Exact rational arithmetic over __int128.
//
// The fluid GPS / H-GPS reference servers can run on Rational instead of
// double so that unit tests asserting exact packet orderings (the paper's
// worked examples use shares like 0.05 that are not binary-representable)
// are free of floating-point artifacts.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <numeric>
#include <string>

#include "util/assert.h"

namespace hfq::util {

// A reduced-form rational p/q with q > 0. Arithmetic aborts on overflow of
// the 128-bit intermediate products; simulation-scale values stay far below
// that.
class Rational {
 public:
  constexpr Rational() noexcept = default;
  constexpr Rational(std::int64_t value) noexcept : num_(value), den_(1) {}  // NOLINT(google-explicit-constructor): numeric literal interop
  Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
    HFQ_ASSERT_MSG(den != 0, "rational with zero denominator");
    normalize();
  }

  [[nodiscard]] std::int64_t num() const noexcept { return static_cast<std::int64_t>(num_); }
  [[nodiscard]] std::int64_t den() const noexcept { return static_cast<std::int64_t>(den_); }
  [[nodiscard]] double to_double() const noexcept {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }
  [[nodiscard]] std::string to_string() const;

  Rational& operator+=(const Rational& o) { return assign(num_ * o.den_ + o.num_ * den_, den_ * o.den_); }
  Rational& operator-=(const Rational& o) { return assign(num_ * o.den_ - o.num_ * den_, den_ * o.den_); }
  Rational& operator*=(const Rational& o) { return assign(num_ * o.num_, den_ * o.den_); }
  Rational& operator/=(const Rational& o) {
    HFQ_ASSERT_MSG(o.num_ != 0, "rational division by zero");
    return assign(num_ * o.den_, den_ * o.num_);
  }

  friend Rational operator+(Rational a, const Rational& b) { return a += b; }
  friend Rational operator-(Rational a, const Rational& b) { return a -= b; }
  friend Rational operator*(Rational a, const Rational& b) { return a *= b; }
  friend Rational operator/(Rational a, const Rational& b) { return a /= b; }
  friend Rational operator-(const Rational& a) { Rational r; r.num_ = -a.num_; r.den_ = a.den_; return r; }

  friend bool operator==(const Rational& a, const Rational& b) noexcept {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& a, const Rational& b) noexcept {
    const __int128 lhs = a.num_ * b.den_;
    const __int128 rhs = b.num_ * a.den_;
    if (lhs < rhs) return std::strong_ordering::less;
    if (lhs > rhs) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }

  // min/max convenience mirroring std::min/std::max for template code that
  // is generic over double and Rational.
  friend const Rational& min(const Rational& a, const Rational& b) { return b < a ? b : a; }
  friend const Rational& max(const Rational& a, const Rational& b) { return a < b ? b : a; }

 private:
  Rational& assign(__int128 num, __int128 den) {
    num_ = num;
    den_ = den;
    normalize();
    return *this;
  }
  void normalize();

  __int128 num_ = 0;
  __int128 den_ = 1;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace hfq::util
