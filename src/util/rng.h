// Deterministic random number generation for simulations.
//
// All stochastic traffic sources draw from an Rng seeded explicitly, so every
// experiment in bench/ is exactly reproducible run-to-run.
#pragma once

#include <cstdint>
#include <random>

namespace hfq::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform double in [0, 1).
  [[nodiscard]] double uniform() { return unit_(engine_); }

  // Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  // Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  // Exponential with the given mean (inter-arrival draw for Poisson sources).
  [[nodiscard]] double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  [[nodiscard]] std::uint64_t next_u64() { return engine_(); }

  // Derives an independent stream (for giving each source its own RNG).
  [[nodiscard]] Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace hfq::util
