// Compile-time unit safety for the quantities the paper's algebra lives in.
//
// The correctness argument of H-PFQ/WF²Q+ is carried entirely by the
// algebra of virtual time (Eq. 27, the SEFF eligibility test, Theorems 1–4),
// yet wall-clock instants, virtual-time instants, fixed-point ticks, packet
// bits and service rates are all "just numbers". Mixing them compiles and
// silently breaks WFI bounds — the PR 1 `busy_until_` leak was exactly a
// virtual-time value stored in a wall-clock field, caught only by the
// differential fuzzer. These zero-cost wrappers push the distinction into
// the type system:
//
//   WallTime     — an instant in simulated real time (seconds)
//   VirtualTime  — an instant of a server's virtual time function V(·)
//   Duration     — a span of seconds; the only bridge between instants.
//                  V advances by spans of service time (L/r), so a Duration
//                  may legally be added to either instant kind — but the
//                  instants themselves never mix:
//                  WallTime − VirtualTime does not compile.
//   Bits         — an amount of traffic
//   RateBps      — bits per second;  Bits / RateBps → Duration
//   VTicks       — integer fixed-point virtual time (2^-shift seconds per
//                  tick), the hardware datapath form used by Wf2qPlusFixed
//
// Only the physically meaningful operators exist. Construction from and
// extraction to raw doubles is always explicit (constructor / named
// accessor), so every unit boundary is visible at the call site and
// greppable by tools/hfq_lint. The static_asserts at the bottom are the
// compile-fail test suite: they prove the meaningless expressions are
// rejected, and break the build if an operator overload ever widens the
// algebra by accident. All wrappers are trivially copyable single-scalar
// types — zero cost at -O1 and above.
#pragma once

#include <cstdint>
#include <type_traits>

namespace hfq::units {

// ---------------------------------------------------------------- Duration

class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(double seconds) : s_(seconds) {}

  [[nodiscard]] constexpr double seconds() const noexcept { return s_; }

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{a.s_ + b.s_};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration{a.s_ - b.s_};
  }
  friend constexpr Duration operator-(Duration a) { return Duration{-a.s_}; }
  friend constexpr Duration operator*(Duration a, double k) {
    return Duration{a.s_ * k};
  }
  friend constexpr Duration operator*(double k, Duration a) {
    return Duration{k * a.s_};
  }
  friend constexpr Duration operator/(Duration a, double k) {
    return Duration{a.s_ / k};
  }
  friend constexpr double operator/(Duration a, Duration b) {
    return a.s_ / b.s_;
  }
  constexpr Duration& operator+=(Duration d) {
    s_ += d.s_;
    return *this;
  }
  constexpr Duration& operator-=(Duration d) {
    s_ -= d.s_;
    return *this;
  }
  friend constexpr auto operator<=>(Duration, Duration) = default;

 private:
  double s_ = 0.0;
};

// ---------------------------------------------------------------- WallTime

class WallTime {
 public:
  constexpr WallTime() = default;
  constexpr explicit WallTime(double seconds) : s_(seconds) {}

  [[nodiscard]] constexpr double seconds() const noexcept { return s_; }

  friend constexpr WallTime operator+(WallTime t, Duration d) {
    return WallTime{t.s_ + d.seconds()};
  }
  friend constexpr WallTime operator-(WallTime t, Duration d) {
    return WallTime{t.s_ - d.seconds()};
  }
  friend constexpr Duration operator-(WallTime a, WallTime b) {
    return Duration{a.s_ - b.s_};
  }
  constexpr WallTime& operator+=(Duration d) {
    s_ += d.seconds();
    return *this;
  }
  constexpr WallTime& operator-=(Duration d) {
    s_ -= d.seconds();
    return *this;
  }
  friend constexpr auto operator<=>(WallTime, WallTime) = default;

 private:
  double s_ = 0.0;
};

// ------------------------------------------------------------- VirtualTime

class VirtualTime {
 public:
  constexpr VirtualTime() = default;
  constexpr explicit VirtualTime(double v) : v_(v) {}

  // The raw value of V — name the unwrap so it is visible and greppable.
  [[nodiscard]] constexpr double v() const noexcept { return v_; }

  friend constexpr VirtualTime operator+(VirtualTime t, Duration d) {
    return VirtualTime{t.v_ + d.seconds()};
  }
  friend constexpr VirtualTime operator-(VirtualTime t, Duration d) {
    return VirtualTime{t.v_ - d.seconds()};
  }
  friend constexpr Duration operator-(VirtualTime a, VirtualTime b) {
    return Duration{a.v_ - b.v_};
  }
  constexpr VirtualTime& operator+=(Duration d) {
    v_ += d.seconds();
    return *this;
  }
  constexpr VirtualTime& operator-=(Duration d) {
    v_ -= d.seconds();
    return *this;
  }
  friend constexpr auto operator<=>(VirtualTime, VirtualTime) = default;

 private:
  double v_ = 0.0;
};

// ------------------------------------------------------------ Bits/RateBps

class RateBps;

class Bits {
 public:
  constexpr Bits() = default;
  constexpr explicit Bits(double bits) : b_(bits) {}

  [[nodiscard]] constexpr double bits() const noexcept { return b_; }

  friend constexpr Bits operator+(Bits a, Bits b) { return Bits{a.b_ + b.b_}; }
  friend constexpr Bits operator-(Bits a, Bits b) { return Bits{a.b_ - b.b_}; }
  friend constexpr Bits operator*(Bits a, double k) { return Bits{a.b_ * k}; }
  friend constexpr Bits operator*(double k, Bits a) { return Bits{k * a.b_}; }
  constexpr Bits& operator+=(Bits b) {
    b_ += b.b_;
    return *this;
  }
  constexpr Bits& operator-=(Bits b) {
    b_ -= b.b_;
    return *this;
  }
  friend constexpr auto operator<=>(Bits, Bits) = default;

  // Defined after RateBps: Bits / RateBps → Duration, Bits / Duration → RateBps.
  friend constexpr Duration operator/(Bits b, RateBps r);
  friend constexpr RateBps operator/(Bits b, Duration d);

 private:
  double b_ = 0.0;
};

class RateBps {
 public:
  constexpr RateBps() = default;
  constexpr explicit RateBps(double bps) : r_(bps) {}

  [[nodiscard]] constexpr double bps() const noexcept { return r_; }

  friend constexpr RateBps operator+(RateBps a, RateBps b) {
    return RateBps{a.r_ + b.r_};
  }
  friend constexpr RateBps operator-(RateBps a, RateBps b) {
    return RateBps{a.r_ - b.r_};
  }
  friend constexpr RateBps operator*(RateBps a, double k) {
    return RateBps{a.r_ * k};
  }
  friend constexpr RateBps operator*(double k, RateBps a) {
    return RateBps{k * a.r_};
  }
  // Share of one rate in another (the GPS weight phi_i = r_i / r).
  friend constexpr double operator/(RateBps a, RateBps b) {
    return a.r_ / b.r_;
  }
  friend constexpr Bits operator*(RateBps r, Duration d) {
    return Bits{r.r_ * d.seconds()};
  }
  friend constexpr Bits operator*(Duration d, RateBps r) {
    return Bits{d.seconds() * r.r_};
  }
  constexpr RateBps& operator+=(RateBps b) {
    r_ += b.r_;
    return *this;
  }
  constexpr RateBps& operator-=(RateBps b) {
    r_ -= b.r_;
    return *this;
  }
  friend constexpr auto operator<=>(RateBps, RateBps) = default;

 private:
  double r_ = 0.0;
};

constexpr Duration operator/(Bits b, RateBps r) {
  return Duration{b.b_ / r.bps()};
}
constexpr RateBps operator/(Bits b, Duration d) {
  return RateBps{b.b_ / d.seconds()};
}

// ------------------------------------------------------------------ VTicks

// Integer virtual time for the fixed-point datapath: a count of 2^-shift
// second ticks. Pure integer add/compare — the form a hardware implementation
// carries, kept separate from VirtualTime so a tick count is never mistaken
// for (or mixed with) the floating-point clock without an explicit
// quantization step.
class VTicks {
 public:
  constexpr VTicks() = default;
  constexpr explicit VTicks(std::uint64_t ticks) : t_(ticks) {}

  [[nodiscard]] constexpr std::uint64_t ticks() const noexcept { return t_; }

  // Quantization boundary with the double world, explicit in both
  // directions. from_seconds_ceil rounds UP: a session is never credited
  // more service than it is entitled to (the conservative direction for
  // guarantees — see core/wf2qplus_fixed.h).
  [[nodiscard]] constexpr double to_seconds(int tick_shift) const noexcept {
    return static_cast<double>(t_) /
           static_cast<double>(std::uint64_t{1} << tick_shift);
  }
  [[nodiscard]] static constexpr VTicks from_seconds_ceil(double seconds,
                                                          int tick_shift) {
    const double scaled =
        seconds * static_cast<double>(std::uint64_t{1} << tick_shift);
    const auto floor_ticks = static_cast<std::uint64_t>(scaled);
    return VTicks{static_cast<double>(floor_ticks) == scaled
                      ? floor_ticks
                      : floor_ticks + 1};
  }

  friend constexpr VTicks operator+(VTicks a, VTicks b) {
    return VTicks{a.t_ + b.t_};
  }
  friend constexpr VTicks operator-(VTicks a, VTicks b) {
    return VTicks{a.t_ - b.t_};
  }
  constexpr VTicks& operator+=(VTicks b) {
    t_ += b.t_;
    return *this;
  }
  friend constexpr auto operator<=>(VTicks, VTicks) = default;

 private:
  std::uint64_t t_ = 0;
};

// -------------------------------------------------- tolerant comparisons

// Floating-point tags accumulate rounding from repeated L/r additions; exact
// <= would make eligibility flap on ties. Absolute epsilon scaled to the
// magnitude of the operands (the historic sched::vt_leq semantics).
[[nodiscard]] constexpr bool approx_leq(double a, double b) noexcept {
  const double aa = a < 0.0 ? -a : a;
  const double ab = b < 0.0 ? -b : b;
  const double mag = aa > ab ? aa : ab;
  return a <= b + 1e-9 * (mag > 1.0 ? mag : 1.0);
}

// ------------------------------------- compile-fail tests (the type gate)

namespace unit_detail {

template <typename A, typename B, typename = void>
struct addable : std::false_type {};
template <typename A, typename B>
struct addable<A, B,
               std::void_t<decltype(std::declval<A>() + std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct subtractable : std::false_type {};
template <typename A, typename B>
struct subtractable<
    A, B, std::void_t<decltype(std::declval<A>() - std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct dividable : std::false_type {};
template <typename A, typename B>
struct dividable<A, B,
                 std::void_t<decltype(std::declval<A>() / std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct comparable : std::false_type {};
template <typename A, typename B>
struct comparable<A, B,
                  std::void_t<decltype(std::declval<A>() < std::declval<B>())>>
    : std::true_type {};

}  // namespace unit_detail

// The physically meaningful algebra exists…
static_assert(unit_detail::addable<WallTime, Duration>::value);
static_assert(unit_detail::addable<VirtualTime, Duration>::value);
static_assert(unit_detail::subtractable<WallTime, WallTime>::value);
static_assert(unit_detail::subtractable<VirtualTime, VirtualTime>::value);
static_assert(unit_detail::dividable<Bits, RateBps>::value);
static_assert(unit_detail::dividable<RateBps, RateBps>::value);
static_assert(unit_detail::addable<VTicks, VTicks>::value);

// …and the meaningless expressions are rejected at compile time.
static_assert(!unit_detail::subtractable<WallTime, VirtualTime>::value,
              "wall-clock and virtual instants must not mix");
static_assert(!unit_detail::subtractable<VirtualTime, WallTime>::value,
              "wall-clock and virtual instants must not mix");
static_assert(!unit_detail::addable<WallTime, VirtualTime>::value,
              "wall-clock and virtual instants must not mix");
static_assert(!unit_detail::addable<WallTime, WallTime>::value,
              "adding two instants is meaningless (use a Duration)");
static_assert(!unit_detail::addable<VirtualTime, VirtualTime>::value,
              "adding two instants is meaningless (use a Duration)");
static_assert(!unit_detail::comparable<WallTime, VirtualTime>::value,
              "instants of different clocks are not ordered");
static_assert(!unit_detail::addable<Bits, Duration>::value,
              "bits and seconds do not add");
static_assert(!unit_detail::addable<Bits, RateBps>::value,
              "bits and bits/second do not add");
static_assert(!unit_detail::addable<VTicks, VirtualTime>::value,
              "ticks need an explicit quantization step to meet V(t)");
static_assert(!unit_detail::dividable<RateBps, Bits>::value,
              "seconds per bit is not a quantity this system uses");
static_assert(!std::is_convertible_v<double, VirtualTime>,
              "raw doubles must not silently become virtual time");
static_assert(!std::is_convertible_v<VirtualTime, double>,
              "virtual time must not silently decay to a raw double");
static_assert(!std::is_convertible_v<double, WallTime> &&
                  !std::is_convertible_v<WallTime, double>,
              "wall time construction/extraction must be explicit");
static_assert(!std::is_convertible_v<WallTime, VirtualTime> &&
                  !std::is_convertible_v<VirtualTime, WallTime>,
              "no conversion path between the two clocks");

// Zero-cost: plain scalars under the hood.
static_assert(std::is_trivially_copyable_v<WallTime> &&
              std::is_trivially_copyable_v<VirtualTime> &&
              std::is_trivially_copyable_v<Duration> &&
              std::is_trivially_copyable_v<Bits> &&
              std::is_trivially_copyable_v<RateBps> &&
              std::is_trivially_copyable_v<VTicks>);
static_assert(sizeof(VirtualTime) == sizeof(double) &&
              sizeof(WallTime) == sizeof(double) &&
              sizeof(VTicks) == sizeof(std::uint64_t));

}  // namespace hfq::units
