// Model-checker engine: cooperative scheduler + vector-clock memory model.
// See engine.h for the overall design. Execution model in one paragraph:
// every model thread runs on a dedicated OS worker that is parked on a
// per-thread Gate except for the window between "controller resumed it"
// and "it posted its next shared-memory op" — so exactly one model thread
// makes progress at any instant and the controller owns all shared engine
// state whenever a worker is parked. The handshake atomics carry
// acquire/release, which also keeps the host-level execution TSan/ASan
// clean.
#include "verify/engine.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <sstream>
#include <thread>

namespace hfq::verify {
namespace {

// Thrown into a worker to unwind user code when the engine tears an
// execution down; caught at the worker loop, never escapes.
struct AbortExec {};
// Thrown by verify::check() on a model thread.
struct VerifyFailEx {
  std::string msg;
};

thread_local int tls_tid = -1;

inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  // Fall back to a compiler barrier; the spin is bounded anyway.
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

// One-shot ping-pong gate. Strict alternation between controller and
// worker means at most one signal is ever outstanding.
class Gate {
 public:
  void signal() {
    flag_.store(1, std::memory_order_release);
    flag_.notify_one();
  }
  void wait() {
    // Spinning only helps when the signalling thread can run concurrently;
    // on a single hardware thread it burns the whole timeslice the peer
    // needs, so go straight to the futex there.
    static const int kSpins =
        std::thread::hardware_concurrency() > 1 ? 4096 : 0;
    for (int i = 0; i < kSpins; ++i) {
      if (flag_.load(std::memory_order_relaxed) != 0) break;
      cpu_pause();
    }
    while (flag_.exchange(0, std::memory_order_acquire) == 0) {
      flag_.wait(0, std::memory_order_relaxed);
    }
  }

 private:
  std::atomic<std::uint32_t> flag_{0};
};

constexpr int kMoRelaxed = static_cast<int>(std::memory_order_relaxed);
constexpr int kMoConsume = static_cast<int>(std::memory_order_consume);
constexpr int kMoAcquire = static_cast<int>(std::memory_order_acquire);
constexpr int kMoRelease = static_cast<int>(std::memory_order_release);
constexpr int kMoAcqRel = static_cast<int>(std::memory_order_acq_rel);
constexpr int kMoSeqCst = static_cast<int>(std::memory_order_seq_cst);

inline bool mo_acquires(int mo) {
  return mo == kMoConsume || mo == kMoAcquire || mo == kMoAcqRel ||
         mo == kMoSeqCst;
}
inline bool mo_releases(int mo) {
  return mo == kMoRelease || mo == kMoAcqRel || mo == kMoSeqCst;
}

const char* mo_str(int mo) {
  if (mo == kMoRelaxed) return "rlx";
  if (mo == kMoConsume) return "csm";
  if (mo == kMoAcquire) return "acq";
  if (mo == kMoRelease) return "rel";
  if (mo == kMoAcqRel) return "a/r";
  return "sc";
}

const char* kind_str(Op::Kind k) {
  switch (k) {
    case Op::Kind::kStart: return "start";
    case Op::Kind::kLoad: return "load";
    case Op::Kind::kStore: return "store";
    case Op::Kind::kFetchAdd: return "faa";
    case Op::Kind::kCas: return "cas";
    case Op::Kind::kExchange: return "xchg";
    case Op::Kind::kPlainRead: return "read";
    case Op::Kind::kPlainWrite: return "write";
    case Op::Kind::kYield: return "yield";
    case Op::Kind::kJoin: return "join";
  }
  return "?";
}

inline bool is_atomic_op(Op::Kind k) {
  return k == Op::Kind::kLoad || k == Op::Kind::kStore ||
         k == Op::Kind::kFetchAdd || k == Op::Kind::kCas ||
         k == Op::Kind::kExchange;
}
inline bool is_atomic_write(Op::Kind k) {
  return k == Op::Kind::kStore || k == Op::Kind::kFetchAdd ||
         k == Op::Kind::kCas || k == Op::Kind::kExchange;
}

inline std::uint64_t splitmix64(std::uint64_t& s) {
  std::uint64_t z = (s += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// One entry in an atomic object's modification order.
struct StoreRec {
  std::uint64_t value = 0;
  int writer = -1;
  int site = -1;
  ClockVec cw;            // writer's clock at the store (coherence floor)
  ClockVec release_view;  // view an acquire load of this store obtains
  bool is_release = false;
};

struct AtomicObj {
  std::vector<StoreRec> history;  // modification order, append-only
  std::array<int, kMaxThreads> obs{};  // newest index each thread has seen
  // Consecutive stale picks per thread; capped by Options::stale_streak to
  // model finite store-propagation time (without the cap, a spin loop
  // whose peer keeps writing unrelated state can legally read the same
  // stale flag forever and every such execution is infinite).
  std::array<int, kMaxThreads> stale_streak{};
  int last_sc = 0;  // index of newest seq_cst store (floor for sc loads)
};

// FastTrack-style epochs for a plain (non-atomic) cell.
struct PlainObj {
  int w_tid = -1;
  std::uint32_t w_epoch = 0;
  int w_site = -1;
  std::array<std::uint32_t, kMaxThreads> r_epoch{};
  std::array<int, kMaxThreads> r_site{};
};

struct ThreadState {
  std::function<void()> fn;
  Gate resume;
  std::thread os;
  bool active = false;
  bool finished = false;
  bool has_pending = false;
  Op pending;
  ClockVec clock;
};

// A decision point in the DFS stack. `list` is the candidate set in the
// order alternatives are tried; `cur` indexes the alternative taken on
// the current execution. Explored siblings list[0..cur-1] enter the
// sleep set of the subtree under list[cur].
struct Node {
  bool thread_choice = true;
  std::vector<int> list;
  std::size_t cur = 0;
};

enum class Mode { kDfs, kRandom, kReplay };

class Engine {
 public:
  static Engine& instance() {
    static Engine e;
    return e;
  }

  ~Engine() {
    if (!workers_started_) return;
    shutdown_.store(true, std::memory_order_release);
    for (auto& ts : threads_) ts.resume.signal();
    for (auto& ts : threads_) {
      if (ts.os.joinable()) ts.os.join();
    }
  }

  Result explore(const Options& o, const std::function<void()>& body) {
    std::lock_guard<std::mutex> g(api_mu_);
    begin_session(o, Mode::kDfs);
    Result res;
    for (;;) {
      run_one(body);
      res.stats.executions += 1;
      if (failed_exec_) {
        res.ok = false;
        res.failure = failure_;
        break;
      }
      if (!advance_stack()) break;  // DFS frontier exhausted: done
      if (o.max_executions != 0 && res.stats.executions >= o.max_executions) {
        res.ok = false;
        res.failure.kind = "budget";
        res.failure.message =
            "execution budget exhausted before the search space was covered";
        break;
      }
    }
    finish_session(res);
    return res;
  }

  Result explore_random(const Options& o, const std::function<void()>& body,
                        std::uint64_t schedules, std::uint64_t seed) {
    std::lock_guard<std::mutex> g(api_mu_);
    begin_session(o, Mode::kRandom);
    Result res;
    for (std::uint64_t i = 0; i < schedules; ++i) {
      rng_ = seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
      run_one(body);
      res.stats.executions += 1;
      if (failed_exec_) {
        res.ok = false;
        res.failure = failure_;
        break;
      }
    }
    finish_session(res);
    return res;
  }

  Result replay(const Options& o, const std::function<void()>& body,
                const std::string& schedule) {
    std::lock_guard<std::mutex> g(api_mu_);
    Options forced = o;
    forced.collect_trace = true;
    begin_session(forced, Mode::kReplay);
    replay_decisions_.clear();
    replay_pos_ = 0;
    if (!parse_schedule(schedule, replay_decisions_)) {
      Result bad;
      bad.ok = false;
      bad.failure.kind = "bad-schedule";
      bad.failure.message = "unparseable schedule string: " + schedule;
      return bad;
    }
    Result res;
    run_one(body);
    res.stats.executions = 1;
    if (failed_exec_) {
      res.ok = false;
      res.failure = failure_;
    }
    res.trace.assign(trace_.begin(), trace_.end());
    finish_session(res);
    return res;
  }

  // ---- shim entry points (called from model-thread workers) ----

  bool model_active() const noexcept {
    return exec_active_ && tls_tid >= 0 && !aborting_;
  }
  bool aborting() const noexcept { return aborting_; }
  std::uint32_t generation() const noexcept { return exec_gen_; }

  int register_atomic(std::uint64_t init) {
    atomics_.emplace_back();
    AtomicObj& a = atomics_.back();
    StoreRec s;
    s.value = init;
    // The constructing thread's clock orders initialization before any
    // access reachable from it (thread creation joins clocks).
    if (tls_tid >= 0) {
      s.writer = tls_tid;
      s.cw = threads_[static_cast<std::size_t>(tls_tid)].clock;
      s.release_view = s.cw;
    }
    s.is_release = true;
    a.history.push_back(s);
    return static_cast<int>(atomics_.size()) - 1;
  }

  int register_plain() {
    plains_.emplace_back();
    return static_cast<int>(plains_.size()) - 1;
  }

  Op perform_scheduled(Op op) {
    ThreadState& ts = threads_[static_cast<std::size_t>(tls_tid)];
    ts.pending = op;
    ts.has_pending = true;
    ctrl_gate_.signal();
    ts.resume.wait();
    if (aborting_) throw AbortExec{};
    return ts.pending;
  }

  // Teardown / out-of-schedule path: apply against the store history
  // without clocks, decisions, or race checks. Only the unwinding worker
  // runs at this point (abort resumes workers one at a time), so this is
  // single-threaded.
  Op perform_direct(Op op) {
    if (op.obj < 0) return op;
    if (is_atomic_op(op.kind)) {
      AtomicObj& a = atomics_[static_cast<std::size_t>(op.obj)];
      StoreRec& last = a.history.back();
      switch (op.kind) {
        case Op::Kind::kLoad:
          op.result = last.value;
          break;
        case Op::Kind::kStore: {
          StoreRec s;
          s.value = op.value;
          a.history.push_back(s);
          break;
        }
        case Op::Kind::kFetchAdd: {
          op.result = last.value;
          StoreRec s;
          s.value = last.value + op.value;
          a.history.push_back(s);
          break;
        }
        case Op::Kind::kExchange: {
          op.result = last.value;
          StoreRec s;
          s.value = op.value;
          a.history.push_back(s);
          break;
        }
        case Op::Kind::kCas: {
          op.result = last.value;
          op.cas_ok = last.value == op.expected;
          if (op.cas_ok) {
            StoreRec s;
            s.value = op.value;
            a.history.push_back(s);
          }
          break;
        }
        default:
          break;
      }
    }
    return op;
  }

  std::uint64_t write_counter() const noexcept { return write_counter_; }

  int spawn(std::function<void()> fn) {
    if (num_threads_ >= kMaxThreads) {
      throw VerifyFailEx{"scenario spawns more than kMaxThreads threads"};
    }
    int tid = num_threads_++;
    ThreadState& ts = threads_[static_cast<std::size_t>(tid)];
    ts.fn = std::move(fn);
    ts.active = true;
    ts.finished = false;
    // Child inherits the parent's view: spawn happens-before the child's
    // first step.
    ts.clock = threads_[static_cast<std::size_t>(tls_tid)].clock;
    ts.pending = Op{};
    ts.pending.kind = Op::Kind::kStart;
    ts.has_pending = true;
    return tid;
  }

  void fail_from_worker(const char* kind, std::string msg) {
    // Controller is blocked on ctrl_gate_ while this worker runs, so the
    // write is exclusive.
    if (!failed_exec_) {
      failed_exec_ = true;
      failure_.kind = kind;
      failure_.message = std::move(msg);
      failure_.schedule = make_schedule();
      failure_.trace.assign(trace_.begin(), trace_.end());
    }
  }

  void worker_finished() {
    threads_[static_cast<std::size_t>(tls_tid)].finished = true;
    ctrl_gate_.signal();
  }

  void ensure_workers() {
    if (workers_started_) return;
    workers_started_ = true;
    for (int i = 0; i < kMaxThreads; ++i) {
      threads_[static_cast<std::size_t>(i)].os =
          std::thread([this, i] { worker_main(i); });
    }
  }

  bool shutting_down() const noexcept {
    return shutdown_.load(std::memory_order_acquire);
  }
  Gate& resume_gate(int tid) {
    return threads_[static_cast<std::size_t>(tid)].resume;
  }
  std::function<void()>& fn_of(int tid) {
    return threads_[static_cast<std::size_t>(tid)].fn;
  }

 private:
  void worker_main(int tid) {
    tls_tid = tid;
    ThreadState& ts = threads_[static_cast<std::size_t>(tid)];
    for (;;) {
      ts.resume.wait();
      if (shutdown_.load(std::memory_order_acquire)) return;
      if (aborting_) {
        // Spawned this execution but torn down before its kStart ran.
        ts.finished = true;
        ctrl_gate_.signal();
        continue;
      }
      try {
        ts.fn();
      } catch (const AbortExec&) {
        // unwound by teardown; nothing to record
      } catch (const VerifyFailEx& e) {
        fail_from_worker("assert", e.msg);
      } catch (const std::exception& e) {
        fail_from_worker("exception",
                         std::string("model thread threw: ") + e.what());
      } catch (...) {
        fail_from_worker("exception", "model thread threw a non-std exception");
      }
      ts.finished = true;
      ctrl_gate_.signal();
    }
  }

  void begin_session(const Options& o, Mode m) {
    ensure_workers();
    opts_ = o;
    mode_ = m;
    stack_.clear();
    cum_steps_ = 0;
    cum_decisions_ = 0;
    cum_pruned_ = 0;
    max_depth_ = 0;
  }

  void finish_session(Result& res) {
    res.stats.steps = cum_steps_;
    res.stats.decisions = cum_decisions_;
    res.stats.sleep_pruned = cum_pruned_;
    res.stats.max_depth = max_depth_;
    exec_active_ = false;
  }

  bool runnable(const ThreadState& ts) const {
    if (!ts.active || ts.finished || !ts.has_pending) return false;
    if (ts.pending.kind == Op::Kind::kJoin) {
      return threads_[static_cast<std::size_t>(ts.pending.join_target)]
          .finished;
    }
    if (ts.pending.kind == Op::Kind::kYield) {
      // Parked until some write lands after the yield was posted; the
      // snapshot in `value` closes the lost-wakeup window (no other
      // thread can run between the spinner's last load and its yield
      // being posted, so any write it could miss bumps the counter
      // before the yield is applied). Quiescent wakeups arrive as
      // virtual-flush bumps of write_counter_ (see run_one), so a woken
      // spinner that makes no progress parks again instead of staying
      // schedulable forever.
      return write_counter_ > ts.pending.value;
    }
    return true;
  }

  std::string make_schedule() const {
    std::ostringstream os;
    os << "hfqv1:";
    for (std::size_t i = 0; i < decision_log_.size(); ++i) {
      if (i != 0) os << '.';
      os << decision_log_[i];
    }
    return os.str();
  }

  static bool parse_schedule(const std::string& s, std::vector<int>& out) {
    const std::string tag = "hfqv1:";
    if (s.rfind(tag, 0) != 0) return false;
    std::size_t i = tag.size();
    while (i < s.size()) {
      int v = 0;
      bool any = false;
      while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
        v = v * 10 + (s[i] - '0');
        any = true;
        ++i;
      }
      if (!any) return false;
      out.push_back(v);
      if (i < s.size()) {
        if (s[i] != '.') return false;
        ++i;
      }
    }
    return true;
  }

  void record_trace(int tid, const Op& op, const char* extra) {
    // Formatting every applied op costs more than applying it; exhaustive
    // runs cover millions of steps, so the rolling log only exists when a
    // trace was asked for. Counterexamples still carry their schedule
    // string, and --replay (which forces collect_trace) rebuilds the full
    // trace deterministically.
    if (!opts_.collect_trace) return;
    std::ostringstream os;
    os << 't' << tid << ' ' << kind_str(op.kind);
    if (is_atomic_op(op.kind)) {
      os << " a" << op.obj << ' ' << mo_str(op.mo);
      if (op.kind == Op::Kind::kStore || op.kind == Op::Kind::kExchange ||
          op.kind == Op::Kind::kCas) {
        os << " v=" << op.value;
      }
      if (op.kind == Op::Kind::kFetchAdd) os << " +" << op.value;
      if (op.kind != Op::Kind::kStore) os << " -> " << op.result;
      if (op.kind == Op::Kind::kCas) os << (op.cas_ok ? " ok" : " fail");
    } else if (op.kind == Op::Kind::kPlainRead ||
               op.kind == Op::Kind::kPlainWrite) {
      os << " p" << op.obj;
    } else if (op.kind == Op::Kind::kJoin) {
      os << " t" << op.join_target;
    }
    if (op.site >= 0) os << " @" << SiteTable::instance().label(op.site);
    if (extra != nullptr) os << ' ' << extra;
    trace_.push_back(os.str());
  }

  int decide(bool thread_choice, const std::vector<int>& list) {
    if (list.size() == 1) return list[0];
    cum_decisions_ += 1;
    int chosen = list[0];
    switch (mode_) {
      case Mode::kDfs: {
        if (depth_ < stack_.size()) {
          Node& n = stack_[depth_];
          chosen = n.list[n.cur];
          if (thread_choice && opts_.sleep_sets) {
            for (std::size_t i = 0; i < n.cur; ++i) {
              cur_sleep_ |= 1u << static_cast<unsigned>(n.list[i]);
            }
          }
        } else {
          Node n;
          n.thread_choice = thread_choice;
          n.list = list;
          stack_.push_back(std::move(n));
        }
        depth_ += 1;
        if (depth_ > max_depth_) max_depth_ = depth_;
        break;
      }
      case Mode::kRandom:
        chosen = list[splitmix64(rng_) % list.size()];
        break;
      case Mode::kReplay: {
        if (replay_pos_ < replay_decisions_.size()) {
          int want = replay_decisions_[replay_pos_++];
          bool found = false;
          for (int v : list) {
            if (v == want) {
              found = true;
              break;
            }
          }
          // A stale schedule (code changed since it was printed) falls
          // back to the first candidate rather than crashing; the trace
          // will show the divergence point.
          chosen = found ? want : list[0];
        }
        break;
      }
    }
    decision_log_.push_back(chosen);
    return chosen;
  }

  bool dependent(const Op& a, const Op& b) const {
    if (a.kind == Op::Kind::kStart || b.kind == Op::Kind::kStart ||
        a.kind == Op::Kind::kJoin || b.kind == Op::Kind::kJoin) {
      // Start touches no shared state. Join only becomes pending-enabled
      // once its target has finished (a sleeping thread was enabled when
      // explored), and then merely merges the target's final clock — a
      // commutative join no other live op can change. Both commute with
      // every op, and sleep-set theory needs only next-op commutativity.
      return false;
    }
    // A parked yield's enabledness flips on any write.
    bool a_write = is_atomic_write(a.kind) || a.kind == Op::Kind::kPlainWrite;
    bool b_write = is_atomic_write(b.kind) || b.kind == Op::Kind::kPlainWrite;
    if (a.kind == Op::Kind::kYield) return b_write;
    if (b.kind == Op::Kind::kYield) return a_write;
    // seq_cst ops interact through the global SC clock regardless of obj.
    if (is_atomic_op(a.kind) && is_atomic_op(b.kind) && a.mo == kMoSeqCst &&
        b.mo == kMoSeqCst) {
      return true;
    }
    bool a_plain =
        a.kind == Op::Kind::kPlainRead || a.kind == Op::Kind::kPlainWrite;
    bool b_plain =
        b.kind == Op::Kind::kPlainRead || b.kind == Op::Kind::kPlainWrite;
    if (a_plain != b_plain) return false;  // distinct object namespaces
    if (a.obj != b.obj) return false;
    return a_write || b_write;
  }

  void fail_from_controller(const char* kind, std::string msg) {
    if (failed_exec_) return;
    failed_exec_ = true;
    failure_.kind = kind;
    failure_.message = std::move(msg);
    failure_.schedule = make_schedule();
    failure_.trace.assign(trace_.begin(), trace_.end());
  }

  // Apply thread t's pending op against the memory model. May consume a
  // visibility decision (relaxed-mode loads) and may record a failure
  // (plain-cell race).
  void apply_op(int t) {
    ThreadState& ts = threads_[static_cast<std::size_t>(t)];
    Op& op = ts.pending;
    ClockVec& c = ts.clock;
    c.tick(t);
    const int mo = SiteTable::instance().effective(op.site, op.mo);
    op.mo = mo;  // trace shows the effective (possibly mutated) order
    if (op.site >= 0) SiteTable::instance().note_hit(op.site);
    switch (op.kind) {
      case Op::Kind::kStart:
      case Op::Kind::kYield:
        break;
      case Op::Kind::kJoin:
        c.join(threads_[static_cast<std::size_t>(op.join_target)].clock);
        break;
      case Op::Kind::kLoad: {
        AtomicObj& a = atomics_[static_cast<std::size_t>(op.obj)];
        const int n = static_cast<int>(a.history.size());
        int floor = a.obs[static_cast<std::size_t>(t)];
        for (int j = n - 1; j > floor; --j) {
          if (a.history[static_cast<std::size_t>(j)].cw.leq(c)) {
            floor = j;  // newest store that happens-before this load
            break;
          }
        }
        if (mo == kMoSeqCst && a.last_sc > floor) floor = a.last_sc;
        int pick = n - 1;
        int& streak = a.stale_streak[static_cast<std::size_t>(t)];
        if (opts_.relaxed_memory && !force_fresh_ && floor < n - 1 &&
            streak < opts_.stale_streak) {
          // Bounded staleness: enumerate at most stale_choices readable
          // stores — always the stalest legal one (most adversarial) and
          // the newest, then intermediates newest-first if the budget
          // allows. Intermediate picks multiply the search space but
          // almost never expose bugs the two extremes don't.
          std::vector<int> choices;
          const int budget = opts_.stale_choices < 2 ? 2 : opts_.stale_choices;
          choices.push_back(floor);
          const int lo = floor + 1 > n - budget + 1 ? floor + 1
                                                    : n - budget + 1;
          for (int j = lo; j < n; ++j) choices.push_back(j);
          pick = decide(false, choices);
        }
        streak = pick < n - 1 ? streak + 1 : 0;
        StoreRec& s = a.history[static_cast<std::size_t>(pick)];
        a.obs[static_cast<std::size_t>(t)] = pick;
        op.result = s.value;
        if (mo_acquires(mo) && s.is_release) c.join(s.release_view);
        if (mo == kMoSeqCst) {
          c.join(sc_clock_);
          sc_clock_.join(c);
        }
        break;
      }
      case Op::Kind::kStore: {
        AtomicObj& a = atomics_[static_cast<std::size_t>(op.obj)];
        if (mo == kMoSeqCst) {
          c.join(sc_clock_);
          sc_clock_.join(c);
        }
        StoreRec s;
        s.value = op.value;
        s.writer = t;
        s.site = op.site;
        s.cw = c;
        if (mo_releases(mo)) {
          s.is_release = true;
          s.release_view = c;
        }
        a.history.push_back(std::move(s));
        const int idx = static_cast<int>(a.history.size()) - 1;
        a.obs[static_cast<std::size_t>(t)] = idx;
        if (mo == kMoSeqCst) a.last_sc = idx;
        write_counter_ += 1;
        break;
      }
      case Op::Kind::kFetchAdd:
      case Op::Kind::kExchange:
      case Op::Kind::kCas: {
        AtomicObj& a = atomics_[static_cast<std::size_t>(op.obj)];
        // An RMW always reads the newest store in modification order.
        StoreRec& last = a.history.back();
        op.result = last.value;
        const bool success =
            op.kind != Op::Kind::kCas || last.value == op.expected;
        if (!success) {
          // Failed CAS is a load of `last` with the failure order.
          const int fmo = op.mo_fail;
          op.cas_ok = false;
          a.obs[static_cast<std::size_t>(t)] =
              static_cast<int>(a.history.size()) - 1;
          if (mo_acquires(fmo) && last.is_release) c.join(last.release_view);
          if (fmo == kMoSeqCst) {
            c.join(sc_clock_);
            sc_clock_.join(c);
          }
          break;
        }
        if (mo == kMoSeqCst) {
          c.join(sc_clock_);
          sc_clock_.join(c);
        }
        if (mo_acquires(mo) && last.is_release) c.join(last.release_view);
        StoreRec s;
        s.writer = t;
        s.site = op.site;
        if (op.kind == Op::Kind::kFetchAdd) {
          s.value = last.value + op.value;
        } else {
          s.value = op.value;
        }
        // Release-sequence approximation: an RMW extends the sequence, so
        // an acquire load of this store still synchronizes with the head.
        s.is_release = last.is_release || mo_releases(mo);
        if (last.is_release) s.release_view = last.release_view;
        if (mo_releases(mo)) s.release_view.join(c);
        s.cw = c;
        a.history.push_back(std::move(s));
        const int idx = static_cast<int>(a.history.size()) - 1;
        a.obs[static_cast<std::size_t>(t)] = idx;
        if (mo == kMoSeqCst) a.last_sc = idx;
        op.cas_ok = true;
        write_counter_ += 1;
        break;
      }
      case Op::Kind::kPlainRead: {
        PlainObj& p = plains_[static_cast<std::size_t>(op.obj)];
        if (p.w_tid >= 0 &&
            p.w_epoch > c.v[static_cast<std::size_t>(p.w_tid)]) {
          race_failure(op.obj, "write", p.w_site, "read", op.site);
          return;
        }
        p.r_epoch[static_cast<std::size_t>(t)] =
            c.v[static_cast<std::size_t>(t)];
        p.r_site[static_cast<std::size_t>(t)] = op.site;
        break;
      }
      case Op::Kind::kPlainWrite: {
        PlainObj& p = plains_[static_cast<std::size_t>(op.obj)];
        if (p.w_tid >= 0 &&
            p.w_epoch > c.v[static_cast<std::size_t>(p.w_tid)]) {
          race_failure(op.obj, "write", p.w_site, "write", op.site);
          return;
        }
        for (int u = 0; u < kMaxThreads; ++u) {
          if (u == t) continue;
          if (p.r_epoch[static_cast<std::size_t>(u)] >
              c.v[static_cast<std::size_t>(u)]) {
            race_failure(op.obj, "read", p.r_site[static_cast<std::size_t>(u)],
                         "write", op.site);
            return;
          }
        }
        p.w_tid = t;
        p.w_epoch = c.v[static_cast<std::size_t>(t)];
        p.w_site = op.site;
        // A race-free write happens-after every recorded read; reset the
        // read epochs so stale entries don't trip later writes.
        p.r_epoch.fill(0);
        break;
      }
    }
    record_trace(t, op, nullptr);
  }

  void race_failure(int obj, const char* k1, int site1, const char* k2,
                    int site2) {
    std::ostringstream os;
    os << "data race on plain cell p" << obj << ": " << k1 << " @"
       << SiteTable::instance().label(site1) << " unordered with " << k2
       << " @" << SiteTable::instance().label(site2);
    fail_from_controller("race", os.str());
  }

  // Resume every unfinished worker, one at a time, letting each unwind
  // via AbortExec (or observe aborting_ at its loop top).
  void abort_all() {
    aborting_ = true;
    for (int t = 0; t < kMaxThreads; ++t) {
      ThreadState& ts = threads_[static_cast<std::size_t>(t)];
      if (!ts.active || ts.finished) continue;
      ts.resume.signal();
      ctrl_gate_.wait();
    }
    aborting_ = false;
  }

  bool advance_stack() {
    while (!stack_.empty()) {
      Node& n = stack_.back();
      if (n.cur + 1 < n.list.size()) {
        n.cur += 1;
        return true;
      }
      stack_.pop_back();
    }
    return false;
  }

  void run_one(const std::function<void()>& body) {
    exec_gen_ += 1;
    atomics_.clear();
    plains_.clear();
    sc_clock_ = ClockVec{};
    write_counter_ = 0;
    force_fresh_ = false;
    writes_at_last_flush_ = ~std::uint64_t{0};
    cur_sleep_ = 0;
    depth_ = 0;
    preemptions_ = 0;
    last_run_ = -1;
    decision_log_.clear();
    trace_.clear();
    failed_exec_ = false;
    aborting_ = false;
    for (auto& ts : threads_) {
      ts.active = false;
      ts.finished = false;
      ts.has_pending = false;
      ts.clock = ClockVec{};
      ts.fn = nullptr;
    }
    num_threads_ = 1;
    ThreadState& t0 = threads_[0];
    t0.active = true;
    t0.fn = body;
    t0.pending = Op{};
    t0.pending.kind = Op::Kind::kStart;
    t0.has_pending = true;
    exec_active_ = true;

    std::uint64_t steps = 0;
    bool need_abort = false;
    for (;;) {
      std::vector<int> enabled;
      bool any_unfinished = false;
      for (int t = 0; t < num_threads_; ++t) {
        const ThreadState& ts = threads_[static_cast<std::size_t>(t)];
        if (!ts.active || ts.finished) continue;
        any_unfinished = true;
        if (runnable(ts)) enabled.push_back(t);
      }
      if (!any_unfinished) break;  // normal completion
      if (enabled.empty()) {
        // Eventual visibility: hardware propagates stores in finite time,
        // so a quiescent spin-waiter cannot legally read a stale flag
        // forever. When nothing can run but a yield-parked spinner
        // exists, issue a virtual flush: pin all further loads to the
        // newest store (sound — newest is always a legal visibility
        // choice) and bump write_counter_ once so every parked spinner
        // wakes, re-reads fresh state, and either progresses or parks
        // again. A second quiescence with no real write in between means
        // the spinners saw the final state and still spun: genuine
        // deadlock, reported below.
        bool any_spinner = false;
        for (int t = 0; t < num_threads_; ++t) {
          const ThreadState& ts = threads_[static_cast<std::size_t>(t)];
          if (ts.active && !ts.finished && ts.has_pending &&
              ts.pending.kind == Op::Kind::kYield) {
            any_spinner = true;
            break;
          }
        }
        if (any_spinner && write_counter_ != writes_at_last_flush_) {
          force_fresh_ = true;
          write_counter_ += 1;
          writes_at_last_flush_ = write_counter_;
          continue;
        }
      }
      if (enabled.empty()) {
        std::ostringstream os;
        os << "no runnable thread; blocked:";
        for (int t = 0; t < num_threads_; ++t) {
          const ThreadState& ts = threads_[static_cast<std::size_t>(t)];
          if (ts.active && !ts.finished) {
            os << " t" << t << '(' << kind_str(ts.pending.kind) << ')';
          }
        }
        fail_from_controller("deadlock", os.str());
        need_abort = true;
        break;
      }
      std::vector<int> cands;
      const bool bound_hit = opts_.preemption_bound >= 0 &&
                             preemptions_ >= opts_.preemption_bound;
      bool last_enabled = false;
      for (int t : enabled) {
        if (t == last_run_) last_enabled = true;
      }
      if (bound_hit && last_enabled) {
        // Out of preemption budget: must keep running the current thread
        // until it blocks or finishes (CHESS).
        cands.push_back(last_run_);
      } else {
        for (int t : enabled) {
          if (opts_.sleep_sets && mode_ == Mode::kDfs &&
              ((cur_sleep_ >> static_cast<unsigned>(t)) & 1u) != 0) {
            continue;
          }
          cands.push_back(t);
        }
        if (cands.empty()) {
          // Every enabled thread is asleep: this continuation is a
          // reordering of an already-explored one.
          cum_pruned_ += 1;
          need_abort = true;
          break;
        }
      }
      const int t = decide(true, cands);
      if (last_run_ >= 0 && t != last_run_ && last_enabled) preemptions_ += 1;
      apply_op(t);
      steps += 1;
      cum_steps_ += 1;
      if (failed_exec_) {
        need_abort = true;
        break;
      }
      if (steps > opts_.max_steps) {
        fail_from_controller(
            "livelock", "per-execution step budget exceeded (max_steps)");
        need_abort = true;
        break;
      }
      if (opts_.sleep_sets && mode_ == Mode::kDfs && cur_sleep_ != 0) {
        const Op applied = threads_[static_cast<std::size_t>(t)].pending;
        for (int u = 0; u < num_threads_; ++u) {
          if (((cur_sleep_ >> static_cast<unsigned>(u)) & 1u) == 0) continue;
          const ThreadState& us = threads_[static_cast<std::size_t>(u)];
          if (us.has_pending && dependent(applied, us.pending)) {
            cur_sleep_ &= ~(1u << static_cast<unsigned>(u));
          }
        }
      }
      last_run_ = t;
      ThreadState& ts = threads_[static_cast<std::size_t>(t)];
      ts.has_pending = false;
      ts.resume.signal();
      ctrl_gate_.wait();
      if (failed_exec_) {
        need_abort = true;
        break;
      }
    }
    if (need_abort) abort_all();
    exec_active_ = false;
  }

  friend Result explore(const Options&, const std::function<void()>&);

 public:
  // Shared with the detail:: free functions below.
  std::array<ThreadState, kMaxThreads> threads_;
  Gate ctrl_gate_;
  std::mutex api_mu_;
  std::atomic<bool> shutdown_{false};
  bool workers_started_ = false;

  Options opts_;
  Mode mode_ = Mode::kDfs;
  bool exec_active_ = false;
  bool aborting_ = false;
  bool failed_exec_ = false;
  Failure failure_;
  std::uint32_t exec_gen_ = 0;
  int num_threads_ = 0;

  std::vector<AtomicObj> atomics_;
  std::vector<PlainObj> plains_;
  ClockVec sc_clock_;
  std::uint64_t write_counter_ = 0;
  bool force_fresh_ = false;  // quiescent eventual-visibility mode
  // write_counter_ value right after the last virtual flush; equality at
  // the next quiescence means no real write happened since — deadlock.
  std::uint64_t writes_at_last_flush_ = ~std::uint64_t{0};

  std::vector<Node> stack_;
  std::size_t depth_ = 0;
  std::uint32_t cur_sleep_ = 0;
  int preemptions_ = 0;
  int last_run_ = -1;
  std::vector<int> decision_log_;
  std::vector<std::string> trace_;
  std::vector<int> replay_decisions_;
  std::size_t replay_pos_ = 0;
  std::uint64_t rng_ = 0;

  std::uint64_t cum_steps_ = 0;
  std::uint64_t cum_decisions_ = 0;
  std::uint64_t cum_pruned_ = 0;
  std::uint64_t max_depth_ = 0;
};

}  // namespace

// ---- SiteTable -------------------------------------------------------------

SiteTable& SiteTable::instance() {
  static SiteTable t;
  return t;
}

int SiteTable::intern(const char* file, unsigned line, Op::Kind kind,
                      int declared_mo) {
  auto key = std::make_tuple(std::string(file), line, static_cast<int>(kind));
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  SiteInfo info;
  info.file = file;
  info.line = line;
  info.kind = kind;
  info.declared_mo = declared_mo;
  sites_.push_back(std::move(info));
  const int id = static_cast<int>(sites_.size()) - 1;
  index_.emplace(std::move(key), id);
  return id;
}

std::string SiteTable::label(int site) const {
  if (site < 0 || site >= static_cast<int>(sites_.size())) return "<?>";
  const SiteInfo& s = sites_[static_cast<std::size_t>(site)];
  // Strip the directory: scenario output should be stable across build
  // trees.
  std::size_t slash = s.file.find_last_of('/');
  std::string base =
      slash == std::string::npos ? s.file : s.file.substr(slash + 1);
  std::ostringstream os;
  os << base << ':' << s.line << ' ' << kind_str(s.kind);
  return os.str();
}

void SiteTable::set_override(int site, int mo) { overrides_[site] = mo; }
void SiteTable::clear_overrides() { overrides_.clear(); }

int SiteTable::effective(int site, int declared_mo) const {
  auto it = overrides_.find(site);
  return it == overrides_.end() ? declared_mo : it->second;
}

void SiteTable::note_hit(int site) {
  if (site >= 0 && site < static_cast<int>(sites_.size())) {
    sites_[static_cast<std::size_t>(site)].hits += 1;
  }
}

void SiteTable::reset() {
  sites_.clear();
  index_.clear();
  overrides_.clear();
}

// ---- public entry points ---------------------------------------------------

Result explore(const Options& opts, const std::function<void()>& body) {
  return Engine::instance().explore(opts, body);
}

Result explore_random(const Options& opts, const std::function<void()>& body,
                      std::uint64_t schedules, std::uint64_t seed) {
  return Engine::instance().explore_random(opts, body, schedules, seed);
}

Result replay(const Options& opts, const std::function<void()>& body,
              const std::string& schedule) {
  return Engine::instance().replay(opts, body, schedule);
}

void check(bool cond, const char* msg) {
  if (cond) return;
  Engine& e = Engine::instance();
  if (e.model_active()) throw VerifyFailEx{msg};
  if (!e.aborting()) throw std::runtime_error(std::string("verify: ") + msg);
}

bool aborting() noexcept { return Engine::instance().aborting(); }

// ---- shim support (detail) -------------------------------------------------

namespace detail {

bool model_active() noexcept { return Engine::instance().model_active(); }
std::uint32_t exec_generation() noexcept {
  return Engine::instance().generation();
}

int register_atomic(std::uint64_t init) {
  Engine& e = Engine::instance();
  if (!e.model_active()) return -1;
  return e.register_atomic(init);
}

int register_plain() {
  Engine& e = Engine::instance();
  if (!e.model_active()) return -1;
  return e.register_plain();
}

Op perform(Op op) {
  Engine& e = Engine::instance();
  if (!e.model_active()) return e.perform_direct(op);
  return e.perform_scheduled(op);
}

int intern_site(const char* file, unsigned line, Op::Kind k, int declared_mo) {
  return SiteTable::instance().intern(file, line, k, declared_mo);
}

int spawn(std::function<void()> fn) {
  Engine& e = Engine::instance();
  check(e.model_active(), "verify::thread spawned outside a model execution");
  return e.spawn(std::move(fn));
}

void join(int tid, int site) {
  Engine& e = Engine::instance();
  if (!e.model_active()) return;  // teardown: target is unwound by abort_all
  Op op;
  op.kind = Op::Kind::kJoin;
  op.join_target = tid;
  op.site = site;
  e.perform_scheduled(op);
}

void yield_point(int site) {
  Engine& e = Engine::instance();
  if (!e.model_active()) return;
  Op op;
  op.kind = Op::Kind::kYield;
  op.site = site;
  op.value = e.write_counter();  // lost-wakeup guard, see runnable()
  e.perform_scheduled(op);
}

}  // namespace detail
}  // namespace hfq::verify
