// Deterministic concurrency model checker for the lock-free service layer
// (DESIGN.md "Concurrency verification").
//
// The service's correctness argument (src/serve/: Vyukov MPSC ring, epoch
// ticket/ack edits, shard loop) rests on ~65 memory_order annotations that a
// TSan soak only samples. This engine *schedules* those annotations: checked
// code is compiled against verify::atomic<T> / verify::var<T>
// (src/verify/shim.h), every shared-memory access becomes a scheduling
// point, and the Engine enumerates interleavings —
//
//   - exhaustively, depth-first over scheduling decisions with iterative
//     context (preemption) bounding in the CHESS style and sleep-set
//     pruning, for small configurations (2-3 threads, capacity-4 ring);
//   - randomly, SplitMix64-seeded, for larger ones;
//   - or replaying one printed schedule string, for counterexample triage.
//
// Memory is modelled operationally with vector clocks (one lane per model
// thread):
//
//   - every atomic object keeps its full modification-order store history;
//     a load may read any store not superseded for the loading thread
//     (coherence floor = later of: last store this thread observed, newest
//     store that happens-before the load). In relaxed-memory mode the pick
//     among visible stores is itself a recorded decision, which simulates
//     weaker-than-x86 reordering: a missing release/acquire pair produces a
//     stale read here even though x86's strong loads would hide it.
//   - release stores capture the writer's clock; acquire loads that read
//     them join it (RMWs propagate the release view, approximating release
//     sequences). seq_cst ops additionally join through a global SC clock,
//     which orders them pairwise (Dekker-style store/load cases included).
//   - verify::var<T> (plain, non-atomic data such as the ring slot payload)
//     performs FastTrack-style race detection against those clocks: any
//     unordered read/write pair is reported as a race with both source
//     sites. This is what makes ordering mutations observable — weakening a
//     publish store from release to relaxed severs the happens-before edge
//     and the payload access races deterministically.
//
// Checked code is *unmodified*: the serve templates accept the atomic
// template as a parameter, and every shim operation records its call site
// via std::source_location, so the mutation harness (verify/mutate.h) can
// weaken one annotation at a time without touching the source.
//
// Failures (assertion, race, deadlock, livelock) carry a schedule string
// ("hfqv1:3.0.1...") that replays the exact execution deterministically.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <tuple>
#include <vector>

namespace hfq::verify {

// Model-thread limit. Clocks are fixed arrays sized by this, and schedule
// strings encode thread ids directly; the service scenarios need at most
// 1 consumer + 2-3 producers + 1 control thread.
inline constexpr int kMaxThreads = 8;

// Vector clock over model threads. Lane t counts thread t's scheduled
// steps; happens-before is the pointwise order.
struct ClockVec {
  std::array<std::uint32_t, kMaxThreads> v{};

  void tick(int tid) noexcept { v[static_cast<std::size_t>(tid)] += 1; }
  void join(const ClockVec& o) noexcept {
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (o.v[i] > v[i]) v[i] = o.v[i];
    }
  }
  [[nodiscard]] bool leq(const ClockVec& o) const noexcept {
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (v[i] > o.v[i]) return false;
    }
    return true;
  }
};

// One scheduled operation. Registered by the shim *before* it executes, so
// the scheduler knows every paused thread's imminent access (that is what
// makes sleep-set independence checks and preemption decisions exact).
struct Op {
  enum class Kind : std::uint8_t {
    kStart,     // thread's first step: run user code to the first access
    kLoad,
    kStore,
    kFetchAdd,
    kCas,       // compare_exchange (modelled without spurious failure)
    kExchange,
    kPlainRead,   // verify::var<T> access — race-checked, never reordered
    kPlainWrite,
    kYield,     // cooperative backoff: parked until another thread steps
    kJoin,      // blocked until the target thread finishes
  };
  Kind kind = Kind::kStart;
  int obj = -1;                // atomic id (kLoad..kExchange) or plain id
  std::uint64_t value = 0;     // store value / desired / add delta
  std::uint64_t expected = 0;  // CAS comparand
  int mo = 0;                  // declared std::memory_order (int-cast)
  int mo_fail = 0;             // CAS failure order
  int site = -1;               // SiteTable id of the call site
  int join_target = -1;
  // Results, filled by the engine when the op is applied.
  std::uint64_t result = 0;
  bool cas_ok = false;
};

// --- call-site registry + memory_order mutation -----------------------------

// Every shim operation is keyed by (file, line, op kind) captured with
// std::source_location. The table records the declared memory_order the
// first time a site executes and lets the mutation harness substitute a
// weaker one at apply time — the checked source is never edited.
struct SiteInfo {
  std::string file;            // as spelled by source_location
  unsigned line = 0;
  Op::Kind kind = Op::Kind::kLoad;
  int declared_mo = 0;         // std::memory_order as int
  std::uint64_t hits = 0;      // ops applied through this site
};

class SiteTable {
 public:
  static SiteTable& instance();

  int intern(const char* file, unsigned line, Op::Kind kind, int declared_mo);
  [[nodiscard]] const std::vector<SiteInfo>& sites() const { return sites_; }
  [[nodiscard]] std::string label(int site) const;  // "mpsc_ring.h:66 store"

  void set_override(int site, int mo);
  void clear_overrides();
  [[nodiscard]] int effective(int site, int declared_mo) const;
  void note_hit(int site);

  // Drops all sites and overrides; the mutation harness resets between
  // discovery and injection phases so hit counts are per-phase.
  void reset();

 private:
  std::vector<SiteInfo> sites_;
  std::map<std::tuple<std::string, unsigned, int>, int> index_;
  std::map<int, int> overrides_;
};

// --- exploration interface ---------------------------------------------------

struct Options {
  // Simulate weaker-than-x86 visibility: loads may read any
  // coherence-permitted stale store (each pick is a recorded decision).
  // When false, loads read the newest store — pure interleaving semantics —
  // but vector-clock race detection stays on either way.
  bool relaxed_memory = true;
  // CHESS-style preemption bound; < 0 = unbounded. Context switches at
  // blocking/parked points are always free.
  int preemption_bound = -1;
  // Sleep-set partial-order reduction (sound here because *every* shared
  // access, plain included, is its own scheduling point).
  bool sleep_sets = true;
  // Per-execution scheduled-step budget; exceeding it is reported as a
  // livelock (cooperative backoff makes honest spin loops finite).
  std::uint64_t max_steps = 100000;
  // Exhaustive-mode execution budget; 0 = unlimited. A run that trips this
  // reports failure kind "budget" so CI never silently under-explores.
  std::uint64_t max_executions = 0;
  // Max readable-store candidates per relaxed load: the stalest legal
  // store plus the (stale_choices - 1) newest. 2 keeps the adversarial
  // extremes while holding the branching factor down; raise it to also
  // explore intermediate-staleness reads.
  int stale_choices = 2;
  // Max consecutive stale reads of one atomic by one thread before the
  // next read is pinned to the newest store. Models finite propagation
  // delay (eventual visibility): without it, a spinner whose peers keep
  // writing elsewhere could legally read the same stale flag forever and
  // the checker would report those infinite executions as livelocks.
  int stale_streak = 3;
  // Keep a rolling log of applied ops for failure reports / --replay.
  bool collect_trace = false;
};

struct Failure {
  std::string kind;      // "assert" | "race" | "deadlock" | "livelock" | ...
  std::string message;
  std::string schedule;  // replayable: "hfqv1:<d0>.<d1>..."
  std::vector<std::string> trace;  // most recent applied ops, oldest first
};

struct Stats {
  std::uint64_t executions = 0;
  std::uint64_t steps = 0;
  std::uint64_t decisions = 0;
  std::uint64_t sleep_pruned = 0;  // executions cut short by sleep blocking
  std::uint64_t max_depth = 0;
};

struct Result {
  bool ok = true;
  Failure failure;
  Stats stats;
  // Applied-op log of the (single) execution; filled by replay() even on
  // success so counterexample triage can read the path.
  std::vector<std::string> trace;
};

// Exhaustive DFS over scheduling (and, in relaxed mode, load-visibility)
// decisions. `body` is re-executed once per schedule and must be
// self-contained and deterministic apart from the decisions.
Result explore(const Options& opts, const std::function<void()>& body);

// `schedules` random executions; decisions drawn from SplitMix64(seed + i).
Result explore_random(const Options& opts, const std::function<void()>& body,
                      std::uint64_t schedules, std::uint64_t seed);

// Re-runs the single execution encoded by `schedule` (a Failure::schedule
// string), with the op trace collected regardless of opts.collect_trace.
Result replay(const Options& opts, const std::function<void()>& body,
              const std::string& schedule);

// Scenario-side assertion: throws (and poisons the current execution) when
// `cond` is false, recording `msg` and the failing schedule. Must be called
// from a model thread.
void check(bool cond, const char* msg);

// True while the engine is tearing an execution down; verify::thread::join
// and scenario cleanup consult it so unwinding never re-enters the
// scheduler.
[[nodiscard]] bool aborting() noexcept;

// Internal surface used by the shim (verify/shim.h). Not for scenarios.
namespace detail {
[[nodiscard]] bool model_active() noexcept;
[[nodiscard]] std::uint32_t exec_generation() noexcept;
int register_atomic(std::uint64_t init);
int register_plain();
Op perform(Op op);
int intern_site(const char* file, unsigned line, Op::Kind k, int declared_mo);
int spawn(std::function<void()> fn);
void join(int tid, int site);
void yield_point(int site);
}  // namespace detail

}  // namespace hfq::verify
