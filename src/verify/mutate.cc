#include "verify/mutate.h"

#include <atomic>

#include "verify/scenarios.h"

namespace hfq::verify {
namespace {

constexpr int kRelaxed = static_cast<int>(std::memory_order_relaxed);
constexpr int kConsume = static_cast<int>(std::memory_order_consume);
constexpr int kAcquire = static_cast<int>(std::memory_order_acquire);
constexpr int kRelease = static_cast<int>(std::memory_order_release);
constexpr int kAcqRel = static_cast<int>(std::memory_order_acq_rel);
constexpr int kSeqCst = static_cast<int>(std::memory_order_seq_cst);

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// The detectors that must refute a ring mutation. ring-wrap leads: its
// capacity-2 slot reuse arms the payload races that acquire-side
// weakenings in try_push/pop_burst need; plain `ring` covers the
// no-reuse publication races with a smaller search space.
const std::vector<std::string> kDefaultDetectors = {"ring-wrap", "ring"};

}  // namespace

int weaken_one_step(Op::Kind k, int declared) {
  const bool is_load = k == Op::Kind::kLoad;
  const bool is_store = k == Op::Kind::kStore;
  switch (declared) {
    case kSeqCst:
      if (is_load) return kAcquire;
      if (is_store) return kRelease;
      return kAcqRel;  // RMW
    case kAcqRel:
      return kAcquire;
    case kAcquire:
    case kConsume:
    case kRelease:
      return kRelaxed;
    default:
      return declared;  // relaxed: bottom of the ladder
  }
}

MutationReport run_mutation_campaign(
    const std::string& file_suffix,
    const std::vector<std::string>& scenario_names) {
  MutationReport report;
  const std::vector<std::string>& names =
      scenario_names.empty() ? kDefaultDetectors : scenario_names;
  std::vector<const Scenario*> detectors;
  for (const std::string& n : names) {
    const Scenario* s = find_scenario(n);
    if (s == nullptr) {
      report.baseline_failure = "unknown detector scenario: " + n;
      return report;
    }
    detectors.push_back(s);
  }

  SiteTable& table = SiteTable::instance();
  table.reset();

  // Phase 1 — baseline + site discovery: the detectors must pass on the
  // unmutated code, and running them populates the SiteTable with every
  // ordering site the scenarios actually execute.
  report.baseline_ok = true;
  for (const Scenario* s : detectors) {
    Result r = explore(s->exhaustive_opts, s->body);
    if (!r.ok) {
      report.baseline_ok = false;
      report.baseline_failure = s->name + ": " + r.failure.kind + " — " +
                                r.failure.message +
                                " sched=" + r.failure.schedule;
      return report;
    }
  }

  // Phase 2 — snapshot the weakenable sites of the target file. (Snapshot
  // first: phase-3 runs intern no new sites for these scenarios, but the
  // table reference must not be walked while overrides mutate it.)
  struct Target {
    int site;
    Op::Kind kind;
    int declared;
  };
  std::vector<Target> targets;
  {
    const std::vector<SiteInfo>& sites = table.sites();
    for (int id = 0; id < static_cast<int>(sites.size()); ++id) {
      const SiteInfo& info = sites[static_cast<std::size_t>(id)];
      if (!ends_with(info.file, file_suffix)) continue;
      if (info.kind == Op::Kind::kYield || info.kind == Op::Kind::kJoin ||
          info.kind == Op::Kind::kPlainRead ||
          info.kind == Op::Kind::kPlainWrite) {
        continue;  // no ordering to weaken
      }
      const int weaker = weaken_one_step(info.kind, info.declared_mo);
      if (weaker == info.declared_mo) continue;  // already relaxed
      targets.push_back({id, info.kind, info.declared_mo});
    }
  }
  report.weakenable = targets.size();

  // Phase 3 — inject each weakening alone and demand a refutation.
  for (const Target& t : targets) {
    MutationOutcome out;
    out.site = t.site;
    out.label = table.label(t.site);
    out.from_mo = t.declared;
    out.to_mo = weaken_one_step(t.kind, t.declared);
    table.clear_overrides();
    table.set_override(t.site, out.to_mo);
    for (const Scenario* s : detectors) {
      Result r = explore(s->exhaustive_opts, s->body);
      out.executions += r.stats.executions;
      if (!r.ok) {
        out.caught = true;
        out.caught_by = s->name;
        out.failure_kind = r.failure.kind;
        out.schedule = r.failure.schedule;
        break;
      }
    }
    if (out.caught) report.caught += 1;
    report.outcomes.push_back(std::move(out));
  }
  table.clear_overrides();
  return report;
}

}  // namespace hfq::verify
