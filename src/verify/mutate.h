// memory_order mutation self-validation: proves the checker is SENSITIVE,
// not just quiet. For every ordering annotation in a target file (keyed by
// the SiteTable call-site registry — the source is never edited), weaken it
// one step on the mutation ladder
//
//   load:  seq_cst -> acquire -> relaxed        (consume -> relaxed)
//   store: seq_cst -> release -> relaxed
//   RMW:   seq_cst -> acq_rel -> acquire/release -> relaxed
//
// and re-run the detector scenarios exhaustively. A weakening the checker
// does NOT refute means the model has a blind spot (or the annotation was
// never load-bearing) — either way CI must fail loudly. Acceptance gate:
// 100% of single-site weakenings in serve/mpsc_ring.h are caught.
#pragma once

#include <string>
#include <vector>

#include "verify/engine.h"

namespace hfq::verify {

struct MutationOutcome {
  int site = -1;
  std::string label;        // "mpsc_ring.h:66 store"
  int from_mo = 0;          // declared order (std::memory_order as int)
  int to_mo = 0;            // injected weaker order
  bool caught = false;      // some detector scenario failed under the bug
  std::string caught_by;    // scenario name that refuted it
  std::string failure_kind; // "race" / "assert" / "deadlock" / ...
  std::string schedule;     // replayable counterexample
  std::uint64_t executions = 0;  // explored before refutation (or total)
};

struct MutationReport {
  std::vector<MutationOutcome> outcomes;
  std::uint64_t weakenable = 0;
  std::uint64_t caught = 0;
  bool baseline_ok = false;  // unmutated code passed the same scenarios
  std::string baseline_failure;
  [[nodiscard]] bool all_caught() const {
    return baseline_ok && caught == weakenable;
  }
};

// Runs the mutation campaign against every weakenable ordering site whose
// source file ends with `file_suffix` (e.g. "mpsc_ring.h"), using the
// named detector scenarios (empty = the default ring detectors). Resets
// the SiteTable first; leaves no overrides behind.
MutationReport run_mutation_campaign(
    const std::string& file_suffix,
    const std::vector<std::string>& scenario_names = {});

// One-step weakening for `declared` at an op of kind `k`; returns
// `declared` itself when it is already at the bottom of the ladder
// (relaxed — nothing to inject).
int weaken_one_step(Op::Kind k, int declared);

}  // namespace hfq::verify
