#include "verify/scenarios.h"

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.h"
#include "serve/epoch_gate.h"
#include "serve/mpsc_ring.h"
#include "serve/shard_map.h"
#include "verify/shim.h"

namespace hfq::verify {
namespace {

// The checked instantiations: unmodified serve templates on shim types.
using RingT = serve::BasicMpscRing<atomic, var<net::Packet>>;
struct EditBatch {
  std::uint64_t value = 0;
};
using GateT = serve::EpochGate<EditBatch, atomic, Backoff>;

net::Packet mk(std::uint64_t id, std::uint32_t flow) {
  net::Packet p{};
  p.id = id;
  p.flow = flow;
  p.size_bytes = 100;
  return p;
}

// Shared post-join assertions for the ring scenarios: exactly the packets
// {base(f) + 0 .. base(f) + per - 1} for each producer flow, each once, in
// per-producer submission order. Packets reach `got` only through the
// race-checked slot cells, so a torn or stale payload also fails earlier.
void check_ring_contents(const std::vector<net::Packet>& got,
                         std::size_t producers, std::size_t per) {
  check(got.size() == producers * per, "ring delivered wrong packet count");
  std::vector<std::uint64_t> next(producers, 0);
  for (const net::Packet& p : got) {
    check(p.flow >= 1 && p.flow <= producers, "ring delivered foreign flow");
    const std::size_t f = p.flow - 1;
    const std::uint64_t base = 100 * (f + 1);
    check(p.id == base + next[f],
          "per-producer FIFO violated (lost, duplicated or reordered)");
    next[f] += 1;
  }
  for (std::size_t f = 0; f < producers; ++f) {
    check(next[f] == per, "ring lost packets from one producer");
  }
}

// --- ring: the acceptance config (2 producers / 1 consumer / capacity 4) ---
void ring_body() {
  RingT ring(4);
  std::vector<net::Packet> got;
  thread consumer([&] {
    while (got.size() < 4) {
      if (ring.pop_burst(got, 4) == 0) yield();
    }
  });
  auto producer = [&ring](std::uint32_t flow) {
    for (std::uint64_t k = 0; k < 2; ++k) {
      // 4 pushes never overlap a lap of a capacity-4 ring: full is a bug.
      check(ring.try_push(mk(100 * flow + k, flow)),
            "capacity-4 ring rejected one of 4 total pushes");
    }
  };
  thread p1([&] { producer(1); });
  thread p2([&] { producer(2); });
  p1.join();
  p2.join();
  consumer.join();
  check_ring_contents(got, 2, 2);
}

// --- ring-wrap: slot reuse + sequence counters across UINT64_MAX ----------
void ring_wrap_body() {
  // Counters start 2 claims short of overflow: the 3 pushes wrap head_,
  // tail_ and a slot seq mid-run, and 3 pushes through 2 slots force one
  // slot to be reused — which is also what arms the payload races the
  // mutation harness must detect. (3 pushes, not 4: the full-ring retry
  // loops multiply the interleaving space faster than any other scenario,
  // and one reuse already exercises every wraparound path.)
  RingT ring(2, ~std::uint64_t{0} - 1);
  std::vector<net::Packet> got;
  thread consumer([&] {
    while (got.size() < 3) {
      if (ring.pop_burst(got, 3) == 0) yield();
    }
  });
  auto push_one = [&ring](net::Packet p) {
    while (!ring.try_push(p)) yield();  // full: wait for the consumer
  };
  thread p1([&] {
    push_one(mk(100, 1));
    push_one(mk(101, 1));
  });
  thread p2([&] { push_one(mk(200, 2)); });
  p1.join();
  p2.join();
  consumer.join();
  // Per-producer FIFO + conservation, with asymmetric per-flow counts.
  check(got.size() == 3, "ring delivered wrong packet count");
  std::uint64_t next1 = 100;
  std::uint64_t seen2 = 0;
  for (const net::Packet& p : got) {
    if (p.flow == 1) {
      check(p.id == next1, "per-producer FIFO violated for flow 1");
      next1 += 1;
    } else {
      check(p.flow == 2 && p.id == 200, "ring delivered foreign packet");
      seen2 += 1;
    }
  }
  check(next1 == 102 && seen2 == 1, "ring lost or duplicated packets");
}

// --- ring-full: drop accounting when producers outrun the consumer --------
void ring_full_body() {
  RingT ring(2);
  std::array<var<std::uint64_t>, 2> ok{};
  auto producer = [&](std::size_t slot, std::uint32_t flow) {
    std::uint64_t n = 0;
    for (std::uint64_t k = 0; k < 2; ++k) {
      if (ring.try_push(mk(100 * flow + k, flow))) n += 1;
    }
    ok[slot].set(n);
  };
  thread p1([&] { producer(0, 1); });
  thread p2([&] { producer(1, 2); });
  p1.join();
  p2.join();
  // join gives happens-before: the main thread now drains as the consumer.
  std::vector<net::Packet> got;
  while (ring.pop_burst(got, 4) > 0) {
  }
  const std::uint64_t accepted = ok[0].get() + ok[1].get();
  check(accepted >= 2, "capacity-2 ring accepted fewer than capacity");
  check(accepted + ring.drops() == 4,
        "accepted + dropped must equal attempted");
  check(got.size() == accepted, "drained count != accepted count");
}

// --- epoch-gate: ticket/ack linearizability -------------------------------
void epoch_gate_body() {
  GateT gate;
  var<std::uint64_t> state{0};
  atomic<bool> running{true};
  thread consumer([&] {
    // The shard loop: poll the gate each "epoch", apply, ack.
    // verify: acquire — pairs with the control plane's release store of
    // running below (the shutdown handshake under test).
    while (running.load(std::memory_order_acquire)) {
      std::unique_ptr<EditBatch> b = gate.take();
      if (b != nullptr) {
        state.set(b->value);
        gate.ack();
      } else {
        yield();
      }
    }
    // Epoch-boundary shutdown drain, as in Shard::thread_main.
    std::unique_ptr<EditBatch> b = gate.take();
    if (b != nullptr) {
      state.set(b->value);
      gate.ack();
    }
  });
  const auto alive = [] { return true; };
  for (std::uint64_t v : {std::uint64_t{42}, std::uint64_t{7}}) {
    auto batch = std::make_unique<EditBatch>();
    batch->value = v;
    const std::uint64_t ticket = gate.submit(std::move(batch), alive);
    check(gate.wait_for(ticket, alive), "wait_for with alive control plane");
    // THE contract: ack => the edit is visible to the control plane. A
    // weakened ack/wait pairing makes this read race (or go stale).
    check(state.get() == v, "acked edit not visible after wait_for");
  }
  // verify: release — orders the last wait_for results before shutdown.
  running.store(false, std::memory_order_release);
  consumer.join();
}

// --- shard-stop: the stop_ handshake's conservation guarantee -------------
void shard_stop_body() {
  RingT ring(4);
  atomic<bool> stop{false};
  var<std::uint64_t> delivered{0};
  thread shard([&] {
    std::vector<net::Packet> out;
    // verify: acquire — pairs with the release store below; the shutdown
    // drain must see every packet pushed before stop was requested.
    while (!stop.load(std::memory_order_acquire)) {
      if (ring.pop_burst(out, 4) == 0) yield();
    }
    while (ring.pop_burst(out, 4) > 0) {
    }
    delivered.set(out.size());
  });
  check(ring.try_push(mk(1, 1)), "push 1");
  check(ring.try_push(mk(2, 1)), "push 2");
  // verify: release — publishes the pushes above to the shard's acquire
  // load of stop; weakening either side loses packets at shutdown.
  stop.store(true, std::memory_order_release);
  shard.join();
  check(delivered.get() == 2,
        "packet pushed before stop() lost by the shutdown drain");
}

// --- shard-map: remap stability under a concurrent shard-count bump -------
void shard_map_body() {
  // dir[i] models shard i's initialized state; reading it through a stale
  // or unpublished shard count is a race by construction.
  std::array<var<std::uint64_t>, 3> dir{};
  dir[0].set(0);
  dir[1].set(1);
  atomic<std::uint32_t> nshards{2};
  thread control([&] {
    dir[2].set(2);  // bring the new shard up...
    // verify: release — ...then publish the count; pairs with the
    // reader's acquire so a reader that routes to shard 2 finds it
    // initialized.
    nshards.store(3, std::memory_order_release);
  });
  thread reader([&] {
    for (int round = 0; round < 2; ++round) {
      // verify: acquire — see the release above.
      const std::uint32_t n = nshards.load(std::memory_order_acquire);
      for (net::FlowId flow : {7u, 11u, 13u}) {
        const std::uint32_t s = serve::shard_of(flow, n);
        check(s < n, "shard_of routed outside the published count");
        check(dir[s].get() == s, "routed to an uninitialized shard");
        // Jump-hash stability: growing 2 -> 3 may move a flow only ONTO
        // the new shard — per-flow order survives the remap everywhere
        // else.
        check(serve::shard_of(flow, 3) == serve::shard_of(flow, 2) ||
                  serve::shard_of(flow, 3) == 2,
              "jump hash moved a flow between pre-existing shards");
      }
    }
  });
  control.join();
  reader.join();
}

// --- pool-cursor: ThreadPool's relaxed claim loop -------------------------
void pool_cursor_body() {
  atomic<std::uint64_t> cursor{0};
  std::array<var<std::uint64_t>, 4> cells{};
  auto worker = [&] {
    for (;;) {
      // Deliberately relaxed — this scenario is the proof the production
      // claim loop (runner/thread_pool.h) needs nothing stronger: RMW
      // atomicity makes claims unique, join makes results visible.
      const std::uint64_t i =
          cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= cells.size()) return;
      cells[i].set(i + 1);
    }
  };
  thread a(worker);
  thread b(worker);
  a.join();
  b.join();
  for (std::uint64_t i = 0; i < cells.size(); ++i) {
    check(cells[i].get() == i + 1, "pool index not claimed exactly once");
  }
}

Options opts(int bound, bool relaxed, std::uint64_t max_steps = 20000) {
  Options o;
  o.preemption_bound = bound;
  o.relaxed_memory = relaxed;
  o.sleep_sets = true;
  o.max_steps = max_steps;
  return o;
}

std::vector<Scenario> build() {
  std::vector<Scenario> v;
  // ring runs under SC scheduling: the payload lives in race-checked
  // plain cells, and races are judged by happens-before computed from the
  // DECLARED orders, so every ordering weakening is still refuted — while
  // the relaxed-visibility decisions that multiply this (largest) search
  // space ~250x are left to ring-wrap, which explores them on the same
  // protocol at a size that stays tractable.
  v.push_back({"ring",
               "MpscRing 2 producers x 2 / 1 consumer, capacity 4: FIFO per "
               "producer, no lost/duplicated slots",
               opts(3, false), ring_body});
  v.push_back({"ring-wrap",
               "capacity-2 MpscRing with counters wrapping UINT64_MAX: slot "
               "reuse + overflow arithmetic, relaxed memory",
               opts(2, true), ring_wrap_body});
  v.push_back({"ring-full",
               "full-ring drop accounting: accepted + dropped == attempted",
               opts(3, true), ring_full_body});
  v.push_back({"epoch-gate",
               "EpochGate ticket/ack linearizability: ack => edit visible "
               "to wait_for",
               opts(3, true), epoch_gate_body});
  v.push_back({"shard-stop",
               "stop_ release/acquire handshake: conservation across the "
               "shutdown drain",
               opts(3, true), shard_stop_body});
  v.push_back({"shard-map",
               "jump-hash remap stability under a concurrent shard-count "
               "bump",
               opts(3, true), shard_map_body});
  v.push_back({"pool-cursor",
               "ThreadPool relaxed fetch_add claim loop: each index exactly "
               "once",
               opts(3, true), pool_cursor_body});
  return v;
}

}  // namespace

const std::vector<Scenario>& all_scenarios() {
  static const std::vector<Scenario> v = build();
  return v;
}

const Scenario* find_scenario(const std::string& name) {
  for (const Scenario& s : all_scenarios()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace hfq::verify
