// Model-check scenarios: the lock-free service-layer protocols compiled
// against verify::atomic / verify::var and driven by the engine. Each
// scenario is a self-contained body (re-executed once per explored
// schedule) plus Options tuned so exhaustive DFS terminates in CI time.
//
//   ring        MpscRing, 2 producers x 2 packets / 1 consumer, capacity 4
//               (the acceptance config): per-producer FIFO, no lost or
//               duplicated packets.
//   ring-wrap   capacity-2 ring started with its counters at
//               UINT64_MAX - 2, so slots are reused AND the sequence
//               arithmetic crosses the integer-overflow boundary mid-run.
//               The slot-reuse races are what the mutation harness needs:
//               every single-site memory_order weakening in mpsc_ring.h
//               fails here.
//   ring-full   overflow accounting: pushes into a full ring drop and
//               count; accepted + dropped == attempted, drained == accepted.
//   epoch-gate  EpochGate ticket/ack linearizability: wait_for(ticket)
//               returning true implies the batch's edit is visible.
//   shard-stop  the stop_ release/acquire handshake: every packet pushed
//               before stop() is requested survives the shutdown drain
//               (conservation) — proves stop_'s orderings are load-bearing.
//   shard-map   jump-hash remap stability under a concurrent shard-count
//               bump: readers route only to published, initialized shards,
//               and growing n -> n+1 moves flows only onto the new shard.
//   pool-cursor ThreadPool's relaxed fetch_add claim loop: each index is
//               claimed exactly once and results are visible after join —
//               the proof that relaxed is sufficient there.
#pragma once

#include <string>
#include <vector>

#include "verify/engine.h"

namespace hfq::verify {

struct Scenario {
  std::string name;
  std::string description;
  // Tuned for full DFS under --exhaustive (bound, memory mode, budgets).
  Options exhaustive_opts;
  std::function<void()> body;
};

// All registered scenarios, stable order (CLI --list order).
const std::vector<Scenario>& all_scenarios();

// nullptr when `name` is unknown.
const Scenario* find_scenario(const std::string& name);

}  // namespace hfq::verify
