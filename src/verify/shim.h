// Interposition layer: drop-in atomics/threads the checked code compiles
// against under the model checker (engine.h). The serve templates take the
// atomic template as a parameter (`BasicMpscRing<verify::atomic>`,
// `EpochGate<Batch, verify::atomic, verify::Backoff>`), so the *unmodified*
// production source runs with every shared access turned into a scheduling
// point.
//
// Each operation captures its call site with std::source_location trailing
// default arguments — zero changes to checked code — which is what lets the
// mutation harness (verify/mutate.h) weaken one memory_order annotation at
// a time by site id instead of by editing source.
//
// Outside an active model execution (plain unit tests, teardown) every type
// degrades to ordinary single-threaded behavior on a local fallback value.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <source_location>
#include <type_traits>
#include <utility>

#include "verify/engine.h"

namespace hfq::verify {

namespace detail {

template <class T>
std::uint64_t to_u64(T v) {
  static_assert(sizeof(T) <= 8 && std::is_trivially_copyable_v<T>,
                "verify::atomic supports trivially-copyable T up to 8 bytes");
  std::uint64_t r = 0;
  std::memcpy(&r, &v, sizeof(T));
  return r;
}

template <class T>
T from_u64(std::uint64_t r) {
  T v{};
  std::memcpy(&v, &r, sizeof(T));
  return v;
}

inline int site_of(const std::source_location& loc, Op::Kind k, int mo) {
  return intern_site(loc.file_name(), loc.line(), k, mo);
}

// C++ standard mapping from a single-order CAS to its failure order.
inline std::memory_order cas_fail_order(std::memory_order mo) {
  switch (mo) {
    case std::memory_order_acq_rel:
      return std::memory_order_acquire;
    case std::memory_order_release:
      return std::memory_order_relaxed;
    default:
      return mo;
  }
}

}  // namespace detail

// Schedulable stand-in for std::atomic<T>. Registered with the engine when
// constructed on a model thread; generation-checked so an object that
// outlives its execution degrades to the fallback instead of touching a
// recycled id.
template <class T>
class atomic {
 public:
  atomic() noexcept : atomic(T{}) {}
  explicit atomic(T init) noexcept : fallback_(init) {
    if (detail::model_active()) {
      id_ = detail::register_atomic(detail::to_u64(init));
      gen_ = detail::exec_generation();
    }
  }
  atomic(const atomic&) = delete;
  atomic& operator=(const atomic&) = delete;

  T load(std::memory_order mo = std::memory_order_seq_cst,
         std::source_location loc = std::source_location::current()) const {
    if (!live()) return fallback_;
    Op op;
    op.kind = Op::Kind::kLoad;
    op.obj = id_;
    op.mo = static_cast<int>(mo);
    op.site = detail::site_of(loc, Op::Kind::kLoad, op.mo);
    op = detail::perform(op);
    return detail::from_u64<T>(op.result);
  }

  void store(T v, std::memory_order mo = std::memory_order_seq_cst,
             std::source_location loc = std::source_location::current()) {
    if (!live()) {
      fallback_ = v;
      return;
    }
    Op op;
    op.kind = Op::Kind::kStore;
    op.obj = id_;
    op.value = detail::to_u64(v);
    op.mo = static_cast<int>(mo);
    op.site = detail::site_of(loc, Op::Kind::kStore, op.mo);
    detail::perform(op);
  }

  T fetch_add(T delta, std::memory_order mo = std::memory_order_seq_cst,
              std::source_location loc = std::source_location::current()) {
    static_assert(std::is_unsigned_v<T>,
                  "verify::atomic::fetch_add models unsigned wraparound only");
    if (!live()) {
      T old = fallback_;
      fallback_ = static_cast<T>(fallback_ + delta);
      return old;
    }
    Op op;
    op.kind = Op::Kind::kFetchAdd;
    op.obj = id_;
    op.value = detail::to_u64(delta);
    op.mo = static_cast<int>(mo);
    op.site = detail::site_of(loc, Op::Kind::kFetchAdd, op.mo);
    op = detail::perform(op);
    return detail::from_u64<T>(op.result);
  }

  T exchange(T v, std::memory_order mo = std::memory_order_seq_cst,
             std::source_location loc = std::source_location::current()) {
    if (!live()) {
      T old = fallback_;
      fallback_ = v;
      return old;
    }
    Op op;
    op.kind = Op::Kind::kExchange;
    op.obj = id_;
    op.value = detail::to_u64(v);
    op.mo = static_cast<int>(mo);
    op.site = detail::site_of(loc, Op::Kind::kExchange, op.mo);
    op = detail::perform(op);
    return detail::from_u64<T>(op.result);
  }

  bool compare_exchange_weak(
      T& expected, T desired, std::memory_order mo_succ,
      std::memory_order mo_fail,
      std::source_location loc = std::source_location::current()) {
    if (!live()) {
      if (fallback_ == expected) {
        fallback_ = desired;
        return true;
      }
      expected = fallback_;
      return false;
    }
    Op op;
    op.kind = Op::Kind::kCas;
    op.obj = id_;
    op.expected = detail::to_u64(expected);
    op.value = detail::to_u64(desired);
    op.mo = static_cast<int>(mo_succ);
    op.mo_fail = static_cast<int>(mo_fail);
    op.site = detail::site_of(loc, Op::Kind::kCas, op.mo);
    op = detail::perform(op);
    if (!op.cas_ok) expected = detail::from_u64<T>(op.result);
    return op.cas_ok;
  }

  bool compare_exchange_weak(
      T& expected, T desired,
      std::memory_order mo = std::memory_order_seq_cst,
      std::source_location loc = std::source_location::current()) {
    return compare_exchange_weak(expected, desired, mo,
                                 detail::cas_fail_order(mo), loc);
  }

  bool compare_exchange_strong(
      T& expected, T desired,
      std::memory_order mo = std::memory_order_seq_cst,
      std::source_location loc = std::source_location::current()) {
    // The model never fails spuriously, so weak == strong here.
    return compare_exchange_weak(expected, desired, mo,
                                 detail::cas_fail_order(mo), loc);
  }

 private:
  [[nodiscard]] bool live() const noexcept {
    return id_ >= 0 && gen_ == detail::exec_generation();
  }

  int id_ = -1;
  std::uint32_t gen_ = 0;
  // Mutable so const load() can serve the fallback path symmetrically.
  mutable T fallback_;
};

// A plain (non-atomic) cell the checker race-checks: any pair of accesses
// not ordered by happens-before fails the execution. This is the primary
// detector for weakened release/acquire annotations — the protocol value
// may still look right, but the payload access it was supposed to order
// races. Conversion and assignment operators let unmodified code like
// `slot.pkt = p` / `out.push_back(slot.pkt)` compile unchanged.
template <class T>
class var {
 public:
  var() noexcept : var(T{}) {}
  explicit var(T init) noexcept : value_(std::move(init)) {
    if (detail::model_active()) {
      id_ = detail::register_plain();
      gen_ = detail::exec_generation();
    }
  }
  var(const var&) = delete;
  var& operator=(const var&) = delete;

  // operator= cannot take a source_location parameter, so writes through
  // it intern under this header's line; use set() where the exact checked
  // call site matters to a counterexample.
  var& operator=(const T& v) {
    touch(Op::Kind::kPlainWrite, std::source_location::current());
    value_ = v;
    return *this;
  }

  void set(const T& v,
           std::source_location loc = std::source_location::current()) {
    touch(Op::Kind::kPlainWrite, loc);
    value_ = v;
  }

  operator T() const {  // NOLINT(google-explicit-constructor)
    touch(Op::Kind::kPlainRead, std::source_location::current());
    return value_;
  }

  T get(std::source_location loc = std::source_location::current()) const {
    touch(Op::Kind::kPlainRead, loc);
    return value_;
  }

 private:
  void touch(Op::Kind k, const std::source_location& loc) const {
    if (id_ < 0 || gen_ != detail::exec_generation()) return;
    Op op;
    op.kind = k;
    op.obj = id_;
    op.site = detail::site_of(loc, k, 0);
    detail::perform(op);
  }

  int id_ = -1;
  std::uint32_t gen_ = 0;
  T value_;
};

// Model thread handle with std::jthread-style auto-join: joining is a
// scheduling point (kJoin) that blocks until the target finishes and joins
// its clock. During engine teardown join degrades to a no-op so unwinding
// destructors never re-enter the scheduler.
class thread {
 public:
  thread() noexcept = default;
  template <class F>
  explicit thread(F&& f) : tid_(detail::spawn(std::function<void()>(
                               std::forward<F>(f)))) {}
  thread(thread&& o) noexcept : tid_(o.tid_) { o.tid_ = -1; }
  thread& operator=(thread&& o) noexcept {
    if (this != &o) {
      join();
      tid_ = o.tid_;
      o.tid_ = -1;
    }
    return *this;
  }
  thread(const thread&) = delete;
  thread& operator=(const thread&) = delete;
  ~thread() { join(); }

  [[nodiscard]] bool joinable() const noexcept { return tid_ >= 0; }

  void join(std::source_location loc = std::source_location::current()) {
    if (tid_ < 0) return;
    detail::join(tid_,
                 detail::site_of(loc, Op::Kind::kJoin, 0));
    tid_ = -1;
  }

 private:
  int tid_ = -1;
};

// Cooperative stand-in for a spin-loop backoff (sleep_for / pause). The
// yielding thread parks until another thread performs a write, which keeps
// honest retry loops finite under exhaustive exploration.
inline void yield(std::source_location loc = std::source_location::current()) {
  detail::yield_point(detail::site_of(loc, Op::Kind::kYield, 0));
}

// Backoff policy for templated spin loops (EpochGate's wait paths take
// this as a template parameter; production uses a sleeping policy).
struct Backoff {
  static void pause(
      std::source_location loc = std::source_location::current()) {
    detail::yield_point(detail::site_of(loc, Op::Kind::kYield, 0));
  }
};

}  // namespace hfq::verify
