// Shared test harness: drive a scheduler with a timed arrival trace through
// a Link and collect the departure schedule.
#pragma once

#include <utility>
#include <vector>

#include "net/packet.h"
#include "net/scheduler.h"
#include "sim/link.h"
#include "sim/simulator.h"

namespace hfq::testing {

struct Departure {
  net::Packet pkt;
  net::Time time = 0.0;  // transmission-complete time
};

struct TimedArrival {
  net::Time time = 0.0;
  net::Packet pkt;
};

inline net::Packet packet(net::FlowId flow, std::uint32_t bytes,
                          std::uint64_t id = 0) {
  net::Packet p;
  p.id = id;
  p.flow = flow;
  p.size_bytes = bytes;
  return p;
}

// Runs the trace to completion and returns departures in order.
inline std::vector<Departure> run_trace(net::Scheduler& sched, double rate_bps,
                                        std::vector<TimedArrival> arrivals) {
  sim::Simulator sim;
  sim::Link link(sim, sched, rate_bps);
  std::vector<Departure> out;
  link.set_delivery([&out](const net::Packet& p, net::Time t) {
    out.push_back(Departure{p, t});
  });
  for (auto& a : arrivals) {
    sim.at(a.time, [&link, pkt = a.pkt] { link.submit(pkt); });
  }
  sim.run();
  return out;
}

// The paper's Fig. 2 arrival pattern, scaled to bytes: link 8 bps, unit
// packets of 1 byte (8 bits, 1 s transmission). Session 0 (rate 4 bps =
// share 0.5) sends `heavy_count` packets at t=0; sessions 1..n_light (rate
// 0.4 bps = share 0.05 each) send one packet each at t=0.
inline std::vector<TimedArrival> fig2_arrivals(int heavy_count = 11,
                                               int n_light = 10) {
  std::vector<TimedArrival> arr;
  std::uint64_t id = 0;
  for (int k = 0; k < heavy_count; ++k) {
    arr.push_back(TimedArrival{0.0, packet(0, 1, id++)});
  }
  for (int j = 1; j <= n_light; ++j) {
    arr.push_back(
        TimedArrival{0.0, packet(static_cast<net::FlowId>(j), 1, id++)});
  }
  return arr;
}

}  // namespace hfq::testing
