// Seeded violations for tools/hfq_lint — at least one per rule, in rule
// order. This file is never compiled; the `hfq_lint_fixture` ctest runs the
// linter over this directory and expects a non-zero exit with every rule id
// in the report. If a rule regresses to never firing, that test fails.
namespace hfq::lint_fixture {

struct Demo {
  double start = 0.0;
  double finish = 0.0;
  double key = 0.0;
};

double vtime_ = 0.0;  // vtime-raw-double: tags/clocks must use units.h types

inline bool eligible(const Demo& d) {
  return d.start <= vtime_;  // tag-compare: must go through sched::vt_leq
}

// assert-precondition: a registration entry point with no HFQ_ASSERT and no
// delegation to a checked sibling.
inline void add_flow(int id, double rate_bps) {
  (void)id;
  (void)rate_bps;
}

inline void corrupt(Demo& d) {
  d.key = 1.0;  // heap-key-mutation: keys change only via the heap API
}

inline void cross(double now) {
  vtime_ = now;  // domain-cross-assign: wall clock into virtual time
}

// trace-in-hot-loop: formatting on the per-packet path; events belong in
// the flight recorder (src/obs/), not on a stream.
inline bool enqueue(int packet) {
  std::printf("enqueue %d\n", packet);
  return true;
}

// alloc-in-hot-path: heap allocation per packet; slots come from the arena
// (src/net/packet_arena.h) and tables grow at add_flow, never here.
inline bool enqueue(int packet, double now) {
  queue_.push_back(packet);
  (void)now;
  return true;
}

// sift-in-hot-loop: a direct heap operation on the eligible set inside a
// dequeue body — an O(log N) sift on the per-packet path; the calendar
// engine (sched/calendar.h) pops the minimum with a handful of ctz steps.
inline bool dequeue(double now) {
  (void)now;
  return eligible_.pop() >= 0;
}

// lock-in-shard-loop: blocking synchronization inside a shard loop phase;
// the service loop communicates only through the MPSC ring, the atomic edit
// slot and padded counters (src/serve/shard.h).
inline bool run_once() {
  std::lock_guard<std::mutex> guard(mu_);
  return true;
}

// metrics-in-hot-loop: string formatting inside a shard-side metric update
// hook; the telemetry hot hooks are integer bucket math and relaxed
// single-writer bumps only (src/telemetry/shard_telemetry.h) — label
// rendering and exposition run on the plane thread (src/telemetry/plane.cc).
inline void on_delivery(int flow, double delay_s) {
  last_label_ = std::to_string(flow);
  (void)delay_s;
}

// atomic-ordering (x2): a bare .load() silently defaults to seq_cst — an
// undecided ordering and a full fence on the per-packet path — and a
// relaxed load with no `// verify:` justification hides whatever pairing
// (or absence of one) makes it safe. Both must spell the order; relaxed
// loads cite their proof (src/serve/mpsc_ring.h is the template).
inline bool try_push(int packet) {
  const unsigned long pos = head_.load();
  if (tail_.load(std::memory_order_relaxed) > pos) return false;
  (void)packet;
  return true;
}

}  // namespace hfq::lint_fixture
