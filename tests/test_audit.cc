// Tests for the audit subsystem (src/audit/) and regression tests for the
// two WF²Q+ tag-discipline bugs it was built to catch:
//
//  * FIFO tie-break loss in Wf2qPlusFixed — bare-tag heap keys let the
//    waiting→eligible migration reorder sessions with equal finish tags;
//  * stale busy-period state — the virtual clock was only reset by the
//    link's idle poll, so a drained-but-unpolled scheduler leaked vtime and
//    finish tags from the previous busy period into the next one.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "audit/auditor.h"
#include "audit/fuzz.h"
#include "audit/invariants.h"
#include "core/wf2qplus.h"
#include "core/wf2qplus_fixed.h"
#include "harness.h"
#include "util/heap.h"

namespace hfq {
namespace {

using testing::packet;

// ---------------------------------------------------------------------------
// Satellite (a): FIFO tie-break under waiting→eligible migration.
//
// Link 16 bps, sessions A=0 and B=1 with rate 8 bps each, 1-byte (8-bit)
// packets, all four arriving at t=0 in order A.p0, A.p1, B.p2, B.p3.
// Service trace (V advances by 0.5 per packet, per-flow tags by 1):
//   #1 t=0.0: A.p0 and B.p2 tie at F=1; arrival order serves A.p0.
//             A restamps p1 with S=1 > V=0.5 → p1 parks in the waiting heap.
//   #2 t=0.5: serves B.p2; B restamps p3 with S=1 <= V=1.0 → p3 goes
//             straight into the eligible heap.
//   #3 t=1.0: A.p1 migrates waiting→eligible and ties with B.p3 at F=2.
//             FIFO order demands A.p1 (arrival 1 < 3); keying the heaps on
//             the bare tag serves B.p3 here, because the migration re-push
//             put A behind B.
// All tags are exact in both double and 2^-20-tick arithmetic, so both
// implementations must produce id order 0, 2, 1, 3.
template <typename Sched>
std::vector<std::uint64_t> tie_break_order(Sched& s) {
  s.add_flow(0, 8.0);
  s.add_flow(1, 8.0);
  s.enqueue(packet(0, 1, 0), 0.0);
  s.enqueue(packet(0, 1, 1), 0.0);
  s.enqueue(packet(1, 1, 2), 0.0);
  s.enqueue(packet(1, 1, 3), 0.0);
  std::vector<std::uint64_t> order;
  for (double now = 0.0; ; now += 0.5) {
    auto p = s.dequeue(now);
    if (!p.has_value()) break;
    order.push_back(p->id);
  }
  return order;
}

TEST(TieBreak, MigrationPreservesFifoOrderDouble) {
  core::Wf2qPlus s(16.0);
  EXPECT_EQ(tie_break_order(s), (std::vector<std::uint64_t>{0, 2, 1, 3}));
}

TEST(TieBreak, MigrationPreservesFifoOrderFixed) {
  core::Wf2qPlusFixed s(16);
  EXPECT_EQ(tie_break_order(s), (std::vector<std::uint64_t>{0, 2, 1, 3}));
}

// ---------------------------------------------------------------------------
// Satellite (b): busy-period reset without the idle poll.
//
// The link polls dequeue() once after its last transmission completes, and
// that poll used to be the only place the virtual clock was reset. A driver
// that skips the poll (or a link whose next arrival comes in before it gets
// a chance to poll — see run_unpolled in audit/fuzz.cc) must still see fresh
// tags after a real idle gap.

TEST(BusyPeriod, EnqueueAfterIdleGapResetsVirtualClock) {
  core::Wf2qPlus s(8.0);
  s.add_flow(0, 8.0);
  s.enqueue(packet(0, 1, 0), 0.0);
  ASSERT_TRUE(s.dequeue(0.0).has_value());  // transmission occupies [0, 1)
  // Scheduler drained but never polled; the busy period ended at t=1.
  s.enqueue(packet(0, 1, 1), 5.0);
  EXPECT_DOUBLE_EQ(s.head_start(0), 0.0)
      << "stale finish tag from the previous busy period leaked";
  EXPECT_DOUBLE_EQ(s.vtime(), 0.0);
}

TEST(BusyPeriod, EnqueueAfterIdleGapResetsVirtualClockFixed) {
  core::Wf2qPlusFixed s(8);
  s.add_flow(0, 8.0);
  s.enqueue(packet(0, 1, 0), 0.0);
  ASSERT_TRUE(s.dequeue(0.0).has_value());
  s.enqueue(packet(0, 1, 1), 5.0);
  EXPECT_EQ(s.head_start_ticks(0), 0u);
  EXPECT_EQ(s.vtime_ticks(), 0u);
}

TEST(BusyPeriod, ArrivalDuringTransmissionContinuesBusyPeriod) {
  core::Wf2qPlus s(8.0);
  s.add_flow(0, 8.0);
  s.enqueue(packet(0, 1, 0), 0.0);
  ASSERT_TRUE(s.dequeue(0.0).has_value());
  // t=0.5 is mid-transmission: same busy period, tags continue (S = F_prev).
  s.enqueue(packet(0, 1, 1), 0.5);
  EXPECT_DOUBLE_EQ(s.head_start(0), 1.0);
}

TEST(BusyPeriod, ArrivalExactlyAtTransmissionEndContinuesBusyPeriod) {
  // Boundary case: an arrival at the instant the last transmission finishes
  // extends the busy period (GPS semantics; also the order the event queue
  // fires arrival-before-complete at equal times).
  core::Wf2qPlus s(8.0);
  s.add_flow(0, 8.0);
  s.enqueue(packet(0, 1, 0), 0.0);
  ASSERT_TRUE(s.dequeue(0.0).has_value());
  s.enqueue(packet(0, 1, 1), 1.0);
  EXPECT_DOUBLE_EQ(s.head_start(0), 1.0);
}

TEST(BusyPeriod, IdlePollStillResets) {
  core::Wf2qPlus s(8.0);
  s.add_flow(0, 8.0);
  s.enqueue(packet(0, 1, 0), 0.0);
  ASSERT_TRUE(s.dequeue(0.0).has_value());
  EXPECT_FALSE(s.dequeue(1.0).has_value());  // the link's idle poll
  s.enqueue(packet(0, 1, 1), 1.5);
  EXPECT_DOUBLE_EQ(s.head_start(0), 0.0);
}

// ---------------------------------------------------------------------------
// Satellite (c): HandleHeap::validate and guarded transform_keys.

TEST(HeapValidate, FreshHeapIsValid) {
  util::HandleHeap<double, int> h;
  EXPECT_TRUE(h.validate());
  h.push(3.0, 1);
  h.push(1.0, 2);
  h.push(2.0, 3);
  EXPECT_TRUE(h.validate());
  EXPECT_EQ(h.pop(), 2);
  EXPECT_TRUE(h.validate());
}

TEST(HeapValidate, OrderPreservingTransformKeepsHeapValid) {
  util::HandleHeap<double, int> h;
  for (int i = 0; i < 32; ++i) h.push(static_cast<double>(97 * i % 41), i);
  h.transform_keys([](double k) { return k - 10.0; });
  EXPECT_TRUE(h.validate());
  EXPECT_EQ(h.top_key(), -10.0);
}

TEST(HeapValidate, NonOrderPreservingTransformIsCaught) {
  util::HandleHeap<double, int> h;
  for (int i = 0; i < 8; ++i) h.push(static_cast<double>(i), i);
  auto negate = [](double k) { return -k; };  // inverts the order
#if defined(HFQ_AUDIT_ENABLED) || !defined(NDEBUG)
  EXPECT_DEATH(h.transform_keys(negate), "order-preserving");
#else
  // Release build without auditing: the transform goes through unchecked,
  // but validate() exposes the corruption.
  h.transform_keys(negate);
  EXPECT_FALSE(h.validate());
#endif
}

// ---------------------------------------------------------------------------
// The black-box auditor: feed it deliberately broken schedulers and check
// each invariant trips.

// A scheduler wrapper that misbehaves in one configurable way.
class EvilScheduler : public net::Scheduler {
 public:
  enum class Vice { kLifo, kInvent, kIdleLie, kBacklogLie };

  explicit EvilScheduler(Vice vice) : vice_(vice) {}

  bool enqueue(const net::Packet& p, net::Time /*now*/) override {
    queue_.push_back(p);
    return true;
  }

  std::optional<net::Packet> dequeue(net::Time /*now*/) override {
    if (vice_ == Vice::kIdleLie) return std::nullopt;
    if (vice_ == Vice::kInvent) {
      net::Packet ghost;
      ghost.id = 999999;
      ghost.flow = 5;  // a flow that never enqueued anything
      ghost.size_bytes = 1;
      return ghost;
    }
    if (queue_.empty()) return std::nullopt;
    net::Packet p;
    if (vice_ == Vice::kLifo) {
      p = queue_.back();
      queue_.pop_back();
    } else {
      p = queue_.front();
      queue_.erase(queue_.begin());
    }
    return p;
  }

  [[nodiscard]] std::size_t backlog_packets() const override {
    if (vice_ == Vice::kBacklogLie) return queue_.size() + 7;
    return queue_.size();
  }

 private:
  Vice vice_;
  std::vector<net::Packet> queue_;
};

std::vector<std::string> collect_violations(EvilScheduler::Vice vice) {
  std::vector<std::string> seen;
  audit::CollectScope scope([&seen](const audit::Violation& v) {
    seen.push_back(v.invariant);
  });
  EvilScheduler evil(vice);
  audit::SchedulerAuditor a(evil);
  a.enqueue(packet(0, 1, 10), 0.0);
  a.enqueue(packet(0, 1, 11), 0.0);
  a.dequeue(1.0);
  a.dequeue(2.0);
  return seen;
}

bool contains(const std::vector<std::string>& v, const std::string& s) {
  for (const std::string& x : v) {
    if (x == s) return true;
  }
  return false;
}

TEST(SchedulerAuditor, DetectsFlowFifoViolation) {
  EXPECT_TRUE(contains(collect_violations(EvilScheduler::Vice::kLifo),
                       "flow-fifo"));
}

TEST(SchedulerAuditor, DetectsInventedPacket) {
  EXPECT_TRUE(contains(collect_violations(EvilScheduler::Vice::kInvent),
                       "conservation"));
}

TEST(SchedulerAuditor, DetectsWorkConservationViolation) {
  EXPECT_TRUE(contains(collect_violations(EvilScheduler::Vice::kIdleLie),
                       "work-conservation"));
}

TEST(SchedulerAuditor, DetectsBacklogLie) {
  EXPECT_TRUE(contains(collect_violations(EvilScheduler::Vice::kBacklogLie),
                       "backlog-conservation"));
}

TEST(SchedulerAuditor, CleanSchedulerReportsNothing) {
  std::vector<std::string> seen;
  audit::CollectScope scope([&seen](const audit::Violation& v) {
    seen.push_back(v.invariant);
  });
  core::Wf2qPlus s(8000.0);
  s.add_flow(0, 4000.0);
  s.add_flow(1, 4000.0);
  audit::SchedulerAuditor a(s);
  std::vector<testing::TimedArrival> arrivals;
  for (int i = 0; i < 20; ++i) {
    arrivals.push_back({0.01 * i, packet(i % 2 ? 0u : 1u, 100,
                                         static_cast<std::uint64_t>(i))});
  }
  const auto deps = testing::run_trace(a, 8000.0, arrivals);
  EXPECT_EQ(deps.size(), 20u);
  EXPECT_TRUE(seen.empty());
  EXPECT_EQ(a.accepted(), 20u);
  EXPECT_EQ(a.delivered(), 20u);
}

TEST(Invariants, ViolationCountAndHandlerRestore) {
  audit::reset_violation_count();
  {
    audit::CollectScope scope([](const audit::Violation&) {});
    audit::report("test-invariant", __FILE__, __LINE__, "detail");
    EXPECT_EQ(audit::violation_count(), 1u);
  }
  // Outside the scope the default (aborting) handler is back; don't report.
  audit::reset_violation_count();
  EXPECT_EQ(audit::violation_count(), 0u);
}

// ---------------------------------------------------------------------------
// Satellite (d), fuzzer side: seed replay is deterministic, generated traces
// are well-formed, a window of seeds runs clean, and the minimizer shrinks.

TEST(Fuzz, SameSeedSameTrace) {
  for (std::uint64_t seed : {1ull, 17ull, 912837ull}) {
    const audit::FuzzTrace a = audit::generate_trace(seed);
    const audit::FuzzTrace b = audit::generate_trace(seed);
    ASSERT_EQ(a.arrivals.size(), b.arrivals.size());
    EXPECT_EQ(a.shape, b.shape);
    EXPECT_EQ(a.link_rate, b.link_rate);
    EXPECT_EQ(a.rates, b.rates);
    for (std::size_t i = 0; i < a.arrivals.size(); ++i) {
      EXPECT_EQ(a.arrivals[i].time, b.arrivals[i].time);
      EXPECT_EQ(a.arrivals[i].flow, b.arrivals[i].flow);
      EXPECT_EQ(a.arrivals[i].bytes, b.arrivals[i].bytes);
      EXPECT_EQ(a.arrivals[i].id, b.arrivals[i].id);
    }
  }
}

TEST(Fuzz, TracesAreWellFormed) {
  std::set<audit::TraceShape> shapes;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const audit::FuzzTrace t = audit::generate_trace(seed);
    shapes.insert(t.shape);
    ASSERT_FALSE(t.arrivals.empty());
    ASSERT_FALSE(t.rates.empty());
    double rate_sum = 0.0;
    for (double r : t.rates) {
      EXPECT_GT(r, 0.0);
      rate_sum += r;
    }
    EXPECT_LE(rate_sum, t.link_rate * (1.0 + 1e-9));
    for (std::size_t i = 0; i < t.arrivals.size(); ++i) {
      EXPECT_EQ(t.arrivals[i].id, i);  // ids are the arrival index
      EXPECT_LT(t.arrivals[i].flow, t.rates.size());
      EXPECT_GE(t.arrivals[i].bytes, 1u);
      if (i > 0) {
        EXPECT_GE(t.arrivals[i].time, t.arrivals[i - 1].time);
      }
    }
  }
  // 50 seeds across 5 equally likely shapes: every shape must appear.
  EXPECT_EQ(shapes.size(), static_cast<std::size_t>(audit::TraceShape::kCount));
}

TEST(Fuzz, SeedWindowRunsClean) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const auto failures = audit::run_checks(audit::generate_trace(seed));
    EXPECT_TRUE(failures.empty())
        << "seed " << seed << " failed: " << failures.front().check << " — "
        << failures.front().detail;
  }
}

TEST(Fuzz, MinimizerShrinksToNecessaryArrivals) {
  const audit::FuzzTrace full = audit::generate_trace(3);
  ASSERT_GT(full.arrivals.size(), 20u);
  // Synthetic failure: "the trace contains arrivals with ids 7 and 13".
  auto fails = [](const audit::FuzzTrace& t) {
    bool has7 = false, has13 = false;
    for (const audit::FuzzArrival& a : t.arrivals) {
      if (a.id == 7) has7 = true;
      if (a.id == 13) has13 = true;
    }
    return has7 && has13;
  };
  const audit::FuzzTrace small = audit::minimize(full, fails);
  ASSERT_EQ(small.arrivals.size(), 2u);
  EXPECT_EQ(small.arrivals[0].id, 7u);
  EXPECT_EQ(small.arrivals[1].id, 13u);
}

TEST(Fuzz, MinimizerReturnsInputWhenPredicateNeverFires) {
  const audit::FuzzTrace full = audit::generate_trace(4);
  const audit::FuzzTrace same =
      audit::minimize(full, [](const audit::FuzzTrace&) { return false; });
  EXPECT_EQ(same.arrivals.size(), full.arrivals.size());
}

TEST(Fuzz, CompiledInMatchesBuildConfig) {
#ifdef HFQ_AUDIT_ENABLED
  EXPECT_TRUE(audit::compiled_in());
#else
  EXPECT_FALSE(audit::compiled_in());
#endif
}

}  // namespace
}  // namespace hfq
