// Tests for the hierarchical-bitmap tag calendar (sched/calendar.h): the
// geometry derivation, exact (tag, no) pop order including ties and dense
// buckets, ring wraparound with anchor rotation and overflow migration,
// drain_leq set/order, the approximate-mode one-bucket error bound, and
// schedule equivalence of the calendar-backed WF²Q+ engines (flat double,
// flat fixed-point, hierarchical) against their heap-backed twins —
// including across live-edit rebuilds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "core/hpfq.h"
#include "core/wf2qplus.h"
#include "core/wf2qplus_fixed.h"
#include "harness.h"
#include "sched/calendar.h"
#include "util/rng.h"

namespace hfq {
namespace {

using net::FlowId;
using sched::CalendarGeometry;
using sched::CalendarQuant;
using sched::CalendarTuning;
using sched::TagCalendar;
using testing::Departure;
using testing::packet;
using testing::run_trace;
using testing::TimedArrival;

TagCalendar<double> make_cal(double width, int log2_buckets,
                             std::size_t ids, bool approximate = false) {
  TagCalendar<double> c;
  CalendarQuant<double> q;
  q.inv_width = 1.0 / width;
  c.configure(q, log2_buckets, approximate);
  c.ensure_ids(ids);
  return c;
}

// ---------------------------------------------------------------------------
// Geometry: bucket count tracks the flow count, and the bucket width sigma
// never exceeds Lmax/rmin (the WFI-penalty budget) for any width_factor.

TEST(CalendarGeometry_, BucketCountCoversFlowsAndIsCapped) {
  CalendarTuning t;
  EXPECT_EQ(sched::derive_geometry(1, 1e6, t).log2_buckets, 6);
  EXPECT_EQ(sched::derive_geometry(100, 1e6, t).log2_buckets, 8);
  EXPECT_EQ(sched::derive_geometry(1u << 20, 1e6, t).log2_buckets, 21);
  EXPECT_EQ(sched::derive_geometry(1u << 25, 1e6, t).log2_buckets, 21);
}

TEST(CalendarGeometry_, WidthStaysWithinWfiBudget) {
  CalendarTuning t;
  for (double factor : {0.001, 0.25, 1.0, 64.0, 1e9}) {
    t.width_factor = factor;
    for (std::size_t flows : {std::size_t{1}, std::size_t{1000},
                              std::size_t{1} << 20}) {
      const CalendarGeometry g = sched::derive_geometry(flows, 1e6, t);
      // sigma <= Lmax/rmin: factor is clamped to B/2, so
      // factor * 2*Lmax/rmin / B <= Lmax/rmin.
      EXPECT_LE(g.width_vt, t.max_packet_bits / 1e6 * (1.0 + 1e-12))
          << "factor=" << factor << " flows=" << flows;
    }
  }
}

// ---------------------------------------------------------------------------
// Exact pop order: (tag, arrival_no), ties broken by insertion number, even
// when every tag lands in the same bucket.

TEST(TagCalendar_, PopsInTagOrderWithArrivalNoTieBreak) {
  auto c = make_cal(1.0, 6, 8);
  c.insert(0, 5.0, 10);
  c.insert(1, 3.0, 11);
  c.insert(2, 5.0, 9);   // same bucket+tag as id 0, earlier arrival
  c.insert(3, 3.25, 12); // same bucket as id 1, larger tag
  ASSERT_TRUE(c.validate());
  EXPECT_EQ(c.pop_min(), 1u);
  EXPECT_EQ(c.pop_min(), 3u);
  EXPECT_EQ(c.pop_min(), 2u);
  EXPECT_EQ(c.pop_min(), 0u);
  EXPECT_TRUE(c.empty());
}

TEST(TagCalendar_, DenseTagsInOneBucketStaySorted) {
  const std::size_t n = 64;
  auto c = make_cal(1000.0, 6, n);  // huge sigma: everything in one bucket
  util::Rng rng(7);
  std::vector<std::pair<double, std::uint64_t>> ref;
  for (std::size_t i = 0; i < n; ++i) {
    const double tag = rng.uniform(0.0, 900.0);
    c.insert(static_cast<std::uint32_t>(i), tag, i);
    ref.push_back({tag, i});
  }
  ASSERT_TRUE(c.validate());
  std::sort(ref.begin(), ref.end());
  for (std::size_t i = 0; i < n; ++i) {
    const auto m = c.peek_min();
    EXPECT_DOUBLE_EQ(m.tag, ref[i].first);
    EXPECT_EQ(c.pop_min(), static_cast<std::uint32_t>(ref[i].second));
  }
  EXPECT_TRUE(c.empty());
  EXPECT_GT(c.stats().sorted_steps, 0u);  // the dense case exercised the walk
}

TEST(TagCalendar_, SingleEntryDegenerateReanchorsAcrossWindows) {
  auto c = make_cal(1.0, 3, 1);  // 8 buckets only
  double tag = 0.0;
  for (int round = 0; round < 100; ++round) {
    c.insert(0, tag, static_cast<std::uint64_t>(round));
    ASSERT_TRUE(c.validate());
    const auto m = c.peek_min();
    EXPECT_EQ(m.id, 0u);
    EXPECT_DOUBLE_EQ(m.tag, tag);
    EXPECT_EQ(c.pop_min(), 0u);
    EXPECT_TRUE(c.empty());
    tag += 100.0;  // far outside the previous window: fresh anchor each time
  }
  EXPECT_EQ(c.stats().overflow_inserts, 0u);  // empty wheel re-anchors instead
}

// ---------------------------------------------------------------------------
// Wraparound: a tiny wheel forces both anchor rotation (lazy "bucket copy")
// and overflow spill + migration, while the pop order stays exact.

TEST(TagCalendar_, WraparoundRotationAndOverflowKeepExactOrder) {
  const std::size_t n = 64;
  auto c = make_cal(1.0, 3, n);  // 8 buckets for 64 live tags
  util::Rng rng(11);
  std::vector<std::pair<double, std::uint64_t>> ref;
  for (std::size_t i = 0; i < n; ++i) {
    const double tag = rng.uniform(0.0, 200.0);  // spans 200 buckets >> 8
    c.insert(static_cast<std::uint32_t>(i), tag, i);
    ASSERT_TRUE(c.validate()) << "after insert " << i;
    ref.push_back({tag, i});
  }
  EXPECT_GT(c.overflow_count(), 0u);
  std::sort(ref.begin(), ref.end());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(c.pop_min(), static_cast<std::uint32_t>(ref[i].second))
        << "pop " << i;
    ASSERT_TRUE(c.validate()) << "after pop " << i;
  }
  EXPECT_TRUE(c.empty());
  EXPECT_GT(c.stats().overflow_inserts, 0u);
  EXPECT_GT(c.stats().overflow_migrations, 0u);
  EXPECT_GT(c.stats().bucket_advances, 0u);
}

TEST(TagCalendar_, BelowWindowInsertClampsButPopsExactly) {
  auto c = make_cal(1.0, 4, 4);
  c.insert(0, 100.0, 0);  // anchors the window at bucket 100
  c.insert(1, 104.5, 1);
  // Below-window tags (a hierarchy rebase or vt_leq slack would produce
  // these) clamp into the anchor bucket but still pop first — the in-bucket
  // order compares exact tags.
  c.insert(2, 97.0, 2);
  c.insert(3, 99.5, 3);
  ASSERT_TRUE(c.validate());
  EXPECT_EQ(c.pop_min(), 2u);
  EXPECT_EQ(c.pop_min(), 3u);
  EXPECT_EQ(c.pop_min(), 0u);
  EXPECT_EQ(c.pop_min(), 1u);
}

// ---------------------------------------------------------------------------
// drain_leq: pops exactly the <=-bound prefix, in order — the migration
// loop's contract.

TEST(TagCalendar_, DrainLeqPopsExactPrefixInOrder) {
  const std::size_t n = 48;
  auto c = make_cal(0.5, 5, n);
  util::Rng rng(23);
  std::vector<std::pair<double, std::uint64_t>> ref;
  for (std::size_t i = 0; i < n; ++i) {
    const double tag = rng.uniform(0.0, 30.0);
    c.insert(static_cast<std::uint32_t>(i), tag, i);
    ref.push_back({tag, i});
  }
  std::sort(ref.begin(), ref.end());
  const double bound = 15.0;
  std::vector<std::uint32_t> drained;
  c.drain_leq([bound](double t) { return t <= bound; },
              [&drained](std::uint32_t id, double, std::uint64_t) {
                drained.push_back(id);
              });
  std::vector<std::uint32_t> expect;
  for (const auto& [tag, no] : ref) {
    if (tag <= bound) expect.push_back(static_cast<std::uint32_t>(no));
  }
  EXPECT_EQ(drained, expect);
  EXPECT_EQ(c.size(), n - expect.size());
  EXPECT_TRUE(c.validate());
}

TEST(TagCalendar_, ClearResetsAndWheelIsReusable) {
  auto c = make_cal(1.0, 4, 8);
  for (std::uint32_t i = 0; i < 8; ++i) c.insert(i, 1000.0 + i, i);
  c.clear();
  EXPECT_TRUE(c.empty());
  EXPECT_TRUE(c.validate());
  c.insert(3, 2.0, 0);  // fresh anchor far from the old one
  c.insert(5, 1.0, 1);
  EXPECT_EQ(c.pop_min(), 5u);
  EXPECT_EQ(c.pop_min(), 3u);
}

// ---------------------------------------------------------------------------
// Approximate mode: pops may be out of order, but never by more than one
// bucket width sigma.

TEST(TagCalendar_, ApproximateModePopsWithinOneBucketWidth) {
  const std::size_t n = 128;
  const double sigma = 2.0;
  auto c = make_cal(sigma, 5, n, /*approximate=*/true);
  util::Rng rng(31);
  // Scheduler-like workload: the first insert is the window minimum (the
  // anchor tracks the minimum live tag), the rest land above it in any
  // order. Only then is the one-bucket error bound claimed.
  c.insert(0, 0.0, 0);
  for (std::size_t i = 1; i < n; ++i) {
    c.insert(static_cast<std::uint32_t>(i), rng.uniform(0.0, 50.0), i);
  }
  double max_seen = -1e300;
  while (!c.empty()) {
    const auto m = c.peek_min();
    // A later pop can only undercut an earlier one by < sigma.
    EXPECT_GE(m.tag, max_seen - sigma * (1.0 + 1e-12));
    max_seen = std::max(max_seen, m.tag);
    c.pop_min();
  }
}

// ---------------------------------------------------------------------------
// Randomized stress vs a reference multiset: interleaved insert/pop with
// structural validation along the way.

TEST(TagCalendar_, RandomizedMixedOpsMatchReference) {
  const std::size_t ids = 256;
  auto c = make_cal(0.25, 6, ids);  // small wheel: rotation + overflow exercised
  util::Rng rng(1234);
  std::vector<std::pair<double, std::uint64_t>> live;  // (tag, no) sorted lazily
  std::map<std::uint64_t, std::uint32_t> id_of_no;
  std::vector<bool> in_cal(ids, false);
  std::uint64_t no = 0;
  double vt = 0.0;
  for (int op = 0; op < 5000; ++op) {
    const bool do_insert =
        live.size() < ids && (live.empty() || rng.uniform() < 0.55);
    if (do_insert) {
      std::uint32_t id = static_cast<std::uint32_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(ids) - 1));
      while (in_cal[id]) id = (id + 1) % ids;
      const double tag = vt + rng.uniform(0.0, 40.0);
      c.insert(id, tag, no);
      live.push_back({tag, no});
      id_of_no[no] = id;
      in_cal[id] = true;
      ++no;
    } else {
      auto it = std::min_element(live.begin(), live.end());
      const std::uint32_t want = id_of_no[it->second];
      const auto m = c.peek_min();
      ASSERT_EQ(m.id, want) << "op " << op;
      ASSERT_EQ(c.pop_min(), want);
      in_cal[want] = false;
      vt = std::max(vt, it->first);  // tags trend upward like virtual time
      id_of_no.erase(it->second);
      live.erase(it);
    }
    if (op % 97 == 0) {
      ASSERT_TRUE(c.validate()) << "op " << op;
    }
  }
}

// ---------------------------------------------------------------------------
// Engine equivalence: the calendar build of every WF²Q+ variant must emit
// the exact same schedule as the heap build.

std::vector<TimedArrival> random_arrivals(std::uint64_t seed, int flows,
                                          int packets) {
  util::Rng rng(seed);
  std::vector<TimedArrival> arr;
  std::uint64_t id = 0;
  double t = 0.0;
  for (int i = 0; i < packets; ++i) {
    t += rng.uniform(0.0, 0.4);
    const auto flow = static_cast<FlowId>(
        rng.uniform_int(0, flows - 1));
    const auto bytes =
        static_cast<std::uint32_t>(rng.uniform_int(1, 12));
    arr.push_back(TimedArrival{t, packet(flow, bytes, id++)});
  }
  return arr;
}

void expect_same_schedule(const std::vector<Departure>& a,
                          const std::vector<Departure>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pkt.id, b[i].pkt.id) << "departure " << i;
    EXPECT_DOUBLE_EQ(a[i].time, b[i].time) << "departure " << i;
  }
}

TEST(CalendarEquivalence, FlatDoubleMatchesHeapSchedule) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    core::Wf2qPlus heap(64.0, sched::EligEngine::kHeap);
    core::Wf2qPlus cal(64.0, sched::EligEngine::kCalendar);
    EXPECT_FALSE(heap.uses_calendar());
    EXPECT_TRUE(cal.uses_calendar());
    const int flows = 24;
    for (FlowId f = 0; f < flows; ++f) {
      const double r = 64.0 / flows * (f % 3 == 0 ? 2.0 : 0.7);
      heap.add_flow(f, r);
      cal.add_flow(f, r);
    }
    const auto arr = random_arrivals(seed, flows, 600);
    const auto dh = run_trace(heap, 64.0, arr);
    const auto dc = run_trace(cal, 64.0, arr);
    expect_same_schedule(dh, dc);
    EXPECT_GT(cal.calendar_stats().pops, 0u);
  }
}

TEST(CalendarEquivalence, FlatFixedMatchesHeapSchedule) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    core::Wf2qPlusFixed heap(64, sched::EligEngine::kHeap);
    core::Wf2qPlusFixed cal(64, sched::EligEngine::kCalendar);
    EXPECT_TRUE(cal.uses_calendar());
    const int flows = 24;
    for (FlowId f = 0; f < flows; ++f) {
      heap.add_flow(f, f % 3 == 0 ? 5.0 : 2.0);
      cal.add_flow(f, f % 3 == 0 ? 5.0 : 2.0);
    }
    const auto arr = random_arrivals(seed, flows, 600);
    expect_same_schedule(run_trace(heap, 64.0, arr),
                         run_trace(cal, 64.0, arr));
  }
}

// Tight bucket widths force in-bucket collisions, wide ones force clamping —
// the schedule must not depend on the geometry at all in exact mode.
TEST(CalendarEquivalence, FlatScheduleIndependentOfBucketWidth) {
  const int flows = 16;
  const auto arr = random_arrivals(99, flows, 500);
  core::Wf2qPlus heap(64.0, sched::EligEngine::kHeap);
  for (FlowId f = 0; f < flows; ++f) heap.add_flow(f, 4.0);
  const auto dh = run_trace(heap, 64.0, arr);
  for (double factor : {0.01, 0.5, 8.0, 512.0}) {
    sched::CalendarTuning t;
    t.width_factor = factor;
    core::Wf2qPlus cal(64.0, sched::EligEngine::kCalendar, t);
    for (FlowId f = 0; f < flows; ++f) cal.add_flow(f, 4.0);
    const auto dc = run_trace(cal, 64.0, arr);
    expect_same_schedule(dh, dc);
  }
}

TEST(CalendarEquivalence, HierarchyMatchesHeapSchedule) {
  auto build = [](auto& h) {
    const auto a = h.add_internal(h.root(), 40.0);
    const auto b = h.add_internal(h.root(), 24.0);
    const auto a1 = h.add_internal(a, 24.0);
    h.add_leaf(a1, 16.0, 0);
    h.add_leaf(a1, 8.0, 1);
    h.add_leaf(a, 16.0, 2);
    h.add_leaf(b, 12.0, 3);
    h.add_leaf(b, 12.0, 4);
  };
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    core::HWf2qPlus heap(64.0);
    core::HWf2qPlusCal cal(64.0);
    build(heap);
    build(cal);
    const auto arr = random_arrivals(seed, 5, 800);
    expect_same_schedule(run_trace(heap, 64.0, arr),
                         run_trace(cal, 64.0, arr));
  }
}

// Hierarchy equivalence must also survive tag rebases (the calendar rebuild
// path preserves the (key, seq) order the heaps keep via transform_keys).
TEST(CalendarEquivalence, HierarchySurvivesRebase) {
  auto build = [](auto& h) {
    const auto a = h.add_internal(h.root(), 32.0);
    h.add_leaf(a, 16.0, 0);
    h.add_leaf(a, 16.0, 1);
    h.add_leaf(h.root(), 32.0, 2);
    h.mutable_policy(a).set_rebase_threshold(4.0);
    h.mutable_policy(h.root()).set_rebase_threshold(4.0);
  };
  core::HWf2qPlus heap(64.0);
  core::HWf2qPlusCal cal(64.0);
  build(heap);
  build(cal);
  const auto arr = random_arrivals(77, 3, 1500);
  expect_same_schedule(run_trace(heap, 64.0, arr), run_trace(cal, 64.0, arr));
  EXPECT_GT(heap.mutable_policy(1).rebase_count(), 0u);
  EXPECT_GT(cal.mutable_policy(1).rebase_count(), 0u);
}

// Live-edit rebuild: both engines rebuild their eligible sets on commit, and
// the schedules must stay identical afterwards (the calendar's re-bucketing
// under a changed rate is satellite coverage for serve epoch boundaries).
TEST(CalendarEquivalence, LiveSetRateRebucketingMatchesHeap) {
  core::Wf2qPlus heap(64.0, sched::EligEngine::kHeap);
  core::Wf2qPlus cal(64.0, sched::EligEngine::kCalendar);
  const int flows = 12;
  for (FlowId f = 0; f < flows; ++f) {
    heap.add_flow(f, 4.0);
    cal.add_flow(f, 4.0);
  }
  util::Rng rng(5150);
  double now = 0.0;
  std::uint64_t id = 0;
  std::vector<net::Packet> hd, cd;
  auto drain_some = [&](int k) {
    for (int i = 0; i < k; ++i) {
      auto ph = heap.dequeue(now);
      auto pc = cal.dequeue(now);
      ASSERT_EQ(ph.has_value(), pc.has_value());
      if (!ph) break;
      hd.push_back(*ph);
      cd.push_back(*pc);
      now += ph->size_bits() / 64.0;
    }
  };
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 80; ++i) {
      const auto f = static_cast<FlowId>(rng.uniform_int(0, flows - 1));
      const net::Packet p = packet(f, 8, id++);
      heap.enqueue(p, now);
      cal.enqueue(p, now);
    }
    drain_some(30);
    // Epoch boundary: change rates on backlogged flows, then commit. Both
    // engines must rebuild and agree on everything that follows.
    const auto f = static_cast<FlowId>(rng.uniform_int(0, flows - 1));
    const double r = rng.uniform(1.0, 16.0);
    ASSERT_TRUE(heap.live_set_rate(f, r));
    ASSERT_TRUE(cal.live_set_rate(f, r));
    heap.commit_live_edits();
    cal.commit_live_edits();
    std::string why;
    ASSERT_TRUE(heap.validate_splice(&why)) << why;
    ASSERT_TRUE(cal.validate_splice(&why)) << why;
    drain_some(40);
  }
  drain_some(1 << 20);  // run both dry
  ASSERT_EQ(hd.size(), cd.size());
  for (std::size_t i = 0; i < hd.size(); ++i) {
    EXPECT_EQ(hd[i].id, cd[i].id) << "departure " << i;
  }
}

}  // namespace
}  // namespace hfq
