// Tests for the million-flow datapath: the packet arena and intrusive
// per-flow FIFOs (net/packet_arena.h), the flat d-ary heaps (util/heap.h),
// the SoA scheduler base's flow-id boundary validation (sched/soa_base.h),
// the arrival-counter saturation contract, the batched enqueue/dequeue
// APIs, the batched link drain (sim/link.h), and the legacy datapath's
// "arrival-seq-sync" audit invariant.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "audit/invariants.h"
#include "audit/wf2qplus_legacy.h"
#include "core/wf2qplus.h"
#include "core/wf2qplus_fixed.h"
#include "harness.h"
#include "net/packet_arena.h"
#include "net/scheduler.h"
#include "runner/scenario.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "traffic/tcp.h"
#include "util/heap.h"
#include "util/rng.h"

namespace hfq {
namespace {

using net::ArenaFifo;
using net::FlowId;
using net::Packet;
using net::PacketArena;
using net::PacketRef;
using testing::packet;

// ---------------------------------------------------------------------------
// PacketArena: slot lifecycle and LIFO free-list reuse.

TEST(PacketArena, AllocWriteReadRelease) {
  PacketArena arena;
  const PacketRef r = arena.alloc(packet(3, 100, 42), 7);
  EXPECT_EQ(arena.live(), 1u);
  EXPECT_EQ(arena[r].pkt.id, 42u);
  EXPECT_EQ(arena[r].pkt.flow, 3u);
  EXPECT_EQ(arena[r].arrival_no, 7u);
  EXPECT_EQ(arena[r].next, net::kNullPacketRef);
  arena.release(r);
  EXPECT_EQ(arena.live(), 0u);
}

TEST(PacketArena, FreeListIsLifoAndCapacityIsHighWaterMark) {
  PacketArena arena;
  const PacketRef a = arena.alloc(packet(0, 1, 0), 0);
  const PacketRef b = arena.alloc(packet(0, 1, 1), 1);
  EXPECT_EQ(arena.capacity(), 2u);
  arena.release(a);
  arena.release(b);
  // LIFO: the most recently released slot is handed out first, and no new
  // slab growth happens while free slots exist.
  EXPECT_EQ(arena.alloc(packet(0, 1, 2), 2), b);
  EXPECT_EQ(arena.alloc(packet(0, 1, 3), 3), a);
  EXPECT_EQ(arena.capacity(), 2u);
  EXPECT_EQ(arena.live(), 2u);
}

// ---------------------------------------------------------------------------
// ArenaFifo: FIFO order, byte accounting, drop-tail capacity.

TEST(ArenaFifo, FifoOrderAndByteAccounting) {
  PacketArena arena;
  ArenaFifo q;
  EXPECT_TRUE(q.empty());
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.push(arena, packet(0, 10 + static_cast<std::uint32_t>(i), i),
                       100 + i));
  }
  EXPECT_EQ(q.size(), 5u);
  EXPECT_EQ(q.bytes(), 10u + 11 + 12 + 13 + 14);
  EXPECT_EQ(q.front(arena).id, 0u);
  EXPECT_EQ(q.front_arrival_no(arena), 100u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(q.pop(arena).id, i);
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.bytes(), 0u);
  EXPECT_EQ(arena.live(), 0u);
}

TEST(ArenaFifo, DropTailAtCapacity) {
  PacketArena arena;
  ArenaFifo q(2);
  EXPECT_TRUE(q.push(arena, packet(0, 1, 0), 0));
  EXPECT_TRUE(q.push(arena, packet(0, 1, 1), 1));
  EXPECT_FALSE(q.push(arena, packet(0, 1, 2), 2));
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(arena.live(), 2u);  // the dropped packet never took a slot
  q.pop(arena);
  EXPECT_TRUE(q.push(arena, packet(0, 1, 3), 3));
}

TEST(ArenaFifo, InterleavedQueuesShareOneArena) {
  PacketArena arena;
  ArenaFifo a, b;
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE((i % 2 == 0 ? a : b).push(arena, packet(0, 1, i), i));
  }
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ((i % 2 == 0 ? a : b).pop(arena).id, i);
  }
  EXPECT_EQ(arena.live(), 0u);
}

// ---------------------------------------------------------------------------
// Heap interchangeability: HandleHeap and InlineHeap at any arity pop the
// identical sequence, because (key, insertion-seq) is a total order — the
// property that makes the heap layout a pure performance choice.

TEST(HeapEquivalence, AllVariantsPopTheSameSequence) {
  util::Rng rng(2024);
  std::vector<int> keys;
  for (int i = 0; i < 500; ++i) {
    keys.push_back(static_cast<int>(rng.uniform_int(0, 40)));  // heavy ties
  }
  util::HandleHeap<int, int, 2> h2;
  util::HandleHeap<int, int, 3> h3;
  util::HandleHeap<int, int, 4> h4;
  util::InlineHeap<int, int, 4> i4;
  util::InlineHeap<int, int, 8> i8;
  for (int i = 0; i < static_cast<int>(keys.size()); ++i) {
    h2.push(keys[static_cast<std::size_t>(i)], i);
    h3.push(keys[static_cast<std::size_t>(i)], i);
    h4.push(keys[static_cast<std::size_t>(i)], i);
    i4.push(keys[static_cast<std::size_t>(i)], i);
    i8.push(keys[static_cast<std::size_t>(i)], i);
  }
  EXPECT_TRUE(h4.validate());
  EXPECT_TRUE(i4.validate());
  while (!h2.empty()) {
    const int want = h2.pop();
    EXPECT_EQ(h3.pop(), want);
    EXPECT_EQ(h4.pop(), want);
    EXPECT_EQ(i4.pop(), want);
    EXPECT_EQ(i8.pop(), want);
  }
  EXPECT_TRUE(i8.empty());
}

TEST(InlineHeap, PushPopInterleavedMatchesHandleHeap) {
  util::Rng rng(77);
  util::HandleHeap<double, int> a;
  util::InlineHeap<double, int> b;
  int next = 0;
  for (int round = 0; round < 2000; ++round) {
    if (a.empty() || rng.uniform_int(0, 2) != 0) {
      const double k = static_cast<double>(rng.uniform_int(0, 50));
      a.push(k, next);
      b.push(k, next);
      ++next;
    } else {
      ASSERT_EQ(a.top_key(), b.top_key());
      ASSERT_EQ(a.pop(), b.pop());
    }
  }
  while (!a.empty()) {
    ASSERT_EQ(a.pop(), b.pop());
  }
  EXPECT_TRUE(b.empty());
}

// ---------------------------------------------------------------------------
// Flow-id boundary validation (the hostile-flow-id OOM regression).
//
// The legacy datapath resized a per-flow vector to p.flow + 1 on the packet
// path, so a single packet with flow id 2^32-2 attempted a multi-gigabyte
// allocation. The SoA base never sizes anything by a packet's flow id: an
// unregistered id is dropped and counted at the boundary.

TEST(FlowIdBounds, UnregisteredHugeFlowIdIsDroppedNotAllocated) {
  core::Wf2qPlus s(8000.0);
  s.add_flow(0, 8000.0);
  const std::size_t flows_before = s.flow_count();
  Packet hostile = packet(0xFFFFFFFEu, 100, 1);  // would be a ~100 GB resize
  EXPECT_FALSE(s.enqueue(hostile, 0.0));
  EXPECT_EQ(s.flow_count(), flows_before);  // no table grew
  EXPECT_EQ(s.unknown_flow_drops(), 1u);
  EXPECT_EQ(s.backlog_packets(), 0u);
  // The scheduler keeps working for registered flows.
  EXPECT_TRUE(s.enqueue(packet(0, 100, 2), 0.0));
  EXPECT_EQ(s.dequeue(0.0)->id, 2u);
}

TEST(FlowIdBounds, UnregisteredInRangeFlowIdIsDroppedAndCounted) {
  core::Wf2qPlusFixed s(8000);
  s.add_flow(3, 4000.0);
  // Id 2 is below the table size implied by id 3 but was never registered.
  EXPECT_FALSE(s.enqueue(packet(2, 100, 1), 0.0));
  // Id 7 is past the table entirely.
  EXPECT_FALSE(s.enqueue(packet(7, 100, 2), 0.0));
  EXPECT_EQ(s.unknown_flow_drops(), 2u);
  EXPECT_EQ(s.backlog_packets(), 0u);
}

TEST(FlowIdBoundsDeathTest, RegistrationBeyondMaxFlowsAsserts) {
  core::Wf2qPlus s(8000.0);
  EXPECT_DEATH(s.add_flow(net::kMaxFlows, 1.0), "kMaxFlows");
}

// ---------------------------------------------------------------------------
// Arrival-counter saturation (FIFO tie-break bookkeeping).
//
// The counter feeds VtKey tie-breaks. Wrapping would hand the newest packet
// arrival number 0 — beating every older packet in a tie. The datapath
// saturates instead: ties degrade to heap-insertion order only at the
// (practically unreachable) ceiling, and the counter is pinned, never wraps.

TEST(ArrivalCounter, SaturatesAtUint64MaxInsteadOfWrapping) {
  core::Wf2qPlus s(16.0);
  s.add_flow(0, 8.0);
  s.add_flow(1, 8.0);
  s.set_arrival_counter_for_test(std::numeric_limits<std::uint64_t>::max() -
                                 2);
  for (std::uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(s.enqueue(packet(i % 2 ? 1u : 0u, 1, i), 0.0));
  }
  EXPECT_EQ(s.arrival_counter_for_test(),
            std::numeric_limits<std::uint64_t>::max());
  // The schedule stays complete and deterministic: all six packets drain,
  // each flow in its own FIFO order.
  std::vector<std::uint64_t> f0, f1;
  for (double now = 0.0;; now += 0.5) {
    auto p = s.dequeue(now);
    if (!p.has_value()) break;
    (p->flow == 0 ? f0 : f1).push_back(p->id);
  }
  EXPECT_EQ(f0, (std::vector<std::uint64_t>{0, 2, 4}));
  EXPECT_EQ(f1, (std::vector<std::uint64_t>{1, 3, 5}));
}

// ---------------------------------------------------------------------------
// Burst APIs: enqueue_burst/dequeue_burst must reproduce the per-packet
// schedule exactly (spot check; audit/fuzz.cc holds this across every seed).

TEST(BurstApi, BurstMatchesPerPacketScheduleExactly) {
  const double link = 8000.0;
  util::Rng rng(11);
  std::vector<Packet> burst;
  std::uint64_t id = 0;
  for (int k = 0; k < 40; ++k) {
    burst.push_back(packet(static_cast<FlowId>(rng.uniform_int(0, 2)),
                           static_cast<std::uint32_t>(rng.uniform_int(8, 200)),
                           id++));
  }

  auto make = [&] {
    auto s = std::make_unique<core::Wf2qPlus>(link);
    s->add_flow(0, 4000.0);
    s->add_flow(1, 2000.0);
    s->add_flow(2, 2000.0);
    return s;
  };

  // Reference: per-packet loop, all arrivals at t=0, serve to empty.
  auto ref = make();
  for (const Packet& p : burst) ref->enqueue(p, 0.0);
  std::vector<std::uint64_t> ref_ids;
  std::vector<double> ref_times;
  double t = 0.0;
  while (auto p = ref->dequeue(t)) {
    t += p->size_bits() / link;
    ref_ids.push_back(p->id);
    ref_times.push_back(t);
  }

  // Batched: one enqueue_burst, then dequeue_burst in random chunks.
  auto b = make();
  EXPECT_EQ(b->enqueue_burst(burst, 0.0), burst.size());
  std::vector<std::uint64_t> got_ids;
  std::vector<double> got_times;
  double tb = 0.0;
  std::vector<Packet> out;
  for (;;) {
    out.clear();
    const auto n = b->dequeue_burst(
        out, static_cast<std::size_t>(rng.uniform_int(1, 5)), tb, link,
        std::numeric_limits<double>::infinity());
    if (n == 0) break;
    for (const Packet& p : out) {
      tb += p.size_bits() / link;
      got_ids.push_back(p.id);
      got_times.push_back(tb);
    }
  }
  EXPECT_EQ(got_ids, ref_ids);
  ASSERT_EQ(got_times.size(), ref_times.size());
  for (std::size_t i = 0; i < ref_times.size(); ++i) {
    EXPECT_DOUBLE_EQ(got_times[i], ref_times[i]) << "departure " << i;
  }
}

TEST(BurstApi, DequeueBurstStopsBeforeHorizon) {
  core::Wf2qPlus s(8.0);  // 1-byte packet = 1 s transmission
  s.add_flow(0, 8.0);
  for (std::uint64_t i = 0; i < 4; ++i) s.enqueue(packet(0, 1, i), 0.0);
  std::vector<Packet> out;
  // Horizon 2.0: the first packet is unconditional, the second starts at
  // t=1.0 < 2.0, the third would start at t=2.0 — not strictly before.
  EXPECT_EQ(s.dequeue_burst(out, 100, 0.0, 8.0, 2.0), 2u);
  EXPECT_EQ(s.backlog_packets(), 2u);
}

TEST(BurstApi, EnqueueBurstRunsEagerBusyBoundaryOnce) {
  core::Wf2qPlus s(8.0);
  s.add_flow(0, 8.0);
  s.enqueue(packet(0, 1, 0), 0.0);
  ASSERT_TRUE(s.dequeue(0.0).has_value());  // busy until t=1
  // Burst arrival long after the drain: new busy period, fresh clock.
  std::vector<Packet> burst{packet(0, 1, 1), packet(0, 1, 2)};
  EXPECT_EQ(s.enqueue_burst(burst, 5.0), 2u);
  EXPECT_DOUBLE_EQ(s.head_start(0), 0.0);
  EXPECT_DOUBLE_EQ(s.vtime(), 0.0);
}

// ---------------------------------------------------------------------------
// Batched link drain: with unique arrival instants (no ties for the batched
// drain to coalesce) the delivered schedule — ids and times — is identical
// to the per-packet link.

TEST(BatchedLink, OpenLoopScheduleMatchesPerPacketLink) {
  util::Rng rng(5);
  std::vector<testing::TimedArrival> arrivals;
  double t = 0.0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    t += rng.exponential(0.02);
    arrivals.push_back(
        {t, packet(static_cast<FlowId>(i % 3),
                   static_cast<std::uint32_t>(rng.uniform_int(8, 200)), i)});
  }

  auto run = [&](bool batched) {
    core::Wf2qPlus s(8000.0);
    s.add_flow(0, 4000.0);
    s.add_flow(1, 2000.0);
    s.add_flow(2, 2000.0);
    sim::Simulator sim;
    sim::Link link(sim, s, 8000.0);
    if (batched) link.set_batched(true, 8);
    std::vector<testing::Departure> out;
    link.set_delivery([&](const Packet& p, net::Time now) {
      out.push_back({p, now});
    });
    for (auto& a : arrivals) {
      sim.at(a.time, [&link, pkt = a.pkt] { link.submit(pkt); });
    }
    sim.run();
    return out;
  };

  const auto per_packet = run(false);
  const auto batched = run(true);
  ASSERT_EQ(per_packet.size(), batched.size());
  ASSERT_EQ(per_packet.size(), arrivals.size());
  for (std::size_t i = 0; i < per_packet.size(); ++i) {
    EXPECT_EQ(per_packet[i].pkt.id, batched[i].pkt.id) << "departure " << i;
    EXPECT_NEAR(per_packet[i].time, batched[i].time, 1e-9);
  }
}

// Closed-loop (TCP Reno) equivalence: with the feedback-delay fence set to
// the protocol's true minimum reaction time (2 x one-way delay), the batched
// drain never commits a transmission a reaction could have preempted, so the
// schedule is identical to the per-packet link. This is the property that
// retired the "open-loop only" caveat (DESIGN.md "Batched link drain").
TEST(BatchedLink, ClosedLoopTcpScheduleMatchesPerPacketLink) {
  constexpr double kOwd = 0.005;
  auto run = [&](bool batched) {
    core::Wf2qPlus s(64000.0);
    s.add_flow(0, 40000.0, /*capacity_packets=*/8);
    s.add_flow(1, 24000.0, /*capacity_packets=*/8);
    sim::Simulator sim;
    sim::Link link(sim, s, 64000.0);
    if (batched) link.set_batched(true, 8, 2.0 * kOwd);
    std::vector<std::unique_ptr<traffic::TcpSource>> sources;
    for (FlowId f = 0; f < 2; ++f) {
      traffic::TcpConfig cfg;
      cfg.one_way_delay_s = kOwd;
      sources.push_back(std::make_unique<traffic::TcpSource>(
          sim, [&link](Packet p) { return link.submit(p); }, f, 125, cfg));
    }
    std::vector<testing::Departure> out;
    link.set_delivery([&](const Packet& p, net::Time now) {
      out.push_back({p, now});
      sources[p.flow]->on_packet_delivered(p);
    });
    sources[0]->start(0.001);
    sources[1]->start(0.002);
    sim.run_until(5.0);
    return out;
  };

  const auto per_packet = run(false);
  const auto batched = run(true);
  ASSERT_GT(per_packet.size(), 100u);
  ASSERT_EQ(per_packet.size(), batched.size());
  for (std::size_t i = 0; i < per_packet.size(); ++i) {
    EXPECT_EQ(per_packet[i].pkt.id, batched[i].pkt.id) << "departure " << i;
    EXPECT_NEAR(per_packet[i].time, batched[i].time, 1e-9) << "departure " << i;
  }
}

// A LYING feedback-delay declaration is detected at runtime: reactions
// arriving before the last committed transmission start trip the
// "batched-feedback-contract" audit and the violation counter.
TEST(BatchedLink, UnderdeclaredFeedbackDelayTripsContractCheck) {
  constexpr double kOwd = 0.005;
  core::Wf2qPlus s(64000.0);
  s.add_flow(0, 40000.0, /*capacity_packets=*/8);
  s.add_flow(1, 24000.0, /*capacity_packets=*/8);
  sim::Simulator sim;
  sim::Link link(sim, s, 64000.0);
  // TCP reacts after 2*owd = 10ms, but the link is told feedback can't come
  // back for 10 seconds — so it commits bursts far past real reactions.
  link.set_batched(true, 64, 10.0);
  std::vector<std::unique_ptr<traffic::TcpSource>> sources;
  for (FlowId f = 0; f < 2; ++f) {
    traffic::TcpConfig cfg;
    cfg.one_way_delay_s = kOwd;
    sources.push_back(std::make_unique<traffic::TcpSource>(
        sim, [&link](Packet p) { return link.submit(p); }, f, 125, cfg));
  }
  link.set_delivery([&](const Packet& p, net::Time) {
    sources[p.flow]->on_packet_delivered(p);
  });
  std::vector<std::string> reported;
  audit::CollectScope audits(
      [&](const audit::Violation& v) { reported.push_back(v.invariant); });
  sources[0]->start(0.001);
  sources[1]->start(0.002);
  sim.run_until(5.0);
  EXPECT_GT(link.feedback_contract_violations(), 0u);
  EXPECT_NE(std::find(reported.begin(), reported.end(),
                      "batched-feedback-contract"),
            reported.end());
}

// The honest declaration keeps the contract check silent.
TEST(BatchedLink, HonestFeedbackDelayIsViolationFree) {
  constexpr double kOwd = 0.005;
  core::Wf2qPlus s(64000.0);
  s.add_flow(0, 64000.0, /*capacity_packets=*/8);
  sim::Simulator sim;
  sim::Link link(sim, s, 64000.0);
  link.set_batched(true, 64, 2.0 * kOwd);
  traffic::TcpConfig cfg;
  cfg.one_way_delay_s = kOwd;
  traffic::TcpSource src(
      sim, [&link](Packet p) { return link.submit(p); }, 0, 125, cfg);
  link.set_delivery(
      [&](const Packet& p, net::Time) { src.on_packet_delivered(p); });
  src.start(0.001);
  sim.run_until(5.0);
  EXPECT_EQ(link.feedback_contract_violations(), 0u);
}

TEST(BatchedLink, CampaignDirectiveParsesAndRidesTheGrid) {
  std::istringstream in(
      "campaign c\nbatched-link 1\nschedulers hwf2q+\n"
      "tree t fanout=2 depth=1\n");
  const runner::CampaignSpec spec = runner::parse_campaign(in);
  EXPECT_TRUE(spec.batched_link);
  const auto scenarios = spec.expand();
  ASSERT_EQ(scenarios.size(), 1u);
  EXPECT_TRUE(scenarios[0].batched_link);
  EXPECT_NE(scenarios[0].label().find("batched=1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Legacy datapath: the "arrival-seq-sync" invariant exists precisely because
// the deque-era layout lets queue membership and sequence bookkeeping
// diverge. Induce the desync and watch it fire; the arena datapath has no
// second container to desynchronize.

#ifdef HFQ_AUDIT_ENABLED
class DesyncedLegacy : public audit::Wf2qPlusLegacy {
 public:
  using audit::Wf2qPlusLegacy::Wf2qPlusLegacy;
  // Simulates the partial-failure bug class: the arrival-number deque loses
  // an entry while the packet queue keeps its packet.
  void corrupt(FlowId id) { arrival_nos_[id].pop_front(); }
};

TEST(LegacyAudit, ArrivalSeqSyncInvariantFiresOnInducedDesync) {
  std::vector<std::string> seen;
  audit::CollectScope scope([&seen](const audit::Violation& v) {
    seen.push_back(v.invariant);
  });
  DesyncedLegacy s(8000.0);
  s.add_flow(0, 8000.0);
  s.enqueue(packet(0, 100, 0), 0.0);
  s.enqueue(packet(0, 100, 1), 0.0);
  ASSERT_TRUE(seen.empty()) << "clean run must not report";
  s.corrupt(0);
  s.enqueue(packet(0, 100, 2), 0.0);
  EXPECT_TRUE(std::find(seen.begin(), seen.end(), "arrival-seq-sync") !=
              seen.end());
}
#endif  // HFQ_AUDIT_ENABLED

// The legacy twin must itself produce the canonical schedule (it backs the
// fuzz differential and the benchmark's "before" side).
TEST(LegacyTwin, MatchesRewrittenDatapathOnSpotTrace) {
  util::Rng rng(99);
  std::vector<testing::TimedArrival> arrivals;
  double t = 0.0;
  for (std::uint64_t i = 0; i < 120; ++i) {
    t += rng.exponential(0.03);
    arrivals.push_back(
        {t, packet(static_cast<FlowId>(rng.uniform_int(0, 3)),
                   static_cast<std::uint32_t>(rng.uniform_int(8, 250)), i)});
  }
  auto add_flows = [](auto& s) {
    s.add_flow(0, 3000.0);
    s.add_flow(1, 3000.0);
    s.add_flow(2, 1000.0);
    s.add_flow(3, 1000.0);
  };
  core::Wf2qPlus now_impl(8000.0);
  audit::Wf2qPlusLegacy then_impl(8000.0);
  add_flows(now_impl);
  add_flows(then_impl);
  const auto a = testing::run_trace(now_impl, 8000.0, arrivals);
  const auto b = testing::run_trace(then_impl, 8000.0, arrivals);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pkt.id, b[i].pkt.id) << "departure " << i;
    EXPECT_DOUBLE_EQ(a[i].time, b[i].time);
  }
}

}  // namespace
}  // namespace hfq
