// Differential properties: packet schedulers against the exact fluid GPS
// reference, and alternative formulations against each other, on randomized
// traffic. These are the strongest correctness checks in the suite — they
// pin the defining inequality of each algorithm rather than examples.
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "core/wf2qplus.h"
#include "core/wf2qplus_fixed.h"
#include "fluid/gps.h"
#include "harness.h"
#include "sched/wf2q.h"
#include "sched/wf2qplus_perpacket.h"
#include "sched/wfq.h"
#include "util/rng.h"

namespace hfq {
namespace {

using net::FlowId;
using net::Packet;
using testing::TimedArrival;
using testing::packet;
using testing::run_trace;

constexpr double kLink = 8000.0;
constexpr int kFlows = 4;
constexpr double kRates[kFlows] = {1000.0, 2000.0, 2000.0, 3000.0};
constexpr std::uint32_t kMaxBytes = 100;  // Lmax = 800 bits

std::vector<TimedArrival> random_trace(std::uint64_t seed, int count) {
  util::Rng rng(seed);
  std::vector<TimedArrival> arr;
  std::uint64_t id = 0;
  double t = 0.0;
  for (int i = 0; i < count; ++i) {
    t += rng.uniform(0.0, 0.25);
    arr.push_back({t, packet(static_cast<FlowId>(rng.uniform_int(0, 3)),
                             static_cast<std::uint32_t>(
                                 rng.uniform_int(10, kMaxBytes)),
                             id++)});
  }
  return arr;
}

// Per-flow cumulative service of the packet system at each departure
// instant, compared against the fluid GPS (same arrivals).
template <typename Sched>
void check_gps_tracking(Sched& s, std::uint64_t seed, double ahead_bound_bits,
                        double behind_bound_bits) {
  const auto arr = random_trace(seed, 400);
  fluid::GpsServer<double> gps(kLink);
  for (FlowId f = 0; f < kFlows; ++f) gps.add_flow(f, kRates[f]);

  sim::Simulator sim;
  sim::Link link(sim, s, kLink);
  std::map<FlowId, double> served;
  std::size_t next_arrival = 0;
  double worst_ahead = 0.0, worst_behind = 0.0;
  link.set_delivery([&](const Packet& p, net::Time t) {
    served[p.flow] += p.size_bits();
    // Feed the fluid oracle the arrivals that happened up to this instant,
    // then advance it here.
    while (next_arrival < arr.size() && arr[next_arrival].time <= t) {
      gps.arrive(arr[next_arrival].time, arr[next_arrival].pkt.flow,
                 arr[next_arrival].pkt.size_bits());
      ++next_arrival;
    }
    gps.advance_to(t);
    for (FlowId f = 0; f < kFlows; ++f) {
      const double diff = served[f] - gps.work(f);  // + = ahead of fluid
      worst_ahead = std::max(worst_ahead, diff);
      worst_behind = std::max(worst_behind, -diff);
    }
  });
  for (const auto& a : arr) {
    sim.at(a.time, [&link, pkt = a.pkt] { link.submit(pkt); });
  }
  sim.run();
  EXPECT_LE(worst_ahead, ahead_bound_bits) << "ran ahead of GPS";
  EXPECT_LE(worst_behind, behind_bound_bits) << "fell behind GPS";
}

// WF²Q / WF²Q+: within ~one maximum packet of fluid GPS in BOTH directions
// (§3.3: "the difference ... is less than one packet size"). The behind
// direction gets one extra packet of slack for the packet in transmission.
TEST(Differential, Wf2qStaysWithinOnePacketOfGps) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    sched::Wf2q s(kLink);
    for (FlowId f = 0; f < kFlows; ++f) s.add_flow(f, kRates[f]);
    check_gps_tracking(s, seed, 800.0 + 1.0, 2.0 * 800.0 + 1.0);
  }
}

TEST(Differential, Wf2qPlusStaysWithinOnePacketOfGps) {
  for (std::uint64_t seed : {6u, 7u, 8u, 9u, 10u}) {
    core::Wf2qPlus s(kLink);
    for (FlowId f = 0; f < kFlows; ++f) s.add_flow(f, kRates[f]);
    check_gps_tracking(s, seed, 800.0 + 1.0, 2.0 * 800.0 + 1.0);
  }
}

// WFQ: never falls far behind GPS (delay property) but CAN run far ahead —
// that asymmetry is exactly the paper's critique.
TEST(Differential, WfqFallsBehindLittleButRunsAhead) {
  sched::Wfq s(kLink);
  for (FlowId f = 0; f < kFlows; ++f) s.add_flow(f, kRates[f]);
  // behind bound: ~2 packets; ahead bound: allow plenty (we only check it
  // does not explode unboundedly).
  check_gps_tracking(s, 11, kFlows * 800.0, 2.0 * 800.0 + 1.0);
}

// Per-session tags (Eq. 28/29, core::Wf2qPlus) versus per-packet tags
// (Eqs. 6/7, sched::Wf2qPlusPerPacket): identical schedules on random
// traffic at moderate load. (The equivalence is conditional — it holds as
// long as V never overtakes a backlogged session's newest finish tag, which
// is the case for these traces; under sustained overload the stamps can
// legitimately diverge, see sched/wf2qplus_perpacket.h. The differential
// fuzzer checks the unconditional mutual service-tracking bound.)
TEST(Differential, PerSessionAndPerPacketWf2qPlusMatch) {
  for (std::uint64_t seed : {21u, 22u, 23u, 24u, 25u}) {
    core::Wf2qPlus a(kLink);
    sched::Wf2qPlusPerPacket b(kLink);
    for (FlowId f = 0; f < kFlows; ++f) {
      a.add_flow(f, kRates[f]);
      b.add_flow(f, kRates[f]);
    }
    const auto arr = random_trace(seed, 500);
    const auto da = run_trace(a, kLink, arr);
    const auto db = run_trace(b, kLink, arr);
    ASSERT_EQ(da.size(), db.size());
    for (std::size_t i = 0; i < da.size(); ++i) {
      ASSERT_EQ(da[i].pkt.id, db[i].pkt.id)
          << "seed " << seed << " departure " << i;
      ASSERT_NEAR(da[i].time, db[i].time, 1e-9);
    }
  }
}

// Fixed-point versus double WF²Q+ on randomized tie-heavy traces. Equal
// power-of-two rates and a power-of-two packet size keep every tag exact in
// both double and 2^-20-tick arithmetic, so the two implementations face
// identical tie sets and must resolve them identically: packet-arrival
// (FIFO) order, even across waiting→eligible heap migrations. This is the
// regression net for the bare-tag heap-key bug in Wf2qPlusFixed.
TEST(Differential, FixedPointMatchesDoubleOnTieHeavyTraces) {
  constexpr double kTieLink = 8192.0;
  constexpr int kTieFlows = 4;
  for (std::uint64_t seed : {31u, 32u, 33u, 34u, 35u}) {
    core::Wf2qPlus a(kTieLink);
    core::Wf2qPlusFixed b(static_cast<std::uint64_t>(kTieLink));
    for (FlowId f = 0; f < kTieFlows; ++f) {
      a.add_flow(f, kTieLink / kTieFlows);
      b.add_flow(f, kTieLink / kTieFlows);
    }
    // Bursts of same-instant 64-byte arrivals: tags tie constantly.
    util::Rng rng(seed);
    std::vector<TimedArrival> arr;
    std::uint64_t id = 0;
    double t = 0.0;
    while (id < 300) {
      t += rng.uniform(0.0, 0.3);
      const int burst = static_cast<int>(rng.uniform_int(1, 8));
      for (int k = 0; k < burst && id < 300; ++k) {
        arr.push_back({t, packet(static_cast<FlowId>(
                                     rng.uniform_int(0, kTieFlows - 1)),
                                 64, id++)});
      }
    }
    const auto da = run_trace(a, kTieLink, arr);
    const auto db = run_trace(b, kTieLink, arr);
    ASSERT_EQ(da.size(), db.size());
    for (std::size_t i = 0; i < da.size(); ++i) {
      ASSERT_EQ(da[i].pkt.id, db[i].pkt.id)
          << "seed " << seed << " departure " << i;
    }
  }
}

// On general traces the tick rounding makes the two resolve near-ties
// differently, but per-flow service must track within one maximum packet.
TEST(Differential, FixedPointTracksDoubleWithinOnePacket) {
  for (std::uint64_t seed : {26u, 27u, 28u}) {
    core::Wf2qPlus a(kLink);
    core::Wf2qPlusFixed b(static_cast<std::uint64_t>(kLink));
    for (FlowId f = 0; f < kFlows; ++f) {
      a.add_flow(f, kRates[f]);
      b.add_flow(f, kRates[f]);
    }
    const auto arr = random_trace(seed, 400);
    const auto da = run_trace(a, kLink, arr);
    const auto db = run_trace(b, kLink, arr);
    ASSERT_EQ(da.size(), db.size());
    std::map<FlowId, double> wa, wb;
    for (std::size_t i = 0; i < da.size(); ++i) {
      wa[da[i].pkt.flow] += da[i].pkt.size_bits();
      wb[db[i].pkt.flow] += db[i].pkt.size_bits();
      for (const auto& [f, bits] : wa) {
        ASSERT_NEAR(bits, wb[f], 8.0 * kMaxBytes + 1.0)
            << "seed " << seed << " departure " << i << " flow " << f;
      }
    }
  }
}

// And on the exact Fig. 2 pattern, where ties matter.
TEST(Differential, PerPacketVariantMatchesOnFig2) {
  sched::Wf2qPlusPerPacket s(8.0);
  s.add_flow(0, 4.0);
  for (FlowId j = 1; j <= 10; ++j) s.add_flow(j, 0.4);
  const auto deps = run_trace(s, 8.0, testing::fig2_arrivals());
  ASSERT_EQ(deps.size(), 21u);
  for (int i = 0; i < 21; ++i) {
    EXPECT_EQ(deps[static_cast<std::size_t>(i)].pkt.flow == 0, i % 2 == 0)
        << i;
  }
}

}  // namespace
}  // namespace hfq
