// Differential properties: packet schedulers against the exact fluid GPS
// reference, and alternative formulations against each other, on randomized
// traffic. These are the strongest correctness checks in the suite — they
// pin the defining inequality of each algorithm rather than examples.
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "core/wf2qplus.h"
#include "fluid/gps.h"
#include "harness.h"
#include "sched/wf2q.h"
#include "sched/wf2qplus_perpacket.h"
#include "sched/wfq.h"
#include "util/rng.h"

namespace hfq {
namespace {

using net::FlowId;
using net::Packet;
using testing::TimedArrival;
using testing::packet;
using testing::run_trace;

constexpr double kLink = 8000.0;
constexpr int kFlows = 4;
constexpr double kRates[kFlows] = {1000.0, 2000.0, 2000.0, 3000.0};
constexpr std::uint32_t kMaxBytes = 100;  // Lmax = 800 bits

std::vector<TimedArrival> random_trace(std::uint64_t seed, int count) {
  util::Rng rng(seed);
  std::vector<TimedArrival> arr;
  std::uint64_t id = 0;
  double t = 0.0;
  for (int i = 0; i < count; ++i) {
    t += rng.uniform(0.0, 0.25);
    arr.push_back({t, packet(static_cast<FlowId>(rng.uniform_int(0, 3)),
                             static_cast<std::uint32_t>(
                                 rng.uniform_int(10, kMaxBytes)),
                             id++)});
  }
  return arr;
}

// Per-flow cumulative service of the packet system at each departure
// instant, compared against the fluid GPS (same arrivals).
template <typename Sched>
void check_gps_tracking(Sched& s, std::uint64_t seed, double ahead_bound_bits,
                        double behind_bound_bits) {
  const auto arr = random_trace(seed, 400);
  fluid::GpsServer<double> gps(kLink);
  for (FlowId f = 0; f < kFlows; ++f) gps.add_flow(f, kRates[f]);

  sim::Simulator sim;
  sim::Link link(sim, s, kLink);
  std::map<FlowId, double> served;
  std::size_t next_arrival = 0;
  double worst_ahead = 0.0, worst_behind = 0.0;
  link.set_delivery([&](const Packet& p, net::Time t) {
    served[p.flow] += p.size_bits();
    // Feed the fluid oracle the arrivals that happened up to this instant,
    // then advance it here.
    while (next_arrival < arr.size() && arr[next_arrival].time <= t) {
      gps.arrive(arr[next_arrival].time, arr[next_arrival].pkt.flow,
                 arr[next_arrival].pkt.size_bits());
      ++next_arrival;
    }
    gps.advance_to(t);
    for (FlowId f = 0; f < kFlows; ++f) {
      const double diff = served[f] - gps.work(f);  // + = ahead of fluid
      worst_ahead = std::max(worst_ahead, diff);
      worst_behind = std::max(worst_behind, -diff);
    }
  });
  for (const auto& a : arr) {
    sim.at(a.time, [&link, pkt = a.pkt] { link.submit(pkt); });
  }
  sim.run();
  EXPECT_LE(worst_ahead, ahead_bound_bits) << "ran ahead of GPS";
  EXPECT_LE(worst_behind, behind_bound_bits) << "fell behind GPS";
}

// WF²Q / WF²Q+: within ~one maximum packet of fluid GPS in BOTH directions
// (§3.3: "the difference ... is less than one packet size"). The behind
// direction gets one extra packet of slack for the packet in transmission.
TEST(Differential, Wf2qStaysWithinOnePacketOfGps) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    sched::Wf2q s(kLink);
    for (FlowId f = 0; f < kFlows; ++f) s.add_flow(f, kRates[f]);
    check_gps_tracking(s, seed, 800.0 + 1.0, 2.0 * 800.0 + 1.0);
  }
}

TEST(Differential, Wf2qPlusStaysWithinOnePacketOfGps) {
  for (std::uint64_t seed : {6u, 7u, 8u, 9u, 10u}) {
    core::Wf2qPlus s(kLink);
    for (FlowId f = 0; f < kFlows; ++f) s.add_flow(f, kRates[f]);
    check_gps_tracking(s, seed, 800.0 + 1.0, 2.0 * 800.0 + 1.0);
  }
}

// WFQ: never falls far behind GPS (delay property) but CAN run far ahead —
// that asymmetry is exactly the paper's critique.
TEST(Differential, WfqFallsBehindLittleButRunsAhead) {
  sched::Wfq s(kLink);
  for (FlowId f = 0; f < kFlows; ++f) s.add_flow(f, kRates[f]);
  // behind bound: ~2 packets; ahead bound: allow plenty (we only check it
  // does not explode unboundedly).
  check_gps_tracking(s, 11, kFlows * 800.0, 2.0 * 800.0 + 1.0);
}

// Per-session tags (Eq. 28/29, core::Wf2qPlus) versus per-packet tags
// (Eqs. 6/7, sched::Wf2qPlusPerPacket): identical schedules on random
// traffic. This is the §3.4 simplification argument, verified.
TEST(Differential, PerSessionAndPerPacketWf2qPlusMatch) {
  for (std::uint64_t seed : {21u, 22u, 23u, 24u, 25u}) {
    core::Wf2qPlus a(kLink);
    sched::Wf2qPlusPerPacket b(kLink);
    for (FlowId f = 0; f < kFlows; ++f) {
      a.add_flow(f, kRates[f]);
      b.add_flow(f, kRates[f]);
    }
    const auto arr = random_trace(seed, 500);
    const auto da = run_trace(a, kLink, arr);
    const auto db = run_trace(b, kLink, arr);
    ASSERT_EQ(da.size(), db.size());
    for (std::size_t i = 0; i < da.size(); ++i) {
      ASSERT_EQ(da[i].pkt.id, db[i].pkt.id)
          << "seed " << seed << " departure " << i;
      ASSERT_NEAR(da[i].time, db[i].time, 1e-9);
    }
  }
}

// And on the exact Fig. 2 pattern, where ties matter.
TEST(Differential, PerPacketVariantMatchesOnFig2) {
  sched::Wf2qPlusPerPacket s(8.0);
  s.add_flow(0, 4.0);
  for (FlowId j = 1; j <= 10; ++j) s.add_flow(j, 0.4);
  const auto deps = run_trace(s, 8.0, testing::fig2_arrivals());
  ASSERT_EQ(deps.size(), 21u);
  for (int i = 0; i < 21; ++i) {
    EXPECT_EQ(deps[static_cast<std::size_t>(i)].pkt.flow == 0, i % 2 == 0)
        << i;
  }
}

}  // namespace
}  // namespace hfq
