// Failure injection and edge cases: buffer exhaustion mid-schedule, drops
// interacting with virtual-time state, pathological configurations, and the
// policer.
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "core/hpfq.h"
#include "core/wf2qplus.h"
#include "harness.h"
#include "qos/policer.h"
#include "sched/wfq.h"
#include "util/rng.h"

namespace hfq {
namespace {

using net::FlowId;
using net::Packet;
using testing::TimedArrival;
using testing::packet;
using testing::run_trace;

// Drops at a full session buffer must not corrupt virtual-time state: the
// surviving packets still obey FIFO and conservation, and the flow keeps
// its share afterwards.
TEST(FailureInjection, DropsDoNotCorruptWf2qPlusState) {
  util::Rng rng(99);
  core::Wf2qPlus s(8000.0);
  s.add_flow(0, 4000.0, /*capacity=*/4);
  s.add_flow(1, 4000.0, /*capacity=*/4);
  std::vector<TimedArrival> arr;
  std::uint64_t id = 0;
  double t = 0.0;
  // Heavy overload: many drops guaranteed.
  for (int i = 0; i < 600; ++i) {
    t += rng.uniform(0.0, 0.05);
    arr.push_back({t, packet(static_cast<FlowId>(rng.uniform_int(0, 1)),
                             125, id++)});
  }
  const auto deps = run_trace(s, 8000.0, arr);
  EXPECT_GT(s.drops(0) + s.drops(1), 0u);
  EXPECT_EQ(deps.size() + s.drops(0) + s.drops(1), arr.size());
  std::map<FlowId, std::uint64_t> last;
  for (const auto& d : deps) {
    if (last.count(d.pkt.flow) != 0) {
      EXPECT_LT(last[d.pkt.flow], d.pkt.id);
    }
    last[d.pkt.flow] = d.pkt.id;
  }
  // Post-overload the scheduler still works.
  EXPECT_TRUE(s.enqueue(packet(0, 125, 999999), t + 100.0));
  EXPECT_TRUE(s.dequeue(t + 100.0).has_value());
}

// Same for the WFQ fluid tracker: dropped packets must never be stamped
// into the fluid system (otherwise phantom fluid work distorts everyone).
TEST(FailureInjection, WfqDropsNeverEnterFluidSystem) {
  sched::Wfq s(8000.0);
  s.add_flow(0, 4000.0, /*capacity=*/2);
  s.add_flow(1, 4000.0);
  sim::Simulator sim;
  sim::Link link(sim, s, 8000.0);
  std::map<FlowId, int> delivered;
  link.set_delivery(
      [&](const Packet& p, net::Time) { delivered[p.flow]++; });
  sim.at(0.0, [&] {
    for (int i = 0; i < 20; ++i) link.submit(packet(0, 125, i));  // drops
    for (int i = 0; i < 10; ++i) link.submit(packet(1, 125, 100 + i));
  });
  sim.run();
  EXPECT_EQ(delivered[0], 3);  // 1 in service + 2 buffered
  EXPECT_EQ(delivered[1], 10);
  EXPECT_EQ(s.drops(0), 17u);
  // Flow 1 must not have been delayed by phantom flow-0 fluid work: total
  // time = 13 packets x 0.125 s.
  EXPECT_NEAR(sim.now(), 13 * 0.125, 1e-9);
}

// Hierarchies with drops at leaves: conservation at every level.
TEST(FailureInjection, HierarchyDropsConserved) {
  core::HWf2qPlus h(8000.0);
  const auto a = h.add_internal(h.root(), 4000.0);
  h.add_leaf(a, 2000.0, 0, /*capacity=*/3);
  h.add_leaf(a, 2000.0, 1, /*capacity=*/3);
  h.add_leaf(h.root(), 4000.0, 2, /*capacity=*/3);
  std::vector<TimedArrival> arr;
  std::uint64_t id = 0;
  for (int k = 0; k < 30; ++k) {
    for (FlowId f = 0; f < 3; ++f) arr.push_back({0.0, packet(f, 125, id++)});
  }
  const auto deps = run_trace(h, 8000.0, arr);
  const auto total_drops = h.drops(0) + h.drops(1) + h.drops(2);
  EXPECT_EQ(deps.size() + total_drops, arr.size());
  EXPECT_GT(total_drops, 0u);
  EXPECT_EQ(h.backlog_packets(), 0u);
}

// A one-packet-capacity session (the smallest legal buffer).
TEST(FailureInjection, SinglePacketBufferWorks) {
  core::Wf2qPlus s(8000.0);
  s.add_flow(0, 8000.0, /*capacity=*/1);
  EXPECT_TRUE(s.enqueue(packet(0, 125, 1), 0.0));
  EXPECT_FALSE(s.enqueue(packet(0, 125, 2), 0.0));
  EXPECT_TRUE(s.dequeue(0.0).has_value());
  EXPECT_TRUE(s.enqueue(packet(0, 125, 3), 0.125));
}

// Extreme rate asymmetry (1 : 10^6) must neither starve nor crash.
TEST(FailureInjection, ExtremeRateAsymmetry) {
  core::Wf2qPlus s(1e7);
  s.add_flow(0, 1e7 - 10.0);
  s.add_flow(1, 10.0);
  std::vector<TimedArrival> arr;
  std::uint64_t id = 0;
  for (int k = 0; k < 500; ++k) arr.push_back({0.0, packet(0, 125, id++)});
  for (int k = 0; k < 3; ++k) arr.push_back({0.0, packet(1, 125, id++)});
  const auto deps = run_trace(s, 1e7, arr);
  ASSERT_EQ(deps.size(), 503u);
  // The tiny flow is not starved forever: its first packet departs while
  // the big flow still has work (eligible with an early start tag).
  double first_tiny = -1.0;
  for (const auto& d : deps) {
    if (d.pkt.flow == 1) {
      first_tiny = d.time;
      break;
    }
  }
  ASSERT_GT(first_tiny, 0.0);
  EXPECT_LT(first_tiny, deps.back().time);
}

// Many flows, one packet each, all at once (a flash crowd).
TEST(FailureInjection, FlashCrowdOfThousandFlows) {
  core::Wf2qPlus s(8000.0);
  const int n = 1000;
  for (int f = 0; f < n; ++f) {
    s.add_flow(static_cast<FlowId>(f), 8000.0 / n);
  }
  std::vector<TimedArrival> arr;
  for (int f = 0; f < n; ++f) {
    arr.push_back({0.0, packet(static_cast<FlowId>(f), 125,
                               static_cast<std::uint64_t>(f))});
  }
  const auto deps = run_trace(s, 8000.0, arr);
  ASSERT_EQ(deps.size(), static_cast<std::size_t>(n));
  // Work conserving: finishes in exactly n packet times.
  EXPECT_NEAR(deps.back().time, n * 0.125, 1e-6);
}

// --------------------------------------------------------------- Policer

TEST(Policer, AllowsBurstUpToSigma) {
  qos::Policer pol(3000.0, 1000.0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(pol.conforms(packet(0, 125, static_cast<std::uint64_t>(i)),
                             0.0));
  }
  EXPECT_FALSE(pol.conforms(packet(0, 125, 3), 0.0));
  EXPECT_EQ(pol.conformant(), 3u);
  EXPECT_EQ(pol.dropped(), 1u);
}

TEST(Policer, RefillsAtRho) {
  qos::Policer pol(1000.0, 1000.0);
  EXPECT_TRUE(pol.conforms(packet(0, 125, 1), 0.0));  // bucket empty now
  EXPECT_FALSE(pol.conforms(packet(0, 125, 2), 0.1)); // only 100 bits back
  EXPECT_TRUE(pol.conforms(packet(0, 125, 3), 1.0));  // 1000 bits back
}

TEST(Policer, PolicedStreamConformsToArrivalCurve) {
  util::Rng rng(13);
  qos::Policer pol(4000.0, 2000.0);
  std::vector<std::pair<double, double>> accepted;  // (time, bits)
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    t += rng.uniform(0.0, 0.2);
    Packet p = packet(0, static_cast<std::uint32_t>(rng.uniform_int(50, 250)),
                      static_cast<std::uint64_t>(i));
    if (pol.conforms(p, t)) accepted.emplace_back(t, p.size_bits());
  }
  // Every window of the accepted stream satisfies sigma + rho * dt.
  std::vector<double> cum(accepted.size() + 1, 0.0);
  for (std::size_t i = 0; i < accepted.size(); ++i) {
    cum[i + 1] = cum[i] + accepted[i].second;
  }
  for (std::size_t i = 0; i < accepted.size(); ++i) {
    for (std::size_t j = i; j < accepted.size(); ++j) {
      const double window = cum[j + 1] - cum[i];
      const double dt = accepted[j].first - accepted[i].first;
      ASSERT_LE(window, 4000.0 + 2000.0 * dt + 1e-6);
    }
  }
}

}  // namespace
}  // namespace hfq
