// Tests for the fixed-point WF²Q+ (core/wf2qplus_fixed) and the
// latency-rate estimator (stats/latency_rate).
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "core/wf2qplus.h"
#include "core/wf2qplus_fixed.h"
#include "harness.h"
#include "stats/latency_rate.h"
#include "stats/wfi_estimator.h"
#include "util/rng.h"

namespace hfq {
namespace {

using net::FlowId;
using net::Packet;
using testing::TimedArrival;
using testing::packet;
using testing::run_trace;

// ------------------------------------------------------------ fixed point

TEST(Wf2qPlusFixed, Fig2PatternScaled) {
  // Same Fig. 2 pattern scaled x10: link 80 bps, session 0 at 40, ten
  // sessions at 4 bps, 10-byte packets (1 s slots).
  core::Wf2qPlusFixed s(80);
  s.add_flow(0, 40.0);
  for (FlowId j = 1; j <= 10; ++j) s.add_flow(j, 4.0);
  std::vector<TimedArrival> arr;
  std::uint64_t id = 0;
  for (int k = 0; k < 11; ++k) arr.push_back({0.0, packet(0, 10, id++)});
  for (FlowId j = 1; j <= 10; ++j) arr.push_back({0.0, packet(j, 10, id++)});
  const auto deps = run_trace(s, 80.0, arr);
  ASSERT_EQ(deps.size(), 21u);
  // WF²Q+ interleaving: session 0 in every even slot.
  for (int i = 0; i < 21; ++i) {
    EXPECT_EQ(deps[static_cast<std::size_t>(i)].pkt.flow == 0, i % 2 == 0)
        << "slot " << i;
  }
}

TEST(Wf2qPlusFixed, MatchesDoubleVersionOnRandomTraffic) {
  // Rates and sizes chosen so no two flows can produce equal tags (see the
  // one-level equivalence test in test_hpfq.cc): tie-breaking never kicks
  // in and both implementations must emit the identical schedule.
  util::Rng rng(909);
  for (int trial = 0; trial < 5; ++trial) {
    core::Wf2qPlus a(64.0);
    core::Wf2qPlusFixed b(64);
    const double rates[4] = {7.0, 11.0, 19.0, 27.0};
    for (FlowId f = 0; f < 4; ++f) {
      a.add_flow(f, rates[f]);
      b.add_flow(f, rates[f]);
    }
    std::vector<TimedArrival> arr;
    std::uint64_t id = 0;
    double t = 0.0;
    for (int i = 0; i < 300; ++i) {
      t += rng.uniform(0.0, 0.05);
      arr.push_back({t, packet(static_cast<FlowId>(rng.uniform_int(0, 3)),
                               static_cast<std::uint32_t>(rng.uniform_int(1, 6)),
                               id++)});
    }
    const auto da = run_trace(a, 64.0, arr);
    const auto db = run_trace(b, 64.0, arr);
    ASSERT_EQ(da.size(), db.size());
    // Tick rounding can flip eligibility decisions that sit within one
    // tick of the boundary, so the two (both valid WF²Q+) schedules may
    // differ in order — but never in service: per-flow cumulative bits
    // must track within one maximum packet at every departure index.
    std::map<FlowId, double> wa, wb;
    for (std::size_t i = 0; i < da.size(); ++i) {
      wa[da[i].pkt.flow] += da[i].pkt.size_bits();
      wb[db[i].pkt.flow] += db[i].pkt.size_bits();
      for (FlowId f = 0; f < 4; ++f) {
        ASSERT_NEAR(wa[f], wb[f], 48.0 + 1e-9)  // one max packet (6 bytes)
            << "trial " << trial << " departure " << i << " flow " << f;
      }
    }
  }
}

TEST(Wf2qPlusFixed, WfiBoundedByOneMaxPacket) {
  core::Wf2qPlusFixed s(8000);
  s.add_flow(0, 4000.0);
  s.add_flow(1, 2000.0);
  s.add_flow(2, 2000.0);
  sim::Simulator sim;
  sim::Link link(sim, s, 8000.0);
  stats::WfiEstimator wfi(0.5);
  wfi.backlog_start();
  link.set_delivery([&](const Packet& p, net::Time) {
    wfi.on_server_departure(p.size_bits(), p.flow == 0 ? p.size_bits() : 0.0);
  });
  sim.at(0.0, [&] {
    std::uint64_t id = 0;
    for (int k = 0; k < 400; ++k) {
      for (FlowId f = 0; f < 3; ++f) link.submit(packet(f, 125, id++));
    }
  });
  sim.run_until(40.0);
  EXPECT_LE(wfi.bwfi_bits(), 1000.0 + 1e-6);
}

TEST(Wf2qPlusFixed, RejectsSubBpsRates) {
  core::Wf2qPlusFixed s(8);
  EXPECT_DEATH(s.add_flow(0, 0.4), "fixed-point");
}

// ----------------------------------------------------------- latency rate

TEST(LatencyRate, ZeroForImmediateFullRateService) {
  stats::LatencyRateEstimator lr(1000.0);
  lr.backlog_start(0.0);
  // Service exactly at rate: 100 bits every 0.1 s, the first completing at
  // t=0.1 — consistent with theta = 0.
  for (int i = 1; i <= 10; ++i) lr.on_service(0.1 * i, 100.0);
  EXPECT_NEAR(lr.theta_seconds(), 0.0, 1e-9);
}

TEST(LatencyRate, MeasuresStartupLatency) {
  stats::LatencyRateEstimator lr(1000.0);
  lr.backlog_start(0.0);
  // Nothing until t=0.5, then full-rate service.
  for (int i = 1; i <= 10; ++i) lr.on_service(0.5 + 0.1 * i, 100.0);
  EXPECT_NEAR(lr.theta_seconds(), 0.5, 1e-9);
}

TEST(LatencyRate, IgnoresServiceOutsideBacklog) {
  stats::LatencyRateEstimator lr(1000.0);
  lr.on_service(100.0, 1.0);  // not in backlog: no effect
  EXPECT_NEAR(lr.theta_seconds(), 0.0, 1e-9);
  lr.backlog_start(100.0);
  lr.on_service(100.2, 100.0);
  EXPECT_NEAR(lr.theta_seconds(), 0.1, 1e-9);  // 0.2 - 100/1000
}

// WF²Q+ measured as an LR server: theta on the order of L_i/r_i + Lmax/R
// even with an adversarial competitor, never N-dependent.
TEST(LatencyRate, Wf2qPlusThetaIsSmall) {
  core::Wf2qPlus s(8000.0);
  const int n = 20;
  s.add_flow(0, 4000.0);
  for (int j = 1; j <= n; ++j) {
    s.add_flow(static_cast<FlowId>(j), 4000.0 / n);
  }
  sim::Simulator sim;
  sim::Link link(sim, s, 8000.0);
  stats::LatencyRateEstimator lr(4000.0);
  link.set_delivery([&](const Packet& p, net::Time t) {
    if (p.flow == 0) lr.on_service(t, p.size_bits());
  });
  sim.at(0.0, [&] {
    std::uint64_t id = 0;
    for (int j = 1; j <= n; ++j) {
      for (int k = 0; k < 10; ++k) {
        link.submit(packet(static_cast<FlowId>(j), 125, id++));
      }
    }
  });
  // Flow 0 becomes backlogged at t=1, mid-contention.
  sim.at(1.0, [&] {
    lr.backlog_start(1.0);
    for (int k = 0; k < 40; ++k) {
      link.submit(packet(0, 125, 10000 + static_cast<std::uint64_t>(k)));
    }
  });
  sim.run();
  // L_i/r_i + 2 Lmax/R = 0.25 + 0.25; allow one extra packet of slack.
  EXPECT_LE(lr.theta_seconds(), 0.625);
}

}  // namespace
}  // namespace hfq
