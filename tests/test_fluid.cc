// Tests for the fluid reference servers (src/fluid): GPS, H-GPS and the
// ideal-share solver — including the paper's worked examples, verified with
// exact rational arithmetic.
#include <limits>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "fluid/gps.h"
#include "fluid/hgps.h"
#include "fluid/share_solver.h"
#include "util/rational.h"
#include "util/rng.h"

namespace hfq::fluid {
namespace {

using util::Rational;

// -------------------------------------------------------------------- GPS

TEST(GpsServer, SingleFlowServedAtLinkRate) {
  GpsServer<double> gps(100.0);
  gps.add_flow(0, 100.0);
  gps.arrive(0.0, 0, 50.0);
  gps.advance_to(0.25);
  EXPECT_NEAR(gps.work(0), 25.0, 1e-9);
  gps.advance_to(1.0);
  EXPECT_NEAR(gps.work(0), 50.0, 1e-9);
  EXPECT_FALSE(gps.backlogged(0));
  ASSERT_EQ(gps.departures().size(), 1u);
  EXPECT_NEAR(gps.departures()[0].time, 0.5, 1e-9);
}

TEST(GpsServer, EqualFlowsSplitEqually) {
  GpsServer<double> gps(100.0);
  gps.add_flow(0, 50.0);
  gps.add_flow(1, 50.0);
  gps.arrive(0.0, 0, 100.0);
  gps.arrive(0.0, 1, 100.0);
  gps.advance_to(1.0);
  EXPECT_NEAR(gps.work(0), 50.0, 1e-9);
  EXPECT_NEAR(gps.work(1), 50.0, 1e-9);
}

TEST(GpsServer, ExcessBandwidthRedistributed) {
  // Flow 1 drains early; flow 0 then gets the whole link.
  GpsServer<double> gps(100.0);
  gps.add_flow(0, 50.0);
  gps.add_flow(1, 50.0);
  gps.arrive(0.0, 0, 100.0);
  gps.arrive(0.0, 1, 25.0);
  // Flow 1 drains at t = 0.5 (25 bits at 50 bps).
  gps.advance_to(0.5);
  EXPECT_FALSE(gps.backlogged(1));
  EXPECT_NEAR(gps.work(0), 25.0, 1e-9);
  gps.advance_to(1.0);
  EXPECT_NEAR(gps.work(0), 25.0 + 100.0 * 0.5, 1e-9);
}

TEST(GpsServer, WorkConservingAcrossIdleGaps) {
  GpsServer<double> gps(10.0);
  gps.add_flow(0, 10.0);
  gps.arrive(0.0, 0, 10.0);   // busy [0, 1]
  gps.advance_to(2.0);        // idle [1, 2]
  gps.arrive(2.0, 0, 10.0);   // busy [2, 3]
  gps.advance_to(4.0);
  EXPECT_NEAR(gps.work(0), 20.0, 1e-9);
  ASSERT_EQ(gps.departures().size(), 2u);
  EXPECT_NEAR(gps.departures()[0].time, 1.0, 1e-9);
  EXPECT_NEAR(gps.departures()[1].time, 3.0, 1e-9);
}

// The Fig. 2 scenario, exact: link rate 1, unit packets; session 1 has
// rate 0.5 and sends 11 packets at t=0; sessions 2..11 have rate 0.05 and
// send one packet each at t=0. GPS finish times: 2k for p1^k (k=1..10),
// 21 for p1^11, and 20 for every other session's packet.
TEST(GpsServer, PaperFig2FinishTimesExact) {
  GpsServer<Rational> gps(Rational(1));
  gps.add_flow(0, Rational(1, 2));
  for (net::FlowId j = 1; j <= 10; ++j) gps.add_flow(j, Rational(1, 20));
  for (int k = 0; k < 11; ++k) gps.arrive(Rational(0), 0, Rational(1));
  for (net::FlowId j = 1; j <= 10; ++j) gps.arrive(Rational(0), j, Rational(1));
  gps.advance_to(Rational(30));

  std::vector<Rational> s1_finishes;
  std::vector<Rational> other_finishes;
  for (const auto& d : gps.departures()) {
    if (d.flow == 0) {
      s1_finishes.push_back(d.time);
    } else {
      other_finishes.push_back(d.time);
    }
  }
  ASSERT_EQ(s1_finishes.size(), 11u);
  for (int k = 1; k <= 10; ++k) {
    EXPECT_EQ(s1_finishes[k - 1], Rational(2 * k)) << "packet " << k;
  }
  EXPECT_EQ(s1_finishes[10], Rational(21));
  ASSERT_EQ(other_finishes.size(), 10u);
  for (const auto& t : other_finishes) EXPECT_EQ(t, Rational(20));
}

// Property (Eq. 2): during any interval in which two flows are both
// backlogged, normalized service is identical — exactly, on rationals.
TEST(GpsServerProperty, FairnessEq2ExactOnRandomTraffic) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    GpsServer<Rational> gps(Rational(10));
    const std::vector<Rational> rates = {Rational(1), Rational(2), Rational(3),
                                         Rational(4)};
    for (net::FlowId i = 0; i < 4; ++i) gps.add_flow(i, rates[i]);
    // Load every flow heavily at t=0 so all stay backlogged a while.
    for (net::FlowId i = 0; i < 4; ++i) {
      gps.arrive(Rational(0), i, Rational(100 + rng.uniform_int(0, 50)));
    }
    const Rational t1(rng.uniform_int(1, 3));
    const Rational t2 = t1 + Rational(rng.uniform_int(1, 3));
    gps.advance_to(t1);
    std::vector<Rational> w1(4);
    for (net::FlowId i = 0; i < 4; ++i) w1[i] = gps.work(i);
    gps.advance_to(t2);
    for (net::FlowId i = 0; i < 4; ++i) {
      ASSERT_TRUE(gps.backlogged(i));  // loads chosen large enough
      const Rational di = (gps.work(i) - w1[i]) / rates[i];
      const Rational d0 = (gps.work(0) - w1[0]) / rates[0];
      EXPECT_EQ(di, d0);
    }
  }
}

// Property (Eq. 3): a backlogged flow always gets at least its guaranteed
// rate, no matter what the others do.
TEST(GpsServerProperty, GuaranteedRateLowerBound) {
  util::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    GpsServer<double> gps(100.0);
    const int n = 5;
    for (net::FlowId i = 0; i < n; ++i) gps.add_flow(i, 20.0);
    gps.arrive(0.0, 0, 500.0);  // flow 0 backlogged for >= 5 s guaranteed
    double t = 0.0;
    for (int e = 0; e < 30; ++e) {
      t += rng.uniform(0.0, 0.2);
      const auto f = static_cast<net::FlowId>(rng.uniform_int(1, n - 1));
      gps.arrive(t, f, rng.uniform(10.0, 200.0));
    }
    const double t_end = 4.0;
    gps.advance_to(t_end);
    ASSERT_TRUE(gps.backlogged(0));
    EXPECT_GE(gps.work(0), 20.0 * t_end - 1e-6);
  }
}

// ------------------------------------------------------------------- H-GPS

// The Section 2.2 example, exact. Link rate 1, unit packets. Tree:
// root{A:0.8{A1:0.75, A2:0.05}, B:0.2}. A2 and B heavily backlogged at t=0;
// A1 idle. Under the no-future-arrival assumption A2 finishes at 1.25k and
// B at 5k. When A1 becomes backlogged at t=1 the A2/B *relative order*
// flips — the property that makes a single virtual time function impossible
// for H-GPS. (Exact post-arrival finish times: A2's first packet has 1/5
// bit left served at rate 1/20 → t=5; later packets every 20. The paper's
// prose quotes 21/41/61, which neglects A2's service during [0,1]; the
// order flip it illustrates is unaffected.)
TEST(HgpsServer, PaperSection22ReorderExampleExact) {
  // First: the no-future-arrival baseline.
  {
    HgpsServer<Rational> h(Rational(1));
    const NodeId a = h.add_node(h.root(), Rational(8, 10));
    const NodeId a1 = h.add_node(a, Rational(75, 100));
    const NodeId a2 = h.add_node(a, Rational(5, 100));
    const NodeId b = h.add_node(h.root(), Rational(2, 10));
    (void)a1;
    // "Many packets queued": enough that neither A2 nor B drains within the
    // asserted horizon (redistribution would otherwise change the rates).
    for (int k = 0; k < 16; ++k) h.arrive(Rational(0), a2, Rational(1));
    for (int k = 0; k < 10; ++k) h.arrive(Rational(0), b, Rational(1));
    h.advance_to(Rational(18));
    std::vector<Rational> a2_fin, b_fin;
    for (const auto& d : h.departures()) {
      if (d.flow == a2) a2_fin.push_back(d.time);
      if (d.flow == b) b_fin.push_back(d.time);
    }
    ASSERT_GE(a2_fin.size(), 4u);
    EXPECT_EQ(a2_fin[0], Rational(5, 4));    // 1.25
    EXPECT_EQ(a2_fin[1], Rational(10, 4));   // 2.5
    EXPECT_EQ(a2_fin[2], Rational(15, 4));   // 3.75
    ASSERT_GE(b_fin.size(), 3u);
    EXPECT_EQ(b_fin[0], Rational(5));
    EXPECT_EQ(b_fin[1], Rational(10));
    EXPECT_EQ(b_fin[2], Rational(15));
    // Baseline relative order: A2's 2nd packet before B's 1st.
    EXPECT_LT(a2_fin[1], b_fin[0]);
  }
  // Now: A1 arrives at t=1 and the order flips.
  {
    HgpsServer<Rational> h(Rational(1));
    const NodeId a = h.add_node(h.root(), Rational(8, 10));
    const NodeId a1 = h.add_node(a, Rational(75, 100));
    const NodeId a2 = h.add_node(a, Rational(5, 100));
    const NodeId b = h.add_node(h.root(), Rational(2, 10));
    for (int k = 0; k < 8; ++k) h.arrive(Rational(0), a2, Rational(1));
    for (int k = 0; k < 20; ++k) h.arrive(Rational(0), b, Rational(1));
    for (int k = 0; k < 60; ++k) h.arrive(Rational(1), a1, Rational(1));
    h.advance_to(Rational(50));
    std::vector<Rational> a2_fin, b_fin;
    for (const auto& d : h.departures()) {
      if (d.flow == a2) a2_fin.push_back(d.time);
      if (d.flow == b) b_fin.push_back(d.time);
    }
    ASSERT_GE(a2_fin.size(), 3u);
    ASSERT_GE(b_fin.size(), 4u);
    // B unchanged: 5, 10, 15, 20.
    EXPECT_EQ(b_fin[0], Rational(5));
    EXPECT_EQ(b_fin[1], Rational(10));
    EXPECT_EQ(b_fin[2], Rational(15));
    EXPECT_EQ(b_fin[3], Rational(20));
    // A2's first packet: 0.8 bits served by t=1, 0.2 left at rate 0.05.
    EXPECT_EQ(a2_fin[0], Rational(5));
    EXPECT_EQ(a2_fin[1], Rational(25));
    EXPECT_EQ(a2_fin[2], Rational(45));
    // The flip: A2's 2nd packet now finishes after *all* of B's packets.
    EXPECT_GT(a2_fin[1], b_fin[3]);
  }
}

TEST(HgpsServer, ReducesToGpsForFlatTree) {
  // A one-level H-GPS must behave exactly like GPS.
  HgpsServer<Rational> h(Rational(1));
  GpsServer<Rational> g(Rational(1));
  const NodeId f0 = h.add_node(h.root(), Rational(1, 2));
  const NodeId f1 = h.add_node(h.root(), Rational(1, 2));
  g.add_flow(0, Rational(1, 2));
  g.add_flow(1, Rational(1, 2));
  h.arrive(Rational(0), f0, Rational(3));
  h.arrive(Rational(0), f1, Rational(1));
  g.arrive(Rational(0), 0, Rational(3));
  g.arrive(Rational(0), 1, Rational(1));
  h.advance_to(Rational(10));
  g.advance_to(Rational(10));
  EXPECT_EQ(h.work(f0), g.work(0));
  EXPECT_EQ(h.work(f1), g.work(1));
  ASSERT_EQ(h.departures().size(), g.departures().size());
  for (std::size_t i = 0; i < h.departures().size(); ++i) {
    EXPECT_EQ(h.departures()[i].time, g.departures()[i].time);
  }
}

TEST(HgpsServer, SiblingFairnessEq9Exact) {
  // Two sibling subtrees backlogged throughout: their normalized service
  // must match exactly (Eq. 9), even while deeper structure differs.
  HgpsServer<Rational> h(Rational(12));
  const NodeId a = h.add_node(h.root(), Rational(8));
  const NodeId b = h.add_node(h.root(), Rational(4));
  const NodeId a1 = h.add_node(a, Rational(6));
  const NodeId a2 = h.add_node(a, Rational(2));
  h.arrive(Rational(0), a1, Rational(100));
  h.arrive(Rational(0), a2, Rational(100));
  h.arrive(Rational(0), b, Rational(100));
  h.advance_to(Rational(3));
  EXPECT_EQ(h.work(a) / Rational(8), h.work(b) / Rational(4));
  EXPECT_EQ(h.work(a1) / Rational(6), h.work(a2) / Rational(2));
  // Node A's service equals the sum over its children.
  EXPECT_EQ(h.work(a), h.work(a1) + h.work(a2));
}

TEST(HgpsServer, ExcessSharedWithinSubtreeFirst) {
  // When A1 drains, its bandwidth goes to sibling A2 — not to B ("sessions
  // that share smaller subtrees with the session of excess bandwidth have
  // higher priorities").
  HgpsServer<Rational> h(Rational(10));
  const NodeId a = h.add_node(h.root(), Rational(5));
  const NodeId b = h.add_node(h.root(), Rational(5));
  const NodeId a1 = h.add_node(a, Rational(4));
  const NodeId a2 = h.add_node(a, Rational(1));
  h.arrive(Rational(0), a1, Rational(4));   // drains at t=1
  h.arrive(Rational(0), a2, Rational(100));
  h.arrive(Rational(0), b, Rational(100));
  h.advance_to(Rational(2));
  // [0,1]: a1 4, a2 1, b 5. [1,2]: a2 gets all of A's 5.
  EXPECT_EQ(h.work(a2), Rational(6));
  EXPECT_EQ(h.work(b), Rational(10));
}

TEST(HgpsServer, InstantaneousRatesFollowHierarchy) {
  HgpsServer<double> h(10.0);
  const NodeId a = h.add_node(h.root(), 8.0);
  const NodeId b = h.add_node(h.root(), 2.0);
  const NodeId a1 = h.add_node(a, 6.0);
  const NodeId a2 = h.add_node(a, 2.0);
  h.arrive(0.0, a1, 100.0);
  h.arrive(0.0, a2, 100.0);
  h.arrive(0.0, b, 100.0);
  h.advance_to(0.1);
  EXPECT_NEAR(h.instantaneous_rate(a), 8.0, 1e-9);
  EXPECT_NEAR(h.instantaneous_rate(b), 2.0, 1e-9);
  EXPECT_NEAR(h.instantaneous_rate(a1), 6.0, 1e-9);
  EXPECT_NEAR(h.instantaneous_rate(a2), 2.0, 1e-9);
}

// Property: sibling fairness (Eq. 9) holds exactly on RANDOM trees with
// rational arithmetic — any two sibling subtrees backlogged throughout an
// interval receive identical normalized service.
TEST(HgpsServerProperty, SiblingFairnessOnRandomTreesExact) {
  util::Rng rng(515);
  for (int trial = 0; trial < 10; ++trial) {
    HgpsServer<Rational> h(Rational(60));
    // Random 2-3 level tree; remember sibling groups.
    struct Group {
      std::vector<NodeId> members;
      std::vector<Rational> rates;
    };
    std::vector<Group> groups;
    std::vector<NodeId> leaves;
    std::vector<NodeId> frontier = {h.root()};
    std::vector<Rational> frontier_rate = {Rational(60)};
    for (int depth = 0; depth < 2; ++depth) {
      std::vector<NodeId> next;
      std::vector<Rational> next_rate;
      for (std::size_t i = 0; i < frontier.size(); ++i) {
        const int kids = static_cast<int>(rng.uniform_int(2, 3));
        Group g;
        for (int k = 0; k < kids; ++k) {
          const Rational r = frontier_rate[i] / Rational(kids);
          const NodeId id = h.add_node(frontier[i], r);
          g.members.push_back(id);
          g.rates.push_back(r);
          if (depth == 1 || rng.uniform() < 0.5) {
            leaves.push_back(id);
          } else {
            next.push_back(id);
            next_rate.push_back(r);
          }
        }
        groups.push_back(std::move(g));
      }
      // Anything queued in `next` gets children next round; nodes put in
      // `leaves` receive arrivals below.
      frontier = next;
      frontier_rate = next_rate;
    }
    // Load every leaf heavily at t=0 so ALL nodes stay backlogged.
    for (const NodeId leaf : leaves) {
      h.arrive(Rational(0), leaf, Rational(10000));
    }
    const Rational t1(1), t2(5);
    h.advance_to(t1);
    std::map<NodeId, Rational> at1;
    for (const auto& g : groups) {
      for (const NodeId m : g.members) at1[m] = h.work(m);
    }
    h.advance_to(t2);
    for (const auto& g : groups) {
      for (std::size_t k = 1; k < g.members.size(); ++k) {
        const Rational da =
            (h.work(g.members[0]) - at1[g.members[0]]) / g.rates[0];
        const Rational db =
            (h.work(g.members[k]) - at1[g.members[k]]) / g.rates[k];
        EXPECT_EQ(da, db) << "trial " << trial;
      }
    }
  }
}

// Property: H-GPS is work conserving — total service equals link capacity
// while any leaf is backlogged.
TEST(HgpsServerProperty, WorkConservation) {
  util::Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    HgpsServer<double> h(100.0);
    const NodeId a = h.add_node(h.root(), 60.0);
    const NodeId b = h.add_node(h.root(), 40.0);
    const NodeId a1 = h.add_node(a, 30.0);
    const NodeId a2 = h.add_node(a, 30.0);
    const NodeId b1 = h.add_node(b, 40.0);
    const std::vector<NodeId> leaves = {a1, a2, b1};
    // Load so heavily at t=0 that the system stays busy through t_end.
    for (const NodeId leaf : leaves) {
      h.arrive(0.0, leaf, 500.0 + rng.uniform(0.0, 100.0));
    }
    double t = 0.0;
    for (int e = 0; e < 20; ++e) {
      t += rng.uniform(0.0, 0.1);
      h.arrive(t, leaves[static_cast<std::size_t>(rng.uniform_int(0, 2))],
               rng.uniform(10.0, 100.0));
    }
    const double t_end = 5.0;
    h.advance_to(t_end);
    EXPECT_NEAR(h.work(h.root()), 100.0 * t_end, 1e-6);
  }
}

// ------------------------------------------------------------ ShareSolver

TEST(ShareSolver, ProportionalWhenAllGreedy) {
  ShareSolver s;
  const auto a = s.add_node(0, 3.0);
  const auto b = s.add_node(0, 1.0);
  s.set_demand(a, ShareSolver::kInfiniteDemand);
  s.set_demand(b, ShareSolver::kInfiniteDemand);
  const auto alloc = s.solve(100.0);
  EXPECT_NEAR(alloc[a], 75.0, 1e-9);
  EXPECT_NEAR(alloc[b], 25.0, 1e-9);
}

TEST(ShareSolver, SurplusRedistributedToUnsatisfied) {
  ShareSolver s;
  const auto a = s.add_node(0, 1.0);
  const auto b = s.add_node(0, 1.0);
  s.set_demand(a, 10.0);  // far below its fair share of 50
  s.set_demand(b, ShareSolver::kInfiniteDemand);
  const auto alloc = s.solve(100.0);
  EXPECT_NEAR(alloc[a], 10.0, 1e-9);
  EXPECT_NEAR(alloc[b], 90.0, 1e-9);
}

TEST(ShareSolver, InactiveLeavesGetNothing) {
  ShareSolver s;
  const auto a = s.add_node(0, 1.0);
  const auto b = s.add_node(0, 1.0);
  s.set_demand(a, 0.0);
  s.set_demand(b, ShareSolver::kInfiniteDemand);
  const auto alloc = s.solve(100.0);
  EXPECT_NEAR(alloc[a], 0.0, 1e-9);
  EXPECT_NEAR(alloc[b], 100.0, 1e-9);
}

TEST(ShareSolver, HierarchicalRedistributionPrefersSiblings) {
  // root{A:5{A1:4, A2:1}, B:5}. A1 inactive → its share goes to A2, not B.
  ShareSolver s;
  const auto a = s.add_node(0, 5.0);
  const auto b = s.add_node(0, 5.0);
  const auto a1 = s.add_node(a, 4.0);
  const auto a2 = s.add_node(a, 1.0);
  s.set_demand(a1, 0.0);
  s.set_demand(a2, ShareSolver::kInfiniteDemand);
  s.set_demand(b, ShareSolver::kInfiniteDemand);
  const auto alloc = s.solve(10.0);
  EXPECT_NEAR(alloc[a2], 5.0, 1e-9);
  EXPECT_NEAR(alloc[b], 5.0, 1e-9);
}

TEST(ShareSolver, FiniteDemandCapsSubtree) {
  // A's children demand 3 total; B absorbs the rest.
  ShareSolver s;
  const auto a = s.add_node(0, 5.0);
  const auto b = s.add_node(0, 5.0);
  const auto a1 = s.add_node(a, 4.0);
  const auto a2 = s.add_node(a, 1.0);
  s.set_demand(a1, 2.0);
  s.set_demand(a2, 1.0);
  s.set_demand(b, ShareSolver::kInfiniteDemand);
  const auto alloc = s.solve(10.0);
  EXPECT_NEAR(alloc[a], 3.0, 1e-9);
  EXPECT_NEAR(alloc[a1], 2.0, 1e-9);
  EXPECT_NEAR(alloc[a2], 1.0, 1e-9);
  EXPECT_NEAR(alloc[b], 7.0, 1e-9);
}

TEST(ShareSolver, UndersubscribedLinkLeavesCapacityUnused) {
  ShareSolver s;
  const auto a = s.add_node(0, 1.0);
  const auto b = s.add_node(0, 1.0);
  s.set_demand(a, 10.0);
  s.set_demand(b, 20.0);
  const auto alloc = s.solve(100.0);
  EXPECT_NEAR(alloc[a], 10.0, 1e-9);
  EXPECT_NEAR(alloc[b], 20.0, 1e-9);
  EXPECT_NEAR(alloc[0], 30.0, 1e-9);
}

// Property: allocations never exceed demand, children sum to the parent's
// allocation, and unsaturated children split in weight proportion.
TEST(ShareSolverProperty, InvariantsOnRandomTrees) {
  util::Rng rng(31337);
  for (int trial = 0; trial < 50; ++trial) {
    ShareSolver s;
    std::vector<ShareSolver::NodeId> internal = {0};
    std::vector<ShareSolver::NodeId> leaves;
    std::vector<double> demand;
    demand.resize(1, 0.0);
    const int n = 12;
    for (int i = 0; i < n; ++i) {
      const auto parent = internal[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(internal.size()) - 1))];
      const auto id = s.add_node(parent, rng.uniform(0.5, 4.0));
      demand.resize(id + 1, 0.0);
      if (rng.uniform() < 0.4 && i < n - 1) {
        internal.push_back(id);
      } else {
        leaves.push_back(id);
        const double d = rng.uniform() < 0.3
                             ? ShareSolver::kInfiniteDemand
                             : rng.uniform(0.0, 50.0);
        demand[id] = d;
        s.set_demand(id, d);
      }
    }
    const auto alloc = s.solve(100.0);
    for (const auto leaf : leaves) {
      EXPECT_GE(alloc[leaf], -1e-9);
      if (demand[leaf] != ShareSolver::kInfiniteDemand) {
        EXPECT_LE(alloc[leaf], demand[leaf] + 1e-6);
      }
    }
    EXPECT_LE(alloc[0], 100.0 + 1e-6);
  }
}

}  // namespace
}  // namespace hfq::fluid
