// Dedicated tests for the GPS virtual time tracker (sched/gps_virtual_time)
// — the O(N)-worst-case machinery inside WFQ/WF²Q that WF²Q+'s Eq. 27
// replaces. Cross-validated against the exact fluid GPS server.
#include <gtest/gtest.h>

#include "fluid/gps.h"
#include "sched/gps_virtual_time.h"
#include "util/rng.h"

namespace hfq::sched {
namespace {

TEST(GpsVirtualTime, StartsAtZero) {
  GpsVirtualTime vt(100.0);
  EXPECT_DOUBLE_EQ(vt.vtime(), 0.0);
  EXPECT_DOUBLE_EQ(vt.ref_time(), 0.0);
}

TEST(GpsVirtualTime, SlopeOneWhenFullyBacklogged) {
  GpsVirtualTime vt(100.0);
  vt.add_flow(0, 50.0);
  vt.add_flow(1, 50.0);
  vt.on_arrival(WallTime{0.0}, 0, Bits{500.0});  // 10 s of fluid work each
  vt.on_arrival(WallTime{0.0}, 1, Bits{500.0});
  vt.advance_to(WallTime{5.0});
  EXPECT_NEAR(vt.vtime(), 5.0, 1e-9);  // phi sum = 1 → slope 1
}

TEST(GpsVirtualTime, SlopeAcceleratesWhenPartiallyBacklogged) {
  GpsVirtualTime vt(100.0);
  vt.add_flow(0, 50.0);
  vt.add_flow(1, 50.0);
  vt.on_arrival(WallTime{0.0}, 0, Bits{500.0});  // only flow 0 backlogged: phi = 0.5
  vt.advance_to(WallTime{4.0});
  EXPECT_NEAR(vt.vtime(), 8.0, 1e-9);  // slope 2
}

TEST(GpsVirtualTime, StampsFollowEq6And7) {
  GpsVirtualTime vt(100.0);
  vt.add_flow(0, 25.0);
  const auto s1 = vt.on_arrival(WallTime{0.0}, 0, Bits{100.0});
  EXPECT_DOUBLE_EQ(s1.start.v(), 0.0);
  EXPECT_DOUBLE_EQ(s1.finish.v(), 4.0);  // 100 bits / 25 bps
  // Second packet while still backlogged: S = F_prev.
  const auto s2 = vt.on_arrival(WallTime{1.0}, 0, Bits{100.0});
  EXPECT_DOUBLE_EQ(s2.start.v(), 4.0);
  EXPECT_DOUBLE_EQ(s2.finish.v(), 8.0);
}

TEST(GpsVirtualTime, StampAfterFluidDrainUsesCurrentV) {
  GpsVirtualTime vt(100.0);
  vt.add_flow(0, 25.0);
  vt.add_flow(1, 75.0);
  vt.on_arrival(WallTime{0.0}, 0, Bits{100.0});  // F = 4 (virtual)
  // Flow 0's fluid drains at V=4 (real t=1, slope 4); arrival at t=2 with
  // fluid idle: V stays 4.
  vt.advance_to(WallTime{2.0});
  EXPECT_TRUE(!vt.fluid_backlogged(0));
  const auto st = vt.on_arrival(WallTime{2.0}, 0, Bits{100.0});
  EXPECT_DOUBLE_EQ(st.start.v(), 4.0);
  EXPECT_DOUBLE_EQ(st.finish.v(), 8.0);
}

TEST(GpsVirtualTime, FluidBackloggedTracksDepartures) {
  GpsVirtualTime vt(100.0);
  vt.add_flow(0, 50.0);
  vt.add_flow(1, 50.0);
  vt.on_arrival(WallTime{0.0}, 0, Bits{100.0});  // F = 2
  vt.on_arrival(WallTime{0.0}, 1, Bits{400.0});  // F = 8
  EXPECT_TRUE(vt.fluid_backlogged(0));
  EXPECT_TRUE(vt.fluid_backlogged(1));
  vt.advance_to(WallTime{2.0});  // V = 2: flow 0 drains
  EXPECT_FALSE(vt.fluid_backlogged(0));
  EXPECT_TRUE(vt.fluid_backlogged(1));
  vt.advance_to(WallTime{20.0});
  EXPECT_FALSE(vt.fluid_backlogged(1));
}

// Property: the tracker's fluid-departure epochs coincide with the exact
// fluid GPS server on random traffic.
TEST(GpsVirtualTimeProperty, MatchesFluidGpsDrainTimes) {
  util::Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const double link = 100.0;
    GpsVirtualTime vt(link);
    fluid::GpsServer<double> gps(link);
    const int n = 4;
    std::vector<double> rates = {10.0, 20.0, 30.0, 40.0};
    for (net::FlowId f = 0; f < n; ++f) {
      vt.add_flow(f, rates[f]);
      gps.add_flow(f, rates[f]);
    }
    double t = 0.0;
    struct Arr {
      double t;
      net::FlowId f;
      double bits;
    };
    std::vector<Arr> arrivals;
    for (int i = 0; i < 60; ++i) {
      t += rng.uniform(0.0, 1.0);
      arrivals.push_back(Arr{t, static_cast<net::FlowId>(rng.uniform_int(0, n - 1)),
                             rng.uniform(10.0, 200.0)});
    }
    for (const auto& a : arrivals) {
      vt.on_arrival(WallTime{a.t}, a.f, Bits{a.bits});
      gps.arrive(a.t, a.f, a.bits);
    }
    const double t_end = t + 100.0;
    vt.advance_to(WallTime{t_end});
    gps.advance_to(t_end);
    for (net::FlowId f = 0; f < n; ++f) {
      EXPECT_EQ(vt.fluid_backlogged(f), gps.backlogged(f))
          << "trial " << trial << " flow " << f;
    }
    // Sample intermediate instants: the backlog sets must agree.
    GpsVirtualTime vt2(link);
    fluid::GpsServer<double> gps2(link);
    for (net::FlowId f = 0; f < n; ++f) {
      vt2.add_flow(f, rates[f]);
      gps2.add_flow(f, rates[f]);
    }
    double probe = 0.0;
    std::size_t next = 0;
    for (int step = 0; step < 40; ++step) {
      probe += rng.uniform(0.1, 2.0);
      while (next < arrivals.size() && arrivals[next].t <= probe) {
        vt2.on_arrival(WallTime{arrivals[next].t}, arrivals[next].f,
                       Bits{arrivals[next].bits});
        gps2.arrive(arrivals[next].t, arrivals[next].f, arrivals[next].bits);
        ++next;
      }
      vt2.advance_to(WallTime{probe});
      gps2.advance_to(probe);
      for (net::FlowId f = 0; f < n; ++f) {
        EXPECT_EQ(vt2.fluid_backlogged(f), gps2.backlogged(f))
            << "trial " << trial << " t=" << probe << " flow " << f;
      }
    }
  }
}

// Property: V is non-decreasing and advances at least as fast as reference
// time whenever at least one flow stays backlogged (minimum slope).
TEST(GpsVirtualTimeProperty, MinimumSlopeWhileBacklogged) {
  util::Rng rng(31);
  GpsVirtualTime vt(100.0);
  for (net::FlowId f = 0; f < 3; ++f) vt.add_flow(f, 30.0);
  double t = 0.0;
  double prev_v = 0.0;
  // Heavy load: always backlogged.
  for (int i = 0; i < 300; ++i) {
    t += rng.uniform(0.0, 0.3);
    vt.on_arrival(WallTime{t}, static_cast<net::FlowId>(rng.uniform_int(0, 2)),
                  Bits{rng.uniform(50.0, 150.0)});
    const double dv = vt.vtime() - prev_v;
    EXPECT_GE(dv, -1e-12);
    prev_v = vt.vtime();
  }
  const double v_before = vt.vtime();
  const double t_before = vt.ref_time();
  vt.advance_to(WallTime{t + 1.0});
  EXPECT_GE(vt.vtime() - v_before, (t + 1.0 - t_before) - 1e-9);
}

}  // namespace
}  // namespace hfq::sched
